// Pipelined broadcast of large messages over the embedded Hamiltonian ring.
//
// Broadcasting a B-chunk message by running the 2n-cycle binomial schedule
// once per chunk costs 2nB cycles. The dilation-1 ring embedding
// (hamiltonian.hpp) enables the classic pipeline: the root pushes chunk
// after chunk around the ring, every node forwarding the previous cycle's
// chunk while receiving the next — (N-2) + B cycles in one direction. The
// crossover B* ≈ (N-2)/(2n-1) is measured in bench/tab_pipeline_broadcast:
// small messages favor the binomial tree, bulk data the ring — the same
// latency/bandwidth split as the sorting-alternatives table.
//
// The pipeline is oblivious: at cycle t, the node at ring position p
// forwards chunk t-p iff 0 <= t-p < B — a pure function of (ring, root, B)
// — and in a healthy run position p has received chunks 0..t-p-1 by cycle
// t (chunk c reaches position p at cycle c+p-1 < t), so the have-I-got-it
// guard below never fires and never feeds data back into the destinations.
// The whole (N-2)+B-cycle run therefore compiles through one
// ObliviousSection keyed by (root, B, ring fingerprint); under faults the
// machine interprets as usual and the guard becomes load-bearing again.
#pragma once

#include <optional>
#include <vector>

#include "collectives/broadcast.hpp"
#include "sim/oblivious.hpp"
#include "topology/hamiltonian.hpp"

namespace dc::collectives {

/// FNV-1a over a ring's node sequence — distinguishes schedules of
/// different rings on the same topology in the cache key.
inline dc::u64 ring_fingerprint(const std::vector<net::NodeId>& ring) {
  dc::u64 h = 1469598103934665603ull;
  for (const net::NodeId u : ring) {
    h ^= u;
    h *= 1099511628211ull;
  }
  return h;
}

/// Broadcasts `chunks` from `root` along `ring` (a Hamiltonian cycle of
/// the machine's topology, dilation 1). Returns the chunks as received by
/// every node (all equal to the input). Costs (N-2) + chunks.size()
/// communication cycles; compiled after the first run per
/// (topology, ring, root, B).
template <typename V>
std::vector<std::vector<V>> ring_pipeline_broadcast(
    sim::Machine& m, const std::vector<net::NodeId>& ring, net::NodeId root,
    const std::vector<V>& chunks) {
  const std::size_t n_nodes = m.topology().node_count();
  DC_REQUIRE(ring.size() == n_nodes, "ring must cover every node");
  DC_REQUIRE(root < n_nodes, "root out of range");
  DC_REQUIRE(!chunks.empty(), "nothing to broadcast");

  // Ring successor map, rotated so the walk starts at the root. The last
  // ring node needs no forwarding (its successor is the root).
  std::size_t root_pos = 0;
  while (ring[root_pos] != root) ++root_pos;
  std::vector<net::NodeId> successor(n_nodes);
  std::vector<std::size_t> position(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const net::NodeId u = ring[(root_pos + i) % n_nodes];
    successor[u] = ring[(root_pos + i + 1) % n_nodes];
    position[u] = i;
  }

  sim::ObliviousSection sched(m, "ring_pipeline_broadcast",
                              {root, chunks.size(), ring_fingerprint(ring)});

  // received[u] = chunks accepted so far. At cycle t, the node at ring
  // position p forwards chunk t-p (if it exists) to position p+1.
  std::vector<std::vector<V>> received(n_nodes);
  received[root] = chunks;
  const std::size_t total_cycles = (n_nodes - 2) + chunks.size();
  for (std::size_t t = 0; t < total_cycles; ++t) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          const std::size_t p = position[u];
          if (p + 1 >= n_nodes) return sim::kNoSend;  // end of the pipeline
          if (t < p || t - p >= chunks.size()) return sim::kNoSend;
          // Deterministically in-hand when healthy (see header comment);
          // only an attached fault plan — which forces the interpreted
          // path — can make this guard fire.
          if (u != root && t - p >= received[u].size()) return sim::kNoSend;
          return successor[u];
        },
        [&](net::NodeId u) {
          const std::size_t chunk = t - position[u];
          return u == root ? chunks[chunk] : received[u][chunk];
        });
    m.for_each_node([&](net::NodeId u) {
      if (inbox[u] && u != root) received[u].push_back(std::move(*inbox[u]));
    });
  }
  sched.commit();
  for (net::NodeId u = 0; u < n_nodes; ++u)
    DC_CHECK(received[u].size() == chunks.size(),
             "pipeline under-delivered at node " << u);
  return received;
}

/// Broadcasts `chunks` from `root` around the canonical Hamiltonian ring
/// of D_n (n >= 2).
template <typename V>
std::vector<std::vector<V>> ring_pipeline_broadcast(
    sim::Machine& m, const net::DualCube& d, net::NodeId root,
    const std::vector<V>& chunks) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  return ring_pipeline_broadcast(m, net::dual_cube_hamiltonian_cycle(d), root,
                                 chunks);
}

/// Baseline: the 2n-cycle binomial-style broadcast repeated per chunk.
template <typename V>
std::vector<std::vector<V>> repeated_binomial_broadcast(
    sim::Machine& m, const net::DualCube& d, net::NodeId root,
    const std::vector<V>& chunks) {
  std::vector<std::vector<V>> received(d.node_count());
  for (const V& chunk : chunks) {
    const auto out = dual_broadcast(m, d, root, chunk);
    for (net::NodeId u = 0; u < d.node_count(); ++u)
      received[u].push_back(out[u]);
  }
  return received;
}

}  // namespace dc::collectives
