// Pipelined broadcast of large messages over the embedded Hamiltonian ring.
//
// Broadcasting a B-chunk message by running the 2n-cycle binomial schedule
// once per chunk costs 2nB cycles. The dilation-1 ring embedding
// (hamiltonian.hpp) enables the classic pipeline: the root pushes chunk
// after chunk around the ring, every node forwarding the previous cycle's
// chunk while receiving the next — (N-2) + B cycles in one direction. The
// crossover B* ≈ (N-2)/(2n-1) is measured in bench/tab_pipeline_broadcast:
// small messages favor the binomial tree, bulk data the ring — the same
// latency/bandwidth split as the sorting-alternatives table.
#pragma once

#include <optional>
#include <vector>

#include "collectives/broadcast.hpp"
#include "topology/hamiltonian.hpp"

namespace dc::collectives {

/// Broadcasts `chunks` from `root` around the Hamiltonian ring of D_n
/// (n >= 2). Returns the chunks as received by every node (all equal to
/// the input). Costs (N-2) + chunks.size() communication cycles.
template <typename V>
std::vector<std::vector<V>> ring_pipeline_broadcast(
    sim::Machine& m, const net::DualCube& d, net::NodeId root,
    const std::vector<V>& chunks) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(root < d.node_count(), "root out of range");
  DC_REQUIRE(!chunks.empty(), "nothing to broadcast");
  const std::size_t n_nodes = d.node_count();

  // Ring successor map, rotated so the walk starts at the root. The last
  // ring node needs no forwarding (its successor is the root).
  const auto cycle = net::dual_cube_hamiltonian_cycle(d);
  std::size_t root_pos = 0;
  while (cycle[root_pos] != root) ++root_pos;
  std::vector<net::NodeId> successor(n_nodes);
  std::vector<std::size_t> position(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    const net::NodeId u = cycle[(root_pos + i) % n_nodes];
    successor[u] = cycle[(root_pos + i + 1) % n_nodes];
    position[u] = i;
  }

  // received[u] = chunks accepted so far. At cycle t, the node at ring
  // position p forwards chunk t-p (if it exists) to position p+1.
  std::vector<std::vector<V>> received(n_nodes);
  received[root] = chunks;
  const std::size_t total_cycles = (n_nodes - 2) + chunks.size();
  for (std::size_t t = 0; t < total_cycles; ++t) {
    auto inbox = m.comm_cycle<V>(
        [&](net::NodeId u) -> std::optional<sim::Send<V>> {
          const std::size_t p = position[u];
          if (p + 1 >= n_nodes) return std::nullopt;  // end of the pipeline
          if (t < p || t - p >= chunks.size()) return std::nullopt;
          const std::size_t chunk = t - p;
          if (u != root && chunk >= received[u].size()) return std::nullopt;
          return sim::Send<V>{successor[u], u == root ? chunks[chunk]
                                                      : received[u][chunk]};
        });
    m.for_each_node([&](net::NodeId u) {
      if (inbox[u] && u != root) received[u].push_back(std::move(*inbox[u]));
    });
  }
  for (net::NodeId u = 0; u < n_nodes; ++u)
    DC_CHECK(received[u].size() == chunks.size(),
             "pipeline under-delivered at node " << u);
  return received;
}

/// Baseline: the 2n-cycle binomial-style broadcast repeated per chunk.
template <typename V>
std::vector<std::vector<V>> repeated_binomial_broadcast(
    sim::Machine& m, const net::DualCube& d, net::NodeId root,
    const std::vector<V>& chunks) {
  std::vector<std::vector<V>> received(d.node_count());
  for (const V& chunk : chunks) {
    const auto out = dual_broadcast(m, d, root, chunk);
    for (net::NodeId u = 0; u < d.node_count(); ++u)
      received[u].push_back(out[u]);
  }
  return received;
}

}  // namespace dc::collectives
