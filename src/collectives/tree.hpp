// Generic spanning-tree collectives for ANY topology — the baseline the
// cluster technique is measured against.
//
// The broadcast floods a BFS spanning tree under the 1-port model: a node
// holding the value serves its children one per cycle (children ordered by
// label). The completion time is max over leaves of
// sum(child-rank along the path) + depth-ish — always >= the diameter and
// usually worse, because high-degree tree nodes serialize. On the
// dual-cube, the specialized schedule of broadcast.hpp finishes in exactly
// 2n cycles; bench/ablation_tree_collectives quantifies the gap.
#pragma once

#include <optional>
#include <vector>

#include "core/ops.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/graph.hpp"

namespace dc::collectives {

/// BFS-tree broadcast of `value` from `root` on any connected topology.
/// Returns the per-node values (all equal).
template <typename V>
std::vector<V> tree_broadcast(sim::Machine& m, const net::Topology& t,
                              net::NodeId root, const V& value) {
  DC_REQUIRE(root < t.node_count(), "root out of range");
  const std::size_t n = t.node_count();

  // Children lists of the BFS tree (uncounted preprocessing: the tree is a
  // static property of the network).
  const auto dist = net::bfs_distances(t, root);
  std::vector<std::vector<net::NodeId>> children(n);
  for (net::NodeId u = 0; u < n; ++u) {
    if (u == root) continue;
    DC_REQUIRE(dist[u] != net::kUnreachable, "broadcast needs connectivity");
    for (const net::NodeId v : t.neighbors(u)) {
      if (dist[v] + 1 == dist[u]) {
        children[v].push_back(u);
        break;
      }
    }
  }

  // The flood order is a pure function of the tree (hence of topology and
  // root), so the whole serial-children schedule compiles per root.
  sim::ObliviousSection sched(m, "tree_broadcast", {root});
  std::vector<std::uint8_t> have(n, 0);
  std::vector<std::size_t> next_child(n, 0);
  have[root] = 1;
  std::size_t covered = 1;
  while (covered < n) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (!have[u] || next_child[u] >= children[u].size())
            return sim::kNoSend;
          return children[u][next_child[u]];
        },
        [&](net::NodeId) { return value; });
    for (net::NodeId u = 0; u < n; ++u) {
      if (have[u] && next_child[u] < children[u].size()) ++next_child[u];
    }
    for (net::NodeId u = 0; u < n; ++u) {
      if (inbox[u] && !have[u]) {
        have[u] = 1;
        ++covered;
      }
    }
  }
  sched.commit();
  return std::vector<V>(n, value);
}

/// BFS-tree reduce to `root` (commutative ⊕): leaves push up, each parent
/// absorbs one child per cycle.
template <dc::core::Monoid M>
typename M::value_type tree_reduce(sim::Machine& m, const net::Topology& t,
                                   net::NodeId root, const M& op,
                                   std::vector<typename M::value_type> values) {
  using V = typename M::value_type;
  DC_REQUIRE(root < t.node_count(), "root out of range");
  DC_REQUIRE(values.size() == t.node_count(), "one value per node required");
  const std::size_t n = t.node_count();

  const auto dist = net::bfs_distances(t, root);
  std::vector<net::NodeId> parent(n, root);
  std::vector<std::size_t> pending_children(n, 0);
  for (net::NodeId u = 0; u < n; ++u) {
    if (u == root) continue;
    DC_REQUIRE(dist[u] != net::kUnreachable, "reduce needs connectivity");
    for (const net::NodeId v : t.neighbors(u)) {
      if (dist[v] + 1 == dist[u]) {
        parent[u] = v;
        ++pending_children[v];
        break;
      }
    }
  }

  // The up-sweep order is likewise fixed by the tree: per-cycle sender
  // sets depend only on which ranks drained in earlier (deterministic)
  // cycles, never on the values.
  sim::ObliviousSection sched(m, "tree_reduce", {root});
  std::vector<std::uint8_t> sent(n, 0);
  std::size_t remaining = n - 1;
  while (remaining > 0) {
    // Ready nodes (all children absorbed) offer their value to the parent;
    // the lowest-labeled ready child of each parent wins this cycle.
    std::vector<std::uint8_t> rx_claimed(n, 0);
    std::vector<std::uint8_t> sends(n, 0);
    for (net::NodeId u = 0; u < n; ++u) {
      if (u == root || sent[u] || pending_children[u] > 0) continue;
      if (rx_claimed[parent[u]]) continue;
      rx_claimed[parent[u]] = 1;
      sends[u] = 1;
    }
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (!sends[u]) return sim::kNoSend;
          return parent[u];
        },
        [&](net::NodeId u) { return values[u]; });
    m.compute_step([&](net::NodeId u) {
      if (inbox[u]) {
        values[u] = op.combine(values[u], *inbox[u]);
        m.add_ops(1);
      }
    });
    for (net::NodeId u = 0; u < n; ++u) {
      if (sends[u]) {
        sent[u] = 1;
        --pending_children[parent[u]];
        --remaining;
      }
    }
  }
  sched.commit();
  return values[root];
}

}  // namespace dc::collectives
