// All-to-one gather on an arbitrary topology: every node contributes one
// value and the root ends up with all N, tagged by origin.
//
// Under the 1-port model the root can absorb only one message per cycle, so
// any gather needs at least N-1 cycles; the schedule below is a greedy
// store-and-forward drain along a BFS spanning tree. Each cycle, every node
// with a pending item offers its oldest one to its tree parent; among the
// children of one parent, the lowest-labeled sender wins the parent's
// receive port and the rest retry next cycle. This finishes in
// N - 1 + O(depth) cycles, which the collectives bench reports against the
// N-1 lower bound.
#pragma once

#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "topology/graph.hpp"

namespace dc::collectives {

/// Gathers one value per node to `root`. Returns the values indexed by
/// origin node. Works on any connected topology.
template <typename V>
std::vector<V> gather(sim::Machine& m, const net::Topology& t,
                      net::NodeId root, const std::vector<V>& values) {
  DC_REQUIRE(root < t.node_count(), "root out of range");
  DC_REQUIRE(values.size() == t.node_count(), "one value per node required");
  const std::size_t n_nodes = t.node_count();

  // BFS spanning tree toward the root (uncounted preprocessing — the tree
  // is a property of the network, computed once, not per-gather traffic).
  const auto dist = net::bfs_distances(t, root);
  std::vector<net::NodeId> parent(n_nodes, root);
  for (net::NodeId u = 0; u < n_nodes; ++u) {
    DC_REQUIRE(dist[u] != net::kUnreachable, "gather needs a connected graph");
    for (const net::NodeId v : t.neighbors(u)) {
      if (dist[v] + 1 == dist[u]) {
        parent[u] = v;
        break;
      }
    }
  }

  using Item = std::pair<net::NodeId, V>;  // (origin, value)
  std::vector<std::deque<Item>> pending(n_nodes);
  std::vector<std::optional<V>> collected(n_nodes);
  collected[root] = values[root];
  std::size_t received = 1;
  for (net::NodeId u = 0; u < n_nodes; ++u)
    if (u != root) pending[u].push_back({u, values[u]});

  while (received < n_nodes) {
    // Claim each parent's receive port: lowest-labeled pending child wins.
    std::vector<std::uint8_t> claimed(n_nodes, 0);
    std::vector<std::uint8_t> sends(n_nodes, 0);
    for (net::NodeId u = 0; u < n_nodes; ++u) {
      if (u == root || pending[u].empty()) continue;
      if (!claimed[parent[u]]) {
        claimed[parent[u]] = 1;
        sends[u] = 1;
      }
    }
    auto inbox = m.comm_cycle<Item>(
        [&](net::NodeId u) -> std::optional<sim::Send<Item>> {
          if (!sends[u]) return std::nullopt;
          return sim::Send<Item>{parent[u], pending[u].front()};
        });
    m.for_each_node([&](net::NodeId u) {
      if (sends[u]) pending[u].pop_front();
    });
    for (net::NodeId u = 0; u < n_nodes; ++u) {
      if (!inbox[u]) continue;
      if (u == root) {
        auto& [origin, value] = *inbox[u];
        DC_CHECK(!collected[origin], "duplicate arrival from " << origin);
        collected[origin] = std::move(value);
        ++received;
      } else {
        pending[u].push_back(std::move(*inbox[u]));
      }
    }
  }

  std::vector<V> out;
  out.reserve(n_nodes);
  for (net::NodeId u = 0; u < n_nodes; ++u) out.push_back(*collected[u]);
  return out;
}

}  // namespace dc::collectives
