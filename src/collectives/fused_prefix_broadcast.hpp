// Fused prefix → broadcast: the emulated prefix overlaps the pipeline
// broadcast on the recursive dual-cube's idle ports.
//
// The two compiled stragglers are exactly the fusable pair. The emulated
// prefix (core/emulated_prefix.hpp) spends its relayed dimension steps on
// half the ports — cycle 1 of a dimension-j step sends class-indirect →
// class-direct, cycle 2 exchanges inside the direct class, cycle 3
// returns direct → indirect — while the ring pipeline broadcast
// (collectives/pipeline_broadcast.hpp) touches at most B ring edges per
// cycle. Along the Hamiltonian ring those edges alternate long
// intra-cluster stretches (both endpoints one class) with cross edges
// (classes differ), so for every relay cycle there is some ring cycle
// whose ports it misses entirely: c2 fuses with an intra-cluster edge of
// the opposite class, c1/c3 with a cross edge of the matching direction.
// Only the 1-cycle dimension-0 exchange (every port busy) can never fuse.
//
// fused_prefix_broadcast() runs both algorithms to completion with the
// broadcast data never waiting for the prefix: both compiled schedules are
// fetched from the ScheduleCache, fused by the static port-conflict check
// (sim/fusion.hpp), and replayed as one stream — results bit-identical to
// the sequential runs, total comm cycles |A| + |B| - merged. When either
// schedule is not yet compiled (first run, interpreted path, faults
// attached) it falls back to the two sequential section runs — which are
// exactly what records the schedules, so the next call fuses.
#pragma once

#include <utility>
#include <vector>

#include "collectives/pipeline_broadcast.hpp"
#include "core/dimension_exchange.hpp"
#include "core/emulated_prefix.hpp"
#include "sim/fusion.hpp"
#include "sim/oblivious.hpp"
#include "topology/hamiltonian.hpp"

namespace dc::collectives {

template <typename V>
struct FusedPrefixBroadcastResult {
  std::vector<V> prefix;                 ///< emulated_prefix(op, data)
  std::vector<std::vector<V>> received;  ///< ring broadcast of `chunks`
  bool fused = false;          ///< false: sequential fallback (recording)
  std::size_t fused_steps = 0;     ///< comm cycles of the fused stream
  std::size_t unfused_cycles = 0;  ///< prefix cycles + broadcast cycles
  std::size_t merged = 0;          ///< steps replaying both sections
};

/// Computes the inclusive prefix of `data` under `op` AND pipeline-
/// broadcasts `chunks` from `root`, overlapping the two on disjoint ports
/// when both schedules are compiled. V must be default-constructible
/// (fused messages travel as uniform (V, V) pairs).
template <core::Monoid M>
FusedPrefixBroadcastResult<typename M::value_type> fused_prefix_broadcast(
    sim::Machine& m, const net::RecursiveDualCube& r, const M& op,
    const std::vector<typename M::value_type>& data, net::NodeId root,
    const std::vector<typename M::value_type>& chunks) {
  using V = typename M::value_type;
  using P = std::pair<V, V>;
  DC_REQUIRE(data.size() == r.node_count(), "one input per node required");
  DC_REQUIRE(root < r.node_count(), "root out of range");
  DC_REQUIRE(!chunks.empty(), "nothing to broadcast");
  const std::size_t n = static_cast<std::size_t>(r.node_count());

  FusedPrefixBroadcastResult<V> out;
  const auto ring = net::recursive_dual_cube_hamiltonian_cycle(r);

  // Both sections' cache keys, exactly as their section runs record them.
  std::shared_ptr<const sim::Schedule> sa, sb;
  if (m.schedule_path() == sim::SchedulePath::kCompiled && !m.has_faults()) {
    const std::string topo = sim::ObliviousSection::topology_identity(r);
    sa = sim::ScheduleCache::instance().find(
        {topo, "emulated_prefix", {r.order()}, m.validating()});
    sb = sim::ScheduleCache::instance().find(
        {topo,
         "ring_pipeline_broadcast",
         {root, chunks.size(), ring_fingerprint(ring)},
         m.validating()});
  }
  if (!sa || !sb) {
    // Sequential fallback — and, on the compiled path, the record runs
    // that make the next call fuse.
    out.prefix = core::emulated_prefix(m, r, op, data);
    out.received = ring_pipeline_broadcast(m, ring, root, chunks);
    return out;
  }

  // Fuse under the band cost model: same merge count as the pure greedy
  // scan, but among equal-cardinality pairings the planner prefers the
  // partner cycle with the lower merged receiver-band spread.
  const sim::CycleCostModel cost;
  const sim::FusedSchedule plan = sim::fuse_schedules(sa, sb, n, &cost);
  out.fused = true;
  out.fused_steps = plan.steps.size();
  out.unfused_cycles = sa->cycle_count() + sb->cycle_count();
  out.merged = plan.merged_count();

  // ---- Prefix state (mirrors core::emulated_prefix +
  // core::dimension_exchange cycle for cycle; a-cycle ca maps to the
  // dimension-0 exchange when ca == 0, else to phase (ca-1)%3 of
  // dimension 1 + (ca-1)/3).
  std::vector<V> t = data;
  std::vector<V> s = data;
  std::vector<V> gathered(n);     // cycle-1 deliveries at direct nodes
  std::vector<V> pair_first(n);   // cycle-2 deliveries at direct nodes
  std::vector<V> pair_second(n);
  std::vector<V> temp(n);         // the completed dimension exchange

  const auto a_dim = [](std::size_t ca) -> unsigned {
    return ca == 0 ? 0u : 1u + static_cast<unsigned>((ca - 1) / 3);
  };
  const auto a_phase = [](std::size_t ca) -> unsigned {
    return ca == 0 ? 0u : static_cast<unsigned>((ca - 1) % 3);
  };
  const auto direct0 = [](unsigned j) { return j % 2 == 0 ? 0u : 1u; };

  const auto a_compute = [&](unsigned i) {
    m.compute_step([&](net::NodeId u) {
      if (dc::bits::get(u, i) == 1) {
        s[u] = op.combine(temp[u], s[u]);
        t[u] = op.combine(temp[u], t[u]);
        m.add_ops(2);
      } else {
        t[u] = op.combine(t[u], temp[u]);
        m.add_ops(1);
      }
    });
  };

  const auto payload_a = [&](std::size_t ca, net::NodeId u) -> P {
    const unsigned j = a_dim(ca);
    if (j == 0) return P{t[u], V{}};
    switch (a_phase(ca)) {
      case 0:
        return P{t[u], V{}};
      case 1:
        return P{t[u], gathered[u]};
      default:
        return P{pair_second[u], V{}};
    }
  };
  const auto consume_a = [&](std::size_t ca, sim::SectionInbox<P> in) {
    const unsigned j = a_dim(ca);
    if (j == 0) {
      m.for_each_node([&](net::NodeId u) { temp[u] = in.get(u)->first; });
      a_compute(0);
      return;
    }
    switch (a_phase(ca)) {
      case 0:
        m.for_each_node([&](net::NodeId u) {
          if (const P* p = in.get(u)) gathered[u] = p->first;
        });
        return;
      case 1:
        m.for_each_node([&](net::NodeId u) {
          if (const P* p = in.get(u)) {
            pair_first[u] = p->first;
            pair_second[u] = p->second;
          }
        });
        return;
      default:
        m.for_each_node([&](net::NodeId u) {
          temp[u] = dc::bits::get(u, 0) == direct0(j) ? pair_first[u]
                                                      : in.get(u)->first;
        });
        a_compute(j);
    }
  };

  // ---- Broadcast state (mirrors ring_pipeline_broadcast).
  std::size_t root_pos = 0;
  while (ring[root_pos] != root) ++root_pos;
  std::vector<std::size_t> position(n);
  for (std::size_t i = 0; i < n; ++i)
    position[ring[(root_pos + i) % n]] = i;
  out.received.assign(n, {});
  out.received[root] = chunks;

  const auto payload_b = [&](std::size_t cb, net::NodeId u) -> P {
    const std::size_t chunk = cb - position[u];
    return P{u == root ? chunks[chunk] : out.received[u][chunk], V{}};
  };
  const auto consume_b = [&](std::size_t, sim::SectionInbox<P> in) {
    m.for_each_node([&](net::NodeId u) {
      if (u == root) return;
      if (const P* p = in.get(u)) out.received[u].push_back(p->first);
    });
  };

  // The fused stream is one span on the trace, like a section's
  // replay-path span but named for the fusion.
  const char* span = nullptr;
  if (sim::TraceRecorder* rec = m.trace()) {
    span = rec->intern("fuse:prefix_broadcast");
    rec->begin(m.trace_track(), 0, span);
  }
  sim::replay_fused<P>(m, plan, payload_a, consume_a, payload_b, consume_b);
  if (span) m.trace()->end(m.trace_track(), 0, span);

  out.prefix = std::move(s);
  for (net::NodeId u = 0; u < n; ++u)
    DC_CHECK(out.received[u].size() == chunks.size(),
             "fused pipeline under-delivered at node " << u);
  return out;
}

}  // namespace dc::collectives
