// All-to-one reduction and all-reduce on the dual-cube, mirrors of the
// broadcast schedule (see broadcast.hpp). Both cost 2n communication
// cycles. The combination order is deterministic but not the global index
// order, so these collectives require a commutative monoid (the prefix
// algorithms in src/core do NOT — see ops.hpp).
#pragma once

#include <optional>
#include <vector>

#include "core/ops.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"

namespace dc::collectives {

/// Reduces one value per node to `root`; returns the total (⊕ over all
/// nodes, commutative). Costs 2n comm cycles and 2n comp steps.
template <dc::core::Monoid M>
typename M::value_type dual_reduce(sim::Machine& m, const net::DualCube& d,
                                   net::NodeId root, const M& op,
                                   std::vector<typename M::value_type> values) {
  using V = typename M::value_type;
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(root < d.node_count(), "root out of range");
  DC_REQUIRE(values.size() == d.node_count(), "one value per node required");
  const unsigned w = d.order() - 1;
  const auto root_addr = d.decode(root);

  // The 2n-cycle fold pattern is fixed by (order, root) — one compiled
  // schedule per root, shared with every later reduce to that root.
  sim::ObliviousSection sched(m, "dual_reduce", {root});

  // Phase 1 (mirror of broadcast phase 4): every root-class node folds its
  // value into its cross partner.
  {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (d.node_class(u) != root_addr.cls) return sim::kNoSend;
          return d.cross_neighbor(u);
        },
        [&](net::NodeId u) { return values[u]; });
    m.compute_step([&](net::NodeId u) {
      if (inbox[u]) {
        values[u] = op.combine(values[u], *inbox[u]);
        m.add_ops(1);
      }
    });
  }

  // Phase 2 (mirror of phase 3): binomial reduce inside every foreign-class
  // cluster toward the node whose node-ID equals the root's cluster ID.
  for (unsigned i = w; i-- > 0;) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          const auto a = d.decode(u);
          if (a.cls == root_addr.cls) return sim::kNoSend;
          const dc::u64 rel = a.node ^ root_addr.cluster;
          if (rel < dc::bits::pow2(i) || rel >= dc::bits::pow2(i + 1))
            return sim::kNoSend;
          return d.cluster_neighbor(u, i);
        },
        [&](net::NodeId u) { return values[u]; });
    m.compute_step([&](net::NodeId u) {
      if (inbox[u]) {
        values[u] = op.combine(values[u], *inbox[u]);
        m.add_ops(1);
      }
    });
  }

  // Phase 3 (mirror of phase 2): every foreign-class collector crosses back
  // into the root's cluster.
  {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          const auto a = d.decode(u);
          if (a.cls == root_addr.cls) return sim::kNoSend;
          if (a.node != root_addr.cluster) return sim::kNoSend;
          return d.cross_neighbor(u);
        },
        [&](net::NodeId u) { return values[u]; });
    // The receiver's own contribution already left in phase 1, so this is a
    // replacement, not a combine (avoids double counting).
    m.for_each_node([&](net::NodeId u) {
      if (inbox[u]) values[u] = *inbox[u];
    });
  }

  // Phase 4 (mirror of phase 1): binomial reduce inside the root's cluster.
  for (unsigned i = w; i-- > 0;) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          const auto a = d.decode(u);
          if (a.cls != root_addr.cls || a.cluster != root_addr.cluster)
            return sim::kNoSend;
          const dc::u64 rel = a.node ^ root_addr.node;
          if (rel < dc::bits::pow2(i) || rel >= dc::bits::pow2(i + 1))
            return sim::kNoSend;
          return d.cluster_neighbor(u, i);
        },
        [&](net::NodeId u) { return values[u]; });
    m.compute_step([&](net::NodeId u) {
      if (inbox[u]) {
        values[u] = op.combine(values[u], *inbox[u]);
        m.add_ops(1);
      }
    });
  }
  sched.commit();
  return values[root];
}

/// All-reduce: every node ends with the ⊕ of all values (commutative ⊕).
/// Cluster technique, 2n comm cycles:
///   1. in-cluster all-reduce by n-1 full dimension exchanges;
///   2. cross exchange of cluster totals;
///   3. in-cluster all-reduce of the received foreign totals — every node
///      now knows the foreign class's grand total;
///   4. one more cross exchange hands every node its *own* class's grand
///      total (computed at its partner in step 3); combine the two.
template <dc::core::Monoid M>
std::vector<typename M::value_type> dual_allreduce(
    sim::Machine& m, const net::DualCube& d, const M& op,
    std::vector<typename M::value_type> values) {
  using V = typename M::value_type;
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(values.size() == d.node_count(), "one value per node required");
  const unsigned w = d.order() - 1;

  // Root-free: the 2n cycles depend on the order alone, so every allreduce
  // on this dual-cube replays one schedule.
  sim::ObliviousSection sched(m, "dual_allreduce", {});

  const auto cluster_allreduce = [&](std::vector<V>& vals) {
    for (unsigned i = 0; i < w; ++i) {
      auto inbox = sched.exchange<V>(
          [&](net::NodeId u) { return d.cluster_neighbor(u, i); },
          [&](net::NodeId u) { return vals[u]; });
      m.compute_step([&](net::NodeId u) {
        vals[u] = op.combine(vals[u], *inbox[u]);
        m.add_ops(1);
      });
    }
  };

  cluster_allreduce(values);  // every node: own cluster total

  std::vector<V> foreign(values.size(), op.identity());
  {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) { return d.cross_neighbor(u); },
        [&](net::NodeId u) { return values[u]; });
    m.for_each_node([&](net::NodeId u) { foreign[u] = *inbox[u]; });
  }

  cluster_allreduce(foreign);  // every node: foreign class grand total

  {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) { return d.cross_neighbor(u); },
        [&](net::NodeId u) { return foreign[u]; });
    // inbox[u] is u's own class's grand total.
    m.compute_step([&](net::NodeId u) {
      values[u] = op.combine(*inbox[u], foreign[u]);
      m.add_ops(1);
    });
  }
  sched.commit();
  return values;
}

/// Recursive-halving reduce to `root` on Q_d (baseline): d cycles.
template <dc::core::Monoid M>
typename M::value_type cube_reduce(sim::Machine& m, const net::Hypercube& q,
                                   net::NodeId root, const M& op,
                                   std::vector<typename M::value_type> values) {
  using V = typename M::value_type;
  DC_REQUIRE(root < q.node_count(), "root out of range");
  DC_REQUIRE(values.size() == q.node_count(), "one value per node required");
  sim::ObliviousSection sched(m, "cube_reduce", {root});
  for (unsigned i = q.dimensions(); i-- > 0;) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          const dc::u64 rel = u ^ root;
          if (rel < dc::bits::pow2(i) || rel >= dc::bits::pow2(i + 1))
            return sim::kNoSend;
          return q.neighbor(u, i);
        },
        [&](net::NodeId u) { return values[u]; });
    m.compute_step([&](net::NodeId u) {
      if (inbox[u]) {
        values[u] = op.combine(values[u], *inbox[u]);
        m.add_ops(1);
      }
    });
  }
  sched.commit();
  return values[root];
}

}  // namespace dc::collectives
