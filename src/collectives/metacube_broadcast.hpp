// One-to-all broadcast on the metacube MC(k, m) — the cluster technique
// generalized to 2^k classes, showing the paper's technique #1 scales past
// the dual-cube (k = 1 reproduces dual_broadcast's 2n = 2m+2 schedule).
//
// Schedule: visit the classes in Gray-code order g_0, g_1, ..., then fan
// out over the class bits:
//
//   for each class g_t:
//     (a) every current holder hops one class bit to enter class g_t
//         (1 cycle; skipped at t = 0 where the root walks instead);
//     (b) binomial broadcast over field g_t's m cube dimensions
//         (m cycles) — legal because every holder is now in class g_t;
//   finally, k cycles of recursive doubling over the class bits cover the
//   remaining class values.
//
// Total: at most popcount-walk(root) + 2^k * m + (2^k - 1) + k cycles;
// for k = 1 and a root already in class g_0 this is 2m + 2 = 2n, the
// diameter-optimal dual-cube schedule.
#pragma once

#include <optional>
#include <vector>

#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/hamiltonian.hpp"  // gray_code
#include "topology/metacube.hpp"

namespace dc::collectives {

/// Broadcasts `value` from `root` to every node of MC(k, m). Returns the
/// per-node values.
template <typename V>
std::vector<V> metacube_broadcast(sim::Machine& m, const net::Metacube& mc,
                                  net::NodeId root, const V& value) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&mc),
             "machine must run on the given metacube");
  DC_REQUIRE(root < mc.node_count(), "root out of range");
  const std::size_t n_nodes = mc.node_count();
  const unsigned class_lo = mc.m() * static_cast<unsigned>(dc::bits::pow2(mc.k()));
  const dc::u64 classes = dc::bits::pow2(mc.k());

  std::vector<std::uint8_t> have(n_nodes, 0);
  have[root] = 1;

  // The hop pattern is a pure function of (topology, root): `have` evolves
  // deterministically from the root, so the whole broadcast is oblivious
  // and compiles to one schedule per (k, m, root).
  sim::ObliviousSection sched(m, "metacube_broadcast",
                              {mc.k(), mc.m(), root});

  // Deliver `dest_of`-selected single hops and mark the receivers. On
  // replay dest_of is never consulted — receivers are marked straight off
  // the compiled cycle's presence map.
  const auto hop = [&](auto&& dest_of) {
    auto inbox = sched.exchange<V>(std::forward<decltype(dest_of)>(dest_of),
                                   [&](net::NodeId) { return value; });
    m.for_each_node([&](net::NodeId u) {
      if (inbox[u]) have[u] = 1;
    });
  };

  // Move every holder's class value toward `target` one bit at a time.
  // All holders share the same class at the call, so they all flip the
  // same bits in lockstep (distinct labels -> no port conflicts).
  const auto walk_class = [&](dc::u64 from, dc::u64 target) {
    dc::u64 cur = from;
    while (cur != target) {
      const unsigned bit = dc::bits::lowest_set(cur ^ target);
      hop([&](net::NodeId u) -> net::NodeId {
        if (!have[u] || mc.class_of(u) != cur) return sim::kNoSend;
        return dc::bits::flip(u, class_lo + bit);
      });
      cur = dc::bits::flip(cur, bit);
    }
  };

  dc::u64 current_class = mc.class_of(root);
  for (dc::u64 t = 0; t < classes; ++t) {
    const dc::u64 g = net::gray_code(t);
    walk_class(current_class, g);
    current_class = g;
    // Binomial broadcast over field g. The holders of class g form an
    // aligned set; relative addressing keys off the root's field value so
    // coverage doubles per cycle with unique receivers.
    const unsigned base = mc.field_offset(g);
    const dc::u64 anchor = mc.field_of(root, g);
    for (unsigned i = 0; i < mc.m(); ++i) {
      hop([&](net::NodeId u) -> net::NodeId {
        if (!have[u] || mc.class_of(u) != g) return sim::kNoSend;
        const dc::u64 rel = mc.field_of(u, g) ^ anchor;
        if (rel >= dc::bits::pow2(i)) return sim::kNoSend;
        return dc::bits::flip(u, base + i);
      });
    }
  }

  // Recursive doubling over the class bits.
  for (unsigned i = 0; i < mc.k(); ++i) {
    hop([&](net::NodeId u) -> net::NodeId {
      if (!have[u]) return sim::kNoSend;
      const dc::u64 rel = mc.class_of(u) ^ current_class;
      if (rel >= dc::bits::pow2(i)) return sim::kNoSend;
      return dc::bits::flip(u, class_lo + i);
    });
  }
  sched.commit();

  std::vector<V> out;
  out.reserve(n_nodes);
  for (net::NodeId u = 0; u < n_nodes; ++u) {
    DC_CHECK(have[u], "metacube broadcast failed to reach node " << u);
    out.push_back(value);
  }
  return out;
}

}  // namespace dc::collectives
