// Barrier synchronization: completes only after every node has
// participated. Realized as an all-reduce of unit tokens; the returned
// count at every node equals N, which the tests assert.
#pragma once

#include "collectives/reduce.hpp"
#include "core/ops.hpp"

namespace dc::collectives {

/// Dual-cube barrier: 2n comm cycles. Returns the number of participants
/// observed by every node (always N on success).
inline dc::u64 dual_barrier(sim::Machine& m, const net::DualCube& d) {
  const dc::core::Plus<dc::u64> op;
  std::vector<dc::u64> ones(d.node_count(), 1);
  const auto counts = dual_allreduce(m, d, op, std::move(ones));
  for (const dc::u64 c : counts)
    DC_CHECK(c == d.node_count(), "barrier saw " << c << " participants");
  return counts.empty() ? 0 : counts.front();
}

}  // namespace dc::collectives
