// All-gather and one-to-all personalized scatter on the dual-cube.
//
// All-gather uses the cluster technique in 2n cycles (diameter-optimal in
// step count; messages grow, which the paper's model does not charge —
// each cycle moves one message per port):
//   1. recursive-doubling all-gather inside every cluster;
//   2. cross exchange of the cluster sets — each node now also holds one
//      foreign cluster's set;
//   3. recursive-doubling all-gather of those foreign sets inside every
//      cluster — the union covers the entire foreign class;
//   4. one more cross exchange hands every node its own class's values.
//
// Scatter sends a personalized value from the root to every node; under the
// 1-port model the root emits one packet per cycle, so N-1 cycles is a
// lower bound. We drain the packets store-and-forward along shortest
// routes.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "sim/machine.hpp"
#include "sim/store_forward.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/routing.hpp"

namespace dc::collectives {

/// All-gather: returns, for every node, the full vector of all N input
/// values indexed by origin node. 2n communication cycles.
template <typename V>
std::vector<std::vector<V>> dual_allgather(sim::Machine& m,
                                           const net::DualCube& d,
                                           const std::vector<V>& values) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(values.size() == d.node_count(), "one value per node required");
  const std::size_t n_nodes = d.node_count();
  const unsigned w = d.order() - 1;

  using Set = std::map<net::NodeId, V>;  // origin -> value
  std::vector<Set> own(n_nodes);
  m.for_each_node([&](net::NodeId u) { own[u] = {{u, values[u]}}; });

  const auto cluster_allgather = [&](std::vector<Set>& sets) {
    for (unsigned i = 0; i < w; ++i) {
      auto inbox = m.comm_cycle<Set>([&](net::NodeId u) {
        return sim::Send<Set>{d.cluster_neighbor(u, i), sets[u]};
      });
      m.for_each_node([&](net::NodeId u) {
        sets[u].insert(inbox[u]->begin(), inbox[u]->end());
      });
    }
  };

  cluster_allgather(own);  // own cluster's values

  std::vector<Set> foreign(n_nodes);
  {
    auto inbox = m.comm_cycle<Set>([&](net::NodeId u) {
      return sim::Send<Set>{d.cross_neighbor(u), own[u]};
    });
    m.for_each_node([&](net::NodeId u) { foreign[u] = std::move(*inbox[u]); });
  }

  cluster_allgather(foreign);  // the whole foreign class

  {
    auto inbox = m.comm_cycle<Set>([&](net::NodeId u) {
      return sim::Send<Set>{d.cross_neighbor(u), foreign[u]};
    });
    // inbox[u] = every value of u's own class; merge everything.
    m.for_each_node([&](net::NodeId u) {
      own[u].insert(foreign[u].begin(), foreign[u].end());
      own[u].insert(inbox[u]->begin(), inbox[u]->end());
    });
  }

  std::vector<std::vector<V>> out(n_nodes);
  m.for_each_node([&](net::NodeId u) {
    DC_CHECK(own[u].size() == n_nodes, "allgather missed origins at node " << u);
    out[u].reserve(n_nodes);
    for (auto& [origin, value] : own[u]) out[u].push_back(value);
  });
  return out;
}

/// Recursive-doubling all-gather on Q_d (baseline): d cycles of pairwise
/// set exchanges.
template <typename V>
std::vector<std::vector<V>> cube_allgather(sim::Machine& m,
                                           const net::Hypercube& q,
                                           const std::vector<V>& values) {
  DC_REQUIRE(values.size() == q.node_count(), "one value per node required");
  const std::size_t n_nodes = q.node_count();
  using Set = std::map<net::NodeId, V>;
  std::vector<Set> have(n_nodes);
  m.for_each_node([&](net::NodeId u) { have[u] = {{u, values[u]}}; });
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto inbox = m.comm_cycle<Set>([&](net::NodeId u) {
      return sim::Send<Set>{q.neighbor(u, i), have[u]};
    });
    m.for_each_node([&](net::NodeId u) {
      have[u].insert(inbox[u]->begin(), inbox[u]->end());
    });
  }
  std::vector<std::vector<V>> out(n_nodes);
  m.for_each_node([&](net::NodeId u) {
    DC_CHECK(have[u].size() == n_nodes, "allgather missed origins");
    for (auto& [origin, value] : have[u]) out[u].push_back(value);
  });
  return out;
}

/// One-to-all personalized scatter: node i receives messages[i]. Returns
/// per-node received values and the routing report (cycles >= N-1 by the
/// root's port limit).
template <typename V>
std::pair<std::vector<V>, sim::RoutingReport> dual_scatter(
    sim::Machine& m, const net::DualCube& d, net::NodeId root,
    const std::vector<V>& messages) {
  DC_REQUIRE(root < d.node_count(), "root out of range");
  DC_REQUIRE(messages.size() == d.node_count(), "one message per node");
  std::vector<sim::Packet> packets;
  for (net::NodeId v = 0; v < d.node_count(); ++v) {
    if (v == root) continue;
    packets.push_back({v, net::route_dual_cube(d, root, v), 0, 0});
  }
  const auto report = sim::route_packet_list(m, std::move(packets));
  // route_packet_list returns only after every packet reached path.back(),
  // each hop validated by the machine; the packet addressed to v carried
  // messages[v], so after the drain node v holds exactly messages[v].
  std::vector<V> received = messages;
  return {received, report};
}

}  // namespace dc::collectives
