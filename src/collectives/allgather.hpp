// All-gather and one-to-all personalized scatter on the dual-cube.
//
// All-gather uses the cluster technique in 2n cycles (diameter-optimal in
// step count; messages grow, which the paper's model does not charge —
// each cycle moves one message per port):
//   1. recursive-doubling all-gather inside every cluster;
//   2. cross exchange of the cluster sets — each node now also holds one
//      foreign cluster's set;
//   3. recursive-doubling all-gather of those foreign sets inside every
//      cluster — the union covers the entire foreign class;
//   4. one more cross exchange hands every node its own class's values.
//
// The gather state is kept in XOR-indexed SoA planes rather than
// origin-keyed maps: after round i of a recursive-doubling pass, slot dd of
// node u's plane holds the value originating at the cluster-mate whose
// node ID is id(u) ^ dd. A round then sends the *entire current prefix*
// (one contiguous stride of width 2^i) and the receiver appends it at
// offset 2^i — slot (2^i)+dd = value[id ^ 2^i ^ dd] — so every cycle of the
// collective is a fixed-width block exchange through ObliviousSection
// (memcpy-plane replay once the 2n-cycle schedule is cached). Origins are
// recovered arithmetically at copy-out; no per-node associative containers
// survive. dual_allgather_aos keeps the original map-of-origins
// formulation as the parity baseline: identical destinations, counters and
// edge loads (asserted in sim_test).
//
// Scatter sends a personalized value from the root to every node; under the
// 1-port model the root emits one packet per cycle, so N-1 cycles is a
// lower bound. We drain the packets store-and-forward along shortest
// routes.
#pragma once

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "sim/store_forward.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/routing.hpp"

namespace dc::collectives {

/// All-gather: returns, for every node, the full vector of all N input
/// values indexed by origin node. 2n communication cycles.
template <typename V>
std::vector<std::vector<V>> dual_allgather(sim::Machine& m,
                                           const net::DualCube& d,
                                           const std::vector<V>& values) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(values.size() == d.node_count(), "one value per node required");
  const std::size_t n_nodes = d.node_count();
  const unsigned w = d.order() - 1;
  const std::size_t c = d.cluster_size();  // 2^(n-1) = cluster width

  sim::ObliviousSection sched(m, "dual_allgather", {d.order()});

  // XOR-indexed in-cluster doubling: grows each node's stride in `plane`
  // (node-major, `cap` slots per node) from width 2^0 to 2^rounds.
  const auto cluster_allgather = [&](std::vector<V>& plane, std::size_t cap,
                                     unsigned rounds) {
    for (unsigned i = 0; i < rounds; ++i) {
      const std::size_t wid = std::size_t{1} << i;
      auto inbox = sched.exchange_blocks<V>(
          wid, [&](net::NodeId u) { return d.cluster_neighbor(u, i); },
          [&](net::NodeId u, V* dst) {
            std::copy_n(plane.data() + u * cap, wid, dst);
          });
      m.for_each_node([&](net::NodeId u) {
        std::copy_n(inbox.block(u), wid, plane.data() + u * cap + wid);
      });
    }
  };

  // Phase 1: own cluster's values, one plane stride of width c per node.
  std::vector<V> own(n_nodes * c);
  m.for_each_node([&](net::NodeId u) { own[u * c] = values[u]; });
  cluster_allgather(own, c, w);

  // Phase 2: cross exchange of the cluster strides.
  std::vector<V> cls(n_nodes * c * c);  // foreign-class plane, c*c per node
  {
    auto inbox = sched.exchange_blocks<V>(
        c, [&](net::NodeId u) { return d.cross_neighbor(u); },
        [&](net::NodeId u, V* dst) {
          std::copy_n(own.data() + u * c, c, dst);
        });
    m.for_each_node([&](net::NodeId u) {
      std::copy_n(inbox.block(u), c, cls.data() + u * (c * c));
    });
  }

  // Phase 3: doubling over whole cluster-strides — block b of node u's
  // class plane ends up as the foreign stride gathered by the cluster-mate
  // with node ID id(u) ^ b.
  for (unsigned i = 0; i < w; ++i) {
    const std::size_t wid = c << i;
    auto inbox = sched.exchange_blocks<V>(
        wid, [&](net::NodeId u) { return d.cluster_neighbor(u, i); },
        [&](net::NodeId u, V* dst) {
          std::copy_n(cls.data() + u * (c * c), wid, dst);
        });
    m.for_each_node([&](net::NodeId u) {
      std::copy_n(inbox.block(u), wid, cls.data() + u * (c * c) + wid);
    });
  }

  // Origin of slot b*c+dd of node x's class plane: the dd-XOR cluster-mate
  // of the cross partner of x's own b-XOR cluster-mate.
  const auto origin_of = [&](net::NodeId x, std::size_t b, std::size_t dd) {
    const auto a = d.decode(x);
    const net::NodeId mate = d.encode({a.cls, a.cluster, a.node ^ b});
    const auto f = d.decode(d.cross_neighbor(mate));
    return d.encode({f.cls, f.cluster, f.node ^ dd});
  };

  // Phase 4: final cross exchange — u receives its cross partner's class
  // plane, which covers exactly u's own class; u's own class plane covers
  // the other. Assemble by origin.
  std::vector<std::vector<V>> out(n_nodes);
  {
    auto inbox = sched.exchange_blocks<V>(
        c * c, [&](net::NodeId u) { return d.cross_neighbor(u); },
        [&](net::NodeId u, V* dst) {
          std::copy_n(cls.data() + u * (c * c), c * c, dst);
        });
    m.for_each_node([&](net::NodeId u) {
      out[u].resize(n_nodes);
      const net::NodeId partner = d.cross_neighbor(u);
      const V* const mine = cls.data() + u * (c * c);
      const V* const recv = inbox.block(u);
      for (std::size_t b = 0; b < c; ++b) {
        for (std::size_t dd = 0; dd < c; ++dd) {
          out[u][origin_of(u, b, dd)] = mine[b * c + dd];
          out[u][origin_of(partner, b, dd)] = recv[b * c + dd];
        }
      }
    });
  }
  sched.commit();
  return out;
}

/// The original origin-keyed-map formulation of dual_allgather: every
/// message is a std::map<NodeId, V>, merged by insertion. Same destination
/// sequence, counters and edge loads as the SoA version — kept as the AoS
/// baseline for parity tests.
template <typename V>
std::vector<std::vector<V>> dual_allgather_aos(sim::Machine& m,
                                               const net::DualCube& d,
                                               const std::vector<V>& values) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(values.size() == d.node_count(), "one value per node required");
  const std::size_t n_nodes = d.node_count();
  const unsigned w = d.order() - 1;

  using Set = std::map<net::NodeId, V>;  // origin -> value
  std::vector<Set> own(n_nodes);
  m.for_each_node([&](net::NodeId u) { own[u] = {{u, values[u]}}; });

  const auto cluster_allgather = [&](std::vector<Set>& sets) {
    for (unsigned i = 0; i < w; ++i) {
      auto inbox = m.comm_cycle<Set>([&](net::NodeId u) {
        return sim::Send<Set>{d.cluster_neighbor(u, i), sets[u]};
      });
      m.for_each_node([&](net::NodeId u) {
        sets[u].insert(inbox[u]->begin(), inbox[u]->end());
      });
    }
  };

  cluster_allgather(own);  // own cluster's values

  std::vector<Set> foreign(n_nodes);
  {
    auto inbox = m.comm_cycle<Set>([&](net::NodeId u) {
      return sim::Send<Set>{d.cross_neighbor(u), own[u]};
    });
    m.for_each_node([&](net::NodeId u) { foreign[u] = std::move(*inbox[u]); });
  }

  cluster_allgather(foreign);  // the whole foreign class

  {
    auto inbox = m.comm_cycle<Set>([&](net::NodeId u) {
      return sim::Send<Set>{d.cross_neighbor(u), foreign[u]};
    });
    // inbox[u] = every value of u's own class; merge everything.
    m.for_each_node([&](net::NodeId u) {
      own[u].insert(foreign[u].begin(), foreign[u].end());
      own[u].insert(inbox[u]->begin(), inbox[u]->end());
    });
  }

  std::vector<std::vector<V>> out(n_nodes);
  m.for_each_node([&](net::NodeId u) {
    DC_CHECK(own[u].size() == n_nodes, "allgather missed origins at node " << u);
    out[u].reserve(n_nodes);
    for (auto& [origin, value] : own[u]) out[u].push_back(value);
  });
  return out;
}

/// Recursive-doubling all-gather on Q_d (baseline): d cycles of pairwise
/// exchanges of the XOR-indexed plane prefix (slot dd of node u holds the
/// value originating at u ^ dd).
template <typename V>
std::vector<std::vector<V>> cube_allgather(sim::Machine& m,
                                           const net::Hypercube& q,
                                           const std::vector<V>& values) {
  DC_REQUIRE(values.size() == q.node_count(), "one value per node required");
  const std::size_t n_nodes = q.node_count();
  sim::ObliviousSection sched(m, "cube_allgather", {q.dimensions()});
  std::vector<V> plane(n_nodes * n_nodes);
  m.for_each_node([&](net::NodeId u) { plane[u * n_nodes] = values[u]; });
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    const std::size_t wid = std::size_t{1} << i;
    auto inbox = sched.exchange_blocks<V>(
        wid, [&](net::NodeId u) { return q.neighbor(u, i); },
        [&](net::NodeId u, V* dst) {
          std::copy_n(plane.data() + u * n_nodes, wid, dst);
        });
    m.for_each_node([&](net::NodeId u) {
      std::copy_n(inbox.block(u), wid, plane.data() + u * n_nodes + wid);
    });
  }
  sched.commit();
  std::vector<std::vector<V>> out(n_nodes);
  m.for_each_node([&](net::NodeId u) {
    out[u].resize(n_nodes);
    for (std::size_t dd = 0; dd < n_nodes; ++dd) {
      out[u][u ^ dd] = plane[u * n_nodes + dd];
    }
  });
  return out;
}

/// One-to-all personalized scatter: node i receives messages[i]. Returns
/// per-node received values and the routing report (cycles >= N-1 by the
/// root's port limit).
template <typename V>
std::pair<std::vector<V>, sim::RoutingReport> dual_scatter(
    sim::Machine& m, const net::DualCube& d, net::NodeId root,
    const std::vector<V>& messages) {
  DC_REQUIRE(root < d.node_count(), "root out of range");
  DC_REQUIRE(messages.size() == d.node_count(), "one message per node");
  std::vector<sim::Packet> packets;
  for (net::NodeId v = 0; v < d.node_count(); ++v) {
    if (v == root) continue;
    packets.push_back({v, net::route_dual_cube(d, root, v), 0, 0});
  }
  const auto report = sim::route_packet_list(m, std::move(packets));
  // route_packet_list returns only after every packet reached path.back(),
  // each hop validated by the machine; the packet addressed to v carried
  // messages[v], so after the drain node v holds exactly messages[v].
  std::vector<V> received = messages;
  return {received, report};
}

}  // namespace dc::collectives
