// Fault-tolerant one-to-all broadcast on the dual-cube.
//
// Strategy, in two layers:
//   1. Run the healthy 2n-cycle cluster-technique schedule
//      (collectives/broadcast.hpp) *fault-aware*: a holder skips any send
//      whose destination node, or whose link, is dead. Every send the
//      schedule still makes is legal under FaultPolicy::kStrict, so a
//      machine with the plan attached never throws. Each dead node (and
//      each dead link on the broadcast tree) silently prunes the subtree
//      hanging below it.
//   2. Detect the pruned nodes — live nodes that finished the schedule
//      without the value — and repair them with payload-carrying detour
//      packets (sim/fault_transport.hpp): each missing node is served from
//      its nearest current holder over a fault-free path found by
//      route_dual_cube_fault_tolerant, drained through the validated
//      store-and-forward machinery. Repair traffic is what
//      Counters::messages_rerouted counts.
//
// Guarantee: D_n is n-connected, so for any node fault set of size < n
// (not containing the root) the fault-free subgraph is connected, every
// missing node has a path from a holder, and every live node ends up with
// the value. Larger fault sets either still succeed or throw FaultError
// naming a disconnected node — never a silent wrong answer. Faults are
// taken at their final extent (timed faults count as present throughout).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/fault_transport.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"
#include "topology/dual_cube.hpp"

namespace dc::collectives {

/// Broadcasts `value` from `root` to every live node of D_n under `plan`.
/// Returns per-node values: engaged for every live node (the guarantee for
/// fewer than n node faults), nullopt at dead nodes. The machine may run
/// with `plan` attached under either policy, or with no plan attached; the
/// communication issued is identical. Throws FaultError if the root is
/// dead or the fault set disconnects a live node.
template <typename V>
std::vector<std::optional<V>> ft_dual_broadcast(
    sim::Machine& m, const net::DualCube& d, net::NodeId root, const V& value,
    const sim::FaultPlan& plan, sim::FtReport* report = nullptr,
    dc::u64 detour_seed = 0x0f7b17u) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(root < d.node_count(), "root out of range");
  constexpr std::uint64_t kEver = ~std::uint64_t{0};
  if (plan.node_dead(root, kEver))
    throw sim::FaultError("broadcast root " + std::to_string(root) +
                          " is faulty");

  const std::size_t n_nodes = d.node_count();
  const unsigned w = d.order() - 1;
  const auto root_addr = d.decode(root);
  const auto alive = [&](net::NodeId u) { return !plan.node_dead(u, kEver); };
  const auto link_ok = [&](net::NodeId u, net::NodeId v) {
    return !plan.link_dead(u, v, kEver);
  };

  std::vector<std::optional<V>> have(n_nodes);
  have[root] = value;
  sim::FtReport rep;

  // The destination pattern depends on the fault set, so these cycles are
  // never recorded or replayed (see sim/oblivious.hpp commit guard); they
  // run interpreted, fully validated.
  const auto guarded = [&](net::NodeId u, net::NodeId to) -> net::NodeId {
    if (!alive(to) || !link_ok(u, to)) return sim::kNoSend;
    return to;
  };
  const auto round = [&](auto&& dest_of) {
    auto inbox = m.comm_cycle<V>(
        [&](net::NodeId u) -> std::optional<sim::Send<V>> {
          if (!have[u]) return std::nullopt;
          const net::NodeId to = dest_of(u);
          if (to == sim::kNoSend) return std::nullopt;
          return sim::Send<V>{to, value};
        });
    m.for_each_node([&](net::NodeId u) {
      if (inbox[u]) have[u] = *inbox[u];
    });
    ++rep.base_cycles;
  };

  // Phase 1: binomial tree inside the root's cluster.
  for (unsigned i = 0; i < w; ++i) {
    round([&](net::NodeId u) -> net::NodeId {
      const auto a = d.decode(u);
      if (a.cls != root_addr.cls || a.cluster != root_addr.cluster)
        return sim::kNoSend;
      const dc::u64 rel = a.node ^ root_addr.node;
      if (rel >= dc::bits::pow2(i)) return sim::kNoSend;
      return guarded(u, d.cluster_neighbor(u, i));
    });
  }
  // Phase 2: the root cluster crosses into one node of every foreign
  // cluster.
  round([&](net::NodeId u) { return guarded(u, d.cross_neighbor(u)); });
  // Phase 3: binomial tree inside every foreign-class cluster.
  for (unsigned i = 0; i < w; ++i) {
    round([&](net::NodeId u) -> net::NodeId {
      const auto a = d.decode(u);
      if (a.cls == root_addr.cls) return sim::kNoSend;
      const dc::u64 rel = a.node ^ root_addr.cluster;
      if (rel >= dc::bits::pow2(i)) return sim::kNoSend;
      return guarded(u, d.cluster_neighbor(u, i));
    });
  }
  // Phase 4: the whole foreign class crosses back.
  round([&](net::NodeId u) -> net::NodeId {
    const auto a = d.decode(u);
    if (a.cls == root_addr.cls) return sim::kNoSend;
    return guarded(u, d.cross_neighbor(u));
  });

  // Detect pruned nodes and repair each from its nearest current holder.
  std::vector<net::NodeId> missing;
  for (net::NodeId u = 0; u < n_nodes; ++u)
    if (alive(u) && !have[u]) missing.push_back(u);

  if (!missing.empty()) {
    sim::TraceScope phase(m.trace(), m.trace_track(), "phase:repair");
    std::vector<sim::LogicalMessage<V>> repairs;
    repairs.reserve(missing.size());
    for (const net::NodeId v : missing) {
      net::NodeId holder = root;
      unsigned best = d.distance(root, v);
      for (net::NodeId h = 0; h < n_nodes; ++h) {
        if (!have[h]) continue;
        const unsigned dist = d.distance(h, v);
        if (dist < best) {
          best = dist;
          holder = h;
        }
      }
      repairs.push_back(sim::LogicalMessage<V>{holder, v, root, v, value,
                                               /*forced_detour=*/true});
    }
    dc::Rng rng(detour_seed ^ root);
    std::vector<std::optional<V>> recv(n_nodes);
    const sim::FtReport detours =
        sim::deliver_with_detours(m, d, plan, std::move(repairs), rng, recv);
    for (const net::NodeId v : missing) {
      DC_CHECK(recv[v].has_value(), "repair failed to reach node " << v);
      have[v] = *recv[v];
    }
    rep.repair_cycles = detours.repair_cycles;
    rep.repaired = detours.repaired;
    rep.rerouted_hops = detours.rerouted_hops;
    rep.bfs_fallbacks = detours.bfs_fallbacks;
  }

  for (net::NodeId u = 0; u < n_nodes; ++u)
    DC_CHECK(!alive(u) || have[u].has_value(),
             "broadcast failed to reach live node " << u);
  if (report) *report = rep;
  return have;
}

}  // namespace dc::collectives
