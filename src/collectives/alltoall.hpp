// All-to-all personalized exchange (complete exchange / total exchange) on
// the dual-cube: every node starts with a distinct message for every other
// node and ends with the N messages addressed to it.
//
// Classic hypercube dimension sweep, emulated on the recursive
// presentation: at dimension j every node ships, in one (possibly relayed)
// exchange, the bundle of items whose destination differs from its own
// label at bit j. After all 2n-1 dimensions each item has been corrected
// bit by bit and sits at its destination. Cost: 3(2n-2) + 1 cycles of
// bundle-sized messages (1 cycle at dimension 0, 3 at each link-less
// dimension — the paper's emulation factor at work).
#pragma once

#include <utility>
#include <vector>

#include "core/dimension_exchange.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::collectives {

/// messages[u][v] = payload from u addressed to v. Returns out[v][u] =
/// that payload, for every pair.
template <typename V>
std::vector<std::vector<V>> dual_alltoall(
    sim::Machine& m, const net::RecursiveDualCube& r,
    const std::vector<std::vector<V>>& messages) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  const std::size_t n_nodes = r.node_count();
  DC_REQUIRE(messages.size() == n_nodes, "one bundle per node required");
  for (const auto& bundle : messages)
    DC_REQUIRE(bundle.size() == n_nodes, "one payload per destination");

  // In-flight item: (origin, destination, payload).
  struct Item {
    net::NodeId origin;
    net::NodeId dest;
    V payload;
  };
  using Bundle = std::vector<Item>;
  std::vector<Bundle> held(n_nodes);
  m.for_each_node([&](net::NodeId u) {
    held[u].reserve(n_nodes);
    for (net::NodeId v = 0; v < n_nodes; ++v)
      held[u].push_back({u, v, messages[u][v]});
  });

  for (unsigned j = 0; j < r.label_bits(); ++j) {
    // Split: items whose destination disagrees with us at bit j leave.
    std::vector<Bundle> outgoing(n_nodes);
    m.compute_step([&](net::NodeId u) {
      Bundle keep;
      keep.reserve(held[u].size());
      for (auto& item : held[u]) {
        if (dc::bits::get(item.dest, j) != dc::bits::get(u, j)) {
          outgoing[u].push_back(std::move(item));
        } else {
          keep.push_back(std::move(item));
        }
      }
      held[u] = std::move(keep);
      m.add_ops(held[u].size() + outgoing[u].size());
    });
    auto received = dc::core::dimension_exchange(m, r, j, outgoing);
    m.for_each_node([&](net::NodeId u) {
      for (auto& item : received[u]) held[u].push_back(std::move(item));
    });
  }

  std::vector<std::vector<V>> out(n_nodes, std::vector<V>(n_nodes));
  m.for_each_node([&](net::NodeId u) {
    DC_CHECK(held[u].size() == n_nodes, "complete exchange lost items");
    for (auto& item : held[u]) {
      DC_CHECK(item.dest == u, "item finished at the wrong node");
      out[u][item.origin] = std::move(item.payload);
    }
  });
  return out;
}

}  // namespace dc::collectives
