// All-to-all personalized exchange (complete exchange / total exchange) on
// the dual-cube: every node starts with a distinct message for every other
// node and ends with the N messages addressed to it.
//
// Classic hypercube dimension sweep, emulated on the recursive
// presentation: at dimension j every node ships, in one (possibly relayed)
// exchange, the bundle of items whose destination differs from its own
// label at bit j. After all 2n-1 dimensions each item has been corrected
// bit by bit and sits at its destination. Cost: 3(2n-2) + 1 cycles of
// bundle-sized messages (1 cycle at dimension 0, 3 at each link-less
// dimension — the paper's emulation factor at work).
//
// The bundles are naturally fixed-width: at the start of round j every node
// holds exactly N items (dest bits [0, j) already agree with its label) and
// exactly half of them disagree at bit j, so every message of every cycle
// is an N/2-item block. The in-flight state therefore lives in node-major
// Item planes and each dimension sweep is a dimension_exchange_blocks under
// one ObliviousSection — on compiled replay the whole collective is a
// sequence of contiguous stride copies.
#pragma once

#include <utility>
#include <vector>

#include "core/dimension_exchange.hpp"
#include "sim/oblivious.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::collectives {

/// messages[u][v] = payload from u addressed to v. Returns out[v][u] =
/// that payload, for every pair.
template <typename V>
std::vector<std::vector<V>> dual_alltoall(
    sim::Machine& m, const net::RecursiveDualCube& r,
    const std::vector<std::vector<V>>& messages) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  const std::size_t n_nodes = r.node_count();
  DC_REQUIRE(messages.size() == n_nodes, "one bundle per node required");
  for (const auto& bundle : messages)
    DC_REQUIRE(bundle.size() == n_nodes, "one payload per destination");

  // In-flight item: (origin, destination, payload).
  struct Item {
    net::NodeId origin;
    net::NodeId dest;
    V payload;
  };
  const std::size_t half = n_nodes / 2;  // outgoing bundle width, every round
  std::vector<Item> held(n_nodes * n_nodes);   // N items per node, always
  std::vector<Item> outgoing(n_nodes * half);  // N/2 items per node
  std::vector<Item> received;
  m.for_each_node([&](net::NodeId u) {
    Item* const mine = held.data() + u * n_nodes;
    for (net::NodeId v = 0; v < n_nodes; ++v) mine[v] = {u, v, messages[u][v]};
  });

  sim::ObliviousSection sched(m, "dual_alltoall", {r.order()});
  for (unsigned j = 0; j < r.label_bits(); ++j) {
    // Split: items whose destination disagrees with us at bit j leave;
    // kept items compact to the front of the node's held stride.
    m.compute_step([&](net::NodeId u) {
      Item* const mine = held.data() + u * n_nodes;
      Item* const out = outgoing.data() + u * half;
      std::size_t nk = 0, no = 0;
      for (std::size_t k = 0; k < n_nodes; ++k) {
        if (dc::bits::get(mine[k].dest, j) != dc::bits::get(u, j)) {
          out[no++] = std::move(mine[k]);
        } else {
          if (nk != k) mine[nk] = std::move(mine[k]);
          ++nk;
        }
      }
      DC_CHECK(no == half, "complete exchange bundle width drifted");
      m.add_ops(n_nodes);
    });
    dc::core::dimension_exchange_blocks(m, sched, r, j, outgoing, half,
                                        received);
    m.for_each_node([&](net::NodeId u) {
      std::copy_n(std::make_move_iterator(received.begin() +
                                          static_cast<std::ptrdiff_t>(u * half)),
                  half, held.begin() + static_cast<std::ptrdiff_t>(
                                           u * n_nodes + half));
    });
  }
  sched.commit();

  std::vector<std::vector<V>> out(n_nodes, std::vector<V>(n_nodes));
  m.for_each_node([&](net::NodeId u) {
    const Item* const mine = held.data() + u * n_nodes;
    for (std::size_t k = 0; k < n_nodes; ++k) {
      DC_CHECK(mine[k].dest == u, "item finished at the wrong node");
      out[u][mine[k].origin] = std::move(held[u * n_nodes + k].payload);
    }
  });
  return out;
}

}  // namespace dc::collectives
