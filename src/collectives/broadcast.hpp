// One-to-all broadcast on the dual-cube via the cluster technique — the
// collective-communication direction the paper cites (its reference [7],
// "Efficient collective communications in dual-cube") and lists as future
// application work.
//
// Schedule (root in class c, cluster K, 2n cycles total = the diameter, so
// the schedule is optimal):
//   1. binomial broadcast inside the root's cluster        (n-1 cycles)
//   2. the whole root cluster crosses over — node (c,K,j)'s partner lies in
//      class-(1-c) cluster j, so every foreign-class cluster now holds one
//      copy                                                (1 cycle)
//   3. binomial broadcast inside every foreign-class cluster (n-1 cycles)
//   4. every foreign-class node crosses over, covering all remaining
//      same-class nodes                                    (1 cycle)
#pragma once

#include <optional>
#include <vector>

#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/dual_cube.hpp"

namespace dc::collectives {

/// Broadcasts `value` from `root` to every node of D_n. Returns the
/// per-node received values (all equal to `value`). Costs 2n comm cycles.
template <typename V>
std::vector<V> dual_broadcast(sim::Machine& m, const net::DualCube& d,
                              net::NodeId root, const V& value) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(root < d.node_count(), "root out of range");
  const std::size_t n_nodes = d.node_count();
  const unsigned w = d.order() - 1;
  const auto root_addr = d.decode(root);

  std::vector<std::optional<V>> have(n_nodes);
  have[root] = value;

  // All 2n cycles are fixed by (order, root) — the holder set evolves
  // deterministically — so the broadcast compiles to one schedule per root.
  sim::ObliviousSection sched(m, "dual_broadcast", {root});
  const auto absorb = [&](sim::Inbox<V>& inbox) {
    m.for_each_node([&](net::NodeId u) {
      if (inbox[u]) have[u] = *inbox[u];
    });
  };

  // Phase 1: binomial tree inside the root's cluster. After step i, the
  // holders are the nodes whose node-ID differs from the root's only in
  // bits below i.
  for (unsigned i = 0; i < w; ++i) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (!have[u]) return sim::kNoSend;
          const auto a = d.decode(u);
          if (a.cls != root_addr.cls || a.cluster != root_addr.cluster)
            return sim::kNoSend;
          const dc::u64 rel = a.node ^ root_addr.node;
          if (rel >= dc::bits::pow2(i)) return sim::kNoSend;
          return d.cluster_neighbor(u, i);
        },
        [&](net::NodeId) { return value; });
    absorb(inbox);
  }

  // Phase 2: the root cluster crosses into one node of every foreign
  // cluster.
  {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (!have[u]) return sim::kNoSend;
          return d.cross_neighbor(u);
        },
        [&](net::NodeId) { return value; });
    absorb(inbox);
  }

  // Phase 3: binomial tree inside every foreign-class cluster. Each such
  // cluster holds exactly one copy, at the node whose node-ID equals the
  // root's cluster ID.
  for (unsigned i = 0; i < w; ++i) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (!have[u]) return sim::kNoSend;
          const auto a = d.decode(u);
          if (a.cls == root_addr.cls) return sim::kNoSend;
          const dc::u64 rel = a.node ^ root_addr.cluster;
          if (rel >= dc::bits::pow2(i)) return sim::kNoSend;
          return d.cluster_neighbor(u, i);
        },
        [&](net::NodeId) { return value; });
    absorb(inbox);
  }

  // Phase 4: the whole foreign class crosses back.
  {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (!have[u]) return sim::kNoSend;
          const auto a = d.decode(u);
          if (a.cls == root_addr.cls) return sim::kNoSend;
          return d.cross_neighbor(u);
        },
        [&](net::NodeId) { return value; });
    absorb(inbox);
  }
  sched.commit();

  std::vector<V> out;
  out.reserve(n_nodes);
  for (net::NodeId u = 0; u < n_nodes; ++u) {
    DC_CHECK(have[u].has_value(), "broadcast failed to reach node " << u);
    out.push_back(*have[u]);
  }
  return out;
}

/// Binomial one-to-all broadcast on Q_d (baseline): d cycles.
template <typename V>
std::vector<V> cube_broadcast(sim::Machine& m, const net::Hypercube& q,
                              net::NodeId root, const V& value) {
  DC_REQUIRE(root < q.node_count(), "root out of range");
  const std::size_t n_nodes = q.node_count();
  // std::uint8_t (not vector<bool>): parallel per-node writes need distinct
  // memory locations.
  std::vector<std::uint8_t> have(n_nodes, 0);
  have[root] = 1;
  sim::ObliviousSection sched(m, "cube_broadcast", {root});
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) -> net::NodeId {
          if (!have[u]) return sim::kNoSend;
          if ((u ^ root) >= dc::bits::pow2(i)) return sim::kNoSend;
          return q.neighbor(u, i);
        },
        [&](net::NodeId) { return value; });
    m.for_each_node([&](net::NodeId u) {
      if (inbox[u]) have[u] = 1;
    });
  }
  sched.commit();
  std::vector<V> out(n_nodes, value);
  for (net::NodeId u = 0; u < n_nodes; ++u)
    DC_CHECK(have[u], "broadcast failed to reach node " << u);
  return out;
}

}  // namespace dc::collectives
