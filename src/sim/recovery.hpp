// Self-healing execution over a dynamic fault timeline.
//
// A FaultTimeline (sim/faults.hpp) makes the faulted view a function of
// the cycle index: links flap, nodes die and rejoin. The fault-tolerant
// collectives, however, plan against one frozen FaultPlan — proxies,
// detour routes and schedules are all derived from a single snapshot. The
// RecoveryDriver closes that gap with retry-with-replan:
//
//   1. Attach the timeline to the machine under kStrict. Every cycle is
//      filtered against the faults live *now*; the schedule path is
//      forced to kInterpreted (and every compiled entry point refuses a
//      faulted machine outright), so no stale schedule can ever replay —
//      each epoch's FaultyTopology view fingerprints differently anyway.
//   2. Run work in *phases*: run_phase(label, body) hands `body` a
//      FaultPlan snapshot of the current epoch and executes it. The body
//      must be restartable — it reads its inputs from a caller-owned
//      checkpoint and only publishes results when it returns.
//   3. If an epoch change mid-phase makes the snapshot stale, the strict
//      filter (or the detour router hitting a disconnection) throws
//      FaultError. The driver pays a bounded backoff of idle machine
//      cycles — advancing the clock so transient windows can expire —
//      re-snapshots the new epoch (re-plan), and retries the phase from
//      its checkpoint.
//   4. A configurable retry budget bounds the total number of retries.
//      On exhaustion the driver either degrades — one final attempt with
//      the machine flipped to FaultPolicy::kDegrade, so residual fault
//      touches drop messages (counted in Counters::messages_lost) instead
//      of aborting — or rethrows, per RetryPolicy.
//
// The driver traces "recovery_retry" / "recovery_replan" instants and
// counts retries/replans into the metrics registry (sim.fault.retries,
// sim.fault.replans); phase bodies get their own "phase:" spans from the
// collectives they call. resilient_dual_prefix / resilient_dual_broadcast
// below wrap the existing fault-tolerant collectives as single retriable
// phases; the fault-tolerant sort (core/ft_dual_sort.hpp) runs one phase
// per bitonic level so completed levels are never re-executed after a
// link flap.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "collectives/ft_broadcast.hpp"
#include "core/ft_dual_prefix.hpp"
#include "sim/fault_transport.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "support/check.hpp"

namespace dc::sim {

/// Bounds on the driver's self-healing behavior.
struct RetryPolicy {
  /// Total retries across all phases of one driver (a phase's first
  /// attempt is free). 0 = fail on the first mid-phase fault.
  std::size_t retry_budget = 8;
  /// Idle machine cycles paid before retry k of a phase: k * backoff_cycles
  /// (linear backoff — each cycle advances the timeline clock, so flap
  /// windows expire instead of being retried into forever).
  std::uint64_t backoff_cycles = 2;
  /// On budget exhaustion: true = one final attempt under
  /// FaultPolicy::kDegrade (messages touching faults are dropped and
  /// counted, the collective completes degraded), false = rethrow the
  /// FaultError to the caller.
  bool degrade_on_exhaustion = true;
};

/// What the self-healing run actually did.
struct RecoveryReport {
  std::size_t phases = 0;          ///< run_phase calls
  std::size_t attempts = 0;        ///< phase executions incl. retries
  std::size_t retries = 0;         ///< attempts beyond each phase's first
  std::size_t replans = 0;         ///< fresh snapshots taken after a fault
  std::size_t restarts = 0;        ///< caller-signalled restarts (dead set grew)
  std::uint64_t backoff_cycles = 0;  ///< idle cycles paid waiting out faults
  bool degraded = false;           ///< budget exhausted, finished in kDegrade
  FtReport transport;              ///< accumulated detour-transport costs
};

/// Drives retriable phases of a collective against a Machine with an
/// attached FaultTimeline. Construction attaches the timeline (kStrict);
/// destruction detaches it and restores the machine's previous fault
/// state (none).
class RecoveryDriver {
 public:
  RecoveryDriver(Machine& m, std::shared_ptr<const FaultTimeline> timeline,
                 RetryPolicy policy = {})
      : m_(m), timeline_(std::move(timeline)), policy_(policy) {
    DC_REQUIRE(timeline_ != nullptr, "recovery needs a fault timeline");
    DC_REQUIRE(!m_.has_faults(),
               "recovery driver owns the machine's fault attachment");
    m_.attach_fault_timeline(timeline_, FaultPolicy::kStrict);
    if (MetricsRegistry::armed()) {
      auto& reg = MetricsRegistry::instance();
      metric_retries_ = &reg.counter("sim.fault.retries");
      metric_replans_ = &reg.counter("sim.fault.replans");
    }
  }
  ~RecoveryDriver() { m_.clear_faults(); }
  RecoveryDriver(const RecoveryDriver&) = delete;
  RecoveryDriver& operator=(const RecoveryDriver&) = delete;

  Machine& machine() { return m_; }
  const FaultTimeline& timeline() const { return *timeline_; }
  const RetryPolicy& policy() const { return policy_; }
  const RecoveryReport& report() const { return report_; }
  FtReport* transport() { return &report_.transport; }

  /// The machine's current cycle index — the timeline clock.
  std::uint64_t now() const { return m_.counters().comm_cycles; }

  /// The faults live right now, frozen as a plan (what the next phase
  /// should route against).
  FaultPlan snapshot() const { return timeline_->snapshot(now()); }

  /// Notes a caller-driven restart (e.g. the sort detecting that the dead
  /// set grew past what its in-flight state was built for).
  void note_restart() { ++report_.restarts; }

  /// Runs one retriable phase. `body(plan)` executes machine steps routed
  /// against `plan` (the current epoch's snapshot) and must be
  /// restartable: read inputs from caller-owned checkpoint state, publish
  /// results only on return. On FaultError the driver backs off,
  /// re-snapshots and re-invokes `body` with the fresh plan, up to the
  /// retry budget; see RetryPolicy for what happens past it. `label` is a
  /// trace span name and should carry the "phase:" prefix.
  template <typename Body>
  void run_phase(const char* label, Body&& body) {
    ++report_.phases;
    for (std::size_t attempt = 0;; ++attempt) {
      ++report_.attempts;
      try {
        TraceScope span(m_.trace(), m_.trace_track(), label);
        body(snapshot());
        return;
      } catch (const FaultError&) {
        if (retries_used_ >= policy_.retry_budget) {
          if (TraceRecorder* rec = m_.trace()) {
            rec->instant(m_.trace_track(), 0, "recovery_exhausted", "retries",
                         retries_used_, "cycle", now());
          }
          if (!policy_.degrade_on_exhaustion) throw;
          run_degraded(label, body);
          return;
        }
        ++retries_used_;
        ++report_.retries;
        if (metric_retries_) metric_retries_->add();
        if (TraceRecorder* rec = m_.trace()) {
          rec->instant(m_.trace_track(), 0, "recovery_retry", "attempt",
                       attempt + 1, "cycle", now());
        }
        backoff(attempt + 1);
        ++report_.replans;
        if (metric_replans_) metric_replans_->add();
        if (TraceRecorder* rec = m_.trace()) {
          rec->instant(m_.trace_track(), 0, "recovery_replan", "epoch",
                       timeline_->epoch_of(now()), "cycle", now());
        }
      }
    }
  }

 private:
  /// Pays `k * backoff_cycles` idle comm cycles: every node plans no
  /// message, so the cycle is pure clock advance (the fault filter still
  /// runs, costing nothing on an empty outbox).
  void backoff(std::size_t k) {
    const std::uint64_t cycles = policy_.backoff_cycles * k;
    for (std::uint64_t i = 0; i < cycles; ++i) {
      m_.comm_cycle<char>(
          [](net::NodeId) { return std::optional<Send<char>>{}; });
    }
    report_.backoff_cycles += cycles;
  }

  /// The budget-exhausted final attempt: flip the machine to kDegrade so
  /// residual fault touches drop instead of throwing, run the body once
  /// against the current snapshot, restore kStrict.
  template <typename Body>
  void run_degraded(const char* label, Body&& body) {
    report_.degraded = true;
    m_.clear_faults();
    m_.attach_fault_timeline(timeline_, FaultPolicy::kDegrade);
    try {
      TraceScope span(m_.trace(), m_.trace_track(), label);
      body(snapshot());
    } catch (...) {
      m_.clear_faults();
      m_.attach_fault_timeline(timeline_, FaultPolicy::kStrict);
      throw;
    }
    m_.clear_faults();
    m_.attach_fault_timeline(timeline_, FaultPolicy::kStrict);
  }

  Machine& m_;
  std::shared_ptr<const FaultTimeline> timeline_;
  RetryPolicy policy_;
  RecoveryReport report_;
  std::size_t retries_used_ = 0;
  MetricCounter* metric_retries_ = nullptr;
  MetricCounter* metric_replans_ = nullptr;
};

/// D_prefix as one retriable phase: ft_dual_prefix against the epoch
/// snapshot, retried with replan on mid-run epoch changes. Result slots of
/// nodes dead in the *final* successful attempt's snapshot are nullopt,
/// exactly as in the static fault-tolerant collective.
template <core::Monoid M>
std::vector<std::optional<typename M::value_type>> resilient_dual_prefix(
    RecoveryDriver& drv, const net::DualCube& d, const M& op,
    const std::vector<typename M::value_type>& data, bool inclusive = true) {
  std::vector<std::optional<typename M::value_type>> out;
  drv.run_phase("phase:resilient_prefix", [&](const FaultPlan& plan) {
    FtReport rep;
    out = core::ft_dual_prefix(drv.machine(), d, op, data, plan, inclusive,
                               &rep);
    drv.transport()->base_cycles = rep.base_cycles;
    drv.transport()->repair_cycles += rep.repair_cycles;
    drv.transport()->repaired += rep.repaired;
    drv.transport()->rerouted_hops += rep.rerouted_hops;
    drv.transport()->bfs_fallbacks += rep.bfs_fallbacks;
  });
  return out;
}

/// D_broadcast as one retriable phase; same contract as
/// resilient_dual_prefix. The root must survive the whole timeline.
template <typename V>
std::vector<std::optional<V>> resilient_dual_broadcast(
    RecoveryDriver& drv, const net::DualCube& d, net::NodeId root,
    const V& value) {
  std::vector<std::optional<V>> out;
  drv.run_phase("phase:resilient_broadcast", [&](const FaultPlan& plan) {
    FtReport rep;
    out = collectives::ft_dual_broadcast(drv.machine(), d, root, value, plan,
                                         &rep);
    drv.transport()->base_cycles = rep.base_cycles;
    drv.transport()->repair_cycles += rep.repair_cycles;
    drv.transport()->repaired += rep.repaired;
    drv.transport()->rerouted_hops += rep.rerouted_hops;
    drv.transport()->bfs_fallbacks += rep.bfs_fallbacks;
  });
  return out;
}

}  // namespace dc::sim
