// Cluster-sharded execution engine for mega-scale dual-cube runs.
//
// One ShardEngine simulates a dual-cube D_n whose node state no longer fits
// (or should no longer fit) one flat set of global arrays. The topology is
// cut along the recursive D_(n-1) decomposition (topology/shard_plan.hpp):
// every shard holds an equal, contiguous run of whole clusters, so the
// (n-1)-cube exchanges of Cube_prefix stay entirely shard-local and run on
// an ordinary per-shard Machine — same counters, traces, SIMD replay
// kernels and fault refusal as the flat engine. Only cross-edges leave a
// shard, and for the prefix algorithms their traffic is fully determined by
// one cluster total per cluster; the engine therefore never materializes a
// global cross-edge comm plane and instead routes those values through a
// compact inter-shard exchange buffer of 2^n entries (core/
// sharded_prefix.hpp holds the algorithm-side algebra; docs/MODEL.md
// "Sharded execution" documents the accounting contract).
//
// Memory model (the contract the CI mega-smoke enforces):
//
//   working_bytes(e)  = shard working set: t-slice + s-slice + one comm
//                       plane of element size e, plus the plane's
//                       generation stamps -> shard_nodes() * (3e + 8).
//   store_bytes(e)    = the full result store, node_count() * e.
//
// With no budget the run keeps everything resident (peak ~ working +
// store). With --mem-budget=B, a run whose working + store exceeds B
// spills: the result store is kept per-shard, written slice-by-slice to an
// unlinked temp file, and each machine's comm pool is trimmed after its
// pass, so peak resident stays ~ working_bytes — linear in N/K. When even
// one shard's working set exceeds B the run goes fully out of core: the
// shard's t/s state lives in the spill file and every synchronous cycle
// streams it through a cluster-aligned window sized to the budget —
// cycle-synchrony within the shard is a fidelity contract (each comm cycle
// really sweeps the whole shard before the next begins), so an
// out-of-core shard pays the full per-cycle re-streaming cost. That cost
// is exactly what adding shards buys back: with enough shards the working
// set drops under the budget and cycles run in core. Only a budget below
// even one cluster's streaming window is refused up front.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include <unistd.h>

#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/oblivious.hpp"
#include "sim/trace.hpp"
#include "support/check.hpp"
#include "topology/dual_cube.hpp"
#include "topology/shard_plan.hpp"

namespace dc::sim {

/// How the sharded prefix front-end executes step 1's in-cluster exchange
/// cycles on each per-shard machine. All three paths are bit-identical in
/// results, Counters and edge loads; they differ only in wall-clock cost
/// and in how much machinery each cycle exercises.
enum class ShardExchangeMode {
  kFused,        ///< one fused exchange+combine sweep per cycle (fastest;
                 ///< no comm plane exists at all)
  kTiledReplay,  ///< compiled cluster-sized schedule slice replayed across
                 ///< blocks through the SIMD plane kernels
  kInterpreted,  ///< full per-message planning + validation every cycle
};

/// Run-to-run accumulated sharding statistics (reset with the counters).
struct ShardStats {
  std::uint64_t runs = 0;              ///< sharded algorithm runs completed
  std::uint64_t cross_edge_bytes = 0;  ///< compact exchange-buffer traffic
  std::uint64_t spill_count = 0;       ///< slices written out of core
  std::uint64_t spill_bytes = 0;       ///< bytes written out of core
  bool last_run_spilled = false;       ///< previous run used the spill path
  bool last_run_out_of_core = false;   ///< previous run streamed its working
                                       ///< state cycle-by-cycle
};

namespace detail {

/// Type-erased base for the engine's pooled per-payload-type scratch, so
/// one engine can serve runs over different monoid value types the same way
/// CommArena serves different payload types.
struct ShardScratchBase {
  virtual ~ShardScratchBase() = default;
  virtual std::size_t resident_bytes() const = 0;
};

/// Reusable arrays for one payload type V. The sharded prefix front-end
/// sizes them on first use; steady-state runs then resize within capacity
/// and allocate nothing.
template <typename V>
struct ShardScratch final : ShardScratchBase {
  std::vector<V> t;        ///< shard-local t slice (one shard at a time)
  std::vector<V> s;        ///< result store: global (resident) or slice (spill)
  std::vector<V> totals0;  ///< T0[m]: class-0 cluster totals, by cluster ID
  std::vector<V> totals1;  ///< T1[j]: class-1 cluster totals, by cluster ID
  std::vector<V> prefix0;  ///< P0[m] = combine of T0[m' < m]
  std::vector<V> prefix1;  ///< P1[j] = combine of T1[j' < j]

  std::size_t resident_bytes() const override {
    return (t.capacity() + s.capacity() + totals0.capacity() +
            totals1.capacity() + prefix0.capacity() + prefix1.capacity()) *
           sizeof(V);
  }
};

/// Unlinked POSIX temp file backing out-of-core result slices. Created
/// lazily on the first write (a resident-only engine never touches the
/// filesystem); unlinked immediately, so the space is reclaimed on close
/// even if the process dies.
class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile() {
    if (fd_ >= 0) ::close(fd_);
  }
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  void write(std::uint64_t offset, const void* p, std::size_t bytes) {
    ensure_open();
    const char* c = static_cast<const char*>(p);
    while (bytes > 0) {
      const ::ssize_t n = ::pwrite(fd_, c, bytes, static_cast<::off_t>(offset));
      DC_CHECK(n > 0, "shard spill write failed");
      c += n;
      offset += static_cast<std::uint64_t>(n);
      bytes -= static_cast<std::size_t>(n);
    }
  }

  void read(std::uint64_t offset, void* p, std::size_t bytes) const {
    DC_CHECK(fd_ >= 0, "shard spill read before any write");
    char* c = static_cast<char*>(p);
    while (bytes > 0) {
      const ::ssize_t n = ::pread(fd_, c, bytes, static_cast<::off_t>(offset));
      DC_CHECK(n > 0, "shard spill read failed");
      c += n;
      offset += static_cast<std::uint64_t>(n);
      bytes -= static_cast<std::size_t>(n);
    }
  }

 private:
  void ensure_open() {
    if (fd_ >= 0) return;
    const char* dir = std::getenv("TMPDIR");
    if (!dir || !*dir) dir = "/tmp";
    std::string path = std::string(dir) + "/dc_shard_spill_XXXXXX";
    fd_ = ::mkstemp(path.data());
    DC_CHECK(fd_ >= 0, "cannot create shard spill file under " + path);
    ::unlink(path.c_str());
  }

  int fd_ = -1;
};

}  // namespace detail

/// K per-shard Machines over one shared ShardClusterTopology, plus the
/// compact-exchange bookkeeping that keeps a sharded run's Counters, edge
/// loads and results bit-identical to the flat engine's (see
/// core/sharded_prefix.hpp for the proof obligations the front-end meets).
class ShardEngine {
 public:
  /// `mem_budget_bytes` = 0 means unbudgeted (never spill). `validate`
  /// is forwarded to every per-shard machine, exactly like Machine's flag.
  ShardEngine(const net::DualCube& d, unsigned shards,
              std::size_t mem_budget_bytes = 0, bool validate = true)
      : d_(d),
        plan_(d, shards),
        shard_topo_(d.order() - 1, plan_.clusters_per_shard()),
        budget_(mem_budget_bytes) {
    machines_.reserve(shards);
    for (unsigned k = 0; k < shards; ++k) {
      machines_.push_back(std::make_unique<Machine>(shard_topo_, validate));
    }
  }

  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  const net::DualCube& dual_cube() const { return d_; }
  const net::ShardPlan& plan() const { return plan_; }
  const net::ShardClusterTopology& shard_topology() const {
    return shard_topo_;
  }
  unsigned shard_count() const { return plan_.shard_count(); }

  /// Selects the in-cluster exchange path for subsequent runs. The engine
  /// falls back to kInterpreted on its own whenever fidelity demands it
  /// (edge-load accounting, an interpreted schedule path, or a payload the
  /// plane kernels cannot carry).
  void set_exchange_mode(ShardExchangeMode m) { exchange_mode_ = m; }
  ShardExchangeMode exchange_mode() const { return exchange_mode_; }
  net::NodeId node_count() const { return d_.node_count(); }
  net::NodeId shard_nodes() const { return plan_.shard_node_count(); }
  std::size_t mem_budget_bytes() const { return budget_; }

  Machine& machine(unsigned k) {
    DC_REQUIRE(k < machines_.size(), "shard index out of range");
    return *machines_[k];
  }

  /// Localizes a global-label fault timeline onto the per-shard machines:
  /// node events map to (owning shard, local index); link events must
  /// join two nodes of one shard's cluster blocks (the engine virtualizes
  /// cross-cluster links host-side, so they cannot fault — rejected with
  /// SimError); drop windows apply to every shard, with the drop-hash
  /// seed decorrelated per shard so shards do not lose mirror-image
  /// messages. Every per-shard machine then interprets its cycles (the
  /// sharded front-ends pick the interpreted exchange automatically via
  /// Machine::schedule_path). Under kStrict a fault touch aborts the
  /// whole run; kDegrade drops and counts per shard.
  void attach_fault_timeline(const FaultTimeline& global,
                             FaultPolicy policy = FaultPolicy::kStrict) {
    std::vector<FaultTimeline> local;
    local.reserve(machines_.size());
    for (std::size_t k = 0; k < machines_.size(); ++k)
      local.emplace_back(global.seed() ^ (k * 0x9e3779b97f4a7c15ull));
    for (const auto& ev : global.node_events()) {
      DC_REQUIRE(ev.node < node_count(),
                 "fault timeline names node " << ev.node << " outside "
                                              << d_.name());
      const unsigned k = plan_.shard_of_node(ev.node);
      const net::NodeId lu = plan_.local_index(ev.node);
      local[k].node_down(lu, ev.from);
      if (ev.to != FaultTimeline::kForever) local[k].node_up(lu, ev.to);
    }
    for (const auto& ev : global.link_events()) {
      const unsigned ku = plan_.shard_of_node(ev.u);
      const unsigned kv = plan_.shard_of_node(ev.v);
      if (ku != kv || !shard_topo_.has_edge(plan_.local_index(ev.u),
                                            plan_.local_index(ev.v))) {
        throw SimError("fault timeline link " + std::to_string(ev.u) + "-" +
                       std::to_string(ev.v) +
                       " is virtualized by the sharded engine (cross-cluster "
                       "exchange is host-side); only in-cluster links can "
                       "fault under sharding");
      }
      local[ku].link_down(plan_.local_index(ev.u), plan_.local_index(ev.v),
                          ev.from);
      if (ev.to != FaultTimeline::kForever)
        local[ku].link_up(plan_.local_index(ev.u), plan_.local_index(ev.v),
                          ev.to);
    }
    for (const auto& w : global.drop_windows()) {
      for (auto& tl : local) tl.drop_window(w.permille, w.from, w.to);
    }
    for (std::size_t k = 0; k < machines_.size(); ++k) {
      machines_[k]->attach_fault_timeline(
          std::make_shared<const FaultTimeline>(std::move(local[k])), policy);
    }
  }
  void clear_faults() {
    for (auto& m : machines_) m->clear_faults();
  }
  bool has_faults() const { return machines_[0]->has_faults(); }

  // ---- memory model -------------------------------------------------

  /// One shard's working set for element size `elem_bytes`: t-slice,
  /// s-slice and one block comm plane (values + generation stamps).
  std::size_t working_bytes(std::size_t elem_bytes) const {
    return static_cast<std::size_t>(shard_nodes()) *
           (3 * elem_bytes + sizeof(std::uint64_t));
  }
  /// The full result store kept live when the run does not spill.
  std::size_t store_bytes(std::size_t elem_bytes) const {
    return static_cast<std::size_t>(node_count()) * elem_bytes;
  }
  /// Whether a run at this element size spills its result store.
  bool will_spill(std::size_t elem_bytes) const {
    return budget_ != 0 &&
           working_bytes(elem_bytes) + store_bytes(elem_bytes) > budget_;
  }
  /// Whether even one shard's working set exceeds the budget, forcing the
  /// run fully out of core: t/s live in the spill file and every
  /// synchronous cycle streams them through a cluster-aligned window.
  bool out_of_core(std::size_t elem_bytes) const {
    return budget_ != 0 && working_bytes(elem_bytes) > budget_;
  }
  /// Nodes per out-of-core streaming window: the largest whole-cluster
  /// multiple whose t+s slices fit in half the budget (the other half is
  /// headroom for exchange arrays, the sink and the page cache's own
  /// buffering), never less than one cluster and never more than a shard.
  net::NodeId oc_window_nodes(std::size_t elem_bytes) const {
    const std::uint64_t csize = cluster_nodes();
    const std::uint64_t cps = plan_.clusters_per_shard();
    std::uint64_t c = budget_ == 0
                          ? cps
                          : static_cast<std::uint64_t>(budget_) /
                                (4 * elem_bytes * csize);
    if (c < 1) c = 1;
    if (c > cps) c = cps;
    return static_cast<net::NodeId>(c * csize);
  }
  /// The smallest budget an out-of-core run accepts: one cluster's t+s
  /// window at double occupancy. Below this not even streaming fits.
  std::size_t oc_floor_bytes(std::size_t elem_bytes) const {
    return 4 * elem_bytes * static_cast<std::size_t>(cluster_nodes());
  }
  /// The peak resident bytes the memory model promises for one run — the
  /// cap the CI mega-smoke enforces with ulimit.
  std::size_t predicted_resident_bytes(std::size_t elem_bytes) const {
    if (out_of_core(elem_bytes)) {
      return 2 * elem_bytes *
             static_cast<std::size_t>(oc_window_nodes(elem_bytes));
    }
    return working_bytes(elem_bytes) +
           (will_spill(elem_bytes) ? 0 : store_bytes(elem_bytes));
  }
  /// Nodes per cluster (= 2^(n-1) for D_n).
  net::NodeId cluster_nodes() const {
    return shard_nodes() / plan_.clusters_per_shard();
  }

  // ---- run lifecycle (called by the algorithm front-end) -------------

  /// Opens one sharded run. Decides (and records in stats) whether this
  /// run spills; `spillable` says whether the payload type supports the
  /// byte-wise out-of-core path (trivially copyable).
  void begin_run(std::size_t elem_bytes, bool spillable) {
    oc_run_ = out_of_core(elem_bytes);
    spilling_ = will_spill(elem_bytes);
    DC_REQUIRE(!oc_run_ || budget_ >= oc_floor_bytes(elem_bytes),
               "memory budget is below even one cluster's out-of-core "
               "streaming window; raise the budget");
    DC_REQUIRE(!(spilling_ || oc_run_) || spillable,
               "this payload type cannot spill out of core (not trivially "
               "copyable); raise the memory budget");
    slice_bytes_ = static_cast<std::uint64_t>(shard_nodes()) * elem_bytes;
  }

  /// Closes one sharded run: books the virtualized portion of the
  /// algorithm's cost so engine counters stay bit-identical to a flat run.
  /// The compact exchange carries cluster totals whose per-node expansion
  /// is exact (docs/MODEL.md), so the cross cycles and the in-cluster
  /// distribution pass are never executed per node; their model costs —
  /// `comm_cycles` synchronous cycles moving `messages` messages,
  /// `comp_steps` parallel steps applying `ops` operator applications —
  /// are accounted here instead.
  void end_run(std::uint64_t comm_cycles, std::uint64_t messages,
               std::uint64_t comp_steps, std::uint64_t ops) {
    virtual_.comm_cycles += comm_cycles;
    virtual_.messages += messages;
    virtual_.comp_steps += comp_steps;
    virtual_.ops += ops;
    ++stats_.runs;
    if (edge_load_on_) ++edge_runs_;
    stats_.last_run_spilled = spilling_;
    stats_.last_run_out_of_core = oc_run_;
    spilling_ = false;
    oc_run_ = false;
  }

  /// True between begin_run and end_run of a run that spills its result
  /// store.
  bool spilling() const { return spilling_; }
  /// True between begin_run and end_run of a run whose working state
  /// streams through the spill file cycle-by-cycle.
  bool out_of_core_run() const { return oc_run_; }

  /// Writes / reads shard `k`'s result slice (spilling runs only; offsets
  /// are slices of begin_run's element size).
  void spill_write(unsigned k, const void* p, std::size_t bytes) {
    spill_.write(std::uint64_t{k} * slice_bytes_, p, bytes);
    ++stats_.spill_count;
    stats_.spill_bytes += bytes;
  }
  void spill_read(unsigned k, void* p, std::size_t bytes) const {
    spill_.read(std::uint64_t{k} * slice_bytes_, p, bytes);
  }

  /// Raw-offset spill I/O for out-of-core runs, whose windows are finer
  /// than whole shard slices (the front-end lays out a t region followed
  /// by an s region). Writes book spill traffic like slice writes do.
  void spill_write_at(std::uint64_t offset, const void* p,
                      std::size_t bytes) {
    spill_.write(offset, p, bytes);
    ++stats_.spill_count;
    stats_.spill_bytes += bytes;
  }
  void spill_read_at(std::uint64_t offset, void* p, std::size_t bytes) const {
    spill_.read(offset, p, bytes);
  }

  /// Releases shard `k`'s pooled comm planes after its pass. Budgeted
  /// engines always trim — with K machines, K pooled planes would sum to a
  /// full global plane, which is exactly what the budget promises not to
  /// keep — trading the zero-steady-state-allocation guarantee for the
  /// cap. Unbudgeted engines keep every pool warm.
  void after_shard_pass(unsigned k) {
    if (budget_ != 0) machine(k).trim_comm_pool();
  }

  /// The compiled cluster-sized schedule slice driving every shard's
  /// in-cluster exchanges (sim/oblivious.hpp cube_exchange_schedule),
  /// fetched once and cached on the engine so steady-state runs never
  /// rebuild a cache key.
  std::shared_ptr<const Schedule> cluster_schedule() {
    if (!cluster_sched_) {
      cluster_sched_ = cube_exchange_schedule(d_.order() - 1);
    }
    return cluster_sched_;
  }

  /// Pooled per-payload-type scratch arrays, shared by every run of this
  /// engine with value type V (steady-state runs allocate nothing).
  template <typename V>
  detail::ShardScratch<V>& scratch() {
    const std::type_index key(typeid(V));
    auto it = scratch_.find(key);
    if (it == scratch_.end()) {
      it = scratch_
               .emplace(key, std::make_unique<detail::ShardScratch<V>>())
               .first;
    }
    return static_cast<detail::ShardScratch<V>&>(*it->second);
  }

  // ---- accounting ----------------------------------------------------

  /// Aggregated step counters, bit-identical to a flat run's: every shard
  /// executes the same synchronous cycles, so cycle and step counts come
  /// from shard 0 (asserted uniform), message and op totals sum across
  /// shards, and the virtualized cross/distribution costs booked by
  /// end_run are added on top.
  Counters counters() const {
    Counters c = machines_[0]->counters();
    for (std::size_t k = 1; k < machines_.size(); ++k) {
      const Counters mk = machines_[k]->counters();
      DC_CHECK(mk.comm_cycles == c.comm_cycles &&
                   mk.comp_steps == c.comp_steps,
               "shards diverged: per-shard machines executed different "
               "step counts");
      c.messages += mk.messages;
      c.ops += mk.ops;
      c.messages_lost += mk.messages_lost;
      c.messages_rerouted += mk.messages_rerouted;
      // Cycles are lock-stepped across shards, so a fault-active cycle is
      // one cycle no matter how many shards saw it.
      c.fault_cycles = std::max(c.fault_cycles, mk.fault_cycles);
    }
    c.comm_cycles += virtual_.comm_cycles;
    c.comp_steps += virtual_.comp_steps;
    c.messages += virtual_.messages;
    c.ops += virtual_.ops;
    return c;
  }

  void reset_counters() {
    for (auto& m : machines_) m->reset_counters();
    virtual_ = Counters{};
    stats_ = ShardStats{};
    edge_runs_ = 0;
  }

  /// The analytically booked model costs (cross cycles + distribution pass)
  /// that `counters()` adds on top of the per-shard machine totals. The
  /// report layer surfaces these separately so phase attribution over the
  /// shard-0 trace can reconcile against the executed portion alone.
  const Counters& virtual_counters() const { return virtual_; }

  const ShardStats& stats() const { return stats_; }

  /// Per-directed-edge accounting across the whole dual-cube. Enable
  /// before the first run; the sharded front-end then interprets every
  /// cycle (tiled replay carries no edge slots), exactly as the flat
  /// engine falls back under edge loads.
  void enable_edge_load() {
    edge_load_on_ = true;
    for (auto& m : machines_) m->enable_edge_load();
  }
  bool edge_load_enabled() const { return edge_load_on_; }

  /// Messages carried by the directed edge u -> v, in global node labels.
  /// Cluster edges come from the owning shard's machine plus the
  /// virtualized distribution pass (one message per directed cluster edge
  /// per run); cross edges are entirely virtualized (two crossings per
  /// run, step 2 and step 4).
  std::uint64_t edge_load(net::NodeId u, net::NodeId v) const {
    if (!edge_load_on_ || u >= node_count() || v >= node_count()) return 0;
    if (v == d_.cross_neighbor(u)) return 2 * edge_runs_;
    const unsigned ku = plan_.shard_of_node(u);
    if (ku != plan_.shard_of_node(v)) return 0;
    const net::NodeId lu = plan_.local_index(u);
    const net::NodeId lv = plan_.local_index(v);
    std::uint64_t total = machines_[ku]->edge_load(lu, lv);
    if (shard_topo_.has_edge(lu, lv)) total += edge_runs_;
    return total;
  }

  // ---- observability -------------------------------------------------

  /// Attaches a recorder: one engine track (phase spans, e.g.
  /// "phase:shard_exchange") plus one track per shard machine.
  void set_trace(TraceRecorder* rec, const std::string& label = "shards") {
    trace_ = rec;
    trace_track_ = trace_ ? trace_->register_track(label) : 0;
    for (std::size_t k = 0; k < machines_.size(); ++k) {
      machines_[k]->set_trace(rec, label + "/shard" + std::to_string(k));
    }
  }
  TraceRecorder* trace() const { return trace_; }
  std::uint32_t trace_track() const { return trace_track_; }

  /// Forwards a cycle profiler to every per-shard machine. Safe because
  /// the host drives shards sequentially — cycles of different shards
  /// never observe the profiler concurrently.
  void attach_profiler(CycleProfiler* profiler) {
    for (auto& m : machines_) m->attach_profiler(profiler);
  }

  /// Opens / closes the compact inter-shard exchange phase on the engine
  /// track and books its buffer traffic. The front-end brackets its
  /// totals->prefixes scan with these.
  void begin_exchange_phase(std::size_t bytes) {
    stats_.cross_edge_bytes += bytes;
    if (trace_) trace_->begin(trace_track_, 0, "phase:shard_exchange");
  }
  void end_exchange_phase() {
    if (trace_) trace_->end(trace_track_, 0, "phase:shard_exchange");
  }

  /// Bytes currently resident in the engine: pooled comm planes across all
  /// shard machines plus the pooled scratch arrays.
  std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const auto& m : machines_) total += m->comm_pool_resident_bytes();
    for (const auto& [k, s] : scratch_) total += s->resident_bytes();
    return total;
  }

  /// Publishes the engine's end-of-run gauges (aggregated step counters
  /// under the flat sim.* names, plus the sim.shard.* family) into the
  /// armed metrics registry. A publish is a run boundary: per-run gauge
  /// families from any previous run (flat or sharded) are cleared first so
  /// a report never mixes stale sim.edge_load.* / sim.shard.* values into
  /// this run's snapshot. No-op when the registry is unarmed.
  void publish_metrics() const {
    if (!MetricsRegistry::armed()) return;
    auto& reg = MetricsRegistry::instance();
    clear_per_run_gauges(reg);
    const Counters c = counters();
    reg.set_gauge("sim.comm_cycles", static_cast<double>(c.comm_cycles));
    reg.set_gauge("sim.comp_steps", static_cast<double>(c.comp_steps));
    reg.set_gauge("sim.messages", static_cast<double>(c.messages));
    reg.set_gauge("sim.shard.count", static_cast<double>(shard_count()));
    reg.set_gauge("sim.shard.resident_bytes",
                  static_cast<double>(resident_bytes()));
    reg.set_gauge("sim.shard.cross_edge_bytes",
                  static_cast<double>(stats_.cross_edge_bytes));
    reg.set_gauge("sim.shard.spill_count",
                  static_cast<double>(stats_.spill_count));
    reg.set_gauge("sim.shard.spill_bytes",
                  static_cast<double>(stats_.spill_bytes));
    if (has_faults()) {
      std::uint64_t epochs = 0;
      std::uint64_t rejoins = 0;
      for (const auto& m : machines_) {
        epochs = std::max(epochs, m->fault_epochs_seen());
        rejoins += m->fault_rejoins();
      }
      reg.set_gauge("sim.fault.messages_lost",
                    static_cast<double>(c.messages_lost));
      reg.set_gauge("sim.fault.cycles", static_cast<double>(c.fault_cycles));
      reg.set_gauge("sim.fault.epochs", static_cast<double>(epochs));
      reg.set_gauge("sim.fault.rejoins", static_cast<double>(rejoins));
    }
  }

 private:
  const net::DualCube& d_;
  net::ShardPlan plan_;
  net::ShardClusterTopology shard_topo_;
  std::size_t budget_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::unordered_map<std::type_index, std::unique_ptr<detail::ShardScratchBase>>
      scratch_;
  ShardExchangeMode exchange_mode_ = ShardExchangeMode::kFused;
  Counters virtual_;  ///< end_run's analytically booked model costs
  ShardStats stats_;
  std::uint64_t edge_runs_ = 0;  ///< runs completed with edge loads on
  bool edge_load_on_ = false;
  bool spilling_ = false;
  bool oc_run_ = false;
  std::uint64_t slice_bytes_ = 0;
  mutable detail::SpillFile spill_;
  std::shared_ptr<const Schedule> cluster_sched_;
  TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;
};

}  // namespace dc::sim
