// ObliviousSection — the driver oblivious algorithms route their
// communication through. One section covers one algorithm run; every
// comm cycle goes through exchange(dest_of, payload_of), where dest_of
// depends only on the topology and the cycle index (that is what makes the
// algorithm oblivious) and payload_of reads the data to ship.
//
// The section picks the execution path once, at construction:
//
//   * interpreted (Machine::schedule_path() == kInterpreted) — every
//     exchange is a plain comm_cycle; nothing is recorded or cached.
//   * record (compiled path, cache miss) — every exchange still runs
//     through comm_cycle, so validation, SimError messages, counters,
//     traces and edge loads are byte-identical to the interpreted path,
//     but the destinations are captured as they are planned. commit()
//     compiles and publishes the schedule; a run that throws never
//     commits, so invalid plans are never cached.
//   * replay (compiled path, cache hit) — exchange skips dest_of entirely
//     and calls Machine::comm_cycle_scheduled: one gather pass, no
//     validation, no claims (see sim/schedule.hpp).
//
// Replay is only correct because the recorded plan is a pure function of
// (topology, algorithm, params): the cache key carries all three plus the
// machine's validation flag, and the topology identity includes the
// adjacency fingerprint so same-named graphs with different edges can
// never share a schedule.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "sim/schedule.hpp"

namespace dc::sim {

class ObliviousSection {
 public:
  /// Opens a section for `algorithm` with schedule-relevant `params` (any
  /// inputs the destination pattern depends on: order, dimension, root...).
  ObliviousSection(Machine& m, std::string algorithm,
                   std::vector<dc::u64> params)
      : m_(m) {
    const bool interpreted =
        m_.schedule_path() == SchedulePath::kInterpreted;
    if (!interpreted) {
      key_ = ScheduleKey{topology_identity(m_.topology()),
                         std::move(algorithm), std::move(params),
                         m_.validating()};
      replay_ = ScheduleCache::instance().find(key_, &origin_);
      if (!replay_) {
        recorder_ = std::make_unique<ScheduleRecorder>(
            static_cast<std::size_t>(m_.node_count()));
      }
    }
    // The section's lifetime is one span on the machine's trace, named by
    // the path it picked ("interp:" / "record:" / "load:" / "replay:" +
    // algorithm — "load:" marks a replay whose schedule was faulted in
    // from the persistent store rather than already resident). The name is
    // interned once per section — algorithm-run granularity, never per
    // cycle — so traced cycles inside stay allocation-free.
    if (TraceRecorder* rec = m_.trace()) {
      const std::string& algo = interpreted ? algorithm : key_.algorithm;
      const char* mode = interpreted ? "interp:"
                         : !replay_  ? "record:"
                         : origin_ == ScheduleOrigin::kDisk ? "load:"
                                                            : "replay:";
      span_name_ = rec->intern(std::string(mode) + algo);
      rec->begin(m_.trace_track(), 0, span_name_);
      if (!interpreted) {
        rec->instant(m_.trace_track(), 0,
                     replay_ ? "schedule_cache_hit" : "schedule_cache_miss");
        if (origin_ == ScheduleOrigin::kDisk) {
          rec->instant(m_.trace_track(), 0, "schedule_load", "cycles",
                       replay_->cycle_count());
        }
      }
    }
  }

  ~ObliviousSection() {
    if (span_name_ && m_.trace())
      m_.trace()->end(m_.trace_track(), 0, span_name_);
  }

  ObliviousSection(const ObliviousSection&) = delete;
  ObliviousSection& operator=(const ObliviousSection&) = delete;

  /// True iff this section replays a cached compiled schedule.
  bool replaying() const { return replay_ != nullptr; }

  /// Where the replayed schedule came from (kMiss while recording).
  ScheduleOrigin origin() const { return origin_; }

  /// The compiled schedule this section replays, or nullptr when
  /// recording/interpreting. Fusion drivers use this to line two sections'
  /// cycle arrays up for the static port-conflict check.
  std::shared_ptr<const Schedule> schedule() const { return replay_; }

  const ScheduleKey& key() const { return key_; }

  /// One oblivious communication cycle. `dest_of(u)` returns the
  /// destination node or kNoSend; `payload_of(u)` the payload node u ships.
  /// payload_of is evaluated once per sender on every path; dest_of is not
  /// called at all when replaying.
  template <typename P, typename DestFn, typename PayloadFn>
  Inbox<P> exchange(DestFn&& dest_of, PayloadFn&& payload_of) {
    if (replay_) {
      DC_CHECK(next_cycle_ < replay_->cycle_count(),
               "algorithm issued more cycles than its compiled schedule");
      return m_.comm_cycle_scheduled<P>(replay_->cycle(next_cycle_++),
                                        payload_of);
    }
    if (recorder_) {
      net::NodeId* const dest = recorder_->new_cycle().data();
      return m_.comm_cycle<P>(
          [&](net::NodeId u) -> std::optional<Send<P>> {
            const net::NodeId to = dest_of(u);
            dest[static_cast<std::size_t>(u)] = to;
            if (to == kNoSend) return std::nullopt;
            return Send<P>{to, payload_of(u)};
          });
    }
    return m_.comm_cycle<P>([&](net::NodeId u) -> std::optional<Send<P>> {
      const net::NodeId to = dest_of(u);
      if (to == kNoSend) return std::nullopt;
      return Send<P>{to, payload_of(u)};
    });
  }

  /// One oblivious cycle whose every message is a fixed-width block of T
  /// (T must be semiregular). `src_of(u, dst)` writes node u's outgoing
  /// `width` elements into dst. On replay this is a single SoA plane gather
  /// (Machine::comm_cycle_scheduled_blocks — memcpy-like strides, zero
  /// steady-state allocations); on the interpreted and record paths the
  /// cycle runs through comm_cycle with std::vector<T> payloads (plain T
  /// when width == 1), keeping validation, SimError strings, counters,
  /// traces, edge loads and fault filtering byte-identical to a scalar
  /// section, and the result is packed into the same BlockInbox view.
  /// Workloads with ragged widths cannot use this call — ship vector<T>
  /// through exchange() instead; machines with attached faults come through
  /// here on the interpreted fallback automatically (schedule_path()
  /// reports kInterpreted under faults).
  template <typename T, typename DestFn, typename SrcFn>
  BlockInbox<T> exchange_blocks(std::size_t width, DestFn&& dest_of,
                                SrcFn&& src_of) {
    if (replay_) {
      DC_CHECK(next_cycle_ < replay_->cycle_count(),
               "algorithm issued more cycles than its compiled schedule");
      return m_.comm_cycle_scheduled_blocks<T>(replay_->cycle(next_cycle_++),
                                               width, src_of);
    }
    if (width == 1) {
      const auto in = exchange<T>(dest_of, [&](net::NodeId u) {
        T v{};
        src_of(u, &v);
        return v;
      });
      return m_.blockify_scalar<T>(in);
    }
    const auto in = exchange<std::vector<T>>(dest_of, [&](net::NodeId u) {
      std::vector<T> buf(width);
      src_of(u, buf.data());
      return buf;
    });
    return m_.blockify<T>(width, in);
  }

  /// Plane-source form of exchange_blocks: node u's outgoing block is the
  /// stride `src.base[u*src.stride ..]`. On replay this dispatches to the
  /// machine's plane-to-plane kernel sweep (no per-sender callback at all);
  /// on the interpreted and record paths it synthesizes the equivalent copy
  /// callback, so validation, SimError strings, counters, traces, edge
  /// loads and fault filtering stay byte-identical to the callback form.
  template <typename T, typename DestFn>
  BlockInbox<T> exchange_blocks(std::size_t width, DestFn&& dest_of,
                                PlaneSrc<T> src) {
    if (replay_) {
      DC_CHECK(next_cycle_ < replay_->cycle_count(),
               "algorithm issued more cycles than its compiled schedule");
      return m_.comm_cycle_scheduled_blocks<T>(replay_->cycle(next_cycle_++),
                                               width, src);
    }
    return exchange_blocks<T>(
        width, std::forward<DestFn>(dest_of), [src, width](net::NodeId u, T* dst) {
          simd::copy_block(dst, src.base + u * src.stride, width);
        });
  }

  /// Two-plane concatenation form (the relay cycle's own ‖ gathered
  /// payload); see PlanePairSrc. Same path semantics as the PlaneSrc form.
  template <typename T, typename DestFn>
  BlockInbox<T> exchange_blocks(std::size_t width, DestFn&& dest_of,
                                PlanePairSrc<T> src) {
    if (replay_) {
      DC_CHECK(next_cycle_ < replay_->cycle_count(),
               "algorithm issued more cycles than its compiled schedule");
      return m_.comm_cycle_scheduled_blocks<T>(replay_->cycle(next_cycle_++),
                                               width, src);
    }
    return exchange_blocks<T>(
        width, std::forward<DestFn>(dest_of), [src, width](net::NodeId u, T* dst) {
          simd::copy_block(dst, src.first + u * src.first_stride,
                           src.first_width);
          simd::copy_block(dst + src.first_width,
                           src.second + u * src.second_stride,
                           width - src.first_width);
        });
  }

  /// Compiles and publishes the recorded schedule. Call once, after the
  /// run's last cycle; no-op when replaying or interpreting. Skipping it
  /// merely forfeits caching — the run itself was already correct.
  void commit() {
    if (!recorder_) return;
    // A plan recorded while a FaultPlan was attached may have observed
    // fault-dependent state (lost deliveries feed back into dest_of), so
    // it must never be published under the healthy topology's key. The
    // section can only get here if faults were attached mid-run —
    // schedule_path() already reports kInterpreted when a machine carries
    // faults at construction time.
    if (m_.has_faults()) {
      recorder_.reset();
      return;
    }
    replay_ = ScheduleCache::instance().store(
        key_, std::move(*recorder_).finalize(m_.topology().flat_adjacency()));
    recorder_.reset();
    if (TraceRecorder* rec = m_.trace()) {
      rec->instant(m_.trace_track(), 0, "schedule_commit", "cycles",
                   replay_ ? replay_->cycle_count() : 0);
    }
  }

  /// Topology identity used in schedule keys: the display name plus the
  /// adjacency fingerprint.
  static std::string topology_identity(const net::Topology& t) {
    return t.name() + "#" + std::to_string(t.flat_adjacency().fingerprint());
  }

 private:
  Machine& m_;
  ScheduleKey key_;
  ScheduleOrigin origin_ = ScheduleOrigin::kMiss;
  std::shared_ptr<const Schedule> replay_;
  // unique_ptr (not optional): record-mode-only state, and GCC 12's
  // -Wmaybe-uninitialized misfires on optional's inlined payload destructor.
  std::unique_ptr<ScheduleRecorder> recorder_;
  std::size_t next_cycle_ = 0;
  const char* span_name_ = nullptr;  // interned; non-null iff traced
};

/// Fetches the compiled per-shard schedule slice for one in-cluster
/// Cube_prefix pass over a 2^dims-node cluster, through the process-wide
/// ScheduleCache (so every shard, every engine and every run share one
/// copy, LRU-budgeted with all other schedules). The slice is synthesized
/// — a dimension exchange is a fixed permutation, so no record run is
/// needed — and is keyed by the cube shape alone: unlike recorded
/// schedules it is tile-local and topology-independent by construction.
inline std::shared_ptr<const Schedule> cube_exchange_schedule(unsigned dims) {
  const ScheduleKey key{"cube_block#" + std::to_string(dims),
                        "cube_exchange_slice",
                        {dims},
                        /*validate=*/false};
  if (auto cached = ScheduleCache::instance().find(key)) return cached;
  return ScheduleCache::instance().store(key,
                                         make_cube_exchange_schedule(dims));
}

}  // namespace dc::sim
