// Cost-attribution profiling: where do the logical cycles go?
//
// The trace layer (sim/trace.hpp) records *events*; the metrics layer
// (sim/metrics.hpp) records *totals*. Neither answers the questions the
// paper's cost claims are about — which phase is on the critical path,
// which comm cycle is imbalanced, which edge is hot. This header closes
// that gap with three purely-analytical pieces:
//
//   * build_profile() — critical-path attribution. Replays the recorder's
//     merged event stream and charges every comm cycle (a kCycleEnd 'E')
//     to the innermost enclosing phase span on its track: "record:" /
//     "replay:" / "interp:" / "load:" / "fuse:" spans map to their
//     category, "phase:<x>" spans map to <x> (shard_exchange,
//     ft_exchange, repair, resilient_*...), anything else lands in
//     "(unattributed)". Per-track phase totals always sum to the track's
//     cycle total, and with zero dropped events the driving machine's
//     Counters::comm_cycles reconcile exactly against its track.
//
//   * CycleProfiler / CycleCostModel — per-cycle imbalance telemetry.
//     Receivers are partitioned into kImbalanceBands fixed, contiguous
//     bands (band(v) = v * bands / n — the same contiguous-share shape
//     the cache-aware chunk placement hands to workers). Band receive
//     counts are deterministic functions of the schedule, never of which
//     worker happened to deliver a chunk, so the telemetry — and the
//     fusion planner's cost model built on it — is byte-identical across
//     DC_THREADS. When the metrics registry is armed the per-cycle
//     min/median/max/spread land in sim.imbalance.* histograms.
//
//   * top_k_hot_edges() — deterministic hottest-edge ranking over one
//     EdgeLoadCounters::merged() snapshot (load desc, then edge id), used
//     by the dcsim run summary and tab_hotspot.
//
// Everything here is driver-thread-only analysis over immutable snapshots;
// nothing touches the comm hot path unless a profiler is attached, and an
// attached profiler costs one O(n) band scan per cycle on the driver
// thread (opt-in via dcsim --profile).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"
#include "topology/flat_adjacency.hpp"

namespace dc::sim {

/// Fixed receiver-band count for imbalance accounting. 16 matches the
/// largest worker pool the chunk placement targets while keeping per-cycle
/// summaries O(1) to reduce.
inline constexpr std::size_t kImbalanceBands = 16;

/// Bands actually used for an n-node cycle (every band non-empty).
inline std::size_t imbalance_band_count(std::size_t n) {
  if (n == 0) return 1;
  return n < kImbalanceBands ? n : kImbalanceBands;
}

/// The band of receiver v: contiguous shares, v * bands / n.
inline std::size_t imbalance_band_of(std::size_t v, std::size_t n,
                                     std::size_t bands) {
  return v * bands / n;
}

/// Per-cycle receive counts over the fixed band partition, reduced to the
/// order statistics the telemetry and the cost model consume.
struct BandStats {
  std::uint64_t min = 0;
  std::uint64_t median = 0;
  std::uint64_t max = 0;
  std::uint64_t spread() const { return max - min; }
};

namespace detail {

inline BandStats reduce_bands(const std::uint64_t* counts,
                              std::size_t bands) {
  std::array<std::uint64_t, kImbalanceBands> sorted{};
  std::copy(counts, counts + bands, sorted.begin());
  std::sort(sorted.begin(), sorted.begin() + static_cast<long>(bands));
  BandStats s;
  s.min = sorted[0];
  s.median = sorted[bands / 2];
  s.max = sorted[bands - 1];
  return s;
}

}  // namespace detail

/// The fusion planner's cost model: per-cycle receive imbalance over the
/// deterministic band partition. A merged cycle's cost is the spread of
/// the union receiver set; fuse_schedules breaks ties between equally
/// greedy merge candidates toward the lower-spread union (sim/fusion.hpp).
struct CycleCostModel {
  /// max - min band receive count of one compiled cycle.
  std::uint64_t spread(const ScheduleCycle& c, std::size_t n) const {
    std::array<std::uint64_t, kImbalanceBands> counts{};
    const std::size_t bands = imbalance_band_count(n);
    for (std::size_t v = 0; v < n; ++v)
      if (c.recv_from[v] != kNoSender)
        ++counts[imbalance_band_of(v, n, bands)];
    const BandStats s = detail::reduce_bands(counts.data(), bands);
    return s.spread();
  }

  /// Spread of the union of two port-disjoint cycles — the cost of
  /// replaying them merged. Disjoint receiver sets mean the union count
  /// is a plain sum.
  std::uint64_t merged_spread(const ScheduleCycle& ca,
                              const ScheduleCycle& cb, std::size_t n) const {
    std::array<std::uint64_t, kImbalanceBands> counts{};
    const std::size_t bands = imbalance_band_count(n);
    for (std::size_t v = 0; v < n; ++v) {
      if (ca.recv_from[v] != kNoSender || cb.recv_from[v] != kNoSender)
        ++counts[imbalance_band_of(v, n, bands)];
    }
    const BandStats s = detail::reduce_bands(counts.data(), bands);
    return s.spread();
  }
};

/// Deterministic run-level imbalance summary (the report's "imbalance"
/// block). All fields are exact integers so reports stay byte-identical.
struct ImbalanceSummary {
  std::uint64_t cycles = 0;        ///< comm cycles profiled
  std::uint64_t band_min = 0;      ///< global min band count over cycles
  std::uint64_t band_max = 0;      ///< global max band count over cycles
  std::uint64_t spread_max = 0;    ///< worst single-cycle spread
  std::uint64_t spread_sum = 0;    ///< sum of per-cycle spreads
  std::uint64_t edge_load_max = 0;    ///< hottest edge total at publish
  std::uint64_t edge_load_delta = 0;  ///< max - min edge total at publish
};

/// Per-cycle imbalance telemetry. One profiler is attached to the machine
/// whose cycles should be accounted (Machine::attach_profiler); every comm
/// cycle — interpreted, replayed, tiled or fused — lands one band-stat
/// sample here from the driver thread. With the metrics registry armed the
/// samples also feed the sim.imbalance.* histograms.
class CycleProfiler {
 public:
  CycleProfiler() {
    if (MetricsRegistry::armed()) {
      auto& reg = MetricsRegistry::instance();
      const auto bounds = Histogram::pow2_bounds(24);
      h_min_ = &reg.histogram("sim.imbalance.worker_min", bounds);
      h_median_ = &reg.histogram("sim.imbalance.worker_median", bounds);
      h_max_ = &reg.histogram("sim.imbalance.worker_max", bounds);
      h_spread_ = &reg.histogram("sim.imbalance.spread", bounds);
      h_edge_ = &reg.histogram("sim.imbalance.edge_load", bounds);
    }
  }

  /// A replayed compiled cycle: band counts from the receiver array.
  void note_cycle(const ScheduleCycle& c, std::size_t n) {
    std::array<std::uint64_t, kImbalanceBands> counts{};
    const std::size_t bands = imbalance_band_count(n);
    for (std::size_t v = 0; v < n; ++v)
      if (c.recv_from[v] != kNoSender)
        ++counts[imbalance_band_of(v, n, bands)];
    note_counts(counts.data(), bands);
  }

  /// An interpreted cycle: `receives(v)` says whether node v got a
  /// message this cycle (the driver scans the delivered inbox).
  template <typename F>
  void note_cycle_mask(std::size_t n, F&& receives) {
    std::array<std::uint64_t, kImbalanceBands> counts{};
    const std::size_t bands = imbalance_band_count(n);
    for (std::size_t v = 0; v < n; ++v)
      if (receives(v)) ++counts[imbalance_band_of(v, n, bands)];
    note_counts(counts.data(), bands);
  }

  /// A fused exchange+combine cycle: every node receives exactly once.
  void note_cycle_uniform(std::size_t n) {
    std::array<std::uint64_t, kImbalanceBands> counts{};
    const std::size_t bands = imbalance_band_count(n);
    for (std::size_t v = 0; v < n; ++v)
      ++counts[imbalance_band_of(v, n, bands)];
    note_counts(counts.data(), bands);
  }

  /// A tiled replay: `unit` applied to `tiles` consecutive blocks of
  /// `unit_nodes` receivers each (the sharded cluster exchange).
  void note_cycle_tiled(const ScheduleCycle& unit, std::size_t unit_nodes,
                        std::size_t tiles) {
    std::array<std::uint64_t, kImbalanceBands> counts{};
    const std::size_t n = unit_nodes * tiles;
    const std::size_t bands = imbalance_band_count(n);
    for (std::size_t t = 0; t < tiles; ++t) {
      for (std::size_t v = 0; v < unit_nodes; ++v)
        if (unit.recv_from[v] != kNoSender)
          ++counts[imbalance_band_of(t * unit_nodes + v, n, bands)];
    }
    note_counts(counts.data(), bands);
  }

  /// Publish-time edge-load shape from one EdgeLoadCounters::merged()
  /// snapshot: hottest edge and hottest-vs-coldest delta, plus one
  /// histogram observation per edge when armed.
  void note_edge_loads(const std::vector<std::uint64_t>& merged) {
    if (merged.empty()) return;
    std::uint64_t lo = merged[0], hi = merged[0];
    for (const std::uint64_t load : merged) {
      lo = std::min(lo, load);
      hi = std::max(hi, load);
      if (h_edge_ != nullptr) h_edge_->observe(load);
    }
    summary_.edge_load_max = std::max(summary_.edge_load_max, hi);
    summary_.edge_load_delta = std::max(summary_.edge_load_delta, hi - lo);
  }

  const ImbalanceSummary& summary() const { return summary_; }

 private:
  void note_counts(const std::uint64_t* counts, std::size_t bands) {
    const BandStats s = detail::reduce_bands(counts, bands);
    if (summary_.cycles == 0) {
      summary_.band_min = s.min;
      summary_.band_max = s.max;
    } else {
      summary_.band_min = std::min(summary_.band_min, s.min);
      summary_.band_max = std::max(summary_.band_max, s.max);
    }
    ++summary_.cycles;
    summary_.spread_max = std::max(summary_.spread_max, s.spread());
    summary_.spread_sum += s.spread();
    if (h_min_ != nullptr) {
      h_min_->observe(s.min);
      h_median_->observe(s.median);
      h_max_->observe(s.max);
      h_spread_->observe(s.spread());
    }
  }

  ImbalanceSummary summary_;
  Histogram* h_min_ = nullptr;
  Histogram* h_median_ = nullptr;
  Histogram* h_max_ = nullptr;
  Histogram* h_spread_ = nullptr;
  Histogram* h_edge_ = nullptr;
};

// --- critical-path attribution ---------------------------------------------

/// Cycles and messages charged to one phase of one track.
struct PhaseCost {
  std::string name;
  std::uint64_t cycles = 0;
  std::uint64_t messages = 0;
};

/// One machine's timeline: phase costs sorted hottest-first. The phase
/// cycle totals always sum to total_cycles (the "(unattributed)" bucket
/// absorbs cycles outside any phase span).
struct TrackProfile {
  std::string label;
  std::uint64_t total_cycles = 0;
  std::uint64_t total_messages = 0;
  std::vector<PhaseCost> phases;
};

struct Profile {
  std::uint64_t dropped_events = 0;
  bool complete = false;  ///< dropped_events == 0: totals are exact
  std::vector<TrackProfile> tracks;
};

/// Maps a span name to its attribution phase, or "" for spans that are
/// not phases (the comm-cycle spans themselves).
inline std::string phase_of_span(std::string_view name) {
  for (const std::string_view prefix :
       {std::string_view{"record:"}, std::string_view{"replay:"},
        std::string_view{"interp:"}, std::string_view{"load:"},
        std::string_view{"fuse:"}}) {
    if (name.substr(0, prefix.size()) == prefix)
      return std::string(prefix.substr(0, prefix.size() - 1));
  }
  constexpr std::string_view kPhase = "phase:";
  if (name.substr(0, kPhase.size()) == kPhase)
    return std::string(name.substr(kPhase.size()));
  return {};
}

/// Walks the merged event stream and charges every comm cycle to the
/// innermost enclosing phase span on its track. With dropped events the
/// stream may open mid-span; attribution stays best-effort (mismatched
/// 'E's are ignored) and the profile is marked incomplete.
inline Profile build_profile(const TraceRecorder& rec) {
  Profile p;
  p.dropped_events = rec.dropped();
  p.complete = p.dropped_events == 0;
  const std::vector<std::string> labels = rec.track_labels();
  p.tracks.resize(labels.size());
  for (std::size_t t = 0; t < labels.size(); ++t) p.tracks[t].label = labels[t];

  std::vector<std::vector<const char*>> stacks(labels.size());
  // phase name -> (cycles, messages), per track; std::map keeps the
  // eventual tie-order deterministic.
  std::vector<std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>>
      acc(labels.size());
  for (const TraceEvent& e : rec.merged()) {
    if (e.track >= labels.size()) continue;
    std::vector<const char*>& stack = stacks[e.track];
    if (e.ph == 'B') {
      stack.push_back(e.name);
    } else if (e.ph == 'E') {
      if (!stack.empty() && std::string_view(stack.back()) == e.name)
        stack.pop_back();
      if (e.kind == TraceEventKind::kCycleEnd) {
        std::string phase = "(unattributed)";
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
          std::string candidate = phase_of_span(*it);
          if (!candidate.empty()) {
            phase = std::move(candidate);
            break;
          }
        }
        auto& cell = acc[e.track][phase];
        cell.first += 1;
        cell.second += e.arg_a;
        p.tracks[e.track].total_cycles += 1;
        p.tracks[e.track].total_messages += e.arg_a;
      }
    }
  }
  for (std::size_t t = 0; t < labels.size(); ++t) {
    for (const auto& [name, cost] : acc[t])
      p.tracks[t].phases.push_back(PhaseCost{name, cost.first, cost.second});
    std::sort(p.tracks[t].phases.begin(), p.tracks[t].phases.end(),
              [](const PhaseCost& a, const PhaseCost& b) {
                if (a.cycles != b.cycles) return a.cycles > b.cycles;
                return a.name < b.name;
              });
  }
  return p;
}

// --- hottest edges ----------------------------------------------------------

/// One directed edge and its merged message total.
struct HotEdge {
  net::NodeId u = 0;
  net::NodeId v = 0;
  std::uint64_t load = 0;
};

/// The k hottest directed edges of one EdgeLoadCounters::merged()
/// snapshot, filtered by `keep(u, v)`. CSR slots are row-major, so one
/// sequential walk covers every edge; the ranking (load desc, then u, v
/// asc) is deterministic.
template <typename Pred>
std::vector<HotEdge> top_k_hot_edges(const net::FlatAdjacency& adj,
                                     const std::vector<std::uint64_t>& loads,
                                     std::size_t k, Pred&& keep) {
  std::vector<HotEdge> all;
  std::size_t slot = 0;
  for (net::NodeId u = 0; u < adj.node_count(); ++u) {
    for (const net::NodeId v : adj.row(u)) {
      const std::uint64_t load = loads[slot++];
      if (keep(u, v)) all.push_back(HotEdge{u, v, load});
    }
  }
  std::sort(all.begin(), all.end(), [](const HotEdge& a, const HotEdge& b) {
    if (a.load != b.load) return a.load > b.load;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

inline std::vector<HotEdge> top_k_hot_edges(
    const net::FlatAdjacency& adj, const std::vector<std::uint64_t>& loads,
    std::size_t k) {
  return top_k_hot_edges(adj, loads, k,
                         [](net::NodeId, net::NodeId) { return true; });
}

}  // namespace dc::sim
