// Deterministic fault injection for the synchronous machine.
//
// The dual-cube is n-regular and n-connected, so any fault set of fewer
// than n nodes leaves it connected — the property the fault-tolerant
// collectives (collectives/ft_broadcast.hpp, core/ft_dual_prefix.hpp)
// exploit. This header supplies the model those algorithms run against:
//
//   * FaultPlan — a seeded, reproducible description of what breaks and
//     when: permanent node deaths, permanent link deaths (either may be
//     scheduled for a chosen cycle; cycle 0 means "dead from the start"),
//     and transient per-cycle message drops decided by a stateless hash of
//     (seed, cycle, sender), so two runs with the same plan lose exactly
//     the same messages.
//   * FaultPolicy — how a Machine with an attached plan reacts when a
//     message touches a fault: kStrict throws FaultError (the algorithm
//     claimed to be fault-aware and was not), kDegrade silently drops the
//     message and counts it in Counters::messages_lost.
//   * FaultyTopology — a Topology view over any base graph with a plan's
//     dead nodes and links filtered out. Because it is a distinct Topology
//     object, its FlatAdjacency CSR — and therefore its fingerprint — is
//     rebuilt from the filtered edge set, so the schedule cache can never
//     serve a schedule compiled for the healthy graph to a faulted one
//     (the cache key is name() + fingerprint; see sim/oblivious.hpp).
//
// The fault model governs communication only: a dead node can neither
// send nor receive, a dead link carries nothing, and a transient drop
// loses one message. Host-side state owned by algorithms (the per-node
// arrays) is the algorithms' responsibility — the fault-tolerant
// collectives emulate dead nodes' roles at live proxies explicitly.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "topology/topology.hpp"

namespace dc::sim {

/// Thrown by a Machine under FaultPolicy::kStrict when a message touches a
/// dead node or link, and by fault-tolerant collectives when a fault set
/// disconnects the nodes they must reach.
class FaultError : public dc::CheckError {
 public:
  explicit FaultError(const std::string& what) : dc::CheckError(what) {}
};

/// How an attached Machine reacts when a message touches a fault.
enum class FaultPolicy {
  kStrict,   ///< throw FaultError — the algorithm must route around faults
  kDegrade,  ///< drop the message, count it in Counters::messages_lost
};

namespace detail {
/// Canonical (min, max) key of an undirected link, by value.
inline std::pair<net::NodeId, net::NodeId> ordered_link(net::NodeId u,
                                                        net::NodeId v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}
}  // namespace detail

/// A deterministic, reproducible fault scenario. Build one with the
/// fluent kill_* / drop_messages calls (or random_nodes), then attach it
/// to a Machine or wrap a topology in a FaultyTopology. Cycles are the
/// machine's comm-cycle indices: a node killed `at_cycle` c is healthy for
/// cycles 0..c-1 and dead from cycle c on.
class FaultPlan {
 public:
  static constexpr std::uint64_t kFromStart = 0;

  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Kills node `u` permanently from comm cycle `at_cycle` on.
  FaultPlan& kill_node(net::NodeId u, std::uint64_t at_cycle = kFromStart) {
    const auto [it, inserted] = node_at_.emplace(u, at_cycle);
    if (!inserted) it->second = std::min(it->second, at_cycle);
    earliest_ = std::min(earliest_, at_cycle);
    return *this;
  }

  /// Kills the undirected link {u, v} permanently from `at_cycle` on.
  FaultPlan& kill_link(net::NodeId u, net::NodeId v,
                       std::uint64_t at_cycle = kFromStart) {
    DC_REQUIRE(u != v, "a link joins two distinct nodes");
    const auto [it, inserted] =
        link_at_.emplace(detail::ordered_link(u, v), at_cycle);
    if (!inserted) it->second = std::min(it->second, at_cycle);
    earliest_ = std::min(earliest_, at_cycle);
    return *this;
  }

  /// Transient faults: every cycle, each planned message is independently
  /// dropped with probability permille/1000, decided by a stateless hash
  /// of (seed, cycle, sender) — reproducible across runs and thread
  /// counts. Applied under both policies (a flaky link is degradation,
  /// not an algorithmic error) and counted in messages_lost.
  FaultPlan& drop_messages(unsigned permille) {
    DC_REQUIRE(permille <= 1000, "drop rate is per mille");
    drop_permille_ = permille;
    if (permille > 0) earliest_ = 0;
    return *this;
  }

  /// `k` distinct nodes of `t` killed from the start, drawn with the
  /// plan's own seeded generator; nodes in `exclude` are never chosen.
  static FaultPlan random_nodes(const net::Topology& t, std::size_t k,
                                std::uint64_t seed,
                                const std::vector<net::NodeId>& exclude = {}) {
    DC_REQUIRE(k + exclude.size() <= t.node_count(),
               "cannot kill " << k << " of " << t.node_count() << " nodes");
    FaultPlan plan(seed);
    dc::Rng rng(seed);
    std::unordered_set<net::NodeId> taken(exclude.begin(), exclude.end());
    while (plan.node_at_.size() < k) {
      const net::NodeId u = rng.below(t.node_count());
      if (taken.contains(u)) continue;
      taken.insert(u);
      plan.kill_node(u);
    }
    return plan;
  }

  bool empty() const {
    return node_at_.empty() && link_at_.empty() && drop_permille_ == 0;
  }
  std::uint64_t seed() const { return seed_; }
  unsigned drop_permille() const { return drop_permille_; }
  std::size_t node_fault_count() const { return node_at_.size(); }
  std::size_t link_fault_count() const { return link_at_.size(); }

  /// True iff node `u` is dead at comm cycle `cycle`.
  bool node_dead(net::NodeId u, std::uint64_t cycle) const {
    const auto it = node_at_.find(u);
    return it != node_at_.end() && it->second <= cycle;
  }

  /// True iff the undirected link {u, v} is dead at `cycle` (dead
  /// endpoints are accounted separately by node_dead).
  bool link_dead(net::NodeId u, net::NodeId v, std::uint64_t cycle) const {
    if (link_at_.empty()) return false;
    const auto it = link_at_.find(detail::ordered_link(u, v));
    return it != link_at_.end() && it->second <= cycle;
  }

  /// True iff the transient-drop hash claims the message `sender` planned
  /// at `cycle`. Pure function of (seed, cycle, sender).
  bool drops_message(std::uint64_t cycle, net::NodeId sender) const {
    if (drop_permille_ == 0) return false;
    std::uint64_t h = seed_ ^ (cycle * 0x9e3779b97f4a7c15ull) ^
                      (sender + 0x2545f4914f6cdd1dull);
    return dc::splitmix64(h) % 1000 < drop_permille_;
  }

  /// True iff any fault (permanent or transient) is live at `cycle`.
  bool any_active(std::uint64_t cycle) const { return earliest_ <= cycle; }

  /// Nodes that are dead at `cycle` (default: ever dead), ascending.
  std::vector<net::NodeId> dead_nodes(
      std::uint64_t cycle = ~std::uint64_t{0}) const {
    std::vector<net::NodeId> out;
    for (const auto& [u, at] : node_at_)
      if (at <= cycle) out.push_back(u);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Same set as dead_nodes, as a hash set (the shape the fault-tolerant
  /// router consumes).
  std::unordered_set<net::NodeId> dead_node_set(
      std::uint64_t cycle = ~std::uint64_t{0}) const {
    std::unordered_set<net::NodeId> out;
    for (const auto& [u, at] : node_at_)
      if (at <= cycle) out.insert(u);
    return out;
  }

  /// Dead undirected links at `cycle` (default: ever dead), min-endpoint
  /// first, ascending.
  std::vector<std::pair<net::NodeId, net::NodeId>> dead_links(
      std::uint64_t cycle = ~std::uint64_t{0}) const {
    std::vector<std::pair<net::NodeId, net::NodeId>> out;
    for (const auto& [uv, at] : link_at_)
      if (at <= cycle) out.push_back(uv);
    return out;
  }

 private:
  std::uint64_t seed_ = 0;
  unsigned drop_permille_ = 0;
  std::unordered_map<net::NodeId, std::uint64_t> node_at_;
  // Ordered map: link faults are rare and cold, and NodeId pairs (labels
  // up to 40 bits) do not pack into a single hashable word.
  std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t> link_at_;
  std::uint64_t earliest_ = ~std::uint64_t{0};
};

/// A Topology view with a plan's faults (as of `at_cycle`, default: all of
/// them) removed: dead nodes lose every incident edge, dead links
/// disappear. node_count() and name() match the base — the graphs are
/// deliberately distinguishable only by their edge sets, which is exactly
/// what the FlatAdjacency fingerprint captures, so a compiled schedule
/// recorded on the healthy base can never replay here.
class FaultyTopology final : public net::Topology {
 public:
  FaultyTopology(const net::Topology& base, const FaultPlan& plan,
                 std::uint64_t at_cycle = ~std::uint64_t{0})
      : base_(&base), dead_(plan.dead_node_set(at_cycle)) {
    for (const auto& uv : plan.dead_links(at_cycle)) dead_links_.insert(uv);
    for (const net::NodeId u : dead_)
      DC_REQUIRE(u < base.node_count(),
                 "fault plan kills node " << u << " outside " << base.name());
  }

  std::string name() const override { return base_->name(); }
  net::NodeId node_count() const override { return base_->node_count(); }

  std::vector<net::NodeId> neighbors(net::NodeId u) const override {
    if (dead_.contains(u)) return {};
    std::vector<net::NodeId> out;
    for (const net::NodeId v : base_->neighbors(u)) {
      if (dead_.contains(v)) continue;
      if (!dead_links_.empty() && dead_links_.contains(detail::ordered_link(u, v)))
        continue;
      out.push_back(v);
    }
    return out;
  }

  bool has_edge(net::NodeId u, net::NodeId v) const override {
    if (dead_.contains(u) || dead_.contains(v)) return false;
    if (!dead_links_.empty() && dead_links_.contains(detail::ordered_link(u, v)))
      return false;
    return base_->has_edge(u, v);
  }

  const net::Topology& base() const { return *base_; }
  bool node_alive(net::NodeId u) const { return !dead_.contains(u); }
  std::size_t dead_node_count() const { return dead_.size(); }

 private:
  const net::Topology* base_;
  std::unordered_set<net::NodeId> dead_;
  std::set<std::pair<net::NodeId, net::NodeId>> dead_links_;
};

/// Parses a dcsim-style fault spec into a plan:
///   "nodes:a,b,c"    — kill the listed node labels from the start;
///   "random:k"       — kill k random nodes seeded with default_seed;
///   "random:k,seed"  — same with an explicit seed.
/// Returns the plan, or throws CheckError naming the malformed piece.
inline FaultPlan parse_fault_spec(std::string_view spec,
                                  const net::Topology& t,
                                  std::uint64_t default_seed = 1) {
  const auto parse_u64 = [&](std::string_view s) -> std::uint64_t {
    DC_REQUIRE(!s.empty(), "empty number in fault spec '" << spec << "'");
    std::uint64_t v = 0;
    for (const char c : s) {
      DC_REQUIRE(c >= '0' && c <= '9',
                 "bad number '" << std::string(s) << "' in fault spec");
      v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
  };
  const auto split = [](std::string_view s, char sep) {
    std::vector<std::string_view> parts;
    while (true) {
      const auto pos = s.find(sep);
      parts.push_back(s.substr(0, pos));
      if (pos == std::string_view::npos) break;
      s.remove_prefix(pos + 1);
    }
    return parts;
  };

  const auto colon = spec.find(':');
  DC_REQUIRE(colon != std::string_view::npos,
             "fault spec must be nodes:a,b,... or random:k[,seed], got '"
                 << spec << "'");
  const std::string_view kind = spec.substr(0, colon);
  const std::string_view rest = spec.substr(colon + 1);
  if (kind == "nodes") {
    FaultPlan plan(default_seed);
    for (const std::string_view part : split(rest, ',')) {
      const std::uint64_t u = parse_u64(part);
      DC_REQUIRE(u < t.node_count(), "fault spec names node "
                                         << u << " but " << t.name()
                                         << " has " << t.node_count()
                                         << " nodes");
      plan.kill_node(u);
    }
    DC_REQUIRE(plan.node_fault_count() > 0, "fault spec names no nodes");
    return plan;
  }
  if (kind == "random") {
    const auto parts = split(rest, ',');
    DC_REQUIRE(parts.size() <= 2, "random fault spec is random:k[,seed]");
    const std::uint64_t k = parse_u64(parts[0]);
    const std::uint64_t seed =
        parts.size() == 2 ? parse_u64(parts[1]) : default_seed;
    DC_REQUIRE(k <= t.node_count(), "cannot kill " << k << " of "
                                                   << t.node_count()
                                                   << " nodes");
    return FaultPlan::random_nodes(t, k, seed);
  }
  DC_REQUIRE(false, "unknown fault spec kind '" << std::string(kind)
                                                << "' (nodes|random)");
  return FaultPlan{};  // unreachable: DC_REQUIRE throws
}

}  // namespace dc::sim
