// Deterministic fault injection for the synchronous machine.
//
// The dual-cube is n-regular and n-connected, so any fault set of fewer
// than n nodes leaves it connected — the property the fault-tolerant
// collectives (collectives/ft_broadcast.hpp, core/ft_dual_prefix.hpp,
// core/ft_dual_sort.hpp) exploit. This header supplies the model those
// algorithms run against:
//
//   * FaultPlan — a seeded, reproducible description of what breaks and
//     when: permanent node deaths, permanent link deaths (either may be
//     scheduled for a chosen cycle; cycle 0 means "dead from the start"),
//     and transient per-cycle message drops decided by a stateless hash of
//     (seed, cycle, sender), so two runs with the same plan lose exactly
//     the same messages.
//   * FaultTimeline — the dynamic generalization: timed down/up events on
//     nodes (kill + rejoin) and links (flaps), plus bounded transient-drop
//     windows. The timeline divides the cycle axis into *epochs* — maximal
//     intervals over which the faulted view is constant — and a Machine
//     with an attached timeline evaluates every cycle against the interval
//     set, tracing epoch transitions and rejoin instants. Each epoch's
//     FaultyTopology view rebuilds its CSR from a different edge set, so
//     its fingerprint differs and a schedule compiled for any other epoch
//     (or for the healthy graph) can never replay onto it.
//   * FaultPolicy — how a Machine with attached faults reacts when a
//     message touches one: kStrict throws FaultError (the algorithm
//     claimed to be fault-aware and was not), kDegrade silently drops the
//     message and counts it in Counters::messages_lost.
//   * FaultyTopology — a Topology view over any base graph with the
//     faults live at a chosen cycle filtered out. Because it is a distinct
//     Topology object, its FlatAdjacency CSR — and therefore its
//     fingerprint — is rebuilt from the filtered edge set, so the schedule
//     cache can never serve a schedule compiled for the healthy graph to a
//     faulted one (the cache key is name() + fingerprint; see
//     sim/oblivious.hpp).
//
// The fault model governs communication only: a dead node can neither
// send nor receive, a dead link carries nothing, and a transient drop
// loses one message. Host-side state owned by algorithms (the per-node
// arrays) is the algorithms' responsibility — the fault-tolerant
// collectives emulate dead nodes' roles at live proxies explicitly, and
// the recovery driver (sim/recovery.hpp) checkpoints phase state so a
// mid-run epoch change retries from a consistent snapshot.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/error.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "topology/topology.hpp"

namespace dc::sim {

/// Thrown by a Machine under FaultPolicy::kStrict when a message touches a
/// dead node or link, and by fault-tolerant collectives when a fault set
/// disconnects the nodes they must reach.
class FaultError : public dc::CheckError {
 public:
  explicit FaultError(const std::string& what) : dc::CheckError(what) {}
};

/// How an attached Machine reacts when a message touches a fault.
enum class FaultPolicy {
  kStrict,   ///< throw FaultError — the algorithm must route around faults
  kDegrade,  ///< drop the message, count it in Counters::messages_lost
};

namespace detail {
/// Canonical (min, max) key of an undirected link, by value.
inline std::pair<net::NodeId, net::NodeId> ordered_link(net::NodeId u,
                                                        net::NodeId v) {
  return u < v ? std::pair{u, v} : std::pair{v, u};
}

/// The transient-drop decision hash, shared by FaultPlan and
/// FaultTimeline and pinned by a golden-value test (fault_test.cpp):
///
///   permille(seed, cycle, sender) =
///     splitmix64(seed ^ (cycle * 0x9e3779b97f4a7c15)
///                     ^ (sender + 0x2545f4914f6cdd1d)) mod 1000
///
/// Every operation is fixed-width uint64 arithmetic (two's-complement
/// wraparound, no floating point, no platform-dependent types), so the
/// same (seed, cycle, sender) triple loses the same message on every
/// OS/arch/compiler. A message is dropped iff the value is below the
/// configured drop rate. Documented in docs/MODEL.md "Fault model".
inline std::uint64_t transient_drop_hash(std::uint64_t seed,
                                         std::uint64_t cycle,
                                         net::NodeId sender) {
  std::uint64_t h =
      seed ^ (cycle * 0x9e3779b97f4a7c15ull) ^
      (static_cast<std::uint64_t>(sender) + 0x2545f4914f6cdd1dull);
  return dc::splitmix64(h) % 1000;
}
}  // namespace detail

/// A deterministic, reproducible fault scenario. Build one with the
/// fluent kill_* / drop_messages calls (or random_nodes), then attach it
/// to a Machine or wrap a topology in a FaultyTopology. Cycles are the
/// machine's comm-cycle indices: a node killed `at_cycle` c is healthy for
/// cycles 0..c-1 and dead from cycle c on.
class FaultPlan {
 public:
  static constexpr std::uint64_t kFromStart = 0;

  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Kills node `u` permanently from comm cycle `at_cycle` on.
  FaultPlan& kill_node(net::NodeId u, std::uint64_t at_cycle = kFromStart) {
    const auto [it, inserted] = node_at_.emplace(u, at_cycle);
    if (!inserted) it->second = std::min(it->second, at_cycle);
    earliest_ = std::min(earliest_, at_cycle);
    return *this;
  }

  /// Kills the undirected link {u, v} permanently from `at_cycle` on.
  FaultPlan& kill_link(net::NodeId u, net::NodeId v,
                       std::uint64_t at_cycle = kFromStart) {
    DC_REQUIRE(u != v, "a link joins two distinct nodes");
    const auto [it, inserted] =
        link_at_.emplace(detail::ordered_link(u, v), at_cycle);
    if (!inserted) it->second = std::min(it->second, at_cycle);
    earliest_ = std::min(earliest_, at_cycle);
    return *this;
  }

  /// Transient faults: every cycle, each planned message is independently
  /// dropped with probability permille/1000, decided by a stateless hash
  /// of (seed, cycle, sender) — reproducible across runs and thread
  /// counts. Applied under both policies (a flaky link is degradation,
  /// not an algorithmic error) and counted in messages_lost.
  FaultPlan& drop_messages(unsigned permille) {
    DC_REQUIRE(permille <= 1000, "drop rate is per mille");
    drop_permille_ = permille;
    if (permille > 0) earliest_ = 0;
    return *this;
  }

  /// `k` distinct nodes of `t` killed from the start, drawn with the
  /// plan's own seeded generator; nodes in `exclude` are never chosen.
  static FaultPlan random_nodes(const net::Topology& t, std::size_t k,
                                std::uint64_t seed,
                                const std::vector<net::NodeId>& exclude = {}) {
    DC_REQUIRE(k + exclude.size() <= t.node_count(),
               "cannot kill " << k << " of " << t.node_count() << " nodes");
    FaultPlan plan(seed);
    dc::Rng rng(seed);
    std::unordered_set<net::NodeId> taken(exclude.begin(), exclude.end());
    while (plan.node_at_.size() < k) {
      const net::NodeId u = rng.below(t.node_count());
      if (taken.contains(u)) continue;
      taken.insert(u);
      plan.kill_node(u);
    }
    return plan;
  }

  bool empty() const {
    return node_at_.empty() && link_at_.empty() && drop_permille_ == 0;
  }
  std::uint64_t seed() const { return seed_; }
  unsigned drop_permille() const { return drop_permille_; }
  std::size_t node_fault_count() const { return node_at_.size(); }
  std::size_t link_fault_count() const { return link_at_.size(); }

  /// True iff node `u` is dead at comm cycle `cycle`.
  bool node_dead(net::NodeId u, std::uint64_t cycle) const {
    const auto it = node_at_.find(u);
    return it != node_at_.end() && it->second <= cycle;
  }

  /// True iff the undirected link {u, v} is dead at `cycle` (dead
  /// endpoints are accounted separately by node_dead).
  bool link_dead(net::NodeId u, net::NodeId v, std::uint64_t cycle) const {
    if (link_at_.empty()) return false;
    const auto it = link_at_.find(detail::ordered_link(u, v));
    return it != link_at_.end() && it->second <= cycle;
  }

  /// True iff the transient-drop hash claims the message `sender` planned
  /// at `cycle`. Pure function of (seed, cycle, sender) — see
  /// detail::transient_drop_hash for the pinned formula.
  bool drops_message(std::uint64_t cycle, net::NodeId sender) const {
    if (drop_permille_ == 0) return false;
    return detail::transient_drop_hash(seed_, cycle, sender) < drop_permille_;
  }

  /// True iff any fault (permanent or transient) is live at `cycle`.
  bool any_active(std::uint64_t cycle) const { return earliest_ <= cycle; }

  /// Nodes that are dead at `cycle` (default: ever dead), ascending.
  std::vector<net::NodeId> dead_nodes(
      std::uint64_t cycle = ~std::uint64_t{0}) const {
    std::vector<net::NodeId> out;
    for (const auto& [u, at] : node_at_)
      if (at <= cycle) out.push_back(u);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Same set as dead_nodes, as a hash set (the shape the fault-tolerant
  /// router consumes).
  std::unordered_set<net::NodeId> dead_node_set(
      std::uint64_t cycle = ~std::uint64_t{0}) const {
    std::unordered_set<net::NodeId> out;
    for (const auto& [u, at] : node_at_)
      if (at <= cycle) out.insert(u);
    return out;
  }

  /// Dead undirected links at `cycle` (default: ever dead), min-endpoint
  /// first, ascending.
  std::vector<std::pair<net::NodeId, net::NodeId>> dead_links(
      std::uint64_t cycle = ~std::uint64_t{0}) const {
    std::vector<std::pair<net::NodeId, net::NodeId>> out;
    for (const auto& [uv, at] : link_at_)
      if (at <= cycle) out.push_back(uv);
    return out;
  }

 private:
  std::uint64_t seed_ = 0;
  unsigned drop_permille_ = 0;
  std::unordered_map<net::NodeId, std::uint64_t> node_at_;
  // Ordered map: link faults are rare and cold, and NodeId pairs (labels
  // up to 40 bits) do not pack into a single hashable word.
  std::map<std::pair<net::NodeId, net::NodeId>, std::uint64_t> link_at_;
  std::uint64_t earliest_ = ~std::uint64_t{0};
};

/// A dynamic fault scenario: a timeline of timed down/up events on nodes
/// and links plus bounded transient-drop windows. Where FaultPlan is
/// monotone (a kill lasts forever), a timeline entity is dead over a set
/// of disjoint half-open cycle intervals [down, up), so links can flap and
/// nodes can rejoin.
///
/// The event cycles partition the cycle axis into *epochs*: within one
/// epoch the set of dead nodes/links (and the active drop rate) is
/// constant, so `snapshot(cycle)` — the FaultPlan equivalent of the
/// faults live at `cycle` — is constant too. epoch_of/epoch_starts expose
/// the partition; a Machine with an attached timeline traces each
/// transition it crosses ("fault_epoch") and each node rejoin
/// ("fault_rejoin"), and always interprets (never replays) its cycles.
///
/// Build with the fluent node_down/node_up/link_down/link_up/drop_window
/// calls. Events per entity must be issued in cycle order (down strictly
/// before its up, next down at or after the previous up); violations
/// throw SimError naming the entity.
class FaultTimeline {
 public:
  static constexpr std::uint64_t kForever = ~std::uint64_t{0};

  FaultTimeline() = default;
  explicit FaultTimeline(std::uint64_t seed) : seed_(seed) {}

  /// Node `u` goes down at comm cycle `at` (dead from `at` on, until a
  /// matching node_up).
  FaultTimeline& node_down(net::NodeId u, std::uint64_t at) {
    open_interval(node_[u], at, "node " + std::to_string(u));
    note_event(at);
    return *this;
  }

  /// Node `u` rejoins at `at`: alive again for cycles >= `at`. Its
  /// host-side data is NOT restored by the model — recovery of state is
  /// the resilient driver's job (sim/recovery.hpp).
  FaultTimeline& node_up(net::NodeId u, std::uint64_t at) {
    close_interval(node_[u], at, "node " + std::to_string(u));
    note_event(at);
    rejoins_.emplace_back(at, u);
    return *this;
  }

  /// The undirected link {u, v} goes down at `at`.
  FaultTimeline& link_down(net::NodeId u, net::NodeId v, std::uint64_t at) {
    if (u == v) throw SimError("a link joins two distinct nodes");
    open_interval(link_[detail::ordered_link(u, v)], at,
                  "link " + std::to_string(u) + "-" + std::to_string(v));
    note_event(at);
    return *this;
  }

  /// The undirected link {u, v} comes back up at `at` (a flap closes).
  FaultTimeline& link_up(net::NodeId u, net::NodeId v, std::uint64_t at) {
    if (u == v) throw SimError("a link joins two distinct nodes");
    close_interval(link_[detail::ordered_link(u, v)], at,
                   "link " + std::to_string(u) + "-" + std::to_string(v));
    note_event(at);
    return *this;
  }

  /// Transient-drop window: over cycles [from, to), each planned message
  /// is dropped with probability permille/1000 by the same stateless
  /// (seed, cycle, sender) hash FaultPlan uses. Windows must not overlap.
  FaultTimeline& drop_window(unsigned permille, std::uint64_t from,
                             std::uint64_t to) {
    if (permille > 1000) throw SimError("drop rate is per mille");
    if (from >= to)
      throw SimError("drop window [" + std::to_string(from) + ", " +
                     std::to_string(to) + ") is empty");
    for (const DropWindow& w : drops_)
      if (from < w.to && w.from < to)
        throw SimError("drop windows overlap at cycle " +
                       std::to_string(std::max(from, w.from)));
    drops_.push_back(DropWindow{permille, from, to});
    note_event(from);
    note_event(to);
    return *this;
  }

  bool empty() const {
    return node_.empty() && link_.empty() && drops_.empty();
  }
  std::uint64_t seed() const { return seed_; }
  std::size_t node_fault_count() const { return node_.size(); }
  std::size_t link_fault_count() const { return link_.size(); }

  /// Largest drop rate of any window (0 = the timeline never drops).
  unsigned max_drop_permille() const {
    unsigned m = 0;
    for (const DropWindow& w : drops_) m = std::max(m, w.permille);
    return m;
  }

  // ---- per-cycle queries (the Machine fault filter's interface; same
  // ---- signatures as FaultPlan) --------------------------------------

  bool node_dead(net::NodeId u, std::uint64_t cycle) const {
    const auto it = node_.find(u);
    return it != node_.end() && covers(it->second, cycle);
  }

  bool link_dead(net::NodeId u, net::NodeId v, std::uint64_t cycle) const {
    if (link_.empty()) return false;
    const auto it = link_.find(detail::ordered_link(u, v));
    return it != link_.end() && covers(it->second, cycle);
  }

  /// Drop rate of the window covering `cycle` (0 when none does).
  unsigned drop_permille_at(std::uint64_t cycle) const {
    for (const DropWindow& w : drops_)
      if (w.from <= cycle && cycle < w.to) return w.permille;
    return 0;
  }

  bool drops_message(std::uint64_t cycle, net::NodeId sender) const {
    const unsigned permille = drop_permille_at(cycle);
    if (permille == 0) return false;
    return detail::transient_drop_hash(seed_, cycle, sender) < permille;
  }

  /// True iff any fault (node, link or drop window) is live at `cycle` —
  /// exact, unlike FaultPlan's monotone watermark, because timeline
  /// faults end.
  bool any_active(std::uint64_t cycle) const {
    if (drop_permille_at(cycle) > 0) return true;
    for (const auto& [u, iv] : node_)
      if (covers(iv, cycle)) return true;
    for (const auto& [uv, iv] : link_)
      if (covers(iv, cycle)) return true;
    return false;
  }

  // ---- epochs ---------------------------------------------------------

  /// Cycle indices at which the faulted view changes, ascending, always
  /// starting with 0. Epoch e spans [starts[e], starts[e+1]).
  std::vector<std::uint64_t> epoch_starts() const {
    return {boundaries_.begin(), boundaries_.end()};
  }
  std::size_t epoch_count() const { return boundaries_.size(); }

  /// Index of the epoch containing `cycle`.
  std::size_t epoch_of(std::uint64_t cycle) const {
    auto it = boundaries_.upper_bound(cycle);
    return static_cast<std::size_t>(std::distance(boundaries_.begin(), it)) -
           1;
  }

  /// Nodes whose rejoin (node_up) cycle lies in (after, upto], ascending.
  std::vector<net::NodeId> rejoins_between(std::uint64_t after,
                                           std::uint64_t upto) const {
    std::vector<net::NodeId> out;
    for (const auto& [at, u] : rejoins_)
      if (at > after && at <= upto) out.push_back(u);
    std::sort(out.begin(), out.end());
    return out;
  }

  // ---- snapshots (what the recovery driver re-plans against) ----------

  /// The faults live at `cycle`, frozen as a from-start FaultPlan (the
  /// shape the fault-tolerant collectives and the detour router consume).
  /// Within one epoch every cycle snapshots identically.
  FaultPlan snapshot(std::uint64_t cycle) const {
    FaultPlan p(seed_);
    for (const auto& [u, iv] : node_)
      if (covers(iv, cycle)) p.kill_node(u);
    for (const auto& [uv, iv] : link_)
      if (covers(iv, cycle)) p.kill_link(uv.first, uv.second);
    const unsigned permille = drop_permille_at(cycle);
    if (permille > 0) p.drop_messages(permille);
    return p;
  }

  /// Nodes dead at `cycle`, ascending.
  std::vector<net::NodeId> dead_nodes(std::uint64_t cycle) const {
    std::vector<net::NodeId> out;
    for (const auto& [u, iv] : node_)
      if (covers(iv, cycle)) out.push_back(u);
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Every node that is down at any point on the timeline, ascending.
  std::vector<net::NodeId> ever_dead_nodes() const {
    std::vector<net::NodeId> out;
    out.reserve(node_.size());
    for (const auto& [u, iv] : node_) out.push_back(u);
    return out;  // std::map iterates ascending
  }

  // ---- event introspection (the sharded engine re-localizes a global
  // ---- timeline into per-shard ones) ---------------------------------

  struct NodeEvent {
    net::NodeId node = 0;
    std::uint64_t from = 0;
    std::uint64_t to = kForever;  ///< kForever = never rejoins
  };
  struct LinkEvent {
    net::NodeId u = 0;
    net::NodeId v = 0;  ///< u < v
    std::uint64_t from = 0;
    std::uint64_t to = kForever;
  };
  struct DropWindowEvent {
    unsigned permille = 0;
    std::uint64_t from = 0;
    std::uint64_t to = 0;
  };

  /// Every down interval, grouped by entity in ascending label order and
  /// interval order within one entity.
  std::vector<NodeEvent> node_events() const {
    std::vector<NodeEvent> out;
    for (const auto& [u, iv] : node_)
      for (const Interval& i : iv) out.push_back(NodeEvent{u, i.from, i.to});
    return out;
  }
  std::vector<LinkEvent> link_events() const {
    std::vector<LinkEvent> out;
    for (const auto& [uv, iv] : link_)
      for (const Interval& i : iv)
        out.push_back(LinkEvent{uv.first, uv.second, i.from, i.to});
    return out;
  }
  std::vector<DropWindowEvent> drop_windows() const {
    std::vector<DropWindowEvent> out;
    for (const DropWindow& w : drops_)
      out.push_back(DropWindowEvent{w.permille, w.from, w.to});
    return out;
  }

  /// Largest number of simultaneously dead nodes over all epochs — the
  /// figure to compare against the connectivity bound (D_n survives any
  /// set of fewer than n simultaneous node faults; Zhao/Hao/Cheng's
  /// generalized connectivity results in PAPERS.md sharpen the multi-tree
  /// variants).
  std::size_t max_concurrent_node_faults() const {
    std::size_t best = 0;
    for (const std::uint64_t c : boundaries_)
      best = std::max(best, dead_nodes(c).size());
    return best;
  }

 private:
  struct Interval {
    std::uint64_t from = 0;
    std::uint64_t to = kForever;  ///< half-open [from, to); kForever = open
  };
  struct DropWindow {
    unsigned permille = 0;
    std::uint64_t from = 0;
    std::uint64_t to = 0;
  };

  static bool covers(const std::vector<Interval>& iv, std::uint64_t cycle) {
    for (const Interval& i : iv)
      if (i.from <= cycle && cycle < i.to) return true;
    return false;
  }

  void open_interval(std::vector<Interval>& iv, std::uint64_t at,
                     const std::string& what) {
    if (!iv.empty() && iv.back().to == kForever)
      throw SimError(what + " is already down at cycle " +
                     std::to_string(at));
    if (!iv.empty() && at < iv.back().to)
      throw SimError(what + " down/up events must be in cycle order");
    iv.push_back(Interval{at, kForever});
  }

  void close_interval(std::vector<Interval>& iv, std::uint64_t at,
                      const std::string& what) {
    if (iv.empty() || iv.back().to != kForever)
      throw SimError(what + " is not down at cycle " + std::to_string(at));
    if (at <= iv.back().from)
      throw SimError(what + " up@" + std::to_string(at) +
                     " must come after its down@" +
                     std::to_string(iv.back().from));
    iv.back().to = at;
  }

  void note_event(std::uint64_t at) { boundaries_.insert(at); }

  std::uint64_t seed_ = 0;
  std::map<net::NodeId, std::vector<Interval>> node_;
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<Interval>> link_;
  std::vector<DropWindow> drops_;
  std::vector<std::pair<std::uint64_t, net::NodeId>> rejoins_;
  std::set<std::uint64_t> boundaries_{0};  ///< epoch starts, always incl. 0
};

/// A Topology view with the faults live at `at_cycle` (default: all of a
/// plan's faults) removed: dead nodes lose every incident edge, dead links
/// disappear. node_count() and name() match the base — the graphs are
/// deliberately distinguishable only by their edge sets, which is exactly
/// what the FlatAdjacency fingerprint captures, so a compiled schedule
/// recorded on the healthy base can never replay here.
class FaultyTopology final : public net::Topology {
 public:
  FaultyTopology(const net::Topology& base, const FaultPlan& plan,
                 std::uint64_t at_cycle = ~std::uint64_t{0})
      : base_(&base), dead_(plan.dead_node_set(at_cycle)) {
    for (const auto& uv : plan.dead_links(at_cycle)) dead_links_.insert(uv);
    for (const net::NodeId u : dead_)
      DC_REQUIRE(u < base.node_count(),
                 "fault plan kills node " << u << " outside " << base.name());
  }

  /// The view of one timeline epoch: the faults live at `at_cycle`. Two
  /// epochs with different dead sets fingerprint differently, and both
  /// differ from the healthy base.
  FaultyTopology(const net::Topology& base, const FaultTimeline& timeline,
                 std::uint64_t at_cycle)
      : FaultyTopology(base, timeline.snapshot(at_cycle)) {}

  std::string name() const override { return base_->name(); }
  net::NodeId node_count() const override { return base_->node_count(); }

  std::vector<net::NodeId> neighbors(net::NodeId u) const override {
    if (dead_.contains(u)) return {};
    std::vector<net::NodeId> out;
    for (const net::NodeId v : base_->neighbors(u)) {
      if (dead_.contains(v)) continue;
      if (!dead_links_.empty() && dead_links_.contains(detail::ordered_link(u, v)))
        continue;
      out.push_back(v);
    }
    return out;
  }

  bool has_edge(net::NodeId u, net::NodeId v) const override {
    if (dead_.contains(u) || dead_.contains(v)) return false;
    if (!dead_links_.empty() && dead_links_.contains(detail::ordered_link(u, v)))
      return false;
    return base_->has_edge(u, v);
  }

  const net::Topology& base() const { return *base_; }
  bool node_alive(net::NodeId u) const { return !dead_.contains(u); }
  std::size_t dead_node_count() const { return dead_.size(); }

 private:
  const net::Topology* base_;
  std::unordered_set<net::NodeId> dead_;
  std::set<std::pair<net::NodeId, net::NodeId>> dead_links_;
};

namespace detail {
/// Digits-only number parse for the fault spec grammars; throws SimError
/// naming the malformed piece and the spec it came from.
inline std::uint64_t parse_spec_u64(std::string_view s,
                                    std::string_view spec) {
  if (s.empty())
    throw SimError("empty number in fault spec '" + std::string(spec) + "'");
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9')
      throw SimError("bad number '" + std::string(s) + "' in fault spec '" +
                     std::string(spec) + "'");
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return v;
}

inline std::vector<std::string_view> split_spec(std::string_view s,
                                                char sep) {
  std::vector<std::string_view> parts;
  while (true) {
    const auto pos = s.find(sep);
    parts.push_back(s.substr(0, pos));
    if (pos == std::string_view::npos) break;
    s.remove_prefix(pos + 1);
  }
  return parts;
}
}  // namespace detail

/// Parses a dcsim-style fault spec into a plan:
///   "nodes:a,b,c"    — kill the listed node labels from the start;
///   "random:k"       — kill k random nodes seeded with default_seed;
///   "random:k,seed"  — same with an explicit seed.
/// Returns the plan, or throws SimError naming the malformed piece:
/// empty specs, duplicate node ids and out-of-range ids are all rejected
/// (never silently deduped).
inline FaultPlan parse_fault_spec(std::string_view spec,
                                  const net::Topology& t,
                                  std::uint64_t default_seed = 1) {
  if (spec.empty()) throw SimError("empty fault spec");
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos)
    throw SimError("fault spec must be nodes:a,b,... or random:k[,seed], "
                   "got '" + std::string(spec) + "'");
  const std::string_view kind = spec.substr(0, colon);
  const std::string_view rest = spec.substr(colon + 1);
  if (kind == "nodes") {
    FaultPlan plan(default_seed);
    for (const std::string_view part : detail::split_spec(rest, ',')) {
      const std::uint64_t u = detail::parse_spec_u64(part, spec);
      if (u >= t.node_count())
        throw SimError("fault spec names node " + std::to_string(u) +
                       " but " + t.name() + " has " +
                       std::to_string(t.node_count()) + " nodes");
      if (plan.node_dead(static_cast<net::NodeId>(u), 0))
        throw SimError("fault spec names node " + std::to_string(u) +
                       " twice");
      plan.kill_node(static_cast<net::NodeId>(u));
    }
    return plan;  // split_spec never returns zero parts, so >= 1 node
  }
  if (kind == "random") {
    const auto parts = detail::split_spec(rest, ',');
    if (parts.size() > 2)
      throw SimError("random fault spec is random:k[,seed], got '" +
                     std::string(spec) + "'");
    const std::uint64_t k = detail::parse_spec_u64(parts[0], spec);
    const std::uint64_t seed =
        parts.size() == 2 ? detail::parse_spec_u64(parts[1], spec)
                          : default_seed;
    if (k > t.node_count())
      throw SimError("cannot kill " + std::to_string(k) + " of " +
                     std::to_string(t.node_count()) + " nodes");
    return FaultPlan::random_nodes(t, k, seed);
  }
  throw SimError("unknown fault spec kind '" + std::string(kind) +
                 "' (nodes|random)");
}

/// Parses a dcsim-style fault timeline spec: '+'-separated events
///   node:ID:down@C[:up@C]     — node kill at C, optional rejoin
///   link:U-V:down@C[:up@C]    — link death at C, optional flap back up
///   drop:PERMILLE@C1-C2       — transient-drop window over [C1, C2)
/// e.g. "link:0-1:down@4:up@9+node:3:down@2". Throws SimError naming the
/// malformed event. Cycles are machine comm-cycle indices.
inline FaultTimeline parse_fault_timeline(std::string_view spec,
                                          const net::Topology& t,
                                          std::uint64_t default_seed = 1) {
  if (spec.empty()) throw SimError("empty fault timeline spec");
  FaultTimeline tl(default_seed);

  const auto node_id = [&](std::string_view s) -> net::NodeId {
    const std::uint64_t u = detail::parse_spec_u64(s, spec);
    if (u >= t.node_count())
      throw SimError("fault timeline names node " + std::to_string(u) +
                     " but " + t.name() + " has " +
                     std::to_string(t.node_count()) + " nodes");
    return static_cast<net::NodeId>(u);
  };
  // "down@C" / "down@C" ":up@C" suffix parts shared by node and link
  // events; `apply(at, is_down)` installs each edge of the flap.
  const auto updown = [&](const std::vector<std::string_view>& parts,
                          std::size_t first, std::string_view event,
                          auto&& apply) {
    if (parts.size() <= first || parts.size() > first + 2)
      throw SimError("fault timeline event '" + std::string(event) +
                     "' must be down@CYCLE[:up@CYCLE]");
    for (std::size_t i = first; i < parts.size(); ++i) {
      const std::string_view p = parts[i];
      const bool is_down = i == first;
      const std::string_view tag = is_down ? "down@" : "up@";
      if (p.substr(0, tag.size()) != tag)
        throw SimError("fault timeline event '" + std::string(event) +
                       "' must be down@CYCLE[:up@CYCLE]");
      apply(detail::parse_spec_u64(p.substr(tag.size()), spec), is_down);
    }
  };

  for (const std::string_view event : detail::split_spec(spec, '+')) {
    const auto parts = detail::split_spec(event, ':');
    const std::string_view kind = parts[0];
    if (kind == "node") {
      if (parts.size() < 2)
        throw SimError("fault timeline event '" + std::string(event) +
                       "' is missing a node id");
      const net::NodeId u = node_id(parts[1]);
      updown(parts, 2, event, [&](std::uint64_t at, bool is_down) {
        is_down ? tl.node_down(u, at) : tl.node_up(u, at);
      });
    } else if (kind == "link") {
      if (parts.size() < 2)
        throw SimError("fault timeline event '" + std::string(event) +
                       "' is missing U-V endpoints");
      const auto ends = detail::split_spec(parts[1], '-');
      if (ends.size() != 2)
        throw SimError("fault timeline link endpoints must be U-V, got '" +
                       std::string(parts[1]) + "'");
      const net::NodeId u = node_id(ends[0]);
      const net::NodeId v = node_id(ends[1]);
      if (u == v)
        throw SimError("fault timeline link " + std::to_string(u) + "-" +
                       std::to_string(v) + " joins a node to itself");
      if (!t.has_edge(u, v))
        throw SimError("fault timeline link " + std::to_string(u) + "-" +
                       std::to_string(v) + " is not an edge of " + t.name());
      updown(parts, 2, event, [&](std::uint64_t at, bool is_down) {
        is_down ? tl.link_down(u, v, at) : tl.link_up(u, v, at);
      });
    } else if (kind == "drop") {
      // drop:PERMILLE@C1-C2
      if (parts.size() != 2 || parts[1].find('@') == std::string_view::npos)
        throw SimError("fault timeline drop window must be "
                       "drop:PERMILLE@FROM-TO, got '" + std::string(event) +
                       "'");
      const auto at = parts[1].find('@');
      const std::uint64_t permille =
          detail::parse_spec_u64(parts[1].substr(0, at), spec);
      const auto range = detail::split_spec(parts[1].substr(at + 1), '-');
      if (range.size() != 2)
        throw SimError("fault timeline drop window must be "
                       "drop:PERMILLE@FROM-TO, got '" + std::string(event) +
                       "'");
      if (permille > 1000)
        throw SimError("fault timeline drop rate " +
                       std::to_string(permille) + " is per mille (<= 1000)");
      tl.drop_window(static_cast<unsigned>(permille),
                     detail::parse_spec_u64(range[0], spec),
                     detail::parse_spec_u64(range[1], spec));
    } else {
      throw SimError("unknown fault timeline event kind '" +
                     std::string(kind) + "' (node|link|drop)");
    }
  }
  return tl;
}

}  // namespace dc::sim
