// Process-wide metrics registry: named counters, fixed-bucket histograms,
// and point-in-time gauges.
//
// The trace layer (sim/trace.hpp) answers "what happened when"; this
// header answers "how much, overall". Components register named metrics
// once (find-or-create under a mutex) and then update them through stable
// references, so the steady-state cost of an armed metric is one relaxed
// atomic add — and the cost of a disarmed registry is a single null-pointer
// test at each instrumentation point, because components only resolve their
// metrics when MetricsRegistry::armed() was set before they were built.
//
// Metric name conventions (all under "sim."):
//   sim.messages_per_cycle        histogram, messages delivered per cycle
//   sim.fault.drops               counter, messages eaten by faults (live)
//   sim.comm_cycles / comp_steps / messages / replayed_cycles
//                                 gauges, one machine's final Counters
//   sim.edge_load.{max,mean,imbalance}
//                                 gauges from the merged edge-load snapshot
//   sim.comm_pool.high_water_bytes gauge, comm-scratch arena high water
//   sim.schedule_cache.{entries,bytes,hits,misses,evictions}
//                                 gauges published by metrics_report()
//   sim.schedule.{disk_hits,disk_misses,disk_bytes_mapped}
//                                 persistent-store traffic (schedule_store)
//   sim.trace.{events,dropped}    gauges, recorder volume
//
// Registered references are valid for the process lifetime: reset() zeroes
// values but never destroys a counter or histogram, so a Machine that
// resolved a pointer before a test reset keeps a valid target.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/schedule.hpp"
#include "support/check.hpp"
#include "support/table.hpp"

namespace dc::sim {

/// One named monotone counter. add() is safe from any thread.
class MetricCounter {
 public:
  void add(std::uint64_t k = 1) {
    value_.fetch_add(k, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= bounds[i],
/// plus one overflow bucket. Bounds are fixed at registration, so observe()
/// is a short scan plus relaxed atomic adds — no allocation, no lock.
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      DC_REQUIRE(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly increasing");
    }
  }

  /// 1, 2, 4, ... 2^max_exp — the default shape for message counts.
  static std::vector<std::uint64_t> pow2_bounds(unsigned max_exp) {
    std::vector<std::uint64_t> b;
    b.reserve(max_exp + 1);
    for (unsigned e = 0; e <= max_exp; ++e)
      b.push_back(std::uint64_t{1} << e);
    return b;
  }

  void observe(std::uint64_t v) {
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  std::vector<std::uint64_t> bucket_counts() const {
    std::vector<std::uint64_t> out(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
      out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance() {
    static MetricsRegistry reg;
    return reg;
  }

  /// Components resolve metric pointers only when the registry was armed
  /// before they were constructed — an unarmed process pays nothing.
  static bool armed() { return armed_flag().load(std::memory_order_relaxed); }
  static void arm() { armed_flag().store(true, std::memory_order_relaxed); }
  static void disarm() {
    armed_flag().store(false, std::memory_order_relaxed);
  }

  /// Find-or-create. The returned reference is stable for the process
  /// lifetime (reset() zeroes, never destroys).
  MetricCounter& counter(const std::string& name) {
    std::scoped_lock lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<MetricCounter>();
    return *slot;
  }

  /// Find-or-create; `bounds` applies only on first registration.
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds) {
    std::scoped_lock lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
  }

  /// Point-in-time value published at report boundaries (end of a run);
  /// the latest write wins.
  void set_gauge(const std::string& name, double value) {
    std::scoped_lock lock(mutex_);
    gauges_[name] = value;
  }

  struct HistogramSnapshot {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    double mean = 0.0;
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };

  /// Deterministically ordered (name-sorted via std::map) snapshot.
  Snapshot snapshot() const {
    std::scoped_lock lock(mutex_);
    Snapshot s;
    for (const auto& [name, c] : counters_)
      s.counters.emplace_back(name, c->value());
    for (const auto& [name, v] : gauges_) s.gauges.emplace_back(name, v);
    for (const auto& [name, h] : histograms_) {
      s.histograms.push_back(HistogramSnapshot{name, h->bounds(),
                                               h->bucket_counts(), h->count(),
                                               h->sum(), h->max(), h->mean()});
    }
    return s;
  }

  /// Zeroes every counter and histogram and clears gauges. Registered
  /// references stay valid.
  void reset() {
    std::scoped_lock lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, h] : histograms_) h->reset();
    gauges_.clear();
  }

  /// Drops every gauge whose name starts with `prefix`. Publish boundaries
  /// use this to retire per-run gauges a new run does not re-write (e.g. a
  /// flat run following a sharded one must not keep reporting sim.shard.*),
  /// so metrics_report() never mixes runs.
  void clear_gauges_with_prefix(std::string_view prefix) {
    std::scoped_lock lock(mutex_);
    for (auto it = gauges_.begin(); it != gauges_.end();) {
      const std::string_view name = it->first;
      if (name.substr(0, prefix.size()) == prefix) {
        it = gauges_.erase(it);
      } else {
        ++it;
      }
    }
  }

 private:
  static std::atomic<bool>& armed_flag() {
    static std::atomic<bool> flag{false};
    return flag;
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, double> gauges_;
};

/// Retires every per-run gauge family at a publish boundary. Machines and
/// the shard engine call this at the top of publish_metrics(), then
/// re-write the gauges that describe *their* run — so two algorithm
/// invocations in one process never leak stale gauges (a flat run after a
/// sharded one drops sim.shard.*, an un-traced run after a traced one
/// drops sim.trace.*, and so on). Process-lifetime gauges (the
/// sim.schedule_cache.* family metrics_report() refreshes at call time)
/// are deliberately not listed.
inline void clear_per_run_gauges(MetricsRegistry& reg) {
  for (const std::string_view prefix :
       {std::string_view{"sim.edge_load."}, std::string_view{"sim.shard."},
        std::string_view{"sim.fault."}, std::string_view{"sim.trace."},
        std::string_view{"sim.comm_pool."}, std::string_view{"sim.chunk."}}) {
    reg.clear_gauges_with_prefix(prefix);
  }
}

enum class MetricsFormat { kTable, kJson };

namespace detail {

inline std::string format_double(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace detail

/// Renders the registry (plus the current ScheduleCache statistics, pulled
/// in as gauges at call time) as a human table or machine JSON. Used by the
/// dcsim end-of-run report and the bench tables.
inline std::string metrics_report(MetricsFormat fmt = MetricsFormat::kTable) {
  auto& reg = MetricsRegistry::instance();
  const auto cache = ScheduleCache::instance().stats();
  reg.set_gauge("sim.schedule_cache.entries",
                static_cast<double>(cache.entries));
  reg.set_gauge("sim.schedule_cache.bytes", static_cast<double>(cache.bytes));
  reg.set_gauge("sim.schedule_cache.hits", static_cast<double>(cache.hits));
  reg.set_gauge("sim.schedule_cache.misses",
                static_cast<double>(cache.misses));
  reg.set_gauge("sim.schedule_cache.evictions",
                static_cast<double>(cache.evictions));
  reg.set_gauge("sim.schedule.disk_hits",
                static_cast<double>(cache.disk_hits));
  reg.set_gauge("sim.schedule.disk_misses",
                static_cast<double>(cache.disk_misses));
  reg.set_gauge("sim.schedule.disk_bytes_mapped",
                static_cast<double>(cache.disk_bytes_mapped));
  const auto snap = reg.snapshot();

  if (fmt == MetricsFormat::kJson) {
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto& [name, v] : snap.counters) {
      os << (first ? "" : ",") << "\"" << name << "\":" << v;
      first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, v] : snap.gauges) {
      os << (first ? "" : ",") << "\"" << name
         << "\":" << detail::format_double(v);
      first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& h : snap.histograms) {
      os << (first ? "" : ",") << "\"" << h.name << "\":{\"bounds\":[";
      for (std::size_t i = 0; i < h.bounds.size(); ++i)
        os << (i ? "," : "") << h.bounds[i];
      os << "],\"counts\":[";
      for (std::size_t i = 0; i < h.counts.size(); ++i)
        os << (i ? "," : "") << h.counts[i];
      os << "],\"count\":" << h.count << ",\"sum\":" << h.sum
         << ",\"max\":" << h.max
         << ",\"mean\":" << detail::format_double(h.mean) << "}";
      first = false;
    }
    os << "}}\n";
    return os.str();
  }

  Table t("metrics");
  t.header({"metric", "value"});
  for (const auto& [name, v] : snap.counters) t.add(name, v);
  for (const auto& [name, v] : snap.gauges)
    t.add(name, detail::format_double(v));
  for (const auto& h : snap.histograms) {
    t.add(h.name + ".count", h.count);
    t.add(h.name + ".mean", detail::format_double(h.mean));
    t.add(h.name + ".max", h.max);
  }
  std::ostringstream os;
  os << t;
  return os.str();
}

}  // namespace dc::sim
