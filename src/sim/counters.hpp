// Step counters matching the paper's cost model.
//
// The paper's theorems bound two quantities under a synchronous, 1-port,
// bidirectional-channel model:
//   * communication steps — synchronous cycles in which every node sends at
//     most one message and receives at most one message, each over a real
//     link;
//   * computation steps — parallel rounds in which every node applies O(1)
//     binary operations (a ⊕ in prefix computation, a compare in sorting).
// The machine counts both, plus raw totals useful for sanity checks.
#pragma once

#include <cstdint>

namespace dc::sim {

struct Counters {
  std::uint64_t comm_cycles = 0;  ///< T_comm: synchronous communication steps
  std::uint64_t comp_steps = 0;   ///< T_comp: parallel computation steps
  std::uint64_t messages = 0;     ///< total messages delivered
  std::uint64_t ops = 0;          ///< total binary-op / compare applications

  friend bool operator==(const Counters&, const Counters&) = default;
};

}  // namespace dc::sim
