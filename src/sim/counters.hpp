// Step counters matching the paper's cost model.
//
// The paper's theorems bound two quantities under a synchronous, 1-port,
// bidirectional-channel model:
//   * communication steps — synchronous cycles in which every node sends at
//     most one message and receives at most one message, each over a real
//     link;
//   * computation steps — parallel rounds in which every node applies O(1)
//     binary operations (a ⊕ in prefix computation, a compare in sorting).
// The machine counts both, plus raw totals useful for sanity checks.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace dc::sim {

struct Counters {
  std::uint64_t comm_cycles = 0;  ///< T_comm: synchronous communication steps
  std::uint64_t comp_steps = 0;   ///< T_comp: parallel computation steps
  std::uint64_t messages = 0;     ///< total messages delivered
  std::uint64_t ops = 0;          ///< total binary-op / compare applications

  // Fault accounting (all zero unless a FaultPlan is attached; see
  // sim/faults.hpp and docs/MODEL.md "Fault model").
  std::uint64_t messages_lost = 0;      ///< dropped by faults (degrade/transient)
  std::uint64_t messages_rerouted = 0;  ///< carried on fault-detour paths
  std::uint64_t fault_cycles = 0;       ///< comm cycles with >= 1 active fault

  friend bool operator==(const Counters&, const Counters&) = default;
};

/// Per-directed-edge message counters for hot-spot analysis.
///
/// Counts live in one flat u64 array per worker slot, indexed by the CSR
/// edge slot of the directed edge (FlatAdjacency::edge_slot), so concurrent
/// delivery workers bump disjoint arrays with no synchronization and no
/// hashing; reads merge the arrays on demand. Sums are order-independent,
/// so the merged totals are deterministic no matter which worker delivered
/// which message. Messages that traverse a non-CSR pair (possible only with
/// link validation disabled) fall back to a mutex-guarded overflow map.
class EdgeLoadCounters {
 public:
  /// Enables counting: one zeroed array of `directed_edges` slots per
  /// worker slot in [0, workers). All memory is allocated here, up front,
  /// so the counting itself never allocates.
  void init(std::size_t workers, std::size_t directed_edges) {
    per_worker_.assign(workers,
                       std::vector<std::uint64_t>(directed_edges, 0));
  }

  bool enabled() const { return !per_worker_.empty(); }

  /// The calling worker's flat count array (index = CSR edge slot).
  std::uint64_t* row(std::size_t worker_slot) {
    return per_worker_[worker_slot].data();
  }

  /// Merged count for one CSR edge slot. O(workers) per call — hot loops
  /// that read many slots should take one merged() snapshot instead.
  std::uint64_t slot_total(std::size_t edge_slot) const {
    std::uint64_t total = 0;
    for (const auto& row : per_worker_) total += row[edge_slot];
    return total;
  }

  /// Bulk snapshot: merged totals for every CSR edge slot (index = slot),
  /// one pass over the per-worker arrays. Reading E slots through this is
  /// O(workers * E) total, versus O(workers * E) *per full scan* repeated
  /// E times when looping over slot_total.
  std::vector<std::uint64_t> merged() const {
    std::vector<std::uint64_t> out;
    if (per_worker_.empty()) return out;
    out.assign(per_worker_.front().size(), 0);
    for (const auto& row : per_worker_) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += row[i];
    }
    return out;
  }

  /// Record / read a message outside the CSR edge set (validation off).
  void add_off_csr(std::uint64_t key) {
    std::scoped_lock lock(off_csr_mutex_);
    ++off_csr_[key];
  }
  std::uint64_t off_csr(std::uint64_t key) const {
    std::scoped_lock lock(off_csr_mutex_);
    const auto it = off_csr_.find(key);
    return it == off_csr_.end() ? 0 : it->second;
  }

 private:
  std::vector<std::vector<std::uint64_t>> per_worker_;
  mutable std::mutex off_csr_mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> off_csr_;
};

}  // namespace dc::sim
