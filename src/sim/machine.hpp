// Synchronous message-passing machine.
//
// One Machine simulates a multicomputer whose processors are the vertices of
// a Topology and whose links are its edges, executing SPMD algorithms as a
// sequence of synchronous steps:
//
//   * comm_cycle<P>(plan)  — every node may submit at most one outgoing
//     message (1-port); the machine validates that each message travels
//     along a real link and that no node receives more than one message,
//     then delivers all messages simultaneously and bumps T_comm.
//   * compute_step(f)      — every node performs O(1) local work; bumps
//     T_comp.
//   * for_each_node(f)     — uncounted local bookkeeping (initialization,
//     result copy-out). Never use this to hide real work: tests assert the
//     counted totals against the paper's formulas.
//
// Violating the port or link discipline throws SimError, so the test suite
// can prove the algorithms really fit the paper's model rather than just
// trusting the step arithmetic.
//
// Node state lives in plain std::vector arrays owned by the algorithms
// (index = node label); the machine owns only the topology reference, the
// counters, and the per-cycle validation scratch. Planning callbacks run in
// parallel over nodes (they must only read shared state and write their own
// slots); delivery and validation are sequential and deterministic.
#pragma once

#include <atomic>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/counters.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "topology/topology.hpp"

namespace dc::sim {

/// Thrown when an algorithm breaks the communication model (sends along a
/// non-edge, or some node would receive two messages in one cycle).
class SimError : public dc::CheckError {
 public:
  explicit SimError(const std::string& what) : dc::CheckError(what) {}
};

/// A single outgoing message.
template <typename P>
struct Send {
  net::NodeId to;
  P payload;
};

class Machine {
 public:
  /// `validate`: check link existence per message (O(1) for the topologies
  /// in this library). Port discipline is always enforced.
  explicit Machine(const net::Topology& topo, bool validate = true)
      : topo_(topo), validate_(validate) {}

  const net::Topology& topology() const { return topo_; }
  net::NodeId node_count() const { return topo_.node_count(); }

  /// Snapshot of the step counters.
  Counters counters() const {
    Counters c = counters_;
    c.ops = ops_.load(std::memory_order_relaxed);
    return c;
  }
  void reset_counters() {
    counters_ = Counters{};
    ops_.store(0, std::memory_order_relaxed);
  }

  /// Record `k` binary-op applications (prefix ⊕ or sort compares) without
  /// advancing any step counter; compute_step advances T_comp. Thread-safe:
  /// callable from inside compute_step callbacks.
  void add_ops(std::uint64_t k) {
    ops_.fetch_add(k, std::memory_order_relaxed);
  }

  /// One synchronous communication cycle carrying payloads of type P.
  ///
  /// `plan(u)` -> std::optional<Send<P>>; at most one outgoing message per
  /// node per cycle (enforced by the signature). Returns the inbox: for
  /// each node, the payload it received this cycle, if any.
  template <typename P, typename Plan>
  std::vector<std::optional<P>> comm_cycle(Plan&& plan) {
    const std::size_t n = node_count();
    std::vector<std::optional<Send<P>>> outbox(n);
    dc::parallel_for(0, n, [&](std::size_t u) {
      outbox[u] = plan(static_cast<net::NodeId>(u));
    });

    std::vector<std::optional<P>> inbox(n);
    std::uint64_t delivered = 0;
    for (std::size_t u = 0; u < n; ++u) {
      if (!outbox[u]) continue;
      auto& msg = *outbox[u];
      if (msg.to >= n) {
        throw SimError("node " + std::to_string(u) +
                       " sent to out-of-range node " + std::to_string(msg.to));
      }
      if (validate_ && !topo_.has_edge(static_cast<net::NodeId>(u), msg.to)) {
        throw SimError("node " + std::to_string(u) + " sent to " +
                       std::to_string(msg.to) + " but " + topo_.name() +
                       " has no such link");
      }
      if (inbox[msg.to]) {
        throw SimError("1-port violation: node " + std::to_string(msg.to) +
                       " would receive two messages in one cycle");
      }
      if (edge_load_enabled_) {
        ++edge_load_[static_cast<net::NodeId>(u) * n + msg.to];
      }
      inbox[msg.to] = std::move(msg.payload);
      ++delivered;
    }
    ++counters_.comm_cycles;
    counters_.messages += delivered;
    if (tracing_) messages_per_cycle_.push_back(delivered);
    return inbox;
  }

  /// One parallel computation step: f(u) for every node. f must only write
  /// state owned by node u.
  template <typename F>
  void compute_step(F&& f) {
    const std::size_t n = node_count();
    dc::parallel_for(0, n, [&](std::size_t u) { f(static_cast<net::NodeId>(u)); });
    ++counters_.comp_steps;
  }

  /// Uncounted per-node bookkeeping (initialization, copy-out).
  template <typename F>
  void for_each_node(F&& f) {
    const std::size_t n = node_count();
    dc::parallel_for(0, n, [&](std::size_t u) { f(static_cast<net::NodeId>(u)); });
  }

  /// Enable recording of per-cycle delivered-message counts.
  void enable_trace() { tracing_ = true; }
  const std::vector<std::uint64_t>& messages_per_cycle() const {
    return messages_per_cycle_;
  }

  /// Enable per-directed-edge message counting (hot-spot analysis).
  void enable_edge_load() { edge_load_enabled_ = true; }
  /// Messages carried by the directed edge u -> v over the whole run.
  std::uint64_t edge_load(net::NodeId u, net::NodeId v) const {
    const auto it = edge_load_.find(u * node_count() + v);
    return it == edge_load_.end() ? 0 : it->second;
  }

 private:
  const net::Topology& topo_;
  bool validate_;
  bool tracing_ = false;
  Counters counters_;
  std::atomic<std::uint64_t> ops_{0};
  std::vector<std::uint64_t> messages_per_cycle_;
  bool edge_load_enabled_ = false;
  std::unordered_map<std::uint64_t, std::uint64_t> edge_load_;
};

}  // namespace dc::sim
