// Synchronous message-passing machine.
//
// One Machine simulates a multicomputer whose processors are the vertices of
// a Topology and whose links are its edges, executing SPMD algorithms as a
// sequence of synchronous steps:
//
//   * comm_cycle<P>(plan)  — every node may submit at most one outgoing
//     message (1-port); the machine validates that each message travels
//     along a real link and that no node receives more than one message,
//     then delivers all messages simultaneously and bumps T_comm.
//   * compute_step(f)      — every node performs O(1) local work; bumps
//     T_comp.
//   * for_each_node(f)     — uncounted local bookkeeping (initialization,
//     result copy-out). Never use this to hide real work: tests assert the
//     counted totals against the paper's formulas.
//
// Violating the port or link discipline throws SimError, so the test suite
// can prove the algorithms really fit the paper's model rather than just
// trusting the step arithmetic.
//
// Node state lives in plain std::vector arrays owned by the algorithms
// (index = node label); the machine owns only the topology reference, the
// counters, and reusable per-payload-type communication scratch (see
// sim/arena.hpp). One cycle is two parallel passes:
//
//   1. plan  — clears each node's inbox slot and records its (at most one)
//      outgoing message into the persistent outbox; the 1-send rule is
//      enforced by the callback signature.
//   2. deliver — validates every message against the topology's CSR
//      adjacency snapshot (no virtual dispatch, no allocation) and claims
//      the destination's receive port by compare-exchanging its generation
//      stamp; since at most one message may land per node, winners write
//      their payload slot exclusively.
//
// Both passes run chunked over the worker pool; all writes go to disjoint
// slots, so results are identical to the old sequential delivery. If any
// worker flags a violation, the machine re-scans the outbox sequentially in
// sender order and throws the exact error the sequential path would have
// thrown (lowest sender wins), keeping SimError reporting deterministic.
//
// Because every algorithm here is communication-oblivious, the machine also
// offers a compiled replay path: comm_cycle_scheduled executes a cycle that
// was recorded and validated once (sim/schedule.hpp) as a single gather
// pass with no planning, validation, or port claiming. Algorithms select
// between the paths through ObliviousSection (sim/oblivious.hpp).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/arena.hpp"
#include "sim/counters.hpp"
#include "sim/error.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "sim/profile.hpp"
#include "sim/schedule.hpp"
#include "sim/simd.hpp"
#include "sim/trace.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"
#include "topology/flat_adjacency.hpp"
#include "topology/topology.hpp"

namespace dc::sim {

class Machine {
 public:
  /// `validate`: check link existence per message (O(log degree) against
  /// the CSR adjacency snapshot). Port discipline is always enforced.
  explicit Machine(const net::Topology& topo, bool validate = true)
      : topo_(topo),
        validate_(validate),
        pool_(&ThreadPool::shared()),
        ops_cells_(pool_->size() + 1) {
    // Metric targets are resolved once, here, and only when the registry
    // was armed before construction — an unarmed process pays exactly one
    // null test per cycle and allocates nothing for metrics.
    if (MetricsRegistry::armed()) {
      auto& reg = MetricsRegistry::instance();
      metric_msgs_per_cycle_ = &reg.histogram("sim.messages_per_cycle",
                                              Histogram::pow2_bounds(24));
      metric_fault_drops_ = &reg.counter("sim.fault.drops");
    }
  }

  const net::Topology& topology() const { return topo_; }
  net::NodeId node_count() const { return topo_.node_count(); }
  bool validating() const { return validate_; }

  /// Path the oblivious algorithms take (see sim/oblivious.hpp). Defaults
  /// to compiled replay; set DC_SCHEDULE=interpreted to flip the process
  /// default, or call set_schedule_path per machine. A machine with an
  /// attached FaultPlan or FaultTimeline always reports kInterpreted: a
  /// compiled schedule captures the healthy pattern, and replaying it would
  /// skip the per-message fault checks (and record runs under faults could
  /// observe fault-dependent plans), so fault runs interpret every cycle.
  SchedulePath schedule_path() const {
    return has_faults() ? SchedulePath::kInterpreted : schedule_path_;
  }
  void set_schedule_path(SchedulePath p) { schedule_path_ = p; }

  /// Attaches a fault scenario. Every subsequent comm_cycle checks each
  /// planned message against the plan: under kStrict any touch of a dead
  /// node or link throws FaultError; under kDegrade the message is dropped
  /// and counted in Counters::messages_lost. Transient drops apply under
  /// both policies. Attach before running an algorithm — never between the
  /// cycles of one run. With no plan attached the comm path is untouched.
  void attach_faults(std::shared_ptr<const FaultPlan> plan,
                     FaultPolicy policy = FaultPolicy::kStrict) {
    DC_REQUIRE(!timeline_,
               "attach either a FaultPlan or a FaultTimeline, not both");
    faults_ = std::move(plan);
    fault_policy_ = policy;
  }

  /// Attaches a dynamic fault timeline (sim/faults.hpp). Each comm cycle
  /// is filtered against the faults live at its own cycle index, so links
  /// flap and nodes die/rejoin mid-run; the machine traces every epoch
  /// transition it crosses ("fault_epoch") and every node rejoin it passes
  /// ("fault_rejoin"), and counts both (fault_epochs_seen / fault_rejoins).
  /// Policy semantics per cycle are identical to attach_faults. Like a
  /// plan, an attached timeline forces kInterpreted scheduling.
  void attach_fault_timeline(std::shared_ptr<const FaultTimeline> timeline,
                             FaultPolicy policy = FaultPolicy::kStrict) {
    DC_REQUIRE(!faults_,
               "attach either a FaultPlan or a FaultTimeline, not both");
    timeline_ = std::move(timeline);
    fault_policy_ = policy;
    epoch_seen_ = false;
  }
  void clear_faults() {
    faults_.reset();
    timeline_.reset();
  }
  const FaultPlan* fault_plan() const { return faults_.get(); }
  const FaultTimeline* fault_timeline() const { return timeline_.get(); }
  bool has_faults() const { return faults_ != nullptr || timeline_ != nullptr; }
  FaultPolicy fault_policy() const { return fault_policy_; }

  /// Distinct timeline epochs this machine's cycles have crossed into, and
  /// node rejoin events they have advanced past. Zero without an attached
  /// timeline; monotone across clear_faults (totals for the machine).
  std::uint64_t fault_epochs_seen() const { return fault_epochs_seen_; }
  std::uint64_t fault_rejoins() const { return fault_rejoins_; }

  /// Credits `k` messages carried on fault-detour routes (multi-hop
  /// repairs, proxy-redirected exchanges). Called by the fault-tolerant
  /// collectives; the machine itself cannot tell a detour hop from any
  /// other message.
  void note_rerouted(std::uint64_t k) { counters_.messages_rerouted += k; }

  /// Number of comm cycles this machine executed through the compiled
  /// replay path (comm_cycle_scheduled). Zero on a machine that only ever
  /// interpreted or recorded.
  std::uint64_t replayed_cycles() const { return replayed_cycles_; }

  /// Attaches a per-cycle imbalance profiler (sim/profile.hpp): every comm
  /// cycle — interpreted, replayed, tiled or fused — feeds one
  /// deterministic band-stat sample into it from the driver thread. The
  /// profiler must outlive the machine's cycles; pass nullptr to detach.
  /// Costs one O(n) receiver scan per cycle while attached, nothing when
  /// detached (dcsim turns it on with --profile).
  void attach_profiler(CycleProfiler* profiler) { profiler_ = profiler; }
  CycleProfiler* profiler() const { return profiler_; }

  /// Run parallel steps on `pool` instead of the shared pool. Call before
  /// the first cycle / before enable_edge_load.
  void set_thread_pool(ThreadPool* pool) {
    DC_REQUIRE(!edge_load_.enabled(),
               "set_thread_pool must precede enable_edge_load");
    pool_ = pool ? pool : &ThreadPool::shared();
    ops_cells_.resize(std::max(ops_cells_.size(), pool_->size() + 1));
  }
  /// Minimum range size dispatched to the pool (0 = library default).
  /// Lets tests drive the concurrent delivery path on small topologies.
  void set_parallel_grain(std::size_t grain) { grain_ = grain; }

  /// Snapshot of the step counters. Call between steps (not from inside a
  /// step callback).
  Counters counters() const {
    Counters c = counters_;
    c.ops = 0;
    for (const OpsCell& cell : ops_cells_) c.ops += cell.v;
    return c;
  }
  void reset_counters() {
    counters_ = Counters{};
    for (OpsCell& cell : ops_cells_) cell.v = 0;
  }

  /// Record `k` binary-op applications (prefix ⊕ or sort compares) without
  /// advancing any step counter; compute_step advances T_comp. Callable from
  /// inside step callbacks: each worker accumulates into its own padded
  /// cell, so the hot path is a plain add — no atomic contention.
  void add_ops(std::uint64_t k) { ops_cells_[pool().worker_slot()].v += k; }

  /// One synchronous communication cycle carrying payloads of type P.
  ///
  /// `plan(u)` -> std::optional<Send<P>>; at most one outgoing message per
  /// node per cycle (enforced by the signature). Returns the inbox: for
  /// each node, the payload it received this cycle, if any. Steady-state
  /// cycles (after the first cycle per payload type) perform zero heap
  /// allocations, with tracing and metrics enabled or disabled.
  template <typename P, typename Plan>
  Inbox<P> comm_cycle(Plan&& plan) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    CycleSpan span(trace_, trace_track_, "comm_cycle");
    auto arena = arena_.get<P>(n);
    auto buf = arena->acquire();

    std::optional<Send<P>>* const outbox = arena->outbox.data();
    std::optional<P>* const slots = buf->slots.data();
    std::atomic<std::uint64_t>* const claims = buf->claims.get();
    const std::uint64_t gen = buf->generation;

    // Pass 1 (fused): clear this cycle's inbox slots and plan every node's
    // outgoing message.
    parallel_for_chunked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t u = lo; u < hi; ++u) {
            slots[u].reset();
            outbox[u] = plan(static_cast<net::NodeId>(u));
          }
        },
        grain_, pool_);

    // Fault filter: only with a plan or timeline attached does any message
    // get a fault check; the healthy path is untouched. Runs sequentially
    // (and deterministically) between planning and delivery, so a degraded
    // message is simply absent from the delivery pass below.
    if (faults_) {
      filter_faults(*faults_, arena->outbox);
    } else if (timeline_) {
      note_timeline_cycle(counters_.comm_cycles);
      filter_faults(*timeline_, arena->outbox);
    }

    const net::FlatAdjacency* adj = nullptr;
    if (validate_ || edge_load_.enabled()) adj = &adjacency();

    // Pass 2: validate, claim receive ports, deliver. Violations only set a
    // flag here; the deterministic error is produced by the sequential
    // re-scan below. When the pass runs inline on one thread, port claims
    // use plain stamp writes; compare-exchange is only paid when the range
    // actually fans out to workers.
    const bool concurrent = parallel_will_dispatch(n, grain_, pool_);
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<bool> violation{false};
    parallel_for_chunked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          std::uint64_t local = 0;
          std::uint64_t* const loads =
              edge_load_.enabled() ? edge_load_.row(pool().worker_slot())
                                   : nullptr;
          for (std::size_t u = lo; u < hi; ++u) {
            auto& out = outbox[u];
            if (!out) continue;
            const net::NodeId to = out->to;
            if (to >= n) {
              violation.store(true, std::memory_order_relaxed);
              continue;
            }
            std::size_t slot = net::FlatAdjacency::npos;
            if (adj) {
              slot = adj->edge_slot(static_cast<net::NodeId>(u), to);
              if (validate_ && slot == net::FlatAdjacency::npos) {
                violation.store(true, std::memory_order_relaxed);
                continue;
              }
            }
            // Claim the destination's receive port for this generation.
            std::uint64_t seen = claims[to].load(std::memory_order_relaxed);
            if (concurrent) {
              bool won = false;
              while (seen != gen) {
                if (claims[to].compare_exchange_weak(
                        seen, gen, std::memory_order_acq_rel,
                        std::memory_order_relaxed)) {
                  won = true;
                  break;
                }
              }
              if (!won) {  // two messages converged on one receiver
                violation.store(true, std::memory_order_relaxed);
                continue;
              }
            } else {
              if (seen == gen) {  // this port was already claimed this cycle
                violation.store(true, std::memory_order_relaxed);
                continue;
              }
              claims[to].store(gen, std::memory_order_relaxed);
            }
            if (loads) {
              if (slot != net::FlatAdjacency::npos) {
                ++loads[slot];
              } else {
                edge_load_.add_off_csr(static_cast<net::NodeId>(u) * n + to);
              }
            }
            slots[to] = std::move(out->payload);
            ++local;
          }
          if (local) delivered.fetch_add(local, std::memory_order_relaxed);
        },
        grain_, pool_);

    if (violation.load(std::memory_order_relaxed)) {
      throw_first_violation(arena->outbox);
    }

    if (profiler_ != nullptr) {
      profiler_->note_cycle_mask(
          n, [&](std::size_t v) { return slots[v].has_value(); });
    }
    ++counters_.comm_cycles;
    const std::uint64_t count = delivered.load(std::memory_order_relaxed);
    counters_.messages += count;
    span.finish(count);
    if (metric_msgs_per_cycle_) metric_msgs_per_cycle_->observe(count);
    return Inbox<P>(std::move(arena), std::move(buf));
  }

  /// Replays one compiled communication cycle (see sim/schedule.hpp): a
  /// single chunked parallel gather slots[v] = payload(recv_from[v]) with
  /// no planning lambdas, no adjacency lookups and no claim CAS — the
  /// record run already validated link existence and the 1-port rule.
  /// `payload(u)` is invoked exactly once per delivered message, with u the
  /// sender; it must only read state (any node's), like a plan callback.
  /// Counter, trace and edge-load semantics are identical to comm_cycle:
  /// edge slots were resolved at record time, so hot-spot accounting is a
  /// plain indexed add. Steady-state replays perform zero heap allocations,
  /// with tracing and metrics enabled or disabled.
  template <typename P, typename PayloadFn>
  Inbox<P> comm_cycle_scheduled(const ScheduleCycle& cyc,
                                PayloadFn&& payload) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    DC_REQUIRE(!has_faults(),
               "compiled replay skips per-message fault checks; a machine "
               "with an attached FaultPlan must interpret every cycle");
    DC_REQUIRE(cyc.recv_from.size() == n,
               "schedule cycle was compiled for a different node count");
    CycleSpan span(trace_, trace_track_, "comm_cycle_replay");
    auto arena = arena_.get<P>(n);
    auto buf = arena->acquire();

    std::optional<P>* const slots = buf->slots.data();
    const net::NodeId* const from = cyc.recv_from.data();
    const std::uint32_t* const edge = cyc.recv_slot.data();
    const bool loads_on = edge_load_.enabled();
    parallel_for_affine(
        0, n, sizeof(std::optional<P>),
        [&](std::size_t lo, std::size_t hi) {
          std::uint64_t* const loads =
              loads_on ? edge_load_.row(pool().worker_slot()) : nullptr;
          for (std::size_t v = lo; v < hi; ++v) {
            const net::NodeId u = from[v];
            if (u == kNoSender) {
              slots[v].reset();
              continue;
            }
            slots[v] = payload(u);
            if (loads) {
              if (edge[v] != kNoEdgeSlot) {
                ++loads[edge[v]];
              } else {
                edge_load_.add_off_csr(u * n + v);
              }
            }
          }
        },
        grain_, pool_);

    if (profiler_ != nullptr) profiler_->note_cycle(cyc, n);
    ++counters_.comm_cycles;
    counters_.messages += cyc.message_count;
    ++replayed_cycles_;
    span.finish(cyc.message_count);
    if (metric_msgs_per_cycle_)
      metric_msgs_per_cycle_->observe(cyc.message_count);
    return Inbox<P>(std::move(arena), std::move(buf));
  }

  /// Replays one compiled cycle whose every message is a fixed-width block
  /// of T, through a structure-of-arrays plane: one chunked receiver-major
  /// sweep where each delivery is `src(sender, plane + v*width)` — a
  /// memcpy-like stride copy instead of a heap-owning payload move.
  /// `src(u, dst)` must write exactly `width` elements of node u's outgoing
  /// block into dst and only read state, like a plan callback; it is invoked
  /// exactly once per delivered message. Counter, trace, edge-load and
  /// fault-refusal semantics are identical to comm_cycle_scheduled.
  /// Steady-state replays at a given width perform zero heap allocations
  /// (the plane is pooled and kept at its high-water size), with tracing
  /// and metrics enabled or disabled.
  template <typename T, typename SrcFn>
  BlockInbox<T> comm_cycle_scheduled_blocks(const ScheduleCycle& cyc,
                                            std::size_t width, SrcFn&& src) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    const net::NodeId* const from = cyc.recv_from.data();
    const std::uint32_t* const edge = cyc.recv_slot.data();
    return replay_blocks_impl<T>(
        cyc, width,
        [&](std::size_t lo, std::size_t hi, T* plane, std::uint64_t* stamp,
            std::uint64_t gen, std::uint64_t* loads) {
          for (std::size_t v = lo; v < hi; ++v) {
            const net::NodeId u = from[v];
            if (u == kNoSender) continue;
            src(u, plane + v * width);
            stamp[v] = gen;
            if (loads) {
              if (edge[v] != kNoEdgeSlot) {
                ++loads[edge[v]];
              } else {
                edge_load_.add_off_csr(u * n + v);
              }
            }
          }
        });
  }

  /// Plane-source overload of the block replay: node u's outgoing block
  /// lives at `src.base[u*src.stride ..]`, so the whole cycle is one
  /// plane-to-plane kernel sweep (sim/simd.hpp gather_rows — an AVX2 masked
  /// gather at width 1, width-specialized block copies otherwise) instead
  /// of a per-sender callback. Semantics (counters, trace, edge loads,
  /// fault refusal, zero steady-state allocations) are identical to the
  /// callback form; with edge-load accounting enabled the rows run through
  /// the scalar loop so hot-spot counting stays exact.
  template <typename T>
  BlockInbox<T> comm_cycle_scheduled_blocks(const ScheduleCycle& cyc,
                                            std::size_t width,
                                            PlaneSrc<T> src) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    const net::NodeId* const from = cyc.recv_from.data();
    const std::uint32_t* const edge = cyc.recv_slot.data();
    return replay_blocks_impl<T>(
        cyc, width,
        [&](std::size_t lo, std::size_t hi, T* plane, std::uint64_t* stamp,
            std::uint64_t gen, std::uint64_t* loads) {
          if (!loads) {
            simd::gather_rows(plane, stamp, gen, from, kNoSender, lo, hi,
                              width, src.base, src.stride);
            return;
          }
          for (std::size_t v = lo; v < hi; ++v) {
            const net::NodeId u = from[v];
            if (u == kNoSender) continue;
            simd::copy_block(plane + v * width, src.base + u * src.stride,
                             width);
            stamp[v] = gen;
            if (edge[v] != kNoEdgeSlot) {
              ++loads[edge[v]];
            } else {
              edge_load_.add_off_csr(u * n + v);
            }
          }
        });
  }

  /// Two-plane concatenation overload: node u ships
  /// `src.first[u*first_stride ..][0..first_width)` followed by
  /// `src.second[u*second_stride ..][0..width-first_width)` — the relay
  /// cycle's (own block ‖ gathered block) payload without materializing a
  /// combined buffer. Same semantics as the other overloads.
  template <typename T>
  BlockInbox<T> comm_cycle_scheduled_blocks(const ScheduleCycle& cyc,
                                            std::size_t width,
                                            PlanePairSrc<T> src) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    DC_REQUIRE(src.first_width <= width,
               "pair source first_width exceeds the block width");
    const std::size_t w1 = src.first_width;
    const std::size_t w2 = width - w1;
    const net::NodeId* const from = cyc.recv_from.data();
    const std::uint32_t* const edge = cyc.recv_slot.data();
    return replay_blocks_impl<T>(
        cyc, width,
        [&](std::size_t lo, std::size_t hi, T* plane, std::uint64_t* stamp,
            std::uint64_t gen, std::uint64_t* loads) {
          for (std::size_t v = lo; v < hi; ++v) {
            const net::NodeId u = from[v];
            if (u == kNoSender) continue;
            T* const dst = plane + v * width;
            simd::copy_block(dst, src.first + u * src.first_stride, w1);
            simd::copy_block(dst + w1, src.second + u * src.second_stride,
                             w2);
            stamp[v] = gen;
            if (loads) {
              if (edge[v] != kNoEdgeSlot) {
                ++loads[edge[v]];
              } else {
                edge_load_.add_off_csr(u * n + v);
              }
            }
          }
        });
  }

  /// Tiled plane replay for shard-local schedules (sim/shard.hpp): the
  /// receiver space is `tiles` consecutive copies of the `unit` cycle, and
  /// every sender index in `unit` is tile-local — tile t's receiver row
  /// t*B + v gathers from sender t*B + unit.recv_from[v] (B =
  /// unit.recv_from.size(), with B * tiles == node_count()). One
  /// cluster-sized compiled slice therefore drives the whole machine:
  /// schedules stay O(cluster) instead of O(shard) no matter how many
  /// cluster blocks the shard holds, which is what keeps mega-scale
  /// shards' schedule memory off the linear-per-shard budget. Each tile
  /// runs through the same SIMD gather kernel as the plane-source replay
  /// overload; counters and trace book one comm cycle delivering
  /// tiles * unit.message_count messages. Edge-load accounting is not
  /// supported here (the unit slice carries no CSR slots — the sharded
  /// engine interprets cycles instead when hot-spot counting is on).
  template <typename T>
  BlockInbox<T> comm_cycle_scheduled_blocks_tiled(const ScheduleCycle& unit,
                                                  std::size_t tiles,
                                                  std::size_t width,
                                                  PlaneSrc<T> src) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    const std::size_t block = unit.recv_from.size();
    DC_REQUIRE(!has_faults(),
               "compiled replay skips per-message fault checks; a machine "
               "with an attached FaultPlan must interpret every cycle");
    DC_REQUIRE(block >= 1 && block * tiles == n,
               "tiled schedule unit does not cover the node count");
    DC_REQUIRE(width >= 1, "block width must be >= 1");
    DC_REQUIRE(!edge_load_.enabled(),
               "tiled replay carries no edge slots; interpret cycles when "
               "edge-load accounting is enabled");
    CycleSpan span(trace_, trace_track_, "comm_cycle_replay_blocks");
    auto arena = arena_.get_blocks<T>(n);
    auto buf = arena->acquire(width);

    T* const plane = buf->values.data();
    std::uint64_t* const stamp = buf->stamp.get();
    const std::uint64_t gen = buf->generation;
    const net::NodeId* const from = unit.recv_from.data();
    parallel_for_affine(
        0, n, width * sizeof(T),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo / block; t * block < hi; ++t) {
            const std::size_t base = t * block;
            const std::size_t row_lo = lo > base ? lo - base : 0;
            const std::size_t row_hi = std::min(hi - base, block);
            simd::gather_rows(plane + base * width, stamp + base, gen, from,
                              kNoSender, row_lo, row_hi, width,
                              src.base + base * src.stride, src.stride);
          }
        },
        grain_, pool_);

    if (profiler_ != nullptr) profiler_->note_cycle_tiled(unit, block, tiles);
    const std::uint64_t delivered =
        static_cast<std::uint64_t>(tiles) * unit.message_count;
    ++counters_.comm_cycles;
    counters_.messages += delivered;
    ++replayed_cycles_;
    span.finish(delivered);
    if (metric_msgs_per_cycle_) metric_msgs_per_cycle_->observe(delivered);
    return BlockInbox<T>(std::move(arena), std::move(buf));
  }

  /// Fused exchange-and-combine cycle over `blocks` equal node blocks:
  /// body(b_lo, b_hi) performs, for blocks [b_lo, b_hi), both the cycle's
  /// data movement and the dependent per-node combine in one sweep — no
  /// comm plane is materialized at all, which is what makes mega-scale
  /// sharded passes bandwidth- rather than dispatch-bound. The body must
  /// touch only state owned by its blocks (exchanges must stay
  /// block-internal), and must charge add_ops for the combines it applies.
  /// Books exactly what the unfused pair would have: one comm cycle
  /// delivering one message per node (on a cube exchange every node both
  /// sends and receives) followed by one computation step.
  template <typename Body>
  void comm_compute_cycle_fused_blocks(std::size_t blocks, Body&& body) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    DC_REQUIRE(!has_faults(),
               "fused cycles skip per-message fault checks; a machine with "
               "an attached FaultPlan must interpret every cycle");
    DC_REQUIRE(!edge_load_.enabled(),
               "fused cycles carry no edge slots; interpret cycles when "
               "edge-load accounting is enabled");
    DC_REQUIRE(blocks >= 1 && n % blocks == 0,
               "fused blocks do not evenly cover the node count");
    const std::size_t block = n / blocks;
    {
      CycleSpan span(trace_, trace_track_, "comm_cycle_fused");
      parallel_for_chunked(0, blocks, body,
                           std::max<std::size_t>(1, grain_ / block), pool_);
      if (profiler_ != nullptr) profiler_->note_cycle_uniform(n);
      ++counters_.comm_cycles;
      counters_.messages += n;
      span.finish(n);
      if (metric_msgs_per_cycle_) metric_msgs_per_cycle_->observe(n);
    }
    ++counters_.comp_steps;
    if (trace_) trace_->instant(trace_track_, 0, "compute_step");
  }

  /// Packs a vector-payload inbox into a block plane. Used by
  /// ObliviousSection::exchange_blocks on the interpreted and record paths,
  /// where the exchange ran through comm_cycle (full validation, faults,
  /// SimError reporting) with std::vector<T> payloads; this uncounted copy
  /// gives the caller the same BlockInbox view replay would have produced.
  template <typename T>
  BlockInbox<T> blockify(std::size_t width, const Inbox<std::vector<T>>& in) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    auto arena = arena_.get_blocks<T>(n);
    auto buf = arena->acquire(width);
    T* const plane = buf->values.data();
    std::uint64_t* const stamp = buf->stamp.get();
    const std::uint64_t gen = buf->generation;
    parallel_for_chunked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t v = lo; v < hi; ++v) {
            const auto& msg = in[static_cast<net::NodeId>(v)];
            if (!msg) continue;
            DC_CHECK(msg->size() == width,
                     "block exchange delivered a ragged-width message");
            std::copy_n(msg->data(), width, plane + v * width);
            stamp[v] = gen;
          }
        },
        grain_, pool_);
    return BlockInbox<T>(std::move(arena), std::move(buf));
  }

  /// Width-1 variant of blockify: packs a scalar-payload inbox into a
  /// plane, so width-1 block exchanges interpret with plain T payloads
  /// (no per-message vector) and still hand back the uniform block view.
  template <typename T>
  BlockInbox<T> blockify_scalar(const Inbox<T>& in) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    auto arena = arena_.get_blocks<T>(n);
    auto buf = arena->acquire(1);
    T* const plane = buf->values.data();
    std::uint64_t* const stamp = buf->stamp.get();
    const std::uint64_t gen = buf->generation;
    parallel_for_chunked(
        0, n,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t v = lo; v < hi; ++v) {
            const auto& msg = in[static_cast<net::NodeId>(v)];
            if (!msg) continue;
            plane[v] = *msg;
            stamp[v] = gen;
          }
        },
        grain_, pool_);
    return BlockInbox<T>(std::move(arena), std::move(buf));
  }

  /// One parallel computation step: f(u) for every node. f must only write
  /// state owned by node u.
  template <typename F>
  void compute_step(F&& f) {
    parallel_for_chunked(
        0, static_cast<std::size_t>(node_count()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t u = lo; u < hi; ++u) f(static_cast<net::NodeId>(u));
        },
        grain_, pool_);
    ++counters_.comp_steps;
    if (trace_) trace_->instant(trace_track_, 0, "compute_step");
  }

  /// Chunked form of compute_step: body(lo, hi) must perform exactly the
  /// per-node O(1) work of nodes (or per-node data indices) [lo, hi) —
  /// nothing more, nothing less — and is invoked over disjoint ranges
  /// covering [0, node_count). Counted as ONE computation step, exactly
  /// like compute_step; use it when the per-node work is a contiguous
  /// array operation that a kernel can sweep across the whole range
  /// (core/block_prefix.hpp's row combines). Charge add_ops(hi - lo) per
  /// range to keep op totals identical to the per-node form.
  template <typename Body>
  void compute_step_chunked(Body&& body) {
    parallel_for_chunked(0, static_cast<std::size_t>(node_count()),
                         std::forward<Body>(body), grain_, pool_);
    ++counters_.comp_steps;
    if (trace_) trace_->instant(trace_track_, 0, "compute_step");
  }

  /// Streamed form of compute_step: body(0, node_count) is invoked exactly
  /// once, on one pool worker, and must perform the per-node O(1) work of
  /// every node itself. Used by out-of-core passes whose node state lives
  /// in a spill file and streams through one caller-managed window —
  /// concurrent chunks would race on that window buffer. Counted as ONE
  /// computation step; charge add_ops exactly like the per-node form.
  template <typename Body>
  void compute_step_streamed(Body&& body) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    parallel_for_chunked(
        0, std::size_t{1},
        [&](std::size_t, std::size_t) { body(std::size_t{0}, n); }, 1, pool_);
    ++counters_.comp_steps;
    if (trace_) trace_->instant(trace_track_, 0, "compute_step");
  }

  /// Uncounted per-node bookkeeping (initialization, copy-out).
  template <typename F>
  void for_each_node(F&& f) {
    parallel_for_chunked(
        0, static_cast<std::size_t>(node_count()),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t u = lo; u < hi; ++u) f(static_cast<net::NodeId>(u));
        },
        grain_, pool_);
  }

  /// Attaches an external trace recorder (sim/trace.hpp) and registers a
  /// timeline track labelled `label` for this machine. Several machines may
  /// share one recorder (dcsim puts warm-up and measured runs on separate
  /// tracks of one timeline). Pass nullptr to detach. All ring memory was
  /// allocated when the recorder was built, so enabling tracing adds two
  /// ring stores per comm cycle and no allocations.
  void set_trace(TraceRecorder* rec, std::string label = "machine") {
    trace_ = rec;
    trace_track_ = trace_ ? trace_->register_track(std::move(label)) : 0;
  }

  /// Compatibility switch: enables tracing into a machine-owned recorder
  /// (allocated here, once). Prefer set_trace to share a recorder.
  void enable_trace() {
    if (trace_) return;
    owned_trace_ =
        std::make_unique<TraceRecorder>(pool().size() + 1);
    set_trace(owned_trace_.get(), topo_.name());
  }

  /// The attached recorder (null when tracing is off) and this machine's
  /// track id on it. Pass to TraceScope to add phase spans around
  /// algorithm sections.
  TraceRecorder* trace() const { return trace_; }
  std::uint32_t trace_track() const { return trace_track_; }

  /// Compatibility query: delivered-message count of every traced comm
  /// cycle, in cycle order (backed by the recorder's kCycleEnd events).
  /// Empty when tracing was never enabled; complete while the caller ring
  /// has not wrapped (TraceRecorder::dropped() == 0).
  std::vector<std::uint64_t> messages_per_cycle() const {
    if (!trace_) return {};
    return trace_->messages_per_cycle(trace_track_);
  }

  /// Enable per-directed-edge message counting (hot-spot analysis). All
  /// counter memory is allocated here so counting itself stays
  /// allocation-free.
  void enable_edge_load() {
    if (edge_load_.enabled()) return;
    edge_load_.init(pool().size() + 1, adjacency().directed_edge_count());
  }
  bool edge_load_enabled() const { return edge_load_.enabled(); }
  /// Messages carried by the directed edge u -> v over the whole run.
  /// Counts are unspecified for a cycle that threw SimError.
  std::uint64_t edge_load(net::NodeId u, net::NodeId v) const {
    if (!edge_load_.enabled() || u >= node_count() || v >= node_count()) {
      return 0;
    }
    const std::size_t slot = adj_->edge_slot(u, v);
    std::uint64_t total =
        slot == net::FlatAdjacency::npos ? 0 : edge_load_.slot_total(slot);
    total += edge_load_.off_csr(u * node_count() + v);
    return total;
  }

  /// Merged per-edge totals for the whole run, indexed by CSR edge slot
  /// (row-major over FlatAdjacency rows). One O(workers * edges) pass —
  /// use this instead of looping edge_load() over every edge.
  std::vector<std::uint64_t> edge_load_merged() const {
    return edge_load_.merged();
  }

  /// Publishes this machine's end-of-run gauges into the armed metrics
  /// registry: final step counters, fault totals, merged edge-load
  /// imbalance (max/mean), pooled comm-scratch high water, and trace
  /// volume. No-op when the registry is unarmed. Call between runs, then
  /// render with metrics_report(). A publish is a run boundary: every
  /// per-run gauge family is cleared first, so gauges another run wrote
  /// (sim.shard.*, another machine's sim.edge_load.*) never survive into
  /// this run's report stale.
  void publish_metrics() const {
    if (!MetricsRegistry::armed()) return;
    auto& reg = MetricsRegistry::instance();
    clear_per_run_gauges(reg);
    const Counters c = counters();
    reg.set_gauge("sim.comm_cycles", static_cast<double>(c.comm_cycles));
    reg.set_gauge("sim.comp_steps", static_cast<double>(c.comp_steps));
    reg.set_gauge("sim.messages", static_cast<double>(c.messages));
    reg.set_gauge("sim.replayed_cycles",
                  static_cast<double>(replayed_cycles_));
    reg.set_gauge("sim.fault.messages_lost",
                  static_cast<double>(c.messages_lost));
    reg.set_gauge("sim.fault.messages_rerouted",
                  static_cast<double>(c.messages_rerouted));
    reg.set_gauge("sim.fault.cycles", static_cast<double>(c.fault_cycles));
    reg.set_gauge("sim.fault.epochs",
                  static_cast<double>(fault_epochs_seen_));
    reg.set_gauge("sim.fault.rejoins", static_cast<double>(fault_rejoins_));
    if (edge_load_.enabled()) {
      const std::vector<std::uint64_t> loads = edge_load_.merged();
      std::uint64_t max = 0;
      std::uint64_t sum = 0;
      for (const std::uint64_t v : loads) {
        max = std::max(max, v);
        sum += v;
      }
      const double mean =
          loads.empty() ? 0.0
                        : static_cast<double>(sum) /
                              static_cast<double>(loads.size());
      reg.set_gauge("sim.edge_load.max", static_cast<double>(max));
      reg.set_gauge("sim.edge_load.mean", mean);
      reg.set_gauge("sim.edge_load.imbalance",
                    mean > 0.0 ? static_cast<double>(max) / mean : 0.0);
    }
    reg.set_gauge("sim.comm_pool.high_water_bytes",
                  static_cast<double>(arena_.resident_bytes()));
    // Chunks executed off their home band across this machine's pool: zero
    // means every affine replay range stayed on its cache-home thread.
    reg.set_gauge("sim.chunk.affinity_moves",
                  static_cast<double>(pool_->affinity_steals()));
    if (trace_) {
      reg.set_gauge("sim.trace.events",
                    static_cast<double>(trace_->emitted()));
      reg.set_gauge("sim.trace.dropped",
                    static_cast<double>(trace_->dropped()));
    }
  }

  /// Bytes of pooled communication scratch (inbox buffers and block
  /// planes) currently resident in this machine's arena.
  std::size_t comm_pool_resident_bytes() const {
    return arena_.resident_bytes();
  }

  /// Releases every idle pooled communication buffer. The sharded engine's
  /// out-of-core mode calls this after each shard pass so only one shard's
  /// planes are ever resident; the next cycle re-acquires fresh buffers, so
  /// zero-steady-state-allocation guarantees do not hold across a trim.
  void trim_comm_pool() { arena_.trim(); }

 private:
  // pool_ is always non-null (the constructor resolves the shared pool
  // once), so per-node hot paths like add_ops skip the static-local guard
  // inside ThreadPool::shared().
  ThreadPool& pool() const { return *pool_; }

  /// Shared prologue/epilogue of every block-replay overload: validates the
  /// cycle, acquires a plane, runs `per_range(lo, hi, plane, stamp, gen,
  /// loads)` over receiver rows via the cache-affine parallel loop (loads
  /// is the per-worker edge-load row or null), and books counters/trace.
  template <typename T, typename PerRange>
  BlockInbox<T> replay_blocks_impl(const ScheduleCycle& cyc, std::size_t width,
                                   PerRange&& per_range) {
    const std::size_t n = static_cast<std::size_t>(node_count());
    DC_REQUIRE(!has_faults(),
               "compiled replay skips per-message fault checks; a machine "
               "with an attached FaultPlan must interpret every cycle");
    DC_REQUIRE(cyc.recv_from.size() == n,
               "schedule cycle was compiled for a different node count");
    DC_REQUIRE(width >= 1, "block width must be >= 1");
    CycleSpan span(trace_, trace_track_, "comm_cycle_replay_blocks");
    auto arena = arena_.get_blocks<T>(n);
    auto buf = arena->acquire(width);

    T* const plane = buf->values.data();
    std::uint64_t* const stamp = buf->stamp.get();
    const std::uint64_t gen = buf->generation;
    const bool loads_on = edge_load_.enabled();
    parallel_for_affine(
        0, n, width * sizeof(T),
        [&](std::size_t lo, std::size_t hi) {
          std::uint64_t* const loads =
              loads_on ? edge_load_.row(pool().worker_slot()) : nullptr;
          per_range(lo, hi, plane, stamp, gen, loads);
        },
        grain_, pool_);

    if (profiler_ != nullptr) profiler_->note_cycle(cyc, n);
    ++counters_.comm_cycles;
    counters_.messages += cyc.message_count;
    ++replayed_cycles_;
    span.finish(cyc.message_count);
    if (metric_msgs_per_cycle_)
      metric_msgs_per_cycle_->observe(cyc.message_count);
    return BlockInbox<T>(std::move(arena), std::move(buf));
  }

  /// CSR adjacency snapshot, fetched from the topology's cache on first
  /// use.
  const net::FlatAdjacency& adjacency() const {
    if (!adj_) adj_ = &topo_.flat_adjacency();
    return *adj_;
  }

  /// Applies the attached fault source (FaultPlan or FaultTimeline — both
  /// expose node_dead/link_dead/drops_message/any_active over cycle
  /// indices) to this cycle's planned outbox, in ascending sender order
  /// (so strict-mode errors are deterministic). Under kStrict, the first
  /// message touching a dead node or link throws FaultError; under
  /// kDegrade it is cleared and counted as lost. Transient drops are
  /// cleared and counted under both policies.
  template <typename F, typename P>
  void filter_faults(const F& f,
                     std::vector<std::optional<Send<P>>>& outbox) {
    const std::uint64_t cyc = counters_.comm_cycles;  // index of this cycle
    if (f.any_active(cyc)) {
      ++counters_.fault_cycles;
      if (trace_) trace_->instant(trace_track_, 0, "fault_cycle", "cycle", cyc);
    }
    const std::size_t n = static_cast<std::size_t>(node_count());
    const bool strict = fault_policy_ == FaultPolicy::kStrict;
    for (std::size_t u = 0; u < n; ++u) {
      if (!outbox[u]) continue;
      const net::NodeId to = outbox[u]->to;
      std::string error;
      if (f.node_dead(static_cast<net::NodeId>(u), cyc)) {
        error = "faulty node " + std::to_string(u) + " cannot send (cycle " +
                std::to_string(cyc) + ")";
      } else if (to < n && f.node_dead(to, cyc)) {
        error = "node " + std::to_string(u) + " sent to faulty node " +
                std::to_string(to) + " (cycle " + std::to_string(cyc) + ")";
      } else if (to < n &&
                 f.link_dead(static_cast<net::NodeId>(u), to, cyc)) {
        error = "node " + std::to_string(u) + " sent over faulty link to " +
                std::to_string(to) + " (cycle " + std::to_string(cyc) + ")";
      }
      if (!error.empty()) {
        if (strict) throw FaultError(error);
        outbox[u].reset();
        note_fault_drop(u, cyc);
        continue;
      }
      if (f.drops_message(cyc, static_cast<net::NodeId>(u))) {
        outbox[u].reset();
        note_fault_drop(u, cyc);
      }
    }
  }

  /// Timeline epoch bookkeeping, run once per filtered cycle, before the
  /// filter: when `cyc` lands in a different epoch than the last filtered
  /// cycle (or is the first), trace a "fault_epoch" instant; every node_up
  /// event strictly between the previous filtered cycle and this one gets
  /// a "fault_rejoin" instant. Cheap (two ordered-set lookups) and fully
  /// deterministic — cycle indices, not wall clock.
  void note_timeline_cycle(std::uint64_t cyc) {
    const FaultTimeline& tl = *timeline_;
    const std::size_t epoch = tl.epoch_of(cyc);
    // Rejoins that became effective in (last seen cycle, cyc]. A node_up
    // cycle is always >= 1, so the cyc == 0 underflow below yields the
    // empty interval it should.
    const std::uint64_t after = epoch_seen_ ? last_fault_cycle_ : cyc - 1;
    if (after < cyc) {
      for (const net::NodeId u : tl.rejoins_between(after, cyc)) {
        ++fault_rejoins_;
        if (trace_) {
          trace_->instant(trace_track_, 0, "fault_rejoin", "node", u, "cycle",
                          cyc);
        }
      }
    }
    if (!epoch_seen_ || epoch != current_epoch_) {
      ++fault_epochs_seen_;
      if (trace_) {
        trace_->instant(trace_track_, 0, "fault_epoch", "epoch", epoch,
                        "cycle", cyc);
      }
      current_epoch_ = epoch;
      epoch_seen_ = true;
    }
    last_fault_cycle_ = cyc;
  }

  /// Accounts one fault-dropped message (degrade-policy kill or transient
  /// drop): Counters, fault-drop metric, and a fault_drop trace instant
  /// tagged with the sender and cycle.
  void note_fault_drop(std::size_t sender, std::uint64_t cyc) {
    ++counters_.messages_lost;
    if (metric_fault_drops_) metric_fault_drops_->add();
    if (trace_) {
      trace_->instant(trace_track_, 0, "fault_drop", "sender", sender,
                      "cycle", cyc);
    }
  }

  /// Replays the sequential validation over the planned outbox and throws
  /// the first violation in sender order — byte-identical to the historical
  /// sequential delivery loop, and deterministic under concurrent
  /// detection (the lowest offending sender wins the error message).
  template <typename P>
  [[noreturn]] void throw_first_violation(
      const std::vector<std::optional<Send<P>>>& outbox) const {
    const std::size_t n = static_cast<std::size_t>(node_count());
    std::vector<char> seen(n, 0);
    for (std::size_t u = 0; u < n; ++u) {
      if (!outbox[u]) continue;
      const net::NodeId to = outbox[u]->to;
      if (to >= n) {
        throw SimError("node " + std::to_string(u) +
                       " sent to out-of-range node " + std::to_string(to));
      }
      if (validate_ && !adj_->has_edge(static_cast<net::NodeId>(u), to)) {
        throw SimError("node " + std::to_string(u) + " sent to " +
                       std::to_string(to) + " but " + topo_.name() +
                       " has no such link");
      }
      if (seen[to]) {
        throw SimError("1-port violation: node " + std::to_string(to) +
                       " would receive two messages in one cycle");
      }
      seen[to] = 1;
    }
    DC_CHECK(false, "delivery flagged a violation the re-scan cannot find");
    std::abort();  // unreachable: DC_CHECK throws
  }

  /// One cache line per worker slot so concurrent add_ops calls never
  /// false-share.
  struct alignas(64) OpsCell {
    std::uint64_t v = 0;
  };

  /// Guard around one comm cycle's trace span: begin on construction, a
  /// kCycleEnd-tagged end (carrying the delivered-message count) via
  /// finish(), and — if the cycle throws before finishing — a plain end so
  /// the exported spans stay balanced. Inert with no recorder attached.
  struct CycleSpan {
    CycleSpan(TraceRecorder* rec, std::uint32_t track, const char* name)
        : rec_(rec), track_(track), name_(name) {
      if (rec_) rec_->begin(track_, 0, name_);
    }
    void finish(std::uint64_t messages) {
      if (rec_) rec_->end_cycle(track_, 0, name_, messages);
      rec_ = nullptr;
    }
    ~CycleSpan() {
      if (rec_) rec_->end(track_, 0, name_);
    }
    CycleSpan(const CycleSpan&) = delete;
    CycleSpan& operator=(const CycleSpan&) = delete;

   private:
    TraceRecorder* rec_;
    std::uint32_t track_;
    const char* name_;
  };

  static SchedulePath default_schedule_path() {
    static const SchedulePath p = [] {
      const char* e = std::getenv("DC_SCHEDULE");
      return e && std::string_view(e) == "interpreted"
                 ? SchedulePath::kInterpreted
                 : SchedulePath::kCompiled;
    }();
    return p;
  }

  const net::Topology& topo_;
  bool validate_;
  SchedulePath schedule_path_ = default_schedule_path();
  std::uint64_t replayed_cycles_ = 0;
  Counters counters_;
  ThreadPool* pool_;  // never null; set at construction
  std::vector<OpsCell> ops_cells_;
  TraceRecorder* trace_ = nullptr;  // null = tracing off (the common case)
  std::uint32_t trace_track_ = 0;
  std::unique_ptr<TraceRecorder> owned_trace_;  // only via enable_trace()
  Histogram* metric_msgs_per_cycle_ = nullptr;  // null = registry unarmed
  MetricCounter* metric_fault_drops_ = nullptr;
  CycleProfiler* profiler_ = nullptr;  // null = imbalance profiling off
  CommArena arena_;
  mutable const net::FlatAdjacency* adj_ = nullptr;
  std::size_t grain_ = 0;
  EdgeLoadCounters edge_load_;
  std::shared_ptr<const FaultPlan> faults_;
  std::shared_ptr<const FaultTimeline> timeline_;
  FaultPolicy fault_policy_ = FaultPolicy::kStrict;
  // Timeline epoch bookkeeping (note_timeline_cycle).
  bool epoch_seen_ = false;
  std::size_t current_epoch_ = 0;
  std::uint64_t last_fault_cycle_ = 0;
  std::uint64_t fault_epochs_seen_ = 0;
  std::uint64_t fault_rejoins_ = 0;
};

}  // namespace dc::sim
