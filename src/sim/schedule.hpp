// Compiled oblivious communication schedules: record once, validate once,
// replay as dense permutations.
//
// Every algorithm in this repository is *communication-oblivious*: the
// destination of each node in each cycle depends only on the topology and
// the cycle index, never on the payloads (the same data-independence that
// makes a sorting network a network). The interpreted comm_cycle pays for
// that obliviousness every cycle anyway — it re-derives destinations
// through the planning lambdas, re-validates every message against the CSR
// adjacency, and claims receive ports. A Schedule removes all of that from
// the steady state:
//
//   * record — the first run of an algorithm executes through the normal
//     interpreted comm_cycle (so link and 1-port validation, SimError
//     messages, counters, traces and edge loads are byte-identical to the
//     historical path) while capturing each cycle's dense destination
//     array;
//   * compile — on commit, each recorded cycle is inverted into
//     receiver-major form: recv_from[v] = the sender delivering to v (or
//     kNoSender), plus the CSR edge slot of that directed edge, resolved
//     once so hot-spot accounting becomes a plain indexed add;
//   * replay — Machine::comm_cycle_scheduled walks the receiver arrays in
//     one chunked parallel pass: slots[v] = payload(recv_from[v]). No
//     planning lambdas, no adjacency lookups, no claim CAS, no per-message
//     validation — the cycle is a dense permutation application.
//
// Schedules are cached process-wide, keyed by (topology identity, algorithm
// tag, parameters, validation flag); the topology identity is the name plus
// the FlatAdjacency fingerprint, so two different graphs can never share a
// schedule. A run that throws SimError never commits, so invalid plans are
// never cached. See sim/oblivious.hpp for the driver algorithms use.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/check.hpp"
#include "topology/flat_adjacency.hpp"
#include "topology/topology.hpp"

namespace dc::sim {

/// Destination sentinel: the node sends nothing this cycle.
inline constexpr net::NodeId kNoSend = ~net::NodeId{0};
/// Receiver-side sentinel: nothing arrives at this node this cycle.
inline constexpr net::NodeId kNoSender = ~net::NodeId{0};
/// Edge-slot sentinel: the recorded message does not traverse a CSR edge
/// (possible only when link validation is disabled).
inline constexpr std::uint32_t kNoEdgeSlot = 0xFFFFFFFFu;

/// Which execution path oblivious algorithms take on a Machine.
enum class SchedulePath {
  kCompiled,     ///< record + cache on first run, replay afterwards
  kInterpreted,  ///< plan / validate / claim every cycle
};

/// Dense per-node array of a compiled cycle that either owns its storage
/// (recorded or synthesized schedules) or borrows it from a read-only
/// mapping (schedules loaded from a persistent store, whose arrays live in
/// mmapped file pages shared across processes). Replay only ever reads
/// data()/size(), so both flavors are identical on the hot path; the
/// mutating calls (assign/resize/operator[]) are owned-only and used by
/// recorders and tests.
template <typename T>
class CycleArray {
 public:
  CycleArray() = default;

  /// Borrows `size` elements at `data` — the caller keeps them alive and
  /// immutable for the array's lifetime (the mapped Schedule holds the
  /// mapping).
  static CycleArray view(const T* data, std::size_t size) {
    CycleArray a;
    a.view_data_ = data;
    a.view_size_ = size;
    return a;
  }

  void assign(std::size_t n, const T& v) {
    view_data_ = nullptr;
    view_size_ = 0;
    owned_.assign(n, v);
  }
  void resize(std::size_t n) {
    view_data_ = nullptr;
    view_size_ = 0;
    owned_.resize(n);
  }

  const T* data() const { return view_data_ ? view_data_ : owned_.data(); }
  std::size_t size() const { return view_data_ ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  bool borrowed() const { return view_data_ != nullptr; }

  const T& operator[](std::size_t i) const { return data()[i]; }
  T& operator[](std::size_t i) {
    DC_REQUIRE(!view_data_, "mapped schedule arrays are immutable");
    return owned_[i];
  }

  /// Heap bytes owned by this array (0 for a borrowed view — mapped bytes
  /// are accounted once per Schedule, not per cycle).
  std::size_t owned_capacity_bytes() const {
    return owned_.capacity() * sizeof(T);
  }

 private:
  std::vector<T> owned_;
  const T* view_data_ = nullptr;
  std::size_t view_size_ = 0;
};

/// One compiled cycle in receiver-major ("gather") form. All three fields
/// are derived from a validated record run, so replay needs no checks: each
/// receiver has at most one sender by construction.
struct ScheduleCycle {
  CycleArray<net::NodeId> recv_from;      ///< per receiver: sender or kNoSender
  CycleArray<std::uint32_t> recv_slot;    ///< CSR slot of (sender -> receiver)
  std::uint64_t message_count = 0;        ///< messages delivered this cycle
};

/// An immutable compiled schedule: the full cycle sequence of one
/// algorithm's run on one topology.
class Schedule {
 public:
  explicit Schedule(std::vector<ScheduleCycle> cycles)
      : cycles_(std::move(cycles)) {
    compute_byte_size();
  }

  /// A schedule whose cycle arrays are views into `mapping` (a read-only
  /// mmapped store file of `mapped_bytes`). The mapping is released when
  /// the last reference to this schedule drops.
  Schedule(std::vector<ScheduleCycle> cycles,
           std::shared_ptr<const void> mapping, std::size_t mapped_bytes)
      : cycles_(std::move(cycles)),
        mapping_(std::move(mapping)),
        mapped_bytes_(mapped_bytes) {
    compute_byte_size();
  }

  std::size_t cycle_count() const { return cycles_.size(); }
  const ScheduleCycle& cycle(std::size_t i) const {
    DC_REQUIRE(i < cycles_.size(), "schedule cycle index out of range");
    return cycles_[i];
  }

  /// Resident bytes of this schedule (owned arrays, bookkeeping, and the
  /// full mapped region for disk-loaded schedules), computed once at
  /// construction — the unit ScheduleCache budgets in.
  std::size_t byte_size() const { return byte_size_; }

  /// Bytes of the read-only file mapping backing this schedule (0 when the
  /// arrays are heap-owned).
  std::size_t mapped_bytes() const { return mapped_bytes_; }

 private:
  void compute_byte_size() {
    byte_size_ = sizeof(Schedule) + mapped_bytes_;
    for (const ScheduleCycle& c : cycles_) {
      byte_size_ += sizeof(ScheduleCycle);
      byte_size_ += c.recv_from.owned_capacity_bytes();
      byte_size_ += c.recv_slot.owned_capacity_bytes();
    }
  }

  std::vector<ScheduleCycle> cycles_;
  std::shared_ptr<const void> mapping_;
  std::size_t mapped_bytes_ = 0;
  std::size_t byte_size_ = 0;
};

/// Cache key. `topology` must identify the graph, not just the family —
/// ObliviousSection uses name() + the adjacency fingerprint. `validate`
/// participates because a schedule recorded with link validation off may
/// contain non-edges a validating machine must keep rejecting.
struct ScheduleKey {
  std::string topology;
  std::string algorithm;
  std::vector<dc::u64> params;
  bool validate = true;

  friend bool operator==(const ScheduleKey&, const ScheduleKey&) = default;
};

struct ScheduleKeyHash {
  std::size_t operator()(const ScheduleKey& k) const {
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    const auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(std::hash<std::string>{}(k.topology));
    mix(std::hash<std::string>{}(k.algorithm));
    for (const dc::u64 p : k.params) mix(p);
    mix(k.validate ? 1u : 0u);
    return static_cast<std::size_t>(h);
  }
};

/// Interface of a persistent schedule store the cache can fault entries in
/// from (and write new recordings through to). The mmap-backed
/// implementation lives in sim/schedule_store.hpp; the interface is
/// abstract so tests can substitute fakes. Both calls must be non-throwing:
/// a corrupt, stale or unwritable store degrades to the record path, never
/// into the run.
class ScheduleStoreBase {
 public:
  virtual ~ScheduleStoreBase() = default;
  /// Returns the persisted schedule for `key`, or nullptr when absent or
  /// rejected (bad magic/version/checksum, key mismatch, truncation).
  virtual std::shared_ptr<const Schedule> load(const ScheduleKey& key) = 0;
  /// Persists `s` under `key`; returns false on failure. Idempotent — an
  /// existing entry is left untouched (schedules are deterministic per
  /// key, and the key embeds the adjacency fingerprint, so an existing
  /// file is never stale for its own key).
  virtual bool save(const ScheduleKey& key, const Schedule& s) = 0;
};

/// Where a ScheduleCache::find() result came from.
enum class ScheduleOrigin {
  kMiss,    ///< nowhere — the caller records
  kMemory,  ///< the in-process cache
  kDisk,    ///< faulted in from the attached persistent store
};

/// Process-wide schedule registry with a memory budget. Lookups happen
/// once per algorithm run (not per cycle), so a mutex is plenty; entries
/// are shared_ptr-to-const, so concurrent replays never copy or mutate a
/// schedule — eviction only drops the cache's reference, replays in
/// flight keep theirs alive.
///
/// Budgeting: every entry is accounted at Schedule::byte_size() — which
/// for disk-loaded entries includes the full mmapped region — and when a
/// store pushes the total past the capacity, least-recently-used entries
/// are evicted until the total fits. The entry being stored is never
/// evicted on its own insert, even if it alone exceeds the capacity —
/// dropping it immediately would force an infinite record/re-record loop.
///
/// With a persistent store attached (attach_store), a find() miss faults
/// the entry in from disk before reporting a miss, and every publish is
/// written through. Disk hits are counted separately from in-memory hits:
/// `hits` keeps meaning "the schedule was already resident in this
/// process", so tests asserting an algorithm never touched the cache stay
/// meaningful under a warm store.
class ScheduleCache {
 public:
  /// Default capacity: 512 MiB — far above the whole test/bench suite's
  /// working set, so eviction only triggers when explicitly configured.
  static constexpr std::size_t kDefaultCapacityBytes =
      std::size_t{512} * 1024 * 1024;

  /// Point-in-time cache statistics.
  struct Stats {
    std::size_t entries = 0;         ///< schedules currently cached
    std::size_t bytes = 0;           ///< their accounted resident bytes
    std::size_t capacity_bytes = 0;  ///< the eviction threshold
    std::uint64_t hits = 0;          ///< find() hits served from memory
    std::uint64_t misses = 0;        ///< find() calls that returned nullptr
    std::uint64_t evictions = 0;     ///< entries dropped by the budget
    std::uint64_t disk_hits = 0;     ///< find() hits faulted in from the store
    std::uint64_t disk_misses = 0;   ///< store probes that found nothing usable
    std::uint64_t disk_bytes_mapped = 0;  ///< mmapped bytes faulted in
  };

  static ScheduleCache& instance() {
    static ScheduleCache cache;
    return cache;
  }

  std::shared_ptr<const Schedule> find(const ScheduleKey& key,
                                       ScheduleOrigin* origin = nullptr) {
    std::scoped_lock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      if (origin) *origin = ScheduleOrigin::kMemory;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // mark most recent
      return it->second.schedule;
    }
    if (store_) {
      if (auto loaded = store_->load(key)) {
        ++disk_hits_;
        disk_bytes_mapped_ += loaded->mapped_bytes();
        if (origin) *origin = ScheduleOrigin::kDisk;
        return insert_locked(key, std::move(loaded), /*write_through=*/false);
      }
      ++disk_misses_;
    }
    ++misses_;
    if (origin) *origin = ScheduleOrigin::kMiss;
    return nullptr;
  }

  /// Publishes a schedule; if two recorders race on one key the first
  /// writer wins (both recorded the same deterministic plan). Returns the
  /// cached entry. With a persistent store attached the schedule is also
  /// written through (atomically; failures are silent — persistence is an
  /// optimization, never a correctness dependency).
  std::shared_ptr<const Schedule> store(const ScheduleKey& key,
                                        std::shared_ptr<const Schedule> s) {
    std::scoped_lock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      return it->second.schedule;
    }
    return insert_locked(key, std::move(s), /*write_through=*/true);
  }

  /// Attaches (or, with nullptr, detaches) the persistent backing store.
  void attach_store(std::shared_ptr<ScheduleStoreBase> store) {
    std::scoped_lock lock(mutex_);
    store_ = std::move(store);
  }

  bool has_store() const {
    std::scoped_lock lock(mutex_);
    return store_ != nullptr;
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return map_.size();
  }

  Stats stats() const {
    std::scoped_lock lock(mutex_);
    Stats st;
    st.entries = map_.size();
    st.bytes = bytes_;
    st.capacity_bytes = capacity_;
    st.hits = hits_;
    st.misses = misses_;
    st.evictions = evictions_;
    st.disk_hits = disk_hits_;
    st.disk_misses = disk_misses_;
    st.disk_bytes_mapped = disk_bytes_mapped_;
    return st;
  }

  /// Sets the process-wide budget and evicts immediately if over it.
  void set_capacity_bytes(std::size_t capacity) {
    std::scoped_lock lock(mutex_);
    capacity_ = capacity;
    evict_over_capacity();
  }

  /// Drops every cached schedule and resets the statistics (tests use this
  /// to force re-recording). The capacity and any attached store are left
  /// as configured.
  void clear() {
    std::scoped_lock lock(mutex_);
    map_.clear();
    lru_.clear();
    bytes_ = 0;
    hits_ = misses_ = evictions_ = 0;
    disk_hits_ = disk_misses_ = disk_bytes_mapped_ = 0;
  }

 private:
  struct Entry {
    std::shared_ptr<const Schedule> schedule;
    std::list<ScheduleKey>::iterator lru_it;
    std::size_t bytes = 0;
  };

  std::shared_ptr<const Schedule> insert_locked(
      const ScheduleKey& key, std::shared_ptr<const Schedule> s,
      bool write_through) {
    const std::size_t entry_bytes = s->byte_size();
    lru_.push_front(key);
    auto cached =
        map_.emplace(key, Entry{std::move(s), lru_.begin(), entry_bytes})
            .first->second.schedule;
    bytes_ += entry_bytes;
    evict_over_capacity();
    if (write_through && store_) store_->save(key, *cached);
    return cached;
  }

  void evict_over_capacity() {
    while (bytes_ > capacity_ && lru_.size() > 1) {
      const auto victim = map_.find(lru_.back());
      bytes_ -= victim->second.bytes;
      map_.erase(victim);
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable std::mutex mutex_;
  std::unordered_map<ScheduleKey, Entry, ScheduleKeyHash> map_;
  std::list<ScheduleKey> lru_;  ///< front = most recently used
  std::shared_ptr<ScheduleStoreBase> store_;
  std::size_t bytes_ = 0;
  std::size_t capacity_ = kDefaultCapacityBytes;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t disk_hits_ = 0;
  std::uint64_t disk_misses_ = 0;
  std::uint64_t disk_bytes_mapped_ = 0;
};

/// Builds the receiver-major cycle of one dimension-`bit` exchange inside a
/// 2^dims-node cube block: recv_from[v] = v XOR 2^bit, every node both
/// sends and receives. The slice is *synthesized* rather than recorded —
/// the pattern is a fixed permutation of the block, so there is nothing a
/// record run could discover — and carries no CSR edge slots (replay of a
/// synthesized slice books no per-edge loads; see
/// Machine::comm_cycle_scheduled_blocks_tiled). Shard-local cluster
/// exchanges replay this one block-sized unit across every cluster tile.
inline ScheduleCycle make_cube_exchange_cycle(unsigned dims, unsigned bit) {
  DC_REQUIRE(bit < dims, "exchange dimension out of range");
  const std::size_t block = static_cast<std::size_t>(dc::bits::pow2(dims));
  ScheduleCycle c;
  c.recv_from.resize(block);
  c.recv_slot.assign(block, kNoEdgeSlot);
  for (std::size_t v = 0; v < block; ++v)
    c.recv_from[v] = static_cast<net::NodeId>(v) ^ (net::NodeId{1} << bit);
  c.message_count = block;
  return c;
}

/// The full compiled slice of one in-cluster Cube_prefix pass: dims unit
/// cycles (dimension 0 first), each built by make_cube_exchange_cycle.
/// Cached process-wide by sim/oblivious.hpp's cube_exchange_schedule.
inline std::shared_ptr<const Schedule> make_cube_exchange_schedule(
    unsigned dims) {
  std::vector<ScheduleCycle> cycles;
  cycles.reserve(dims);
  for (unsigned i = 0; i < dims; ++i)
    cycles.push_back(make_cube_exchange_cycle(dims, i));
  return std::make_shared<const Schedule>(std::move(cycles));
}

/// Accumulates one destination array per recorded cycle; finalize inverts
/// them into receiver-major ScheduleCycles with resolved CSR edge slots.
/// The caller (ObliviousSection) guarantees every recorded cycle already
/// passed the interpreted path's validation, so inversion cannot collide.
class ScheduleRecorder {
 public:
  explicit ScheduleRecorder(std::size_t n) : n_(n) {}

  /// Scratch for the next cycle's destinations, pre-filled with kNoSend.
  /// The returned reference is valid until the next new_cycle call.
  std::vector<net::NodeId>& new_cycle() {
    raw_.emplace_back(n_, kNoSend);
    return raw_.back();
  }

  std::size_t cycle_count() const { return raw_.size(); }

  std::shared_ptr<const Schedule> finalize(const net::FlatAdjacency& adj) && {
    DC_CHECK(adj.directed_edge_count() < kNoEdgeSlot,
             "edge count overflows the 32-bit schedule slot index");
    std::vector<ScheduleCycle> cycles;
    cycles.reserve(raw_.size());
    for (const std::vector<net::NodeId>& dest : raw_) {
      ScheduleCycle c;
      c.recv_from.assign(n_, kNoSender);
      c.recv_slot.assign(n_, kNoEdgeSlot);
      for (std::size_t u = 0; u < n_; ++u) {
        const net::NodeId to = dest[u];
        if (to == kNoSend) continue;
        const std::size_t v = static_cast<std::size_t>(to);
        DC_CHECK(v < n_ && c.recv_from[v] == kNoSender,
                 "recorded cycle escaped validation");
        c.recv_from[v] = static_cast<net::NodeId>(u);
        const std::size_t slot = adj.edge_slot(static_cast<net::NodeId>(u), to);
        if (slot != net::FlatAdjacency::npos) {
          c.recv_slot[v] = static_cast<std::uint32_t>(slot);
        }
        ++c.message_count;
      }
      cycles.push_back(std::move(c));
    }
    return std::make_shared<const Schedule>(std::move(cycles));
  }

 private:
  std::size_t n_;
  std::vector<std::vector<net::NodeId>> raw_;
};

}  // namespace dc::sim
