// Schedule-aware fusion: overlap independent compiled sections on
// disjoint ports.
//
// Two compiled schedules A and B from *independent* algorithm runs (no
// data flows between them) can share the wire: a cycle of A and a cycle
// of B may execute as one replay cycle iff their port usage is disjoint —
// no node sends in both and no node receives in both (the simulator's
// 1-port-per-direction rule; a node sending in A while receiving in B is
// fine, exchanges do that within one section already). Because compiled
// ScheduleCycle arrays enumerate every sender and receiver explicitly,
// that legality check is a static precomputation over plain integer
// arrays — no algorithm code runs to build a fusion plan.
//
// fuse_schedules() builds the plan with a forward-scan greedy: walk A's
// cycles in order, and for each one claim the first not-yet-scheduled
// B cycle it is port-disjoint with; B cycles skipped over are emitted
// unfused, in order, before the merged step. Each section's internal
// cycle order is preserved exactly (that is the only correctness
// requirement independence leaves), and every merged step shortens the
// fused stream by one cycle: total steps = |A| + |B| - merged.
//
// With a CycleCostModel (sim/profile.hpp) the greedy plan gets a
// refinement pass: each merged step may swap its B cycle for another
// not-yet-merged B cycle strictly between its merged neighbours (so both
// sections' internal orders and the merge count are untouched) when that
// strictly lowers the merged cycle's receive-band spread. Ties keep the
// greedy choice, so a cost-blind run and an all-ties run produce
// byte-identical plans — step count, merge count and replayed results
// never change, only *which* equally-mergeable cycles share a step.
//
// replay_fused() executes the plan. A merged step replays the merged
// receiver arrays in one Machine::comm_cycle_scheduled pass; the sender
// sets being disjoint lets one payload callback dispatch per sender to
// the owning section, and each section's consumer sees only its own
// deliveries through a SectionInbox filtered by that section's original
// recv_from array. Fusion requires both schedules to already be compiled
// (record runs interleave state with validation and cannot overlap);
// callers fall back to sequential section runs when either is absent.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "sim/profile.hpp"
#include "sim/schedule.hpp"

namespace dc::sim {

/// "No cycle of this section at this step" marker.
inline constexpr std::size_t kNoCycle = ~std::size_t{0};

/// One cycle of the fused stream: a cycle index into schedule A, B, or —
/// when merged — both (with the merged receiver arrays at merged_index).
struct FusedStep {
  std::size_t a = kNoCycle;
  std::size_t b = kNoCycle;
  std::size_t merged_index = kNoCycle;
};

/// A static fusion plan over two compiled schedules. Holds shared
/// ownership of both inputs; unfused steps replay the original cycles
/// in place, merged steps replay the precomputed union cycles.
struct FusedSchedule {
  std::shared_ptr<const Schedule> a;
  std::shared_ptr<const Schedule> b;
  std::vector<FusedStep> steps;
  std::vector<ScheduleCycle> merged;  ///< union cycles, receiver-major
  /// Per merged cycle, indexed by *sender*: 1 iff the sender belongs to
  /// B (legal because merged sender sets are disjoint). Payload dispatch
  /// in replay_fused reads this.
  std::vector<std::vector<std::uint8_t>> merged_sender_from_b;

  std::size_t merged_count() const { return merged.size(); }
  /// Replay cycles saved versus running A then B unfused.
  std::size_t cycles_saved() const {
    return a->cycle_count() + b->cycle_count() - steps.size();
  }
};

/// True iff the two cycles touch disjoint ports: no common receiver and
/// no common sender. `sender_scratch` must hold n zero bytes on entry and
/// is restored to zeros on exit (no allocation per check).
inline bool cycles_port_disjoint(const ScheduleCycle& ca,
                                 const ScheduleCycle& cb, std::size_t n,
                                 std::vector<std::uint8_t>& sender_scratch) {
  bool ok = true;
  for (std::size_t v = 0; v < n && ok; ++v)
    if (ca.recv_from[v] != kNoSender && cb.recv_from[v] != kNoSender)
      ok = false;  // common receiver
  for (std::size_t v = 0; v < n; ++v)
    if (ca.recv_from[v] != kNoSender)
      sender_scratch[static_cast<std::size_t>(ca.recv_from[v])] = 1;
  for (std::size_t v = 0; v < n && ok; ++v) {
    const net::NodeId u = cb.recv_from[v];
    if (u != kNoSender && sender_scratch[static_cast<std::size_t>(u)])
      ok = false;  // common sender
  }
  for (std::size_t v = 0; v < n; ++v)
    if (ca.recv_from[v] != kNoSender)
      sender_scratch[static_cast<std::size_t>(ca.recv_from[v])] = 0;
  return ok;
}

namespace detail {

/// Builds the union cycle of a merged (A cycle, B cycle) pair and appends
/// the merged step. Port disjointness was already established.
inline void append_merged_step(FusedSchedule& f, std::size_t i, std::size_t k,
                               std::size_t n) {
  const ScheduleCycle& ca = f.a->cycle(i);
  const ScheduleCycle& cb = f.b->cycle(k);
  ScheduleCycle u;
  u.recv_from.resize(n);
  u.recv_slot.resize(n);
  std::vector<std::uint8_t> from_b(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (cb.recv_from[v] != kNoSender) {
      u.recv_from[v] = cb.recv_from[v];
      u.recv_slot[v] = cb.recv_slot[v];
      from_b[static_cast<std::size_t>(cb.recv_from[v])] = 1;
    } else {
      u.recv_from[v] = ca.recv_from[v];
      u.recv_slot[v] = ca.recv_slot[v];
    }
  }
  u.message_count = ca.message_count + cb.message_count;
  f.steps.push_back({i, k, f.merged.size()});
  f.merged.push_back(std::move(u));
  f.merged_sender_from_b.push_back(std::move(from_b));
}

}  // namespace detail

/// Builds the fusion plan for two compiled schedules over the same
/// n-node topology (the caller guarantees both were recorded on it and
/// that the two runs are data-independent). With a cost model, equally
/// greedy merge candidates are re-chosen toward the lower merged-cycle
/// receive-band spread — same step count, same merge count, bit-identical
/// replay results (and the exact greedy plan whenever every cost ties).
inline FusedSchedule fuse_schedules(std::shared_ptr<const Schedule> a,
                                    std::shared_ptr<const Schedule> b,
                                    std::size_t n,
                                    const CycleCostModel* cost = nullptr) {
  DC_REQUIRE(a && b, "fusion needs two compiled schedules");
  FusedSchedule f;
  f.a = std::move(a);
  f.b = std::move(b);
  std::vector<std::uint8_t> sender_scratch(n, 0);

  // Pass 1 — forward-scan greedy pair selection: pairs[m] = (A cycle,
  // B cycle) of merged step m, with both components strictly increasing.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  {
    std::size_t j = 0;
    for (std::size_t i = 0; i < f.a->cycle_count(); ++i) {
      const ScheduleCycle& ca = f.a->cycle(i);
      std::size_t k = j;
      while (k < f.b->cycle_count() &&
             !cycles_port_disjoint(ca, f.b->cycle(k), n, sender_scratch))
        ++k;
      if (k == f.b->cycle_count()) continue;
      pairs.emplace_back(i, k);
      j = k + 1;
    }
  }

  // Pass 2 (cost model only) — per merged step, consider every unmerged
  // B cycle strictly between the neighbouring merged B cycles; those
  // windows keep B's internal order and the merge count intact. Swap in
  // the alternative with the strictly lowest merged spread (ties keep
  // the greedy choice, preserving plan parity when all costs tie).
  if (cost != nullptr) {
    for (std::size_t m = 0; m < pairs.size(); ++m) {
      const std::size_t i = pairs[m].first;
      const ScheduleCycle& ca = f.a->cycle(i);
      const std::size_t lo = m == 0 ? 0 : pairs[m - 1].second + 1;
      const std::size_t hi = m + 1 < pairs.size() ? pairs[m + 1].second
                                                  : f.b->cycle_count();
      std::size_t best = pairs[m].second;
      std::uint64_t best_spread =
          cost->merged_spread(ca, f.b->cycle(best), n);
      for (std::size_t k = lo; k < hi; ++k) {
        if (k == pairs[m].second) continue;
        if (!cycles_port_disjoint(ca, f.b->cycle(k), n, sender_scratch))
          continue;
        const std::uint64_t spread =
            cost->merged_spread(ca, f.b->cycle(k), n);
        if (spread < best_spread) {
          best = k;
          best_spread = spread;
        }
      }
      pairs[m].second = best;
    }
  }

  // Pass 3 — emit the step stream from the final pairing: unfused B
  // cycles fill the gaps in order, unpaired A cycles replay alone.
  {
    std::size_t m = 0;
    std::size_t j = 0;
    for (std::size_t i = 0; i < f.a->cycle_count(); ++i) {
      if (m < pairs.size() && pairs[m].first == i) {
        const std::size_t k = pairs[m].second;
        for (; j < k; ++j) f.steps.push_back({kNoCycle, j, kNoCycle});
        detail::append_merged_step(f, i, k, n);
        j = k + 1;
        ++m;
      } else {
        f.steps.push_back({i, kNoCycle, kNoCycle});
      }
    }
    for (; j < f.b->cycle_count(); ++j)
      f.steps.push_back({kNoCycle, j, kNoCycle});
  }
  return f;
}

/// One section's view of a (possibly merged) replay cycle's inbox: only
/// deliveries whose receiver appears in this section's own compiled cycle
/// are visible, so each consumer sees exactly what its unfused run would
/// have seen.
template <typename P>
class SectionInbox {
 public:
  SectionInbox(const Inbox<P>& in, const ScheduleCycle& own)
      : in_(in), own_(own) {}

  /// The payload node u received in this section this cycle, or nullptr.
  const P* get(net::NodeId u) const {
    if (own_.recv_from[static_cast<std::size_t>(u)] == kNoSender)
      return nullptr;
    const std::optional<P>& slot = in_[u];
    return slot ? &*slot : nullptr;
  }

 private:
  const Inbox<P>& in_;
  const ScheduleCycle& own_;
};

/// Replays a fusion plan. Per step it issues exactly one
/// comm_cycle_scheduled pass; payload_a/payload_b(cycle_index, sender)
/// produce the section's outgoing payload (invoked once per delivered
/// message, from pool workers — read-only on shared state, like plan
/// callbacks), and consume_a/consume_b(cycle_index, SectionInbox) apply
/// the section's per-cycle state update after the pass. Emits one
/// "schedule_fuse" trace instant carrying the merged-cycle count.
template <typename P, typename PayloadA, typename ConsumeA, typename PayloadB,
          typename ConsumeB>
void replay_fused(Machine& m, const FusedSchedule& f, PayloadA&& payload_a,
                  ConsumeA&& consume_a, PayloadB&& payload_b,
                  ConsumeB&& consume_b) {
  if (TraceRecorder* rec = m.trace()) {
    rec->instant(m.trace_track(), 0, "schedule_fuse", "merged",
                 f.merged_count());
  }
  for (const FusedStep& step : f.steps) {
    if (step.merged_index != kNoCycle) {
      const std::vector<std::uint8_t>& from_b =
          f.merged_sender_from_b[step.merged_index];
      auto inbox = m.comm_cycle_scheduled<P>(
          f.merged[step.merged_index], [&](net::NodeId u) -> P {
            return from_b[static_cast<std::size_t>(u)]
                       ? payload_b(step.b, u)
                       : payload_a(step.a, u);
          });
      consume_a(step.a, SectionInbox<P>(inbox, f.a->cycle(step.a)));
      consume_b(step.b, SectionInbox<P>(inbox, f.b->cycle(step.b)));
    } else if (step.a != kNoCycle) {
      const ScheduleCycle& cyc = f.a->cycle(step.a);
      auto inbox = m.comm_cycle_scheduled<P>(
          cyc, [&](net::NodeId u) -> P { return payload_a(step.a, u); });
      consume_a(step.a, SectionInbox<P>(inbox, cyc));
    } else {
      const ScheduleCycle& cyc = f.b->cycle(step.b);
      auto inbox = m.comm_cycle_scheduled<P>(
          cyc, [&](net::NodeId u) -> P { return payload_b(step.b, u); });
      consume_b(step.b, SectionInbox<P>(inbox, cyc));
    }
  }
}

}  // namespace dc::sim
