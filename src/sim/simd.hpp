// Vectorized replay kernels with runtime ISA dispatch.
//
// The compiled-schedule replay path (sim/machine.hpp) and the block
// algorithms (core/block_sort.hpp, core/block_prefix.hpp) spend their
// cycles in three tight loops: the receiver-major plane gather, the sorted
// merge-split, and the row-wise prefix combine. This header implements all
// three as explicit SIMD kernels — AVX2 on x86-64, NEON on AArch64 — behind
// one runtime dispatch point, with a portable scalar fallback that is the
// reference semantics.
//
// Dispatch. active_isa() resolves once per process from the DC_SIMD
// environment variable (auto | avx2 | neon | scalar — mirroring
// DC_SCHEDULE), clamped to what the binary and the CPU actually support: a
// forced ISA that is absent falls back to scalar rather than faulting.
// Tests can override the choice with force_isa(). The AVX2 kernels are
// compiled with per-function target("avx2") attributes, so the translation
// unit itself needs no -mavx2 and the binary stays runnable on any x86-64.
//
// Determinism. Every kernel is bit-identical to the scalar reference:
//   * gather/copy kernels move bytes — no arithmetic at all;
//   * merge_split produces the sorted lower/upper half of a merged pair of
//     sorted blocks. That output is a pure function of the input multiset
//     (for integral keys, equal keys are identical bit patterns), so any
//     correct merge — two-pointer scalar or bitonic-network SIMD — yields
//     byte-identical arrays;
//   * add_rows is lane-wise u64 addition, which is associative and
//     order-free per element.
// Replay therefore stays deterministic across ISAs, which the simd_test
// parity suite asserts on every width class.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <type_traits>

#if defined(__x86_64__) || defined(_M_X64)
#define DC_SIMD_HAS_AVX2_BUILD 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define DC_SIMD_HAS_NEON_BUILD 1
#include <arm_neon.h>
#endif

namespace dc::sim {

/// Node-major plane source for block replay: node u's outgoing block is
/// `base[u*stride .. u*stride + width)`. Passing one of these (instead of a
/// per-sender callback) to comm_cycle_scheduled_blocks /
/// ObliviousSection::exchange_blocks lets the replay gather run as one
/// plane-to-plane kernel sweep.
template <typename T>
struct PlaneSrc {
  const T* base;
  std::size_t stride;
};

/// Concatenated two-plane source: node u's outgoing block is
/// `first[u*first_stride .. +first_width)` followed by
/// `second[u*second_stride .. +(width-first_width))`. Carries the relay
/// cycle's (own block ‖ gathered block) payload without materializing it.
template <typename T>
struct PlanePairSrc {
  const T* first;
  std::size_t first_stride;
  const T* second;
  std::size_t second_stride;
  std::size_t first_width;
};

namespace simd {

enum class Isa { kScalar, kAvx2, kNeon };

inline const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

/// Best ISA this binary can run on this CPU.
inline Isa detect_best() {
#if DC_SIMD_HAS_AVX2_BUILD
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
#if DC_SIMD_HAS_NEON_BUILD
  return Isa::kNeon;
#endif
  return Isa::kScalar;
}

namespace detail {
/// Test override: -1 = none, otherwise the forced Isa value.
inline std::atomic<int> forced_isa{-1};

inline Isa env_isa() {
  static const Isa isa = [] {
    const char* e = std::getenv("DC_SIMD");
    const std::string_view v = e ? std::string_view(e) : "auto";
    const Isa best = detect_best();
    if (v == "scalar") return Isa::kScalar;
    if (v == "avx2") return best == Isa::kAvx2 ? Isa::kAvx2 : Isa::kScalar;
    if (v == "neon") return best == Isa::kNeon ? Isa::kNeon : Isa::kScalar;
    return best;  // "auto" (and anything unrecognized)
  }();
  return isa;
}
}  // namespace detail

/// The ISA every kernel dispatches on: a test override if one is forced,
/// else the DC_SIMD environment choice clamped to hardware support.
inline Isa active_isa() {
  const int f = detail::forced_isa.load(std::memory_order_relaxed);
  return f < 0 ? detail::env_isa() : static_cast<Isa>(f);
}

/// Forces dispatch to `isa` (tests only). Returns false — leaving the
/// current choice untouched — when this binary/CPU cannot run `isa`, so
/// callers can skip instead of silently testing the wrong path.
inline bool force_isa(Isa isa) {
  if (isa != Isa::kScalar && detect_best() != isa) return false;
  detail::forced_isa.store(static_cast<int>(isa), std::memory_order_relaxed);
  return true;
}

/// Clears a force_isa() override; dispatch returns to the DC_SIMD choice.
inline void clear_forced_isa() {
  detail::forced_isa.store(-1, std::memory_order_relaxed);
}

/// Copies one `width`-element block. Trivially copyable T goes through one
/// memcpy — at call sites where the width is a compile-time constant (the
/// replay gather's specialized shapes) the compiler turns it into
/// straight-line vector moves; the runtime-width case is the libc's
/// size-dispatched copy, which is already vectorized. Non-trivial T falls
/// back to element copies.
template <typename T>
inline void copy_block(T* dst, const T* src, std::size_t width) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    std::memcpy(dst, src, width * sizeof(T));
  } else {
    for (std::size_t k = 0; k < width; ++k) dst[k] = src[k];
  }
}

#if DC_SIMD_HAS_AVX2_BUILD
namespace avx2 {

// Unaligned load/store helpers: lambdas do NOT inherit a target attribute,
// so the merge loops call these named helpers instead.
__attribute__((target("avx2"))) inline __m256i loadu(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}
__attribute__((target("avx2"))) inline void storeu(void* p, __m256i v) {
  _mm256_storeu_si256(static_cast<__m256i*>(p), v);
}

// ---- 32-bit lane helpers (8 lanes per __m256i) ---------------------------
// There is no 64-bit merge network here on purpose: AVX2 lacks 64-bit
// min/max (they arrive with AVX-512F), so each 4-lane minmax costs a
// cmpgt_epi64 plus two blendv's (plus a sign-bias XOR pair for unsigned
// keys). Measured on this shape, that network runs 2.0-2.6x SLOWER than
// the branchless scalar two-pointer merge — so 8-byte keys always take the
// scalar path and only 4-byte keys (native min_epi32/min_epu32, 8 lanes)
// are vectorized.

template <bool kSigned>
__attribute__((target("avx2"))) inline void minmax32(__m256i& x, __m256i& y) {
  __m256i mn;
  __m256i mx;
  if constexpr (kSigned) {
    mn = _mm256_min_epi32(x, y);
    mx = _mm256_max_epi32(x, y);
  } else {
    mn = _mm256_min_epu32(x, y);
    mx = _mm256_max_epu32(x, y);
  }
  x = mn;
  y = mx;
}

__attribute__((target("avx2"))) inline __m256i reverse8_32(__m256i v) {
  const __m256i idx = _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
  return _mm256_permutevar8x32_epi32(v, idx);
}

/// Sorts a bitonic 8-lane vector ascending (three clean stages).
template <bool kSigned>
__attribute__((target("avx2"))) inline __m256i clean8_32(__m256i v) {
  __m256i p = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(1, 0, 3, 2));
  __m256i mn = v;
  __m256i mx = p;
  minmax32<kSigned>(mn, mx);
  v = _mm256_blend_epi32(mn, mx, 0xF0);  // distance 4
  p = _mm256_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2));
  mn = v;
  mx = p;
  minmax32<kSigned>(mn, mx);
  v = _mm256_blend_epi32(mn, mx, 0xCC);  // distance 2
  p = _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1));
  mn = v;
  mx = p;
  minmax32<kSigned>(mn, mx);
  v = _mm256_blend_epi32(mn, mx, 0xAA);  // distance 1
  return v;
}

template <bool kSigned>
__attribute__((target("avx2"))) inline void merge16_32(__m256i& a,
                                                       __m256i& b) {
  b = reverse8_32(b);
  minmax32<kSigned>(a, b);
  a = clean8_32<kSigned>(a);
  b = clean8_32<kSigned>(b);
}

// ---- streaming merge-split kernels ---------------------------------------
// Classic vector-merge loop: keep a sorted carry register of the L largest
// (keep-min) or smallest (keep-max) elements seen so far, and at each step
// feed it the next L-element vector from whichever input's head (tail)
// comes first in merge order. Emits L output elements per step; stops once
// `width` outputs are placed — the kept half is produced directly, nothing
// of the discarded half is written.

template <typename Key>
__attribute__((target("avx2"))) inline void merge_split_32(
    const Key* a, const Key* b, std::size_t width, bool keep_min, Key* out) {
  static_assert(sizeof(Key) == 4);
  constexpr bool kSigned = std::is_signed_v<Key>;
  if (keep_min) {
    __m256i lo = loadu(a);
    __m256i carry = loadu(b);
    merge16_32<kSigned>(lo, carry);
    storeu(out, lo);
    std::size_t ia = 8;
    std::size_t ib = 8;
    for (std::size_t k = 8; k < width; k += 8) {
      __m256i next;
      if (ib >= width || (ia < width && !(b[ib] < a[ia]))) {
        next = loadu(a + ia);
        ia += 8;
      } else {
        next = loadu(b + ib);
        ib += 8;
      }
      merge16_32<kSigned>(next, carry);
      storeu(out + k, next);
    }
  } else {
    __m256i carry = loadu(a + width - 8);
    __m256i hi = loadu(b + width - 8);
    merge16_32<kSigned>(carry, hi);
    storeu(out + width - 8, hi);
    std::size_t ia = width - 8;
    std::size_t ib = width - 8;
    for (std::size_t k = width - 8; k > 0; k -= 8) {
      __m256i next;
      if (ib == 0 || (ia > 0 && !(a[ia - 1] < b[ib - 1]))) {
        ia -= 8;
        next = loadu(a + ia);
      } else {
        ib -= 8;
        next = loadu(b + ib);
      }
      merge16_32<kSigned>(next, carry);
      storeu(out + k - 8, carry);
      carry = next;
    }
  }
}

/// Width-1 row gather for 8-byte elements: vectorized replay inner loop
/// `plane[v] = src[from[v]]; stamp[v] = gen` for delivered rows. Dead rows
/// (from[v] == no_sender) keep their old plane/stamp bytes — the blend
/// rewrites them unchanged, matching the scalar `continue`.
__attribute__((target("avx2"))) inline void gather_w1_u64(
    std::uint64_t* plane, std::uint64_t* stamp, std::uint64_t gen,
    const std::uint64_t* from, std::uint64_t no_sender, std::size_t lo,
    std::size_t hi, const std::uint64_t* src) {
  const __m256i vno = _mm256_set1_epi64x(static_cast<long long>(no_sender));
  const __m256i vgen = _mm256_set1_epi64x(static_cast<long long>(gen));
  std::size_t v = lo;
  for (; v + 4 <= hi; v += 4) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(from + v));
    const __m256i dead = _mm256_cmpeq_epi64(idx, vno);
    const __m256i live = _mm256_xor_si256(dead, _mm256_set1_epi64x(-1));
    // Zero the masked-off indices anyway: masked gather lanes are
    // documented not to touch memory, this just keeps them obviously safe.
    const __m256i safe = _mm256_andnot_si256(dead, idx);
    const __m256i vals = _mm256_mask_i64gather_epi64(
        _mm256_setzero_si256(), reinterpret_cast<const long long*>(src), safe,
        live, 8);
    const __m256i old_p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(plane + v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(plane + v),
                        _mm256_blendv_epi8(vals, old_p, dead));
    const __m256i old_s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(stamp + v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(stamp + v),
                        _mm256_blendv_epi8(vgen, old_s, dead));
  }
  for (; v < hi; ++v) {
    const std::uint64_t u = from[v];
    if (u == no_sender) continue;
    plane[v] = src[u];
    stamp[v] = gen;
  }
}

__attribute__((target("avx2"))) inline void add_rows_u64(
    std::uint64_t* cur, const std::uint64_t* prev, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cur + i));
    const __m256i p =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(prev + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(cur + i),
                        _mm256_add_epi64(p, c));
  }
  for (; i < n; ++i) cur[i] = prev[i] + cur[i];
}

}  // namespace avx2
#endif  // DC_SIMD_HAS_AVX2_BUILD

#if DC_SIMD_HAS_NEON_BUILD
namespace neon {

// 32-bit merge kernel (4 lanes per uint32x4_t); 64-bit keys fall back to
// scalar on NEON — two lanes per vector leave no merge-network win.

template <typename Key>
inline auto load4(const Key* p) {
  if constexpr (std::is_signed_v<Key>) {
    return vld1q_s32(reinterpret_cast<const std::int32_t*>(p));
  } else {
    return vld1q_u32(reinterpret_cast<const std::uint32_t*>(p));
  }
}

template <typename Key, typename Vec>
inline void store4(Key* p, Vec v) {
  if constexpr (std::is_signed_v<Key>) {
    vst1q_s32(reinterpret_cast<std::int32_t*>(p), v);
  } else {
    vst1q_u32(reinterpret_cast<std::uint32_t*>(p), v);
  }
}

inline void minmax(uint32x4_t& x, uint32x4_t& y) {
  const uint32x4_t mn = vminq_u32(x, y);
  y = vmaxq_u32(x, y);
  x = mn;
}
inline void minmax(int32x4_t& x, int32x4_t& y) {
  const int32x4_t mn = vminq_s32(x, y);
  y = vmaxq_s32(x, y);
  x = mn;
}

inline uint32x4_t pairs_swapped(uint32x4_t v) { return vrev64q_u32(v); }
inline int32x4_t pairs_swapped(int32x4_t v) { return vrev64q_s32(v); }
inline uint32x4_t halves_swapped(uint32x4_t v) { return vextq_u32(v, v, 2); }
inline int32x4_t halves_swapped(int32x4_t v) { return vextq_s32(v, v, 2); }

template <typename Vec>
inline Vec reverse4(Vec v) {
  return halves_swapped(pairs_swapped(v));
}

inline uint32x4_t blend(uint32x4_t mn, uint32x4_t mx, uint32x4_t take_mx) {
  return vbslq_u32(take_mx, mx, mn);
}
inline int32x4_t blend(int32x4_t mn, int32x4_t mx, uint32x4_t take_mx) {
  return vbslq_s32(take_mx, mx, mn);
}

template <typename Vec>
inline Vec clean4(Vec v) {
  const uint32x4_t upper2 = {0u, 0u, ~0u, ~0u};
  const uint32x4_t odd = {0u, ~0u, 0u, ~0u};
  Vec p = halves_swapped(v);
  Vec mn = v;
  Vec mx = p;
  minmax(mn, mx);
  v = blend(mn, mx, upper2);  // distance 2
  p = pairs_swapped(v);
  mn = v;
  mx = p;
  minmax(mn, mx);
  v = blend(mn, mx, odd);  // distance 1
  return v;
}

template <typename Vec>
inline void merge8(Vec& a, Vec& b) {
  b = reverse4(b);
  minmax(a, b);
  a = clean4(a);
  b = clean4(b);
}

template <typename Key>
inline void merge_split_32(const Key* a, const Key* b, std::size_t width,
                           bool keep_min, Key* out) {
  static_assert(sizeof(Key) == 4);
  if (keep_min) {
    auto lo = load4(a);
    auto carry = load4(b);
    merge8(lo, carry);
    store4(out, lo);
    std::size_t ia = 4;
    std::size_t ib = 4;
    for (std::size_t k = 4; k < width; k += 4) {
      decltype(lo) next;
      if (ib >= width || (ia < width && !(b[ib] < a[ia]))) {
        next = load4(a + ia);
        ia += 4;
      } else {
        next = load4(b + ib);
        ib += 4;
      }
      merge8(next, carry);
      store4(out + k, next);
    }
  } else {
    auto carry = load4(a + width - 4);
    auto hi = load4(b + width - 4);
    merge8(carry, hi);
    store4(out + width - 4, hi);
    std::size_t ia = width - 4;
    std::size_t ib = width - 4;
    for (std::size_t k = width - 4; k > 0; k -= 4) {
      decltype(hi) next;
      if (ib == 0 || (ia > 0 && !(a[ia - 1] < b[ib - 1]))) {
        ia -= 4;
        next = load4(a + ia);
      } else {
        ib -= 4;
        next = load4(b + ib);
      }
      merge8(next, carry);
      store4(out + k - 4, carry);
      carry = next;
    }
  }
}

inline void add_rows_u64(std::uint64_t* cur, const std::uint64_t* prev,
                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_u64(cur + i, vaddq_u64(vld1q_u64(prev + i), vld1q_u64(cur + i)));
  }
  for (; i < n; ++i) cur[i] = prev[i] + cur[i];
}

}  // namespace neon
#endif  // DC_SIMD_HAS_NEON_BUILD

/// Vectorized merge-split: writes the lower (keep_min) or upper `width`
/// keys of merge(a, b) into out (a, b sorted ascending; out must not alias
/// them). Returns false — without touching out — when no vector kernel
/// covers (Key, width, active ISA); the caller then runs its scalar
/// reference. Handled today: integral 4-byte keys at width % 8 == 0 on
/// AVX2 and width % 4 == 0 on NEON. 8-byte keys always decline — without
/// native 64-bit min/max (AVX-512F) the bitonic network measures 2x slower
/// than the scalar merge. Output is bit-identical to the scalar two-pointer
/// merge-split.
template <typename Key>
inline bool merge_split(const Key* a, const Key* b, std::size_t width,
                        bool keep_min, Key* out) {
  if constexpr (std::is_integral_v<Key> && sizeof(Key) == 4) {
    const Isa isa = active_isa();
#if DC_SIMD_HAS_AVX2_BUILD
    if (isa == Isa::kAvx2) {
      if (width >= 8 && width % 8 == 0) {
        avx2::merge_split_32(a, b, width, keep_min, out);
        return true;
      }
    }
#endif
#if DC_SIMD_HAS_NEON_BUILD
    if (isa == Isa::kNeon) {
      if (width >= 4 && width % 4 == 0) {
        neon::merge_split_32(a, b, width, keep_min, out);
        return true;
      }
    }
#endif
    (void)isa;
  }
  (void)a;
  (void)b;
  (void)width;
  (void)keep_min;
  (void)out;
  return false;
}

/// Receiver-major replay gather over rows [lo, hi):
///   for each v with from[v] != no_sender:
///     plane[v*width ..] = src[from[v]*src_stride ..][0..width); stamp[v]=gen
/// Dead rows are untouched (their stale stamp keeps has(v) false). The
/// width-1 8-byte case runs as an AVX2 masked gather; other shapes use the
/// width-specialized block copy per row.
template <typename T>
inline void gather_rows(T* plane, std::uint64_t* stamp, std::uint64_t gen,
                        const std::uint64_t* from, std::uint64_t no_sender,
                        std::size_t lo, std::size_t hi, std::size_t width,
                        const T* src, std::size_t src_stride) {
#if DC_SIMD_HAS_AVX2_BUILD
  if constexpr (std::is_trivially_copyable_v<T> && sizeof(T) == 8) {
    if (width == 1 && src_stride == 1 && active_isa() == Isa::kAvx2) {
      avx2::gather_w1_u64(reinterpret_cast<std::uint64_t*>(plane), stamp, gen,
                          from, no_sender, lo, hi,
                          reinterpret_cast<const std::uint64_t*>(src));
      return;
    }
  }
#endif
  for (std::size_t v = lo; v < hi; ++v) {
    const std::uint64_t u = from[v];
    if (u == no_sender) continue;
    copy_block(plane + v * width, src + u * src_stride, width);
    stamp[v] = gen;
  }
}

/// Row-wise monoid combine for 64-bit sums: cur[i] = prev[i] + cur[i] over
/// [0, n). Always performs the operation (internal ISA dispatch); the
/// result is the same on every path — lane-wise integer addition.
inline void add_rows_u64(std::uint64_t* cur, const std::uint64_t* prev,
                         std::size_t n) {
#if DC_SIMD_HAS_AVX2_BUILD
  if (active_isa() == Isa::kAvx2) {
    avx2::add_rows_u64(cur, prev, n);
    return;
  }
#endif
#if DC_SIMD_HAS_NEON_BUILD
  if (active_isa() == Isa::kNeon) {
    neon::add_rows_u64(cur, prev, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) cur[i] = prev[i] + cur[i];
}

}  // namespace simd
}  // namespace dc::sim
