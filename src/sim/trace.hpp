// Structured simulator tracing: ring-buffered events, deterministic export.
//
// The simulator's empirical surface used to be a handful of scalar counters
// plus a per-cycle message-count vector; there was no way to see *where*
// cycles go (record vs. replay vs. compute), when a schedule was compiled,
// or which messages a fault ate. The trace layer records all of that as
// TraceEvents and exports them as Chrome-trace / Perfetto JSON
// (chrome://tracing or https://ui.perfetto.dev) so a run becomes a
// zoomable timeline instead of a printout.
//
// Design constraints, in order:
//
//   * zero overhead when off — a machine with no recorder attached pays one
//     pointer test per instrumentation point and nothing else; nothing is
//     allocated, nothing is formatted.
//   * allocation-free when on — every per-worker-slot ring is sized and
//     allocated up front (the same pattern as EdgeLoadCounters); emitting
//     an event is a couple of stores into the calling slot's ring plus one
//     relaxed fetch_add on the logical clock. Event names are static
//     strings (or strings interned once per algorithm run, never per
//     cycle), so the steady-state comm path stays allocation-free with
//     tracing enabled or disabled (sim_test proves both with a counting
//     operator new).
//   * deterministic export — timestamps are *logical*: a monotone event
//     sequence number, not wall-clock time. All current instrumentation
//     points run on the machine's driver thread, so the same seed and
//     inputs produce byte-identical JSON regardless of worker count; the
//     per-slot rings exist so future worker-side events (per-chunk spans)
//     can be added without a lock, at the cost of only multiset — not
//     byte — determinism.
//
// Event taxonomy (docs/MODEL.md "Observability" lists args and units):
//
//   spans ('B'/'E')   comm_cycle, comm_cycle_replay, comm_cycle_replay_blocks
//                     record:<algo> / replay:<algo> / interp:<algo>
//                     (ObliviousSection lifetime), phase:<name> (TraceScope)
//   instants ('i')    compute_step, fault_drop, fault_cycle, fault_detour,
//                     schedule_cache_hit, schedule_cache_miss,
//                     schedule_commit
//
// One TraceRecorder can be shared by several machines (dcsim attaches the
// same recorder to the warm-up machine and the measured machine, so the
// record and replay phases land on separate tracks of one timeline); each
// machine registers a track (Chrome "pid") at attach time. Emission is
// only thread-safe across *slots* — the usual contract that one thread
// drives a machine holds per recorder.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "support/check.hpp"

namespace dc::sim {

/// Classifies events beyond the Chrome phase so queries (e.g. the
/// messages_per_cycle compatibility view) need no name comparisons.
enum class TraceEventKind : std::uint8_t {
  kGeneric = 0,
  kCycleEnd = 1,  ///< end of a comm cycle; arg_a = messages delivered
};

/// One trace record. Plain data, trivially copyable; name/arg-name strings
/// must outlive the recorder (string literals or TraceRecorder::intern).
struct TraceEvent {
  const char* name = nullptr;
  const char* arg_a_name = nullptr;  ///< nullptr = no args at all
  const char* arg_b_name = nullptr;  ///< nullptr = single arg
  std::uint64_t ts = 0;              ///< logical time (event sequence)
  std::uint64_t arg_a = 0;
  std::uint64_t arg_b = 0;
  std::uint32_t track = 0;           ///< Chrome pid: one per machine
  std::uint32_t slot = 0;            ///< Chrome tid: emitting worker slot
  char ph = 'i';                     ///< 'B' | 'E' | 'i'
  TraceEventKind kind = TraceEventKind::kGeneric;
};

namespace detail {

/// Fixed-capacity ring of events, written by exactly one thread (the slot's
/// owner). When full it wraps, keeping the most recent events; the export
/// reports how many were dropped.
class TraceRing {
 public:
  void init(std::size_t capacity) {
    events_.assign(capacity, TraceEvent{});
    next_ = 0;
    emitted_ = 0;
  }

  void push(const TraceEvent& e) {
    events_[next_] = e;
    ++next_;
    if (next_ == events_.size()) next_ = 0;
    ++emitted_;
  }

  std::uint64_t emitted() const { return emitted_; }
  std::uint64_t retained() const {
    return std::min<std::uint64_t>(emitted_, events_.size());
  }

  /// Appends the retained events (any order; callers sort by ts).
  void collect(std::vector<TraceEvent>& out) const {
    const std::uint64_t keep = retained();
    for (std::uint64_t i = 0; i < keep; ++i) {
      out.push_back(events_[(next_ + events_.size() - 1 - i) %
                            events_.size()]);
    }
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t next_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace detail

class TraceRecorder {
 public:
  /// Events kept per caller ring (slot 0 — where all current
  /// instrumentation lands) and per worker ring.
  static constexpr std::size_t kDefaultCallerCapacity = std::size_t{1} << 15;
  static constexpr std::size_t kDefaultWorkerCapacity = std::size_t{1} << 10;

  /// `worker_slots` must cover every slot that may emit (pool size + 1,
  /// like EdgeLoadCounters). All ring memory is allocated here, up front.
  explicit TraceRecorder(std::size_t worker_slots,
                         std::size_t caller_capacity = kDefaultCallerCapacity,
                         std::size_t worker_capacity = kDefaultWorkerCapacity)
      : rings_(worker_slots == 0 ? 1 : worker_slots) {
    rings_[0].init(caller_capacity);
    for (std::size_t s = 1; s < rings_.size(); ++s)
      rings_[s].init(worker_capacity);
  }

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Registers a timeline track (Chrome pid) labelled `label` — one per
  /// attached machine, in attach order. Not hot; takes the intern mutex.
  std::uint32_t register_track(std::string label) {
    std::scoped_lock lock(mutex_);
    tracks_.push_back(std::move(label));
    return static_cast<std::uint32_t>(tracks_.size() - 1);
  }

  /// Labels of every registered track, in track (pid) order. Drives the
  /// profile/report layer (sim/profile.hpp) — the track index of any
  /// TraceEvent indexes this vector.
  std::vector<std::string> track_labels() const {
    std::scoped_lock lock(mutex_);
    return tracks_;
  }

  /// Copies `s` into recorder-owned storage and returns a stable pointer.
  /// For names built at algorithm-run granularity (e.g. "replay:dual_sort");
  /// never call per cycle. Repeated strings share one copy.
  const char* intern(std::string_view s) {
    std::scoped_lock lock(mutex_);
    for (const std::string& have : interned_) {
      if (have == s) return have.c_str();
    }
    interned_.emplace_back(s);
    return interned_.back().c_str();
  }

  // --- emission (allocation-free; one writer per slot) -------------------

  void begin(std::uint32_t track, std::size_t slot, const char* name,
             const char* arg_name = nullptr, std::uint64_t arg = 0) {
    emit(track, slot, 'B', TraceEventKind::kGeneric, name, arg_name, arg);
  }
  void end(std::uint32_t track, std::size_t slot, const char* name,
           const char* arg_name = nullptr, std::uint64_t arg = 0) {
    emit(track, slot, 'E', TraceEventKind::kGeneric, name, arg_name, arg);
  }
  /// End of a comm cycle: an 'E' additionally tagged so per-cycle message
  /// counts can be queried back without string matching.
  void end_cycle(std::uint32_t track, std::size_t slot, const char* name,
                 std::uint64_t messages) {
    emit(track, slot, 'E', TraceEventKind::kCycleEnd, name, "messages",
         messages);
  }
  void instant(std::uint32_t track, std::size_t slot, const char* name,
               const char* arg_a_name = nullptr, std::uint64_t arg_a = 0,
               const char* arg_b_name = nullptr, std::uint64_t arg_b = 0) {
    emit(track, slot, 'i', TraceEventKind::kGeneric, name, arg_a_name, arg_a,
         arg_b_name, arg_b);
  }

  // --- queries (call only between steps, like Machine::counters) ---------

  std::uint64_t emitted() const {
    std::uint64_t total = 0;
    for (const auto& r : rings_) total += r.emitted();
    return total;
  }
  std::uint64_t dropped() const {
    std::uint64_t lost = 0;
    for (const auto& r : rings_) lost += r.emitted() - r.retained();
    return lost;
  }

  /// All retained events merged across slots, sorted by logical time.
  /// Timestamps are unique (one clock tick per event), so the order is a
  /// deterministic total order.
  std::vector<TraceEvent> merged() const {
    std::vector<TraceEvent> out;
    std::uint64_t keep = 0;
    for (const auto& r : rings_) keep += r.retained();
    out.reserve(keep);
    for (const auto& r : rings_) r.collect(out);
    std::sort(out.begin(), out.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.ts < b.ts;
              });
    return out;
  }

  /// Compatibility view backing Machine::messages_per_cycle(): the
  /// delivered-message count of every retained comm cycle on `track`, in
  /// cycle order. Complete only while dropped() == 0.
  std::vector<std::uint64_t> messages_per_cycle(std::uint32_t track) const {
    std::vector<std::uint64_t> counts;
    for (const TraceEvent& e : merged()) {
      if (e.kind == TraceEventKind::kCycleEnd && e.track == track)
        counts.push_back(e.arg_a);
    }
    return counts;
  }

  /// Writes the whole trace as Chrome-trace / Perfetto JSON. Logical
  /// timestamps are emitted as microseconds (1 event = 1 us) purely so the
  /// viewers render sensible proportions.
  void write_json(std::ostream& os) const {
    const auto events = merged();
    os << "{\"traceEvents\":[";
    bool first = true;
    {
      std::scoped_lock lock(mutex_);
      for (std::size_t pid = 0; pid < tracks_.size(); ++pid) {
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\"";
        write_escaped(os, tracks_[pid]);
        os << "\"}}";
      }
    }
    for (const TraceEvent& e : events) {
      if (!first) os << ",";
      first = false;
      os << "{\"name\":\"";
      write_escaped(os, e.name);
      os << "\",\"cat\":\"sim\",\"ph\":\"" << e.ph << "\"";
      if (e.ph == 'i') os << ",\"s\":\"t\"";
      os << ",\"pid\":" << e.track << ",\"tid\":" << e.slot
         << ",\"ts\":" << e.ts;
      if (e.arg_a_name != nullptr) {
        os << ",\"args\":{\"";
        write_escaped(os, e.arg_a_name);
        os << "\":" << e.arg_a;
        if (e.arg_b_name != nullptr) {
          os << ",\"";
          write_escaped(os, e.arg_b_name);
          os << "\":" << e.arg_b;
        }
        os << "}";
      }
      os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"clock\":\"logical-event-sequence\",\"dropped_events\":"
       << dropped() << "}}\n";
  }

  std::string json() const {
    std::ostringstream os;
    write_json(os);
    return os.str();
  }

 private:
  void emit(std::uint32_t track, std::size_t slot, char ph,
            TraceEventKind kind, const char* name,
            const char* arg_a_name = nullptr, std::uint64_t arg_a = 0,
            const char* arg_b_name = nullptr, std::uint64_t arg_b = 0) {
    DC_CHECK(slot < rings_.size(),
             "trace emission from a worker slot the recorder was not sized "
             "for");
    TraceEvent e;
    e.name = name;
    e.arg_a_name = arg_a_name;
    e.arg_b_name = arg_b_name;
    e.ts = clock_.fetch_add(1, std::memory_order_relaxed);
    e.arg_a = arg_a;
    e.arg_b = arg_b;
    e.track = track;
    e.slot = static_cast<std::uint32_t>(slot);
    e.ph = ph;
    e.kind = kind;
    rings_[slot].push(e);
  }

  static void write_escaped(std::ostream& os, std::string_view s) {
    for (const char c : s) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
  }

  std::vector<detail::TraceRing> rings_;
  std::atomic<std::uint64_t> clock_{0};
  mutable std::mutex mutex_;  // guards tracks_ and interned_
  std::vector<std::string> tracks_;
  std::deque<std::string> interned_;  // deque: stable c_str() across growth
};

/// RAII phase span: begins "phase:<name>" on construction, ends it on
/// destruction. Inert when `rec` is null, so call sites need no branching:
///
///   TraceScope phase(m.trace(), m.trace_track(), "phase:repair");
///
/// `name` must outlive the recorder (literal or interned).
class TraceScope {
 public:
  TraceScope(TraceRecorder* rec, std::uint32_t track, const char* name)
      : rec_(rec), track_(track), name_(name) {
    if (rec_) rec_->begin(track_, 0, name_);
  }
  ~TraceScope() {
    if (rec_) rec_->end(track_, 0, name_);
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  TraceRecorder* rec_;
  std::uint32_t track_;
  const char* name_;
};

}  // namespace dc::sim
