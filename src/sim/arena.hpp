// Generation-stamped communication scratch buffers, reused across cycles.
//
// Every comm_cycle needs per-node delivery slots, per-port claim stamps,
// and a record of where each node sent (for deterministic violation
// reporting). Allocating that scratch each cycle dominated the simulator's
// hot path, so the Machine owns a CommArena: a per-payload-type registry of
// scratch buffers that are recycled instead of freed.
//
//   * The outbox is a single persistent vector per payload type — the plan
//     pass overwrites every slot each cycle, so it needs no clearing and no
//     stamping.
//   * Inbox buffers are pooled. A cycle acquires a buffer (allocating only
//     if the pool is empty — i.e. only on the first cycle, or when the
//     caller keeps several inboxes of the same type alive at once), stamps
//     it with a fresh generation, and returns it to the caller wrapped in
//     an Inbox<P>. The Inbox releases the buffer back to the pool on
//     destruction, so steady-state cycles perform zero heap allocations.
//   * The per-slot claim stamps implement the 1-port receive discipline
//     under concurrent delivery: a worker claims receive port v by
//     compare-exchanging claims[v] to the buffer's generation. Because the
//     generation is fresh for every cycle, stamps never need resetting.
//
// An Inbox shares ownership of its typed arena, so it stays valid even if
// it happens to outlive the Machine (in practice inboxes are consumed
// within the enclosing algorithm step). The arena is not thread-safe; a
// Machine is driven by one caller thread, which is the existing simulator
// contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "topology/topology.hpp"

namespace dc::sim {

/// A single outgoing message.
template <typename P>
struct Send {
  net::NodeId to;
  P payload;
};

namespace detail {

struct ArenaBase {
  virtual ~ArenaBase() = default;
  /// Bytes of scratch currently resident in this arena (persistent outbox
  /// plus pooled buffers). Pools keep buffers at their high-water size, so
  /// between runs — when every Inbox has been recycled — this reads as the
  /// run's high-water scratch footprint.
  virtual std::size_t resident_bytes() const = 0;
  /// Releases every pooled (idle) buffer. Buffers still held by live
  /// Inboxes are untouched and recycle into the (now empty) pool as usual.
  virtual void trim() = 0;
};

/// One pooled inbox: payload slots plus atomic claim stamps per receive
/// port. A slot holds a delivered payload iff the delivery pass claimed it
/// this cycle; stale stamps from earlier cycles never match the fresh
/// generation, so nothing is cleared between reuses except the payload
/// optionals (reset by the fused plan pass).
template <typename P>
struct InboxBuffer {
  explicit InboxBuffer(std::size_t n)
      : slots(n), claims(std::make_unique<std::atomic<std::uint64_t>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i)
      claims[i].store(0, std::memory_order_relaxed);
  }
  std::vector<std::optional<P>> slots;
  std::unique_ptr<std::atomic<std::uint64_t>[]> claims;
  std::uint64_t generation = 0;
};

/// All scratch for one payload type: the persistent outbox and the inbox
/// buffer pool. Generations are handed out from a strictly increasing
/// counter (starting at 1, so the zero-initialized claim stamps can never
/// collide with a live cycle).
template <typename P>
struct TypedArena final : ArenaBase {
  explicit TypedArena(std::size_t n) : size(n), outbox(n) {
    pool.reserve(8);
  }

  std::unique_ptr<InboxBuffer<P>> acquire() {
    std::unique_ptr<InboxBuffer<P>> buf;
    if (!pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
    } else {
      buf = std::make_unique<InboxBuffer<P>>(size);
    }
    buf->generation = ++next_generation;
    return buf;
  }

  void release(std::unique_ptr<InboxBuffer<P>> buf) {
    pool.push_back(std::move(buf));
  }

  std::size_t resident_bytes() const override {
    std::size_t bytes = outbox.capacity() * sizeof(std::optional<Send<P>>);
    for (const auto& buf : pool) {
      bytes += buf->slots.capacity() * sizeof(std::optional<P>);
      bytes += size * sizeof(std::atomic<std::uint64_t>);
    }
    return bytes;
  }

  void trim() override { pool.clear(); }

  std::size_t size;
  std::vector<std::optional<Send<P>>> outbox;
  std::vector<std::unique_ptr<InboxBuffer<P>>> pool;
  std::uint64_t next_generation = 0;
};

}  // namespace detail

/// One pooled structure-of-arrays payload plane for fixed-width block
/// messages: `values[v * width + k]` is element k of the block delivered to
/// node v, and the block is present iff `stamp[v] == generation`. Unlike
/// InboxBuffer there are no per-slot atomics: the plane is only written by
/// the replay gather (each v by exactly one worker) or by the sequential
/// blockify copy, both of which are race-free by construction.
template <typename T>
struct BlockBuffer {
  explicit BlockBuffer(std::size_t n)
      : stamp(std::make_unique<std::uint64_t[]>(n)) {
    for (std::size_t i = 0; i < n; ++i) stamp[i] = 0;
  }
  /// Points the plane at `w` elements per node, growing storage only when
  /// this buffer has never seen a width this large (capacity is kept at the
  /// high-water mark, so steady-state reuse never allocates).
  void set_width(std::size_t n, std::size_t w) {
    width = w;
    if (values.size() < n * w) values.resize(n * w);
  }
  std::vector<T> values;  // n * width, node-major
  std::unique_ptr<std::uint64_t[]> stamp;
  std::size_t width = 0;
  std::uint64_t generation = 0;
};

namespace detail {

/// Pool of BlockBuffer<T> planes for one element type, mirroring
/// TypedArena's acquire/release + generation discipline.
template <typename T>
struct TypedBlockArena final : ArenaBase {
  explicit TypedBlockArena(std::size_t n) : size(n) { pool.reserve(8); }

  std::unique_ptr<BlockBuffer<T>> acquire(std::size_t width) {
    std::unique_ptr<BlockBuffer<T>> buf;
    if (!pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
    } else {
      buf = std::make_unique<BlockBuffer<T>>(size);
    }
    buf->set_width(size, width);
    buf->generation = ++next_generation;
    return buf;
  }

  void release(std::unique_ptr<BlockBuffer<T>> buf) {
    pool.push_back(std::move(buf));
  }

  std::size_t resident_bytes() const override {
    std::size_t bytes = 0;
    for (const auto& buf : pool) {
      bytes += buf->values.capacity() * sizeof(T);
      bytes += size * sizeof(std::uint64_t);  // stamps
    }
    return bytes;
  }

  void trim() override { pool.clear(); }

  std::size_t size;
  std::vector<std::unique_ptr<BlockBuffer<T>>> pool;
  std::uint64_t next_generation = 0;
};

}  // namespace detail

/// Per-payload-type registry of communication scratch, owned by a Machine.
class CommArena {
 public:
  /// The (unique) arena for payload type P, created on first use with
  /// capacity for `n` nodes. Subsequent calls are a hash lookup only.
  template <typename P>
  std::shared_ptr<detail::TypedArena<P>> get(std::size_t n) {
    const std::type_index key(typeid(P));
    auto it = arenas_.find(key);
    if (it == arenas_.end()) {
      it = arenas_.emplace(key, std::make_shared<detail::TypedArena<P>>(n))
               .first;
    }
    return std::static_pointer_cast<detail::TypedArena<P>>(it->second);
  }

  /// The (unique) block-plane arena for element type T. Keyed separately
  /// from the scalar arena of the same T: planes and slot buffers have
  /// different shapes and pooling lifetimes.
  template <typename T>
  std::shared_ptr<detail::TypedBlockArena<T>> get_blocks(std::size_t n) {
    const std::type_index key(typeid(T));
    auto it = block_arenas_.find(key);
    if (it == block_arenas_.end()) {
      it = block_arenas_
               .emplace(key, std::make_shared<detail::TypedBlockArena<T>>(n))
               .first;
    }
    return std::static_pointer_cast<detail::TypedBlockArena<T>>(it->second);
  }

  /// Bytes of pooled communication scratch resident across every payload
  /// type and block plane. Read between runs (all inboxes recycled) this is
  /// the high-water scratch footprint; feeds the
  /// sim.comm_pool.high_water_bytes gauge.
  std::size_t resident_bytes() const {
    std::size_t total = 0;
    for (const auto& [key, arena] : arenas_) total += arena->resident_bytes();
    for (const auto& [key, arena] : block_arenas_)
      total += arena->resident_bytes();
    return total;
  }

  /// Drops every idle pooled buffer across all payload types. The sharded
  /// engine's out-of-core mode calls this after a shard's pass so only the
  /// active shard's planes stay resident; steady-state zero-allocation
  /// guarantees do not hold across a trim (the next cycle re-allocates its
  /// plane), which is the explicit trade of spill mode.
  void trim() {
    for (const auto& [key, arena] : arenas_) arena->trim();
    for (const auto& [key, arena] : block_arenas_) arena->trim();
  }

 private:
  std::unordered_map<std::type_index, std::shared_ptr<detail::ArenaBase>>
      arenas_;
  std::unordered_map<std::type_index, std::shared_ptr<detail::ArenaBase>>
      block_arenas_;
};

/// The result of one comm_cycle: for each node, the payload it received
/// this cycle, if any. Move-only; indexing matches the old
/// std::vector<std::optional<P>> interface exactly. Holding an Inbox keeps
/// its buffer out of the pool, so concurrently live inboxes of the same
/// payload type are each backed by distinct storage; destroying the Inbox
/// recycles the buffer for a later cycle.
template <typename P>
class Inbox {
 public:
  Inbox() = default;
  Inbox(std::shared_ptr<detail::TypedArena<P>> home,
        std::unique_ptr<detail::InboxBuffer<P>> buf)
      : home_(std::move(home)), buf_(std::move(buf)) {}

  Inbox(Inbox&& other) noexcept
      : home_(std::move(other.home_)), buf_(std::move(other.buf_)) {}
  Inbox& operator=(Inbox&& other) noexcept {
    if (this != &other) {
      recycle();
      home_ = std::move(other.home_);
      buf_ = std::move(other.buf_);
    }
    return *this;
  }
  Inbox(const Inbox&) = delete;
  Inbox& operator=(const Inbox&) = delete;

  ~Inbox() { recycle(); }

  std::optional<P>& operator[](net::NodeId u) {
    return buf_->slots[static_cast<std::size_t>(u)];
  }
  const std::optional<P>& operator[](net::NodeId u) const {
    return buf_->slots[static_cast<std::size_t>(u)];
  }

  std::size_t size() const { return buf_ ? buf_->slots.size() : 0; }

 private:
  void recycle() {
    if (home_ && buf_) home_->release(std::move(buf_));
    home_.reset();
  }

  std::shared_ptr<detail::TypedArena<P>> home_;
  std::unique_ptr<detail::InboxBuffer<P>> buf_;
};

/// The result of one block comm cycle: a structure-of-arrays plane of
/// fixed-width blocks. `has(v)` tells whether node v received a block this
/// cycle; `block(v)` points at its `width()` contiguous elements. Move-only,
/// recycles its plane into the pool on destruction, exactly like Inbox.
template <typename T>
class BlockInbox {
 public:
  BlockInbox() = default;
  BlockInbox(std::shared_ptr<detail::TypedBlockArena<T>> home,
             std::unique_ptr<BlockBuffer<T>> buf)
      : home_(std::move(home)), buf_(std::move(buf)) {}

  BlockInbox(BlockInbox&& other) noexcept
      : home_(std::move(other.home_)), buf_(std::move(other.buf_)) {}
  BlockInbox& operator=(BlockInbox&& other) noexcept {
    if (this != &other) {
      recycle();
      home_ = std::move(other.home_);
      buf_ = std::move(other.buf_);
    }
    return *this;
  }
  BlockInbox(const BlockInbox&) = delete;
  BlockInbox& operator=(const BlockInbox&) = delete;

  ~BlockInbox() { recycle(); }

  /// True iff node v received a block this cycle.
  bool has(net::NodeId v) const {
    return buf_->stamp[static_cast<std::size_t>(v)] == buf_->generation;
  }
  /// Node v's received block (`width()` elements). Only meaningful when
  /// has(v).
  const T* block(net::NodeId v) const {
    return buf_->values.data() + static_cast<std::size_t>(v) * buf_->width;
  }

  /// The whole node-major plane: block(v) == data() + v * stride(). Lets
  /// callers hand a received plane straight back to the simulator as a
  /// PlaneSrc / PlanePairSrc for the next replay cycle (no copy-out).
  const T* data() const { return buf_->values.data(); }
  std::size_t stride() const { return buf_->width; }

  std::size_t width() const { return buf_ ? buf_->width : 0; }

 private:
  void recycle() {
    if (home_ && buf_) home_->release(std::move(buf_));
    home_.reset();
  }

  std::shared_ptr<detail::TypedBlockArena<T>> home_;
  std::unique_ptr<BlockBuffer<T>> buf_;
};

}  // namespace dc::sim
