// Structured run reports: one JSON document per dcsim run that carries
// everything needed to answer "what did this run cost and why" after the
// process is gone — final Counters (plus the sharded engine's virtual
// booking), the critical-path profile from sim/profile.hpp, the imbalance
// summary, the hottest edges, the fault/recovery section with the active
// FaultTimeline epoch snapshot, ScheduleCache/store statistics, and a
// flight-recorder tail of the newest trace events per worker slot.
//
// The report doubles as the crash forensics format: dcsim writes it on
// SimError/FaultError and on recovery exhaustion, not just on demand
// (--report=FILE.json), so the flight recorder is always on (a small
// TraceRecorder rides along even without --trace).
//
// Determinism contract (pinned by kReportSchemaVersion and the golden
// test in tests/profile_test.cpp): every field except `wall_seconds` is a
// deterministic function of (topology, algorithm, seed, flags) — logical
// clocks, band-partitioned imbalance, name-sorted maps. Same seed and
// DC_THREADS produce a byte-identical report modulo that one field;
// the band partition makes everything but scheduling-order-dependent
// flight *content* independent of DC_THREADS too.
// `check_bench_json.py report-validate` enforces the schema, the
// phase-total ≡ Counters reconciliation, and the imbalance bounds in CI.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/counters.hpp"
#include "sim/profile.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"

namespace dc::sim {

/// Bumped whenever a field is added, removed or re-ordered; report-validate
/// pins the version it understands.
inline constexpr std::uint32_t kReportSchemaVersion = 1;

/// Events kept in the report's flight-recorder tail. The rings may retain
/// more (with --trace they hold tens of thousands); the report keeps the
/// newest slice so crash documents stay readable.
inline constexpr std::size_t kFlightDumpCap = 512;

/// Fault & recovery section: final fault counters, retry/replan totals
/// from the RecoveryDriver, and the epoch layout of the active
/// FaultTimeline (epoch start cycles plus the epoch the run ended in).
struct ReportFault {
  bool active = false;
  std::uint64_t epochs = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t retries = 0;
  std::uint64_t replans = 0;
  std::uint64_t backoff_cycles = 0;
  std::uint64_t current_epoch = 0;
  std::vector<std::uint64_t> epoch_starts;
};

struct RunReport {
  std::string algo;
  std::size_t n = 0;
  std::uint64_t seed = 0;
  std::string status = "ok";  ///< "ok" | "sim_error" | "fault_error"
  std::string error;          ///< exception message when status != ok

  Counters counters;
  bool has_virtual = false;  ///< sharded runs: engine virtual booking
  Counters virtual_counters;

  bool profiled = false;  ///< --profile: tracks + imbalance are populated
  Profile profile;
  /// Track labels whose cycle totals reconcile against `counters`
  /// (the measured machine; shard0 for sharded runs). report-validate
  /// asserts sum(reconciled totals) + virtual comm cycles ==
  /// counters.comm_cycles whenever no events were dropped.
  std::vector<std::string> reconciled;

  bool has_imbalance = false;
  ImbalanceSummary imbalance;
  std::vector<HotEdge> hot_edges;

  ReportFault fault;
  ScheduleCache::Stats cache;

  std::uint64_t flight_dropped = 0;
  std::vector<TraceEvent> flight;  ///< newest-last logical order

  /// The single nondeterministic field.
  double wall_seconds = 0.0;
};

/// Fills the profile/flight sections from a recorder: critical-path
/// attribution over every track, plus the newest-events tail (capped at
/// kFlightDumpCap so --trace-sized rings don't bloat the report).
inline void fill_from_recorder(RunReport& r, const TraceRecorder& rec) {
  r.profile = build_profile(rec);
  std::vector<TraceEvent> events = rec.merged();
  if (events.size() > kFlightDumpCap)
    events.erase(events.begin(),
                 events.end() - static_cast<long>(kFlightDumpCap));
  r.flight = std::move(events);
  r.flight_dropped = rec.dropped();
}

namespace detail {

inline void report_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

inline void report_counters(std::ostream& os, const Counters& c) {
  os << "{\"comm_cycles\":" << c.comm_cycles
     << ",\"comp_steps\":" << c.comp_steps << ",\"messages\":" << c.messages
     << ",\"ops\":" << c.ops << ",\"messages_lost\":" << c.messages_lost
     << ",\"messages_rerouted\":" << c.messages_rerouted
     << ",\"fault_cycles\":" << c.fault_cycles << "}";
}

}  // namespace detail

/// Serializes the report. Field order is fixed; wall_seconds is the only
/// nondeterministic value (golden tests zero it before comparing).
inline void write_report_json(std::ostream& os, const RunReport& r) {
  os << "{\"schema_version\":" << kReportSchemaVersion
     << ",\"tool\":\"dcsim\",\"algo\":\"";
  detail::report_escape(os, r.algo);
  os << "\",\"n\":" << r.n << ",\"seed\":" << r.seed << ",\"status\":\"";
  detail::report_escape(os, r.status);
  os << "\",\"error\":\"";
  detail::report_escape(os, r.error);
  os << "\",\"wall_seconds\":" << r.wall_seconds;

  os << ",\"counters\":";
  detail::report_counters(os, r.counters);
  os << ",\"virtual_counters\":";
  if (r.has_virtual) {
    detail::report_counters(os, r.virtual_counters);
  } else {
    os << "null";
  }

  os << ",\"profile\":";
  if (r.profiled) {
    os << "{\"dropped_events\":" << r.profile.dropped_events
       << ",\"complete\":" << (r.profile.complete ? "true" : "false")
       << ",\"tracks\":[";
    for (std::size_t t = 0; t < r.profile.tracks.size(); ++t) {
      const TrackProfile& track = r.profile.tracks[t];
      bool reconciled = false;
      for (const std::string& label : r.reconciled)
        reconciled = reconciled || label == track.label;
      os << (t ? "," : "") << "{\"label\":\"";
      detail::report_escape(os, track.label);
      os << "\",\"reconciled\":" << (reconciled ? "true" : "false")
         << ",\"total_cycles\":" << track.total_cycles
         << ",\"total_messages\":" << track.total_messages << ",\"phases\":[";
      for (std::size_t i = 0; i < track.phases.size(); ++i) {
        const PhaseCost& ph = track.phases[i];
        os << (i ? "," : "") << "{\"name\":\"";
        detail::report_escape(os, ph.name);
        os << "\",\"cycles\":" << ph.cycles << ",\"messages\":" << ph.messages
           << "}";
      }
      os << "]}";
    }
    os << "]}";
  } else {
    os << "null";
  }

  os << ",\"imbalance\":";
  if (r.has_imbalance) {
    os << "{\"cycles\":" << r.imbalance.cycles
       << ",\"band_min\":" << r.imbalance.band_min
       << ",\"band_max\":" << r.imbalance.band_max
       << ",\"spread_max\":" << r.imbalance.spread_max
       << ",\"spread_sum\":" << r.imbalance.spread_sum
       << ",\"edge_load_max\":" << r.imbalance.edge_load_max
       << ",\"edge_load_delta\":" << r.imbalance.edge_load_delta << "}";
  } else {
    os << "null";
  }

  os << ",\"hot_edges\":[";
  for (std::size_t i = 0; i < r.hot_edges.size(); ++i) {
    os << (i ? "," : "") << "{\"u\":" << r.hot_edges[i].u
       << ",\"v\":" << r.hot_edges[i].v
       << ",\"load\":" << r.hot_edges[i].load << "}";
  }
  os << "]";

  os << ",\"fault\":{\"active\":" << (r.fault.active ? "true" : "false")
     << ",\"epochs\":" << r.fault.epochs << ",\"rejoins\":" << r.fault.rejoins
     << ",\"retries\":" << r.fault.retries
     << ",\"replans\":" << r.fault.replans
     << ",\"backoff_cycles\":" << r.fault.backoff_cycles
     << ",\"current_epoch\":" << r.fault.current_epoch
     << ",\"epoch_starts\":[";
  for (std::size_t i = 0; i < r.fault.epoch_starts.size(); ++i)
    os << (i ? "," : "") << r.fault.epoch_starts[i];
  os << "]}";

  os << ",\"schedule_cache\":{\"entries\":" << r.cache.entries
     << ",\"bytes\":" << r.cache.bytes << ",\"hits\":" << r.cache.hits
     << ",\"misses\":" << r.cache.misses
     << ",\"evictions\":" << r.cache.evictions
     << ",\"disk_hits\":" << r.cache.disk_hits
     << ",\"disk_misses\":" << r.cache.disk_misses
     << ",\"disk_bytes_mapped\":" << r.cache.disk_bytes_mapped << "}";

  os << ",\"flight_recorder\":{\"dropped_events\":" << r.flight_dropped
     << ",\"events\":[";
  for (std::size_t i = 0; i < r.flight.size(); ++i) {
    const TraceEvent& e = r.flight[i];
    os << (i ? "," : "") << "{\"name\":\"";
    detail::report_escape(os, e.name);
    os << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts
       << ",\"track\":" << e.track << ",\"slot\":" << e.slot;
    if (e.arg_a_name != nullptr) {
      os << ",\"args\":{\"";
      detail::report_escape(os, e.arg_a_name);
      os << "\":" << e.arg_a;
      if (e.arg_b_name != nullptr) {
        os << ",\"";
        detail::report_escape(os, e.arg_b_name);
        os << "\":" << e.arg_b;
      }
      os << "}";
    }
    os << "}";
  }
  os << "]}}\n";
}

inline std::string report_json(const RunReport& r) {
  std::ostringstream os;
  write_report_json(os, r);
  return os.str();
}

}  // namespace dc::sim
