// Payload-carrying detour transport for fault-tolerant collectives.
//
// The fault-tolerant collectives (collectives/ft_broadcast.hpp,
// core/ft_dual_prefix.hpp) express their communication as *logical*
// messages between nodes of the healthy algorithm; when faults kill the
// single healthy link (or one endpoint's role has moved to a live proxy),
// the logical message must travel a multi-hop fault-free detour instead.
// This header ships those messages through the store-and-forward drain
// (sim/store_forward.hpp) as DetourPackets, so every hop is still a
// validated 1-port machine transfer and contention on shared detour links
// is resolved by the usual deterministic rules.
//
// Detour paths come from route_dual_cube_fault_tolerant (node faults);
// when the plan also kills links, any tier-1/2 route that crosses a dead
// link is replaced by a BFS shortest path on the FaultyTopology view.
// Faults are taken at their final extent (a fault scheduled for any cycle
// counts as present), so a plan's timed faults are handled conservatively.
//
// Costs are reported per batch: the comm cycles the drain consumed, the
// hops actually walked, and — separately — the hops that would not exist
// in a healthy run (deviated hops, mirrored into
// Counters::messages_rerouted via Machine::note_rerouted).
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/faults.hpp"
#include "sim/store_forward.hpp"
#include "support/rng.hpp"
#include "topology/dual_cube.hpp"
#include "topology/fault_routing.hpp"

namespace dc::sim {

/// A store-and-forward packet that carries a value to a *logical*
/// destination (the healthy algorithm's addressee, which may differ from
/// the physical node at the back of the path when a proxy stands in).
template <typename V>
struct DetourPacket {
  net::NodeId origin = 0;
  std::vector<net::NodeId> path;  ///< front = current node (drain contract)
  std::uint64_t injected_at = 0;
  std::uint64_t arrived_at = 0;
  net::NodeId logical_dst = 0;
  V payload{};
};

/// One message of the healthy schedule, re-addressed to the physical
/// endpoints that hold the logical endpoints' state under the fault set.
template <typename V>
struct LogicalMessage {
  net::NodeId phys_src = 0;
  net::NodeId phys_dst = 0;
  net::NodeId logical_src = 0;
  net::NodeId logical_dst = 0;
  V payload{};
  /// Repair traffic with no healthy counterpart (counted as rerouted even
  /// when it happens to fit in one hop).
  bool forced_detour = false;
};

/// Cost report for one detour batch / one fault-tolerant collective.
struct FtReport {
  std::uint64_t base_cycles = 0;     ///< cycles the healthy schedule costs
  std::uint64_t repair_cycles = 0;   ///< extra comm cycles paid to faults
  std::uint64_t repaired = 0;        ///< logical messages carried by detour
  std::uint64_t rerouted_hops = 0;   ///< hops beyond the healthy single link
  std::uint64_t bfs_fallbacks = 0;   ///< routes that needed tier-2 BFS
};

namespace detail {

/// BFS shortest path src -> dst on any topology (used when dead links make
/// the dual-cube router's path invalid). Empty iff disconnected.
inline std::vector<net::NodeId> bfs_path(const net::Topology& t,
                                         net::NodeId src, net::NodeId dst) {
  if (src == dst) return {src};
  const net::NodeId n = t.node_count();
  std::vector<net::NodeId> parent(n, n);  // n = unvisited
  std::deque<net::NodeId> frontier{src};
  parent[src] = src;
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop_front();
    for (const net::NodeId v : t.neighbors(u)) {
      if (parent[v] != n) continue;
      parent[v] = u;
      if (v == dst) {
        std::vector<net::NodeId> path{dst};
        for (net::NodeId at = dst; at != src; at = parent[at])
          path.push_back(parent[at]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(v);
    }
  }
  return {};
}

/// The drain's queue bookkeeping assumes every machine-accepted send is
/// delivered; a transient drop would strand the packet forever. Checked
/// against whichever fault source the machine carries.
inline void require_drop_free(const Machine& m) {
  if (const FaultPlan* p = m.fault_plan()) {
    DC_REQUIRE(p->drop_permille() == 0,
               "fault-tolerant collectives require a drop-free fault plan");
  }
  if (const FaultTimeline* tl = m.fault_timeline()) {
    DC_REQUIRE(tl->max_drop_permille() == 0,
               "fault-tolerant collectives require a drop-free fault plan");
  }
}

/// Shared body of the deliver_with_detours overloads: `route(src, dst)`
/// returns a fault-free path (front = src, back = dst; empty =
/// disconnected) and whether it came from a BFS fallback.
template <typename V, typename RouteFn>
FtReport deliver_with_routes(Machine& m,
                             std::vector<LogicalMessage<V>> msgs,
                             std::vector<std::optional<V>>& recv,
                             RouteFn&& route_fn) {
  FtReport rep;
  std::vector<DetourPacket<V>> packets;
  packets.reserve(msgs.size());
  for (auto& msg : msgs) {
    if (msg.phys_src == msg.phys_dst) {
      // One physical node holds both logical endpoints: no message.
      recv[msg.logical_dst] = std::move(msg.payload);
      continue;
    }
    auto [path, used_fallback] = route_fn(msg.phys_src, msg.phys_dst);
    if (path.empty())
      throw FaultError("fault set disconnects node " +
                       std::to_string(msg.phys_dst) + " from node " +
                       std::to_string(msg.phys_src));
    if (used_fallback) ++rep.bfs_fallbacks;
    const std::uint64_t hops = path.size() - 1;
    // A logical message "deviates" when it is not the healthy single hop
    // between its own logical endpoints.
    const bool deviated = msg.forced_detour ||
                          msg.phys_src != msg.logical_src ||
                          msg.phys_dst != msg.logical_dst || hops > 1;
    if (deviated) {
      rep.rerouted_hops += hops;
      ++rep.repaired;
      if (TraceRecorder* rec = m.trace()) {
        rec->instant(m.trace_track(), 0, "fault_detour", "logical_dst",
                     msg.logical_dst, "hops", hops);
      }
    }
    packets.push_back(DetourPacket<V>{msg.phys_src, std::move(path), 0, 0,
                                      msg.logical_dst,
                                      std::move(msg.payload)});
  }
  if (!packets.empty()) {
    const RoutingReport drained = drain_packet_list(
        m, std::move(packets),
        [&](DetourPacket<V>&& p, std::uint64_t) {
          recv[p.logical_dst] = std::move(p.payload);
        });
    rep.repair_cycles = drained.cycles;
  }
  if (rep.rerouted_hops > 0) m.note_rerouted(rep.rerouted_hops);
  return rep;
}

}  // namespace detail

/// Delivers a batch of logical messages over fault-free paths, writing
/// each payload into recv[logical_dst]. Messages whose physical endpoints
/// coincide (a proxy talking to itself) are delivered host-side for free,
/// like the healthy algorithm's local state handoffs. Throws FaultError if
/// some message's endpoints are disconnected in the fault-free subgraph —
/// impossible for fewer than n node faults in D_n.
template <typename V>
FtReport deliver_with_detours(Machine& m, const net::DualCube& d,
                              const FaultPlan& plan,
                              std::vector<LogicalMessage<V>> msgs,
                              dc::Rng& rng,
                              std::vector<std::optional<V>>& recv) {
  detail::require_drop_free(m);
  const std::unordered_set<net::NodeId> dead = plan.dead_node_set();
  const bool has_link_faults = plan.link_fault_count() > 0;
  std::optional<FaultyTopology> view;
  if (has_link_faults) view.emplace(d, plan);

  const auto crosses_dead_link = [&](const std::vector<net::NodeId>& path) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      if (plan.link_dead(path[i], path[i + 1], ~std::uint64_t{0})) return true;
    return false;
  };

  return detail::deliver_with_routes(
      m, std::move(msgs), recv,
      [&](net::NodeId src, net::NodeId dst)
          -> std::pair<std::vector<net::NodeId>, bool> {
        auto route = net::route_dual_cube_fault_tolerant(d, src, dst, dead,
                                                         rng);
        if (has_link_faults && !route.path.empty() &&
            crosses_dead_link(route.path)) {
          route.path = detail::bfs_path(*view, src, dst);
          route.used_fallback = true;
        }
        return {std::move(route.path), route.used_fallback};
      });
}

/// Generic-topology overload: routes purely on the faulted view (direct
/// hop when the healthy link survives, BFS shortest path otherwise). This
/// is the router the recursive-presentation collectives use — the
/// fault-tolerant sort runs on RecursiveDualCube, whose labels the
/// standard-presentation dual-cube router does not speak — and it works
/// on any Topology. Costs, trace events and disconnection behavior match
/// the dual-cube overload.
template <typename V>
FtReport deliver_with_detours(Machine& m, const net::Topology& base,
                              const FaultPlan& plan,
                              std::vector<LogicalMessage<V>> msgs,
                              std::vector<std::optional<V>>& recv) {
  detail::require_drop_free(m);
  const FaultyTopology view(base, plan);
  return detail::deliver_with_routes(
      m, std::move(msgs), recv,
      [&](net::NodeId src, net::NodeId dst)
          -> std::pair<std::vector<net::NodeId>, bool> {
        if (view.has_edge(src, dst))
          return {std::vector<net::NodeId>{src, dst}, false};
        return {detail::bfs_path(view, src, dst), true};
      });
}

}  // namespace dc::sim
