// SimError — the simulator's model-violation exception.
//
// Thrown when an algorithm breaks the communication model (sends along a
// non-edge, or some node would receive two messages in one cycle) and by
// the fault-spec parsers when a CLI spec is malformed. Lives in its own
// header because both sim/machine.hpp and sim/faults.hpp throw it, and
// faults.hpp sits below machine.hpp in the include graph.
#pragma once

#include <string>

#include "support/check.hpp"

namespace dc::sim {

class SimError : public dc::CheckError {
 public:
  explicit SimError(const std::string& what) : dc::CheckError(what) {}
};

}  // namespace dc::sim
