// Store-and-forward packet routing under the 1-port model — the empirical
// simulation the paper lists as future work ("do some simulations and
// empirical analysis for the proposed algorithms").
//
// Every node injects at most one packet with a precomputed path (shortest
// paths from the topology's router). Each cycle a node may forward one
// queued packet to its next hop and accept one arriving packet; contention
// is resolved deterministically (oldest packet first, then lowest origin),
// losers wait in the FIFO. The machine still validates every transfer, so
// the simulation cannot cheat the port model.
//
// Reported metrics: cycles to drain, maximum queue occupancy (a congestion
// measure), total hops, and average packet latency.
#pragma once

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "sim/machine.hpp"
#include "topology/topology.hpp"

namespace dc::sim {

/// One packet: origin plus the remaining path (front = current node).
struct Packet {
  net::NodeId origin = 0;
  std::vector<net::NodeId> path;
  std::uint64_t injected_at = 0;
  std::uint64_t arrived_at = 0;
};

struct RoutingReport {
  std::uint64_t cycles = 0;         ///< cycles until every packet arrived
  std::uint64_t total_hops = 0;     ///< sum of path lengths actually walked
  std::uint64_t max_queue = 0;      ///< peak per-node queue occupancy
  double avg_latency = 0.0;         ///< mean arrival cycle over packets
  std::uint64_t packets = 0;
};

/// Drains an arbitrary packet list to their destinations. Generic over the
/// packet type so fault-tolerant collectives can ship payload-carrying
/// packets through the same validated store-and-forward machinery; PacketT
/// must expose Packet's `path` / `arrived_at` members. Each packet's path
/// must be a walk (validated by the machine hop by hop); packets that
/// start at their destination are delivered at cycle 0. `on_arrive(p,
/// cycle)` is invoked once per packet, when it reaches the back of its
/// path.
template <typename PacketT, typename OnArrive>
RoutingReport drain_packet_list(Machine& m, std::vector<PacketT> packets,
                                OnArrive&& on_arrive) {
  const std::size_t n = m.node_count();
  std::vector<std::deque<PacketT>> queue(n);
  RoutingReport report;
  std::uint64_t in_flight = 0;
  double latency_sum = 0.0;

  for (auto& p : packets) {
    DC_REQUIRE(!p.path.empty() && p.path.front() < n, "bad packet path");
    ++report.packets;
    if (p.path.size() <= 1) {  // already home
      on_arrive(std::move(p), 0);
      continue;
    }
    report.total_hops += p.path.size() - 1;
    const net::NodeId at = p.path.front();
    queue[at].push_back(std::move(p));
    ++in_flight;
  }

  std::uint64_t cycle = 0;
  while (in_flight > 0) {
    ++cycle;
    // Occupancy is sampled at cycle start (includes freshly injected and
    // still-queued packets).
    for (net::NodeId u = 0; u < n; ++u)
      report.max_queue = std::max<std::uint64_t>(report.max_queue,
                                                 queue[u].size());
    // Pick, per node, the packet to forward; claim receive ports greedily
    // in deterministic node order (lowest sender label wins a contested
    // receiver — FIFO order within a node resolves local contention).
    std::vector<std::optional<std::size_t>> sending(n);  // index into queue[u]
    std::vector<std::uint8_t> rx_claimed(n, 0);
    for (net::NodeId u = 0; u < n; ++u) {
      for (std::size_t i = 0; i < queue[u].size(); ++i) {
        const net::NodeId next = queue[u][i].path[1];
        if (rx_claimed[next]) continue;
        rx_claimed[next] = 1;
        sending[u] = i;
        break;
      }
    }
    auto inbox = m.comm_cycle<PacketT>(
        [&](net::NodeId u) -> std::optional<Send<PacketT>> {
          if (!sending[u]) return std::nullopt;
          PacketT p = queue[u][*sending[u]];
          p.path.erase(p.path.begin());
          return Send<PacketT>{p.path.front(), std::move(p)};
        });
    for (net::NodeId u = 0; u < n; ++u) {
      if (sending[u]) {
        queue[u].erase(queue[u].begin() +
                       static_cast<std::ptrdiff_t>(*sending[u]));
      }
    }
    for (net::NodeId u = 0; u < n; ++u) {
      if (!inbox[u]) continue;
      PacketT p = std::move(*inbox[u]);
      if (p.path.size() <= 1) {
        p.arrived_at = cycle;
        latency_sum += static_cast<double>(cycle);
        --in_flight;
        on_arrive(std::move(p), cycle);
      } else {
        queue[u].push_back(std::move(p));
      }
    }
  }
  report.cycles = cycle;
  report.avg_latency =
      report.packets == 0 ? 0.0 : latency_sum / static_cast<double>(report.packets);
  return report;
}

/// The historical plain-Packet entry point (metric collection only).
inline RoutingReport route_packet_list(Machine& m, std::vector<Packet> packets) {
  return drain_packet_list(m, std::move(packets),
                           [](Packet&&, std::uint64_t) {});
}

/// Routes one packet per (src, dst) pair along `path_of(src, dst)` — the
/// permutation-routing experiment. `path_of` must return a walk from src to
/// dst including both endpoints.
template <typename PathFn>
RoutingReport route_packets(Machine& m,
                            const std::vector<net::NodeId>& destination,
                            PathFn&& path_of) {
  const std::size_t n = m.node_count();
  DC_REQUIRE(destination.size() == n, "one destination per node required");
  std::vector<Packet> packets;
  packets.reserve(n);
  for (net::NodeId u = 0; u < n; ++u) {
    DC_REQUIRE(destination[u] < n, "destination out of range");
    Packet p{u, path_of(u, destination[u]), 0, 0};
    DC_REQUIRE(p.path.front() == u && p.path.back() == destination[u],
               "path must run from source to destination");
    packets.push_back(std::move(p));
  }
  return route_packet_list(m, std::move(packets));
}

}  // namespace dc::sim
