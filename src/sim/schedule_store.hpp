// Persistent, mmap-friendly schedule store: compiled schedules outlive the
// process that recorded them.
//
// A compiled schedule is already plain dense integer arrays keyed by a pure
// function of (topology fingerprint, algorithm, params, validation flag) —
// nothing about it is process-specific. This store serializes each cache
// entry to its own file in a directory, one entry per key, and loads them
// back as read-only memory mappings: the ScheduleCycle arrays of a loaded
// schedule are CycleArray views straight into the mapped file pages, so a
// load copies nothing, the page cache shares the bytes across every
// process pointed at the same directory, and the first replay cycle faults
// pages in on demand.
//
// File layout (little-endian, version 1):
//
//   Header (64 bytes)
//     magic            char[8]   "DCSCHED1"
//     version          u32       kFormatVersion
//     flags            u32       bit 0: key.validate
//     node_count       u64
//     cycle_count      u64
//     params_count     u64
//     topology_len     u32       (bytes, unterminated)
//     algorithm_len    u32
//     payload_checksum u64       FNV-1a over bytes [64, file_size)
//     file_size        u64       total bytes; must equal st_size exactly
//   Payload
//     params           u64[params_count]
//     topology         char[topology_len]     \  the full key is embedded so
//     algorithm        char[algorithm_len]    /  filename collisions can
//     padding          to 8-byte alignment       never alias two keys
//     message_counts   u64[cycle_count]
//     recv_from        u64[cycle_count * node_count]   (receiver-major)
//     recv_slot        u32[cycle_count * node_count]
//
// The filename is the 16-hex-digit FNV-1a of the canonical key encoding
// plus ".dcsched"; the embedded key is still verified byte-for-byte on
// load, so a hash collision (or a file renamed across machines) degrades
// to a miss, never to replaying the wrong plan. The topology string
// carries the FlatAdjacency fingerprint (see
// ObliviousSection::topology_identity), which is how staleness is ruled
// out: mutate the graph and the key — hence the filename and the embedded
// bytes — changes with it.
//
// Writes are atomic: serialize to an O_TMPFILE-style mkstemp sibling, then
// rename(2) over the final name. Readers either see the complete old file
// or the complete new one; a crashed writer leaves only a .tmp orphan that
// is never loaded. Saving is idempotent — an existing file for the key is
// left untouched (schedules are deterministic per key, so its content is
// already correct).
//
// Every failure path — unwritable directory, ENOENT, truncation, bad
// magic/version/checksum, key mismatch, mmap failure — returns
// nullptr/false and never throws: persistence is an optimization; the
// record path is always behind it.
#pragma once

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/schedule.hpp"

namespace dc::sim {

class ScheduleStore final : public ScheduleStoreBase {
 public:
  static constexpr char kMagic[8] = {'D', 'C', 'S', 'C', 'H', 'E', 'D', '1'};
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Opens (and creates, if needed) the store directory. A directory that
  /// cannot be created leaves the store disabled: loads miss, saves fail,
  /// nothing throws.
  explicit ScheduleStore(std::string directory) : dir_(std::move(directory)) {
    if (dir_.empty()) return;
    if (::mkdir(dir_.c_str(), 0777) == 0 || errno == EEXIST) enabled_ = true;
  }

  const std::string& directory() const { return dir_; }
  bool enabled() const { return enabled_; }

  std::shared_ptr<const Schedule> load(const ScheduleKey& key) override {
    if (!enabled_) return nullptr;
    const std::string path = entry_path(key);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return nullptr;
    struct stat st{};
    if (::fstat(fd, &st) != 0 ||
        st.st_size < static_cast<::off_t>(kHeaderBytes)) {
      ::close(fd);
      return nullptr;
    }
    const std::size_t file_size = static_cast<std::size_t>(st.st_size);
    void* base = ::mmap(nullptr, file_size, PROT_READ, MAP_SHARED, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (base == MAP_FAILED) return nullptr;
    auto schedule = decode(static_cast<const std::byte*>(base), file_size, key);
    if (!schedule) ::munmap(base, file_size);
    return schedule;
  }

  bool save(const ScheduleKey& key, const Schedule& s) override {
    if (!enabled_) return false;
    const std::string path = entry_path(key);
    if (::access(path.c_str(), F_OK) == 0) return true;  // idempotent
    const std::vector<std::byte> bytes = encode(key, s);
    if (bytes.empty()) return false;
    std::string tmp = path + ".tmpXXXXXX";
    const int fd = ::mkstemp(tmp.data());
    if (fd < 0) return false;
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ::ssize_t n =
          ::write(fd, bytes.data() + off, bytes.size() - off);
      if (n <= 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      ::unlink(tmp.c_str());
      return false;
    }
    return true;
  }

  /// The file this key lives at (exposed so tests can corrupt/truncate it).
  std::string entry_path(const ScheduleKey& key) const {
    static constexpr char hex[] = "0123456789abcdef";
    std::uint64_t h = fnv1a(0xcbf29ce484222325ull, canonical_key(key));
    std::string name(16, '0');
    for (int i = 15; i >= 0; --i, h >>= 4)
      name[static_cast<std::size_t>(i)] = hex[h & 0xf];
    return dir_ + "/" + name + ".dcsched";
  }

  /// Serializes (without writing) — exposed for the round-trip byte-
  /// equality test.
  static std::vector<std::byte> encode(const ScheduleKey& key,
                                       const Schedule& s) {
    static_assert(sizeof(net::NodeId) == 8,
                  "on-disk format assumes 64-bit node ids");
    const std::size_t cycles = s.cycle_count();
    const std::size_t n =
        cycles == 0 ? 0 : s.cycle(0).recv_from.size();
    for (std::size_t c = 0; c < cycles; ++c) {
      // Ragged schedules (impossible today) would silently truncate —
      // refuse to serialize anything that does not round-trip exactly.
      if (s.cycle(c).recv_from.size() != n ||
          s.cycle(c).recv_slot.size() != n)
        return {};
    }
    const std::size_t key_bytes =
        8 * key.params.size() + key.topology.size() + key.algorithm.size();
    const std::size_t payload_bytes = pad8(key_bytes) + 8 * cycles +
                                      (8 + 4) * cycles * n;
    std::vector<std::byte> out(kHeaderBytes + payload_bytes);
    std::byte* p = out.data();
    std::memcpy(p, kMagic, 8);
    put_u32(p + 8, kFormatVersion);
    put_u32(p + 12, key.validate ? 1u : 0u);
    put_u64(p + 16, n);
    put_u64(p + 24, cycles);
    put_u64(p + 32, key.params.size());
    put_u32(p + 40, static_cast<std::uint32_t>(key.topology.size()));
    put_u32(p + 44, static_cast<std::uint32_t>(key.algorithm.size()));
    put_u64(p + 56, out.size());
    std::byte* q = p + kHeaderBytes;
    for (const dc::u64 v : key.params) {
      put_u64(q, v);
      q += 8;
    }
    std::memcpy(q, key.topology.data(), key.topology.size());
    q += key.topology.size();
    std::memcpy(q, key.algorithm.data(), key.algorithm.size());
    q += key.algorithm.size();
    q = p + kHeaderBytes + pad8(key_bytes);  // zero padding already in place
    for (std::size_t c = 0; c < cycles; ++c) {
      put_u64(q, s.cycle(c).message_count);
      q += 8;
    }
    for (std::size_t c = 0; c < cycles; ++c) {
      std::memcpy(q, s.cycle(c).recv_from.data(), 8 * n);
      q += 8 * n;
    }
    for (std::size_t c = 0; c < cycles; ++c) {
      std::memcpy(q, s.cycle(c).recv_slot.data(), 4 * n);
      q += 4 * n;
    }
    put_u64(p + 48, payload_checksum(p + kHeaderBytes, payload_bytes));
    return out;
  }

 private:
  static constexpr std::size_t kHeaderBytes = 64;

  static std::size_t pad8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

  static void put_u32(std::byte* p, std::uint32_t v) {
    std::memcpy(p, &v, 4);
  }
  static void put_u64(std::byte* p, std::uint64_t v) {
    std::memcpy(p, &v, 8);
  }
  static std::uint32_t get_u32(const std::byte* p) {
    std::uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
  }
  static std::uint64_t get_u64(const std::byte* p) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
  }

  static std::uint64_t fnv1a_bytes(std::uint64_t h, const std::byte* p,
                                   std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::uint64_t>(std::to_integer<unsigned char>(p[i]));
      h *= 1099511628211ull;
    }
    return h;
  }
  static std::uint64_t fnv1a(std::uint64_t h, const std::string& s) {
    return fnv1a_bytes(h, reinterpret_cast<const std::byte*>(s.data()),
                       s.size());
  }

  /// Payload checksum: FNV-1a folded over little-endian u64 words plus a
  /// byte-wise tail. Every load verifies the whole mapped payload —
  /// multi-MB for big-machine schedules — so the word fold's ~8x
  /// throughput over the byte scan is warm-start latency, not polish.
  static std::uint64_t payload_checksum(const std::byte* p, std::size_t n) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      h ^= get_u64(p + i);
      h *= 1099511628211ull;
    }
    for (; i < n; ++i) {
      h ^= std::to_integer<unsigned char>(p[i]);
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Canonical key encoding hashed into the filename. '\0' separators keep
  /// ("ab","c") and ("a","bc") apart; the embedded key check on load makes
  /// even a deliberate collision harmless.
  static std::string canonical_key(const ScheduleKey& key) {
    std::string s;
    s.reserve(key.topology.size() + key.algorithm.size() +
              8 * key.params.size() + 3);
    s += key.topology;
    s += '\0';
    s += key.algorithm;
    s += '\0';
    for (const dc::u64 p : key.params)
      for (int b = 0; b < 8; ++b) s += static_cast<char>((p >> (8 * b)) & 0xff);
    s += key.validate ? '\1' : '\0';
    return s;
  }

  /// Validates a mapped file and builds the view Schedule. Returns nullptr
  /// on any mismatch; on success the returned Schedule owns the mapping
  /// (takes over munmap).
  static std::shared_ptr<const Schedule> decode(const std::byte* p,
                                                std::size_t file_size,
                                                const ScheduleKey& key) {
    if (file_size < kHeaderBytes) return nullptr;
    if (std::memcmp(p, kMagic, 8) != 0) return nullptr;
    if (get_u32(p + 8) != kFormatVersion) return nullptr;
    const bool validate = (get_u32(p + 12) & 1u) != 0;
    const std::uint64_t n = get_u64(p + 16);
    const std::uint64_t cycles = get_u64(p + 24);
    const std::uint64_t params_count = get_u64(p + 32);
    const std::uint32_t topology_len = get_u32(p + 40);
    const std::uint32_t algorithm_len = get_u32(p + 44);
    // Recompute the exact size from the counts before trusting any of
    // them; every count is corruption-controlled, so bound each term
    // against the real file size before multiplying (a cycle costs ≥ 8
    // bytes, a param 8, so anything larger than file_size is a lie).
    if (cycles > file_size || params_count > file_size) return nullptr;
    if (n != 0 && cycles > ~std::uint64_t{0} / 12 / n) return nullptr;
    const std::uint64_t key_bytes =
        8 * params_count + topology_len + algorithm_len;
    if (key_bytes > file_size) return nullptr;
    const std::uint64_t expected = kHeaderBytes + pad8(key_bytes) +
                                   8 * cycles + (8 + 4) * cycles * n;
    if (expected != file_size || get_u64(p + 56) != file_size) return nullptr;
    if (get_u64(p + 48) !=
        payload_checksum(p + kHeaderBytes, file_size - kHeaderBytes))
      return nullptr;
    // Byte-exact key match: the file must describe precisely the schedule
    // asked for.
    if (validate != key.validate || params_count != key.params.size() ||
        topology_len != key.topology.size() ||
        algorithm_len != key.algorithm.size())
      return nullptr;
    const std::byte* q = p + kHeaderBytes;
    for (const dc::u64 v : key.params) {
      if (get_u64(q) != v) return nullptr;
      q += 8;
    }
    if (std::memcmp(q, key.topology.data(), topology_len) != 0) return nullptr;
    q += topology_len;
    if (std::memcmp(q, key.algorithm.data(), algorithm_len) != 0)
      return nullptr;

    const std::byte* counts = p + kHeaderBytes + pad8(key_bytes);
    const std::byte* from = counts + 8 * cycles;
    const std::byte* slot = from + 8 * cycles * n;
    std::vector<ScheduleCycle> out(static_cast<std::size_t>(cycles));
    for (std::uint64_t c = 0; c < cycles; ++c) {
      ScheduleCycle& cyc = out[static_cast<std::size_t>(c)];
      cyc.message_count = get_u64(counts + 8 * c);
      if (cyc.message_count > n) return nullptr;
      cyc.recv_from = CycleArray<net::NodeId>::view(
          reinterpret_cast<const net::NodeId*>(from + 8 * c * n),
          static_cast<std::size_t>(n));
      cyc.recv_slot = CycleArray<std::uint32_t>::view(
          reinterpret_cast<const std::uint32_t*>(slot + 4 * c * n),
          static_cast<std::size_t>(n));
    }
    std::shared_ptr<const void> mapping(
        static_cast<const void*>(p),
        [file_size](const void* base) {
          ::munmap(const_cast<void*>(base), file_size);
        });
    return std::make_shared<const Schedule>(std::move(out),
                                            std::move(mapping), file_size);
  }

  std::string dir_;
  bool enabled_ = false;
};

/// Attaches an mmap store at `directory` to the process-wide ScheduleCache
/// (replacing any previous store). Returns the store so callers can report
/// on it; returns nullptr (and detaches nothing) for an empty directory.
inline std::shared_ptr<ScheduleStore> attach_schedule_store(
    const std::string& directory) {
  if (directory.empty()) return nullptr;
  auto store = std::make_shared<ScheduleStore>(directory);
  ScheduleCache::instance().attach_store(store);
  return store;
}

}  // namespace dc::sim
