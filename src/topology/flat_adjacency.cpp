#include "topology/flat_adjacency.hpp"

#include <algorithm>

namespace dc::net {

FlatAdjacency::FlatAdjacency(const Topology& t) : n_(t.node_count()) {
  const std::size_t n = static_cast<std::size_t>(n_);
  offsets_.resize(n + 1, 0);
  std::size_t total = 0;
  for (NodeId u = 0; u < n_; ++u) total += t.neighbor_count(u);
  neighbors_.reserve(total);
  for (NodeId u = 0; u < n_; ++u) {
    auto row = t.neighbors(u);
    std::sort(row.begin(), row.end());
    neighbors_.insert(neighbors_.end(), row.begin(), row.end());
    offsets_[static_cast<std::size_t>(u) + 1] = neighbors_.size();
  }
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(n_);
  for (const std::size_t o : offsets_) mix(o);
  for (const NodeId v : neighbors_) mix(v);
  fingerprint_ = h;
}

}  // namespace dc::net
