#include "topology/graph.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <queue>
#include <set>

#include "support/thread_pool.hpp"

namespace dc::net {

std::vector<std::uint32_t> bfs_distances(const Topology& t, NodeId source) {
  DC_REQUIRE(source < t.node_count(), "source out of range");
  std::vector<std::uint32_t> dist(t.node_count(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : t.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

bool is_connected(const Topology& t) {
  if (t.node_count() == 0) return false;
  const auto dist = bfs_distances(t, 0);
  return std::find(dist.begin(), dist.end(), kUnreachable) == dist.end();
}

bool is_regular(const Topology& t, std::size_t* degree_out) {
  DC_REQUIRE(t.node_count() > 0, "empty graph");
  const std::size_t d0 = t.degree(0);
  for (NodeId u = 1; u < t.node_count(); ++u)
    if (t.degree(u) != d0) return false;
  if (degree_out) *degree_out = d0;
  return true;
}

bool is_bipartite(const Topology& t) {
  std::vector<std::uint8_t> color(t.node_count(), 2);  // 2 = uncolored
  for (NodeId s = 0; s < t.node_count(); ++s) {
    if (color[s] != 2) continue;
    color[s] = 0;
    std::queue<NodeId> frontier;
    frontier.push(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const NodeId v : t.neighbors(u)) {
        if (color[v] == 2) {
          color[v] = static_cast<std::uint8_t>(1 - color[u]);
          frontier.push(v);
        } else if (color[v] == color[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

DistanceStats distance_stats(const Topology& t) {
  DC_REQUIRE(t.node_count() > 0, "empty graph");
  const NodeId n = t.node_count();
  std::atomic<unsigned> diameter{0};
  std::atomic<dc::u64> total{0};
  dc::parallel_for(0, n, [&](std::size_t src) {
    const auto dist = bfs_distances(t, src);
    unsigned local_max = 0;
    dc::u64 local_sum = 0;
    for (const std::uint32_t d : dist) {
      DC_CHECK(d != kUnreachable, "distance_stats requires a connected graph");
      local_max = std::max(local_max, d);
      local_sum += d;
    }
    // relaxed is fine: results are combined only after parallel_for joins.
    total.fetch_add(local_sum, std::memory_order_relaxed);
    unsigned seen = diameter.load(std::memory_order_relaxed);
    while (seen < local_max &&
           !diameter.compare_exchange_weak(seen, local_max,
                                           std::memory_order_relaxed)) {
    }
  });
  DistanceStats stats;
  stats.diameter = diameter.load();
  const dc::u64 ordered_pairs = static_cast<dc::u64>(n) * (n - 1);
  stats.average = ordered_pairs == 0
                      ? 0.0
                      : static_cast<double>(total.load()) /
                            static_cast<double>(ordered_pairs);
  return stats;
}

std::map<std::uint32_t, dc::u64> distance_profile(const Topology& t,
                                                  NodeId u) {
  std::map<std::uint32_t, dc::u64> profile;
  for (const std::uint32_t d : bfs_distances(t, u)) ++profile[d];
  return profile;
}

bool has_uniform_distance_profile(const Topology& t) {
  DC_REQUIRE(t.node_count() > 0, "empty graph");
  const auto reference = distance_profile(t, 0);
  std::atomic<bool> uniform{true};
  dc::parallel_for(1, t.node_count(), [&](std::size_t u) {
    if (!uniform.load(std::memory_order_relaxed)) return;
    if (distance_profile(t, u) != reference)
      uniform.store(false, std::memory_order_relaxed);
  });
  return uniform.load();
}

void validate_graph(const Topology& t) {
  for (NodeId u = 0; u < t.node_count(); ++u) {
    const auto ns = t.neighbors(u);
    std::set<NodeId> seen;
    for (const NodeId v : ns) {
      DC_CHECK(v < t.node_count(),
               "neighbor " << v << " of " << u << " out of range");
      DC_CHECK(v != u, "self-loop at " << u);
      DC_CHECK(seen.insert(v).second, "duplicate neighbor " << v << " of " << u);
      const auto back = t.neighbors(v);
      DC_CHECK(std::find(back.begin(), back.end(), u) != back.end(),
               "asymmetric adjacency between " << u << " and " << v);
      DC_CHECK(t.has_edge(u, v) && t.has_edge(v, u),
               "has_edge disagrees with neighbors for " << u << "," << v);
    }
  }
}

}  // namespace dc::net
