// Undirected binary de Bruijn graph DB_d on 2^d nodes: u is adjacent to the
// shift-in neighbors (2u mod 2^d, 2u+1 mod 2^d) and the shift-out neighbors
// (u >> 1, (u >> 1) | 2^(d-1)). Self-loops and parallel edges collapsing to
// the same neighbor are removed, so the graph is simple with maximum degree
// 4. Listed in the paper's introduction as a bounded-degree hypercube
// derivative; included for the topology-properties comparison table.
#pragma once

#include <algorithm>

#include "topology/topology.hpp"

namespace dc::net {

class DeBruijn final : public Topology {
 public:
  explicit DeBruijn(unsigned d) : d_(d) {
    DC_REQUIRE(d >= 1 && d <= 30, "de Bruijn dimension out of range");
  }

  std::string name() const override { return "DB_" + std::to_string(d_); }
  NodeId node_count() const override { return dc::bits::pow2(d_); }

  std::vector<NodeId> neighbors(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    const dc::u64 mask = node_count() - 1;
    std::vector<NodeId> out = {
        (u << 1) & mask,
        ((u << 1) | 1) & mask,
        u >> 1,
        (u >> 1) | dc::bits::pow2(d_ - 1),
    };
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    out.erase(std::remove(out.begin(), out.end(), u), out.end());
    return out;
  }

 private:
  unsigned d_;
};

}  // namespace dc::net
