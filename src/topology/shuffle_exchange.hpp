// Undirected shuffle-exchange graph SE_d on 2^d nodes: the exchange edge
// flips bit 0; the shuffle edges are left/right cyclic rotations of the
// d-bit label. Self-loops (fixed points of rotation) are removed, so
// degree is at most 3. Listed in the paper's introduction; included for the
// topology-properties comparison table.
#pragma once

#include <algorithm>

#include "topology/topology.hpp"

namespace dc::net {

class ShuffleExchange final : public Topology {
 public:
  explicit ShuffleExchange(unsigned d) : d_(d) {
    DC_REQUIRE(d >= 1 && d <= 30, "shuffle-exchange dimension out of range");
  }

  std::string name() const override { return "SE_" + std::to_string(d_); }
  NodeId node_count() const override { return dc::bits::pow2(d_); }

  std::vector<NodeId> neighbors(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    const dc::u64 mask = node_count() - 1;
    const dc::u64 left = ((u << 1) | (u >> (d_ - 1))) & mask;
    const dc::u64 right = ((u >> 1) | ((u & 1) << (d_ - 1))) & mask;
    std::vector<NodeId> out = {dc::bits::flip(u, 0), left, right};
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    out.erase(std::remove(out.begin(), out.end(), u), out.end());
    return out;
  }

 private:
  unsigned d_;
};

}  // namespace dc::net
