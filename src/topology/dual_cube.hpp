// The dual-cube D_n in its standard presentation (Section 2 of the paper).
//
// A node label has 2n-1 bits. Bit 2n-2 (the leftmost) is the class
// indicator. The remaining bits are split into two (n-1)-bit fields:
//   part I  = bits 0 .. n-2       (the rightmost n-1 bits)
//   part II = bits n-1 .. 2n-3    (the middle n-1 bits)
// For a class-0 node, part I is its node ID within its cluster and part II
// is its cluster ID; for a class-1 node the roles are swapped. Each cluster
// is an (n-1)-cube spanned by the node-ID bits; every node additionally has
// exactly one cross-edge to the node differing only in the class bit. There
// are no edges between clusters of the same class, so every node has exactly
// n links and D_n has N = 2^(2n-1) nodes.
#pragma once

#include "topology/hypercube.hpp"
#include "topology/topology.hpp"

namespace dc::net {

/// Decomposed dual-cube address.
struct DualCubeAddress {
  unsigned cls;     ///< class indicator: 0 or 1
  dc::u64 cluster;  ///< cluster ID within the class (n-1 bits)
  dc::u64 node;     ///< node ID within the cluster (n-1 bits)

  friend bool operator==(const DualCubeAddress&,
                         const DualCubeAddress&) = default;
};

class DualCube final : public Topology {
 public:
  /// D_n with 2^(2n-1) nodes and n links per node. n >= 1; D_1 = K_2.
  explicit DualCube(unsigned n) : n_(n) {
    DC_REQUIRE(n >= 1, "dual-cube order must be >= 1");
    DC_REQUIRE(2 * n - 1 <= 40, "dual-cube order too large to simulate");
  }

  std::string name() const override { return "D_" + std::to_string(n_); }
  NodeId node_count() const override { return dc::bits::pow2(2 * n_ - 1); }

  std::vector<NodeId> neighbors(NodeId u) const override;
  bool has_edge(NodeId u, NodeId v) const override;

  std::size_t neighbor_count(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    return n_;  // n-1 cluster links plus the cross-edge
  }

  /// The order n (links per node).
  unsigned order() const { return n_; }
  /// Number of label bits, 2n-1.
  unsigned label_bits() const { return 2 * n_ - 1; }
  /// Nodes per cluster, 2^(n-1).
  dc::u64 cluster_size() const { return dc::bits::pow2(n_ - 1); }
  /// Clusters per class, 2^(n-1).
  dc::u64 clusters_per_class() const { return dc::bits::pow2(n_ - 1); }

  /// Class indicator of `u` (bit 2n-2).
  unsigned node_class(NodeId u) const {
    DC_REQUIRE(u < node_count(), "node out of range");
    return dc::bits::get(u, 2 * n_ - 2);
  }

  /// Splits a label into (class, cluster ID, node ID).
  DualCubeAddress decode(NodeId u) const;

  /// Reassembles a label from (class, cluster ID, node ID).
  NodeId encode(const DualCubeAddress& a) const;

  /// Neighbor of `u` across cube dimension `i` of its own cluster,
  /// i in [0, n-2]. (Flips bit i of u's node ID.)
  NodeId cluster_neighbor(NodeId u, unsigned i) const;

  /// The unique cross-edge partner of `u` (flips the class bit).
  NodeId cross_neighbor(NodeId u) const {
    DC_REQUIRE(u < node_count(), "node out of range");
    return dc::bits::flip(u, 2 * n_ - 2);
  }

  /// True iff u and v lie in the same cluster.
  bool same_cluster(NodeId u, NodeId v) const;

  /// All node labels of the cluster (cls, cluster), in node-ID order.
  std::vector<NodeId> cluster_members(unsigned cls, dc::u64 cluster) const;

  /// The cluster, viewed as an (n-1)-cube over node IDs.
  Hypercube cluster_cube() const { return Hypercube(n_ - 1); }

  /// Exact distance per the paper: Hamming(u, v) when u and v share a
  /// cluster or lie in clusters of distinct classes; Hamming(u, v) + 2 when
  /// they lie in distinct clusters of the same class. (Verified against BFS
  /// in the test suite.)
  unsigned distance(NodeId u, NodeId v) const;

  /// Diameter 2n (paper, Section 2). Degenerate case: D_1 = K_2 has
  /// diameter 1 (no same-class cluster pairs exist to force the +2).
  unsigned diameter() const { return n_ == 1 ? 1 : 2 * n_; }

 private:
  unsigned n_;
};

}  // namespace dc::net
