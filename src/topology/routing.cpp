#include "topology/routing.hpp"

namespace dc::net {

using dc::bits::field;
using dc::bits::flip;
using dc::bits::get;

std::vector<NodeId> route_hypercube(const Hypercube& q, NodeId src,
                                    NodeId dst) {
  DC_REQUIRE(src < q.node_count() && dst < q.node_count(), "node out of range");
  std::vector<NodeId> path{src};
  NodeId cur = src;
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    if (get(cur, i) != get(dst, i)) {
      cur = flip(cur, i);
      path.push_back(cur);
    }
  }
  return path;
}

namespace {

/// Appends the dimension-order walk that rewrites the w-bit field at `lo`
/// of `cur` to match the corresponding field of `target`. Every step flips
/// one bit inside the field, which is a cluster edge whenever the field is
/// the node-ID field of cur's class.
void fix_field(std::vector<NodeId>& path, NodeId& cur, NodeId target,
               unsigned lo, unsigned w) {
  for (unsigned i = lo; i < lo + w; ++i) {
    if (get(cur, i) != get(target, i)) {
      cur = flip(cur, i);
      path.push_back(cur);
    }
  }
}

}  // namespace

std::vector<NodeId> route_dual_cube(const DualCube& d, NodeId src,
                                    NodeId dst) {
  DC_REQUIRE(src < d.node_count() && dst < d.node_count(), "node out of range");
  const unsigned w = d.order() - 1;
  const unsigned cross_bit = 2 * d.order() - 2;
  const auto a = d.decode(src);
  const auto b = d.decode(dst);

  std::vector<NodeId> path{src};
  NodeId cur = src;
  // Field layout: part I = bits [0, w), part II = bits [w, 2w). The node-ID
  // field of class 0 is part I; of class 1, part II.
  const unsigned lo0 = 0;  // part I offset
  const unsigned lo1 = w;  // part II offset

  if (a.cls == b.cls && a.cluster == b.cluster) {
    // Same cluster: one e-cube walk over the node-ID field.
    const unsigned lo = a.cls == 0 ? lo0 : lo1;
    fix_field(path, cur, dst, lo, w);
  } else if (a.cls != b.cls) {
    // Distinct classes: align src's node-ID field with dst (that field is
    // dst's cluster-ID field), cross, then fix the other field in dst's
    // cluster. Length = Hamming(src, dst).
    const unsigned my_field = a.cls == 0 ? lo0 : lo1;
    const unsigned other_field = a.cls == 0 ? lo1 : lo0;
    fix_field(path, cur, dst, my_field, w);
    cur = flip(cur, cross_bit);
    path.push_back(cur);
    fix_field(path, cur, dst, other_field, w);
  } else {
    // Same class, distinct clusters: cross into the foreign class, rewrite
    // the cluster-ID field (now the node-ID field of the foreign class),
    // cross back, then rewrite the node-ID field. Length = Hamming + 2.
    const unsigned cluster_field = a.cls == 0 ? lo1 : lo0;
    const unsigned node_field = a.cls == 0 ? lo0 : lo1;
    cur = flip(cur, cross_bit);
    path.push_back(cur);
    fix_field(path, cur, dst, cluster_field, w);
    cur = flip(cur, cross_bit);
    path.push_back(cur);
    fix_field(path, cur, dst, node_field, w);
  }
  DC_CHECK(cur == dst, "route did not reach the destination");
  return path;
}

}  // namespace dc::net
