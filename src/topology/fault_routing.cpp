#include "topology/fault_routing.hpp"

#include <algorithm>
#include <queue>

#include "topology/routing.hpp"

namespace dc::net {

namespace {

bool path_is_fault_free(const std::vector<NodeId>& path,
                        const std::unordered_set<NodeId>& faulty) {
  return std::none_of(path.begin(), path.end(), [&](NodeId u) {
    return faulty.contains(u);
  });
}

/// Tier 2: BFS restricted to fault-free nodes. Returns the shortest
/// fault-free path or an empty vector when src and dst are disconnected.
std::vector<NodeId> bfs_avoiding(const DualCube& d, NodeId src, NodeId dst,
                                 const std::unordered_set<NodeId>& faulty) {
  if (src == dst) return {src};
  std::vector<NodeId> parent(d.node_count(), d.node_count());
  std::queue<NodeId> frontier;
  parent[src] = src;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : d.neighbors(u)) {
      if (parent[v] != d.node_count() || faulty.contains(v)) continue;
      parent[v] = u;
      if (v == dst) {
        std::vector<NodeId> path{dst};
        for (NodeId w = dst; w != src; w = parent[w]) path.push_back(parent[w]);
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push(v);
    }
  }
  return {};
}

}  // namespace

FaultRouteResult route_dual_cube_fault_tolerant(
    const DualCube& d, NodeId src, NodeId dst,
    const std::unordered_set<NodeId>& faulty, dc::Rng& rng,
    unsigned max_retries) {
  DC_REQUIRE(src < d.node_count() && dst < d.node_count(), "node out of range");
  DC_REQUIRE(!faulty.contains(src) && !faulty.contains(dst),
             "endpoints must be fault-free");
  FaultRouteResult result;

  // Tier 1a: the plain cluster route.
  {
    auto path = route_dual_cube(d, src, dst);
    if (path_is_fault_free(path, faulty)) {
      result.path = std::move(path);
      return result;
    }
  }

  // Tier 1b: detour through random fault-free intermediates. Each attempt
  // concatenates two cluster routes; cheap and needs no global fault map —
  // only the ability to test the chosen path.
  for (unsigned attempt = 0; attempt < max_retries; ++attempt) {
    ++result.retries;
    const NodeId w = rng.below(d.node_count());
    if (w == src || w == dst || faulty.contains(w)) continue;
    auto first = route_dual_cube(d, src, w);
    const auto second = route_dual_cube(d, w, dst);
    first.insert(first.end(), second.begin() + 1, second.end());
    if (path_is_fault_free(first, faulty)) {
      result.path = std::move(first);
      return result;
    }
  }

  // Tier 2: global BFS fallback.
  result.used_fallback = true;
  result.path = bfs_avoiding(d, src, dst, faulty);
  return result;
}

}  // namespace dc::net
