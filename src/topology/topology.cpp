#include "topology/topology.hpp"

#include <algorithm>

#include "topology/flat_adjacency.hpp"

namespace dc::net {

Topology::~Topology() = default;

bool Topology::has_edge(NodeId u, NodeId v) const {
  DC_REQUIRE(u < node_count() && v < node_count(), "node out of range");
  if (u == v) return false;
  const auto ns = neighbors(u);
  return std::find(ns.begin(), ns.end(), v) != ns.end();
}

dc::u64 Topology::edge_count() const {
  dc::u64 twice = 0;
  for (NodeId u = 0; u < node_count(); ++u) twice += degree(u);
  DC_CHECK(twice % 2 == 0, "degree sum must be even in an undirected graph");
  return twice / 2;
}

const FlatAdjacency& Topology::flat_adjacency() const {
  std::scoped_lock lock(adjacency_mutex_);
  if (!adjacency_) adjacency_ = std::make_shared<FlatAdjacency>(*this);
  return *adjacency_;
}

bool is_valid_path(const Topology& t, const std::vector<NodeId>& path) {
  if (path.empty()) return false;
  for (const NodeId u : path)
    if (u >= t.node_count()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!t.has_edge(path[i], path[i + 1])) return false;
  return true;
}

}  // namespace dc::net
