#include "topology/describe.hpp"

#include <sstream>

namespace dc::net {

using dc::bits::get;
using dc::bits::to_binary;

std::string describe_dual_cube(const DualCube& d) {
  const unsigned bits = d.label_bits();
  std::ostringstream os;
  os << d.name() << ": " << d.node_count() << " nodes, " << d.edge_count()
     << " links, " << d.order() << " links/node, diameter " << d.diameter()
     << "\n";
  os << "  2 classes x " << d.clusters_per_class() << " clusters x "
     << d.cluster_size() << " nodes; each cluster is a "
     << d.cluster_cube().name() << "\n";
  for (unsigned cls = 0; cls <= 1; ++cls) {
    os << "class " << cls << ":\n";
    for (dc::u64 c = 0; c < d.clusters_per_class(); ++c) {
      os << "  cluster " << to_binary(c, d.order() - 1) << ":";
      for (const NodeId u : d.cluster_members(cls, c)) {
        os << "  " << to_binary(u, bits) << "->"
           << to_binary(d.cross_neighbor(u), bits);
      }
      os << "\n";
    }
  }
  return os.str();
}

std::string describe_recursive_construction(const RecursiveDualCube& r) {
  const unsigned n = r.order();
  const unsigned bits = r.label_bits();
  std::ostringstream os;
  os << r.name() << " as four copies of D_" << (n - 1)
     << " (copy = two leftmost bits):\n";
  if (n == 1) {
    os << "  base case: D_1 = K_2 on labels {0, 1}\n";
    return os.str();
  }
  const dc::u64 copy_size = dc::bits::pow2(bits - 2);
  for (unsigned copy = 0; copy < 4; ++copy) {
    os << "  copy " << to_binary(copy, 2) << ": labels "
       << to_binary(static_cast<dc::u64>(copy) * copy_size, bits) << " .. "
       << to_binary(static_cast<dc::u64>(copy + 1) * copy_size - 1, bits)
       << "\n";
  }
  os << "recursive links (each node gains exactly one):\n";
  os << "  dimension " << (bits - 1) << " (even) matches nodes with u_0 = 0: ";
  unsigned shown = 0;
  for (NodeId u = 0; u < r.node_count() && shown < 4; ++u) {
    if (get(u, 0) == 0 && get(u, bits - 1) == 0) {
      os << to_binary(u, bits) << "<->" << to_binary(dc::bits::flip(u, bits - 1), bits)
         << " ";
      ++shown;
    }
  }
  os << "...\n";
  os << "  dimension " << (bits - 2) << " (odd) matches nodes with u_0 = 1: ";
  shown = 0;
  for (NodeId u = 0; u < r.node_count() && shown < 4; ++u) {
    if (get(u, 0) == 1 && get(u, bits - 2) == 0) {
      os << to_binary(u, bits) << "<->" << to_binary(dc::bits::flip(u, bits - 2), bits)
         << " ";
      ++shown;
    }
  }
  os << "...\n";
  return os.str();
}

}  // namespace dc::net
