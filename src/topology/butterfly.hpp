// Wrap-around butterfly BF_k: k levels x 2^k rows, degree 4. A node
// (l, r) connects within its level's "straight" edges to (l+1 mod k, r) and
// across the "cross" edges to (l+1 mod k, r ^ 2^l) — plus the mirror edges
// from level l-1. One more bounded-degree hypercube derivative from the
// paper's introduction, for the topology-properties table.
#pragma once

#include "topology/topology.hpp"

namespace dc::net {

class WrappedButterfly final : public Topology {
 public:
  /// BF_k with k * 2^k nodes. Requires k >= 3 (k <= 2 degenerates into
  /// parallel edges).
  explicit WrappedButterfly(unsigned k) : k_(k) {
    DC_REQUIRE(k >= 3, "wrapped butterfly needs k >= 3");
    DC_REQUIRE(k <= 25, "butterfly order too large to simulate");
  }

  std::string name() const override { return "BF_" + std::to_string(k_); }
  NodeId node_count() const override {
    return static_cast<NodeId>(k_) * dc::bits::pow2(k_);
  }

  std::vector<NodeId> neighbors(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    const auto [l, r] = decode(u);
    const unsigned next = (l + 1) % k_;
    const unsigned prev = (l + k_ - 1) % k_;
    return {
        encode(next, r),                          // straight forward
        encode(next, dc::bits::flip(r, l)),       // cross forward (bit l)
        encode(prev, r),                          // straight backward
        encode(prev, dc::bits::flip(r, prev)),    // cross backward (bit l-1)
    };
  }

  std::size_t neighbor_count(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    return 4;  // straight/cross forward and backward (k >= 3 keeps them distinct)
  }

  unsigned k() const { return k_; }

  /// (level, row) of node u.
  std::pair<unsigned, dc::u64> decode(NodeId u) const {
    return {static_cast<unsigned>(u % k_), u / k_};
  }

  NodeId encode(unsigned level, dc::u64 row) const {
    DC_REQUIRE(level < k_ && row < dc::bits::pow2(k_), "address out of range");
    return row * k_ + level;
  }

 private:
  unsigned k_;
};

}  // namespace dc::net
