// The Beneš network B(k) — the rearrangeable multistage permutation network
// listed in the paper's introduction among the bounded-degree hypercube
// derivatives. N = 2^k terminals route through 2k-1 stages of N/2 binary
// (2x2) switches; *any* permutation of the terminals is realizable with
// edge-disjoint paths, and the classic *looping algorithm* computes the
// switch settings in O(N log N).
//
// This is a switching fabric rather than a direct processor network, so it
// is modeled as its own class (stages of switch settings) instead of a
// Topology. `route` runs the looping algorithm; `apply` simulates the
// fabric with those settings, which the tests use to certify that every
// requested permutation is realized exactly.
#pragma once

#include <vector>

#include "support/bits.hpp"
#include "support/check.hpp"

namespace dc::net {

class Benes {
 public:
  /// Per-stage switch settings; settings[s][w] == true means switch w of
  /// stage s crosses its two lines.
  using Settings = std::vector<std::vector<bool>>;

  /// B(k) with 2^k terminals and 2k-1 stages. Requires k >= 1.
  explicit Benes(unsigned k) : k_(k) {
    DC_REQUIRE(k >= 1 && k <= 20, "Benes order out of range");
  }

  unsigned k() const { return k_; }
  dc::u64 terminals() const { return dc::bits::pow2(k_); }
  unsigned stages() const { return 2 * k_ - 1; }
  dc::u64 switches_per_stage() const { return terminals() / 2; }
  /// Total 2x2 switches, N/2 * (2k-1).
  dc::u64 switch_count() const { return switches_per_stage() * stages(); }

  /// Looping algorithm: switch settings realizing `perm` (input i exits at
  /// terminal perm[i]). `perm` must be a permutation of 0..N-1.
  Settings route(const std::vector<dc::u64>& perm) const;

  /// Simulates the fabric: returns the permutation realized by `settings`.
  std::vector<dc::u64> apply(const Settings& settings) const;

 private:
  void route_rec(std::vector<dc::u64> perm, unsigned stage_lo,
                 unsigned stage_hi, dc::u64 row_offset, Settings& out) const;
  std::vector<dc::u64> apply_rec(const Settings& settings, unsigned stage_lo,
                                 unsigned stage_hi, dc::u64 row_offset,
                                 std::vector<dc::u64> in) const;

  unsigned k_;
};

}  // namespace dc::net
