// Graph measurement toolkit: BFS distances, diameter, average distance,
// regularity, connectivity, bipartiteness, and distance profiles (a cheap
// necessary condition for vertex-transitivity). Used by the topology tests
// and by the properties-table bench (claim S1 in DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "topology/topology.hpp"

namespace dc::net {

/// Distance value used by BFS; kUnreachable marks disconnected vertices.
inline constexpr std::uint32_t kUnreachable = ~std::uint32_t{0};

/// Single-source BFS distances over the whole graph.
std::vector<std::uint32_t> bfs_distances(const Topology& t, NodeId source);

/// True iff the graph is connected (nonempty).
bool is_connected(const Topology& t);

/// True iff every vertex has the same degree; returns that degree via out
/// parameter when non-null.
bool is_regular(const Topology& t, std::size_t* degree_out = nullptr);

/// True iff the graph is bipartite.
bool is_bipartite(const Topology& t);

/// Aggregate distance statistics from all-pairs BFS (parallelized over
/// sources). Requires a connected graph.
struct DistanceStats {
  unsigned diameter = 0;
  double average = 0.0;  ///< mean distance over ordered pairs u != v
};
DistanceStats distance_stats(const Topology& t);

/// Sorted multiset of distances from `u` to all other vertices, encoded as
/// distance -> count. Equal profiles from every vertex are a necessary
/// condition for vertex-transitivity.
std::map<std::uint32_t, dc::u64> distance_profile(const Topology& t, NodeId u);

/// True iff every vertex has the same distance profile.
bool has_uniform_distance_profile(const Topology& t);

/// Validates basic graph sanity: neighbor labels in range, no self-loops,
/// no duplicate neighbors, and adjacency symmetry (u in N(v) iff v in N(u)).
/// Throws dc::CheckError describing the first violation.
void validate_graph(const Topology& t);

/// Number of edges crossing the cut defined by `side(u)` (true/false).
/// With a balanced predicate this upper-bounds the bisection width.
template <typename SideFn>
dc::u64 cut_size(const Topology& t, SideFn&& side) {
  dc::u64 crossing = 0;
  for (NodeId u = 0; u < t.node_count(); ++u) {
    if (!side(u)) continue;
    for (const NodeId v : t.neighbors(u))
      if (!side(v)) ++crossing;
  }
  return crossing;
}

}  // namespace dc::net
