// The recursive presentation of the dual-cube (Section 4 of the paper).
//
// This is the same graph as DualCube(n) up to a bit-interleaving relabeling,
// but with an edge rule chosen so that fixing the two *leftmost* bits of a
// label yields four disjoint copies of D_(n-1):
//
//   u ~ v  iff  u and v differ in exactly one bit position i, and
//     - i = 0                       (the cross / class dimension), or
//     - i is even and u_0 = 0       (class-0 cluster dimensions), or
//     - i is odd  and u_0 = 1       (class-1 cluster dimensions).
//
// Bit 0 is the class indicator; class-0 clusters are (n-1)-cubes over the
// even bits 2, 4, ..., 2n-2 and class-1 clusters are (n-1)-cubes over the
// odd bits 1, 3, ..., 2n-3. Removing dimensions 2n-2 and 2n-3 leaves
// D_(n-1) on the low 2n-3 bits, which is exactly the paper's recursive
// construction: the four subsets {00u}, {01u}, {10u}, {11u} each induce a
// D_(n-1), and the removed dimensions contribute exactly one extra link per
// node (dimension 2n-2 matches nodes with u_0 = 0 across the first of the
// two leading bits; dimension 2n-3 matches nodes with u_0 = 1 across the
// second). Base case: D_1 = K_2.
//
// The isomorphism to the standard presentation interleaves the fields:
// standard (class w, part I bits J, part II bits K) maps to the recursive
// label with w at bit 0, J_i at bit 2i+2, and K_i at bit 2i+1. Both
// directions are exposed and verified exhaustively in the tests.
//
// Algorithm 3 (dual-cube sorting) runs on this presentation: a
// compare-exchange pair at dimension j > 0 has a direct link for exactly the
// half of the nodes whose bit 0 matches the parity of j; the other half
// route in three hops u -> u^0 -> (u^0)^j -> u^j, both intermediate links
// existing by the parity rule.
#pragma once

#include "topology/dual_cube.hpp"
#include "topology/topology.hpp"

namespace dc::net {

class RecursiveDualCube final : public Topology {
 public:
  /// Recursive presentation of D_n. n >= 1.
  explicit RecursiveDualCube(unsigned n) : n_(n) {
    DC_REQUIRE(n >= 1, "dual-cube order must be >= 1");
    DC_REQUIRE(2 * n - 1 <= 40, "dual-cube order too large to simulate");
  }

  std::string name() const override { return "D_" + std::to_string(n_) + "(rec)"; }
  NodeId node_count() const override { return dc::bits::pow2(2 * n_ - 1); }

  std::vector<NodeId> neighbors(NodeId u) const override;
  bool has_edge(NodeId u, NodeId v) const override;

  std::size_t neighbor_count(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    return n_;  // n of the 2n-1 dimensions are directly linked per node
  }

  /// The order n.
  unsigned order() const { return n_; }
  /// Number of label bits, 2n-1.
  unsigned label_bits() const { return 2 * n_ - 1; }

  /// True iff a node with bit 0 equal to `u0` has a direct link across
  /// dimension `i`. This is the presentation's whole edge rule.
  static bool dimension_linked(unsigned u0, unsigned i) {
    if (i == 0) return true;
    return (i % 2 == 0) == (u0 == 0);
  }

  /// Neighbor across dimension i when a direct link exists.
  /// Precondition: dimension_linked(bit0(u), i).
  NodeId neighbor(NodeId u, unsigned i) const {
    DC_REQUIRE(u < node_count() && i < label_bits(), "out of range");
    DC_REQUIRE(dimension_linked(dc::bits::get(u, 0), i),
               "no direct link at dimension " << i);
    return dc::bits::flip(u, i);
  }

  /// The 3-hop route used by Algorithm 3 when dimension i has no direct
  /// link from u: u -> u^0 -> (u^0)^i -> u^i. Returns the full path.
  std::vector<NodeId> indirect_route(NodeId u, unsigned i) const;

  /// Maps a standard-presentation label to this presentation.
  NodeId from_standard(NodeId std_label) const;

  /// Maps a label of this presentation back to the standard presentation.
  NodeId to_standard(NodeId rec_label) const;

  /// Index of the D_k sub-dual-cube containing `u` when D_n is decomposed
  /// down to level k (1 <= k <= n): the top 2(n-k) bits of the label.
  dc::u64 subcube_index(NodeId u, unsigned k) const {
    DC_REQUIRE(k >= 1 && k <= n_, "level out of range");
    return u >> (2 * k - 1);
  }

 private:
  unsigned n_;
};

}  // namespace dc::net
