#include "topology/benes.hpp"

#include <algorithm>

namespace dc::net {

namespace {

bool is_permutation_of_range(const std::vector<dc::u64>& p) {
  std::vector<char> seen(p.size(), 0);
  for (const dc::u64 v : p) {
    if (v >= p.size() || seen[v]) return false;
    seen[v] = 1;
  }
  return true;
}

}  // namespace

Benes::Settings Benes::route(const std::vector<dc::u64>& perm) const {
  DC_REQUIRE(perm.size() == terminals(), "one destination per terminal");
  DC_REQUIRE(is_permutation_of_range(perm), "input must be a permutation");
  Settings settings(stages(),
                    std::vector<bool>(switches_per_stage(), false));
  route_rec(perm, 0, stages() - 1, 0, settings);
  return settings;
}

void Benes::route_rec(std::vector<dc::u64> perm, unsigned stage_lo,
                      unsigned stage_hi, dc::u64 row_offset,
                      Settings& out) const {
  const dc::u64 n = perm.size();
  if (n == 2) {
    // A single switch occupies the middle stage of this 1-stage subnetwork.
    DC_CHECK(stage_lo == stage_hi, "size-2 subnetwork must be one stage");
    out[stage_lo][row_offset / 2] = perm[0] == 1;
    return;
  }

  // Looping algorithm: 2-color the inputs so that the two inputs of every
  // first-stage switch and the two inputs destined for the same last-stage
  // switch get different colors (color 0 -> upper subnetwork).
  std::vector<dc::u64> inverse(n);
  for (dc::u64 i = 0; i < n; ++i) inverse[perm[i]] = i;
  std::vector<int> color(n, -1);
  for (dc::u64 start = 0; start < n; ++start) {
    if (color[start] != -1) continue;
    dc::u64 i = start;
    int c = 0;
    // Alternate constraints: (input partner) then (output partner).
    for (;;) {
      if (color[i] != -1) break;
      color[i] = c;
      const dc::u64 sibling = i ^ 1;         // same input switch
      if (color[sibling] != -1) break;
      color[sibling] = 1 - c;
      const dc::u64 out_partner = perm[sibling] ^ 1;  // same output switch
      i = inverse[out_partner];
      c = 1 - color[sibling];
    }
  }

  // First and last stage settings + subnetwork permutations.
  const dc::u64 half = n / 2;
  std::vector<dc::u64> upper(half);
  std::vector<dc::u64> lower(half);
  for (dc::u64 sw = 0; sw < half; ++sw) {
    const dc::u64 a = 2 * sw;
    const dc::u64 b = a + 1;
    DC_CHECK(color[a] + color[b] == 1, "switch inputs must split");
    out[stage_lo][row_offset / 2 + sw] = color[a] == 1;  // cross when a -> lower
    const dc::u64 to_upper = color[a] == 0 ? a : b;
    const dc::u64 to_lower = color[a] == 0 ? b : a;
    upper[sw] = perm[to_upper] / 2;
    lower[sw] = perm[to_lower] / 2;
  }
  for (dc::u64 sw = 0; sw < half; ++sw) {
    // The input destined for terminal 2*sw leaves through its subnetwork's
    // output `sw`; straight wiring sends the upper subnetwork to 2*sw.
    const dc::u64 via_upper = inverse[2 * sw];
    out[stage_hi][row_offset / 2 + sw] = color[via_upper] == 1;
  }

  route_rec(std::move(upper), stage_lo + 1, stage_hi - 1, row_offset, out);
  route_rec(std::move(lower), stage_lo + 1, stage_hi - 1, row_offset + half,
            out);
}

std::vector<dc::u64> Benes::apply(const Settings& settings) const {
  DC_REQUIRE(settings.size() == stages(), "wrong number of stages");
  for (const auto& stage : settings)
    DC_REQUIRE(stage.size() == switches_per_stage(),
               "wrong number of switches in a stage");
  std::vector<dc::u64> identity(terminals());
  for (dc::u64 i = 0; i < terminals(); ++i) identity[i] = i;
  // in[r] = original input currently on row r; returns out rows -> input.
  const auto routed =
      apply_rec(settings, 0, stages() - 1, 0, std::move(identity));
  // Convert "output row r carries input routed[r]" into perm[input] = row.
  std::vector<dc::u64> perm(terminals());
  for (dc::u64 r = 0; r < terminals(); ++r) perm[routed[r]] = r;
  return perm;
}

std::vector<dc::u64> Benes::apply_rec(const Settings& settings,
                                      unsigned stage_lo, unsigned stage_hi,
                                      dc::u64 row_offset,
                                      std::vector<dc::u64> in) const {
  const dc::u64 n = in.size();
  if (n == 2) {
    if (settings[stage_lo][row_offset / 2]) std::swap(in[0], in[1]);
    return in;
  }
  const dc::u64 half = n / 2;
  std::vector<dc::u64> upper(half);
  std::vector<dc::u64> lower(half);
  for (dc::u64 sw = 0; sw < half; ++sw) {
    const bool cross = settings[stage_lo][row_offset / 2 + sw];
    upper[sw] = cross ? in[2 * sw + 1] : in[2 * sw];
    lower[sw] = cross ? in[2 * sw] : in[2 * sw + 1];
  }
  upper = apply_rec(settings, stage_lo + 1, stage_hi - 1, row_offset,
                    std::move(upper));
  lower = apply_rec(settings, stage_lo + 1, stage_hi - 1, row_offset + half,
                    std::move(lower));
  std::vector<dc::u64> out(n);
  for (dc::u64 sw = 0; sw < half; ++sw) {
    const bool cross = settings[stage_hi][row_offset / 2 + sw];
    out[2 * sw] = cross ? lower[sw] : upper[sw];
    out[2 * sw + 1] = cross ? upper[sw] : lower[sw];
  }
  return out;
}

}  // namespace dc::net
