#include "topology/torus_embedding.hpp"

#include <algorithm>

#include "topology/hamiltonian.hpp"

namespace dc::net {

std::vector<NodeId> embed_torus_gray(unsigned a, unsigned b) {
  DC_REQUIRE(a + b <= 30, "torus too large");
  const dc::u64 rows = dc::bits::pow2(a);
  const dc::u64 cols = dc::bits::pow2(b);
  std::vector<NodeId> map(rows * cols);
  for (dc::u64 r = 0; r < rows; ++r)
    for (dc::u64 c = 0; c < cols; ++c)
      map[r * cols + c] = (gray_code(r) << b) | gray_code(c);
  return map;
}

std::vector<std::pair<dc::u64, dc::u64>> torus_edges(unsigned a, unsigned b) {
  const dc::u64 rows = dc::bits::pow2(a);
  const dc::u64 cols = dc::bits::pow2(b);
  std::vector<std::pair<dc::u64, dc::u64>> edges;
  const auto id = [cols](dc::u64 r, dc::u64 c) { return r * cols + c; };
  for (dc::u64 r = 0; r < rows; ++r) {
    for (dc::u64 c = 0; c < cols; ++c) {
      if (cols > 1 && (c + 1 < cols || cols > 2))
        edges.emplace_back(id(r, c), id(r, (c + 1) % cols));
      if (rows > 1 && (r + 1 < rows || rows > 2))
        edges.emplace_back(id(r, c), id((r + 1) % rows, c));
    }
  }
  // Canonicalize and deduplicate (wrap edges of length-2 rings collapse).
  for (auto& [u, v] : edges)
    if (u > v) std::swap(u, v);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

}  // namespace dc::net
