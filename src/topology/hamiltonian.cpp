#include "topology/hamiltonian.hpp"

#include <algorithm>

#include "topology/recursive_dual_cube.hpp"

namespace dc::net {

using dc::bits::flip;
using dc::bits::get;
using dc::bits::pow2;

std::vector<NodeId> hypercube_hamiltonian_cycle(const Hypercube& q) {
  DC_REQUIRE(q.dimensions() >= 2, "Q_d has a Hamiltonian cycle only for d >= 2");
  std::vector<NodeId> cycle;
  cycle.reserve(q.node_count());
  for (NodeId t = 0; t < q.node_count(); ++t) cycle.push_back(gray_code(t));
  return cycle;
}

namespace {

/// Hamiltonian path of the subcube spanned by `dims` (x and y agree on all
/// other bits). Precondition: x != y with odd Hamming distance, both
/// differences inside dims.
std::vector<NodeId> ham_path_rec(const std::vector<unsigned>& dims, NodeId x,
                                 NodeId y) {
  DC_CHECK(!dims.empty(), "empty subcube");
  if (dims.size() == 1) {
    DC_CHECK(flip(x, dims[0]) == y, "base case endpoints must be neighbors");
    return {x, y};
  }
  // Split along a dimension where the endpoints differ.
  unsigned i = dims[0];
  for (const unsigned d : dims) {
    if (get(x, d) != get(y, d)) {
      i = d;
      break;
    }
  }
  DC_CHECK(get(x, i) != get(y, i), "endpoints of equal parity are not laceable");
  std::vector<unsigned> rest;
  rest.reserve(dims.size() - 1);
  for (const unsigned d : dims)
    if (d != i) rest.push_back(d);
  // Bridgehead z: any opposite-parity node on x's side; its cross partner
  // z^i has x's parity and therefore can never collide with y.
  const NodeId z = flip(x, rest[0]);
  auto path = ham_path_rec(rest, x, z);
  const auto second = ham_path_rec(rest, flip(z, i), y);
  path.insert(path.end(), second.begin(), second.end());
  return path;
}

}  // namespace

std::vector<NodeId> hypercube_hamiltonian_path(const Hypercube& q, NodeId x,
                                               NodeId y) {
  DC_REQUIRE(x < q.node_count() && y < q.node_count(), "node out of range");
  DC_REQUIRE(q.dimensions() >= 1, "Q_0 has no two distinct nodes");
  DC_REQUIRE(dc::bits::hamming(x, y) % 2 == 1,
             "Hamiltonian laceability requires endpoints of opposite parity");
  std::vector<unsigned> dims(q.dimensions());
  for (unsigned d = 0; d < q.dimensions(); ++d) dims[d] = d;
  return ham_path_rec(dims, x, y);
}

std::vector<NodeId> dual_cube_hamiltonian_cycle(const DualCube& d) {
  DC_REQUIRE(d.order() >= 2, "D_1 = K_2 has no Hamiltonian cycle");
  const unsigned w = d.order() - 1;
  const Hypercube cluster(w);
  const dc::u64 m = pow2(w);  // clusters per class

  const auto id_path = [&](dc::u64 from, dc::u64 to) {
    return hypercube_hamiltonian_path(cluster, from, to);
  };

  std::vector<NodeId> cycle;
  cycle.reserve(d.node_count());
  for (dc::u64 t = 0; t < m; ++t) {
    const dc::u64 k_t = gray_code(t);
    const dc::u64 k_next = gray_code((t + 1) % m);
    const dc::u64 j_prev = gray_code((t + m - 1) % m);
    const dc::u64 j_t = gray_code(t);
    // Class-0 cluster K_t: node IDs j_{t-1} -> j_t.
    for (const NodeId id : id_path(j_prev, j_t))
      cycle.push_back(d.encode({0, k_t, id}));
    // Cross into class-1 cluster j_t at node ID K_t; walk to K_{t+1}.
    for (const NodeId id : id_path(k_t, k_next))
      cycle.push_back(d.encode({1, j_t, id}));
  }
  DC_CHECK(cycle.size() == d.node_count(), "tour must cover every node");
  return cycle;
}

std::vector<NodeId> recursive_dual_cube_hamiltonian_cycle(
    const RecursiveDualCube& r) {
  const DualCube d(r.order());
  std::vector<NodeId> cycle = dual_cube_hamiltonian_cycle(d);
  for (NodeId& u : cycle) u = r.from_standard(u);
  return cycle;
}

bool is_hamiltonian_cycle(const Topology& t, const std::vector<NodeId>& cycle) {
  if (cycle.size() != t.node_count() || cycle.size() < 3) return false;
  std::vector<char> seen(t.node_count(), 0);
  for (const NodeId u : cycle) {
    if (u >= t.node_count() || seen[u]) return false;
    seen[u] = 1;
  }
  for (std::size_t i = 0; i < cycle.size(); ++i)
    if (!t.has_edge(cycle[i], cycle[(i + 1) % cycle.size()])) return false;
  return true;
}

bool is_hamiltonian_path(const Topology& t, const std::vector<NodeId>& path) {
  if (path.size() != t.node_count()) return false;
  std::vector<char> seen(t.node_count(), 0);
  for (const NodeId u : path) {
    if (u >= t.node_count() || seen[u]) return false;
    seen[u] = 1;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i)
    if (!t.has_edge(path[i], path[i + 1])) return false;
  return true;
}

}  // namespace dc::net
