// Textual rendering of small dual-cubes: the cluster decomposition of the
// standard presentation (Figures 1 and 2 of the paper) and the four-copy
// recursive construction (Figure 4). Pure formatting; all structure comes
// from the topology classes.
#pragma once

#include <string>

#include "topology/dual_cube.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::net {

/// Multi-line description of D_n grouped by class and cluster, listing each
/// node's binary label, intra-cluster links, and cross-edge partner.
/// Intended for n <= 3 (Figures 1-2); larger n still works but is long.
std::string describe_dual_cube(const DualCube& d);

/// Multi-line description of the recursive presentation: the four D_(n-1)
/// copies selected by the two leftmost bits, and the two matchings of
/// recursive links that join them (Figure 4).
std::string describe_recursive_construction(const RecursiveDualCube& r);

}  // namespace dc::net
