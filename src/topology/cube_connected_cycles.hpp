// Cube-connected cycles CCC_k (Preparata & Vuillemin): each vertex of Q_k is
// replaced by a k-cycle; cycle position p carries the dimension-p hypercube
// link. k * 2^k nodes, degree 3. The paper positions the dual-cube as an
// improvement over CCC, so CCC appears in the topology-properties table.
#pragma once

#include "topology/topology.hpp"

namespace dc::net {

class CubeConnectedCycles final : public Topology {
 public:
  /// CCC_k with k * 2^k nodes. Requires k >= 3 so cycles are simple.
  explicit CubeConnectedCycles(unsigned k) : k_(k) {
    DC_REQUIRE(k >= 3, "CCC needs cycle length >= 3");
    DC_REQUIRE(k <= 25, "CCC order too large to simulate");
  }

  std::string name() const override { return "CCC_" + std::to_string(k_); }
  NodeId node_count() const override {
    return static_cast<NodeId>(k_) * dc::bits::pow2(k_);
  }

  std::vector<NodeId> neighbors(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    const auto [x, p] = decode(u);
    return {
        encode(x, (p + 1) % k_),            // cycle forward
        encode(x, (p + k_ - 1) % k_),       // cycle backward
        encode(dc::bits::flip(x, p), p),    // hypercube link at dimension p
    };
  }

  std::size_t neighbor_count(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    return 3;  // cycle forward, cycle backward, one hypercube link
  }

  /// Cycle length / cube dimension k.
  unsigned k() const { return k_; }

  /// (cube label, cycle position) of node u.
  std::pair<dc::u64, unsigned> decode(NodeId u) const {
    return {u / k_, static_cast<unsigned>(u % k_)};
  }

  /// Node label from (cube label, cycle position).
  NodeId encode(dc::u64 x, unsigned p) const {
    DC_REQUIRE(x < dc::bits::pow2(k_) && p < k_, "address out of range");
    return x * k_ + p;
  }

 private:
  unsigned k_;
};

}  // namespace dc::net
