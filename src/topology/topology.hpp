// Abstract interconnection-network interface.
//
// Every network in this library is a finite, undirected, simple graph whose
// vertices are dense integer labels 0..node_count()-1. Algorithms that run on
// the synchronous simulator only ever talk to a Topology through this
// interface, which is what lets the simulator validate that every message
// travels along a real link.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bits.hpp"
#include "support/check.hpp"

namespace dc::net {

/// Dense vertex label.
using NodeId = dc::u64;

/// An undirected, simple graph with dense vertex labels.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Human-readable name, e.g. "D_3" or "Q_5".
  virtual std::string name() const = 0;

  /// Number of vertices. Labels are 0..node_count()-1.
  virtual NodeId node_count() const = 0;

  /// Neighbor labels of `u`, in a deterministic order.
  /// Precondition: u < node_count().
  virtual std::vector<NodeId> neighbors(NodeId u) const = 0;

  /// True iff {u, v} is an edge. Default scans neighbors(u); concrete
  /// topologies override with an O(1) test where possible.
  virtual bool has_edge(NodeId u, NodeId v) const;

  /// Degree of `u`.
  std::size_t degree(NodeId u) const { return neighbors(u).size(); }

  /// Total number of undirected edges (sum of degrees / 2).
  dc::u64 edge_count() const;
};

/// Validates that `path` is a walk in `t` (consecutive vertices adjacent and
/// in range). An empty path is invalid; a single vertex is a valid walk.
bool is_valid_path(const Topology& t, const std::vector<NodeId>& path);

}  // namespace dc::net
