// Abstract interconnection-network interface.
//
// Every network in this library is a finite, undirected, simple graph whose
// vertices are dense integer labels 0..node_count()-1. Algorithms that run on
// the synchronous simulator only ever talk to a Topology through this
// interface, which is what lets the simulator validate that every message
// travels along a real link.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/bits.hpp"
#include "support/check.hpp"

namespace dc::net {

class FlatAdjacency;

/// Dense vertex label.
using NodeId = dc::u64;

/// An undirected, simple graph with dense vertex labels.
class Topology {
 public:
  Topology() = default;
  virtual ~Topology();

  // Copies and moves never carry the lazily built adjacency cache; each
  // instance rebuilds its own on first use.
  Topology(const Topology&) {}
  Topology& operator=(const Topology&) { return *this; }

  /// Human-readable name, e.g. "D_3" or "Q_5".
  virtual std::string name() const = 0;

  /// Number of vertices. Labels are 0..node_count()-1.
  virtual NodeId node_count() const = 0;

  /// Neighbor labels of `u`, in a deterministic order.
  /// Precondition: u < node_count().
  virtual std::vector<NodeId> neighbors(NodeId u) const = 0;

  /// True iff {u, v} is an edge. Default scans neighbors(u); concrete
  /// topologies override with an O(1) test where possible.
  virtual bool has_edge(NodeId u, NodeId v) const;

  /// Number of neighbors of `u`. The default materializes neighbors(u);
  /// concrete topologies override with an O(1) count where possible so that
  /// degree() and edge_count() never allocate.
  virtual std::size_t neighbor_count(NodeId u) const {
    return neighbors(u).size();
  }

  /// Degree of `u`.
  std::size_t degree(NodeId u) const { return neighbor_count(u); }

  /// Total number of undirected edges (sum of degrees / 2).
  dc::u64 edge_count() const;

  /// CSR snapshot of the whole adjacency, built on first call and cached
  /// for the lifetime of this object. Thread-safe. The simulator validates
  /// messages against this snapshot, giving allocation-free O(log degree)
  /// link checks without any virtual dispatch in the hot path.
  const FlatAdjacency& flat_adjacency() const;

 private:
  mutable std::mutex adjacency_mutex_;
  mutable std::shared_ptr<const FlatAdjacency> adjacency_;
};

/// Validates that `path` is a walk in `t` (consecutive vertices adjacent and
/// in range). An empty path is invalid; a single vertex is a valid walk.
bool is_valid_path(const Topology& t, const std::vector<NodeId>& path);

}  // namespace dc::net
