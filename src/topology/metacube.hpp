// The metacube MC(k, m) — the authors' generalization of the dual-cube
// (cited in the paper's reference list: "Efficient Communication in
// Metacube"). A node address has k class bits c and 2^k fields of m bits
// each:
//
//   [ c : k bits | field_{2^k - 1} | ... | field_1 | field_0 ]
//
// Edges:
//   * cube edges  — flip one bit of field_c (the field selected by the
//     node's own class value): m per node;
//   * cross edges — flip one of the k class bits: k per node.
//
// So MC(k, m) has 2^(k + m 2^k) nodes of degree m + k. MC(1, m) is exactly
// the dual-cube D_(m+1) — identical labels, identical edge set — which the
// tests verify, making the dual-cube results of the paper a special case
// of this class. MC(0, m) degenerates to the hypercube Q_m.
#pragma once

#include "topology/topology.hpp"

namespace dc::net {

class Metacube final : public Topology {
 public:
  /// MC(k, m) with 2^(k + m*2^k) nodes. Requires m >= 1 and a total label
  /// width small enough to simulate.
  Metacube(unsigned k, unsigned m) : k_(k), m_(m) {
    DC_REQUIRE(m >= 1, "metacube needs m >= 1");
    DC_REQUIRE(label_bits() <= 26, "metacube too large to simulate");
  }

  std::string name() const override {
    return "MC(" + std::to_string(k_) + "," + std::to_string(m_) + ")";
  }
  NodeId node_count() const override { return dc::bits::pow2(label_bits()); }

  std::vector<NodeId> neighbors(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    std::vector<NodeId> out;
    out.reserve(m_ + k_);
    const unsigned base = field_offset(class_of(u));
    const unsigned class_lo = m_ * static_cast<unsigned>(dc::bits::pow2(k_));
    for (unsigned i = 0; i < m_; ++i) out.push_back(dc::bits::flip(u, base + i));
    for (unsigned i = 0; i < k_; ++i)
      out.push_back(dc::bits::flip(u, class_lo + i));
    return out;
  }

  bool has_edge(NodeId u, NodeId v) const override {
    DC_REQUIRE(u < node_count() && v < node_count(), "node out of range");
    if (dc::bits::hamming(u, v) != 1) return false;
    const unsigned i = dc::bits::lowest_set(u ^ v);
    const unsigned class_lo = static_cast<unsigned>(m_ * dc::bits::pow2(k_));
    if (i >= class_lo) return true;  // cross edge (class bits)
    const unsigned base = field_offset(class_of(u));
    return i >= base && i < base + m_;  // cube edge in the selected field
  }

  std::size_t neighbor_count(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    return m_ + k_;
  }

  unsigned k() const { return k_; }
  unsigned m() const { return m_; }
  unsigned label_bits() const {
    return k_ + m_ * static_cast<unsigned>(dc::bits::pow2(k_));
  }
  /// Degree m + k.
  unsigned degree_formula() const { return m_ + k_; }

  /// The class value (top k bits).
  dc::u64 class_of(NodeId u) const {
    return dc::bits::field(u, m_ * static_cast<unsigned>(dc::bits::pow2(k_)), k_);
  }

  /// Bit offset of field `c`.
  unsigned field_offset(dc::u64 c) const {
    return static_cast<unsigned>(c) * m_;
  }

  /// Value of field `c` of node u.
  dc::u64 field_of(NodeId u, dc::u64 c) const {
    return dc::bits::field(u, field_offset(c), m_);
  }

 private:
  unsigned k_;
  unsigned m_;
};

/// Simple (not necessarily shortest) routing in MC(k, m), generalizing the
/// dual-cube cluster route: walk the class value through every class whose
/// field differs (one class-bit flip at a time), rewriting that field's
/// bits while parked there; finish by aligning the class bits with the
/// destination. Every hop is a metacube edge.
inline std::vector<NodeId> route_metacube(const Metacube& mc, NodeId src,
                                          NodeId dst) {
  DC_REQUIRE(src < mc.node_count() && dst < mc.node_count(),
             "node out of range");
  std::vector<NodeId> path{src};
  NodeId cur = src;
  const unsigned class_lo = mc.m() * static_cast<unsigned>(dc::bits::pow2(mc.k()));

  const auto set_class = [&](dc::u64 target_class) {
    for (unsigned i = 0; i < mc.k(); ++i) {
      if (dc::bits::get(cur, class_lo + i) !=
          dc::bits::get(target_class, i)) {
        cur = dc::bits::flip(cur, class_lo + i);
        path.push_back(cur);
      }
    }
  };

  for (dc::u64 c = 0; c < dc::bits::pow2(mc.k()); ++c) {
    if (mc.field_of(cur, c) == mc.field_of(dst, c)) continue;
    set_class(c);
    const unsigned base = mc.field_offset(c);
    for (unsigned i = 0; i < mc.m(); ++i) {
      if (dc::bits::get(cur, base + i) != dc::bits::get(dst, base + i)) {
        cur = dc::bits::flip(cur, base + i);
        path.push_back(cur);
      }
    }
  }
  set_class(mc.class_of(dst));
  DC_CHECK(cur == dst, "metacube route did not reach the destination");
  return path;
}

}  // namespace dc::net
