// Ring embeddings: Hamiltonian cycles and paths.
//
// Hypercube: the reflected Gray code gives a Hamiltonian cycle of Q_d
// (d >= 2); Q_d is also Hamiltonian-laceable — a Hamiltonian path exists
// between any two nodes of opposite parity — via the classic recursive
// split construction (Havel).
//
// Dual-cube: D_n is Hamiltonian for every n >= 2 (D_1 = K_2 has no cycle).
// The construction alternates clusters of the two classes:
//
//   visit class-0 clusters in Gray-code order K_0, K_1, ..., K_{M-1}
//   (M = 2^(n-1)); inside cluster K_t walk a Hamiltonian path between the
//   node IDs j_{t-1} and j_t (also consecutive Gray codes); the cross-edge
//   at node ID j_t enters class-1 cluster j_t at node ID K_t, where a
//   Hamiltonian path leads to node ID K_{t+1}, whose cross-edge re-enters
//   class 0 in cluster K_{t+1} at node ID j_t.
//
// Consecutive Gray codes differ in one bit, so every required intra-cluster
// path joins nodes of opposite parity — exactly the laceability
// precondition — and every cluster of both classes is covered exactly
// once, closing into a single cycle of all 2^(2n-1) nodes. Each node is a
// constant-degree neighbor of its ring predecessor/successor, i.e. the
// ring embeds with dilation 1.
#pragma once

#include <vector>

#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"

namespace dc::net {

/// The d-bit reflected Gray code: position t -> codeword.
constexpr dc::u64 gray_code(dc::u64 t) { return t ^ (t >> 1); }

/// Hamiltonian cycle of Q_d for d >= 2, as the node sequence (first node
/// not repeated at the end). Gray-code order starting at 0.
std::vector<NodeId> hypercube_hamiltonian_cycle(const Hypercube& q);

/// Hamiltonian path of Q_d from x to y. Requires parity(x) != parity(y)
/// (Hamiltonian laceability); throws dc::CheckError otherwise.
std::vector<NodeId> hypercube_hamiltonian_path(const Hypercube& q, NodeId x,
                                               NodeId y);

/// Hamiltonian cycle of D_n for n >= 2, as the node sequence.
std::vector<NodeId> dual_cube_hamiltonian_cycle(const DualCube& d);

class RecursiveDualCube;

/// Hamiltonian cycle of the recursive presentation of D_n (n >= 2): the
/// standard-presentation cycle mapped through the label isomorphism, which
/// preserves adjacency and hence dilation 1.
std::vector<NodeId> recursive_dual_cube_hamiltonian_cycle(
    const RecursiveDualCube& r);

/// True iff `cycle` visits every node of `t` exactly once and consecutive
/// nodes (cyclically) are adjacent.
bool is_hamiltonian_cycle(const Topology& t, const std::vector<NodeId>& cycle);

/// True iff `path` visits every node exactly once with adjacent steps.
bool is_hamiltonian_path(const Topology& t, const std::vector<NodeId>& path);

}  // namespace dc::net
