// Compressed-sparse-row snapshot of a Topology's adjacency.
//
// Built once from the virtual neighbors() interface, a FlatAdjacency packs
// the whole edge set into two flat arrays (row offsets + neighbor labels,
// rows sorted ascending). After construction every query is allocation-free:
//   * row(u)        — O(1) span of u's neighbors (sorted),
//   * degree(u)     — O(1),
//   * has_edge(u,v) — O(log degree) binary search,
//   * edge_slot(u,v)— O(log degree) dense index of the *directed* edge
//                     u -> v in [0, directed_edge_count()), or npos,
//   * fingerprint() — O(1) content hash of the whole edge set, computed at
//                     build time. Two topologies with equal fingerprints
//                     share their adjacency for all practical purposes;
//                     the schedule cache uses name() + fingerprint as the
//                     topology identity so graphs that merely share a name
//                     can never share a compiled schedule.
// The edge-slot indexing is what lets the simulator keep per-worker
// edge-load counters in flat u64 arrays instead of a hash map.
//
// The snapshot is immutable and safe to share between threads. Topologies
// in this library are static, so a snapshot never goes stale; Topology
// caches one lazily (see Topology::flat_adjacency()).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "topology/topology.hpp"

namespace dc::net {

class FlatAdjacency {
 public:
  static constexpr std::size_t npos = ~std::size_t{0};

  /// Builds the CSR form of `t` — O(N + E log d) time, O(N + E) space.
  explicit FlatAdjacency(const Topology& t);

  NodeId node_count() const { return n_; }

  /// Number of directed edges (= 2x undirected edge count for the simple
  /// graphs in this library).
  std::size_t directed_edge_count() const { return neighbors_.size(); }

  /// Neighbors of `u`, sorted ascending. Precondition: u < node_count().
  std::span<const NodeId> row(NodeId u) const {
    const std::size_t i = static_cast<std::size_t>(u);
    return {neighbors_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

  std::size_t degree(NodeId u) const {
    const std::size_t i = static_cast<std::size_t>(u);
    return offsets_[i + 1] - offsets_[i];
  }

  /// True iff {u, v} is an edge. Precondition: u, v < node_count().
  bool has_edge(NodeId u, NodeId v) const {
    return edge_slot(u, v) != npos;
  }

  /// Dense index of the directed edge u -> v, or npos if not an edge.
  /// Precondition: u, v < node_count().
  std::size_t edge_slot(NodeId u, NodeId v) const {
    const std::size_t i = static_cast<std::size_t>(u);
    std::size_t lo = offsets_[i];
    std::size_t hi = offsets_[i + 1];
    if (hi - lo <= kLinearScanMax) {
      // Short rows: an early-exit scan beats both a branch-free cmov scan
      // (whose conditional moves form a serial dependency chain as long as
      // the row) and a binary search (serially dependent probes). Simulator
      // cycles probe the same neighbor rank for every node — e.g. all nodes
      // exchange along one dimension — so the exit branch is highly
      // predictable. This is the per-message validation hot path.
      for (std::size_t j = lo; j < hi; ++j) {
        if (neighbors_[j] == v) return j;
      }
      return npos;
    }
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (neighbors_[mid] < v) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return (lo < offsets_[i + 1] && neighbors_[lo] == v) ? lo : npos;
  }

  /// Rows at or below this length use the linear scan in edge_slot.
  static constexpr std::size_t kLinearScanMax = 32;

  /// FNV-1a hash of (node count, row offsets, neighbor labels) — a stable
  /// identity of the exact edge set, computed once at construction.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  NodeId n_;
  std::vector<std::size_t> offsets_;  // size n_ + 1
  std::vector<NodeId> neighbors_;     // sorted within each row
  std::uint64_t fingerprint_ = 0;
};

}  // namespace dc::net
