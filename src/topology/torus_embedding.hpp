// Torus/mesh embeddings — the classic measure of how much hypercube
// structure a derivative network retains ("keeps most of the interesting
// properties of the hypercube", paper §1).
//
// A 2^a x 2^b torus embeds into Q_(a+b) with dilation 1 by Gray-coding each
// coordinate. Applying the *same* label map on the dual-cube D_n (same
// label space, 2n-1 = a+b) stretches some torus edges: a one-bit label
// difference inside a node's foreign field is a same-class,
// different-cluster pair at distance 3. So the dual-cube embeds the torus
// with dilation 3 — bounded, like its 3x algorithm-emulation factor —
// while the ring embeds with dilation 1 via the explicit Hamiltonian cycle
// (hamiltonian.hpp). bench/tab_embeddings quantifies both.
#pragma once

#include <vector>

#include "topology/topology.hpp"

namespace dc::net {

/// Gray-code embedding of the 2^a x 2^b torus into a (a+b)-bit label
/// space: returns `map` with map[r * 2^b + c] = label of torus node (r, c).
std::vector<NodeId> embed_torus_gray(unsigned a, unsigned b);

/// Edge list of the 2^a x 2^b torus as (index, index) pairs over
/// r * 2^b + c indices. Wrap-around edges included; degenerate dimensions
/// (2^0 or 2^1, where wrap parallels the step edge) are deduplicated.
std::vector<std::pair<dc::u64, dc::u64>> torus_edges(unsigned a, unsigned b);

struct DilationStats {
  unsigned max = 0;
  double average = 0.0;
  dc::u64 edges = 0;
};

/// Dilation of an embedding: guest edges mapped through `map`, measured by
/// `distance(host_u, host_v)`.
template <typename DistanceFn>
DilationStats embedding_dilation(
    const std::vector<std::pair<dc::u64, dc::u64>>& guest_edges,
    const std::vector<NodeId>& map, DistanceFn&& distance) {
  DilationStats stats;
  dc::u64 total = 0;
  for (const auto& [gu, gv] : guest_edges) {
    DC_REQUIRE(gu < map.size() && gv < map.size(), "guest node out of range");
    const unsigned dist = distance(map[gu], map[gv]);
    stats.max = std::max(stats.max, dist);
    total += dist;
    ++stats.edges;
  }
  stats.average = stats.edges == 0
                      ? 0.0
                      : static_cast<double>(total) /
                            static_cast<double>(stats.edges);
  return stats;
}

}  // namespace dc::net
