#include "topology/recursive_dual_cube.hpp"

namespace dc::net {

using dc::bits::even_bits;
using dc::bits::field;
using dc::bits::flip;
using dc::bits::get;
using dc::bits::hamming;
using dc::bits::interleave;
using dc::bits::odd_bits;

std::vector<NodeId> RecursiveDualCube::neighbors(NodeId u) const {
  DC_REQUIRE(u < node_count(), "node out of range");
  std::vector<NodeId> out;
  out.reserve(n_);
  out.push_back(flip(u, 0));  // cross / class dimension
  const unsigned u0 = get(u, 0);
  for (unsigned i = 1; i < label_bits(); ++i)
    if (dimension_linked(u0, i)) out.push_back(flip(u, i));
  return out;
}

bool RecursiveDualCube::has_edge(NodeId u, NodeId v) const {
  DC_REQUIRE(u < node_count() && v < node_count(), "node out of range");
  if (hamming(u, v) != 1) return false;
  const unsigned i = dc::bits::lowest_set(u ^ v);
  return dimension_linked(get(u, 0), i);
}

std::vector<NodeId> RecursiveDualCube::indirect_route(NodeId u,
                                                      unsigned i) const {
  DC_REQUIRE(u < node_count() && i >= 1 && i < label_bits(), "out of range");
  DC_REQUIRE(!dimension_linked(get(u, 0), i),
             "dimension " << i << " has a direct link; no relay needed");
  const NodeId a = flip(u, 0);
  const NodeId b = flip(a, i);
  const NodeId c = flip(b, 0);
  DC_CHECK(has_edge(u, a) && has_edge(a, b) && has_edge(b, c),
           "indirect route must consist of direct links");
  return {u, a, b, c};
}

NodeId RecursiveDualCube::from_standard(NodeId std_label) const {
  DC_REQUIRE(std_label < node_count(), "node out of range");
  const unsigned w = n_ - 1;
  const dc::u64 part1 = field(std_label, 0, w);   // J: low bits
  const dc::u64 part2 = field(std_label, w, w);   // K: middle bits
  const dc::u64 cls = field(std_label, 2 * w, 1);
  // w at bit 0, J_i at bit 2i+2, K_i at bit 2i+1:
  // interleave(K, J, w) places K_i at even position 2i and J_i at odd
  // position 2i+1 of a temporary; shifting left by one puts K_i at 2i+1 and
  // J_i at 2i+2, then the class bit lands at position 0.
  return (interleave(part2, part1, w) << 1) | cls;
}

NodeId RecursiveDualCube::to_standard(NodeId rec_label) const {
  DC_REQUIRE(rec_label < node_count(), "node out of range");
  const unsigned w = n_ - 1;
  const dc::u64 cls = rec_label & 1;
  const dc::u64 high = rec_label >> 1;          // K_i at 2i, J_i at 2i+1
  const dc::u64 part2 = even_bits(high, w);     // K
  const dc::u64 part1 = odd_bits(high, w);      // J
  return (cls << (2 * w)) | (part2 << w) | part1;
}

}  // namespace dc::net
