// Fault-tolerant point-to-point routing in the dual-cube.
//
// The dual-cube is n-regular and n-connected, so up to n-1 node faults
// leave it connected; the fault-tolerant communication problem (the paper's
// reference [4], Lee & Hayes, and the dual-cube follow-up literature) is to
// keep routing without global recomputation. We implement a two-tier
// scheme:
//
//   tier 1 — retry the cheap cluster route under random dimension-order
//            permutations and random fault-free intermediate nodes
//            (local-information flavored; finds a detour in almost all
//            configurations with few tries);
//   tier 2 — BFS on the fault-free subgraph (global fallback; finds a path
//            whenever one exists and certifies disconnection otherwise).
//
// The result records which tier produced the path, so experiments can
// report how often the cheap tier suffices.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "support/rng.hpp"
#include "topology/dual_cube.hpp"

namespace dc::net {

struct FaultRouteResult {
  std::vector<NodeId> path;  ///< empty iff no fault-free path exists
  bool used_fallback = false;  ///< true when tier-2 BFS produced the path
  unsigned retries = 0;        ///< tier-1 attempts consumed
};

/// Routes src -> dst in `d` avoiding `faulty` nodes (which must contain
/// neither endpoint). `max_retries` bounds the tier-1 attempts.
FaultRouteResult route_dual_cube_fault_tolerant(
    const DualCube& d, NodeId src, NodeId dst,
    const std::unordered_set<NodeId>& faulty, dc::Rng& rng,
    unsigned max_retries = 16);

}  // namespace dc::net
