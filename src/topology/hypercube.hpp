// The binary hypercube Q_d: 2^d nodes, nodes adjacent iff their labels
// differ in exactly one bit. This is both the paper's baseline network and
// the building block of the dual-cube's clusters.
#pragma once

#include "topology/topology.hpp"

namespace dc::net {

class Hypercube final : public Topology {
 public:
  /// Q_d with 2^d nodes. d == 0 gives the single-vertex graph.
  explicit Hypercube(unsigned d) : d_(d) {
    DC_REQUIRE(d <= 40, "hypercube dimension too large to simulate");
  }

  std::string name() const override { return "Q_" + std::to_string(d_); }
  NodeId node_count() const override { return dc::bits::pow2(d_); }

  std::vector<NodeId> neighbors(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    std::vector<NodeId> out;
    out.reserve(d_);
    for (unsigned i = 0; i < d_; ++i) out.push_back(dc::bits::flip(u, i));
    return out;
  }

  bool has_edge(NodeId u, NodeId v) const override {
    DC_REQUIRE(u < node_count() && v < node_count(), "node out of range");
    return dc::bits::hamming(u, v) == 1;
  }

  std::size_t neighbor_count(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    return d_;
  }

  /// Dimension count d.
  unsigned dimensions() const { return d_; }

  /// Neighbor across dimension i. Precondition: i < d.
  NodeId neighbor(NodeId u, unsigned i) const {
    DC_REQUIRE(i < d_, "dimension out of range");
    return dc::bits::flip(u, i);
  }

 private:
  unsigned d_;
};

}  // namespace dc::net
