// Cluster-aligned shard layout for mega-scale dual-cube simulation.
//
// The dual-cube D_n decomposes recursively into four disjoint copies of
// D_(n-1) (paper, Section 4): split the clusters of each class by the top
// bit of their cluster ID and the four (class, top-bit) quarters induce
// vertex-disjoint subgraphs whose only external links are cross-edges.
// Iterating that split gives a natural divide-and-conquer shard layout: a
// shard key is the class bit followed by the cluster-ID bits from most to
// least significant, and a K-way plan (K a power of two) assigns each
// cluster to shard key >> (n - log2 K). Every shard is then
//
//   * cluster-aligned — clusters are never split, so the (n-1)-cube
//     exchanges of Cube_prefix stay entirely shard-local;
//   * contiguous — a shard's clusters occupy one interval of the
//     (class, cluster) key space, and under the paper's Section 3 data
//     arrangement its nodes hold one contiguous interval of global data
//     indices per class;
//   * uniform — all shards carry exactly clusters_total()/K clusters, so
//     one compiled schedule slice serves every shard.
//
// Cross-edges are the only links a shard cuts, which is what lets the
// sharded engine (sim/shard.hpp) replace the global cross-edge planes with
// a compact per-class exchange buffer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bits.hpp"
#include "support/check.hpp"
#include "topology/dual_cube.hpp"
#include "topology/topology.hpp"

namespace dc::net {

/// Maps every cluster of a dual-cube to one of K shards along the
/// recursive D_(n-1) decomposition. Immutable after construction.
class ShardPlan {
 public:
  /// One cluster, identified the way DualCubeAddress does.
  struct ClusterRef {
    unsigned cls;     ///< class indicator: 0 or 1
    dc::u64 cluster;  ///< cluster ID within the class (n-1 bits)

    friend bool operator==(const ClusterRef&, const ClusterRef&) = default;
  };

  /// Plan for `d` with `shard_count` shards. shard_count must be a power
  /// of two between 1 and the total cluster count 2^n.
  ShardPlan(const DualCube& d, unsigned shard_count);

  unsigned order() const { return order_; }
  unsigned shard_count() const { return shard_count_; }

  /// Nodes per cluster, 2^(n-1).
  dc::u64 cluster_size() const { return dc::bits::pow2(order_ - 1); }
  /// Clusters across both classes, 2^n.
  dc::u64 clusters_total() const { return dc::u64{2} << (order_ - 1); }
  /// Clusters per shard (uniform by construction).
  dc::u64 clusters_per_shard() const { return clusters_total() / shard_count_; }
  /// Nodes per shard (uniform by construction).
  NodeId shard_node_count() const {
    return clusters_per_shard() * cluster_size();
  }

  /// Recursive-decomposition key of a cluster: the class bit followed by
  /// the cluster-ID bits, most significant first. Shards are contiguous,
  /// equal-size intervals of this key space.
  dc::u64 cluster_key(unsigned cls, dc::u64 cluster) const {
    DC_REQUIRE(cls <= 1, "class indicator must be 0 or 1");
    DC_REQUIRE(cluster < dc::bits::pow2(order_ - 1), "cluster out of range");
    return (dc::u64{cls} << (order_ - 1)) | cluster;
  }

  unsigned shard_of_cluster(unsigned cls, dc::u64 cluster) const {
    return static_cast<unsigned>(cluster_key(cls, cluster) /
                                 clusters_per_shard());
  }

  unsigned shard_of_node(NodeId u) const {
    const DualCubeAddress a = decode(u);
    return shard_of_cluster(a.cls, a.cluster);
  }

  /// The clusters of shard `k`, in ascending key order (class-0 clusters
  /// by ascending cluster ID, then class-1).
  const std::vector<ClusterRef>& shard_clusters(unsigned k) const {
    DC_REQUIRE(k < shard_count_, "shard index out of range");
    return shards_[k];
  }

  /// Dense shard-local index of node `u`: cluster-major (key order),
  /// node-ID minor. Local cluster c spans [c * cluster_size(),
  /// (c+1) * cluster_size()).
  NodeId local_index(NodeId u) const {
    const DualCubeAddress a = decode(u);
    const dc::u64 key = cluster_key(a.cls, a.cluster);
    return (key % clusters_per_shard()) * cluster_size() + a.node;
  }

  /// Global node label of shard `k`'s local index (inverse of
  /// local_index).
  NodeId global_node(unsigned k, NodeId local) const {
    DC_REQUIRE(k < shard_count_, "shard index out of range");
    DC_REQUIRE(local < shard_node_count(), "local index out of range");
    const unsigned w = order_ - 1;
    const dc::u64 key =
        dc::u64{k} * clusters_per_shard() + (local >> w);
    const ClusterRef c{static_cast<unsigned>(key >> w),
                       key & (dc::bits::pow2(w) - 1)};
    return encode(c.cls, c.cluster, local & (dc::bits::pow2(w) - 1));
  }

 private:
  DualCubeAddress decode(NodeId u) const;
  NodeId encode(unsigned cls, dc::u64 cluster, dc::u64 node) const;

  unsigned order_;
  unsigned shard_count_;
  std::vector<std::vector<ClusterRef>> shards_;
};

/// A shard's induced intra-cluster graph: `clusters` disjoint copies of the
/// (n-1)-cube, one per cluster block of the shard-local index space. This
/// is the topology each per-shard Machine runs on — cross-edges are not
/// part of it because the sharded engine carries them through the compact
/// inter-shard exchange buffer instead of a comm plane.
class ShardClusterTopology final : public Topology {
 public:
  /// `cube_dims` = n-1 (node-ID bits per cluster), `clusters` = clusters
  /// per shard.
  ShardClusterTopology(unsigned cube_dims, dc::u64 clusters)
      : dims_(cube_dims), clusters_(clusters) {
    DC_REQUIRE(clusters >= 1, "a shard holds at least one cluster");
    DC_REQUIRE(cube_dims + 1 <= 40, "cluster cube too large to simulate");
  }

  std::string name() const override {
    return "ShardClusters_" + std::to_string(dims_) + "x" +
           std::to_string(clusters_);
  }
  NodeId node_count() const override {
    return clusters_ << dims_;
  }
  std::vector<NodeId> neighbors(NodeId u) const override;
  bool has_edge(NodeId u, NodeId v) const override;
  std::size_t neighbor_count(NodeId u) const override {
    DC_REQUIRE(u < node_count(), "node out of range");
    return dims_;
  }

  unsigned cube_dims() const { return dims_; }
  dc::u64 clusters() const { return clusters_; }
  /// Nodes per cluster block, 2^cube_dims.
  dc::u64 block_size() const { return dc::bits::pow2(dims_); }

 private:
  unsigned dims_;
  dc::u64 clusters_;
};

}  // namespace dc::net
