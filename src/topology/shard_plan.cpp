#include "topology/shard_plan.hpp"

namespace dc::net {

namespace {

bool is_pow2(dc::u64 v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

ShardPlan::ShardPlan(const DualCube& d, unsigned shard_count)
    : order_(d.order()), shard_count_(shard_count) {
  DC_REQUIRE(shard_count >= 1, "shard count must be >= 1");
  DC_REQUIRE(is_pow2(shard_count), "shard count must be a power of two");
  DC_REQUIRE(shard_count <= clusters_total(),
             "more shards than clusters: shards split along cluster "
             "boundaries, so K <= 2^n");
  const dc::u64 per_shard = clusters_per_shard();
  const unsigned w = order_ - 1;
  shards_.resize(shard_count_);
  for (unsigned k = 0; k < shard_count_; ++k) {
    shards_[k].reserve(static_cast<std::size_t>(per_shard));
    for (dc::u64 key = dc::u64{k} * per_shard; key < dc::u64{k + 1} * per_shard;
         ++key) {
      shards_[k].push_back(ClusterRef{static_cast<unsigned>(key >> w),
                                      key & (dc::bits::pow2(w) - 1)});
    }
  }
}

DualCubeAddress ShardPlan::decode(NodeId u) const {
  const unsigned w = order_ - 1;
  DC_REQUIRE(u < dc::bits::pow2(2 * order_ - 1), "node out of range");
  const unsigned cls = static_cast<unsigned>(dc::bits::get(u, 2 * w));
  const dc::u64 lo = dc::bits::field(u, 0, w);
  const dc::u64 hi = dc::bits::field(u, w, w);
  // Class 0: part I (low) = node, part II (high) = cluster; class 1 swaps.
  if (cls == 0) return DualCubeAddress{0, hi, lo};
  return DualCubeAddress{1, lo, hi};
}

NodeId ShardPlan::encode(unsigned cls, dc::u64 cluster, dc::u64 node) const {
  const unsigned w = order_ - 1;
  const dc::u64 lo = cls == 0 ? node : cluster;
  const dc::u64 hi = cls == 0 ? cluster : node;
  return (dc::u64{cls} << (2 * w)) | (hi << w) | lo;
}

std::vector<NodeId> ShardClusterTopology::neighbors(NodeId u) const {
  DC_REQUIRE(u < node_count(), "node out of range");
  std::vector<NodeId> out;
  out.reserve(dims_);
  for (unsigned i = 0; i < dims_; ++i) out.push_back(dc::bits::flip(u, i));
  return out;
}

bool ShardClusterTopology::has_edge(NodeId u, NodeId v) const {
  DC_REQUIRE(u < node_count() && v < node_count(), "node out of range");
  const dc::u64 diff = u ^ v;
  // One flipped bit, inside the node-ID field (same cluster block).
  return diff != 0 && (diff & (diff - 1)) == 0 && diff < block_size();
}

}  // namespace dc::net
