// Point-to-point routing (Section 2 of the paper: "the routing algorithm in
// dual-cube is also very simple").
//
// Hypercube: e-cube (dimension-order) routing, shortest by construction.
// Dual-cube: the cluster route —
//   * same cluster: fix the node-ID bits inside the cluster (e-cube);
//   * distinct classes: fix u's node-ID field to align with the cross
//     point, take the cross-edge, then fix the remaining field inside v's
//     cluster — total length = Hamming distance;
//   * same class, distinct clusters: cross into the foreign class, fix the
//     cluster-ID field there, cross back, then fix the node-ID field —
//     total length = Hamming distance + 2.
// Both routes are proven shortest (the tests compare every pair against BFS
// for small n).
#pragma once

#include <vector>

#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"

namespace dc::net {

/// Dimension-order route in Q_d, including both endpoints.
std::vector<NodeId> route_hypercube(const Hypercube& q, NodeId src, NodeId dst);

/// Cluster route in D_n, including both endpoints. The returned path has
/// length DualCube::distance(src, dst).
std::vector<NodeId> route_dual_cube(const DualCube& d, NodeId src, NodeId dst);

}  // namespace dc::net
