#include "topology/dual_cube.hpp"

namespace dc::net {

using dc::bits::field;
using dc::bits::flip;
using dc::bits::get;
using dc::bits::hamming;
using dc::bits::with_field;

std::vector<NodeId> DualCube::neighbors(NodeId u) const {
  DC_REQUIRE(u < node_count(), "node out of range");
  const unsigned w = n_ - 1;  // field width
  std::vector<NodeId> out;
  out.reserve(n_);
  // Cube edges span the node-ID field: part I (bits 0..n-2) for class 0,
  // part II (bits n-1..2n-3) for class 1.
  const unsigned base = node_class(u) == 0 ? 0 : w;
  for (unsigned i = 0; i < w; ++i) out.push_back(flip(u, base + i));
  out.push_back(cross_neighbor(u));
  return out;
}

bool DualCube::has_edge(NodeId u, NodeId v) const {
  DC_REQUIRE(u < node_count() && v < node_count(), "node out of range");
  if (hamming(u, v) != 1) return false;
  const unsigned i = dc::bits::lowest_set(u ^ v);
  const unsigned w = n_ - 1;
  if (i == 2 * n_ - 2) return true;  // cross-edge
  // Cube edge: the flipped bit must lie in the node-ID field of the
  // (common) class of the endpoints.
  if (i < w) return node_class(u) == 0;
  return node_class(u) == 1;
}

DualCubeAddress DualCube::decode(NodeId u) const {
  DC_REQUIRE(u < node_count(), "node out of range");
  const unsigned w = n_ - 1;
  const dc::u64 part1 = field(u, 0, w);
  const dc::u64 part2 = field(u, w, w);
  if (node_class(u) == 0) return {0, part2, part1};
  return {1, part1, part2};
}

NodeId DualCube::encode(const DualCubeAddress& a) const {
  const unsigned w = n_ - 1;
  DC_REQUIRE(a.cls <= 1, "class must be 0 or 1");
  DC_REQUIRE(a.cluster < clusters_per_class(), "cluster ID out of range");
  DC_REQUIRE(a.node < cluster_size(), "node ID out of range");
  dc::u64 u = static_cast<dc::u64>(a.cls) << (2 * n_ - 2);
  if (a.cls == 0) {
    u = with_field(u, 0, w, a.node);
    u = with_field(u, w, w, a.cluster);
  } else {
    u = with_field(u, 0, w, a.cluster);
    u = with_field(u, w, w, a.node);
  }
  return u;
}

NodeId DualCube::cluster_neighbor(NodeId u, unsigned i) const {
  DC_REQUIRE(u < node_count(), "node out of range");
  DC_REQUIRE(n_ >= 2 && i <= n_ - 2, "cluster dimension out of range");
  const unsigned base = node_class(u) == 0 ? 0 : n_ - 1;
  return flip(u, base + i);
}

bool DualCube::same_cluster(NodeId u, NodeId v) const {
  const auto a = decode(u);
  const auto b = decode(v);
  return a.cls == b.cls && a.cluster == b.cluster;
}

std::vector<NodeId> DualCube::cluster_members(unsigned cls,
                                              dc::u64 cluster) const {
  std::vector<NodeId> out;
  out.reserve(cluster_size());
  for (dc::u64 id = 0; id < cluster_size(); ++id)
    out.push_back(encode({cls, cluster, id}));
  return out;
}

unsigned DualCube::distance(NodeId u, NodeId v) const {
  const auto a = decode(u);
  const auto b = decode(v);
  const unsigned h = hamming(u, v);
  if (a.cls != b.cls || a.cluster == b.cluster) return h;
  return h + 2;  // must enter and leave a cluster of the other class
}

}  // namespace dc::net
