// Tiny command-line flag parser for the bench/example binaries.
// Supports --name=value and --name value forms plus boolean switches.
// Unknown flags are an error so typos do not silently change an experiment.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace dc {

class Cli {
 public:
  /// Parses argv; throws dc::CheckError on malformed input.
  Cli(int argc, const char* const* argv);

  /// Integer flag with a default.
  std::int64_t get_int(const std::string& name, std::int64_t fallback);

  /// String flag with a default.
  std::string get_string(const std::string& name, const std::string& fallback);

  /// Boolean switch (--name or --name=true/false).
  bool get_bool(const std::string& name, bool fallback);

  /// Call after all get_* calls: throws if any flag was never consumed.
  void finish() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::map<std::string, bool> consumed_;
};

}  // namespace dc
