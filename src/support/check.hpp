// Lightweight run-time checking machinery (P.6/P.7: make run-time errors
// checkable and catch them early). All library-level invariant violations
// throw dc::CheckError so callers (and tests) can observe them; nothing in
// the library calls std::abort.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dc {

/// Thrown when a DC_CHECK / DC_REQUIRE condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " — " << message;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace dc

/// Precondition check on public API boundaries. Always enabled.
#define DC_REQUIRE(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dc::detail::check_failed("DC_REQUIRE", #cond, __FILE__,        \
                                 __LINE__, (std::ostringstream{} << msg).str()); \
    }                                                                  \
  } while (false)

/// Internal invariant check. Always enabled (the library is not hot enough
/// for these to matter; determinism and early failure are worth more).
#define DC_CHECK(cond, msg)                                            \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::dc::detail::check_failed("DC_CHECK", #cond, __FILE__,          \
                                 __LINE__, (std::ostringstream{} << msg).str()); \
    }                                                                  \
  } while (false)
