#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace dc {

namespace detail {

std::size_t l2_cache_bytes() {
  static const std::size_t bytes = [] {
#if defined(_SC_LEVEL2_CACHE_SIZE)
    const long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (v > 0) return static_cast<std::size_t>(v);
#endif
    return std::size_t{1} << 20;  // conservative 1 MiB default
  }();
  return bytes;
}

}  // namespace detail

namespace detail {

// Identity of the current thread: which pool it belongs to (nullptr for
// non-workers) and its 1-based slot within that pool.
thread_local const ThreadPool* tl_pool = nullptr;
thread_local std::size_t tl_slot = 0;

}  // namespace detail

namespace {

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DC_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  bands_ = std::make_unique<BandCursor[]>(threads + 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop(std::size_t slot) {
  detail::tl_pool = this;
  detail::tl_slot = slot;
  std::uint64_t seen_epoch = 0;
  std::unique_lock lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] {
      return stopping_ || !queue_.empty() ||
             (job_active_ && job_epoch_ != seen_epoch);
    });
    if (!queue_.empty()) {
      // FIFO: always run the oldest pending task first.
      std::function<void()> task = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      task();
      lock.lock();
      continue;
    }
    if (job_active_ && job_epoch_ != seen_epoch) {
      seen_epoch = job_epoch_;
      lock.unlock();
      work_on_job();
      lock.lock();
      continue;
    }
    if (stopping_) return;  // queue drained, no job to help with
  }
}

void ThreadPool::run_one_chunk(std::size_t ticket) {
  const std::size_t lo = job_begin_ + ticket * job_chunk_;
  const std::size_t hi = std::min(job_end_, lo + job_chunk_);
  try {
    job_fn_(job_ctx_, lo, hi);
  } catch (...) {
    std::scoped_lock lock(error_mutex_);
    if (!job_error_) job_error_ = std::current_exception();
  }
  if (job_remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::scoped_lock lock(done_mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::work_on_job() {
  if (job_affine_) {
    work_on_affine_job();
    return;
  }
  for (;;) {
    const std::size_t c = job_next_.fetch_add(1, std::memory_order_relaxed);
    if (job_begin_ + c * job_chunk_ >= job_end_) return;  // all claimed
    run_one_chunk(c);
  }
}

void ThreadPool::work_on_affine_job() {
  const std::size_t slots = workers_.size() + 1;
  const std::size_t me = worker_slot();  // caller participates as band 0
  const std::size_t chunks = job_chunks_;
  const auto band_end = [&](std::size_t b) { return (b + 1) * chunks / slots; };
  // Drain the home band first, then sweep the others for leftovers.
  for (std::size_t probe = 0; probe < slots; ++probe) {
    const std::size_t b = (me + probe) % slots;
    const std::size_t end = band_end(b);
    for (;;) {
      const std::size_t c = bands_[b].next.fetch_add(1,
                                                     std::memory_order_relaxed);
      if (c >= end) break;  // band drained (cursor overrun is harmless)
      if (b != me) steals_.fetch_add(1, std::memory_order_relaxed);
      run_one_chunk(c);
    }
  }
}

void ThreadPool::run_chunked(std::size_t begin, std::size_t end,
                             std::size_t chunk_size, ChunkFn fn, void* ctx) {
  if (begin >= end) return;
  chunk_size = std::max<std::size_t>(1, chunk_size);
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + chunk_size - 1) / chunk_size;

  // One job at a time; later callers block here until the pool is free.
  std::scoped_lock job_lock(job_mutex_);
  job_begin_ = begin;
  job_end_ = end;
  job_chunk_ = chunk_size;
  job_fn_ = fn;
  job_ctx_ = ctx;
  job_error_ = nullptr;
  job_affine_ = false;
  job_next_.store(0, std::memory_order_relaxed);
  job_remaining_.store(chunks, std::memory_order_release);
  {
    std::scoped_lock lock(mutex_);
    job_active_ = true;
    ++job_epoch_;
  }
  cv_.notify_all();

  work_on_job();  // the caller participates

  {
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [&] {
      return job_remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::scoped_lock lock(mutex_);
    job_active_ = false;
  }
  if (job_error_) std::rethrow_exception(job_error_);
}

void ThreadPool::run_chunked_affine(std::size_t begin, std::size_t end,
                                    std::size_t chunk_size, ChunkFn fn,
                                    void* ctx) {
  if (begin >= end) return;
  chunk_size = std::max<std::size_t>(1, chunk_size);
  const std::size_t count = end - begin;
  const std::size_t chunks = (count + chunk_size - 1) / chunk_size;
  const std::size_t slots = workers_.size() + 1;

  // One job at a time; later callers block here until the pool is free.
  std::scoped_lock job_lock(job_mutex_);
  job_begin_ = begin;
  job_end_ = end;
  job_chunk_ = chunk_size;
  job_fn_ = fn;
  job_ctx_ = ctx;
  job_error_ = nullptr;
  job_affine_ = true;
  job_chunks_ = chunks;
  for (std::size_t b = 0; b < slots; ++b) {
    bands_[b].next.store(b * chunks / slots, std::memory_order_relaxed);
  }
  job_remaining_.store(chunks, std::memory_order_release);
  {
    std::scoped_lock lock(mutex_);
    job_active_ = true;
    ++job_epoch_;
  }
  cv_.notify_all();

  work_on_job();  // the caller drains band 0, then steals

  {
    std::unique_lock lock(done_mutex_);
    done_cv_.wait(lock, [&] {
      return job_remaining_.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::scoped_lock lock(mutex_);
    job_active_ = false;
  }
  job_affine_ = false;
  if (job_error_) std::rethrow_exception(job_error_);
}

}  // namespace dc
