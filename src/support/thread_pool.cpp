#include "support/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace dc {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.back());
      queue_.pop_back();
    }
    task();
  }
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t workers = pool.size();

  // Not worth dispatching: run inline.
  constexpr std::size_t kInlineThreshold = 2048;
  if (workers <= 1 || count <= kInlineThreshold) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  const std::size_t chunks = std::min(count, workers * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;

  // Materialize the chunk ranges before submitting anything so the
  // completion counter can be initialized up front (otherwise a fast worker
  // could decrement it below zero).
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_size;
    if (lo >= end) break;
    ranges.emplace_back(lo, std::min(end, lo + chunk_size));
  }

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t remaining = ranges.size();
  std::exception_ptr first_error;

  for (const auto& [lo, hi] : ranges) {
    pool.submit([&, lo = lo, hi = hi] {
      std::exception_ptr error;
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::scoped_lock lock(done_mutex);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  {
    std::unique_lock lock(done_mutex);
    done_cv.wait(lock, [&] { return remaining == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }
}

}  // namespace dc
