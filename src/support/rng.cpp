#include "support/rng.hpp"

#include <algorithm>
#include <limits>

namespace dc {

std::uint64_t Rng::below(std::uint64_t bound) {
  DC_REQUIRE(bound > 0, "Rng::below needs a positive bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  DC_REQUIRE(lo <= hi, "Rng::range needs lo <= hi");
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   below(span));
}

double Rng::unit() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::vector<KeyDistribution> all_key_distributions() {
  return {KeyDistribution::kUniform,     KeyDistribution::kSorted,
          KeyDistribution::kReverse,     KeyDistribution::kConstant,
          KeyDistribution::kFewDistinct, KeyDistribution::kOrganPipe,
          KeyDistribution::kAlmostSorted};
}

std::string to_string(KeyDistribution d) {
  switch (d) {
    case KeyDistribution::kUniform: return "uniform";
    case KeyDistribution::kSorted: return "sorted";
    case KeyDistribution::kReverse: return "reverse";
    case KeyDistribution::kConstant: return "constant";
    case KeyDistribution::kFewDistinct: return "few-distinct";
    case KeyDistribution::kOrganPipe: return "organ-pipe";
    case KeyDistribution::kAlmostSorted: return "almost-sorted";
  }
  return "unknown";
}

std::vector<std::uint64_t> generate_keys(KeyDistribution d, std::size_t count,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(count);
  switch (d) {
    case KeyDistribution::kUniform:
      for (auto& k : keys) k = rng();
      break;
    case KeyDistribution::kSorted:
      for (std::size_t i = 0; i < count; ++i) keys[i] = i;
      break;
    case KeyDistribution::kReverse:
      for (std::size_t i = 0; i < count; ++i) keys[i] = count - i;
      break;
    case KeyDistribution::kConstant:
      std::fill(keys.begin(), keys.end(), std::uint64_t{42});
      break;
    case KeyDistribution::kFewDistinct:
      for (auto& k : keys) k = rng.below(8);
      break;
    case KeyDistribution::kOrganPipe:
      for (std::size_t i = 0; i < count; ++i)
        keys[i] = std::min(i, count - 1 - i);
      break;
    case KeyDistribution::kAlmostSorted: {
      for (std::size_t i = 0; i < count; ++i) keys[i] = i;
      const std::size_t swaps = std::max<std::size_t>(1, count / 100);
      for (std::size_t s = 0; s < swaps && count > 1; ++s) {
        const std::size_t a = rng.below(count);
        const std::size_t b = rng.below(count);
        std::swap(keys[a], keys[b]);
      }
      break;
    }
  }
  return keys;
}

}  // namespace dc
