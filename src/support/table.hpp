// Minimal column-aligned ASCII table used by the benchmark harness to print
// the paper-vs-measured rows. Kept deliberately simple: add a header, add
// rows of strings/numbers, stream it out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace dc {

class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  /// Sets the column headers; call once before adding rows.
  void header(std::vector<std::string> names);

  /// Appends a row. Must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// Convenience: formats each cell with cell_to_string.
  template <typename... Cells>
  void add(const Cells&... cells) {
    row({cell_to_string(cells)...});
  }

  /// Renders the table with column alignment and a rule under the header.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

  static std::string cell_to_string(const std::string& s) { return s; }
  static std::string cell_to_string(const char* s) { return s; }
  static std::string cell_to_string(bool b) { return b ? "yes" : "no"; }
  static std::string cell_to_string(double v);
  template <typename T>
    requires std::is_integral_v<T>
  static std::string cell_to_string(T v) {
    return std::to_string(v);
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace dc
