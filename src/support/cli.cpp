#include "support/cli.hpp"

#include <charconv>

#include "support/check.hpp"

namespace dc {

Cli::Cli(int argc, const char* const* argv) {
  DC_REQUIRE(argc >= 1, "argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    DC_REQUIRE(arg.rfind("--", 0) == 0, "expected --flag, got '" << arg << "'");
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      name = arg;
      value = argv[++i];
    } else {
      name = arg;
      value = "true";  // boolean switch
    }
    DC_REQUIRE(!name.empty(), "empty flag name");
    values_[name] = value;
    consumed_[name] = false;
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  std::int64_t out = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  DC_REQUIRE(ec == std::errc{} && ptr == s.data() + s.size(),
             "flag --" << name << " expects an integer, got '" << s << "'");
  return out;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  return it->second;
}

bool Cli::get_bool(const std::string& name, bool fallback) {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_[name] = true;
  const auto& s = it->second;
  DC_REQUIRE(s == "true" || s == "false" || s == "1" || s == "0",
             "flag --" << name << " expects a boolean, got '" << s << "'");
  return s == "true" || s == "1";
}

void Cli::finish() const {
  for (const auto& [name, used] : consumed_) {
    DC_REQUIRE(used, "unknown flag --" << name);
  }
}

}  // namespace dc
