#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace dc {

void Table::header(std::vector<std::string> names) {
  DC_REQUIRE(rows_.empty(), "set the header before adding rows");
  header_ = std::move(names);
}

void Table::row(std::vector<std::string> cells) {
  DC_REQUIRE(header_.empty() || cells.size() == header_.size(),
             "row arity " << cells.size() << " != header arity "
                          << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell_to_string(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  auto widen = [&](const std::vector<std::string>& cells) {
    if (widths.size() < cells.size()) widths.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << cells[i];
      if (i + 1 < cells.size())
        os << std::string(widths[i] - cells[i].size() + 2, ' ');
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace dc
