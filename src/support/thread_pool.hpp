// A persistent fixed-size thread pool plus blocking parallel loops built on
// it.
//
// The simulator executes one synchronous "cycle" at a time; within a cycle
// every virtual node acts independently, which is an embarrassingly parallel
// loop. We follow CP.4 (think in terms of tasks, not threads): callers only
// ever submit range-tasks through parallel_for / parallel_for_chunked and
// never touch threads.
//
// Dispatch model. A parallel loop is one *job*: the index range is split
// into fixed contiguous chunks and workers (plus the calling thread, which
// participates) claim chunks with an atomic ticket counter — no per-chunk
// task objects, no std::function, no allocation. Chunk *boundaries* are a
// pure function of (range, pool size), so per-index writes to disjoint
// slots are race-free and runs are deterministic from the caller's point of
// view regardless of which thread happens to execute which chunk. The call
// does not return until every chunk has completed; if any iteration throws,
// one captured exception is rethrown on the caller after all chunks drain.
//
// The plain task queue (`submit`) executes in FIFO order: tasks run in
// submission order whenever a single worker is free, and workers always
// dequeue the oldest pending task first. (The pool used to pop the *newest*
// task, which starved early submissions under load.)
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace dc {

/// Persistent worker pool executing void() tasks and chunked range jobs.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means the DC_THREADS environment variable
  /// if set, otherwise std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Thread-safe. Tasks run in FIFO submission order.
  void submit(std::function<void()> task);

  /// Stable identity of the current thread within *this* pool: workers get
  /// 1..size(), every other thread (including the caller participating in a
  /// chunked job) gets 0. Used to index per-worker accumulation arrays.
  /// Inline (two thread-local reads) — cheap enough for per-element use.
  std::size_t worker_slot() const;

  /// Type-erased chunk body: fn(ctx, lo, hi) runs indices [lo, hi).
  using ChunkFn = void (*)(void* ctx, std::size_t lo, std::size_t hi);

  /// Runs [begin, end) split into contiguous chunks of `chunk_size` (the
  /// last may be short). The calling thread participates; workers claim
  /// chunks via an atomic ticket counter. Blocks until all chunks complete;
  /// rethrows one captured exception afterwards. One job runs at a time —
  /// concurrent callers serialize. Must not be called from a worker of this
  /// pool (parallel_for_chunked falls back to inline execution instead).
  void run_chunked(std::size_t begin, std::size_t end, std::size_t chunk_size,
                   ChunkFn fn, void* ctx);

  /// Cache-affine variant of run_chunked: identical chunk boundaries and
  /// completion semantics, but the chunk tickets are pre-partitioned into
  /// one contiguous *band* per participant (caller = band 0, workers
  /// 1..size(), in slot order). Each thread drains its own band first and
  /// only then scans the other bands for leftovers, so repeated affine runs
  /// over the same index range keep each receiver range on the same thread
  /// — and thus in the same core's cache — whenever the pool keeps up.
  /// Chunks executed outside their home band are counted in
  /// affinity_steals().
  void run_chunked_affine(std::size_t begin, std::size_t end,
                          std::size_t chunk_size, ChunkFn fn, void* ctx);

  /// Cumulative count of affine-job chunks a thread executed outside its
  /// home band (work stolen to avoid idling). Zero on a pool that always
  /// keeps up — every chunk then runs on its cache-home thread.
  std::uint64_t affinity_steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Process-wide shared pool, created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop(std::size_t slot);
  void work_on_job();
  void work_on_affine_job();
  void run_one_chunk(std::size_t ticket);

  std::mutex mutex_;  // guards queue_, stopping_, job_active_, job_epoch_
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;

  // Chunked-job state. job_mutex_ is held by the submitting caller for the
  // whole job, serializing jobs; the remaining fields describe the one
  // active job.
  std::mutex job_mutex_;
  bool job_active_ = false;
  std::uint64_t job_epoch_ = 0;
  std::size_t job_begin_ = 0;
  std::size_t job_end_ = 0;
  std::size_t job_chunk_ = 0;
  ChunkFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::atomic<std::size_t> job_next_{0};
  std::atomic<std::size_t> job_remaining_{0};
  std::mutex error_mutex_;
  std::exception_ptr job_error_;
  std::mutex done_mutex_;
  std::condition_variable done_cv_;

  // Affine-job state: per-participant band cursors (padded so concurrent
  // claims never false-share) plus the chunk count that defines the band
  // boundaries. Band b of an affine job owns chunk tickets
  // [b*chunks/(size+1), (b+1)*chunks/(size+1)).
  struct alignas(64) BandCursor {
    std::atomic<std::size_t> next{0};
  };
  bool job_affine_ = false;
  std::size_t job_chunks_ = 0;
  std::unique_ptr<BandCursor[]> bands_;  // size() + 1, fixed at construction
  std::atomic<std::uint64_t> steals_{0};
};

namespace detail {
extern thread_local const ThreadPool* tl_pool;
extern thread_local std::size_t tl_slot;
}  // namespace detail

inline std::size_t ThreadPool::worker_slot() const {
  return detail::tl_pool == this ? detail::tl_slot : 0;
}

/// Ranges at or below this many indices run inline on the caller — the
/// dispatch overhead is not worth it below this size.
inline constexpr std::size_t kParallelInlineThreshold = 2048;

/// True iff a parallel_for_chunked call with these parameters would fan out
/// to pool workers (as opposed to running inline on the caller). Lets
/// callers pick a cheaper single-threaded code path — e.g. the simulator
/// claims receive ports with plain stamp writes instead of compare-exchange
/// when delivery is known to run on one thread.
inline bool parallel_will_dispatch(std::size_t count, std::size_t grain = 0,
                                   ThreadPool* pool = nullptr) {
  if (grain == 0) grain = kParallelInlineThreshold;
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  return p.size() > 1 && count > grain && p.worker_slot() == 0;
}

/// Runs body(lo, hi) over contiguous sub-ranges covering [begin, end),
/// blocking until all complete. The callable is invoked once per chunk (not
/// per element) with zero heap allocation. `grain` is the inline threshold
/// (0 = kParallelInlineThreshold); `pool` selects a pool (nullptr = shared).
/// Nested calls from a pool worker run inline. Exceptions: one captured
/// exception is rethrown on the caller after all chunks drain.
template <typename Body>
void parallel_for_chunked(std::size_t begin, std::size_t end, Body&& body,
                          std::size_t grain = 0, ThreadPool* pool = nullptr) {
  if (begin >= end) return;
  if (!parallel_will_dispatch(end - begin, grain, pool)) {
    body(begin, end);
    return;
  }
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  const std::size_t count = end - begin;
  const std::size_t chunks = std::min(count, p.size() * 4);
  const std::size_t chunk_size = (count + chunks - 1) / chunks;
  using B = std::remove_reference_t<Body>;
  p.run_chunked(
      begin, end, chunk_size,
      [](void* ctx, std::size_t lo, std::size_t hi) {
        (*static_cast<B*>(ctx))(lo, hi);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

namespace detail {

/// Per-core L2 data-cache size in bytes, read once from the OS (sysconf)
/// with a 1 MiB fallback when the platform does not report it.
std::size_t l2_cache_bytes();

/// Largest chunk length (in indices) whose working set still fits half the
/// L2 — the budget an affine band spends per chunk so its plane writes stay
/// resident in its slot's cache.
inline std::size_t l2_chunk_elems(std::size_t bytes_per_index) {
  if (bytes_per_index == 0) bytes_per_index = 1;
  return std::max<std::size_t>(1, l2_cache_bytes() / 2 / bytes_per_index);
}

}  // namespace detail

/// Cache/NUMA-aware parallel loop: like parallel_for_chunked, but chunks
/// are receiver-contiguous ranges assigned to a stable home participant
/// (ThreadPool::run_chunked_affine), and the chunk length is capped so one
/// chunk's working set — `bytes_per_index` bytes per loop index — fits in
/// half the per-core L2. Repeated affine loops over the same range land
/// each index range on the same worker slot, so a replay pass re-touches
/// planes its core already owns. Semantics (blocking, exceptions, inline
/// small ranges, determinism of chunk boundaries) match
/// parallel_for_chunked exactly.
template <typename Body>
void parallel_for_affine(std::size_t begin, std::size_t end,
                         std::size_t bytes_per_index, Body&& body,
                         std::size_t grain = 0, ThreadPool* pool = nullptr) {
  if (begin >= end) return;
  if (!parallel_will_dispatch(end - begin, grain, pool)) {
    body(begin, end);
    return;
  }
  ThreadPool& p = pool ? *pool : ThreadPool::shared();
  const std::size_t count = end - begin;
  const std::size_t participants = p.size() + 1;
  // At least 4 chunks per participant for load balance, but no chunk
  // working set past the L2 budget.
  const std::size_t balance =
      (count + participants * 4 - 1) / (participants * 4);
  const std::size_t chunk_size = std::max<std::size_t>(
      1, std::min(balance, detail::l2_chunk_elems(bytes_per_index)));
  using B = std::remove_reference_t<Body>;
  p.run_chunked_affine(
      begin, end, chunk_size,
      [](void* ctx, std::size_t lo, std::size_t hi) {
        (*static_cast<B*>(ctx))(lo, hi);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// Runs fn(i) for every i in [begin, end) using the shared pool, blocking
/// until all iterations finish. Small ranges run inline. If any iteration
/// throws, one of the exceptions is rethrown on the calling thread after all
/// chunks have drained.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& fn) {
  parallel_for_chunked(begin, end, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace dc
