// A small fixed-size thread pool plus a blocking parallel_for built on it.
//
// The simulator executes one synchronous "cycle" at a time; within a cycle
// every virtual node acts independently, which is an embarrassingly parallel
// loop. We follow CP.4 (think in terms of tasks, not threads): callers only
// ever submit range-tasks through parallel_for and never touch threads.
//
// The pool is deterministic from the caller's point of view: parallel_for
// partitions the index range into contiguous chunks, so any per-index writes
// to disjoint slots are race-free, and the call does not return until every
// chunk has completed (exceptions are captured and rethrown on the caller).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dc {

/// Fixed-size worker pool executing void() tasks.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task. Thread-safe.
  void submit(std::function<void()> task);

  /// Process-wide shared pool, created on first use.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Runs fn(i) for every i in [begin, end) using the shared pool, blocking
/// until all iterations finish. Small ranges run inline. If any iteration
/// throws, one of the exceptions is rethrown on the calling thread after all
/// chunks have drained.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

}  // namespace dc
