// Deterministic, seedable pseudo-random number generation.
//
// All workloads in tests and benches are generated through these helpers so
// every run is reproducible from a single seed. We implement xoshiro256**
// (public-domain algorithm by Blackman & Vigna) seeded via splitmix64 rather
// than relying on std::mt19937 so that sequences are stable across standard
// library implementations.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/check.hpp"

namespace dc {

/// splitmix64 step: used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double unit();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Key distributions used by the sorting workloads. Mirrors the classic
/// sort-benchmark shapes so adversarial inputs are exercised, not just
/// uniform noise.
enum class KeyDistribution {
  kUniform,      ///< i.i.d. uniform keys
  kSorted,       ///< already ascending
  kReverse,      ///< strictly descending
  kConstant,     ///< all keys equal
  kFewDistinct,  ///< uniform over 8 distinct values
  kOrganPipe,    ///< ascending then descending
  kAlmostSorted  ///< sorted with ~1% random swaps
};

/// All distributions, for parameterized tests/benches.
std::vector<KeyDistribution> all_key_distributions();

/// Human-readable name of a distribution.
std::string to_string(KeyDistribution d);

/// Generate `count` 64-bit keys with the given shape, deterministically.
std::vector<std::uint64_t> generate_keys(KeyDistribution d, std::size_t count,
                                         std::uint64_t seed);

}  // namespace dc
