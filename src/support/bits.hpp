// Bit-manipulation helpers used throughout the topology and algorithm code.
// Node labels are dense unsigned integers; every helper here is constexpr and
// total (no undefined behaviour for any input in range).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

namespace dc {

using u64 = std::uint64_t;
using u32 = std::uint32_t;

namespace bits {

/// 2^e as u64. Precondition: e < 64.
constexpr u64 pow2(unsigned e) {
  return u64{1} << e;
}

/// Value of bit `i` of `x` (0 or 1).
constexpr unsigned get(u64 x, unsigned i) {
  return static_cast<unsigned>((x >> i) & u64{1});
}

/// `x` with bit `i` flipped.
constexpr u64 flip(u64 x, unsigned i) {
  return x ^ (u64{1} << i);
}

/// `x` with bit `i` set to `v` (v in {0,1}).
constexpr u64 set(u64 x, unsigned i, unsigned v) {
  return (x & ~(u64{1} << i)) | (static_cast<u64>(v & 1u) << i);
}

/// Low `w` consecutive bits of `x` starting at `lo`.
constexpr u64 field(u64 x, unsigned lo, unsigned w) {
  return (x >> lo) & (w >= 64 ? ~u64{0} : (u64{1} << w) - 1);
}

/// `x` with the `w`-bit field at `lo` replaced by the low `w` bits of `v`.
constexpr u64 with_field(u64 x, unsigned lo, unsigned w, u64 v) {
  const u64 mask = (w >= 64 ? ~u64{0} : (u64{1} << w) - 1) << lo;
  return (x & ~mask) | ((v << lo) & mask);
}

/// Number of set bits.
constexpr unsigned popcount(u64 x) {
  return static_cast<unsigned>(std::popcount(x));
}

/// Hamming distance between two labels.
constexpr unsigned hamming(u64 a, u64 b) {
  return popcount(a ^ b);
}

/// True iff `x` is a power of two (x > 0).
constexpr bool is_pow2(u64 x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)). Precondition: x > 0.
constexpr unsigned log2_floor(u64 x) {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// Index of the lowest set bit. Precondition: x > 0.
constexpr unsigned lowest_set(u64 x) {
  return static_cast<unsigned>(std::countr_zero(x));
}

/// Reverse the low `w` bits of `x` (bits at or above `w` are dropped).
constexpr u64 reverse(u64 x, unsigned w) {
  u64 r = 0;
  for (unsigned i = 0; i < w; ++i) r |= static_cast<u64>(get(x, i)) << (w - 1 - i);
  return r;
}

/// Interleave: place the low `w` bits of `even_src` at even positions
/// 0,2,4,... and the low `w` bits of `odd_src` at odd positions 1,3,5,...
constexpr u64 interleave(u64 even_src, u64 odd_src, unsigned w) {
  u64 r = 0;
  for (unsigned i = 0; i < w; ++i) {
    r |= static_cast<u64>(get(even_src, i)) << (2 * i);
    r |= static_cast<u64>(get(odd_src, i)) << (2 * i + 1);
  }
  return r;
}

/// Extract bits at even positions 0,2,...,2(w-1) into a compact w-bit value.
constexpr u64 even_bits(u64 x, unsigned w) {
  u64 r = 0;
  for (unsigned i = 0; i < w; ++i) r |= static_cast<u64>(get(x, 2 * i)) << i;
  return r;
}

/// Extract bits at odd positions 1,3,...,2w-1 into a compact w-bit value.
constexpr u64 odd_bits(u64 x, unsigned w) {
  u64 r = 0;
  for (unsigned i = 0; i < w; ++i) r |= static_cast<u64>(get(x, 2 * i + 1)) << i;
  return r;
}

/// Render the low `w` bits of `x` as a binary string, most significant first.
inline std::string to_binary(u64 x, unsigned w) {
  std::string s(w, '0');
  for (unsigned i = 0; i < w; ++i)
    if (get(x, w - 1 - i)) s[i] = '1';
  return s;
}

}  // namespace bits
}  // namespace dc
