// Fault-tolerant parallel prefix on the dual-cube — Algorithm 2
// (core/dual_prefix.hpp) executed under a node/link fault set by *proxy
// emulation*.
//
// Algorithm 2's dataflow is a fixed sequence of 2n full exchanges (every
// node sends exactly one value and receives exactly one per cycle). Under
// faults we keep the logical dataflow bit-for-bit and move only the
// physical execution:
//
//   * every dead node's role migrates to its nearest live node (its
//     *proxy*: minimal BFS distance in the healthy graph, ties to the
//     lowest label — a deterministic assignment);
//   * each logical message of the healthy schedule is delivered between
//     the physical hosts of its endpoints over a fault-free detour path
//     (sim/fault_transport.hpp: route_dual_cube_fault_tolerant + the
//     validated store-and-forward drain). A message between two roles
//     hosted by the same proxy is a local handoff and costs nothing;
//   * dead nodes' *data is lost*: they contribute ⊕-identity, so live
//     nodes compute the prefix of the surviving inputs in index order.
//
// With no faults every logical message is the healthy single hop, every
// batch drains in exactly one comm cycle, and the run costs the healthy
// 2n cycles with Counters::messages_rerouted == 0. With any node fault set
// of size < n the fault-free subgraph stays connected (D_n is
// n-connected), every detour exists, and every live node finishes with
// the correct masked prefix; larger sets either still succeed or throw
// FaultError — never a silent wrong answer. Faults are taken at their
// final extent (timed faults count as present throughout).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"
#include "sim/fault_transport.hpp"
#include "sim/machine.hpp"
#include "sim/trace.hpp"
#include "support/rng.hpp"
#include "topology/dual_cube.hpp"
#include "topology/graph.hpp"

namespace dc::core {

namespace detail {

/// Deterministic proxy assignment: rep[u] = u for live nodes; for dead
/// nodes the live node at minimal healthy-graph BFS distance, ties to the
/// lowest label. Works on any Topology (the fault-tolerant sort runs on
/// the recursive presentation).
inline std::vector<net::NodeId> ft_proxy_map(
    const net::Topology& d, const std::vector<net::NodeId>& dead_sorted) {
  const std::size_t n_nodes = d.node_count();
  std::vector<net::NodeId> rep(n_nodes);
  for (net::NodeId u = 0; u < n_nodes; ++u) rep[u] = u;
  std::vector<std::uint8_t> is_dead(n_nodes, 0);
  for (const net::NodeId u : dead_sorted) is_dead[u] = 1;
  for (const net::NodeId u : dead_sorted) {
    const auto dist = net::bfs_distances(d, u);
    net::NodeId best = n_nodes;
    std::uint32_t best_dist = ~std::uint32_t{0};
    for (net::NodeId v = 0; v < n_nodes; ++v) {
      if (is_dead[v]) continue;
      if (dist[v] < best_dist) {
        best_dist = dist[v];
        best = v;
      }
    }
    DC_REQUIRE(best < n_nodes, "fault plan kills every node");
    rep[u] = best;
  }
  return rep;
}

}  // namespace detail

/// Runs Algorithm 2 under `plan`. `data` is in global index order; the
/// result is too: engaged with the prefix of the *surviving* inputs (dead
/// nodes contribute ⊕-identity) at every live node's index, nullopt at
/// dead nodes' indices. The machine may run with `plan` attached under
/// either policy, or with no plan attached. Costs the healthy 2n comm
/// cycles when the plan is empty.
template <Monoid M>
std::vector<std::optional<typename M::value_type>> ft_dual_prefix(
    sim::Machine& m, const net::DualCube& d, const M& op,
    const std::vector<typename M::value_type>& data,
    const sim::FaultPlan& plan, bool inclusive = true,
    sim::FtReport* report = nullptr, dc::u64 detour_seed = 0x0f7b17u) {
  using V = typename M::value_type;
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(data.size() == d.node_count(), "one input per node required");
  const std::size_t n_nodes = d.node_count();
  const unsigned w = d.order() - 1;

  const std::vector<net::NodeId> dead_sorted = plan.dead_nodes();
  const std::vector<net::NodeId> rep = detail::ft_proxy_map(d, dead_sorted);
  std::vector<std::uint8_t> is_dead(n_nodes, 0);
  for (const net::NodeId u : dead_sorted) is_dead[u] = 1;
  // hosted[p] = logical roles physical node p executes (p itself + the
  // dead nodes it proxies), ascending.
  std::vector<std::vector<net::NodeId>> hosted(n_nodes);
  for (net::NodeId u = 0; u < n_nodes; ++u)
    hosted[rep[u]].push_back(u);

  dc::Rng rng(detour_seed ^ d.order());
  sim::FtReport ftrep;
  std::vector<std::optional<V>> recv(n_nodes);

  // One full logical exchange: every logical node u ships payload_of(u) to
  // dest_of(u); afterwards recv[u] holds what u received. Healthy cost: 1
  // comm cycle; under faults the drain may take longer (proxy congestion,
  // multi-hop detours) — the excess is accounted as repair.
  const auto exchange = [&](auto&& dest_of, auto&& payload_of) {
    // One span per logical exchange: the healthy cycle plus whatever
    // repair drain the faults force, so the timeline shows exactly which
    // exchanges paid detours.
    sim::TraceScope phase(m.trace(), m.trace_track(), "phase:ft_exchange");
    std::vector<sim::LogicalMessage<V>> msgs;
    msgs.reserve(n_nodes);
    for (net::NodeId u = 0; u < n_nodes; ++u) {
      const net::NodeId v = dest_of(u);
      msgs.push_back(
          sim::LogicalMessage<V>{rep[u], rep[v], u, v, payload_of(u), false});
    }
    recv.assign(n_nodes, std::nullopt);
    const sim::FtReport batch =
        sim::deliver_with_detours(m, d, plan, std::move(msgs), rng, recv);
    ftrep.base_cycles += 1;
    ftrep.repair_cycles += batch.repair_cycles > 0 ? batch.repair_cycles - 1 : 0;
    ftrep.repaired += batch.repaired;
    ftrep.rerouted_hops += batch.rerouted_hops;
    ftrep.bfs_fallbacks += batch.bfs_fallbacks;
  };
  // One logical compute step: each physical node applies `fn` to every
  // role it hosts (proxies do their dead wards' O(1) work too).
  const auto compute = [&](auto&& fn) {
    m.compute_step([&](net::NodeId p) {
      for (const net::NodeId u : hosted[p]) fn(u);
    });
  };

  // Data placement: dead nodes' inputs are lost — identity.
  std::vector<V> c(n_nodes, op.identity());
  m.for_each_node([&](net::NodeId p) {
    for (const net::NodeId u : hosted[p])
      if (!is_dead[u]) c[u] = data[dual_prefix_index_of_node(d, u)];
  });

  // Steps 1 & 3 share this in-cluster Cube_prefix pass (mirrors
  // dual_prefix.hpp detail::cluster_prefix).
  std::vector<V> t, s;
  const auto cluster_prefix = [&](const std::vector<V>& value,
                                  bool incl, std::vector<V>& tt,
                                  std::vector<V>& ss) {
    tt = value;
    if (incl) {
      ss = value;
    } else {
      ss.assign(n_nodes, op.identity());
    }
    for (unsigned i = 0; i < w; ++i) {
      exchange([&](net::NodeId u) { return d.cluster_neighbor(u, i); },
               [&](net::NodeId u) { return tt[u]; });
      compute([&](net::NodeId u) {
        const V& temp = *recv[u];
        const unsigned base = d.node_class(u) == 0 ? 0u : w;
        if (dc::bits::get(u, base + i) == 1) {
          ss[u] = op.combine(temp, ss[u]);
          tt[u] = op.combine(temp, tt[u]);
          m.add_ops(2);
        } else {
          tt[u] = op.combine(tt[u], temp);
          m.add_ops(1);
        }
      });
    }
  };

  // Step 1: prefix inside every cluster.
  cluster_prefix(c, inclusive, t, s);
  // Step 2: exchange cluster totals over the cross-edges.
  std::vector<V> temp(n_nodes, op.identity());
  exchange([&](net::NodeId u) { return d.cross_neighbor(u); },
           [&](net::NodeId u) { return t[u]; });
  for (net::NodeId u = 0; u < n_nodes; ++u) temp[u] = *recv[u];
  // Step 3: diminished prefix of the gathered totals inside every cluster.
  std::vector<V> t2, s2;
  cluster_prefix(temp, /*incl=*/false, t2, s2);
  // Step 4: route preceding same-class totals back and fold on the left.
  exchange([&](net::NodeId u) { return d.cross_neighbor(u); },
           [&](net::NodeId u) { return s2[u]; });
  compute([&](net::NodeId u) {
    s[u] = op.combine(*recv[u], s[u]);
    m.add_ops(1);
  });
  // Step 5: class-1 nodes prepend the class-0 grand total (their own t').
  compute([&](net::NodeId u) {
    if (d.node_class(u) == 1) {
      s[u] = op.combine(t2[u], s[u]);
      m.add_ops(1);
    }
  });

  std::vector<std::optional<V>> out(n_nodes);
  for (net::NodeId u = 0; u < n_nodes; ++u)
    if (!is_dead[u]) out[dual_prefix_index_of_node(d, u)] = s[u];
  if (report) *report = ftrep;
  return out;
}

}  // namespace dc::core
