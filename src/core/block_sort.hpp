// Future-work item 1 of the paper, sorting side: sort N*m keys on D_n with
// m keys per node.
//
// Classic block generalization of a sorting network: sort each node's block
// locally, then run the network (Algorithm 3's schedule) with every
// compare-exchange replaced by a *merge-split* — the pair merges its two
// sorted blocks and the min side keeps the lower m keys, the max side the
// upper m. By the 0-1 principle this sorts the full key set whenever the
// underlying network sorts N scalars.
//
// block_sort keeps the whole key set in one node-major SoA plane
// (values[u*block + k]) and runs dual_bitonic_network_blocks, so every
// communication cycle moves contiguous width-m strides through the
// simulator's block planes (memcpy-like on compiled replay) and every
// merge-split writes its kept half straight into a double-buffered plane —
// no per-step heap traffic. block_sort_aos is the original
// vector-of-vectors formulation, kept as the parity/bench baseline; both
// charge identical op counts, so results, Counters and edge loads agree
// exactly (asserted in sim_test).
//
// Cost: the same 6n²−7n+2 communication cycles as Algorithm 3 (each cycle
// now carries a block) plus ceil(log2 m)·m-ish local work per merge,
// counted via add_ops; computation steps stay 2n²−n parallel rounds plus
// the initial local sort round.
#pragma once

#include <algorithm>
#include <vector>

#include "core/dual_sort.hpp"
#include "sim/simd.hpp"

namespace dc::core {

namespace detail {

/// Merge-split over sorted strides: writes the lower (keep_min) or upper
/// `width` keys of merge(a, b) into out (out must not alias a or b). The
/// kept half is computed directly — two-pointer from the fronts for the
/// min side, from the backs for the max side — so no 2*width scratch is
/// materialized. Integral key widths the active ISA covers take the
/// vectorized bitonic kernel (sim/simd.hpp); the output is bit-identical
/// either way, since the kept half of a merge is a pure function of the
/// input multiset.
///
/// Disjoint fast path: when the two blocks don't interleave (one's last key
/// orders before the other's first), the kept half is one of the inputs
/// verbatim and the merge collapses to a block copy. Late bitonic stages
/// see mostly already-ordered pairs, so this boundary compare carries a
/// large share of the network phase. The tie direction of each comparison
/// is chosen so the copied block is exactly what the two-pointer scan would
/// have produced, element for element, for any key type.
template <typename Key>
void merge_split(const Key* a, const Key* b, std::size_t width, bool keep_min,
                 Key* out) {
  if (width == 0) return;
  if (keep_min) {
    if (!(b[0] < a[width - 1])) {  // a[last] <= b[first]: the low half is a
      sim::simd::copy_block(out, a, width);
      return;
    }
    if (b[width - 1] < a[0]) {  // strict: on ties the scan pulls a[0] in
      sim::simd::copy_block(out, b, width);
      return;
    }
  } else {
    if (!(a[0] < b[width - 1])) {  // b[last] <= a[first]: the top half is a
      sim::simd::copy_block(out, a, width);
      return;
    }
    if (a[width - 1] < b[0]) {  // strict: on ties the scan keeps a[last]
      sim::simd::copy_block(out, b, width);
      return;
    }
  }
  if (sim::simd::merge_split(a, b, width, keep_min, out)) return;
  if (keep_min) {
    std::size_t ia = 0, ib = 0;
    for (std::size_t k = 0; k < width; ++k) {
      // ia and ib never both reach width before out fills up.
      const bool take_a = ib == width || (ia < width && !(b[ib] < a[ia]));
      out[k] = take_a ? a[ia++] : b[ib++];
    }
  } else {
    std::size_t ia = width, ib = width;
    for (std::size_t k = width; k-- > 0;) {
      const bool take_a = ib == 0 || (ia > 0 && !(a[ia - 1] < b[ib - 1]));
      out[k] = take_a ? a[--ia] : b[--ib];
    }
  }
}

}  // namespace detail

/// Sorts `data` on D_n with `block` keys per node. `data` is in node-label
/// order: node u holds data[u*block .. (u+1)*block). On return the whole
/// array is sorted (ascending iff !descending) and each node's block is
/// sorted internally.
template <typename Key>
void block_sort(sim::Machine& m, const net::RecursiveDualCube& r,
                std::vector<Key>& data, std::size_t block,
                bool descending = false) {
  DC_REQUIRE(block >= 1, "block size must be >= 1");
  DC_REQUIRE(data.size() == r.node_count() * block,
             "data size must be node_count * block");

  // The caller's node-major layout is already the SoA plane; sort each
  // node's stride in place (one parallel computation step of m log m work).
  m.compute_step([&](net::NodeId u) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(u * block),
              data.begin() + static_cast<std::ptrdiff_t>((u + 1) * block));
    m.add_ops(block);
  });

  // Network phase: Algorithm 3 with merge-split combines over strides.
  dual_bitonic_network_blocks(
      m, r, data, block, descending,
      [&m, block](net::NodeId /*u*/, bool keep_min, const Key* own,
                  const Key* other, Key* out) {
        detail::merge_split(own, other, block, keep_min, out);
        m.add_ops(2 * block);  // merge comparisons/moves
      });

  // Merge-split always keeps blocks internally ascending; a descending
  // global order additionally needs each block reversed locally.
  if (descending) {
    m.compute_step([&](net::NodeId u) {
      std::reverse(data.begin() + static_cast<std::ptrdiff_t>(u * block),
                   data.begin() + static_cast<std::ptrdiff_t>((u + 1) * block));
      m.add_ops(block / 2);
    });
  }
}

/// The original array-of-structures formulation: one std::vector<Key> per
/// node, merge-split materializing the full 2m merge, payloads shipped as
/// heap-owning vectors. Semantically identical to block_sort (same
/// schedule, same op accounting) — kept as the AoS baseline for parity
/// tests and the BM_BlockSortAoS bench row.
template <typename Key>
void block_sort_aos(sim::Machine& m, const net::RecursiveDualCube& r,
                    std::vector<Key>& data, std::size_t block,
                    bool descending = false) {
  DC_REQUIRE(block >= 1, "block size must be >= 1");
  DC_REQUIRE(data.size() == r.node_count() * block,
             "data size must be node_count * block");
  using Block = std::vector<Key>;
  const std::size_t n_nodes = r.node_count();

  // Local sort round (one parallel computation step of m log m work).
  std::vector<Block> blocks(n_nodes);
  m.for_each_node([&](net::NodeId u) {
    blocks[u].assign(data.begin() + static_cast<std::ptrdiff_t>(u * block),
                     data.begin() + static_cast<std::ptrdiff_t>((u + 1) * block));
  });
  m.compute_step([&](net::NodeId u) {
    std::sort(blocks[u].begin(), blocks[u].end());
    m.add_ops(block);
  });

  // Network phase: Algorithm 3 with merge-split combines. The 2m merge
  // scratch is hoisted per node and kept at capacity across all rounds, so
  // the steady-state network allocates nothing (it used to build and free a
  // fresh merged vector per node per dimension step).
  std::vector<Block> scratch(n_nodes);
  m.for_each_node([&](net::NodeId u) { scratch[u].reserve(2 * block); });
  dual_bitonic_network(
      m, r, blocks, descending,
      [&blocks, &scratch, &m, block](net::NodeId u, bool keep_min,
                                     const Block& other) {
        Block& merged = scratch[u];
        merged.clear();
        std::merge(blocks[u].begin(), blocks[u].end(), other.begin(),
                   other.end(), std::back_inserter(merged));
        const auto mid = merged.begin() + static_cast<std::ptrdiff_t>(block);
        if (keep_min) {
          blocks[u].assign(merged.begin(), mid);
        } else {
          blocks[u].assign(mid, merged.end());
        }
        m.add_ops(2 * block);  // merge comparisons/moves
      });

  // Merge-split always keeps blocks internally ascending; a descending
  // global order additionally needs each block reversed locally.
  if (descending) {
    m.compute_step([&](net::NodeId u) {
      std::reverse(blocks[u].begin(), blocks[u].end());
      m.add_ops(block / 2);
    });
  }

  // Copy out (uncounted data placement).
  m.for_each_node([&](net::NodeId u) {
    std::copy(blocks[u].begin(), blocks[u].end(),
              data.begin() + static_cast<std::ptrdiff_t>(u * block));
  });
}

}  // namespace dc::core
