// Ablation baseline: naive emulation of the hypercube prefix (Algorithm 1)
// on the dual-cube, *without* the paper's cluster technique.
//
// The recursive presentation makes D_n look like Q_(2n-1) with most links
// missing; Algorithm 1 still runs if every dimension exchange is performed
// with dimension_exchange (3 cycles for the 2n-2 link-less dimensions,
// 1 cycle for dimension 0): 6n-5 communication cycles versus the cluster
// technique's 2n. This is exactly the ~3x emulation overhead the paper's
// concluding section warns about, and the reason Algorithm 2 exists.
//
// Note the emulated prefix orders data by *recursive-presentation label*,
// not by the arrangement of Algorithm 2; it is validated against a
// sequential scan in that same order.
#pragma once

#include <vector>

#include "core/dimension_exchange.hpp"
#include "core/ops.hpp"

namespace dc::core {

/// Inclusive prefix over `c` (index = recursive-presentation label) by
/// emulating the ascend hypercube algorithm on D_n. The whole 6n-5-cycle
/// run goes through one oblivious section keyed by the order, so after the
/// first run the full emulation — every relayed dimension included —
/// replays as compiled permutations.
template <Monoid M>
std::vector<typename M::value_type> emulated_prefix(
    sim::Machine& m, const net::RecursiveDualCube& r, const M& op,
    const std::vector<typename M::value_type>& c) {
  using V = typename M::value_type;
  DC_REQUIRE(c.size() == r.node_count(), "one input per node required");
  sim::ObliviousSection sched(m, "emulated_prefix", {r.order()});
  std::vector<V> t = c;
  std::vector<V> s = c;
  for (unsigned i = 0; i < r.label_bits(); ++i) {
    auto temp = dimension_exchange(m, sched, r, i, t);
    m.compute_step([&](net::NodeId u) {
      if (dc::bits::get(u, i) == 1) {
        s[u] = op.combine(temp[u], s[u]);
        t[u] = op.combine(temp[u], t[u]);
        m.add_ops(2);
      } else {
        t[u] = op.combine(t[u], temp[u]);
        m.add_ops(1);
      }
    });
  }
  sched.commit();
  return s;
}

}  // namespace dc::core
