// Full dimension exchange on the recursive presentation of the dual-cube.
//
// Section 6 of the paper: a compare-exchange pair (u, u^j) at dimension
// j > 0 has a direct link only for the half of the nodes whose bit 0
// matches the parity of j; the other half must route in three hops
// u → u^0 → (u^0)^j → u^j. The paper charges three time units for the whole
// dimension step; the concrete 1-port schedule we use is:
//
//   cycle 1: every *indirect* node b ships its value to its cross neighbor
//            a = b^0 (cross-edges only);
//   cycle 2: every *direct* node a exchanges the combined message
//            (value[a], value[b]) with its partner a^j over the direct
//            dimension-j link;
//   cycle 3: a forwards value[b^j] (the second component it received) back
//            to b over the cross-edge.
//
// Each node sends at most one and receives at most one message per cycle,
// which the simulator enforces. Dimension 0 is a plain one-cycle exchange.
//
// This primitive carries both the dual-cube bitonic sort (Algorithm 3) and
// the naive hypercube-emulation ablation. The relay pattern is oblivious —
// it depends only on j — so all cycles run through an ObliviousSection:
// callers composing many dimension steps (the sorts) pass their own
// section so the whole composite run compiles to one schedule; the
// standalone overload opens a per-(order, j) section itself.
#pragma once

#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::core {

/// Exchanges `value` across dimension `j` for every node simultaneously,
/// issuing the cycles into the caller's oblivious section: returns recv
/// with recv[u] = value[u ^ (1<<j)]. Costs 1 communication cycle when
/// j == 0, 3 otherwise.
template <typename V>
std::vector<V> dimension_exchange(sim::Machine& m, sim::ObliviousSection& sched,
                                  const net::RecursiveDualCube& r, unsigned j,
                                  const std::vector<V>& value) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  DC_REQUIRE(value.size() == r.node_count(), "one value per node required");
  const std::size_t n_nodes = r.node_count();
  std::vector<V> recv(n_nodes);

  if (j == 0) {
    auto inbox = sched.exchange<V>(
        [](net::NodeId u) { return dc::bits::flip(u, 0); },
        [&](net::NodeId u) { return value[u]; });
    m.for_each_node([&](net::NodeId u) { recv[u] = std::move(*inbox[u]); });
    return recv;
  }

  // Bit-0 value of the nodes with a direct dimension-j link.
  const unsigned direct0 = j % 2 == 0 ? 0u : 1u;

  // Cycle 1: indirect nodes ship their value across the cross-edge.
  auto gathered = sched.exchange<V>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) == direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u) { return value[u]; });

  // Cycle 2: direct nodes exchange (own value, neighbor's value) pairs.
  using Pair = std::pair<V, V>;
  auto pairs = sched.exchange<Pair>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, j);
      },
      [&](net::NodeId u) { return Pair{value[u], *gathered[u]}; });

  // Cycle 3: direct nodes keep the first component and return the second
  // to their cross neighbor.
  auto returned = sched.exchange<V>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u) { return pairs[u]->second; });
  m.for_each_node([&](net::NodeId u) {
    if (dc::bits::get(u, 0) == direct0) {
      recv[u] = std::move(pairs[u]->first);
    } else {
      recv[u] = std::move(*returned[u]);
    }
  });
  return recv;
}

/// Standalone form: opens (and commits) its own schedule section keyed by
/// (order, j), so repeated exchanges along one dimension replay a cached
/// schedule.
template <typename V>
std::vector<V> dimension_exchange(sim::Machine& m,
                                  const net::RecursiveDualCube& r, unsigned j,
                                  const std::vector<V>& value) {
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  sim::ObliviousSection sched(m, "dimension_exchange", {r.order(), j});
  auto recv = dimension_exchange(m, sched, r, j, value);
  sched.commit();
  return recv;
}

}  // namespace dc::core
