// Full dimension exchange on the recursive presentation of the dual-cube.
//
// Section 6 of the paper: a compare-exchange pair (u, u^j) at dimension
// j > 0 has a direct link only for the half of the nodes whose bit 0
// matches the parity of j; the other half must route in three hops
// u → u^0 → (u^0)^j → u^j. The paper charges three time units for the whole
// dimension step; the concrete 1-port schedule we use is:
//
//   cycle 1: every *indirect* node b ships its value to its cross neighbor
//            a = b^0 (cross-edges only);
//   cycle 2: every *direct* node a exchanges the combined message
//            (value[a], value[b]) with its partner a^j over the direct
//            dimension-j link;
//   cycle 3: a forwards value[b^j] (the second component it received) back
//            to b over the cross-edge.
//
// Each node sends at most one and receives at most one message per cycle,
// which the simulator enforces. Dimension 0 is a plain one-cycle exchange.
//
// This primitive carries both the dual-cube bitonic sort (Algorithm 3) and
// the naive hypercube-emulation ablation. The relay pattern is oblivious —
// it depends only on j — so all cycles run through an ObliviousSection:
// callers composing many dimension steps (the sorts) pass their own
// section so the whole composite run compiles to one schedule; the
// standalone overload opens a per-(order, j) section itself.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::core {

/// Exchanges `value` across dimension `j` for every node simultaneously,
/// issuing the cycles into the caller's oblivious section: returns recv
/// with recv[u] = value[u ^ (1<<j)]. Costs 1 communication cycle when
/// j == 0, 3 otherwise.
template <typename V>
std::vector<V> dimension_exchange(sim::Machine& m, sim::ObliviousSection& sched,
                                  const net::RecursiveDualCube& r, unsigned j,
                                  const std::vector<V>& value) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  DC_REQUIRE(value.size() == r.node_count(), "one value per node required");
  const std::size_t n_nodes = r.node_count();
  std::vector<V> recv(n_nodes);

  if (j == 0) {
    auto inbox = sched.exchange<V>(
        [](net::NodeId u) { return dc::bits::flip(u, 0); },
        [&](net::NodeId u) { return value[u]; });
    m.for_each_node([&](net::NodeId u) { recv[u] = std::move(*inbox[u]); });
    return recv;
  }

  // Bit-0 value of the nodes with a direct dimension-j link.
  const unsigned direct0 = j % 2 == 0 ? 0u : 1u;

  // Cycle 1: indirect nodes ship their value across the cross-edge.
  auto gathered = sched.exchange<V>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) == direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u) { return value[u]; });

  // Cycle 2: direct nodes exchange (own value, neighbor's value) pairs.
  using Pair = std::pair<V, V>;
  auto pairs = sched.exchange<Pair>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, j);
      },
      [&](net::NodeId u) { return Pair{value[u], *gathered[u]}; });

  // Cycle 3: direct nodes keep the first component and return the second
  // to their cross neighbor.
  auto returned = sched.exchange<V>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u) { return pairs[u]->second; });
  m.for_each_node([&](net::NodeId u) {
    if (dc::bits::get(u, 0) == direct0) {
      recv[u] = std::move(pairs[u]->first);
    } else {
      recv[u] = std::move(*returned[u]);
    }
  });
  return recv;
}

/// Block form of the dimension exchange: every node's value is a
/// fixed-width block of T held in the node-major plane
/// `plane[u * width + k]`, and the exchanged blocks land in `recv` (same
/// layout, resized by the callee). Issues exactly the same cycle/destination
/// sequence as the scalar overload — only the payload representation
/// differs: cycle 2's combined relay message is one 2*width stride (own
/// block then gathered block) instead of a std::pair, so on replay every
/// cycle is a few contiguous sweeps through the SoA planes.
template <typename T>
void dimension_exchange_blocks(sim::Machine& m, sim::ObliviousSection& sched,
                               const net::RecursiveDualCube& r, unsigned j,
                               const std::vector<T>& plane, std::size_t width,
                               std::vector<T>& recv) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  DC_REQUIRE(width >= 1, "block width must be >= 1");
  DC_REQUIRE(plane.size() == r.node_count() * width,
             "one width-sized block per node required");
  const std::size_t n_nodes = r.node_count();
  recv.resize(n_nodes * width);

  const auto own = [&](net::NodeId u) { return plane.data() + u * width; };

  if (j == 0) {
    auto inbox = sched.exchange_blocks<T>(
        width, [](net::NodeId u) { return dc::bits::flip(u, 0); },
        [&](net::NodeId u, T* dst) { std::copy_n(own(u), width, dst); });
    m.for_each_node([&](net::NodeId u) {
      std::copy_n(inbox.block(u), width, recv.data() + u * width);
    });
    return;
  }

  // Bit-0 value of the nodes with a direct dimension-j link.
  const unsigned direct0 = j % 2 == 0 ? 0u : 1u;

  // Cycle 1: indirect nodes ship their block across the cross-edge.
  auto gathered = sched.exchange_blocks<T>(
      width,
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) == direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u, T* dst) { std::copy_n(own(u), width, dst); });

  // Cycle 2: direct nodes exchange (own block ‖ gathered block) strides.
  auto pairs = sched.exchange_blocks<T>(
      2 * width,
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, j);
      },
      [&](net::NodeId u, T* dst) {
        std::copy_n(own(u), width, dst);
        std::copy_n(gathered.block(u), width, dst + width);
      });

  // Cycle 3: direct nodes keep the first half and return the second to
  // their cross neighbor.
  auto returned = sched.exchange_blocks<T>(
      width,
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u, T* dst) {
        std::copy_n(pairs.block(u) + width, width, dst);
      });
  m.for_each_node([&](net::NodeId u) {
    const T* const src = dc::bits::get(u, 0) == direct0 ? pairs.block(u)
                                                        : returned.block(u);
    std::copy_n(src, width, recv.data() + u * width);
  });
}

/// Standalone form: opens (and commits) its own schedule section keyed by
/// (order, j), so repeated exchanges along one dimension replay a cached
/// schedule.
template <typename V>
std::vector<V> dimension_exchange(sim::Machine& m,
                                  const net::RecursiveDualCube& r, unsigned j,
                                  const std::vector<V>& value) {
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  sim::ObliviousSection sched(m, "dimension_exchange", {r.order(), j});
  auto recv = dimension_exchange(m, sched, r, j, value);
  sched.commit();
  return recv;
}

}  // namespace dc::core
