// Full dimension exchange on the recursive presentation of the dual-cube.
//
// Section 6 of the paper: a compare-exchange pair (u, u^j) at dimension
// j > 0 has a direct link only for the half of the nodes whose bit 0
// matches the parity of j; the other half must route in three hops
// u → u^0 → (u^0)^j → u^j. The paper charges three time units for the whole
// dimension step; the concrete 1-port schedule we use is:
//
//   cycle 1: every *indirect* node b ships its value to its cross neighbor
//            a = b^0 (cross-edges only);
//   cycle 2: every *direct* node a exchanges the combined message
//            (value[a], value[b]) with its partner a^j over the direct
//            dimension-j link;
//   cycle 3: a forwards value[b^j] (the second component it received) back
//            to b over the cross-edge.
//
// Each node sends at most one and receives at most one message per cycle,
// which the simulator enforces. Dimension 0 is a plain one-cycle exchange.
//
// This primitive carries both the dual-cube bitonic sort (Algorithm 3) and
// the naive hypercube-emulation ablation. The relay pattern is oblivious —
// it depends only on j — so all cycles run through an ObliviousSection:
// callers composing many dimension steps (the sorts) pass their own
// section so the whole composite run compiles to one schedule; the
// standalone overload opens a per-(order, j) section itself.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::core {

/// Exchanges `value` across dimension `j` for every node simultaneously,
/// issuing the cycles into the caller's oblivious section: returns recv
/// with recv[u] = value[u ^ (1<<j)]. Costs 1 communication cycle when
/// j == 0, 3 otherwise.
template <typename V>
std::vector<V> dimension_exchange(sim::Machine& m, sim::ObliviousSection& sched,
                                  const net::RecursiveDualCube& r, unsigned j,
                                  const std::vector<V>& value) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  DC_REQUIRE(value.size() == r.node_count(), "one value per node required");
  const std::size_t n_nodes = r.node_count();
  std::vector<V> recv(n_nodes);

  if (j == 0) {
    auto inbox = sched.exchange<V>(
        [](net::NodeId u) { return dc::bits::flip(u, 0); },
        [&](net::NodeId u) { return value[u]; });
    m.for_each_node([&](net::NodeId u) { recv[u] = std::move(*inbox[u]); });
    return recv;
  }

  // Bit-0 value of the nodes with a direct dimension-j link.
  const unsigned direct0 = j % 2 == 0 ? 0u : 1u;

  // Cycle 1: indirect nodes ship their value across the cross-edge.
  auto gathered = sched.exchange<V>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) == direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u) { return value[u]; });

  // Cycle 2: direct nodes exchange (own value, neighbor's value) pairs.
  using Pair = std::pair<V, V>;
  auto pairs = sched.exchange<Pair>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, j);
      },
      [&](net::NodeId u) { return Pair{value[u], *gathered[u]}; });

  // Cycle 3: direct nodes keep the first component and return the second
  // to their cross neighbor.
  auto returned = sched.exchange<V>(
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      [&](net::NodeId u) { return pairs[u]->second; });
  m.for_each_node([&](net::NodeId u) {
    if (dc::bits::get(u, 0) == direct0) {
      recv[u] = std::move(pairs[u]->first);
    } else {
      recv[u] = std::move(*returned[u]);
    }
  });
  return recv;
}

/// The live result of one block dimension exchange: a zero-copy view over
/// the inbox planes the exchange ended on. `recv(u)` points at the `width`
/// elements node u received — for a relayed dimension that is the cycle-2
/// pairs plane for direct nodes and the cycle-3 return plane for indirect
/// ones, so no copy-out pass runs at all. Move-only (it owns the pooled
/// planes); destroying it recycles them, so consume it before issuing the
/// next block cycle of the same element type if plane reuse matters.
template <typename T>
struct BlockExchange {
  sim::BlockInbox<T> primary;   // j == 0 inbox, or the cycle-2 pairs plane
  sim::BlockInbox<T> returned;  // cycle-3 plane; empty when not relayed
  std::size_t width = 0;
  unsigned direct0 = 0;
  bool relayed = false;

  /// The block node u received this exchange (`width` elements).
  const T* recv(net::NodeId u) const {
    if (!relayed) return primary.block(u);
    // Direct nodes keep the first half of the pair they exchanged; indirect
    // nodes read the half their relay returned on cycle 3.
    return dc::bits::get(u, 0) == direct0 ? primary.block(u)
                                          : returned.block(u);
  }
};

/// Block form of the dimension exchange: every node's value is a
/// fixed-width block of T held in the node-major plane
/// `plane[u * width + k]`. Issues exactly the same cycle/destination
/// sequence as the scalar overload — only the payload representation
/// differs: cycle 2's combined relay message is one 2*width stride (own
/// block then gathered block) instead of a std::pair. Every cycle's source
/// is described as a PlaneSrc / PlanePairSrc over either the caller's plane
/// or the previous cycle's inbox plane, so on replay the whole exchange is
/// a few plane-to-plane kernel sweeps with no per-sender callbacks and no
/// copy-out — the result is a view (BlockExchange) into the final planes.
template <typename T>
BlockExchange<T> dimension_exchange_blocks(sim::Machine& m,
                                           sim::ObliviousSection& sched,
                                           const net::RecursiveDualCube& r,
                                           unsigned j,
                                           const std::vector<T>& plane,
                                           std::size_t width) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  DC_REQUIRE(width >= 1, "block width must be >= 1");
  DC_REQUIRE(plane.size() == r.node_count() * width,
             "one width-sized block per node required");

  BlockExchange<T> ex;
  ex.width = width;

  if (j == 0) {
    ex.primary = sched.exchange_blocks<T>(
        width, [](net::NodeId u) { return dc::bits::flip(u, 0); },
        sim::PlaneSrc<T>{plane.data(), width});
    return ex;
  }

  // Bit-0 value of the nodes with a direct dimension-j link.
  ex.direct0 = j % 2 == 0 ? 0u : 1u;
  ex.relayed = true;
  const unsigned direct0 = ex.direct0;

  // Cycle 1: indirect nodes ship their block across the cross-edge.
  auto gathered = sched.exchange_blocks<T>(
      width,
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) == direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      sim::PlaneSrc<T>{plane.data(), width});

  // Cycle 2: direct nodes exchange (own block ‖ gathered block) strides.
  ex.primary = sched.exchange_blocks<T>(
      2 * width,
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, j);
      },
      sim::PlanePairSrc<T>{plane.data(), width, gathered.data(),
                           gathered.stride(), width});

  // Cycle 3: direct nodes keep the first half and return the second to
  // their cross neighbor.
  ex.returned = sched.exchange_blocks<T>(
      width,
      [&](net::NodeId u) -> net::NodeId {
        if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
        return dc::bits::flip(u, 0);
      },
      sim::PlaneSrc<T>{ex.primary.data() + width, ex.primary.stride()});
  return ex;
}

/// Copy-out form of the block dimension exchange: the exchanged blocks land
/// in `recv` (node-major plane, resized by the callee). Thin wrapper over
/// the view-returning overload for callers that need an owned plane.
template <typename T>
void dimension_exchange_blocks(sim::Machine& m, sim::ObliviousSection& sched,
                               const net::RecursiveDualCube& r, unsigned j,
                               const std::vector<T>& plane, std::size_t width,
                               std::vector<T>& recv) {
  const std::size_t n_nodes = r.node_count();
  recv.resize(n_nodes * width);
  const auto ex = dimension_exchange_blocks(m, sched, r, j, plane, width);
  m.for_each_node([&](net::NodeId u) {
    std::copy_n(ex.recv(u), width, recv.data() + u * width);
  });
}

/// Standalone form: opens (and commits) its own schedule section keyed by
/// (order, j), so repeated exchanges along one dimension replay a cached
/// schedule.
template <typename V>
std::vector<V> dimension_exchange(sim::Machine& m,
                                  const net::RecursiveDualCube& r, unsigned j,
                                  const std::vector<V>& value) {
  DC_REQUIRE(j < r.label_bits(), "dimension out of range");
  sim::ObliviousSection sched(m, "dimension_exchange", {r.order(), j});
  auto recv = dimension_exchange(m, sched, r, j, value);
  sched.commit();
  return recv;
}

}  // namespace dc::core
