// Sequential reference implementations the parallel algorithms are tested
// and benchmarked against.
#pragma once

#include <vector>

#include "core/ops.hpp"

namespace dc::core {

/// Inclusive scan: out[i] = c[0] ⊕ ... ⊕ c[i], combined left to right.
template <Monoid M>
std::vector<typename M::value_type> seq_inclusive_scan(
    const M& op, const std::vector<typename M::value_type>& c) {
  std::vector<typename M::value_type> out(c.size(), op.identity());
  typename M::value_type acc = op.identity();
  for (std::size_t i = 0; i < c.size(); ++i) {
    acc = op.combine(acc, c[i]);
    out[i] = acc;
  }
  return out;
}

/// Exclusive (diminished) scan: out[i] = c[0] ⊕ ... ⊕ c[i-1];
/// out[0] = identity.
template <Monoid M>
std::vector<typename M::value_type> seq_exclusive_scan(
    const M& op, const std::vector<typename M::value_type>& c) {
  std::vector<typename M::value_type> out(c.size(), op.identity());
  typename M::value_type acc = op.identity();
  for (std::size_t i = 0; i < c.size(); ++i) {
    out[i] = acc;
    acc = op.combine(acc, c[i]);
  }
  return out;
}

/// Total: c[0] ⊕ ... ⊕ c[n-1].
template <Monoid M>
typename M::value_type seq_reduce(
    const M& op, const std::vector<typename M::value_type>& c) {
  typename M::value_type acc = op.identity();
  for (const auto& x : c) acc = op.combine(acc, x);
  return acc;
}

}  // namespace dc::core
