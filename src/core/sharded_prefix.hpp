// Sharded front-end of Algorithm 2: D_prefix at mega scale through
// sim/shard.hpp, bit-identical to core/dual_prefix.hpp on the flat engine.
//
// Under the shard layout (topology/shard_plan.hpp) the paper's Section 3
// data arrangement flattens perfectly: shard k's local index l holds global
// data index k * shard_nodes + l — the class/cluster/node permutation of
// dual_prefix_index_of_node is absorbed by the cluster-key ordering, so
// data loads and result emission are contiguous streams and the sink
// receives strictly ascending runs tiling [0, N).
//
// Execution maps the five steps onto two per-shard passes around one
// compact inter-shard exchange:
//
//   Pass A (per shard; real machine work) — step 1's in-cluster
//     Cube_prefix: n-1 fused exchange+combine sweeps (or tiled-replay /
//     interpreted exchanges plus compute steps, by engine mode) over the
//     shard's t/s slices. After the pass, t is
//     uniform across each cluster (the full cluster total), so one element
//     per cluster — read at local node 0 — is the entire contribution the
//     shard ever sends across cluster boundaries.
//
//   Compact exchange (host-side scan, "phase:shard_exchange") — steps 2-3
//     collapse: the cross-edge exchange delivers T1[j] to class-0 cluster
//     j's slot and T0[m] to class-1's, and the diminished in-cluster pass
//     over those totals yields per-cluster scalars P0[m] = combine of
//     T0[m' < m], P1[j] likewise, and the class-0 grand total G0. The
//     engine books the virtualized model costs (n+1 cycles, n-1 steps;
//     see end_run) so Counters match a flat run exactly.
//
//   Pass B (per shard; real machine work) — step 4's fold
//     s = combine(R, s) with R = P0[cluster] (class 0) / P1[cluster]
//     (class 1), and step 5's class-1 fold s = combine(G0, s); then the
//     shard's result slice streams to the sink.
//
// Spilling runs write each shard's s slice out of core between the passes
// (sim/shard.hpp's memory model); everything else is identical.
//
// When even one shard's working set exceeds the budget the run goes fully
// out of core: t and s live in two regions of the spill file and every
// synchronous cycle (and every Pass B step) streams them through one
// cluster-aligned window sized by the budget. Cycle-synchrony within the
// shard is a fidelity contract — each cycle's sweep completes over the
// whole shard before the next begins — so an out-of-core shard re-streams
// its state once per cycle; adding shards until the working set fits the
// budget is what buys that cost back. Results, Counters and edge loads
// stay bit-identical (the streamed sweeps book through the same machine
// primitives); only the sink granularity changes, from one call per shard
// to one per window.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"
#include "sim/shard.hpp"

namespace dc::core {

/// Runs Algorithm 2 on the sharded engine, streaming inputs and outputs.
/// `data_of(i)` returns the i-th input (global data index order, exactly
/// dual_prefix's `data[i]`); `sink(base, values, count)` receives finished
/// runs — prefixes for data indices [base, base+count) — in ascending base
/// order, tiling [0, N) exactly once: one call per shard, or one per
/// cluster-aligned window when the run streams out of core. The run
/// pointer is only valid during the call. Results, Counters and edge loads are
/// bit-identical to dual_prefix on a flat machine.
template <Monoid M, typename DataFn, typename SinkFn>
  requires std::invocable<DataFn&, dc::u64> &&
           std::invocable<SinkFn&, dc::u64, const typename M::value_type*,
                          std::size_t>
void sharded_dual_prefix(sim::ShardEngine& eng, const M& op, DataFn&& data_of,
                         SinkFn&& sink, bool inclusive = true) {
  using V = typename M::value_type;
  const net::ShardPlan& plan = eng.plan();
  const unsigned w = plan.order() - 1;
  const dc::u64 total_nodes = eng.node_count();
  const dc::u64 shard_n = eng.shard_nodes();
  const dc::u64 csize = plan.cluster_size();
  const dc::u64 per_class = csize;  // clusters per class = 2^(n-1) = csize

  auto& scr = eng.template scratch<V>();
  eng.begin_run(sizeof(V), std::is_trivially_copyable_v<V>);
  const bool spill = eng.spilling();
  const bool oc = eng.out_of_core_run();
  const dc::u64 win =
      oc ? static_cast<dc::u64>(eng.oc_window_nodes(sizeof(V))) : shard_n;
  scr.t.resize(static_cast<std::size_t>(win));
  scr.s.resize(
      static_cast<std::size_t>(oc ? win : (spill ? shard_n : total_nodes)));
  scr.totals0.resize(static_cast<std::size_t>(per_class));
  scr.totals1.resize(static_cast<std::size_t>(per_class));
  scr.prefix0.resize(static_cast<std::size_t>(per_class));
  scr.prefix1.resize(static_cast<std::size_t>(per_class));

  // Path selection mirrors the flat engine: the fused and tiled-replay
  // paths need a plane-eligible payload, no hot-spot accounting (neither
  // carries CSR edge slots) and the compiled schedule path; otherwise
  // every cycle interprets through comm_cycle with full validation. Within
  // the compiled regime the engine's exchange mode picks fused (default —
  // one bandwidth-bound sweep per cycle, no comm plane) or tiled replay
  // (the compiled cluster slice through the SIMD plane kernels).
  const bool compiled_ok =
      detail::kPlaneEligible<V> && !eng.edge_load_enabled() &&
      eng.machine(0).schedule_path() == sim::SchedulePath::kCompiled;
  const sim::ShardExchangeMode mode =
      compiled_ok ? eng.exchange_mode() : sim::ShardExchangeMode::kInterpreted;
  std::shared_ptr<const sim::Schedule> slice;
  if (mode == sim::ShardExchangeMode::kTiledReplay)
    slice = eng.cluster_schedule();
  DC_REQUIRE(!oc || mode == sim::ShardExchangeMode::kFused,
             "out-of-core streaming requires the fused exchange path "
             "(plane-eligible payload, compiled schedule path, no edge "
             "loads, fused engine mode); raise the budget otherwise");

  // ---- Pass A: step 1 (in-cluster inclusive/diminished prefix) --------
  for (unsigned k = 0; k < eng.shard_count(); ++k) {
    sim::Machine& mach = eng.machine(k);
    const dc::u64 data_base = dc::u64{k} * shard_n;
    if (oc) {
      // Out-of-core pass: t and s live in two spill-file regions
      // ([0, N*e) and [N*e, 2N*e), global data-index offsets) and every
      // cycle streams the whole shard through the window — the sweep is
      // cluster-local (stride < cluster size <= window), so windows are
      // independent within a cycle. Cycle 0 generates the inputs in
      // place of a read; the last cycle extracts the cluster totals and
      // retires t (dead afterwards), writing only s back.
      V* const t_win = scr.t.data();
      V* const s_win = scr.s.data();
      const dc::u64 s_region = total_nodes * sizeof(V);
      const auto& clusters = plan.shard_clusters(k);
      const auto stage_window = [&](dc::u64 ws, dc::u64 len) {
        for (dc::u64 j = 0; j < len; ++j)
          t_win[j] = data_of(data_base + ws + j);
        if (inclusive) {
          for (dc::u64 j = 0; j < len; ++j) s_win[j] = t_win[j];
        } else {
          for (dc::u64 j = 0; j < len; ++j) s_win[j] = op.identity();
        }
      };
      const auto take_totals = [&](dc::u64 ws, dc::u64 len) {
        for (dc::u64 cb = ws / csize; cb < (ws + len) / csize; ++cb) {
          const auto& cr = clusters[static_cast<std::size_t>(cb)];
          (cr.cls == 0 ? scr.totals0
                       : scr.totals1)[static_cast<std::size_t>(cr.cluster)] =
              t_win[(cb - ws / csize) * csize];
        }
      };
      for (unsigned i = 0; i < w; ++i) {
        const dc::u64 stride = dc::u64{1} << i;
        mach.comm_compute_cycle_fused_blocks(1, [&](std::size_t,
                                                    std::size_t) {
          for (dc::u64 ws = 0; ws < shard_n; ws += win) {
            const dc::u64 len = std::min(win, shard_n - ws);
            const dc::u64 off = (data_base + ws) * sizeof(V);
            const std::size_t bytes =
                static_cast<std::size_t>(len) * sizeof(V);
            if (i == 0) {
              stage_window(ws, len);
            } else {
              eng.spill_read_at(off, t_win, bytes);
              eng.spill_read_at(s_region + off, s_win, bytes);
            }
            for (dc::u64 g = 0; g < len; g += 2 * stride) {
              V* const tl = t_win + g;
              V* const th = t_win + g + stride;
              V* const sh = s_win + g + stride;
              for (dc::u64 j = 0; j < stride; ++j) {
                const V c = op.combine(tl[j], th[j]);
                sh[j] = op.combine(tl[j], sh[j]);
                tl[j] = c;
                th[j] = c;
              }
            }
            if (i + 1 == w) {
              take_totals(ws, len);
            } else {
              eng.spill_write_at(off, t_win, bytes);
            }
            eng.spill_write_at(s_region + off, s_win, bytes);
          }
          mach.add_ops(shard_n / 2 * 3);
        });
      }
      if (w == 0) {  // degenerate D_1: no cycles; stage and retire directly
        for (dc::u64 ws = 0; ws < shard_n; ws += win) {
          const dc::u64 len = std::min(win, shard_n - ws);
          stage_window(ws, len);
          take_totals(ws, len);
          eng.spill_write_at(s_region + (data_base + ws) * sizeof(V), s_win,
                             static_cast<std::size_t>(len) * sizeof(V));
        }
      }
      eng.after_shard_pass(k);
      continue;
    }
    V* const t_sl = scr.t.data();
    V* const s_sl = spill ? scr.s.data() : scr.s.data() + k * shard_n;
    mach.for_each_node(
        [&](net::NodeId l) { t_sl[l] = data_of(data_base + l); });
    if (inclusive) {
      mach.for_each_node([&](net::NodeId l) { s_sl[l] = t_sl[l]; });
    } else {
      mach.for_each_node([&](net::NodeId l) { s_sl[l] = op.identity(); });
    }
    for (unsigned i = 0; i < w; ++i) {
      // Bit i of the local node-ID field (the low n-1 bits) is the flipped
      // label bit — the same test dual_prefix makes on the global label's
      // node-ID field of either class. On the fused path the exchange
      // partner pair (lo = bit clear, hi = bit set) collapses: both sides'
      // new t is combine(t[lo], t[hi]) — the clear side computes
      // combine(own, received), the set side combine(received, own), and
      // those are the same expression — so one combine serves both while
      // the model still charges the 3 per-pair applications the unfused
      // step would have applied.
      if (mode == sim::ShardExchangeMode::kFused) {
        const dc::u64 stride = dc::u64{1} << i;
        mach.comm_compute_cycle_fused_blocks(
            static_cast<std::size_t>(plan.clusters_per_shard()),
            [&](std::size_t b_lo, std::size_t b_hi) {
              for (dc::u64 g = b_lo * csize; g < b_hi * csize;
                   g += 2 * stride) {
                V* const tl = t_sl + g;
                V* const th = t_sl + g + stride;
                V* const sh = s_sl + g + stride;
                for (dc::u64 j = 0; j < stride; ++j) {
                  const V c = op.combine(tl[j], th[j]);
                  sh[j] = op.combine(tl[j], sh[j]);
                  tl[j] = c;
                  th[j] = c;
                }
              }
              mach.add_ops((b_hi - b_lo) * csize / 2 * 3);
            });
        continue;
      }
      const auto step = [&](auto&& recv) {
        mach.compute_step([&](net::NodeId l) {
          const V& temp = recv(l);
          if (dc::bits::get(l, i) == 1) {
            s_sl[l] = op.combine(temp, s_sl[l]);
            t_sl[l] = op.combine(temp, t_sl[l]);
            mach.add_ops(2);
          } else {
            t_sl[l] = op.combine(t_sl[l], temp);
            mach.add_ops(1);
          }
        });
      };
      if (mode == sim::ShardExchangeMode::kTiledReplay) {
        auto inbox = mach.comm_cycle_scheduled_blocks_tiled<V>(
            slice->cycle(i), static_cast<std::size_t>(plan.clusters_per_shard()),
            1, sim::PlaneSrc<V>{scr.t.data(), 1});
        step([&](net::NodeId l) -> const V& { return *inbox.block(l); });
      } else {
        auto inbox = mach.comm_cycle<V>(
            [&](net::NodeId l) -> std::optional<sim::Send<V>> {
              return sim::Send<V>{
                  static_cast<net::NodeId>(l ^ (dc::u64{1} << i)), t_sl[l]};
            });
        step([&](net::NodeId l) -> const V& { return *inbox[l]; });
      }
    }
    // After the full pass t is cluster-uniform (each node holds its
    // cluster's total), so local node 0 of each block carries everything
    // the compact exchange needs.
    const auto& clusters = plan.shard_clusters(k);
    for (std::size_t cb = 0; cb < clusters.size(); ++cb) {
      const auto& cr = clusters[cb];
      (cr.cls == 0 ? scr.totals0
                   : scr.totals1)[static_cast<std::size_t>(cr.cluster)] =
          t_sl[cb * csize];
    }
    if (spill) {
      eng.spill_write(k, s_sl,
                      static_cast<std::size_t>(shard_n) * sizeof(V));
    }
    eng.after_shard_pass(k);
  }

  // ---- Compact exchange: steps 2-3 as per-class scans -----------------
  // Buffer traffic: both classes' totals in, both prefix vectors plus the
  // class-0 grand total back out.
  eng.begin_exchange_phase((2 * static_cast<std::size_t>(plan.clusters_total()) + 1) *
                           sizeof(V));
  V run0 = op.identity();
  for (dc::u64 m = 0; m < per_class; ++m) {
    scr.prefix0[static_cast<std::size_t>(m)] = run0;
    run0 = op.combine(run0, scr.totals0[static_cast<std::size_t>(m)]);
  }
  const V g0 = run0;  // class-0 grand total (step 5's prepend value)
  V run1 = op.identity();
  for (dc::u64 j = 0; j < per_class; ++j) {
    scr.prefix1[static_cast<std::size_t>(j)] = run1;
    run1 = op.combine(run1, scr.totals1[static_cast<std::size_t>(j)]);
  }
  eng.end_exchange_phase();

  // ---- Pass B: steps 4-5 and result emission --------------------------
  for (unsigned k = 0; k < eng.shard_count(); ++k) {
    sim::Machine& mach = eng.machine(k);
    const auto& clusters = plan.shard_clusters(k);
    if (oc) {
      // Streamed steps 4 and 5: each is one whole-shard computation step
      // (step-synchrony is kept, like cycle-synchrony above), so each
      // streams the s region through the window separately. Step 5's
      // pass also hands the finished windows to the sink, so s is never
      // written back.
      V* const s_win = scr.s.data();
      const dc::u64 s_region = total_nodes * sizeof(V);
      const dc::u64 data_base = dc::u64{k} * shard_n;
      mach.compute_step_streamed([&](std::size_t, std::size_t) {
        for (dc::u64 ws = 0; ws < shard_n; ws += win) {
          const dc::u64 len = std::min(win, shard_n - ws);
          const dc::u64 off = s_region + (data_base + ws) * sizeof(V);
          const std::size_t bytes = static_cast<std::size_t>(len) * sizeof(V);
          eng.spill_read_at(off, s_win, bytes);
          for (dc::u64 cb = ws / csize; cb < (ws + len) / csize; ++cb) {
            const auto& cr = clusters[static_cast<std::size_t>(cb)];
            const V& r =
                cr.cls == 0
                    ? scr.prefix0[static_cast<std::size_t>(cr.cluster)]
                    : scr.prefix1[static_cast<std::size_t>(cr.cluster)];
            V* const sv = s_win + (cb - ws / csize) * csize;
            for (dc::u64 j = 0; j < csize; ++j) sv[j] = op.combine(r, sv[j]);
          }
          eng.spill_write_at(off, s_win, bytes);
        }
        mach.add_ops(shard_n);
      });
      mach.compute_step_streamed([&](std::size_t, std::size_t) {
        for (dc::u64 ws = 0; ws < shard_n; ws += win) {
          const dc::u64 len = std::min(win, shard_n - ws);
          const dc::u64 off = s_region + (data_base + ws) * sizeof(V);
          eng.spill_read_at(off, s_win,
                            static_cast<std::size_t>(len) * sizeof(V));
          dc::u64 folded = 0;
          for (dc::u64 cb = ws / csize; cb < (ws + len) / csize; ++cb) {
            if (clusters[static_cast<std::size_t>(cb)].cls != 1) continue;
            V* const sv = s_win + (cb - ws / csize) * csize;
            for (dc::u64 j = 0; j < csize; ++j) sv[j] = op.combine(g0, sv[j]);
            folded += csize;
          }
          mach.add_ops(folded);
          sink(data_base + ws, static_cast<const V*>(s_win),
               static_cast<std::size_t>(len));
        }
      });
      eng.after_shard_pass(k);
      continue;
    }
    V* const s_sl = spill ? scr.s.data() : scr.s.data() + k * shard_n;
    if (spill) {
      eng.spill_read(k, s_sl, static_cast<std::size_t>(shard_n) * sizeof(V));
    }
    mach.compute_step([&](net::NodeId l) {
      const auto& cr = clusters[static_cast<std::size_t>(l >> w)];
      const V& r = cr.cls == 0
                       ? scr.prefix0[static_cast<std::size_t>(cr.cluster)]
                       : scr.prefix1[static_cast<std::size_t>(cr.cluster)];
      s_sl[l] = op.combine(r, s_sl[l]);
      mach.add_ops(1);
    });
    mach.compute_step([&](net::NodeId l) {
      if (clusters[static_cast<std::size_t>(l >> w)].cls == 1) {
        s_sl[l] = op.combine(g0, s_sl[l]);
        mach.add_ops(1);
      }
    });
    sink(dc::u64{k} * shard_n, static_cast<const V*>(s_sl),
         static_cast<std::size_t>(shard_n));
    eng.after_shard_pass(k);
  }

  // Virtualized model costs of steps 2-5's communication and step 3's
  // computation (Pass B's folds were real): the two cross-edge cycles and
  // the n-1 distribution cycles move one message per node each; step 3's
  // n-1 compute steps apply 2 ops on set-bit nodes and 1 on the rest —
  // exactly half the nodes each, so 3N/2 per step.
  eng.end_run(/*comm_cycles=*/dc::u64{w} + 2,
              /*messages=*/(dc::u64{w} + 2) * total_nodes,
              /*comp_steps=*/w,
              /*ops=*/dc::u64{w} * (total_nodes / 2) * 3);
}

/// Convenience form: whole-vector input and output, exactly dual_prefix's
/// signature shape. Still runs the streaming engine underneath (and spills
/// if the engine's budget demands it); use the streaming form when even
/// the input or output vector must not be materialized.
template <Monoid M>
std::vector<typename M::value_type> sharded_dual_prefix(
    sim::ShardEngine& eng, const M& op,
    const std::vector<typename M::value_type>& data, bool inclusive = true) {
  using V = typename M::value_type;
  DC_REQUIRE(data.size() == eng.node_count(), "one input per node required");
  std::vector<V> out(data.size(), op.identity());
  sharded_dual_prefix(
      eng, op, [&](dc::u64 i) -> const V& { return data[i]; },
      [&](dc::u64 base, const V* values, std::size_t count) {
        std::copy(values, values + count,
                  out.begin() + static_cast<std::ptrdiff_t>(base));
      },
      inclusive);
  return out;
}

}  // namespace dc::core
