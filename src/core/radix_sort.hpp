// Radix sort on the dual-cube — the paper's "first technique" (Algorithm 2)
// driving a non-comparison sort: every pass is a stable split by one key
// bit, computed as a diminished prefix of 0/1 flags plus an all-reduce for
// the zero count, followed by a permutation routing.
//
// For b-bit keys: b passes, each costing 2n cycles of prefix + 2n cycles
// of all-reduce + a permutation drain. Stability of each split makes the
// whole sort correct (classic LSD radix argument). Communication grows
// with the key width instead of quadratically with n — another point in
// the design space quantified by bench/tab_sort_alternatives.
#pragma once

#include <vector>

#include "collectives/reduce.hpp"
#include "core/dual_prefix.hpp"
#include "sim/store_forward.hpp"
#include "topology/routing.hpp"

namespace dc::core {

struct RadixSortStats {
  dc::u64 passes = 0;
  dc::u64 routing_cycles = 0;  ///< permutation drains, summed over passes
};

/// Sorts `keys` (index = global data index) ascending by the low
/// `key_bits` bits (keys must fit; checked). Stable within each pass.
inline RadixSortStats radix_sort(sim::Machine& m, const net::DualCube& d,
                                 std::vector<dc::u64>& keys,
                                 unsigned key_bits) {
  DC_REQUIRE(keys.size() == d.node_count(), "one key per node required");
  DC_REQUIRE(key_bits >= 1 && key_bits <= 64, "key width out of range");
  const std::size_t n_nodes = d.node_count();
  if (key_bits < 64) {
    for (const dc::u64 k : keys)
      DC_REQUIRE(k < dc::bits::pow2(key_bits), "key exceeds declared width");
  }
  const Plus<dc::u64> plus;
  RadixSortStats stats;

  for (unsigned bit = 0; bit < key_bits; ++bit) {
    ++stats.passes;
    // flag = 1 for keys whose current bit is 0 (they go to the front).
    std::vector<dc::u64> flag(n_nodes);
    m.compute_step([&](net::NodeId u) {
      const auto idx = dual_prefix_index_of_node(d, u);
      flag[idx] = dc::bits::get(keys[idx], bit) == 0 ? 1 : 0;
      m.add_ops(1);
    });

    // z[i] = zeros before index i (diminished prefix, 2n cycles).
    const auto zeros_before =
        dual_prefix(m, d, plus, flag, {}, /*inclusive=*/false);
    // Z = total zeros, known to every node via all-reduce (2n cycles).
    const dc::u64 total_zeros =
        collectives::dual_allreduce(m, d, plus, flag).front();

    // Stable destination: zeros keep order at the front, ones at the back.
    std::vector<net::NodeId> dest(n_nodes);
    m.compute_step([&](net::NodeId u) {
      const auto idx = dual_prefix_index_of_node(d, u);
      if (flag[idx]) {
        dest[idx] = zeros_before[idx];
      } else {
        dest[idx] = total_zeros + (idx - zeros_before[idx]);
      }
      m.add_ops(1);
    });

    // Permutation routing of data indices (map through the arrangement to
    // physical nodes for the actual paths).
    std::vector<net::NodeId> node_dest(n_nodes);
    for (net::NodeId u = 0; u < n_nodes; ++u) {
      node_dest[u] = dual_prefix_node_of_index(
          d, dest[dual_prefix_index_of_node(d, u)]);
    }
    const auto report = sim::route_packets(
        m, node_dest,
        [&](net::NodeId s, net::NodeId v) { return net::route_dual_cube(d, s, v); });
    stats.routing_cycles += report.cycles;

    std::vector<dc::u64> next(n_nodes);
    m.for_each_node([&](net::NodeId u) {
      const auto idx = dual_prefix_index_of_node(d, u);
      next[dest[idx]] = keys[idx];
    });
    keys = std::move(next);
  }
  return stats;
}

}  // namespace dc::core
