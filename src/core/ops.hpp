// Associative binary operations (monoids) for parallel prefix computation.
//
// The paper's prefix algorithms assume only that ⊕ is associative — not
// commutative. Every algorithm in src/core combines operands strictly in
// index order, and the test suite runs the non-commutative monoids below
// (string concatenation, 2x2 matrix product) to certify that property.
//
// A Monoid provides:
//   * value_type        — the element type;
//   * identity()        — the neutral element;
//   * combine(a, b)     — a ⊕ b, associative.
#pragma once

#include <algorithm>
#include <array>
#include <concepts>
#include <cstdint>
#include <limits>
#include <string>

namespace dc::core {

template <typename M>
concept Monoid = requires(const M m, const typename M::value_type& a,
                          const typename M::value_type& b) {
  typename M::value_type;
  { m.identity() } -> std::convertible_to<typename M::value_type>;
  { m.combine(a, b) } -> std::convertible_to<typename M::value_type>;
};

/// Addition. For unsigned types this wraps modulo 2^w, which keeps the
/// operation exactly associative regardless of magnitude.
template <typename T>
struct Plus {
  using value_type = T;
  T identity() const { return T{}; }
  T combine(const T& a, const T& b) const { return static_cast<T>(a + b); }
};

/// Minimum, with +infinity (numeric max) as identity.
template <typename T>
struct Min {
  using value_type = T;
  T identity() const { return std::numeric_limits<T>::max(); }
  T combine(const T& a, const T& b) const { return std::min(a, b); }
};

/// Maximum, with -infinity (numeric lowest) as identity.
template <typename T>
struct Max {
  using value_type = T;
  T identity() const { return std::numeric_limits<T>::lowest(); }
  T combine(const T& a, const T& b) const { return std::max(a, b); }
};

/// Bitwise XOR.
template <typename T>
struct Xor {
  using value_type = T;
  T identity() const { return T{}; }
  T combine(const T& a, const T& b) const { return static_cast<T>(a ^ b); }
};

/// String concatenation — associative but NOT commutative. Prefixes under
/// this monoid spell out the exact left-to-right combination order, which
/// is how the tests prove the algorithms never reorder operands.
struct Concat {
  using value_type = std::string;
  std::string identity() const { return {}; }
  std::string combine(const std::string& a, const std::string& b) const {
    return a + b;
  }
};

/// 2x2 matrix over Z/2^64 (wraparound arithmetic). Associative but not
/// commutative; a second, cheaper non-commutativity witness.
struct Mat2 {
  using value_type = std::array<std::uint64_t, 4>;  // row-major [a b; c d]

  value_type identity() const { return {1, 0, 0, 1}; }

  value_type combine(const value_type& x, const value_type& y) const {
    return {
        x[0] * y[0] + x[1] * y[2], x[0] * y[1] + x[1] * y[3],
        x[2] * y[0] + x[3] * y[2], x[2] * y[1] + x[3] * y[3],
    };
  }
};

}  // namespace dc::core
