// Enumeration (rank) sort on the dual-cube — future-work item 3 ("more
// application algorithms using the proposed techniques"), built from this
// library's collectives: an all-gather puts every key at every node in 2n
// cycles (the cluster technique again), each node computes its key's rank
// locally, and one store-and-forward permutation delivers every key to its
// rank position. Ties break by source index, so the sort is stable.
//
// Compared with Algorithm 3 (6n²−7n+2 cycles of constant-size messages),
// enumeration sort spends only Θ(n) cycles plus a permutation drain, but
// its messages grow to Θ(N) keys and every node does Θ(N) local work — the
// classic latency-vs-bandwidth trade, quantified in
// bench/tab_sort_alternatives.
#pragma once

#include <algorithm>
#include <vector>

#include "collectives/allgather.hpp"
#include "sim/store_forward.hpp"
#include "topology/routing.hpp"

namespace dc::core {

/// Sorts `keys` (index = node label) ascending. Returns the routing report
/// of the placement phase.
template <typename Key>
sim::RoutingReport enumeration_sort(sim::Machine& m, const net::DualCube& d,
                                    std::vector<Key>& keys) {
  DC_REQUIRE(keys.size() == d.node_count(), "one key per node required");
  const std::size_t n_nodes = d.node_count();

  // Phase 1: every node learns every key (2n cycles).
  const auto all = collectives::dual_allgather(m, d, keys);

  // Phase 2: local rank computation — one parallel step of N compares per
  // node; rank = #(smaller keys) + #(equal keys at lower source index).
  std::vector<net::NodeId> rank(n_nodes);
  m.compute_step([&](net::NodeId u) {
    const auto& mine = all[u][u];
    net::NodeId r = 0;
    for (net::NodeId v = 0; v < n_nodes; ++v) {
      if (all[u][v] < mine || (all[u][v] == mine && v < u)) ++r;
    }
    rank[u] = r;
    m.add_ops(n_nodes);
  });

  // Phase 3: permutation routing key -> rank position.
  const auto report = sim::route_packets(m, rank, [&](net::NodeId s,
                                                      net::NodeId v) {
    return net::route_dual_cube(d, s, v);
  });

  // The packet from u (carrying keys[u]) arrived at rank[u]; place values.
  std::vector<Key> sorted(n_nodes);
  m.for_each_node([&](net::NodeId u) { sorted[rank[u]] = keys[u]; });
  keys = std::move(sorted);
  return report;
}

}  // namespace dc::core
