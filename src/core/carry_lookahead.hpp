// Carry-lookahead addition of big numbers — the textbook application of
// parallel prefix (Hillis & Steele / Ladner-Fischer), run here on the
// dual-cube: adding two N*64-bit integers distributed one limb per node.
//
// Per-limb carry behaviour forms the 3-element monoid {Kill, Propagate,
// Generate} with combine(a, b) = (b == Propagate ? a : b) — associative,
// NOT commutative. The *diminished* prefix under this monoid yields every
// limb's incoming carry in one D_prefix pass (2n cycles), replacing the
// length-N sequential carry chain.
#pragma once

#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"

namespace dc::core {

/// Carry state of a limb addition.
enum class Carry : std::uint8_t {
  kKill = 0,       ///< limb sum < 2^64 - 1: absorbs any incoming carry
  kPropagate = 1,  ///< limb sum == 2^64 - 1: forwards the incoming carry
  kGenerate = 2,   ///< limb sum >= 2^64: emits a carry regardless
};

/// The carry monoid: identity is Propagate (forwards whatever comes in).
struct CarryOp {
  using value_type = Carry;
  Carry identity() const { return Carry::kPropagate; }
  Carry combine(const Carry& a, const Carry& b) const {
    return b == Carry::kPropagate ? a : b;
  }
};

/// result = a + b over N limbs (little-endian, limb i at global index i),
/// computed with one Algorithm-2 pass. Returns the final carry out.
inline bool carry_lookahead_add(sim::Machine& m, const net::DualCube& d,
                                const std::vector<dc::u64>& a,
                                const std::vector<dc::u64>& b,
                                std::vector<dc::u64>& result) {
  DC_REQUIRE(a.size() == d.node_count() && b.size() == d.node_count(),
             "one limb per node required");
  const std::size_t n_limbs = a.size();
  const CarryOp op;

  // Local limb sums and carry states (one parallel step).
  std::vector<dc::u64> partial(n_limbs);
  std::vector<Carry> state(n_limbs);
  m.compute_step([&](net::NodeId u) {
    const auto i = dual_prefix_index_of_node(d, u);
    partial[i] = a[i] + b[i];  // mod 2^64
    if (partial[i] < a[i]) {
      state[i] = Carry::kGenerate;  // overflowed already
    } else if (partial[i] == ~dc::u64{0}) {
      state[i] = Carry::kPropagate;  // one more would overflow
    } else {
      state[i] = Carry::kKill;
    }
    m.add_ops(1);
  });

  // Incoming carry of limb i = combine of states 0..i-1, with "no carry
  // into limb 0" expressed by treating Kill as the left boundary: a
  // diminished prefix whose identity (Propagate) forwards the boundary,
  // which we resolve to 0 at the end.
  const auto incoming = dual_prefix(m, d, op, state, {}, /*inclusive=*/false);

  bool carry_out = false;
  result.assign(n_limbs, 0);
  m.compute_step([&](net::NodeId u) {
    const auto i = dual_prefix_index_of_node(d, u);
    // Propagate at the boundary means "no carry" (nothing below limb 0).
    const bool cin = incoming[i] == Carry::kGenerate;
    result[i] = partial[i] + (cin ? 1 : 0);
    m.add_ops(1);
  });
  // Carry out of the whole sum = combined state of all limbs.
  const Carry total =
      op.combine(incoming[n_limbs - 1], state[n_limbs - 1]);
  carry_out = total == Carry::kGenerate;
  return carry_out;
}

/// Sequential reference: ripple-carry addition. Returns the carry out.
inline bool seq_ripple_add(const std::vector<dc::u64>& a,
                           const std::vector<dc::u64>& b,
                           std::vector<dc::u64>& result) {
  result.assign(a.size(), 0);
  bool carry = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const dc::u64 s = a[i] + b[i];
    const dc::u64 t = s + (carry ? 1 : 0);
    const bool c1 = s < a[i];
    const bool c2 = t < s;
    result[i] = t;
    carry = c1 || c2;
  }
  return carry;
}

}  // namespace dc::core
