// Algorithm 1 of the paper: parallel prefix computation on the hypercube.
//
// An ascend algorithm: each node keeps a running subcube total `t` and a
// running prefix `s`, and exchanges `t` with its dimension-i neighbor for
// i = 0 .. d-1. After dimension i, t[u] is the ⊕ of the inputs over u's
// 2^(i+1)-node aligned block and s[u] is u's prefix within that block.
//
// Operands are always combined in label order (lower-labeled operand on the
// left), so any associative ⊕ works — commutativity is never used.
//
// Cost: d communication steps and d computation steps on Q_d.
#pragma once

#include <vector>

#include "core/ops.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/hypercube.hpp"

namespace dc::core {

/// Per-node output of a prefix pass: the block total `t` and the prefix `s`.
template <typename V>
struct PrefixOutput {
  std::vector<V> total;
  std::vector<V> prefix;
};

/// Runs Algorithm 1 on machine `m`, whose topology must be `q`. `c` holds
/// one input per node (index = node label). With `inclusive` true, the
/// returned prefix at node u is c[0] ⊕ ... ⊕ c[u]; otherwise the diminished
/// prefix c[0] ⊕ ... ⊕ c[u-1] (identity at node 0).
template <Monoid M>
PrefixOutput<typename M::value_type> cube_prefix(
    sim::Machine& m, const net::Hypercube& q, const M& op,
    const std::vector<typename M::value_type>& c, bool inclusive) {
  using V = typename M::value_type;
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&q),
             "machine must run on the given hypercube");
  DC_REQUIRE(c.size() == q.node_count(), "one input per node required");

  PrefixOutput<V> out{c, inclusive ? c : std::vector<V>(c.size(), op.identity())};
  auto& t = out.total;
  auto& s = out.prefix;

  // The exchange pattern per dimension is a fixed pairing, so the whole
  // run compiles to one cached schedule per cube order.
  sim::ObliviousSection sched(m, "cube_prefix", {q.dimensions()});
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto inbox = sched.exchange<V>(
        [&](net::NodeId u) { return q.neighbor(u, i); },
        [&](net::NodeId u) { return t[u]; });
    m.compute_step([&](net::NodeId u) {
      const V& temp = *inbox[u];
      if (dc::bits::get(u, i) == 1) {
        // Partner precedes u in label order: temp ⊕ own, and fold into s.
        s[u] = op.combine(temp, s[u]);
        t[u] = op.combine(temp, t[u]);
        m.add_ops(2);
      } else {
        t[u] = op.combine(t[u], temp);
        m.add_ops(1);
      }
    });
  }
  sched.commit();
  return out;
}

}  // namespace dc::core
