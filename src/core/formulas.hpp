// Closed-form step counts from the paper, used by tests (exact assertions)
// and benches (paper-vs-measured tables).
#pragma once

#include "support/bits.hpp"

namespace dc::core::formulas {

/// Algorithm 1 on Q_d: d communication steps.
constexpr dc::u64 cube_prefix_comm(unsigned d) { return d; }
/// Algorithm 1 on Q_d: d computation steps.
constexpr dc::u64 cube_prefix_comp(unsigned d) { return d; }

/// Theorem 1 bound: T_comm(D_prefix on D_n) <= 2n + 1. The paper schedules
/// step 5 of Algorithm 2 as a cross-edge transfer; our implementation
/// satisfies step 5 with a local ⊕ (the needed value is already resident),
/// so the measured count is 2n.
constexpr dc::u64 dual_prefix_comm_paper(unsigned n) { return 2 * n + 1; }
constexpr dc::u64 dual_prefix_comm_impl(unsigned n) { return 2 * n; }
/// Theorem 1: T_comp(D_prefix on D_n) = 2n.
constexpr dc::u64 dual_prefix_comp(unsigned n) { return 2 * n; }

/// Bitonic sort on Q_d: d(d+1)/2 communication = computation steps.
constexpr dc::u64 cube_bitonic_steps(unsigned d) {
  return dc::u64{d} * (d + 1) / 2;
}

/// Theorem 2 bound: T_comm(D_sort on D_n) <= 6n^2. Exact solution of the
/// recurrence T(n) = T(n-1) + 3(2n-3) + 1 + 3(2n-2) + 1, T(1) = 1.
constexpr dc::u64 dual_sort_comm_bound(unsigned n) { return 6 * dc::u64{n} * n; }
constexpr dc::u64 dual_sort_comm_exact(unsigned n) {
  return 6 * dc::u64{n} * n - 7 * n + 2;
}
/// Theorem 2 bound: T_comp(D_sort on D_n) <= 2n^2. Exact: 2n^2 - n.
constexpr dc::u64 dual_sort_comp_bound(unsigned n) { return 2 * dc::u64{n} * n; }
constexpr dc::u64 dual_sort_comp_exact(unsigned n) {
  return 2 * dc::u64{n} * n - n;
}

/// Naive emulation of Algorithm 1 over all 2n-1 dimensions of the recursive
/// presentation (ablation baseline): dimensions 1..2n-2 need the 3-cycle
/// relayed exchange, dimension 0 is direct.
constexpr dc::u64 emulated_prefix_comm(unsigned n) {
  return 3 * (2 * dc::u64{n} - 2) + 1;
}
constexpr dc::u64 emulated_prefix_comp(unsigned n) { return 2 * dc::u64{n} - 1; }

}  // namespace dc::core::formulas
