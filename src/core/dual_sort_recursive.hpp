// Algorithm 3 exactly as the paper states it: the *recursive* formulation.
//
//   D_sort(D_n, tag):
//     if n = 1: one compare-exchange directed by tag
//     else:
//       D_sort(D^00_(n-1), 0); D_sort(D^01_(n-1), 1);
//       D_sort(D^10_(n-1), 0); D_sort(D^11_(n-1), 1);
//       for j = 2n-3 .. 0:  compare-exchange directed by bit 2n-2
//       for j = 2n-2 .. 0:  compare-exchange directed by tag
//
// The production implementation (dual_sort.hpp) flattens this recursion
// into level-synchronous SPMD passes so that all four recursive calls of a
// level run in the same communication cycles, as they would on a real
// machine. This file keeps the paper's literal shape — the four recursive
// calls execute sequentially on disjoint sub-dual-cubes — as an executable
// specification: the equivalence test asserts both produce identical
// output on identical input, and the flattened version's step count is
// what Theorem 2 charges (the literal recursion, run sequentially, costs
// 4x the comm cycles per level since the sub-sorts do not overlap in the
// simulator's global clock).
#pragma once

#include <functional>
#include <vector>

#include "core/dimension_exchange.hpp"
#include "sim/machine.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::core {

namespace detail {

/// One compare-exchange pass over dimension j restricted to the
/// sub-dual-cube whose labels have `prefix` in bits >= `span_bits`.
/// Nodes outside the subcube stay silent (they are running their own
/// recursive calls in the real machine; here those calls execute earlier
/// or later on the shared clock).
template <typename Key>
void subcube_dimension_step(sim::Machine& m,
                            std::vector<Key>& keys, unsigned span_bits,
                            dc::u64 prefix, unsigned j,
                            const std::function<bool(net::NodeId)>& ascending) {
  const auto in_subcube = [&](net::NodeId u) {
    return (u >> span_bits) == prefix;
  };
  // Relay schedule as in dimension_exchange, but only subcube members act.
  if (j == 0) {
    auto inbox = m.comm_cycle<Key>(
        [&](net::NodeId u) -> std::optional<sim::Send<Key>> {
          if (!in_subcube(u)) return std::nullopt;
          return sim::Send<Key>{dc::bits::flip(u, 0), keys[u]};
        });
    m.compute_step([&](net::NodeId u) {
      if (!inbox[u]) return;
      const bool keep_min = ascending(u) == (dc::bits::get(u, 0) == 0);
      if (keep_min == (*inbox[u] < keys[u])) keys[u] = *inbox[u];
      m.add_ops(1);
    });
    return;
  }
  const unsigned direct0 = j % 2 == 0 ? 0u : 1u;
  auto gathered = m.comm_cycle<Key>(
      [&](net::NodeId u) -> std::optional<sim::Send<Key>> {
        if (!in_subcube(u) || dc::bits::get(u, 0) == direct0)
          return std::nullopt;
        return sim::Send<Key>{dc::bits::flip(u, 0), keys[u]};
      });
  using Pair = std::pair<Key, Key>;
  auto pairs = m.comm_cycle<Pair>(
      [&](net::NodeId u) -> std::optional<sim::Send<Pair>> {
        if (!in_subcube(u) || dc::bits::get(u, 0) != direct0)
          return std::nullopt;
        return sim::Send<Pair>{dc::bits::flip(u, j),
                               Pair{keys[u], *gathered[u]}};
      });
  auto returned = m.comm_cycle<Key>(
      [&](net::NodeId u) -> std::optional<sim::Send<Key>> {
        if (!in_subcube(u) || dc::bits::get(u, 0) != direct0)
          return std::nullopt;
        return sim::Send<Key>{dc::bits::flip(u, 0), pairs[u]->second};
      });
  m.compute_step([&](net::NodeId u) {
    if (!in_subcube(u)) return;
    const Key& other = dc::bits::get(u, 0) == direct0 ? pairs[u]->first
                                                      : *returned[u];
    const bool keep_min = ascending(u) == (dc::bits::get(u, j) == 0);
    if (keep_min == (other < keys[u])) keys[u] = other;
    m.add_ops(1);
  });
}

template <typename Key>
void dual_sort_rec(sim::Machine& m,
                   std::vector<Key>& keys, unsigned level, dc::u64 prefix,
                   bool descending) {
  const unsigned span_bits = 2 * level - 1;
  if (level == 1) {
    subcube_dimension_step<Key>(m, keys, span_bits, prefix, 0,
                                [&](net::NodeId) { return !descending; });
    return;
  }
  // The paper's four recursive calls with tags (0, 1, 0, 1).
  for (dc::u64 child = 0; child < 4; ++child) {
    dual_sort_rec(m, keys, level - 1, (prefix << 2) | child,
                  (child & 1) != 0);
  }
  // Half-merge pass directed by bit 2k-2, then full merge by tag.
  for (unsigned jj = span_bits - 1; jj-- > 0;) {
    subcube_dimension_step<Key>(m, keys, span_bits, prefix, jj,
                                [&](net::NodeId u) {
                                  return dc::bits::get(u, span_bits - 1) == 0;
                                });
  }
  for (unsigned jj = span_bits; jj-- > 0;) {
    subcube_dimension_step<Key>(m, keys, span_bits, prefix, jj,
                                [&](net::NodeId) { return !descending; });
  }
}

}  // namespace detail

/// The paper's recursive D_sort, executed call by call (an executable
/// specification; see header comment). Sorts `keys` ascending iff
/// !descending.
template <typename Key>
void dual_sort_recursive(sim::Machine& m, const net::RecursiveDualCube& r,
                         std::vector<Key>& keys, bool descending = false) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(keys.size() == r.node_count(), "one key per node required");
  detail::dual_sort_rec(m, keys, r.order(), 0, descending);
}

}  // namespace dc::core
