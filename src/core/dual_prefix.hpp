// Algorithm 2 of the paper: parallel prefix computation on the dual-cube
// via the *cluster technique*.
//
// Data arrangement (Section 3). Global data index u' of node u:
//   * class 0: u' = u — class-0 nodes hold indices 0 .. N/2-1, consecutive
//     within each cluster (the node-ID field is the low bits);
//   * class 1: u' = u with part I and part II swapped — so indices are
//     again consecutive within each cluster, and class 1 holds N/2 .. N-1.
//
// The five steps (numbering as in the paper):
//   1. Cube_prefix (inclusive) inside every cluster → (t, s).
//   2. Exchange cluster totals t over the cross-edges. Node j of class-0
//      cluster k is cross-linked to node k of class-1 cluster j, so after
//      this cycle every cluster holds the totals of all 2^(n-1) clusters of
//      the *other* class, indexed by its own node IDs.
//   3. Cube_prefix (diminished) inside every cluster over those totals
//      → (t', s'): s' at node r = ⊕ of the other-class cluster totals with
//      cluster ID < r; t' = the other class's grand total.
//   4. Exchange s' back over the cross-edges and fold: s[u] = recv ⊕ s[u].
//      Each node now has its prefix within its own class's half of the
//      index space.
//   5. Class-1 nodes prepend the class-0 grand total — which is exactly
//      their own t' from step 3, so this is a local ⊕. (The paper schedules
//      one more cross-edge step here and counts T_comm = 2n+1; we measure
//      2n. See DESIGN.md §1.3.)
//
// Cost: 2n communication cycles, 2n computation steps (Theorem 1: ≤ 2n+1
// and ≤ 2n). Only associativity of ⊕ is assumed.
#pragma once

#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/ops.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/dual_cube.hpp"

namespace dc::core {

/// Global data index held by node `u` under the paper's arrangement.
inline net::NodeId dual_prefix_index_of_node(const net::DualCube& d,
                                             net::NodeId u) {
  DC_REQUIRE(u < d.node_count(), "node out of range");
  if (d.node_class(u) == 0) return u;
  const auto a = d.decode(u);  // class 1: cluster = part I, node = part II
  const unsigned w = d.order() - 1;
  return (dc::u64{1} << (2 * w)) | (a.cluster << w) | a.node;
}

/// Node holding global data index `idx` (inverse of the above).
inline net::NodeId dual_prefix_node_of_index(const net::DualCube& d,
                                             net::NodeId idx) {
  DC_REQUIRE(idx < d.node_count(), "index out of range");
  const unsigned w = d.order() - 1;
  if (dc::bits::get(idx, 2 * w) == 0) return idx;
  const dc::u64 cluster = dc::bits::field(idx, w, w);
  const dc::u64 node = dc::bits::field(idx, 0, w);
  return d.encode({1, cluster, node});
}

/// Observer invoked after each stage of Algorithm 2 with named per-node
/// arrays (index = node label). Drives the Figure 3 reproduction.
template <typename V>
using DualPrefixObserver = std::function<void(
    const std::string& stage,
    const std::vector<std::pair<std::string, std::vector<V>>>& arrays)>;

namespace detail {

/// Prefix values that qualify for the width-1 SoA plane: on compiled
/// replay the whole exchange is one contiguous stride gather instead of
/// per-node optional<V> moves. Everything else (heap-owning monoids like
/// strings) ships through the classic scalar exchange.
template <typename V>
inline constexpr bool kPlaneEligible =
    std::is_trivially_copyable_v<V> && std::is_default_constructible_v<V>;

/// One oblivious exchange of a single V per sender, routed through the
/// width-1 block plane when V qualifies; `consume(u)` yields the received
/// value for node u either way.
template <typename V, typename DestFn, typename PayloadFn, typename Body>
void plane_exchange(sim::ObliviousSection& sched, DestFn&& dest_of,
                    PayloadFn&& payload_of, Body&& body) {
  if constexpr (kPlaneEligible<V>) {
    auto inbox = sched.exchange_blocks<V>(
        1, dest_of, [&](net::NodeId u, V* dst) { *dst = payload_of(u); });
    body([&](net::NodeId u) -> const V& { return *inbox.block(u); });
  } else {
    auto inbox = sched.exchange<V>(dest_of, payload_of);
    body([&](net::NodeId u) -> const V& { return *inbox[u]; });
  }
}

/// Shared by steps 1 and 3: an in-cluster Cube_prefix pass over `value`,
/// ordered by node ID within each cluster. Writes per-node totals into `t`
/// and prefixes into `s`. Costs n-1 comm cycles and n-1 comp steps.
template <Monoid M>
void cluster_prefix(sim::Machine& m, sim::ObliviousSection& sched,
                    const net::DualCube& d, const M& op,
                    const std::vector<typename M::value_type>& value,
                    bool inclusive, std::vector<typename M::value_type>& t,
                    std::vector<typename M::value_type>& s) {
  using V = typename M::value_type;
  const std::size_t n_nodes = d.node_count();
  t = value;
  if (inclusive) {
    s = value;
  } else {
    s.assign(n_nodes, op.identity());
  }
  for (unsigned i = 0; i + 1 < d.order(); ++i) {
    plane_exchange<V>(
        sched, [&](net::NodeId u) { return d.cluster_neighbor(u, i); },
        [&](net::NodeId u) { return t[u]; },
        [&](auto&& recv) {
          m.compute_step([&](net::NodeId u) {
            const V& temp = recv(u);
            // Bit i of u's node ID is the flipped label bit of this
            // exchange.
            const unsigned base = d.node_class(u) == 0 ? 0u : d.order() - 1;
            if (dc::bits::get(u, base + i) == 1) {
              s[u] = op.combine(temp, s[u]);
              t[u] = op.combine(temp, t[u]);
              m.add_ops(2);
            } else {
              t[u] = op.combine(t[u], temp);
              m.add_ops(1);
            }
          });
        });
  }
}

}  // namespace detail

/// Runs Algorithm 2 on machine `m`, whose topology must be `d`.
///
/// `data` is in global index order (data[i] is the i-th input). Returns the
/// prefixes, also in global index order: inclusive prefixes when
/// `inclusive` (the paper's tag = 1), diminished/exclusive prefixes
/// otherwise (tag = 0; identity at index 0). Pass an observer to receive
/// per-stage snapshots (Figure 3).
template <Monoid M>
std::vector<typename M::value_type> dual_prefix(
    sim::Machine& m, const net::DualCube& d, const M& op,
    const std::vector<typename M::value_type>& data,
    const DualPrefixObserver<typename M::value_type>& observer = {},
    bool inclusive = true) {
  using V = typename M::value_type;
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&d),
             "machine must run on the given dual-cube");
  DC_REQUIRE(data.size() == d.node_count(), "one input per node required");
  const std::size_t n_nodes = d.node_count();

  // Load the arrangement: node u holds c[u'] (uncounted data placement).
  std::vector<V> c(n_nodes, op.identity());
  m.for_each_node([&](net::NodeId u) {
    c[u] = data[dual_prefix_index_of_node(d, u)];
  });
  if (observer) observer("(a) original data distribution", {{"c", c}});

  // All 2n cycles (two cluster passes + two cross-edge exchanges) share one
  // compiled schedule keyed by the dual-cube order; neither the monoid nor
  // the inclusive flag changes any destination.
  sim::ObliviousSection sched(m, "dual_prefix", {d.order()});

  // Step 1: prefix inside every cluster (diminished when tag = 0; the rest
  // of the algorithm only prepends totals of *preceding* nodes, so the
  // inclusive/diminished choice is decided entirely here).
  std::vector<V> t, s;
  detail::cluster_prefix(m, sched, d, op, c, inclusive, t, s);
  if (observer) observer("(b) prefix inside cluster", {{"t", t}, {"s", s}});

  // Step 2: exchange cluster totals over the cross-edges.
  std::vector<V> temp(n_nodes, op.identity());
  detail::plane_exchange<V>(
      sched, [&](net::NodeId u) { return d.cross_neighbor(u); },
      [&](net::NodeId u) { return t[u]; },
      [&](auto&& recv) {
        m.for_each_node([&](net::NodeId u) { temp[u] = recv(u); });
      });
  if (observer) observer("(c) exchange t via cross-edge", {{"temp", temp}});

  // Step 3: diminished prefix of the gathered totals inside every cluster.
  std::vector<V> t2, s2;
  detail::cluster_prefix(m, sched, d, op, temp, /*inclusive=*/false, t2, s2);
  if (observer)
    observer("(d) prefix inside cluster over totals", {{"t'", t2}, {"s'", s2}});

  // Step 4: route each node's same-class preceding-cluster total back to it
  // and fold it in on the left.
  detail::plane_exchange<V>(
      sched, [&](net::NodeId u) { return d.cross_neighbor(u); },
      [&](net::NodeId u) { return s2[u]; },
      [&](auto&& recv) {
        m.compute_step([&](net::NodeId u) {
          s[u] = op.combine(recv(u), s[u]);
          m.add_ops(1);
        });
      });
  if (observer) observer("(e) fold preceding same-class totals", {{"s", s}});

  // Step 5: class-1 nodes prepend the class-0 grand total (their own t').
  m.compute_step([&](net::NodeId u) {
    if (d.node_class(u) == 1) {
      s[u] = op.combine(t2[u], s[u]);
      m.add_ops(1);
    }
  });
  if (observer) observer("(f) final result", {{"s", s}});
  sched.commit();

  // Copy out in index order (uncounted).
  std::vector<V> out(n_nodes, op.identity());
  m.for_each_node([&](net::NodeId u) {
    out[dual_prefix_index_of_node(d, u)] = s[u];
  });
  return out;
}

}  // namespace dc::core
