// Fault-tolerant D_sort (Algorithm 3 under faults) via proxy emulation.
//
// The bitonic network of core/dual_sort.hpp is oblivious: the dimension
// sequence and the relay pattern of every dimension exchange depend only
// on the order n. Under a fault set below the connectivity bound (D_n is
// n-connected, so any set of fewer than n simultaneous node faults leaves
// it connected; Zhao/Hao/Cheng's generalized-connectivity results in
// PAPERS.md sharpen the multi-path variants) we therefore emulate the
// *healthy* network exactly, like core/ft_dual_prefix.hpp:
//
//   * every dead node's role moves to its proxy — the nearest live node
//     by healthy BFS distance (detail::ft_proxy_map), ties to the lowest
//     label — which executes the ward's compares alongside its own;
//   * every logical message of the healthy relay schedule (the 3-cycle
//     u -> u^0 -> (u^0)^j -> u^j pattern of dimension_exchange.hpp, or the
//     1-cycle dimension-0 exchange) is re-addressed to the physical
//     proxies and shipped over fault-free routes by the detour transport
//     (direct hop when the healthy link survives, BFS detour on the
//     faulted view otherwise), so every hop is still a validated 1-port
//     machine transfer;
//   * dead nodes' keys are lost: their logical slots carry "missing",
//     which compares greater than every real key. After an ascending sort
//     the L surviving keys occupy logical positions 0..L-1 in sorted
//     order and the missing slots sink to the tail (head when
//     descending).
//
// A healthy (empty-plan) run issues exactly the paper's schedule —
// 6n² − 7n + 2 comm cycles, every message a single healthy hop, zero
// reroutes — so fault tolerance costs nothing when nothing is broken.
//
// resilient_dual_sort composes the same network with the RecoveryDriver
// (sim/recovery.hpp) for *dynamic* fault timelines: each bitonic level is
// one retriable phase working on a copy of the level checkpoint, so a
// link flap mid-level replans routes on the new epoch and retries only
// that level. Mid-run node deaths invalidate in-flight network state (a
// bitonic merge cannot recover a key that already moved through the dead
// node), so the driver restarts the sort from input placement with the
// accumulated dead set — whose keys are the only ones lost.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/ft_dual_prefix.hpp"
#include "sim/fault_transport.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/recovery.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::core {

namespace detail {

/// Missing-aware key order: a lost slot sorts as +infinity.
template <typename Key>
bool ft_key_less(const std::optional<Key>& a, const std::optional<Key>& b) {
  if (!a) return false;
  if (!b) return static_cast<bool>(a);
  return *a < *b;
}

/// Emulation context of one fault set: proxy map and hosted-role lists.
struct FtSortRoles {
  std::vector<net::NodeId> rep;                  ///< logical -> physical
  std::vector<std::vector<net::NodeId>> hosted;  ///< physical -> roles

  FtSortRoles(const net::Topology& t,
              const std::vector<net::NodeId>& dead_sorted)
      : rep(ft_proxy_map(t, dead_sorted)), hosted(t.node_count()) {
    for (net::NodeId u = 0; u < t.node_count(); ++u)
      hosted[rep[u]].push_back(u);
  }
};

/// One logical exchange of the healthy schedule under proxies + detours:
/// every logical node u with dest_of(u) != kNoSend ships payload_of(u);
/// afterwards recv[v] holds what logical v received. Healthy cost: 1 comm
/// cycle; fault repair excess is accounted into `ftrep`.
template <typename P, typename DestFn, typename PayFn>
void ft_sort_exchange(sim::Machine& m, const net::Topology& topo,
                      const sim::FaultPlan& plan, const FtSortRoles& roles,
                      DestFn&& dest_of, PayFn&& payload_of,
                      std::vector<std::optional<P>>& recv,
                      sim::FtReport& ftrep) {
  sim::TraceScope phase(m.trace(), m.trace_track(), "phase:ft_exchange");
  const std::size_t n_nodes = topo.node_count();
  std::vector<sim::LogicalMessage<P>> msgs;
  msgs.reserve(n_nodes);
  for (net::NodeId u = 0; u < n_nodes; ++u) {
    const net::NodeId v = dest_of(u);
    if (v == sim::kNoSend) continue;
    msgs.push_back(sim::LogicalMessage<P>{roles.rep[u], roles.rep[v], u, v,
                                          payload_of(u), false});
  }
  recv.assign(n_nodes, std::nullopt);
  const sim::FtReport batch =
      sim::deliver_with_detours(m, topo, plan, std::move(msgs), recv);
  ftrep.base_cycles += 1;
  ftrep.repair_cycles += batch.repair_cycles > 0 ? batch.repair_cycles - 1 : 0;
  ftrep.repaired += batch.repaired;
  ftrep.rerouted_hops += batch.rerouted_hops;
  ftrep.bfs_fallbacks += batch.bfs_fallbacks;
}

/// Runs one bitonic level (level k's half-merge + full-merge dimension
/// steps) of the fault-tolerant network over the logical values `val`,
/// routing against `plan` and emulating with `roles`. Mutates `val` in
/// place — callers that need retry keep their own checkpoint copy.
template <typename Key>
void ft_sort_level(sim::Machine& m, const net::RecursiveDualCube& r,
                   std::vector<std::optional<Key>>& val, unsigned k,
                   bool descending, const sim::FaultPlan& plan,
                   const FtSortRoles& roles, sim::FtReport& ftrep) {
  using MaybeKey = std::optional<Key>;
  using Pair = std::pair<MaybeKey, MaybeKey>;
  const std::size_t n_nodes = r.node_count();
  const unsigned n = r.order();
  std::vector<std::optional<MaybeKey>> recv_v;
  std::vector<std::optional<Pair>> recv_p;
  std::vector<MaybeKey> other(n_nodes);

  const auto dimension_step = [&](unsigned j, bool half_merge) {
    if (j == 0) {
      ft_sort_exchange<MaybeKey>(
          m, r, plan, roles,
          [](net::NodeId u) { return dc::bits::flip(u, 0); },
          [&](net::NodeId u) { return val[u]; }, recv_v, ftrep);
      m.for_each_node([&](net::NodeId p) {
        for (const net::NodeId u : roles.hosted[p]) other[u] = *recv_v[u];
      });
    } else {
      // The healthy 3-cycle relay of dimension_exchange.hpp, message for
      // message: indirect nodes ship across the cross-edge, direct nodes
      // exchange (own, gathered) pairs over the dimension-j link, then
      // return the second component across the cross-edge.
      const unsigned direct0 = j % 2 == 0 ? 0u : 1u;
      ft_sort_exchange<MaybeKey>(
          m, r, plan, roles,
          [&](net::NodeId u) -> net::NodeId {
            if (dc::bits::get(u, 0) == direct0) return sim::kNoSend;
            return dc::bits::flip(u, 0);
          },
          [&](net::NodeId u) { return val[u]; }, recv_v, ftrep);
      std::vector<MaybeKey> gathered(n_nodes);
      m.for_each_node([&](net::NodeId p) {
        for (const net::NodeId u : roles.hosted[p])
          if (dc::bits::get(u, 0) == direct0) gathered[u] = *recv_v[u];
      });
      ft_sort_exchange<Pair>(
          m, r, plan, roles,
          [&](net::NodeId u) -> net::NodeId {
            if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
            return dc::bits::flip(u, j);
          },
          [&](net::NodeId u) { return Pair{val[u], gathered[u]}; }, recv_p,
          ftrep);
      ft_sort_exchange<MaybeKey>(
          m, r, plan, roles,
          [&](net::NodeId u) -> net::NodeId {
            if (dc::bits::get(u, 0) != direct0) return sim::kNoSend;
            return dc::bits::flip(u, 0);
          },
          [&](net::NodeId u) { return recv_p[u]->second; }, recv_v, ftrep);
      m.for_each_node([&](net::NodeId p) {
        for (const net::NodeId u : roles.hosted[p]) {
          other[u] = dc::bits::get(u, 0) == direct0 ? recv_p[u]->first
                                                    : *recv_v[u];
        }
      });
    }
    // The compare step of the healthy network, proxies doing their wards'
    // compares too; direction logic identical to dual_bitonic_network.
    m.compute_step([&](net::NodeId p) {
      for (const net::NodeId u : roles.hosted[p]) {
        bool ascending;
        if (half_merge) {
          ascending = dc::bits::get(u, 2 * k - 2) == 0;
        } else {
          ascending = k == n ? !descending : dc::bits::get(u, 2 * k - 1) == 0;
        }
        const bool keep_min = ascending == (dc::bits::get(u, j) == 0);
        const bool other_smaller = ft_key_less<Key>(other[u], val[u]);
        if (keep_min == other_smaller) val[u] = other[u];
        m.add_ops(1);
      }
    });
  };

  if (k >= 2) {
    for (unsigned jj = 2 * k - 2; jj-- > 0;)
      dimension_step(jj, /*half_merge=*/true);
  }
  for (unsigned jj = 2 * k - 1; jj-- > 0;)
    dimension_step(jj, /*half_merge=*/false);
}

}  // namespace detail

/// Sorts the surviving keys under a static fault set. `keys` is indexed
/// by recursive-presentation node label; dead nodes' keys are lost. The
/// result is the logical value at every label after the network: engaged
/// slots hold the surviving keys in sorted order (ascending unless
/// `descending`; lost slots sort as +infinity, so ascending runs leave
/// the survivors in the leading labels), and a dead label's value
/// physically lives at its proxy. The machine may run with the plan
/// attached under either policy, or with no plan attached. Healthy cost:
/// exactly the paper's 6n² − 7n + 2 comm cycles, zero reroutes.
template <typename Key>
std::vector<std::optional<Key>> ft_dual_sort(
    sim::Machine& m, const net::RecursiveDualCube& r,
    const std::vector<Key>& keys, const sim::FaultPlan& plan,
    bool descending = false, sim::FtReport* report = nullptr) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(keys.size() == r.node_count(), "one key per node required");
  const std::size_t n_nodes = r.node_count();

  const std::vector<net::NodeId> dead_sorted = plan.dead_nodes();
  const detail::FtSortRoles roles(r, dead_sorted);
  std::vector<std::uint8_t> is_dead(n_nodes, 0);
  for (const net::NodeId u : dead_sorted) is_dead[u] = 1;

  std::vector<std::optional<Key>> val(n_nodes);
  m.for_each_node([&](net::NodeId p) {
    for (const net::NodeId u : roles.hosted[p])
      if (!is_dead[u]) val[u] = keys[u];
  });

  sim::FtReport ftrep;
  for (unsigned k = 1; k <= r.order(); ++k)
    detail::ft_sort_level(m, r, val, k, descending, plan, roles, ftrep);
  if (report) *report = ftrep;
  return val;
}

namespace detail {
/// Internal control-flow signal of resilient_dual_sort: the dead set grew
/// past what the in-flight network state was built for, so the current
/// phase sequence must be abandoned and the sort restarted.
struct FtSortRestart {};
}  // namespace detail

/// D_sort over a dynamic fault timeline, driven by retry-with-replan.
/// Each bitonic level runs as one retriable phase against the epoch's
/// snapshot, working on a copy of the level checkpoint: a link flap
/// mid-level replans and retries that level only (completed levels are
/// never re-executed). A node death that post-dates the current network
/// state restarts the sort from input placement with the accumulated dead
/// set — their keys are lost (+infinity slots), everyone else's survive.
/// Nodes that ever died stay emulated at their proxies even after a
/// rejoin (their memory is gone); see RecoveryDriver for budget/degrade
/// semantics.
template <typename Key>
std::vector<std::optional<Key>> resilient_dual_sort(
    sim::RecoveryDriver& drv, const net::RecursiveDualCube& r,
    const std::vector<Key>& keys, bool descending = false) {
  sim::Machine& m = drv.machine();
  DC_REQUIRE(keys.size() == r.node_count(), "one key per node required");
  const std::size_t n_nodes = r.node_count();

  // Accumulated ever-dead set: grows across restarts, never shrinks.
  std::vector<net::NodeId> dead_acc = drv.snapshot().dead_nodes();

  while (true) {
    const detail::FtSortRoles roles(r, dead_acc);
    std::vector<std::uint8_t> is_dead(n_nodes, 0);
    for (const net::NodeId u : dead_acc) is_dead[u] = 1;
    std::vector<std::optional<Key>> val(n_nodes);
    m.for_each_node([&](net::NodeId p) {
      for (const net::NodeId u : roles.hosted[p])
        if (!is_dead[u]) val[u] = keys[u];
    });

    try {
      for (unsigned k = 1; k <= r.order(); ++k) {
        // Work on a copy; `val` is the checkpoint of completed levels and
        // is only advanced when the phase returns.
        std::vector<std::optional<Key>> work;
        drv.run_phase("phase:ft_sort_level", [&](const sim::FaultPlan& plan) {
          for (const net::NodeId u : plan.dead_nodes())
            if (!is_dead[u]) throw detail::FtSortRestart{};
          work = val;
          detail::ft_sort_level(m, r, work, k, descending, plan, roles,
                                *drv.transport());
        });
        val = std::move(work);
      }
      return val;
    } catch (const detail::FtSortRestart&) {
      drv.note_restart();
      for (const net::NodeId u : drv.snapshot().dead_nodes()) {
        if (std::find(dead_acc.begin(), dead_acc.end(), u) == dead_acc.end())
          dead_acc.push_back(u);
      }
      std::sort(dead_acc.begin(), dead_acc.end());
    }
  }
}

}  // namespace dc::core
