// Future-work item 1 of the paper: prefix computation when the input is
// larger than the network — each of the N = 2^(2n-1) nodes holds a block of
// m keys.
//
// Standard three-phase block scan, with the network phase being Algorithm 2:
//   1. local inclusive scan of each node's block (m-1 parallel computation
//      steps);
//   2. *diminished* D_prefix over the block totals (2n comm / 2n comp) —
//      diminished so every node's offset is purely the sum of preceding
//      blocks and stays local to the node;
//   3. local fold of that offset into each block element (m steps).
//
// Total: 2n communication cycles and 2m + 2n - 1 computation steps for
// N*m keys — communication is independent of m under the paper's model
// (one message per link per cycle; message size is not charged).
#pragma once

#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"

namespace dc::core {

/// Inclusive prefix over `data` on D_n with `block` keys per node.
/// `data` is in global order: the node with data index i holds
/// data[i*block .. (i+1)*block). Returns prefixes in the same layout.
template <Monoid M>
std::vector<typename M::value_type> block_prefix(
    sim::Machine& m, const net::DualCube& d, const M& op,
    const std::vector<typename M::value_type>& data, std::size_t block) {
  using V = typename M::value_type;
  DC_REQUIRE(block >= 1, "block size must be >= 1");
  DC_REQUIRE(data.size() == d.node_count() * block,
             "data size must be node_count * block");
  const std::size_t n_nodes = d.node_count();

  // Phase 1: local inclusive scans. Every node advances one element per
  // parallel computation step. (Blocks are indexed by data index; node u
  // owns the block at dual_prefix_index_of_node(u), so per-block work is
  // per-node work.)
  std::vector<V> scanned = data;
  for (std::size_t off = 1; off < block; ++off) {
    m.compute_step([&](net::NodeId u) {
      const std::size_t base = dual_prefix_index_of_node(d, u) * block;
      scanned[base + off] =
          op.combine(scanned[base + off - 1], scanned[base + off]);
      m.add_ops(1);
    });
  }

  // Phase 2: diminished network prefix over the block totals. The result
  // at index i is the ⊕ of all preceding blocks — exactly node i's offset,
  // available locally at the owning node.
  std::vector<V> totals(n_nodes, op.identity());
  m.for_each_node([&](net::NodeId u) {
    const std::size_t idx = dual_prefix_index_of_node(d, u);
    totals[idx] = scanned[idx * block + block - 1];
  });
  const std::vector<V> offsets =
      dual_prefix(m, d, op, totals, {}, /*inclusive=*/false);

  // Phase 3: fold the local offset into every block element.
  for (std::size_t off = 0; off < block; ++off) {
    m.compute_step([&](net::NodeId u) {
      const std::size_t idx = dual_prefix_index_of_node(d, u);
      scanned[idx * block + off] =
          op.combine(offsets[idx], scanned[idx * block + off]);
      m.add_ops(1);
    });
  }
  return scanned;
}

}  // namespace dc::core
