// Future-work item 1 of the paper: prefix computation when the input is
// larger than the network — each of the N = 2^(2n-1) nodes holds a block of
// m keys.
//
// Standard three-phase block scan, with the network phase being Algorithm 2:
//   1. local inclusive scan of each node's block (m-1 parallel computation
//      steps);
//   2. *diminished* D_prefix over the block totals (2n comm / 2n comp) —
//      diminished so every node's offset is purely the sum of preceding
//      blocks and stays local to the node;
//   3. local fold of that offset into each block element (m steps).
//
// Total: 2n communication cycles and 2m + 2n - 1 computation steps for
// N*m keys — communication is independent of m under the paper's model
// (one message per link per cycle; message size is not charged).
//
// Layout: one synchronous computation step advances every node by one
// element at the *same* block offset, so the hot loops iterate offset-major.
// The blocks are therefore transposed once into an index-major scratch
// (rows[off * N + i] = element off of block i): each step then combines two
// contiguous N-element rows — a single vectorizable sweep
// (sim::simd::add_rows_u64 for Plus<dc::u64>, scalar combine otherwise)
// instead of N strided touches — and the result is transposed back at the
// end. The transposes are uncounted data placement; the counted work
// (steps, ops) is identical to the node-major formulation.
#pragma once

#include <algorithm>
#include <type_traits>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"
#include "sim/simd.hpp"

namespace dc::core {

namespace detail {

/// Tile edge for the block<->row transposes: 32x32 value tiles keep both
/// the strided and the contiguous side of the copy inside L1.
inline constexpr std::size_t kTransposeTile = 32;

/// rows[off * n + i] = data[i * block + off] for all i < n, off < block.
template <typename V>
void transpose_to_rows(const V* data, std::size_t n, std::size_t block,
                       V* rows) {
  for (std::size_t i0 = 0; i0 < n; i0 += kTransposeTile) {
    const std::size_t i1 = std::min(n, i0 + kTransposeTile);
    for (std::size_t o0 = 0; o0 < block; o0 += kTransposeTile) {
      const std::size_t o1 = std::min(block, o0 + kTransposeTile);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t off = o0; off < o1; ++off)
          rows[off * n + i] = data[i * block + off];
    }
  }
}

/// data[i * block + off] = rows[off * n + i] for all i < n, off < block.
template <typename V>
void transpose_from_rows(const V* rows, std::size_t n, std::size_t block,
                         V* data) {
  for (std::size_t i0 = 0; i0 < n; i0 += kTransposeTile) {
    const std::size_t i1 = std::min(n, i0 + kTransposeTile);
    for (std::size_t o0 = 0; o0 < block; o0 += kTransposeTile) {
      const std::size_t o1 = std::min(block, o0 + kTransposeTile);
      for (std::size_t i = i0; i < i1; ++i)
        for (std::size_t off = o0; off < o1; ++off)
          data[i * block + off] = rows[off * n + i];
    }
  }
}

/// cur[i] = op.combine(prev[i], cur[i]) over a contiguous row pair — the
/// per-step kernel of the offset-major scan. Plus<dc::u64> (the bench and
/// parity workload) dispatches to the vectorized row add; any other monoid
/// runs the plain combine loop. Bit-identical either way: lane-wise u64
/// addition has no order or rounding freedom.
template <Monoid M>
void combine_rows(const M& op, typename M::value_type* cur,
                  const typename M::value_type* prev, std::size_t count) {
  if constexpr (std::is_same_v<M, Plus<dc::u64>>) {
    sim::simd::add_rows_u64(cur, prev, count);
  } else {
    for (std::size_t i = 0; i < count; ++i)
      cur[i] = op.combine(prev[i], cur[i]);
  }
}

}  // namespace detail

/// Inclusive prefix over `data` on D_n with `block` keys per node.
/// `data` is in global order: the node with data index i holds
/// data[i*block .. (i+1)*block). Returns prefixes in the same layout.
template <Monoid M>
std::vector<typename M::value_type> block_prefix(
    sim::Machine& m, const net::DualCube& d, const M& op,
    const std::vector<typename M::value_type>& data, std::size_t block) {
  using V = typename M::value_type;
  DC_REQUIRE(block >= 1, "block size must be >= 1");
  DC_REQUIRE(data.size() == d.node_count() * block,
             "data size must be node_count * block");
  const std::size_t n_nodes = d.node_count();

  // Uncounted data placement: blocks -> index-major rows.
  std::vector<V> rows(data.size());
  detail::transpose_to_rows(data.data(), n_nodes, block, rows.data());

  // Phase 1: local inclusive scans. Every node advances one element per
  // parallel computation step; at step `off` node i combines element off-1
  // into element off of its block, which offset-major is one contiguous
  // row pair. (Blocks are indexed by data index; the node<->index map is a
  // bijection, so per-index work is per-node work and each chunked step
  // charges exactly one op per node, as the node-major loop did.)
  for (std::size_t off = 1; off < block; ++off) {
    V* const cur = rows.data() + off * n_nodes;
    const V* const prev = cur - n_nodes;
    m.compute_step_chunked([&, cur, prev](std::size_t lo, std::size_t hi) {
      detail::combine_rows(op, cur + lo, prev + lo, hi - lo);
      m.add_ops(hi - lo);
    });
  }

  // Phase 2: diminished network prefix over the block totals — offset-major,
  // the totals are simply the last row. The result at index i is the ⊕ of
  // all preceding blocks — exactly node i's offset, available locally at
  // the owning node.
  std::vector<V> totals(n_nodes, op.identity());
  const V* const last = rows.data() + (block - 1) * n_nodes;
  m.for_each_node([&](net::NodeId u) {
    const std::size_t idx = dual_prefix_index_of_node(d, u);
    totals[idx] = last[idx];
  });
  const std::vector<V> offsets =
      dual_prefix(m, d, op, totals, {}, /*inclusive=*/false);

  // Phase 3: fold the local offset into every block element — one row
  // combine against the offsets row per parallel step.
  for (std::size_t off = 0; off < block; ++off) {
    V* const cur = rows.data() + off * n_nodes;
    m.compute_step_chunked([&, cur](std::size_t lo, std::size_t hi) {
      detail::combine_rows(op, cur + lo, offsets.data() + lo, hi - lo);
      m.add_ops(hi - lo);
    });
  }

  // Uncounted data placement: rows -> node-major result.
  std::vector<V> scanned(data.size());
  detail::transpose_from_rows(rows.data(), n_nodes, block, scanned.data());
  return scanned;
}

}  // namespace dc::core
