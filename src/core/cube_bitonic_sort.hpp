// Batcher's bitonic sort on the hypercube (Section 5 of the paper) — the
// baseline the dual-cube sort is measured against.
//
// Iterative formulation of the classic recursion: for level k = 1 .. d,
// blocks of 2^k nodes are bitonic (each half sorted in opposite directions
// by the previous level) and are merged by a descend pass over dimensions
// k-1 .. 0. During level k < d the merge direction of a block is given by
// bit k of the node label, producing alternating ascending/descending
// blocks; the final level uses the caller's direction.
//
// Cost on Q_d: d(d+1)/2 communication steps and d(d+1)/2 comparison steps.
#pragma once

#include <vector>

#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "topology/hypercube.hpp"

namespace dc::core {

/// Sorts `keys` (index = node label) in place; ascending iff !descending.
/// Keys must be totally ordered by operator<.
template <typename Key>
void cube_bitonic_sort(sim::Machine& m, const net::Hypercube& q,
                       std::vector<Key>& keys, bool descending = false) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&q),
             "machine must run on the given hypercube");
  DC_REQUIRE(keys.size() == q.node_count(), "one key per node required");
  const unsigned d = q.dimensions();

  // The d(d+1)/2 pairwise exchanges are fixed by the dimension sequence
  // alone (direction only affects which end keeps the minimum), so the
  // whole sorting network compiles to one cached schedule per cube order.
  sim::ObliviousSection sched(m, "cube_bitonic_sort", {d});
  for (unsigned k = 1; k <= d; ++k) {
    for (unsigned jj = k; jj-- > 0;) {
      const unsigned j = jj;
      auto inbox = sched.exchange<Key>(
          [&](net::NodeId u) { return q.neighbor(u, j); },
          [&](net::NodeId u) { return keys[u]; });
      m.compute_step([&](net::NodeId u) {
        const bool ascending =
            k == d ? !descending : dc::bits::get(u, k) == 0;
        const Key& other = *inbox[u];
        // Ascending: the u_j = 0 end keeps the minimum.
        const bool keep_min = ascending == (dc::bits::get(u, j) == 0);
        const bool other_smaller = other < keys[u];
        if (keep_min == other_smaller) keys[u] = other;
        m.add_ops(1);
      });
    }
  }
  sched.commit();
}

}  // namespace dc::core
