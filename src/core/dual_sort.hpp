// Algorithm 3 of the paper: bitonic sorting on the dual-cube, expressed on
// the recursive presentation (Section 4).
//
// The paper's recursion — sort the four D_(k-1) copies with alternating
// directions, then two descend passes — flattens into an SPMD iteration.
// For level k = 1 .. n (level k sorts every aligned block of 2^(2k-1)
// labels, i.e. every D_k sub-dual-cube, simultaneously):
//
//   * first pass, dimensions j = 2k-3 .. 0 (empty at k = 1): merges each
//     *half* of a D_k block; direction given by bit 2k-2 (ascending in the
//     lower half, descending in the upper), so the block becomes bitonic;
//   * second pass, dimensions j = 2k-2 .. 0: merges the whole block;
//     direction given by the block's tag.
//
// The tag of a level-k block is bit 2k-1 of the node label — the parity of
// the block's index among its parent's four children, matching the paper's
// D_sort(D^00,0); D_sort(D^01,1); D_sort(D^10,0); D_sort(D^11,1) recursion —
// except at the top level k = n, where it is the caller's direction.
//
// Every dimension step uses dimension_exchange (1 cycle at j = 0, 3 cycles
// otherwise; see dimension_exchange.hpp for the relay schedule) and one
// parallel comparison step.
//
// Cost on D_n (Theorem 2): T_comm = 6n² − 7n + 2 ≤ 6n² communication
// cycles and T_comp = 2n² − n ≤ 2n² comparison steps.
//
// dual_bitonic_network is the schedule with a pluggable per-node combine
// rule; dual_sort instantiates it with scalar compare-exchange, and
// block_sort.hpp with sorted-block merge-split (the classic result that any
// sorting network sorts blocks when compare-exchange is replaced by
// merge-split).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/dimension_exchange.hpp"
#include "sim/machine.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::core {

/// Observer invoked after every dimension step with a phase label and the
/// current values (index = node label). Drives the Figures 5-6 reproduction.
template <typename V>
using DualSortObserver =
    std::function<void(const std::string& phase, const std::vector<V>& values)>;

/// Runs the Algorithm-3 compare-exchange schedule over `values`.
/// `combine(u, keep_min, other)` must replace node u's value with the
/// min-side (keep_min) or max-side result of combining with `other`, and is
/// invoked once per node per dimension step from a counted compute_step.
template <typename V, typename Combine>
void dual_bitonic_network(sim::Machine& m, const net::RecursiveDualCube& r,
                          std::vector<V>& values, bool descending,
                          Combine&& combine,
                          const DualSortObserver<V>& observer = {}) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(values.size() == r.node_count(), "one value per node required");
  const unsigned n = r.order();

  // The whole network — every relayed dimension exchange of every level —
  // is one compiled schedule per order: the dimension sequence is fixed
  // and the merge direction only affects the compute side.
  sim::ObliviousSection sched(m, "dual_bitonic_network", {n});

  const auto dimension_step = [&](unsigned j, unsigned k, bool half_merge) {
    auto recv = dimension_exchange(m, sched, r, j, values);
    m.compute_step([&](net::NodeId u) {
      bool ascending;
      if (half_merge) {
        ascending = dc::bits::get(u, 2 * k - 2) == 0;
      } else {
        ascending =
            k == n ? !descending : dc::bits::get(u, 2 * k - 1) == 0;
      }
      const bool keep_min = ascending == (dc::bits::get(u, j) == 0);
      combine(u, keep_min, recv[u]);
      m.add_ops(1);
    });
    if (observer)
      observer("level " + std::to_string(k) +
                   (half_merge ? " half-merge dim " : " full-merge dim ") +
                   std::to_string(j),
               values);
  };

  for (unsigned k = 1; k <= n; ++k) {
    if (k >= 2) {
      for (unsigned jj = 2 * k - 2; jj-- > 0;)
        dimension_step(jj, k, /*half_merge=*/true);
    }
    for (unsigned jj = 2 * k - 1; jj-- > 0;)
      dimension_step(jj, k, /*half_merge=*/false);
  }
  sched.commit();
}

/// Block form of the Algorithm-3 schedule: node u's value is the width-sized
/// stride `plane[u*width .. u*width+width)`. Issues exactly the same cycle
/// sequence as dual_bitonic_network — it shares the same schedule key, so a
/// scalar record run and a block replay run reuse one cached schedule — but
/// moves blocks through the SoA planes of dimension_exchange_blocks and
/// double-buffers the combine: `combine(u, keep_min, own, other, out)` must
/// write node u's merge-split result (width elements) into `out`, reading
/// the `own` and `other` strides. One counted compare op per node per
/// dimension step is charged here, matching the scalar network; combine
/// charges its own block work.
template <typename Key, typename Combine>
void dual_bitonic_network_blocks(sim::Machine& m,
                                 const net::RecursiveDualCube& r,
                                 std::vector<Key>& plane, std::size_t width,
                                 bool descending, Combine&& combine) {
  DC_REQUIRE(&m.topology() == static_cast<const net::Topology*>(&r),
             "machine must run on the given recursive dual-cube");
  DC_REQUIRE(width >= 1, "block width must be >= 1");
  DC_REQUIRE(plane.size() == r.node_count() * width,
             "one width-sized block per node required");
  const unsigned n = r.order();

  sim::ObliviousSection sched(m, "dual_bitonic_network", {n});

  std::vector<Key> next(plane.size());
  const auto dimension_step = [&](unsigned j, unsigned k, bool half_merge) {
    // Zero-copy: combine reads the received block straight out of the
    // exchange's inbox planes instead of a copied-out recv plane.
    const auto ex = dimension_exchange_blocks(m, sched, r, j, plane, width);
    m.compute_step([&](net::NodeId u) {
      bool ascending;
      if (half_merge) {
        ascending = dc::bits::get(u, 2 * k - 2) == 0;
      } else {
        ascending =
            k == n ? !descending : dc::bits::get(u, 2 * k - 1) == 0;
      }
      const bool keep_min = ascending == (dc::bits::get(u, j) == 0);
      combine(u, keep_min, plane.data() + u * width, ex.recv(u),
              next.data() + u * width);
      m.add_ops(1);
    });
    plane.swap(next);
  };

  for (unsigned k = 1; k <= n; ++k) {
    if (k >= 2) {
      for (unsigned jj = 2 * k - 2; jj-- > 0;)
        dimension_step(jj, k, /*half_merge=*/true);
    }
    for (unsigned jj = 2 * k - 1; jj-- > 0;)
      dimension_step(jj, k, /*half_merge=*/false);
  }
  sched.commit();
}

/// Sorts `keys` (index = recursive-presentation node label) in place;
/// ascending iff !descending (the paper's tag: 0 = ascending).
/// Keys must be totally ordered by operator<.
template <typename Key>
void dual_sort(sim::Machine& m, const net::RecursiveDualCube& r,
               std::vector<Key>& keys, bool descending = false,
               const DualSortObserver<Key>& observer = {}) {
  dual_bitonic_network(
      m, r, keys, descending,
      [&keys](net::NodeId u, bool keep_min, const Key& other) {
        const bool other_smaller = other < keys[u];
        if (keep_min == other_smaller) keys[u] = other;
      },
      observer);
}

}  // namespace dc::core
