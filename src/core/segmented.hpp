// Segmented prefix computation — the classic generalization of scan
// (Blelloch) expressed as a *monoid transformer*, so it runs unchanged on
// every prefix algorithm in this library (Algorithm 1, Algorithm 2, the
// block variants): a segmented scan is just an ordinary scan under the
// derived monoid below.
//
// An element carries a value and a `head` flag marking the start of a
// segment. Combination is
//
//   (a, fa) ⊕ (b, fb) = (fb ? b : a ⊕ b,  fa | fb)
//
// which is associative whenever the underlying ⊕ is (and is NOT
// commutative even for commutative ⊕ — exercising exactly the property the
// paper's algorithms must preserve; see ops.hpp).
#pragma once

#include <vector>

#include "core/block_prefix.hpp"
#include "core/dual_prefix.hpp"
#include "core/ops.hpp"

namespace dc::core {

/// Value+flag pair for segmented scans.
template <typename V>
struct Segmented {
  V value{};
  bool head = false;

  friend bool operator==(const Segmented&, const Segmented&) = default;
};

/// The derived monoid: Seg<M> is a Monoid whenever M is.
template <Monoid M>
struct Seg {
  using value_type = Segmented<typename M::value_type>;

  explicit Seg(M inner = M{}) : inner_(std::move(inner)) {}

  value_type identity() const { return {inner_.identity(), false}; }

  value_type combine(const value_type& a, const value_type& b) const {
    if (b.head) return b;
    return {inner_.combine(a.value, b.value), a.head};
  }

 private:
  M inner_;
};

/// Packs values and segment-head flags into Segmented elements.
template <typename V>
std::vector<Segmented<V>> make_segmented(const std::vector<V>& values,
                                         const std::vector<bool>& heads) {
  std::vector<Segmented<V>> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    out[i] = {values[i], i < heads.size() && heads[i]};
  return out;
}

/// Extracts the per-element scan results.
template <typename V>
std::vector<V> segmented_values(const std::vector<Segmented<V>>& s) {
  std::vector<V> out;
  out.reserve(s.size());
  for (const auto& e : s) out.push_back(e.value);
  return out;
}

/// Segmented inclusive scan on the dual-cube: Algorithm 2 under the Seg
/// monoid. Because the derived monoid changes no destination, the run
/// shares dual_prefix's compiled schedule (one "dual_prefix"-keyed section
/// per order), and for trivially copyable V the Segmented elements ride the
/// width-1 SoA plane on replay. 2n comm cycles, like any dual_prefix.
template <Monoid M>
std::vector<typename M::value_type> segmented_dual_prefix(
    sim::Machine& m, const net::DualCube& d, const M& op,
    const std::vector<typename M::value_type>& values,
    const std::vector<bool>& heads) {
  return segmented_values(
      dual_prefix(m, d, Seg<M>(op), make_segmented(values, heads)));
}

/// Segmented scan over blocks of `block` values per data index: the
/// three-phase block scan under the Seg monoid (local scans, network pass
/// over Segmented totals via dual_prefix, local fold). Same cost shape as
/// block_prefix; head flags are per element.
template <Monoid M>
std::vector<typename M::value_type> segmented_block_prefix(
    sim::Machine& m, const net::DualCube& d, const M& op,
    const std::vector<typename M::value_type>& values,
    const std::vector<bool>& heads, std::size_t block) {
  return segmented_values(
      block_prefix(m, d, Seg<M>(op), make_segmented(values, heads), block));
}

/// Sequential reference: inclusive scan restarting at every head flag.
template <Monoid M>
std::vector<typename M::value_type> seq_segmented_scan(
    const M& op, const std::vector<typename M::value_type>& values,
    const std::vector<bool>& heads) {
  std::vector<typename M::value_type> out(values.size(), op.identity());
  typename M::value_type acc = op.identity();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i == 0 || (i < heads.size() && heads[i])) {
      acc = values[i];
    } else {
      acc = op.combine(acc, values[i]);
    }
    out[i] = acc;
  }
  return out;
}

}  // namespace dc::core
