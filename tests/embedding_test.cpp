// Tests for the ring embeddings (Hamiltonian cycles/paths), the metacube
// generalization, and the Beneš permutation network.
#include <gtest/gtest.h>

#include <numeric>

#include "support/rng.hpp"
#include "topology/benes.hpp"
#include "topology/graph.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/metacube.hpp"

namespace dc::net {
namespace {

// ------------------------------------------------------------ gray code

TEST(GrayCode, ConsecutiveCodesDifferInOneBit) {
  for (u64 t = 0; t < 1024; ++t)
    EXPECT_EQ(bits::hamming(gray_code(t), gray_code(t + 1)), 1u);
}

TEST(GrayCode, IsABijectionOnWBits) {
  std::vector<char> seen(256, 0);
  for (u64 t = 0; t < 256; ++t) {
    const u64 g = gray_code(t);
    ASSERT_LT(g, 256u);
    EXPECT_FALSE(seen[g]);
    seen[g] = 1;
  }
}

// -------------------------------------------------- hypercube embeddings

class CubeHamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CubeHamTest, GrayCycleIsHamiltonian) {
  const Hypercube q(GetParam());
  EXPECT_TRUE(is_hamiltonian_cycle(q, hypercube_hamiltonian_cycle(q)));
}

TEST_P(CubeHamTest, LaceablePathsBetweenAllOddPairs) {
  const Hypercube q(GetParam());
  for (NodeId x = 0; x < q.node_count(); ++x) {
    for (NodeId y = 0; y < q.node_count(); ++y) {
      if (bits::hamming(x, y) % 2 == 0) continue;
      const auto path = hypercube_hamiltonian_path(q, x, y);
      EXPECT_TRUE(is_hamiltonian_path(q, path)) << "x=" << x << " y=" << y;
      EXPECT_EQ(path.front(), x);
      EXPECT_EQ(path.back(), y);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CubeHamTest, ::testing::Values(2u, 3u, 4u, 5u));

TEST(CubeHam, RejectsEqualParityEndpoints) {
  const Hypercube q(3);
  EXPECT_THROW(hypercube_hamiltonian_path(q, 0, 3), CheckError);
  EXPECT_THROW(hypercube_hamiltonian_path(q, 5, 5), CheckError);
}

// -------------------------------------------------- dual-cube embeddings

class DualHamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DualHamTest, CycleIsHamiltonian) {
  const DualCube d(GetParam());
  const auto cycle = dual_cube_hamiltonian_cycle(d);
  EXPECT_TRUE(is_hamiltonian_cycle(d, cycle))
      << "D_" << GetParam() << " ring embedding with dilation 1";
  EXPECT_EQ(cycle.size(), d.node_count());
}

INSTANTIATE_TEST_SUITE_P(Orders, DualHamTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u));

TEST(DualHam, D1HasNoCycle) {
  EXPECT_THROW(dual_cube_hamiltonian_cycle(DualCube(1)), CheckError);
}

TEST(DualHam, CycleAlternatesClustersInBlocks) {
  // The construction visits whole clusters consecutively: the class flips
  // exactly 2 * 2^(n-1) times around the cycle (one cross-edge into and
  // out of every class-1 cluster).
  const DualCube d(3);
  const auto cycle = dual_cube_hamiltonian_cycle(d);
  unsigned class_flips = 0;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (d.node_class(cycle[i]) !=
        d.node_class(cycle[(i + 1) % cycle.size()]))
      ++class_flips;
  }
  EXPECT_EQ(class_flips, 2 * d.clusters_per_class());
}

TEST(Validators, RejectBadCycles) {
  const Hypercube q(2);
  EXPECT_FALSE(is_hamiltonian_cycle(q, {0, 1, 3}));        // misses a node
  EXPECT_FALSE(is_hamiltonian_cycle(q, {0, 1, 3, 3}));     // repeats
  EXPECT_FALSE(is_hamiltonian_cycle(q, {0, 1, 2, 3}));     // 1-2 not an edge
  EXPECT_TRUE(is_hamiltonian_cycle(q, {0, 1, 3, 2}));
  EXPECT_FALSE(is_hamiltonian_path(q, {0, 1, 3}));
  EXPECT_TRUE(is_hamiltonian_path(q, {1, 0, 2, 3}));
}

// ---------------------------------------------------------------- metacube

TEST(Metacube, MC1mIsExactlyTheDualCube) {
  for (unsigned m : {1u, 2u, 3u}) {
    const Metacube mc(1, m);
    const DualCube d(m + 1);
    ASSERT_EQ(mc.node_count(), d.node_count());
    for (NodeId u = 0; u < d.node_count(); ++u) {
      auto a = mc.neighbors(u);
      auto b = d.neighbors(u);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      EXPECT_EQ(a, b) << "MC(1," << m << ") vs D_" << (m + 1) << " at " << u;
    }
  }
}

TEST(Metacube, MC0mIsTheHypercube) {
  const Metacube mc(0, 4);
  const Hypercube q(4);
  ASSERT_EQ(mc.node_count(), q.node_count());
  for (NodeId u = 0; u < q.node_count(); ++u) {
    auto a = mc.neighbors(u);
    auto b = q.neighbors(u);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(Metacube, InvariantsAcrossOrders) {
  for (const auto& [k, m] : std::vector<std::pair<unsigned, unsigned>>{
           {0u, 3u}, {1u, 2u}, {2u, 1u}, {2u, 2u}}) {
    const Metacube mc(k, m);
    EXPECT_EQ(mc.node_count(),
              bits::pow2(k + m * static_cast<unsigned>(bits::pow2(k))));
    validate_graph(mc);
    std::size_t deg = 0;
    EXPECT_TRUE(is_regular(mc, &deg));
    EXPECT_EQ(deg, mc.degree_formula()) << mc.name();
    EXPECT_TRUE(is_connected(mc)) << mc.name();
    EXPECT_TRUE(is_bipartite(mc)) << mc.name();
  }
}

TEST(Metacube, RoutingReachesEveryPair) {
  const Metacube mc(2, 1);  // 2 + 4 = 6 bits, 64 nodes, degree 3
  for (NodeId u = 0; u < mc.node_count(); u += 3) {
    for (NodeId v = 0; v < mc.node_count(); v += 5) {
      const auto path = route_metacube(mc, u, v);
      EXPECT_TRUE(is_valid_path(mc, path)) << "u=" << u << " v=" << v;
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
    }
  }
}

TEST(Metacube, RoutingMatchesDualCubeDistanceOnMC1) {
  // On MC(1, m) the simple metacube route should be as short as the
  // dual-cube's (both realize Hamming or Hamming+2).
  const Metacube mc(1, 2);
  const DualCube d(3);
  for (NodeId u = 0; u < mc.node_count(); ++u) {
    for (NodeId v = 0; v < mc.node_count(); ++v) {
      const auto path = route_metacube(mc, u, v);
      EXPECT_LE(path.size() - 1, d.distance(u, v) + 2);
    }
  }
}

// ------------------------------------------------------------------ Beneš

class BenesTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(BenesTest, RealizesRandomPermutations) {
  const Benes b(GetParam());
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<u64> perm(b.terminals());
    std::iota(perm.begin(), perm.end(), 0);
    for (std::size_t i = perm.size(); i-- > 1;)
      std::swap(perm[i], perm[rng.below(i + 1)]);
    const auto settings = b.route(perm);
    EXPECT_EQ(b.apply(settings), perm);
  }
}

TEST_P(BenesTest, RealizesIdentityAndReversal) {
  const Benes b(GetParam());
  std::vector<u64> identity(b.terminals());
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_EQ(b.apply(b.route(identity)), identity);

  std::vector<u64> reversal(b.terminals());
  for (std::size_t i = 0; i < reversal.size(); ++i)
    reversal[i] = reversal.size() - 1 - i;
  EXPECT_EQ(b.apply(b.route(reversal)), reversal);
}

TEST_P(BenesTest, StageAndSwitchCounts) {
  const Benes b(GetParam());
  EXPECT_EQ(b.stages(), 2 * GetParam() - 1);
  EXPECT_EQ(b.switch_count(), b.terminals() / 2 * (2 * GetParam() - 1));
  std::vector<u64> identity(b.terminals());
  std::iota(identity.begin(), identity.end(), 0);
  const auto settings = b.route(identity);
  EXPECT_EQ(settings.size(), b.stages());
}

INSTANTIATE_TEST_SUITE_P(Orders, BenesTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

TEST(Benes, ExhaustiveOverAllPermutationsOfEight) {
  const Benes b(3);
  std::vector<u64> perm{0, 1, 2, 3, 4, 5, 6, 7};
  int count = 0;
  do {
    ASSERT_EQ(b.apply(b.route(perm)), perm);
    ++count;
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_EQ(count, 40320);  // 8! — rearrangeability, exhaustively
}

TEST(Benes, RejectsNonPermutations) {
  const Benes b(2);
  EXPECT_THROW(b.route({0, 0, 1, 2}), CheckError);
  EXPECT_THROW(b.route({0, 1, 2}), CheckError);
  EXPECT_THROW(b.route({0, 1, 2, 9}), CheckError);
}

}  // namespace
}  // namespace dc::net
