// Remaining coverage: the describe/rendering helpers, the closed-form
// step-count formulas, cross-checks between counters and reports, and
// assorted API edge cases.
#include <gtest/gtest.h>

#include <numeric>

#include "core/formulas.hpp"
#include "sim/store_forward.hpp"
#include "support/rng.hpp"
#include "topology/describe.hpp"
#include "topology/graph.hpp"
#include "topology/metacube.hpp"
#include "topology/routing.hpp"

namespace dc {
namespace {

using net::NodeId;

TEST(Describe, DualCubeRenderingListsEveryNode) {
  const net::DualCube d(2);
  const auto text = net::describe_dual_cube(d);
  for (NodeId u = 0; u < d.node_count(); ++u)
    EXPECT_NE(text.find(bits::to_binary(u, d.label_bits())),
              std::string::npos)
        << "node " << u << " missing from the rendering";
  EXPECT_NE(text.find("diameter 4"), std::string::npos);
  EXPECT_NE(text.find("class 0"), std::string::npos);
  EXPECT_NE(text.find("class 1"), std::string::npos);
}

TEST(Describe, RecursiveConstructionShowsFourCopiesAndMatchings) {
  const net::RecursiveDualCube r(3);
  const auto text = net::describe_recursive_construction(r);
  for (const char* copy : {"copy 00", "copy 01", "copy 10", "copy 11"})
    EXPECT_NE(text.find(copy), std::string::npos);
  EXPECT_NE(text.find("dimension 4 (even)"), std::string::npos);
  EXPECT_NE(text.find("dimension 3 (odd)"), std::string::npos);
}

TEST(Describe, BaseCaseIsK2) {
  const net::RecursiveDualCube r(1);
  EXPECT_NE(net::describe_recursive_construction(r).find("K_2"),
            std::string::npos);
}

TEST(Formulas, ClosedFormsSatisfyTheRecurrences) {
  namespace f = core::formulas;
  // T_comm(n) = T_comm(n-1) + 3(2n-3)+1 + 3(2n-2)+1, T_comm(1) = 1.
  for (unsigned n = 2; n <= 12; ++n) {
    EXPECT_EQ(f::dual_sort_comm_exact(n),
              f::dual_sort_comm_exact(n - 1) + 3 * (2 * n - 3) + 1 +
                  3 * (2 * n - 2) + 1);
    EXPECT_EQ(f::dual_sort_comp_exact(n),
              f::dual_sort_comp_exact(n - 1) + (2 * n - 2) + (2 * n - 1));
    EXPECT_LE(f::dual_sort_comm_exact(n), f::dual_sort_comm_bound(n));
    EXPECT_LE(f::dual_sort_comp_exact(n), f::dual_sort_comp_bound(n));
    EXPECT_LE(f::dual_prefix_comm_impl(n), f::dual_prefix_comm_paper(n));
  }
  EXPECT_EQ(f::dual_sort_comm_exact(1), 1u);
  EXPECT_EQ(f::cube_bitonic_steps(5), 15u);
}

TEST(Formulas, SortOverheadApproachesThree) {
  namespace f = core::formulas;
  for (unsigned n = 2; n <= 40; ++n) {
    const double ratio = static_cast<double>(f::dual_sort_comm_exact(n)) /
                         static_cast<double>(f::cube_bitonic_steps(2 * n - 1));
    EXPECT_LT(ratio, 3.0) << "paper: at most 3x the hypercube";
    if (n >= 20) {
      EXPECT_GT(ratio, 2.8) << "and asymptotically tight";
    }
  }
}

TEST(StoreForward, PacketListHandlesMixedSourcesAndLengths) {
  const net::DualCube d(2);
  sim::Machine m(d);
  std::vector<sim::Packet> packets;
  packets.push_back({0, net::route_dual_cube(d, 3, 4), 0, 0});
  packets.push_back({1, net::route_dual_cube(d, 0, 0), 0, 0});  // at home
  packets.push_back({2, net::route_dual_cube(d, 7, 1), 0, 0});
  const auto report = sim::route_packet_list(m, std::move(packets));
  EXPECT_EQ(report.packets, 3u);
  EXPECT_EQ(report.total_hops,
            d.distance(3, 4) + d.distance(7, 1));
  EXPECT_GE(report.cycles, 1u);
}

TEST(MetacubeRouting, PathLengthBoundedByLabelWalk) {
  // The class-walk route never exceeds Hamming distance of the fields plus
  // two full class-walks per differing field.
  const net::Metacube mc(2, 2);
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const NodeId u = rng.below(mc.node_count());
    const NodeId v = rng.below(mc.node_count());
    const auto path = route_metacube(mc, u, v);
    EXPECT_TRUE(net::is_valid_path(mc, path));
    EXPECT_EQ(path.front(), u);
    EXPECT_EQ(path.back(), v);
    const unsigned fields_bits = mc.m() * 4;
    EXPECT_LE(path.size() - 1,
              bits::hamming(u, v) + 2u * mc.k() * 4u + fields_bits);
  }
}

TEST(Machine, CommCyclesMatchReportedRoutingCycles) {
  const net::DualCube d(3);
  sim::Machine m(d);
  std::vector<NodeId> dest(d.node_count());
  for (NodeId u = 0; u < d.node_count(); ++u)
    dest[u] = d.cross_neighbor(u);
  const auto report = sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
    return net::route_dual_cube(d, s, v);
  });
  EXPECT_EQ(m.counters().comm_cycles, report.cycles);
  EXPECT_EQ(m.counters().messages, report.total_hops);
}

TEST(StoreForward, AllToOneHotspotDrainsAtPortRate) {
  // Adversarial non-permutation traffic: every node targets node 0, whose
  // single receive port is the bottleneck — N-1 cycles minimum.
  const net::DualCube d(3);
  sim::Machine m(d);
  std::vector<NodeId> dest(d.node_count(), 0);
  const auto report = sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
    return net::route_dual_cube(d, s, v);
  });
  EXPECT_GE(report.cycles, d.node_count() - 1);
  EXPECT_EQ(report.packets, d.node_count());
}

TEST(CutSize, HypercubeDimensionCutIsHalfTheNodes) {
  const net::Hypercube q(5);
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_EQ(net::cut_size(q, [&](NodeId u) { return bits::get(u, i) == 1; }),
              q.node_count() / 2);
  }
}

TEST(CutSize, DualCubeClassCutSeversExactlyTheCrossEdges) {
  for (unsigned n : {2u, 3u, 4u}) {
    const net::DualCube d(n);
    EXPECT_EQ(net::cut_size(d, [&](NodeId u) { return d.node_class(u) == 1; }),
              d.node_count() / 2);
  }
}

TEST(DistanceProfile, HypercubeIsBinomial) {
  const net::Hypercube q(5);
  const auto profile = net::distance_profile(q, 0);
  const u64 binomial[6] = {1, 5, 10, 10, 5, 1};
  for (unsigned k = 0; k <= 5; ++k)
    EXPECT_EQ(profile.at(k), binomial[k]) << "C(5," << k << ")";
}

TEST(DualCubeProfile, HalfTheNodesAreWithinNPlusOneHops) {
  // Sanity on the shape of the dual-cube's distance distribution: the
  // median distance is close to n+1 (measured, not from the paper).
  const net::DualCube d(4);
  const auto profile = net::distance_profile(d, 0);
  u64 within = 0;
  for (const auto& [dist, count] : profile)
    if (dist <= d.order() + 1) within += count;
  EXPECT_GE(within, d.node_count() / 2);
}

}  // namespace
}  // namespace dc
