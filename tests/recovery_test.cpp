// Self-healing execution over dynamic fault timelines.
//
// The contract under test (sim/recovery.hpp + the Machine's timeline
// filter):
//   * a RecoveryDriver owns the machine's fault attachment: strict
//     filtering while it lives, restored to clean on destruction;
//   * a mid-phase fault (epoch change invalidating the planned routes)
//     throws, the driver pays linear backoff — real machine cycles that
//     advance the timeline clock — re-snapshots the new epoch and retries
//     the phase from its checkpoint;
//   * the retry budget bounds total retries; past it the driver either
//     finishes one attempt under kDegrade (messages lost, counted) or
//     rethrows, per RetryPolicy;
//   * every retry/replan/epoch/rejoin is observable: trace instants,
//     metrics counters, Machine counters;
//   * the resilient prefix/broadcast wrappers complete through flaps with
//     the same results as a healthy run (dead-node slots excepted), and
//     never replay a compiled schedule (the timeline pins the machine to
//     the interpreted path);
//   * the sharded engine localizes a global timeline into per-shard ones,
//     rejecting faults on host-virtualized cross-cluster links.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/recovery.hpp"
#include "sim/shard.hpp"
#include "sim/trace.hpp"
#include "topology/dual_cube.hpp"
#include "topology/shard_plan.hpp"

namespace dc::sim {
namespace {

using dc::core::Plus;
using dc::net::DualCube;
using dc::net::NodeId;

std::shared_ptr<const FaultTimeline> share(FaultTimeline t) {
  return std::make_shared<const FaultTimeline>(std::move(t));
}

/// Sends 0 -> 1 once (one comm cycle); throws under strict when 0-1 is
/// down at the machine's current cycle.
void send_01(Machine& m) {
  m.comm_cycle<int>([](NodeId u) -> std::optional<Send<int>> {
    if (u != 0) return std::nullopt;
    return Send<int>{1, 7};
  });
}

std::vector<dc::u64> iota_data(std::size_t n) {
  std::vector<dc::u64> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = i + 1;
  return data;
}

std::size_t count_instants(const TraceRecorder& rec, const std::string& name) {
  std::size_t n = 0;
  for (const TraceEvent& e : rec.merged())
    if (e.ph == 'i' && e.name == name) ++n;
  return n;
}

// ------------------------------------------------------ driver lifecycle

TEST(RecoveryDriver, OwnsTheMachineFaultAttachment) {
  const DualCube d(2);
  Machine m(d);
  m.set_schedule_path(SchedulePath::kCompiled);
  {
    RecoveryDriver drv(m, share(FaultTimeline().link_down(0, 1, 100)));
    EXPECT_TRUE(m.has_faults());
    EXPECT_EQ(m.schedule_path(), SchedulePath::kInterpreted)
        << "a timeline pins the machine to interpretation: no compiled "
           "schedule can replay a faulted epoch";
    EXPECT_EQ(drv.now(), 0u);
    EXPECT_TRUE(drv.snapshot().empty()) << "faults start at cycle 100";
  }
  EXPECT_FALSE(m.has_faults());
  EXPECT_EQ(m.schedule_path(), SchedulePath::kCompiled);
  // The driver refuses a machine that already carries faults.
  m.attach_faults(std::make_shared<FaultPlan>(FaultPlan().kill_node(3)));
  EXPECT_THROW(RecoveryDriver(m, share(FaultTimeline())), dc::CheckError);
  m.clear_faults();
}

TEST(RecoveryDriver, HealthyPhasesRunExactlyOnce) {
  const DualCube d(2);
  Machine m(d);
  RecoveryDriver drv(m, share(FaultTimeline()));
  int calls = 0;
  drv.run_phase("phase:test", [&](const FaultPlan& plan) {
    EXPECT_TRUE(plan.empty());
    ++calls;
    send_01(drv.machine());
  });
  drv.run_phase("phase:test", [&](const FaultPlan&) { ++calls; });
  EXPECT_EQ(calls, 2);
  const RecoveryReport& r = drv.report();
  EXPECT_EQ(r.phases, 2u);
  EXPECT_EQ(r.attempts, 2u);
  EXPECT_EQ(r.retries, 0u);
  EXPECT_EQ(r.replans, 0u);
  EXPECT_EQ(r.backoff_cycles, 0u);
  EXPECT_FALSE(r.degraded);
}

TEST(RecoveryDriver, RetriesWithLinearBackoffUntilTheFlapHeals) {
  const DualCube d(2);
  Machine m(d);
  // 0-1 is down over [0, 5): the phase cannot succeed until the clock
  // reaches 5, and only backoff advances the clock.
  RecoveryDriver drv(m, share(FaultTimeline().link_down(0, 1, 0).link_up(0, 1, 5)));
  int calls = 0;
  drv.run_phase("phase:test", [&](const FaultPlan& plan) {
    ++calls;
    // The replanned snapshots see the fault while it is live.
    EXPECT_EQ(plan.link_dead(0, 1, 0), drv.now() < 5);
    send_01(drv.machine());
  });
  // Attempt 1 at cycle 0: throw (cycle stays uncounted). Backoff 1*2 ->
  // clock 2. Attempt 2 at cycle 2: throw. Backoff 2*2 -> clock 6. Attempt
  // 3 at cycle 6: the link healed at 5, send succeeds.
  EXPECT_EQ(calls, 3);
  const RecoveryReport& r = drv.report();
  EXPECT_EQ(r.attempts, 3u);
  EXPECT_EQ(r.retries, 2u);
  EXPECT_EQ(r.replans, 2u);
  EXPECT_EQ(r.backoff_cycles, 6u);
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(m.counters().comm_cycles, 7u);  // 6 idle + 1 delivered
  EXPECT_EQ(m.counters().messages_lost, 0u);
}

TEST(RecoveryDriver, BudgetExhaustionDegradesWhenAsked) {
  const DualCube d(2);
  Machine m(d);
  RetryPolicy policy;
  policy.retry_budget = 1;
  policy.backoff_cycles = 1;
  policy.degrade_on_exhaustion = true;
  // Permanent link death: no amount of retrying helps.
  RecoveryDriver drv(m, share(FaultTimeline().link_down(0, 1, 0)), policy);
  int calls = 0;
  drv.run_phase("phase:test", [&](const FaultPlan&) {
    ++calls;
    send_01(drv.machine());
  });
  // Attempt 1 throws, retry (budget 1) throws, final attempt under
  // kDegrade drops the message and completes.
  EXPECT_EQ(calls, 3);
  EXPECT_TRUE(drv.report().degraded);
  EXPECT_EQ(drv.report().retries, 1u);
  EXPECT_EQ(m.counters().messages_lost, 1u);
  // The driver restores strict filtering for subsequent phases.
  EXPECT_THROW(send_01(m), FaultError);
}

TEST(RecoveryDriver, BudgetExhaustionRethrowsWhenDegradeIsOff) {
  const DualCube d(2);
  Machine m(d);
  RetryPolicy policy;
  policy.retry_budget = 0;
  policy.degrade_on_exhaustion = false;
  RecoveryDriver drv(m, share(FaultTimeline().link_down(0, 1, 0)), policy);
  EXPECT_THROW(drv.run_phase("phase:test",
                             [&](const FaultPlan&) { send_01(drv.machine()); }),
               FaultError);
  EXPECT_EQ(drv.report().retries, 0u);
  EXPECT_FALSE(drv.report().degraded);
}

// --------------------------------------------------- resilient wrappers

TEST(ResilientPrefix, CompletesThroughAMidRunCrossEdgeFlap) {
  const DualCube d(3);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  // Healthy reference.
  Machine healthy(d);
  healthy.set_schedule_path(SchedulePath::kInterpreted);
  const auto reference = dc::core::dual_prefix(healthy, d, op, data);
  // Algorithm 2's first cross-edge exchange is cycle 2 (after w = n-1 = 2
  // cluster cycles). Flap the 0 <-> cross(0) edge exactly there: the
  // first attempt planned healthy routes at cycle 0 and must abort.
  FaultTimeline t;
  t.link_down(0, d.cross_neighbor(0), 2).link_up(0, d.cross_neighbor(0), 4);
  Machine m(d);
  TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
  m.set_trace(&rec, "recovery-run");
  RecoveryDriver drv(m, share(std::move(t)));
  const auto got = resilient_dual_prefix(drv, d, op, data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(got[i].has_value()) << "index " << i;
    EXPECT_EQ(*got[i], reference[i]) << "index " << i;
  }
  EXPECT_GE(drv.report().retries, 1u);
  EXPECT_EQ(drv.report().replans, drv.report().retries);
  EXPECT_FALSE(drv.report().degraded);
  EXPECT_EQ(m.replayed_cycles(), 0u)
      << "a timeline-attached machine interprets every cycle";
  // The whole story is on the trace: epoch transitions, the retry and the
  // replan, plus balanced phase spans.
  EXPECT_GE(count_instants(rec, "fault_epoch"), 2u);
  EXPECT_EQ(count_instants(rec, "recovery_retry"), drv.report().retries);
  EXPECT_EQ(count_instants(rec, "recovery_replan"), drv.report().replans);
  std::int64_t depth = 0;
  for (const TraceEvent& e : rec.merged()) {
    if (e.ph == 'B') ++depth;
    if (e.ph == 'E') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0) << "spans balance even across aborted attempts";
}

TEST(ResilientPrefix, RejoinedNodesAreObservedAndCounted) {
  const DualCube d(3);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  // Node 9 is down over [1, 3): the first attempt planned it healthy at
  // cycle 0, aborts at cycle 1, and the retry lands after the rejoin.
  FaultTimeline t;
  t.node_down(9, 1).node_up(9, 3);
  Machine m(d);
  RecoveryDriver drv(m, share(std::move(t)));
  const auto got = resilient_dual_prefix(drv, d, op, data);
  // The final attempt's snapshot is fault-free, so every slot engages
  // with the full (unmasked) prefix.
  Machine healthy(d);
  healthy.set_schedule_path(SchedulePath::kInterpreted);
  const auto reference = dc::core::dual_prefix(healthy, d, op, data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(got[i].has_value()) << "index " << i;
    EXPECT_EQ(*got[i], reference[i]) << "index " << i;
  }
  EXPECT_GE(drv.report().retries, 1u);
  EXPECT_EQ(m.fault_rejoins(), 1u);
  EXPECT_GE(m.fault_epochs_seen(), 2u);
}

TEST(ResilientBroadcast, NodesDeadInTheFinalSnapshotStayNull) {
  const DualCube d(3);
  // Killing a cross-partner of the root's cluster forces repair traffic
  // (its foreign cluster is reachable only by detour), so the transport
  // accounting is exercised too.
  const NodeId victim = d.cross_neighbor(1);
  FaultTimeline t;
  t.node_down(victim, 0);  // never rejoins
  Machine m(d);
  RecoveryDriver drv(m, share(std::move(t)));
  const auto got = resilient_dual_broadcast<int>(drv, d, /*root=*/0, 42);
  for (NodeId u = 0; u < d.node_count(); ++u) {
    if (u == victim) {
      EXPECT_FALSE(got[u].has_value());
    } else {
      ASSERT_TRUE(got[u].has_value()) << "node " << u;
      EXPECT_EQ(*got[u], 42);
    }
  }
  // Dead from the start = planned around from the start: no retries.
  EXPECT_EQ(drv.report().retries, 0u);
  EXPECT_GT(drv.transport()->repaired, 0u);
}

TEST(ResilientPrefix, PublishesRetryAndEpochMetrics) {
  MetricsRegistry::instance().reset();
  MetricsRegistry::arm();
  const DualCube d(3);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  FaultTimeline t;
  t.link_down(0, d.cross_neighbor(0), 2).link_up(0, d.cross_neighbor(0), 4);
  Machine m(d);
  {
    RecoveryDriver drv(m, share(std::move(t)));
    (void)resilient_dual_prefix(drv, d, op, data);
    EXPECT_GE(drv.report().retries, 1u);
    m.publish_metrics();
  }
  MetricsRegistry::disarm();
  const auto snap = MetricsRegistry::instance().snapshot();
  const auto counter_value = [&](const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : snap.counters)
      if (n == name) return v;
    return 0;
  };
  const auto gauge_value = [&](const std::string& name) -> double {
    for (const auto& [n, v] : snap.gauges)
      if (n == name) return v;
    return -1.0;
  };
  EXPECT_GE(counter_value("sim.fault.retries"), 1u);
  EXPECT_GE(counter_value("sim.fault.replans"), 1u);
  EXPECT_GE(gauge_value("sim.fault.epochs"), 2.0);
  EXPECT_EQ(gauge_value("sim.fault.rejoins"), 0.0);
}

// ------------------------------------------------------- sharded engine

TEST(ShardTimeline, LocalizesNodeEventsAndDropWindows) {
  const DualCube d(3);
  ShardEngine eng(d, 2);
  const net::ShardPlan plan(d, 2);
  const NodeId victim = 9;
  FaultTimeline global(123);
  global.node_down(victim, 4).node_up(victim, 8);
  global.drop_window(50, 10, 12);
  eng.attach_fault_timeline(global, FaultPolicy::kDegrade);
  EXPECT_TRUE(eng.has_faults());
  const unsigned home = plan.shard_of_node(victim);
  const NodeId local = plan.local_index(victim);
  for (unsigned k = 0; k < 2; ++k) {
    const FaultTimeline* tl = eng.machine(k).fault_timeline();
    ASSERT_NE(tl, nullptr) << "shard " << k;
    EXPECT_EQ(tl->node_dead(local, 5), k == home) << "shard " << k;
    EXPECT_EQ(tl->drop_permille_at(10), 50u) << "drop windows hit all shards";
    EXPECT_NE(tl->seed(), global.seed() ^ ((1 - k) * 0x9e3779b97f4a7c15ull))
        << "per-shard seeds are decorrelated";
  }
  eng.clear_faults();
  EXPECT_FALSE(eng.has_faults());
}

TEST(ShardTimeline, RejectsFaultsOnVirtualizedCrossClusterLinks) {
  const DualCube d(3);
  ShardEngine eng(d, 2);
  FaultTimeline global;
  global.link_down(0, d.cross_neighbor(0), 3);
  try {
    eng.attach_fault_timeline(global);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("virtualized by the sharded engine"), std::string::npos)
        << msg;
  }
  EXPECT_FALSE(eng.has_faults()) << "a rejected attach leaves no partial state";
  // In-cluster links are real per-shard edges and may fault.
  FaultTimeline ok;
  ok.link_down(0, d.cluster_neighbor(0, 0), 3);
  eng.attach_fault_timeline(ok, FaultPolicy::kDegrade);
  EXPECT_TRUE(eng.has_faults());
  eng.clear_faults();
}

}  // namespace
}  // namespace dc::sim
