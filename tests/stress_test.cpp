// Randomized differential campaigns: drive every algorithm with randomly
// drawn configurations and check against independent references. These are
// deliberately broad, seed-deterministic sweeps — the safety net under the
// targeted unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "collectives/allgather.hpp"
#include "collectives/reduce.hpp"
#include "core/block_prefix.hpp"
#include "core/block_sort.hpp"
#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/enumeration_sort.hpp"
#include "core/radix_sort.hpp"
#include "core/segmented.hpp"
#include "core/sequential.hpp"
#include "support/rng.hpp"

namespace dc {
namespace {

TEST(Stress, PrefixDifferentialCampaign) {
  Rng rng(0xD0);
  for (int trial = 0; trial < 60; ++trial) {
    const unsigned n = static_cast<unsigned>(1 + rng.below(5));
    const net::DualCube d(n);
    std::vector<u64> data(d.node_count());
    for (auto& x : data) x = rng();
    const bool inclusive = rng.below(2) == 0;
    sim::Machine m(d);
    switch (rng.below(3)) {
      case 0: {
        const core::Plus<u64> op;
        const auto out = core::dual_prefix(m, d, op, data, {}, inclusive);
        ASSERT_EQ(out, inclusive ? core::seq_inclusive_scan(op, data)
                                 : core::seq_exclusive_scan(op, data));
        break;
      }
      case 1: {
        const core::Max<u64> op;
        const auto out = core::dual_prefix(m, d, op, data, {}, inclusive);
        ASSERT_EQ(out, inclusive ? core::seq_inclusive_scan(op, data)
                                 : core::seq_exclusive_scan(op, data));
        break;
      }
      default: {
        const core::Xor<u64> op;
        const auto out = core::dual_prefix(m, d, op, data, {}, inclusive);
        ASSERT_EQ(out, inclusive ? core::seq_inclusive_scan(op, data)
                                 : core::seq_exclusive_scan(op, data));
        break;
      }
    }
    ASSERT_EQ(m.counters().comm_cycles, 2 * n) << "trial " << trial;
  }
}

TEST(Stress, ThreeSortsAgreeCampaign) {
  Rng rng(0xD1);
  for (int trial = 0; trial < 25; ++trial) {
    const unsigned n = static_cast<unsigned>(2 + rng.below(3));
    const net::DualCube d(n);
    const net::RecursiveDualCube r(n);
    std::vector<u64> input(d.node_count());
    for (auto& k : input) k = rng.below(256);
    auto expected = input;
    std::sort(expected.begin(), expected.end());

    auto a = input;
    sim::Machine ma(r);
    core::dual_sort(ma, r, a);
    ASSERT_EQ(a, expected) << "bitonic, trial " << trial;

    auto b = input;
    sim::Machine mb(d);
    core::enumeration_sort(mb, d, b);
    ASSERT_EQ(b, expected) << "enumeration, trial " << trial;

    auto c = input;
    sim::Machine mc(d);
    core::radix_sort(mc, d, c, 8);
    ASSERT_EQ(c, expected) << "radix, trial " << trial;
  }
}

TEST(Stress, BlockVariantsCampaign) {
  Rng rng(0xD2);
  const core::Plus<u64> plus;
  for (int trial = 0; trial < 20; ++trial) {
    const unsigned n = static_cast<unsigned>(1 + rng.below(3));
    const std::size_t block = 1 + rng.below(32);
    const net::DualCube d(n);
    const net::RecursiveDualCube r(n);
    std::vector<u64> data(d.node_count() * block);
    for (auto& x : data) x = rng.below(100000);

    sim::Machine mp(d);
    ASSERT_EQ(core::block_prefix(mp, d, plus, data, block),
              core::seq_inclusive_scan(plus, data))
        << "block prefix, n=" << n << " m=" << block;

    auto keys = data;
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    sim::Machine ms(r);
    core::block_sort(ms, r, keys, block);
    ASSERT_EQ(keys, expected) << "block sort, n=" << n << " m=" << block;
  }
}

TEST(Stress, SegmentedScanCampaign) {
  Rng rng(0xD3);
  const core::Plus<u64> plus;
  const core::Seg<core::Plus<u64>> seg;
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned n = static_cast<unsigned>(1 + rng.below(4));
    const net::DualCube d(n);
    std::vector<u64> values(d.node_count());
    std::vector<bool> heads(d.node_count());
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = rng.below(1000);
      heads[i] = rng.below(4) == 0;
    }
    sim::Machine m(d);
    const auto out = core::segmented_values(
        core::dual_prefix(m, d, seg, core::make_segmented(values, heads)));
    ASSERT_EQ(out, core::seq_segmented_scan(plus, values, heads))
        << "trial " << trial;
  }
}

TEST(Stress, CollectivesCampaign) {
  Rng rng(0xD4);
  const core::Plus<u64> plus;
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned n = static_cast<unsigned>(1 + rng.below(4));
    const net::DualCube d(n);
    const net::NodeId root = rng.below(d.node_count());
    std::vector<u64> values(d.node_count());
    for (auto& v : values) v = rng.below(1000);
    const u64 expected =
        std::accumulate(values.begin(), values.end(), u64{0});

    sim::Machine mr(d);
    ASSERT_EQ(collectives::dual_reduce(mr, d, root, plus, values), expected);
    ASSERT_EQ(mr.counters().comm_cycles, 2 * n);

    sim::Machine mg(d);
    const auto all = collectives::dual_allgather(mg, d, values);
    ASSERT_EQ(all[root], values);
  }
}

TEST(Stress, SortObserverInvariantHoldsOnRandomInputs) {
  // After the final full-merge step of level k, every 2^(2k-1) block is
  // monotone — for arbitrary inputs, not just the one in the unit test.
  Rng rng(0xD5);
  const unsigned n = 3;
  const net::RecursiveDualCube r(n);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<u64> keys(r.node_count());
    for (auto& k : keys) k = rng.below(64);
    sim::Machine m(r);
    core::dual_sort<u64>(
        m, r, keys, false,
        [&](const std::string& phase, const std::vector<u64>& now) {
          if (phase.find("full-merge dim 0") == std::string::npos) return;
          const unsigned k = static_cast<unsigned>(phase[6] - '0');
          const u64 block = bits::pow2(2 * k - 1);
          for (u64 base = 0; base < now.size(); base += block) {
            const bool desc = k < n && bits::get(base, 2 * k - 1) == 1;
            const auto first = now.begin() + static_cast<std::ptrdiff_t>(base);
            const auto last = first + static_cast<std::ptrdiff_t>(block);
            if (desc) {
              ASSERT_TRUE(std::is_sorted(first, last, std::greater<>()));
            } else {
              ASSERT_TRUE(std::is_sorted(first, last));
            }
          }
        });
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  }
}

}  // namespace
}  // namespace dc
