// Compiled-schedule tests: replaying a cached oblivious schedule must be
// observationally identical to the interpreted path — same results, same
// Counters, same per-cycle message trace, same per-edge loads — and
// record-time validation must fail with the interpreted path's exact
// SimError messages while caching nothing.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "collectives/allgather.hpp"
#include "collectives/alltoall.hpp"
#include "collectives/broadcast.hpp"
#include "collectives/metacube_broadcast.hpp"
#include "collectives/reduce.hpp"
#include "collectives/tree.hpp"
#include "core/block_sort.hpp"
#include "core/cube_bitonic_sort.hpp"
#include "core/cube_prefix.hpp"
#include "core/dimension_exchange.hpp"
#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/ops.hpp"
#include "core/segmented.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "sim/schedule.hpp"
#include "support/rng.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::sim {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  // Each test records its own schedules from scratch.
  void SetUp() override { ScheduleCache::instance().clear(); }
};

// Per-directed-edge load vector in a deterministic (CSR) order.
std::vector<std::uint64_t> edge_loads(const Machine& m,
                                      const net::Topology& t) {
  std::vector<std::uint64_t> loads;
  for (net::NodeId u = 0; u < t.node_count(); ++u) {
    for (const net::NodeId v : t.neighbors(u)) loads.push_back(m.edge_load(u, v));
  }
  return loads;
}

// Runs `algo` three ways — interpreted, compiled-record, compiled-replay —
// and checks both compiled runs reproduce the interpreted run's result,
// Counters, per-cycle message trace and per-edge loads exactly.
template <typename Algo>
void expect_parity(const net::Topology& t, Algo&& algo) {
  Machine interp(t);
  interp.set_schedule_path(SchedulePath::kInterpreted);
  interp.enable_trace();
  interp.enable_edge_load();
  const auto expected = algo(interp);

  Machine record(t);
  record.set_schedule_path(SchedulePath::kCompiled);
  record.enable_trace();
  record.enable_edge_load();
  const auto recorded = algo(record);
  EXPECT_EQ(record.replayed_cycles(), 0u) << "record run must not replay";
  EXPECT_EQ(recorded, expected);
  EXPECT_EQ(record.counters(), interp.counters());
  EXPECT_EQ(record.messages_per_cycle(), interp.messages_per_cycle());
  EXPECT_EQ(edge_loads(record, t), edge_loads(interp, t));

  Machine replay(t);
  replay.set_schedule_path(SchedulePath::kCompiled);
  replay.enable_trace();
  replay.enable_edge_load();
  const auto replayed = algo(replay);
  EXPECT_GT(replay.replayed_cycles(), 0u) << "replay run must hit the cache";
  EXPECT_EQ(replayed, expected);
  EXPECT_EQ(replay.counters(), interp.counters());
  EXPECT_EQ(replay.messages_per_cycle(), interp.messages_per_cycle());
  EXPECT_EQ(edge_loads(replay, t), edge_loads(interp, t));
}

std::vector<u64> random_values(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u64> data(n);
  for (auto& x : data) x = rng.below(1000);
  return data;
}

TEST_F(ScheduleTest, DualPrefixParity) {
  const net::DualCube d(3);
  const auto data = random_values(d.node_count(), 1);
  expect_parity(d, [&](Machine& m) {
    return core::dual_prefix(m, d, core::Plus<u64>{}, data);
  });
}

TEST_F(ScheduleTest, CubePrefixParity) {
  const net::Hypercube q(4);
  const auto data = random_values(q.node_count(), 2);
  expect_parity(q, [&](Machine& m) {
    auto out = core::cube_prefix(m, q, core::Plus<u64>{}, data, true);
    return std::pair{std::move(out.total), std::move(out.prefix)};
  });
}

TEST_F(ScheduleTest, CubeBitonicSortParity) {
  const net::Hypercube q(4);
  const auto input = generate_keys(KeyDistribution::kUniform, q.node_count(), 3);
  expect_parity(q, [&](Machine& m) {
    auto keys = input;
    core::cube_bitonic_sort(m, q, keys);
    return keys;
  });
}

TEST_F(ScheduleTest, DualSortParity) {
  const net::RecursiveDualCube r(2);
  const auto input = generate_keys(KeyDistribution::kUniform, r.node_count(), 4);
  expect_parity(r, [&](Machine& m) {
    auto keys = input;
    core::dual_sort(m, r, keys);
    return keys;
  });
}

TEST_F(ScheduleTest, DimensionExchangeParity) {
  const net::RecursiveDualCube r(2);
  const auto data = random_values(r.node_count(), 5);
  // j = 2 > 0 exercises the 3-cycle relayed schedule.
  expect_parity(r, [&](Machine& m) {
    return core::dimension_exchange(m, r, 2, data);
  });
}

TEST_F(ScheduleTest, DualBroadcastParity) {
  const net::DualCube d(3);
  expect_parity(d, [&](Machine& m) {
    return collectives::dual_broadcast<u64>(m, d, net::NodeId{5}, 42);
  });
}

TEST_F(ScheduleTest, CubeBroadcastParity) {
  const net::Hypercube q(4);
  expect_parity(q, [&](Machine& m) {
    return collectives::cube_broadcast<u64>(m, q, net::NodeId{3}, 7);
  });
}

TEST_F(ScheduleTest, TreeCollectivesParity) {
  const net::DualCube d(2);
  const auto values = random_values(d.node_count(), 6);
  expect_parity(d, [&](Machine& m) {
    return collectives::tree_broadcast<u64>(m, d, net::NodeId{1}, 9);
  });
  ScheduleCache::instance().clear();
  expect_parity(d, [&](Machine& m) {
    return collectives::tree_reduce(m, d, net::NodeId{1}, core::Plus<u64>{},
                                    values);
  });
}

TEST_F(ScheduleTest, ReduceCollectivesParity) {
  const net::DualCube d(3);
  const auto values = random_values(d.node_count(), 7);
  expect_parity(d, [&](Machine& m) {
    return collectives::dual_reduce(m, d, net::NodeId{2}, core::Plus<u64>{},
                                    values);
  });
  ScheduleCache::instance().clear();
  expect_parity(d, [&](Machine& m) {
    return collectives::dual_allreduce(m, d, core::Plus<u64>{}, values);
  });
  const net::Hypercube q(4);
  const auto qvalues = random_values(q.node_count(), 8);
  expect_parity(q, [&](Machine& m) {
    return collectives::cube_reduce(m, q, net::NodeId{1}, core::Plus<u64>{},
                                    qvalues);
  });
}

// Block workloads run their cycles through exchange_blocks: interpreted and
// record runs ship vector<T> payloads through the fully validated path,
// replay gathers SoA planes — all three must agree exactly.
TEST_F(ScheduleTest, BlockSortParity) {
  const net::RecursiveDualCube r(2);
  const std::size_t block = 4;
  const auto input = random_values(r.node_count() * block, 10);
  expect_parity(r, [&](Machine& m) {
    auto data = input;
    core::block_sort(m, r, data, block);
    return data;
  });
}

TEST_F(ScheduleTest, DualAllgatherParity) {
  const net::DualCube d(3);
  const auto values = random_values(d.node_count(), 11);
  expect_parity(d, [&](Machine& m) {
    return collectives::dual_allgather(m, d, values);
  });
}

TEST_F(ScheduleTest, CubeAllgatherParity) {
  const net::Hypercube q(4);
  const auto values = random_values(q.node_count(), 12);
  expect_parity(q, [&](Machine& m) {
    return collectives::cube_allgather(m, q, values);
  });
}

TEST_F(ScheduleTest, DualAlltoallParity) {
  const net::RecursiveDualCube r(2);
  const std::size_t n = r.node_count();
  std::vector<std::vector<u64>> messages(n, std::vector<u64>(n));
  for (net::NodeId u = 0; u < n; ++u)
    for (net::NodeId v = 0; v < n; ++v) messages[u][v] = u * 1000 + v;
  expect_parity(r, [&](Machine& m) {
    return collectives::dual_alltoall(m, r, messages);
  });
}

TEST_F(ScheduleTest, MetacubeBroadcastParity) {
  const net::Metacube mc(2, 2);
  expect_parity(mc, [&](Machine& m) {
    return collectives::metacube_broadcast<u64>(m, mc, net::NodeId{11}, 42);
  });
  // The schedule key carries the root: a different root must record its own
  // schedule, not replay node 11's.
  expect_parity(mc, [&](Machine& m) {
    return collectives::metacube_broadcast<u64>(m, mc, net::NodeId{0}, 7);
  });
}

TEST_F(ScheduleTest, SegmentedPrefixParity) {
  const net::DualCube d(3);
  const auto values = random_values(d.node_count(), 13);
  std::vector<bool> heads(d.node_count(), false);
  heads[0] = heads[5] = heads[17] = heads[23] = true;
  expect_parity(d, [&](Machine& m) {
    return core::segmented_dual_prefix(m, d, core::Plus<u64>{}, values, heads);
  });
  // The segmented run shares dual_prefix's schedule (the Seg monoid changes
  // no destination), so a plain dual_prefix replays the schedule the
  // segmented record run just cached.
  Machine m(d);
  m.set_schedule_path(SchedulePath::kCompiled);
  (void)core::dual_prefix(m, d, core::Plus<u64>{}, values);
  EXPECT_GT(m.replayed_cycles(), 0u);
}

TEST_F(ScheduleTest, SegmentedBlockPrefixParity) {
  const net::DualCube d(2);
  const std::size_t block = 3;
  const auto values = random_values(d.node_count() * block, 14);
  std::vector<bool> heads(values.size(), false);
  heads[0] = heads[4] = heads[13] = true;
  expect_parity(d, [&](Machine& m) {
    return core::segmented_block_prefix(m, d, core::Plus<u64>{}, values, heads,
                                        block);
  });
}

TEST_F(ScheduleTest, CacheIsReusedAcrossRuns) {
  const net::DualCube d(2);
  const auto data = random_values(d.node_count(), 9);
  const auto run = [&] {
    Machine m(d);
    m.set_schedule_path(SchedulePath::kCompiled);
    return core::dual_prefix(m, d, core::Plus<u64>{}, data);
  };
  const auto first = run();
  const std::size_t cached = ScheduleCache::instance().size();
  EXPECT_GT(cached, 0u);
  EXPECT_EQ(run(), first);
  EXPECT_EQ(ScheduleCache::instance().size(), cached)
      << "second run must replay, not re-record";
}

// Record-time validation reuses the interpreted path verbatim, so the
// SimError messages match tests/sim_test.cpp byte for byte — and a run
// that throws must cache nothing.
TEST_F(ScheduleTest, RecordTimeNonEdgeSendMessageIsExact) {
  const net::Hypercube q(3);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  try {
    ObliviousSection sched(m, "bad_nonedge", {});
    (void)sched.exchange<int>(
        [](net::NodeId u) { return u == 0 ? net::NodeId{3} : kNoSend; },
        [](net::NodeId) { return 1; });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(e.what(), "node 0 sent to 3 but Q_3 has no such link");
  }
  EXPECT_EQ(ScheduleCache::instance().size(), 0u);
}

TEST_F(ScheduleTest, RecordTimeOutOfRangeSendMessageIsExact) {
  const net::Hypercube q(2);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  try {
    ObliviousSection sched(m, "bad_range", {});
    (void)sched.exchange<int>(
        [](net::NodeId u) { return u == 1 ? net::NodeId{99} : kNoSend; },
        [](net::NodeId) { return 1; });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(e.what(), "node 1 sent to out-of-range node 99");
  }
  EXPECT_EQ(ScheduleCache::instance().size(), 0u);
}

TEST_F(ScheduleTest, RecordTimeOnePortViolationMessageIsExact) {
  const net::Hypercube q(3);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  try {
    ObliviousSection sched(m, "bad_port", {});
    (void)sched.exchange<int>(
        [](net::NodeId u) {
          return (u == 1 || u == 2 || u == 4) ? net::NodeId{0} : kNoSend;
        },
        [](net::NodeId) { return 7; });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(
        e.what(),
        "1-port violation: node 0 would receive two messages in one cycle");
  }
  EXPECT_EQ(ScheduleCache::instance().size(), 0u);
}

// The interpreted/record fallback of exchange_blocks routes through the
// same validated comm_cycle as scalar exchanges, so a bad block cycle
// fails with the identical SimError strings — and caches nothing.
TEST_F(ScheduleTest, BlockRecordTimeNonEdgeSendMessageIsExact) {
  const net::Hypercube q(3);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  try {
    ObliviousSection sched(m, "bad_block_nonedge", {});
    (void)sched.exchange_blocks<int>(
        2, [](net::NodeId u) { return u == 0 ? net::NodeId{3} : kNoSend; },
        [](net::NodeId, int* dst) { dst[0] = dst[1] = 1; });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(e.what(), "node 0 sent to 3 but Q_3 has no such link");
  }
  EXPECT_EQ(ScheduleCache::instance().size(), 0u);
}

TEST_F(ScheduleTest, BlockRecordTimeOnePortViolationMessageIsExact) {
  const net::Hypercube q(3);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  try {
    ObliviousSection sched(m, "bad_block_port", {});
    // Width 1 takes the scalar-payload interpreted fallback; the error
    // string must still match the scalar path byte for byte.
    (void)sched.exchange_blocks<int>(
        1,
        [](net::NodeId u) {
          return (u == 1 || u == 2 || u == 4) ? net::NodeId{0} : kNoSend;
        },
        [](net::NodeId, int* dst) { *dst = 7; });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(
        e.what(),
        "1-port violation: node 0 would receive two messages in one cycle");
  }
  EXPECT_EQ(ScheduleCache::instance().size(), 0u);
}

TEST_F(ScheduleTest, ReplayRejectsExtraCycles) {
  const net::Hypercube q(2);
  const auto one_cycle = [&](Machine& m) {
    ObliviousSection sched(m, "short", {});
    (void)sched.exchange<int>(
        [](net::NodeId u) { return bits::flip(u, 0); },
        [](net::NodeId u) { return static_cast<int>(u); });
    sched.commit();
  };
  Machine a(q);
  a.set_schedule_path(SchedulePath::kCompiled);
  one_cycle(a);

  Machine b(q);
  b.set_schedule_path(SchedulePath::kCompiled);
  ObliviousSection sched(b, "short", {});
  ASSERT_TRUE(sched.replaying());
  (void)sched.exchange<int>(
      [](net::NodeId u) { return bits::flip(u, 0); },
      [](net::NodeId u) { return static_cast<int>(u); });
  EXPECT_THROW((void)sched.exchange<int>(
                   [](net::NodeId u) { return bits::flip(u, 0); },
                   [](net::NodeId u) { return static_cast<int>(u); }),
               CheckError);
}

// The validation flag is part of the cache key: a schedule recorded with
// link validation off (and containing a non-edge hop) replays only on
// non-validating machines; a validating machine records afresh and throws.
TEST_F(ScheduleTest, ValidationFlagSeparatesCacheEntries) {
  const net::Hypercube q(3);
  const auto warp = [&](Machine& m) {
    ObliviousSection sched(m, "warp", {});
    auto inbox = sched.exchange<int>(
        [](net::NodeId u) { return u == 0 ? net::NodeId{7} : kNoSend; },
        [](net::NodeId) { return 5; });
    sched.commit();
    return inbox[7].has_value();
  };
  Machine loose(q, /*validate=*/false);
  loose.set_schedule_path(SchedulePath::kCompiled);
  EXPECT_TRUE(warp(loose));

  Machine loose_replay(q, /*validate=*/false);
  loose_replay.set_schedule_path(SchedulePath::kCompiled);
  EXPECT_TRUE(warp(loose_replay));
  EXPECT_EQ(loose_replay.replayed_cycles(), 1u);

  Machine strict(q);
  strict.set_schedule_path(SchedulePath::kCompiled);
  EXPECT_THROW(warp(strict), SimError);
}

// The regression the fault subsystem depends on: a FaultyTopology keeps
// the base's name() and node_count() and differs ONLY in its edge set, so
// the adjacency fingerprint in the cache key is the sole thing standing
// between a healthy schedule and a faulted graph. A cached schedule must
// NOT be served for the same-name mutated-edge topology.
TEST_F(ScheduleTest, FingerprintKeepsSameNameMutatedEdgeGraphsApart) {
  const net::DualCube d(2);
  Machine healthy(d);
  healthy.set_schedule_path(SchedulePath::kCompiled);
  {
    ObliviousSection sched(healthy, "probe", {1});
    (void)sched.exchange<int>(
        [&](net::NodeId u) { return d.cross_neighbor(u); },
        [](net::NodeId u) { return static_cast<int>(u); });
    sched.commit();
  }
  EXPECT_EQ(ScheduleCache::instance().size(), 1u);

  // Positive control: an equal graph (same family, same edges) hits.
  const net::DualCube same(2);
  Machine twin(same);
  twin.set_schedule_path(SchedulePath::kCompiled);
  {
    ObliviousSection sched(twin, "probe", {1});
    EXPECT_TRUE(sched.replaying()) << "identical graphs must share schedules";
  }

  // Same name, same node count, one link removed: must miss.
  FaultPlan plan;
  plan.kill_link(0, 1);
  const FaultyTopology faulted(d, plan);
  ASSERT_EQ(faulted.name(), d.name());
  ASSERT_EQ(faulted.node_count(), d.node_count());
  Machine m(faulted);
  m.set_schedule_path(SchedulePath::kCompiled);
  {
    ObliviousSection sched(m, "probe", {1});
    EXPECT_FALSE(sched.replaying())
        << "a schedule recorded on the healthy graph must never replay on "
           "a same-name faulted graph";
  }
}

// ------------------------------------------------- cache memory budgeting

Schedule make_schedule(std::size_t n, std::size_t cycles) {
  std::vector<ScheduleCycle> cyc(cycles);
  for (auto& c : cyc) {
    c.recv_from.assign(n, kNoSender);
    c.recv_slot.assign(n, kNoEdgeSlot);
  }
  return Schedule(std::move(cyc));
}

ScheduleKey key_named(const std::string& algo) {
  return ScheduleKey{"T#1", algo, {}, true};
}

class ScheduleCacheBudgetTest : public ScheduleTest {
 protected:
  void TearDown() override {
    ScheduleCache::instance().clear();
    ScheduleCache::instance().set_capacity_bytes(
        ScheduleCache::kDefaultCapacityBytes);
  }
};

TEST_F(ScheduleCacheBudgetTest, ByteAccountingTracksStoredSchedules) {
  auto& cache = ScheduleCache::instance();
  const auto s = std::make_shared<const Schedule>(make_schedule(64, 4));
  EXPECT_GT(s->byte_size(), 64u * 4u * sizeof(net::NodeId));
  cache.store(key_named("a"), s);
  const auto st = cache.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, s->byte_size());
  EXPECT_EQ(st.capacity_bytes, ScheduleCache::kDefaultCapacityBytes);
  // Re-storing the same key must not double-count.
  cache.store(key_named("a"),
              std::make_shared<const Schedule>(make_schedule(64, 4)));
  EXPECT_EQ(cache.stats().bytes, s->byte_size());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(ScheduleCacheBudgetTest, EvictsLeastRecentlyUsedFirst) {
  auto& cache = ScheduleCache::instance();
  const auto one = std::make_shared<const Schedule>(make_schedule(32, 2));
  const std::size_t unit = one->byte_size();
  cache.set_capacity_bytes(2 * unit);  // room for exactly two entries

  cache.store(key_named("a"), one);
  cache.store(key_named("b"),
              std::make_shared<const Schedule>(make_schedule(32, 2)));
  EXPECT_EQ(cache.size(), 2u);
  // Touch "a" so "b" becomes the least recently used...
  EXPECT_NE(cache.find(key_named("a")), nullptr);
  // ...then push a third entry over the budget.
  cache.store(key_named("c"),
              std::make_shared<const Schedule>(make_schedule(32, 2)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(key_named("a")), nullptr) << "recently used survives";
  EXPECT_NE(cache.find(key_named("c")), nullptr) << "newest survives";
  EXPECT_EQ(cache.find(key_named("b")), nullptr) << "LRU entry is evicted";
  const auto st = cache.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.bytes, 2 * unit);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 1u);
}

TEST_F(ScheduleCacheBudgetTest, OversizeEntryIsKeptNeverThrashed) {
  auto& cache = ScheduleCache::instance();
  cache.set_capacity_bytes(1);  // nothing fits
  cache.store(key_named("big"),
              std::make_shared<const Schedule>(make_schedule(128, 8)));
  EXPECT_NE(cache.find(key_named("big")), nullptr)
      << "the entry being stored must survive its own insert, or every "
         "oversize schedule would record forever";
  // A second store evicts the old one (it is now the LRU tail).
  cache.store(key_named("big2"),
              std::make_shared<const Schedule>(make_schedule(128, 8)));
  EXPECT_EQ(cache.find(key_named("big")), nullptr);
  EXPECT_NE(cache.find(key_named("big2")), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST_F(ScheduleCacheBudgetTest, ShrinkingCapacityEvictsImmediately) {
  auto& cache = ScheduleCache::instance();
  for (const char* name : {"a", "b", "c", "d"}) {
    cache.store(key_named(name),
                std::make_shared<const Schedule>(make_schedule(16, 1)));
  }
  EXPECT_EQ(cache.size(), 4u);
  const std::size_t unit = cache.stats().bytes / 4;
  cache.set_capacity_bytes(2 * unit);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.find(key_named("a")), nullptr) << "oldest evicted first";
  EXPECT_EQ(cache.find(key_named("b")), nullptr);
  EXPECT_NE(cache.find(key_named("d")), nullptr);
}

}  // namespace
}  // namespace dc::sim
