// Tests for the ring-pipelined broadcast.
#include <gtest/gtest.h>

#include "collectives/pipeline_broadcast.hpp"
#include "support/rng.hpp"

namespace dc::collectives {
namespace {

struct PipeCase {
  unsigned n;
  std::size_t chunks;
  net::NodeId root;
};

class PipelineTest : public ::testing::TestWithParam<PipeCase> {};

TEST_P(PipelineTest, DeliversAllChunksInOrder) {
  const auto [n, count, root] = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  Rng rng(count);
  std::vector<u64> chunks(count);
  for (auto& c : chunks) c = rng();
  const auto out =
      ring_pipeline_broadcast(m, d, root % d.node_count(), chunks);
  for (net::NodeId u = 0; u < d.node_count(); ++u)
    ASSERT_EQ(out[u], chunks) << "node " << u;
  EXPECT_EQ(m.counters().comm_cycles, d.node_count() - 2 + count);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PipelineTest,
    ::testing::Values(PipeCase{2, 1, 0}, PipeCase{2, 5, 3},
                      PipeCase{3, 1, 0}, PipeCase{3, 10, 17},
                      PipeCase{3, 100, 31}, PipeCase{4, 7, 77}),
    [](const auto& param_info) {
      return "D" + std::to_string(param_info.param.n) + "_B" +
             std::to_string(param_info.param.chunks) + "_r" +
             std::to_string(param_info.param.root);
    });

TEST(Pipeline, BeatsBinomialForBulkMessages) {
  const net::DualCube d(3);
  std::vector<u64> chunks(200, 7);
  sim::Machine mp(d);
  ring_pipeline_broadcast(mp, d, 0, chunks);
  sim::Machine mb(d);
  repeated_binomial_broadcast(mb, d, 0, chunks);
  EXPECT_LT(mp.counters().comm_cycles, mb.counters().comm_cycles);
}

TEST(Pipeline, BinomialWinsForSingleChunk) {
  const net::DualCube d(3);
  const std::vector<u64> one{42};
  sim::Machine mp(d);
  ring_pipeline_broadcast(mp, d, 0, one);
  sim::Machine mb(d);
  repeated_binomial_broadcast(mb, d, 0, one);
  EXPECT_GT(mp.counters().comm_cycles, mb.counters().comm_cycles);
}

TEST(Pipeline, RejectsEmptyMessage) {
  const net::DualCube d(2);
  sim::Machine m(d);
  EXPECT_THROW(ring_pipeline_broadcast(m, d, 0, std::vector<u64>{}),
               CheckError);
}

}  // namespace
}  // namespace dc::collectives
