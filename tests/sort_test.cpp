// Tests for the sorting algorithms: hypercube bitonic baseline (Section 5)
// and the dual-cube sort (Algorithm 3) — correctness across orders, tags,
// and key distributions; permutation preservation; exact Theorem 2 step
// counts; and the per-phase bitonic invariants of the schedule.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cube_bitonic_sort.hpp"
#include "core/dual_sort.hpp"
#include "core/formulas.hpp"
#include "support/rng.hpp"

namespace dc::core {
namespace {

bool is_permutation_of(std::vector<u64> a, std::vector<u64> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

/// True iff `v` is bitonic up to rotation: at most two "direction changes"
/// around the cycle.
bool is_cyclic_bitonic(const std::vector<u64>& v) {
  const std::size_t n = v.size();
  if (n <= 2) return true;
  unsigned changes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 a = v[i];
    const u64 b = v[(i + 1) % n];
    const u64 c = v[(i + 2) % n];
    if ((a < b && b > c) || (a > b && b < c)) ++changes;
  }
  return changes <= 2;
}

// ---------------------------------------------------- hypercube bitonic sort

struct CubeSortCase {
  unsigned dim;
  KeyDistribution dist;
};

class CubeSortTest : public ::testing::TestWithParam<CubeSortCase> {};

TEST_P(CubeSortTest, SortsAscending) {
  const auto [dim, dist] = GetParam();
  const net::Hypercube q(dim);
  sim::Machine m(q);
  auto keys = generate_keys(dist, q.node_count(), dim);
  const auto original = keys;
  cube_bitonic_sort(m, q, keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(is_permutation_of(keys, original));
}

TEST_P(CubeSortTest, SortsDescending) {
  const auto [dim, dist] = GetParam();
  const net::Hypercube q(dim);
  sim::Machine m(q);
  auto keys = generate_keys(dist, q.node_count(), dim + 1);
  const auto original = keys;
  cube_bitonic_sort(m, q, keys, /*descending=*/true);
  EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
  EXPECT_TRUE(is_permutation_of(keys, original));
}

std::vector<CubeSortCase> cube_cases() {
  std::vector<CubeSortCase> cases;
  for (unsigned dim : {1u, 2u, 3u, 5u, 7u})
    for (const auto dist : all_key_distributions()) cases.push_back({dim, dist});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CubeSortTest, ::testing::ValuesIn(cube_cases()),
    [](const ::testing::TestParamInfo<CubeSortCase>& param_info) {
      auto name = "Q" + std::to_string(param_info.param.dim) + "_" +
                  to_string(param_info.param.dist);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(CubeSort, StepCountIsDTimesDPlus1Over2) {
  for (unsigned d : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    const net::Hypercube q(d);
    sim::Machine m(q);
    auto keys = generate_keys(KeyDistribution::kUniform, q.node_count(), d);
    cube_bitonic_sort(m, q, keys);
    EXPECT_EQ(m.counters().comm_cycles, formulas::cube_bitonic_steps(d));
    EXPECT_EQ(m.counters().comp_steps, formulas::cube_bitonic_steps(d));
  }
}

// ----------------------------------------------------------- dual-cube sort

struct DualSortCase {
  unsigned n;
  KeyDistribution dist;
};

class DualSortTest : public ::testing::TestWithParam<DualSortCase> {};

TEST_P(DualSortTest, SortsAscending) {
  const auto [n, dist] = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  auto keys = generate_keys(dist, r.node_count(), n);
  const auto original = keys;
  dual_sort(m, r, keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(is_permutation_of(keys, original));
}

TEST_P(DualSortTest, SortsDescending) {
  const auto [n, dist] = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  auto keys = generate_keys(dist, r.node_count(), n + 17);
  const auto original = keys;
  dual_sort(m, r, keys, /*descending=*/true);
  EXPECT_TRUE(std::is_sorted(keys.rbegin(), keys.rend()));
  EXPECT_TRUE(is_permutation_of(keys, original));
}

std::vector<DualSortCase> dual_cases() {
  std::vector<DualSortCase> cases;
  for (unsigned n : {1u, 2u, 3u, 4u})
    for (const auto dist : all_key_distributions()) cases.push_back({n, dist});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DualSortTest, ::testing::ValuesIn(dual_cases()),
    [](const ::testing::TestParamInfo<DualSortCase>& param_info) {
      auto name = "D" + std::to_string(param_info.param.n) + "_" +
                  to_string(param_info.param.dist);
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(DualSort, StepCountsMatchTheorem2Exactly) {
  for (unsigned n : {1u, 2u, 3u, 4u, 5u}) {
    const net::RecursiveDualCube r(n);
    sim::Machine m(r);
    auto keys = generate_keys(KeyDistribution::kUniform, r.node_count(), n);
    dual_sort(m, r, keys);
    const auto c = m.counters();
    EXPECT_EQ(c.comm_cycles, formulas::dual_sort_comm_exact(n)) << "n=" << n;
    EXPECT_EQ(c.comp_steps, formulas::dual_sort_comp_exact(n)) << "n=" << n;
    EXPECT_LE(c.comm_cycles, formulas::dual_sort_comm_bound(n));
    EXPECT_LE(c.comp_steps, formulas::dual_sort_comp_bound(n));
  }
}

TEST(DualSort, ManySeedsOnD3) {
  const net::RecursiveDualCube r(3);
  for (u64 seed = 0; seed < 25; ++seed) {
    sim::Machine m(r);
    auto keys = generate_keys(KeyDistribution::kUniform, r.node_count(), seed);
    const auto original = keys;
    dual_sort(m, r, keys);
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end())) << "seed " << seed;
    ASSERT_TRUE(is_permutation_of(keys, original));
  }
}

TEST(DualSort, LevelInvariantBlocksSortedAlternately) {
  // After the schedule finishes level k (observed via the last full-merge
  // dimension step of that level), every aligned 2^(2k-1) block must be
  // sorted — ascending where bit 2k-1 of the label is 0, descending where
  // it is 1 (tags (0,1,0,1) of the paper's recursion).
  const unsigned n = 3;
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  auto keys = generate_keys(KeyDistribution::kUniform, r.node_count(), 4);

  dual_sort<u64>(m, r, keys, false,
                 [&](const std::string& phase, const std::vector<u64>& now) {
                   if (phase.find("full-merge dim 0") == std::string::npos)
                     return;
                   // Parse "level k ..." prefix.
                   const unsigned k =
                       static_cast<unsigned>(phase[6] - '0');
                   const u64 block = bits::pow2(2 * k - 1);
                   for (u64 base = 0; base < now.size(); base += block) {
                     const bool descending =
                         k < n && bits::get(base, 2 * k - 1) == 1;
                     const auto first =
                         now.begin() + static_cast<std::ptrdiff_t>(base);
                     const auto last =
                         first + static_cast<std::ptrdiff_t>(block);
                     if (descending) {
                       EXPECT_TRUE(std::is_sorted(first, last, std::greater<>()))
                           << phase << " base=" << base;
                     } else {
                       EXPECT_TRUE(std::is_sorted(first, last))
                           << phase << " base=" << base;
                     }
                   }
                 });
}

TEST(DualSort, HalfMergePhaseProducesBitonicBlocks) {
  // After the half-merge pass of the top level, the whole sequence must be
  // bitonic (ascending half followed by descending half, up to rotation).
  const unsigned n = 3;
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  auto keys = generate_keys(KeyDistribution::kUniform, r.node_count(), 8);
  std::vector<u64> after_half_merge;
  const std::string marker = "level " + std::to_string(n) + " half-merge dim 0";
  dual_sort<u64>(m, r, keys, false,
                 [&](const std::string& phase, const std::vector<u64>& now) {
                   if (phase == marker) after_half_merge = now;
                 });
  ASSERT_FALSE(after_half_merge.empty());
  EXPECT_TRUE(is_cyclic_bitonic(after_half_merge));
  const std::size_t half = after_half_merge.size() / 2;
  EXPECT_TRUE(std::is_sorted(after_half_merge.begin(),
                             after_half_merge.begin() + static_cast<std::ptrdiff_t>(half)));
  EXPECT_TRUE(std::is_sorted(after_half_merge.begin() + static_cast<std::ptrdiff_t>(half),
                             after_half_merge.end(), std::greater<>()));
}

TEST(DualSort, PaperFigure5InputShape) {
  // Figures 5-6 sort 8 keys on D_2; any fixed 8-key input must come out
  // sorted with the exact Theorem 2 step count for n = 2 (12 comm cycles,
  // 6 comparison steps).
  const net::RecursiveDualCube r(2);
  sim::Machine m(r);
  std::vector<u64> keys = {5, 2, 7, 1, 4, 6, 3, 0};
  dual_sort(m, r, keys);
  EXPECT_EQ(keys, (std::vector<u64>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(m.counters().comm_cycles, formulas::dual_sort_comm_exact(2));
  EXPECT_EQ(m.counters().comp_steps, formulas::dual_sort_comp_exact(2));
}

TEST(DualSort, WorksWithNegativeAndDuplicateKeys) {
  const net::RecursiveDualCube r(3);
  sim::Machine m(r);
  Rng rng(31);
  std::vector<int> keys(r.node_count());
  for (auto& k : keys) k = static_cast<int>(rng.range(-5, 5));
  auto original = keys;
  dual_sort(m, r, keys);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  std::sort(original.begin(), original.end());
  EXPECT_EQ(keys, original);
}

TEST(DualSort, ObserverSeesEveryDimensionStep) {
  const unsigned n = 2;
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  auto keys = generate_keys(KeyDistribution::kUniform, r.node_count(), 1);
  std::size_t steps = 0;
  dual_sort<u64>(m, r, keys, false,
                 [&](const std::string&, const std::vector<u64>&) { ++steps; });
  EXPECT_EQ(steps, formulas::dual_sort_comp_exact(n));
}

}  // namespace
}  // namespace dc::core
