// Tests for the segmented-scan monoid transformer: monoid laws, sequential
// reference agreement, and execution through Algorithms 1 and 2 (segmented
// scan is the canonical *non-commutative* client of the prefix algorithms).
#include <gtest/gtest.h>

#include "core/cube_prefix.hpp"
#include "core/dual_prefix.hpp"
#include "core/segmented.hpp"
#include "support/rng.hpp"

namespace dc::core {
namespace {

std::pair<std::vector<u64>, std::vector<bool>> random_segmented(std::size_t n,
                                                                u64 seed,
                                                                double head_p) {
  Rng rng(seed);
  std::vector<u64> values(n);
  std::vector<bool> heads(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = rng.below(100);
    heads[i] = rng.unit() < head_p;
  }
  return {values, heads};
}

TEST(SegmentedMonoid, Laws) {
  const Seg<Plus<u64>> op;
  Rng rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    const Segmented<u64> a{rng.below(50), rng.unit() < 0.3};
    const Segmented<u64> b{rng.below(50), rng.unit() < 0.3};
    const Segmented<u64> c{rng.below(50), rng.unit() < 0.3};
    EXPECT_EQ(op.combine(op.combine(a, b), c), op.combine(a, op.combine(b, c)))
        << "associativity";
    EXPECT_EQ(op.combine(a, op.identity()), a);
    EXPECT_EQ(op.combine(op.identity(), a), a);
  }
}

TEST(SegmentedMonoid, IsNotCommutative) {
  const Seg<Plus<u64>> op;
  const Segmented<u64> a{1, false};
  const Segmented<u64> b{2, true};
  EXPECT_NE(op.combine(a, b), op.combine(b, a));
}

TEST(SegmentedSeq, RestartsAtHeads) {
  const Plus<u64> plus;
  const std::vector<u64> v{1, 2, 3, 4, 5, 6};
  const std::vector<bool> h{false, false, true, false, true, false};
  EXPECT_EQ(seq_segmented_scan(plus, v, h),
            (std::vector<u64>{1, 3, 3, 7, 5, 11}));
}

class SegmentedScanTest
    : public ::testing::TestWithParam<std::pair<unsigned, double>> {};

TEST_P(SegmentedScanTest, OnDualCubeMatchesReference) {
  const auto [n, head_p] = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Plus<u64> plus;
  const Seg<Plus<u64>> seg;
  const auto [values, heads] = random_segmented(d.node_count(), n, head_p);

  const auto packed = make_segmented(values, heads);
  const auto scanned = dual_prefix(m, d, seg, packed);
  EXPECT_EQ(segmented_values(scanned), seq_segmented_scan(plus, values, heads));
  // Segments add no communication: still the plain Algorithm 2 cost.
  EXPECT_EQ(m.counters().comm_cycles, 2 * n);
}

TEST_P(SegmentedScanTest, OnHypercubeMatchesReference) {
  const auto [n, head_p] = GetParam();
  const net::Hypercube q(2 * n - 1);
  sim::Machine m(q);
  const Plus<u64> plus;
  const Seg<Plus<u64>> seg;
  const auto [values, heads] = random_segmented(q.node_count(), n + 31, head_p);

  const auto packed = make_segmented(values, heads);
  const auto out = cube_prefix(m, q, seg, packed, /*inclusive=*/true);
  EXPECT_EQ(segmented_values(out.prefix),
            seq_segmented_scan(plus, values, heads));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegmentedScanTest,
    ::testing::Values(std::pair{1u, 0.3}, std::pair{2u, 0.0},
                      std::pair{2u, 0.5}, std::pair{3u, 0.1},
                      std::pair{3u, 0.9}, std::pair{4u, 0.25},
                      std::pair{5u, 0.05}));

TEST(SegmentedScan, AllHeadsIsIdentityScan) {
  const net::DualCube d(3);
  sim::Machine m(d);
  const Seg<Plus<u64>> seg;
  std::vector<u64> values(d.node_count(), 7);
  std::vector<bool> heads(d.node_count(), true);
  const auto out = segmented_values(
      dual_prefix(m, d, seg, make_segmented(values, heads)));
  EXPECT_EQ(out, values) << "every element starts its own segment";
}

TEST(SegmentedScan, NoHeadsEqualsPlainScan) {
  const net::DualCube d(3);
  const Plus<u64> plus;
  const Seg<Plus<u64>> seg;
  Rng rng(8);
  std::vector<u64> values(d.node_count());
  for (auto& v : values) v = rng.below(100);
  sim::Machine m1(d);
  sim::Machine m2(d);
  const auto seg_out = segmented_values(dual_prefix(
      m1, d, seg, make_segmented(values, std::vector<bool>(values.size()))));
  EXPECT_EQ(seg_out, dual_prefix(m2, d, plus, values));
}

TEST(SegmentedScan, WorksUnderMaxMonoid) {
  const net::DualCube d(2);
  sim::Machine m(d);
  const Max<u64> mx;
  const Seg<Max<u64>> seg{mx};
  const std::vector<u64> values{5, 1, 9, 2, 7, 3, 8, 4};
  const std::vector<bool> heads{false, false, false, true,
                                false, true,  false, false};
  const auto out =
      segmented_values(dual_prefix(m, d, seg, make_segmented(values, heads)));
  EXPECT_EQ(out, seq_segmented_scan(mx, values, heads));
}

}  // namespace
}  // namespace dc::core
