// Tests for carry-lookahead addition via dual-cube prefix.
#include <gtest/gtest.h>

#include "core/carry_lookahead.hpp"
#include "support/rng.hpp"

namespace dc::core {
namespace {

TEST(CarryMonoid, LawsHoldExhaustively) {
  const CarryOp op;
  const Carry all[] = {Carry::kKill, Carry::kPropagate, Carry::kGenerate};
  for (const Carry a : all) {
    EXPECT_EQ(op.combine(a, op.identity()), a);
    EXPECT_EQ(op.combine(op.identity(), a), a);
    for (const Carry b : all)
      for (const Carry c : all)
        EXPECT_EQ(op.combine(op.combine(a, b), c),
                  op.combine(a, op.combine(b, c)));
  }
}

class CarryAddTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CarryAddTest, RandomNumbersMatchRipple) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  Rng rng(n);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<u64> a(d.node_count());
    std::vector<u64> b(d.node_count());
    for (auto& x : a) x = rng();
    for (auto& x : b) x = rng();
    sim::Machine m(d);
    std::vector<u64> par;
    std::vector<u64> seq;
    const bool cp = carry_lookahead_add(m, d, a, b, par);
    const bool cs = seq_ripple_add(a, b, seq);
    ASSERT_EQ(par, seq) << "trial " << trial;
    ASSERT_EQ(cp, cs);
    ASSERT_EQ(m.counters().comm_cycles, 2 * n)
        << "one Algorithm-2 pass resolves all carries";
  }
}

TEST_P(CarryAddTest, LongestPossibleCarryChain) {
  // 0xFF..F + 1: the carry from limb 0 must ripple through every limb.
  const unsigned n = GetParam();
  const net::DualCube d(n);
  std::vector<u64> a(d.node_count(), ~u64{0});
  std::vector<u64> b(d.node_count(), 0);
  b[0] = 1;
  sim::Machine m(d);
  std::vector<u64> out;
  const bool carry = carry_lookahead_add(m, d, a, b, out);
  EXPECT_TRUE(carry) << "overflows the whole number";
  for (const u64 limb : out) EXPECT_EQ(limb, 0u);
}

TEST_P(CarryAddTest, ZeroPlusZero) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  std::vector<u64> zero(d.node_count(), 0);
  sim::Machine m(d);
  std::vector<u64> out;
  EXPECT_FALSE(carry_lookahead_add(m, d, zero, zero, out));
  for (const u64 limb : out) EXPECT_EQ(limb, 0u);
}

INSTANTIATE_TEST_SUITE_P(Orders, CarryAddTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(CarryAdd, AlternatingPropagateBlocks) {
  const net::DualCube d(3);
  std::vector<u64> a(d.node_count());
  std::vector<u64> b(d.node_count());
  // Even limbs all-ones (propagate), odd limbs generate.
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = i % 2 == 0 ? ~u64{0} : ~u64{0};
    b[i] = i % 2 == 0 ? 0 : 2;
  }
  sim::Machine m(d);
  std::vector<u64> par;
  std::vector<u64> seq;
  EXPECT_EQ(carry_lookahead_add(m, d, a, b, par), seq_ripple_add(a, b, seq));
  EXPECT_EQ(par, seq);
}

}  // namespace
}  // namespace dc::core
