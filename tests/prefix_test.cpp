// Tests for Algorithms 1 and 2: correctness against sequential scans over
// many sizes, monoids (including non-commutative ones), inclusive and
// diminished variants — and exact step counts against Theorem 1.
#include <gtest/gtest.h>

#include <numeric>

#include "core/cube_prefix.hpp"
#include "core/dual_prefix.hpp"
#include "core/emulated_prefix.hpp"
#include "core/formulas.hpp"
#include "core/sequential.hpp"
#include "support/rng.hpp"

namespace dc::core {
namespace {

std::vector<u64> random_values(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(1000);
  return v;
}

std::vector<std::string> letter_values(std::size_t n) {
  std::vector<std::string> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::string(1, static_cast<char>('a' + (i % 26)));
  return v;
}

std::vector<Mat2::value_type> random_matrices(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<Mat2::value_type> v(n);
  for (auto& x : v) x = {rng.below(9), rng.below(9), rng.below(9), rng.below(9)};
  return v;
}

// ------------------------------------------------------------- Algorithm 1

class CubePrefixTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CubePrefixTest, InclusiveSumMatchesSequential) {
  const unsigned d = GetParam();
  const net::Hypercube q(d);
  sim::Machine m(q);
  const Plus<u64> op;
  const auto c = random_values(q.node_count(), d);
  const auto out = cube_prefix(m, q, op, c, /*inclusive=*/true);
  EXPECT_EQ(out.prefix, seq_inclusive_scan(op, c));
  // Every node's t is the grand total.
  const u64 total = seq_reduce(op, c);
  for (const u64 t : out.total) EXPECT_EQ(t, total);
}

TEST_P(CubePrefixTest, DiminishedSumMatchesSequential) {
  const unsigned d = GetParam();
  const net::Hypercube q(d);
  sim::Machine m(q);
  const Plus<u64> op;
  const auto c = random_values(q.node_count(), d + 100);
  const auto out = cube_prefix(m, q, op, c, /*inclusive=*/false);
  EXPECT_EQ(out.prefix, seq_exclusive_scan(op, c));
}

TEST_P(CubePrefixTest, StepCountsMatchAlgorithm1) {
  const unsigned d = GetParam();
  const net::Hypercube q(d);
  sim::Machine m(q);
  const Plus<u64> op;
  cube_prefix(m, q, op, random_values(q.node_count(), 1), true);
  EXPECT_EQ(m.counters().comm_cycles, formulas::cube_prefix_comm(d));
  EXPECT_EQ(m.counters().comp_steps, formulas::cube_prefix_comp(d));
}

TEST_P(CubePrefixTest, NonCommutativeConcat) {
  // Prefixes under string concatenation spell the exact combination order:
  // any operand reordering would change the result.
  const unsigned d = GetParam();
  const net::Hypercube q(d);
  sim::Machine m(q);
  const Concat op;
  const auto c = letter_values(q.node_count());
  const auto out = cube_prefix(m, q, op, c, true);
  EXPECT_EQ(out.prefix, seq_inclusive_scan(op, c));
}

TEST_P(CubePrefixTest, MinAndMax) {
  const unsigned d = GetParam();
  const net::Hypercube q(d);
  const auto c = random_values(q.node_count(), d + 7);
  {
    sim::Machine m(q);
    const Min<u64> op;
    EXPECT_EQ(cube_prefix(m, q, op, c, true).prefix, seq_inclusive_scan(op, c));
  }
  {
    sim::Machine m(q);
    const Max<u64> op;
    EXPECT_EQ(cube_prefix(m, q, op, c, true).prefix, seq_inclusive_scan(op, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, CubePrefixTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 6u, 8u, 10u));

TEST(CubePrefix, RejectsWrongInputSize) {
  const net::Hypercube q(3);
  sim::Machine m(q);
  const Plus<u64> op;
  EXPECT_THROW(cube_prefix(m, q, op, std::vector<u64>(7), true), CheckError);
}

TEST(CubePrefix, RejectsMismatchedMachine) {
  const net::Hypercube q(3);
  const net::Hypercube other(3);
  sim::Machine m(other);
  const Plus<u64> op;
  EXPECT_THROW(cube_prefix(m, q, op, std::vector<u64>(8), true), CheckError);
}

// ---------------------------------------------------------------- arrangement

class ArrangementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ArrangementTest, IndexMapIsABijectionAndRoundTrips) {
  const net::DualCube d(GetParam());
  std::vector<bool> seen(d.node_count(), false);
  for (net::NodeId u = 0; u < d.node_count(); ++u) {
    const net::NodeId idx = dual_prefix_index_of_node(d, u);
    ASSERT_LT(idx, d.node_count());
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
    EXPECT_EQ(dual_prefix_node_of_index(d, idx), u);
  }
}

TEST_P(ArrangementTest, ClassZeroIsIdentity) {
  const net::DualCube d(GetParam());
  for (net::NodeId u = 0; u < d.node_count(); ++u) {
    if (d.node_class(u) == 0) {
      EXPECT_EQ(dual_prefix_index_of_node(d, u), u);
    } else {
      EXPECT_GE(dual_prefix_index_of_node(d, u), d.node_count() / 2);
    }
  }
}

TEST_P(ArrangementTest, IndicesConsecutiveWithinEveryCluster) {
  // The paper's stated purpose of the arrangement (Section 3).
  const net::DualCube d(GetParam());
  for (unsigned cls = 0; cls <= 1; ++cls) {
    for (u64 c = 0; c < d.clusters_per_class(); ++c) {
      std::vector<net::NodeId> indices;
      for (const net::NodeId u : d.cluster_members(cls, c))
        indices.push_back(dual_prefix_index_of_node(d, u));
      std::sort(indices.begin(), indices.end());
      for (std::size_t i = 1; i < indices.size(); ++i)
        EXPECT_EQ(indices[i], indices[i - 1] + 1)
            << "cluster (" << cls << "," << c << ") holds a gap";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, ArrangementTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------------------- Algorithm 2

class DualPrefixTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DualPrefixTest, InclusiveSumMatchesSequential) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Plus<u64> op;
  const auto data = random_values(d.node_count(), n);
  EXPECT_EQ(dual_prefix(m, d, op, data), seq_inclusive_scan(op, data));
}

TEST_P(DualPrefixTest, DiminishedSumMatchesSequential) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Plus<u64> op;
  const auto data = random_values(d.node_count(), n + 50);
  EXPECT_EQ(dual_prefix(m, d, op, data, {}, /*inclusive=*/false),
            seq_exclusive_scan(op, data));
}

TEST_P(DualPrefixTest, StepCountsMatchTheorem1) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Plus<u64> op;
  dual_prefix(m, d, op, random_values(d.node_count(), 3));
  const auto c = m.counters();
  EXPECT_EQ(c.comm_cycles, formulas::dual_prefix_comm_impl(n));
  EXPECT_LE(c.comm_cycles, formulas::dual_prefix_comm_paper(n));
  EXPECT_EQ(c.comp_steps, formulas::dual_prefix_comp(n));
}

TEST_P(DualPrefixTest, NonCommutativeConcat) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Concat op;
  const auto data = letter_values(d.node_count());
  EXPECT_EQ(dual_prefix(m, d, op, data), seq_inclusive_scan(op, data));
}

TEST_P(DualPrefixTest, NonCommutativeMatrices) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Mat2 op;
  const auto data = random_matrices(d.node_count(), n + 9);
  EXPECT_EQ(dual_prefix(m, d, op, data), seq_inclusive_scan(op, data));
}

TEST_P(DualPrefixTest, MinMaxXor) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  const auto data = random_values(d.node_count(), n + 77);
  {
    sim::Machine m(d);
    const Min<u64> op;
    EXPECT_EQ(dual_prefix(m, d, op, data), seq_inclusive_scan(op, data));
  }
  {
    sim::Machine m(d);
    const Max<u64> op;
    EXPECT_EQ(dual_prefix(m, d, op, data), seq_inclusive_scan(op, data));
  }
  {
    sim::Machine m(d);
    const Xor<u64> op;
    EXPECT_EQ(dual_prefix(m, d, op, data), seq_inclusive_scan(op, data));
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, DualPrefixTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(DualPrefix, PaperWorkedExample) {
  // Figure 3: prefix sums of 1..32 on D_3 are 1, 3, 6, ..., 528.
  const net::DualCube d(3);
  sim::Machine m(d);
  const Plus<u64> op;
  std::vector<u64> data(32);
  std::iota(data.begin(), data.end(), 1);
  const auto out = dual_prefix(m, d, op, data);
  for (std::size_t i = 0; i < 32; ++i)
    EXPECT_EQ(out[i], (i + 1) * (i + 2) / 2);
  EXPECT_EQ(out.back(), 528u);
}

TEST(DualPrefix, ObserverSeesAllSixStages) {
  const net::DualCube d(2);
  sim::Machine m(d);
  const Plus<u64> op;
  std::vector<std::string> stages;
  dual_prefix<Plus<u64>>(
      m, d, op, random_values(d.node_count(), 5),
      [&](const std::string& stage, const auto& arrays) {
        stages.push_back(stage);
        for (const auto& [name, values] : arrays)
          EXPECT_EQ(values.size(), d.node_count());
      });
  ASSERT_EQ(stages.size(), 6u);
  EXPECT_NE(stages[0].find("original"), std::string::npos);
  EXPECT_NE(stages[5].find("final"), std::string::npos);
}

TEST(DualPrefix, AllOnesGivesRanks) {
  const net::DualCube d(4);
  sim::Machine m(d);
  const Plus<u64> op;
  const std::vector<u64> ones(d.node_count(), 1);
  const auto out = dual_prefix(m, d, op, ones);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(DualPrefix, WraparoundAdditionStaysAssociative) {
  const net::DualCube d(3);
  sim::Machine m(d);
  const Plus<u64> op;
  std::vector<u64> data(d.node_count(), ~u64{0} / 3);
  EXPECT_EQ(dual_prefix(m, d, op, data), seq_inclusive_scan(op, data));
}

// ------------------------------------------------------- emulation ablation

class EmulatedPrefixTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EmulatedPrefixTest, MatchesSequentialInLabelOrder) {
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  const Plus<u64> op;
  const auto c = random_values(r.node_count(), n + 13);
  EXPECT_EQ(emulated_prefix(m, r, op, c), seq_inclusive_scan(op, c));
}

TEST_P(EmulatedPrefixTest, CostsThreeTimesTheClusterTechnique) {
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  const Plus<u64> op;
  emulated_prefix(m, r, op, random_values(r.node_count(), 2));
  EXPECT_EQ(m.counters().comm_cycles, formulas::emulated_prefix_comm(n));
  EXPECT_EQ(m.counters().comp_steps, formulas::emulated_prefix_comp(n));
  if (n >= 3) {
    // The ~3x overhead the paper's conclusion warns about.
    EXPECT_GE(m.counters().comm_cycles,
              2 * formulas::dual_prefix_comm_impl(n));
  }
}

TEST_P(EmulatedPrefixTest, NonCommutativeConcat) {
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  const Concat op;
  const auto c = letter_values(r.node_count());
  EXPECT_EQ(emulated_prefix(m, r, op, c), seq_inclusive_scan(op, c));
}

INSTANTIATE_TEST_SUITE_P(Orders, EmulatedPrefixTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------------------- monoid laws

TEST(Monoids, AssociativityAndIdentitySpotChecks) {
  Rng rng(99);
  const Mat2 mat;
  const Concat cat;
  for (int trial = 0; trial < 200; ++trial) {
    const Mat2::value_type a = {rng.below(50), rng.below(50), rng.below(50),
                                rng.below(50)};
    const Mat2::value_type b = {rng.below(50), rng.below(50), rng.below(50),
                                rng.below(50)};
    const Mat2::value_type c = {rng.below(50), rng.below(50), rng.below(50),
                                rng.below(50)};
    EXPECT_EQ(mat.combine(mat.combine(a, b), c),
              mat.combine(a, mat.combine(b, c)));
    EXPECT_EQ(mat.combine(a, mat.identity()), a);
    EXPECT_EQ(mat.combine(mat.identity(), a), a);
  }
  EXPECT_EQ(cat.combine("ab", cat.combine("cd", "ef")), "abcdef");
  EXPECT_EQ(cat.combine(cat.identity(), "x"), "x");
}

TEST(Monoids, Mat2IsNotCommutative) {
  const Mat2 mat;
  const Mat2::value_type a = {1, 2, 3, 4};
  const Mat2::value_type b = {0, 1, 1, 0};
  EXPECT_NE(mat.combine(a, b), mat.combine(b, a));
}

}  // namespace
}  // namespace dc::core
