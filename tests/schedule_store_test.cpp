// Persistent schedule store tests: the mmap on-disk format must
// round-trip byte-exactly, reject every flavor of damage gracefully
// (fall back to the record path, count a disk miss, never throw), share
// bytes across concurrent loaders, and stay inside the cache's LRU byte
// budget — with `hits` still meaning "resident in this process" so
// warm-store runs keep the PR 8 acceptance assertions meaningful.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"
#include "core/sequential.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "sim/schedule.hpp"
#include "sim/schedule_store.hpp"
#include "support/rng.hpp"
#include "topology/dual_cube.hpp"

namespace dc::sim {
namespace {

class ScheduleStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ScheduleCache::instance().clear();
    char tmpl[] = "/tmp/dcsched_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    ScheduleCache::instance().attach_store(nullptr);
    ScheduleCache::instance().clear();
    ScheduleCache::instance().set_capacity_bytes(
        ScheduleCache::kDefaultCapacityBytes);
    // Best-effort scrub of the temp dir.
    std::system(("rm -rf " + dir_).c_str());
  }

  std::string dir_;
};

Schedule small_schedule(std::size_t n, std::size_t cycles) {
  std::vector<ScheduleCycle> cyc(cycles);
  for (std::size_t c = 0; c < cycles; ++c) {
    cyc[c].recv_from.assign(n, kNoSender);
    cyc[c].recv_slot.assign(n, kNoEdgeSlot);
    // A deterministic non-trivial pattern: node v receives from v^1.
    for (std::size_t v = 0; v < n; ++v) {
      cyc[c].recv_from[v] = static_cast<net::NodeId>(v ^ 1);
      cyc[c].recv_slot[v] = static_cast<std::uint32_t>((v + c) % 7);
    }
    cyc[c].message_count = n;
  }
  return Schedule(std::move(cyc));
}

ScheduleKey small_key() {
  return ScheduleKey{"T#42", "probe", {3, 7}, true};
}

std::size_t file_size_of(const std::string& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  return f ? static_cast<std::size_t>(f.tellg()) : 0;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(f), {});
}

TEST_F(ScheduleStoreTest, RoundTripPreservesEveryArrayAndCount) {
  ScheduleStore store(dir_);
  ASSERT_TRUE(store.enabled());
  const auto key = small_key();
  const Schedule original = small_schedule(16, 5);
  ASSERT_TRUE(store.save(key, original));

  const auto loaded = store.load(key);
  ASSERT_NE(loaded, nullptr);
  ASSERT_EQ(loaded->cycle_count(), original.cycle_count());
  EXPECT_GT(loaded->mapped_bytes(), 0u);
  for (std::size_t c = 0; c < original.cycle_count(); ++c) {
    const ScheduleCycle& a = original.cycle(c);
    const ScheduleCycle& b = loaded->cycle(c);
    EXPECT_TRUE(b.recv_from.borrowed()) << "loaded arrays must be views";
    ASSERT_EQ(a.recv_from.size(), b.recv_from.size());
    EXPECT_EQ(a.message_count, b.message_count);
    for (std::size_t v = 0; v < a.recv_from.size(); ++v) {
      EXPECT_EQ(a.recv_from[v], b.recv_from[v]);
      EXPECT_EQ(a.recv_slot[v], b.recv_slot[v]);
    }
  }
}

TEST_F(ScheduleStoreTest, SerializationIsByteDeterministic) {
  const auto key = small_key();
  const Schedule s = small_schedule(8, 3);
  const auto once = ScheduleStore::encode(key, s);
  const auto twice = ScheduleStore::encode(key, s);
  ASSERT_FALSE(once.empty());
  EXPECT_EQ(once, twice);

  // And the on-disk file is exactly those bytes.
  ScheduleStore store(dir_);
  ASSERT_TRUE(store.save(key, s));
  const auto on_disk = slurp(store.entry_path(key));
  ASSERT_EQ(on_disk.size(), once.size());
  EXPECT_EQ(0, std::memcmp(on_disk.data(), once.data(), once.size()));
}

TEST_F(ScheduleStoreTest, SaveIsIdempotentAndAtomicallyVisible) {
  ScheduleStore store(dir_);
  const auto key = small_key();
  ASSERT_TRUE(store.save(key, small_schedule(8, 3)));
  const auto size_before = file_size_of(store.entry_path(key));
  ASSERT_TRUE(store.save(key, small_schedule(8, 3)));
  EXPECT_EQ(file_size_of(store.entry_path(key)), size_before);
  // No temp-file litter after committed saves.
  EXPECT_NE(std::system(("ls " + dir_ + "/*.tmp* >/dev/null 2>&1").c_str()),
            0);
}

TEST_F(ScheduleStoreTest, MissingFileIsAMissNotAnError) {
  ScheduleStore store(dir_);
  EXPECT_EQ(store.load(small_key()), nullptr);
}

TEST_F(ScheduleStoreTest, TruncatedFileIsRejected) {
  ScheduleStore store(dir_);
  const auto key = small_key();
  ASSERT_TRUE(store.save(key, small_schedule(8, 3)));
  const std::string path = store.entry_path(key);
  ASSERT_EQ(::truncate(path.c_str(), (long)file_size_of(path) - 4), 0);
  EXPECT_EQ(store.load(key), nullptr);
  ASSERT_EQ(::truncate(path.c_str(), 10), 0);  // shorter than the header
  EXPECT_EQ(store.load(key), nullptr);
}

TEST_F(ScheduleStoreTest, CorruptPayloadFailsTheChecksum) {
  ScheduleStore store(dir_);
  const auto key = small_key();
  ASSERT_TRUE(store.save(key, small_schedule(8, 3)));
  const std::string path = store.entry_path(key);
  auto bytes = slurp(path);
  bytes[bytes.size() - 1] ^= 0x5a;  // flip one payload byte
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_EQ(store.load(key), nullptr);
}

TEST_F(ScheduleStoreTest, WrongMagicAndWrongVersionAreRejected) {
  ScheduleStore store(dir_);
  const auto key = small_key();
  ASSERT_TRUE(store.save(key, small_schedule(8, 3)));
  const std::string path = store.entry_path(key);
  const auto pristine = slurp(path);

  auto bad_magic = pristine;
  bad_magic[0] = 'X';
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bad_magic.data(), static_cast<std::streamsize>(bad_magic.size()));
  EXPECT_EQ(store.load(key), nullptr);

  auto bad_version = pristine;
  bad_version[8] = 99;  // version field
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      .write(bad_version.data(),
             static_cast<std::streamsize>(bad_version.size()));
  EXPECT_EQ(store.load(key), nullptr);
}

TEST_F(ScheduleStoreTest, EmbeddedKeyMismatchIsRejected) {
  // A file renamed onto another key's path (hash collision, copied cache
  // dirs...) must be rejected by the embedded-key comparison — topology
  // fingerprint differences included, since the fingerprint lives in the
  // key's topology string.
  ScheduleStore store(dir_);
  const auto key = small_key();
  ScheduleKey other = key;
  other.topology = "T#43";  // same graph name, different fingerprint
  ASSERT_TRUE(store.save(key, small_schedule(8, 3)));
  ASSERT_EQ(::rename(store.entry_path(key).c_str(),
                     store.entry_path(other).c_str()),
            0);
  EXPECT_EQ(store.load(other), nullptr);

  // Same for every other key component.
  ScheduleKey wrong_params = key;
  wrong_params.params = {3, 8};
  ASSERT_EQ(::rename(store.entry_path(other).c_str(),
                     store.entry_path(wrong_params).c_str()),
            0);
  EXPECT_EQ(store.load(wrong_params), nullptr);
}

TEST_F(ScheduleStoreTest, UnusableDirectoryDisablesQuietly) {
  ScheduleStore store("/proc/definitely/not/writable");
  EXPECT_FALSE(store.enabled());
  EXPECT_EQ(store.load(small_key()), nullptr);
  EXPECT_FALSE(store.save(small_key(), small_schedule(4, 1)));
}

// ------------------------------------------------------ cache integration

TEST_F(ScheduleStoreTest, CacheFaultsInFromDiskAndCountsItSeparately) {
  auto store = attach_schedule_store(dir_);
  ASSERT_TRUE(store->enabled());
  auto& cache = ScheduleCache::instance();
  const auto key = small_key();

  // Publish through the cache: write-through to disk.
  cache.store(key, std::make_shared<const Schedule>(small_schedule(8, 3)));
  EXPECT_EQ(file_size_of(store->entry_path(key)) > 0, true);

  // Drop the in-memory copy; the next find must fault it in from disk
  // and report kDisk — with `hits` (memory hits) untouched.
  cache.clear();
  ScheduleOrigin origin = ScheduleOrigin::kMiss;
  const auto loaded = cache.find(key, &origin);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(origin, ScheduleOrigin::kDisk);
  auto st = cache.stats();
  EXPECT_EQ(st.hits, 0u) << "a disk load is not an in-memory hit";
  EXPECT_EQ(st.misses, 0u) << "a disk load is not a miss either";
  EXPECT_EQ(st.disk_hits, 1u);
  EXPECT_GT(st.disk_bytes_mapped, 0u);

  // Once resident, the same key is a plain memory hit.
  origin = ScheduleOrigin::kMiss;
  ASSERT_NE(cache.find(key, &origin), nullptr);
  EXPECT_EQ(origin, ScheduleOrigin::kMemory);
  st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.disk_hits, 1u);

  // A key the store has never seen is a miss plus a disk miss.
  ScheduleKey absent = key;
  absent.algorithm = "absent";
  EXPECT_EQ(cache.find(absent), nullptr);
  st = cache.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.disk_misses, 1u);
}

TEST_F(ScheduleStoreTest, LruBudgetCoversMappedBytes) {
  auto store = attach_schedule_store(dir_);
  auto& cache = ScheduleCache::instance();
  const auto key = small_key();
  cache.store(key, std::make_shared<const Schedule>(small_schedule(64, 8)));
  cache.clear();

  const auto loaded = cache.find(key);
  ASSERT_NE(loaded, nullptr);
  EXPECT_GE(loaded->byte_size(), loaded->mapped_bytes())
      << "a mapped schedule's accounted bytes must include the mapping";
  EXPECT_GE(cache.stats().bytes, loaded->mapped_bytes());

  // Shrinking the budget below the mapping evicts the loaded entry (the
  // shared_ptr keeps the mapping alive for in-flight replays).
  ScheduleKey other = key;
  other.algorithm = "other";
  cache.store(other, std::make_shared<const Schedule>(small_schedule(64, 8)));
  cache.set_capacity_bytes(loaded->byte_size() / 2);
  EXPECT_GE(cache.stats().evictions, 1u);
}

TEST_F(ScheduleStoreTest, ConcurrentLoadersShareOneEntry) {
  auto store = attach_schedule_store(dir_);
  auto& cache = ScheduleCache::instance();
  const auto key = small_key();
  cache.store(key, std::make_shared<const Schedule>(small_schedule(32, 4)));
  cache.clear();

  // Two loaders race the same key through the store (TSan covers the
  // interleavings); both must observe a usable schedule and the cache
  // must end up with exactly one entry.
  std::shared_ptr<const Schedule> got[2];
  std::thread a([&] { got[0] = cache.find(key); });
  std::thread b([&] { got[1] = cache.find(key); });
  a.join();
  b.join();
  ASSERT_NE(got[0], nullptr);
  ASSERT_NE(got[1], nullptr);
  EXPECT_EQ(got[0], got[1]) << "one mapping shared, not two";
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
}

// ----------------------------------------------------- end-to-end replay

TEST_F(ScheduleStoreTest, WarmStoreSkipsRecordAndValidate) {
  const net::DualCube d(3);
  const core::Plus<u64> plus;
  Rng rng(7);
  std::vector<u64> data(d.node_count());
  for (auto& x : data) x = rng.below(1000);
  const auto expected = core::seq_inclusive_scan(plus, data);

  attach_schedule_store(dir_);

  // "Process 1": cold — records, validates, commits, writes through.
  {
    Machine m(d);
    m.set_schedule_path(SchedulePath::kCompiled);
    EXPECT_EQ(core::dual_prefix(m, d, plus, data), expected);
    EXPECT_EQ(m.replayed_cycles(), 0u);
  }

  // "Process 2": same store, empty in-process cache. Every cycle must
  // replay from the mapped schedule — zero record-and-validate passes.
  ScheduleCache::instance().clear();
  {
    Machine m(d);
    m.set_schedule_path(SchedulePath::kCompiled);
    EXPECT_EQ(core::dual_prefix(m, d, plus, data), expected);
    EXPECT_EQ(m.replayed_cycles(), m.counters().comm_cycles)
        << "warm start must replay every cycle";
    const auto st = ScheduleCache::instance().stats();
    EXPECT_GE(st.disk_hits, 1u);
    EXPECT_EQ(st.hits, 0u) << "nothing was resident before the load";
  }
}

}  // namespace
}  // namespace dc::sim
