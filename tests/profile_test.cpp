// Profiler and run-report tests: the deterministic band partition, the
// fusion cost model's spread arithmetic, critical-path attribution
// reconciling exactly against Counters (flat and sharded), per-run gauge
// reset at publish boundaries, hot-edge ranking, and the run report's
// byte-level determinism contract (same seed + DC_THREADS => identical
// bytes modulo wall_seconds).
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/sharded_prefix.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/profile.hpp"
#include "sim/run_report.hpp"
#include "sim/shard.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "topology/dual_cube.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::sim {
namespace {

std::vector<u64> inputs(std::size_t n) {
  std::vector<u64> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = (i * 2654435761ull) % 997;
  return v;
}

// ---------------------------------------------------------- band partition

TEST(Profile, BandPartitionIsDeterministicAndContiguous) {
  EXPECT_EQ(imbalance_band_count(0), 1u);
  EXPECT_EQ(imbalance_band_count(8), 8u);
  EXPECT_EQ(imbalance_band_count(64), kImbalanceBands);
  const std::size_t n = 64;
  const std::size_t bands = imbalance_band_count(n);
  std::size_t prev = 0;
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t band = imbalance_band_of(v, n, bands);
    EXPECT_GE(band, prev);
    EXPECT_LT(band, bands);
    prev = band;
  }
  EXPECT_EQ(imbalance_band_of(0, n, bands), 0u);
  EXPECT_EQ(imbalance_band_of(n - 1, n, bands), bands - 1);
}

// Builds a cycle where exactly `recvs` receive one message each.
ScheduleCycle cycle_receiving(std::size_t n,
                              const std::vector<std::size_t>& recvs) {
  ScheduleCycle c;
  c.recv_from.assign(n, kNoSender);
  c.recv_slot.assign(n, kNoEdgeSlot);
  for (const std::size_t v : recvs) {
    c.recv_from[v] = static_cast<net::NodeId>((v + n / 2) % n);
    c.recv_slot[v] = 0;
  }
  c.message_count = recvs.size();
  return c;
}

TEST(Profile, CostModelSpreadsMatchHandCounts) {
  const std::size_t n = 32;  // 16 bands, two nodes per band
  const CycleCostModel cost;
  // Both receivers in band 0: counts {2, 0, ...} -> spread 2.
  EXPECT_EQ(cost.spread(cycle_receiving(n, {0, 1}), n), 2u);
  // One receiver in each of two bands -> spread 1.
  EXPECT_EQ(cost.spread(cycle_receiving(n, {0, 2}), n), 1u);
  // Every node receives -> perfectly balanced.
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});
  EXPECT_EQ(cost.spread(cycle_receiving(n, all), n), 0u);
  // merged_spread of port-disjoint cycles is the spread of the union.
  EXPECT_EQ(
      cost.merged_spread(cycle_receiving(n, {0}), cycle_receiving(n, {1}), n),
      2u);
  EXPECT_EQ(
      cost.merged_spread(cycle_receiving(n, {0}), cycle_receiving(n, {2}), n),
      1u);
}

TEST(Profile, PhaseOfSpanMapsPrefixesAndPhases) {
  EXPECT_EQ(phase_of_span("record:emulated_prefix"), "record");
  EXPECT_EQ(phase_of_span("replay:emulated_prefix"), "replay");
  EXPECT_EQ(phase_of_span("interp:route"), "interp");
  EXPECT_EQ(phase_of_span("load:disk"), "load");
  EXPECT_EQ(phase_of_span("fuse:prefix_broadcast"), "fuse");
  EXPECT_EQ(phase_of_span("phase:shard_exchange"), "shard_exchange");
  EXPECT_EQ(phase_of_span("phase:resilient_prefix"), "resilient_prefix");
  EXPECT_EQ(phase_of_span("comm_cycle"), "");
}

// ------------------------------------------------ critical-path attribution

TEST(Profile, ProfilerAccountsEveryMeasuredCycleFlat) {
  ScheduleCache::instance().clear();
  const net::DualCube d(4);
  TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
  {
    // Warm-up records and caches the schedule: the measured run replays.
    Machine warm(d);
    warm.set_trace(&rec, "warm-up");
    (void)core::dual_prefix(warm, d, core::Plus<u64>{},
                            inputs(d.node_count()));
  }
  Machine m(d);
  m.set_trace(&rec, "measured");
  CycleProfiler prof;
  m.attach_profiler(&prof);
  (void)core::dual_prefix(m, d, core::Plus<u64>{}, inputs(d.node_count()));

  // The profiler sampled exactly the measured machine's cycles.
  EXPECT_EQ(prof.summary().cycles, m.counters().comm_cycles);

  const Profile p = build_profile(rec);
  ASSERT_TRUE(p.complete);
  EXPECT_EQ(p.dropped_events, 0u);
  const TrackProfile* measured = nullptr;
  for (const auto& t : p.tracks)
    if (t.label == "measured") measured = &t;
  ASSERT_NE(measured, nullptr);
  // Reconciliation: the track's cycle total is the machine's counter, and
  // the per-phase attribution partitions it exactly.
  EXPECT_EQ(measured->total_cycles, m.counters().comm_cycles);
  EXPECT_EQ(measured->total_messages, m.counters().messages);
  std::uint64_t phase_cycles = 0;
  std::uint64_t phase_messages = 0;
  for (const auto& ph : measured->phases) {
    phase_cycles += ph.cycles;
    phase_messages += ph.messages;
  }
  EXPECT_EQ(phase_cycles, measured->total_cycles);
  EXPECT_EQ(phase_messages, measured->total_messages);
  // Phases come back hottest-first.
  for (std::size_t i = 1; i < measured->phases.size(); ++i)
    EXPECT_GE(measured->phases[i - 1].cycles, measured->phases[i].cycles);
  ScheduleCache::instance().clear();
}

TEST(Profile, ShardedTrackPlusVirtualReconcilesAgainstCounters) {
  ScheduleCache::instance().clear();
  const net::DualCube d(7);
  ShardEngine eng(d, 4);
  TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
  eng.set_trace(&rec);
  CycleProfiler prof;
  eng.attach_profiler(&prof);
  const auto data_of = [](u64 i) -> u64 { return (i * 37) % 1000; };
  u64 seen = 0;
  core::sharded_dual_prefix(
      eng, core::Plus<u64>{}, data_of,
      [&](u64, const u64*, std::size_t count) { seen += count; });
  EXPECT_EQ(seen, d.node_count());

  const Counters total = eng.counters();
  const Counters& virt = eng.virtual_counters();
  EXPECT_GT(virt.comm_cycles, 0u) << "sharded runs book virtual cycles";

  const Profile p = build_profile(rec);
  ASSERT_TRUE(p.complete);
  const TrackProfile* shard0 = nullptr;
  for (const auto& t : p.tracks)
    if (t.label == "shards/shard0") shard0 = &t;
  ASSERT_NE(shard0, nullptr);
  // Executed cycles live on shard 0's track; the virtualized cross and
  // distribution booking closes the gap to the aggregate counters.
  EXPECT_EQ(shard0->total_cycles + virt.comm_cycles, total.comm_cycles);
  // One profiler heard every shard's lock-stepped cycles.
  EXPECT_EQ(prof.summary().cycles,
            (total.comm_cycles - virt.comm_cycles) * eng.shard_count());
  ScheduleCache::instance().clear();
}

TEST(Profile, ImbalanceSummaryBoundsHold) {
  ScheduleCache::instance().clear();
  const net::RecursiveDualCube r(4);
  Machine m(r);
  CycleProfiler prof;
  m.attach_profiler(&prof);
  auto keys = dc::generate_keys(dc::KeyDistribution::kUniform,
                                r.node_count(), 11);
  core::dual_sort(m, r, keys);
  const ImbalanceSummary s = prof.summary();
  EXPECT_EQ(s.cycles, m.counters().comm_cycles);
  EXPECT_LE(s.band_min, s.band_max);
  EXPECT_LE(s.spread_max, s.band_max);
  EXPECT_GE(s.spread_sum, s.spread_max);
  ScheduleCache::instance().clear();
}

TEST(Profile, ImbalanceTelemetryIsThreadCountInvariant) {
  const auto run = [](std::size_t workers) {
    ScheduleCache::instance().clear();
    dc::ThreadPool pool(workers);
    const net::DualCube d(4);
    Machine m(d);
    m.set_thread_pool(&pool);
    m.set_parallel_grain(1);
    m.set_schedule_path(SchedulePath::kInterpreted);
    CycleProfiler prof;
    m.attach_profiler(&prof);
    (void)core::dual_prefix(m, d, core::Plus<u64>{},
                            inputs(d.node_count()));
    ScheduleCache::instance().clear();
    return prof.summary();
  };
  const ImbalanceSummary one = run(1);
  const ImbalanceSummary four = run(4);
  EXPECT_EQ(one.cycles, four.cycles);
  EXPECT_EQ(one.band_min, four.band_min);
  EXPECT_EQ(one.band_max, four.band_max);
  EXPECT_EQ(one.spread_max, four.spread_max);
  EXPECT_EQ(one.spread_sum, four.spread_sum);
}

// ------------------------------------------------------------- gauge reset

TEST(Profile, PerRunGaugesClearAtPublishBoundaries) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  MetricsRegistry::arm();
  const net::DualCube d(3);
  {
    Machine m(d);
    m.enable_edge_load();
    auto inbox = m.comm_cycle<int>(
        [&](net::NodeId u) { return Send<int>{d.cross_neighbor(u), 1}; });
    m.publish_metrics();
  }
  const auto has_edge_gauge = [&reg]() {
    for (const auto& [name, v] : reg.snapshot().gauges)
      if (name.rfind("sim.edge_load.", 0) == 0) return true;
    return false;
  };
  EXPECT_TRUE(has_edge_gauge());
  {
    // A second run without edge loads publishes: the stale sim.edge_load.*
    // gauges from the previous run must not leak into its snapshot.
    Machine m(d);
    auto inbox = m.comm_cycle<int>(
        [&](net::NodeId u) { return Send<int>{d.cross_neighbor(u), 1}; });
    m.publish_metrics();
  }
  EXPECT_FALSE(has_edge_gauge());
  MetricsRegistry::disarm();
  reg.reset();
}

TEST(Profile, ClearGaugesWithPrefixIsExact) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.set_gauge("sim.edge_load.max", 5);
  reg.set_gauge("sim.edge_loader", 6);  // prefix must not over-match
  reg.set_gauge("sim.comm_cycles", 7);
  reg.clear_gauges_with_prefix("sim.edge_load.");
  bool cleared_survives = false, other_survives = false, comm_survives = false;
  for (const auto& [name, v] : reg.snapshot().gauges) {
    if (name == "sim.edge_load.max") cleared_survives = true;
    if (name == "sim.edge_loader") other_survives = true;
    if (name == "sim.comm_cycles") comm_survives = true;
  }
  EXPECT_FALSE(cleared_survives);
  EXPECT_TRUE(other_survives);
  EXPECT_TRUE(comm_survives);
  reg.reset();
}

// --------------------------------------------------------------- hot edges

TEST(Profile, TopKHotEdgesRanksDeterministically) {
  const net::DualCube d(3);
  const auto& adj = d.flat_adjacency();
  std::vector<std::uint64_t> loads(adj.directed_edge_count(), 0);
  loads[9] = 9;
  loads[3] = 7;
  loads[5] = 7;
  const auto top = top_k_hot_edges(adj, loads, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].load, 9u);
  EXPECT_EQ(top[1].load, 7u);
  EXPECT_EQ(top[2].load, 7u);
  // Ties break toward the lexicographically smaller edge (slots are
  // row-major, so slot 3's edge precedes slot 5's).
  EXPECT_TRUE(top[1].u < top[2].u ||
              (top[1].u == top[2].u && top[1].v < top[2].v));
  // k caps the result.
  EXPECT_EQ(top_k_hot_edges(adj, loads, 1).size(), 1u);
  // The predicate filters: keep only edges that flip the class bit.
  const unsigned class_bit = 2 * 3 - 2;
  const auto cross = top_k_hot_edges(
      adj, loads, 100, [&](net::NodeId u, net::NodeId v) {
        return (u ^ v) == (net::NodeId{1} << class_bit);
      });
  for (const auto& e : cross)
    EXPECT_EQ(e.u ^ e.v, net::NodeId{1} << class_bit);
  EXPECT_EQ(cross.size(), d.node_count());
}

// -------------------------------------------------------- report goldens

std::string golden_report() {
  ScheduleCache::instance().clear();
  const net::RecursiveDualCube r(4);
  TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
  Machine m(r);
  m.set_trace(&rec, "measured");
  CycleProfiler prof;
  m.attach_profiler(&prof);
  m.enable_edge_load();
  auto keys = dc::generate_keys(dc::KeyDistribution::kUniform,
                                r.node_count(), 7);
  core::dual_sort(m, r, keys);

  // Mirror the dcsim assembly for a flat profiled run.
  RunReport rep;
  rep.algo = "sort";
  rep.n = 4;
  rep.seed = 7;
  rep.profiled = true;
  rep.counters = m.counters();
  rep.reconciled = {"measured"};
  rep.has_imbalance = true;
  const auto loads = m.edge_load_merged();
  prof.note_edge_loads(loads);
  rep.imbalance = prof.summary();
  rep.hot_edges = top_k_hot_edges(r.flat_adjacency(), loads, 5);
  rep.cache = ScheduleCache::instance().stats();
  fill_from_recorder(rep, rec);
  rep.wall_seconds = 0.0;  // the single nondeterministic field
  ScheduleCache::instance().clear();
  return report_json(rep);
}

TEST(RunReport, ByteIdenticalForSameSeedAndThreads) {
  const std::string one = golden_report();
  const std::string two = golden_report();
  EXPECT_EQ(one, two);
  EXPECT_NE(one.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(one.find("\"tool\":\"dcsim\""), std::string::npos);
  EXPECT_NE(one.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(one.find("\"imbalance\""), std::string::npos);
  EXPECT_NE(one.find("\"hot_edges\""), std::string::npos);
}

TEST(RunReport, EscapesAndNullSectionsSerialize) {
  RunReport rep;
  rep.algo = "quote\"back\\slash";
  rep.status = "sim_error";
  rep.error = "bad \"thing\"";
  const std::string json = report_json(rep);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("\"profile\":null"), std::string::npos);
  EXPECT_NE(json.find("\"imbalance\":null"), std::string::npos);
  EXPECT_NE(json.find("\"virtual_counters\":null"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"sim_error\""), std::string::npos);
}

}  // namespace
}  // namespace dc::sim
