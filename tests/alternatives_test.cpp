// Tests for the sort alternatives (recursive Algorithm 3, enumeration
// sort, radix sort), the all-to-all exchange, and the torus embeddings.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "collectives/alltoall.hpp"
#include "core/dual_sort.hpp"
#include "core/dual_sort_recursive.hpp"
#include "core/enumeration_sort.hpp"
#include "core/formulas.hpp"
#include "core/radix_sort.hpp"
#include "support/rng.hpp"
#include "topology/torus_embedding.hpp"

namespace dc {
namespace {

using net::NodeId;

// -------------------------------------------- recursive Algorithm 3 (spec)

class RecursiveSortTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RecursiveSortTest, MatchesFlattenedImplementationExactly) {
  // The literal paper recursion and the production SPMD flattening must
  // produce identical outputs — they are the same comparator network.
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  for (u64 seed = 0; seed < 8; ++seed) {
    auto a = generate_keys(KeyDistribution::kUniform, r.node_count(), seed);
    auto b = a;
    sim::Machine ma(r);
    core::dual_sort(ma, r, a);
    sim::Machine mb(r);
    core::dual_sort_recursive(mb, r, b);
    ASSERT_EQ(a, b) << "seed " << seed;
    ASSERT_TRUE(std::is_sorted(b.begin(), b.end()));
  }
}

TEST_P(RecursiveSortTest, DescendingAgreesToo) {
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  auto a = generate_keys(KeyDistribution::kFewDistinct, r.node_count(), 5);
  auto b = a;
  sim::Machine ma(r);
  core::dual_sort(ma, r, a, /*descending=*/true);
  sim::Machine mb(r);
  core::dual_sort_recursive(mb, r, b, /*descending=*/true);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(std::is_sorted(b.rbegin(), b.rend()));
}

TEST_P(RecursiveSortTest, ComparisonCountsAgree) {
  // Same network, same number of comparator applications — only the
  // scheduling differs (sequential sub-sorts vs level-synchronous).
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  auto a = generate_keys(KeyDistribution::kUniform, r.node_count(), 2);
  auto b = a;
  sim::Machine ma(r);
  core::dual_sort(ma, r, a);
  sim::Machine mb(r);
  core::dual_sort_recursive(mb, r, b);
  EXPECT_EQ(ma.counters().ops, mb.counters().ops);
  EXPECT_GE(mb.counters().comm_cycles, ma.counters().comm_cycles)
      << "the flattened schedule can only be faster";
}

INSTANTIATE_TEST_SUITE_P(Orders, RecursiveSortTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(DualSortZeroOne, ExhaustiveZeroOnePrincipleOnD2) {
  // The 0-1 principle: a comparator network sorts all inputs iff it sorts
  // all 0-1 inputs. D_2 has 8 nodes -> 256 cases, checked exhaustively.
  const net::RecursiveDualCube r(2);
  for (unsigned mask = 0; mask < 256; ++mask) {
    std::vector<u64> keys(8);
    for (unsigned i = 0; i < 8; ++i) keys[i] = (mask >> i) & 1;
    sim::Machine m(r);
    core::dual_sort(m, r, keys);
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end())) << "mask " << mask;
  }
}

TEST(DualSortZeroOne, RandomZeroOneInputsOnD3) {
  const net::RecursiveDualCube r(3);
  Rng rng(9);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<u64> keys(r.node_count());
    for (auto& k : keys) k = rng.below(2);
    sim::Machine m(r);
    core::dual_sort(m, r, keys);
    ASSERT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  }
}

// --------------------------------------------------------- enumeration sort

class EnumerationSortTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(EnumerationSortTest, SortsAllDistributions) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  for (const auto dist : all_key_distributions()) {
    auto keys = generate_keys(dist, d.node_count(), n);
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    sim::Machine m(d);
    core::enumeration_sort(m, d, keys);
    EXPECT_EQ(keys, expected) << to_string(dist);
  }
}

TEST_P(EnumerationSortTest, GatherPhaseIsDiameterOptimal) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  auto keys = generate_keys(KeyDistribution::kUniform, d.node_count(), 1);
  sim::Machine m(d);
  const auto report = core::enumeration_sort(m, d, keys);
  // Total = 2n all-gather cycles + the permutation drain.
  EXPECT_EQ(m.counters().comm_cycles, 2 * n + report.cycles);
}

INSTANTIATE_TEST_SUITE_P(Orders, EnumerationSortTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(EnumerationSort, StableForEqualKeys) {
  const net::DualCube d(2);
  std::vector<u64> keys{3, 1, 3, 1, 3, 1, 3, 1};
  sim::Machine m(d);
  core::enumeration_sort(m, d, keys);
  EXPECT_EQ(keys, (std::vector<u64>{1, 1, 1, 1, 3, 3, 3, 3}));
}

// --------------------------------------------------------------- radix sort

class RadixSortTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RadixSortTest, SortsNarrowKeys) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  Rng rng(n);
  std::vector<u64> keys(d.node_count());
  for (auto& k : keys) k = rng.below(64);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  sim::Machine m(d);
  const auto stats = core::radix_sort(m, d, keys, 6);
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(stats.passes, 6u);
}

TEST_P(RadixSortTest, OneBitKeysAreASinglePass) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  Rng rng(n + 4);
  std::vector<u64> keys(d.node_count());
  for (auto& k : keys) k = rng.below(2);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  sim::Machine m(d);
  const auto stats = core::radix_sort(m, d, keys, 1);
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(stats.passes, 1u);
}

INSTANTIATE_TEST_SUITE_P(Orders, RadixSortTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(RadixSort, RejectsOverWideKeys) {
  const net::DualCube d(2);
  sim::Machine m(d);
  std::vector<u64> keys(d.node_count(), 9);  // needs 4 bits
  EXPECT_THROW(core::radix_sort(m, d, keys, 3), CheckError);
}

TEST(RadixSort, AlreadySortedStaysSorted) {
  const net::DualCube d(3);
  std::vector<u64> keys(d.node_count());
  std::iota(keys.begin(), keys.end(), 0);
  auto expected = keys;
  sim::Machine m(d);
  core::radix_sort(m, d, keys, 5);
  EXPECT_EQ(keys, expected);
}

// ---------------------------------------------------------------- alltoall

class AlltoallTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlltoallTest, DeliversEveryPersonalizedMessage) {
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  const std::size_t N = r.node_count();
  std::vector<std::vector<u64>> messages(N, std::vector<u64>(N));
  for (NodeId u = 0; u < N; ++u)
    for (NodeId v = 0; v < N; ++v) messages[u][v] = u * 1000 + v;
  const auto out = collectives::dual_alltoall(m, r, messages);
  for (NodeId v = 0; v < N; ++v)
    for (NodeId u = 0; u < N; ++u)
      ASSERT_EQ(out[v][u], u * 1000 + v) << "u=" << u << " v=" << v;
  // Dimension sweep: 1 cycle at dim 0, 3 at each of the other 2n-2 dims.
  EXPECT_EQ(m.counters().comm_cycles,
            core::formulas::emulated_prefix_comm(n));
}

INSTANTIATE_TEST_SUITE_P(Orders, AlltoallTest,
                         ::testing::Values(1u, 2u, 3u));

// --------------------------------------------------------- torus embedding

TEST(TorusEmbedding, GrayMapIsABijection) {
  const auto map = net::embed_torus_gray(3, 2);
  std::vector<char> seen(32, 0);
  for (const auto label : map) {
    ASSERT_LT(label, 32u);
    EXPECT_FALSE(seen[label]);
    seen[label] = 1;
  }
}

TEST(TorusEmbedding, Dilation1OnHypercube) {
  for (const auto& [a, b] :
       std::vector<std::pair<unsigned, unsigned>>{{2, 1}, {3, 2}, {4, 3}}) {
    const auto map = net::embed_torus_gray(a, b);
    const auto edges = net::torus_edges(a, b);
    const auto stats = net::embedding_dilation(
        edges, map, [](NodeId x, NodeId y) { return bits::hamming(x, y); });
    EXPECT_EQ(stats.max, 1u) << a << "x" << b;
  }
}

TEST(TorusEmbedding, DilationAtMost3OnDualCube) {
  for (unsigned n : {2u, 3u, 4u}) {
    const net::DualCube d(n);
    const auto map = net::embed_torus_gray(n, n - 1);
    const auto edges = net::torus_edges(n, n - 1);
    const auto stats = net::embedding_dilation(
        edges, map, [&](NodeId x, NodeId y) { return d.distance(x, y); });
    EXPECT_LE(stats.max, 3u);
    EXPECT_EQ(stats.max, 3u) << "some edge crosses fields";
  }
}

TEST(TorusEmbedding, EdgeCountIsTwoNForLargeSides) {
  // An R x C torus with R, C > 2 has 2*R*C edges.
  const auto edges = net::torus_edges(3, 3);
  EXPECT_EQ(edges.size(), 2u * 8 * 8);
}

TEST(TorusEmbedding, DegenerateSidesDeduplicate) {
  // 2 x 2: wrap edges coincide with step edges -> plain 4-cycle.
  const auto edges = net::torus_edges(1, 1);
  EXPECT_EQ(edges.size(), 4u);
  // 1 x 8 ring.
  const auto ring = net::torus_edges(0, 3);
  EXPECT_EQ(ring.size(), 8u);
}

}  // namespace
}  // namespace dc
