// Schedule fusion tests: the static port-conflict check, the fusion
// plan's structural invariants, and the end-to-end parity proof that the
// fused prefix → broadcast stream produces bit-identical results in
// fewer replay cycles than the two sections run back-to-back.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "collectives/fused_prefix_broadcast.hpp"
#include "collectives/pipeline_broadcast.hpp"
#include "core/emulated_prefix.hpp"
#include "core/ops.hpp"
#include "core/sequential.hpp"
#include "sim/fusion.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::sim {
namespace {

class FusionTest : public ::testing::Test {
 protected:
  void SetUp() override { ScheduleCache::instance().clear(); }
  void TearDown() override { ScheduleCache::instance().clear(); }
};

// Builds a cycle where each (receiver, sender) pair delivers one message.
ScheduleCycle cycle_of(std::size_t n,
                       std::vector<std::pair<std::size_t, std::size_t>> rs) {
  ScheduleCycle c;
  c.recv_from.assign(n, kNoSender);
  c.recv_slot.assign(n, kNoEdgeSlot);
  for (const auto& [recv, send] : rs) {
    c.recv_from[recv] = static_cast<net::NodeId>(send);
    c.recv_slot[recv] = 0;
  }
  c.message_count = rs.size();
  return c;
}

TEST_F(FusionTest, PortDisjointnessNeedsDistinctSendersAndReceivers) {
  const std::size_t n = 8;
  std::vector<std::uint8_t> scratch(n, 0);

  const auto a = cycle_of(n, {{1, 0}, {3, 2}});
  EXPECT_TRUE(cycles_port_disjoint(a, cycle_of(n, {{5, 4}}), n, scratch));
  // Common receiver (node 1 hears from both sections).
  EXPECT_FALSE(cycles_port_disjoint(a, cycle_of(n, {{1, 6}}), n, scratch));
  // Common sender (node 2 would send twice in one cycle).
  EXPECT_FALSE(cycles_port_disjoint(a, cycle_of(n, {{7, 2}}), n, scratch));
  // A sending in one and receiving in the other is fine (1 port each way).
  EXPECT_TRUE(cycles_port_disjoint(a, cycle_of(n, {{0, 5}}), n, scratch));
  // The scratch must come back zeroed so checks can chain.
  for (const auto b : scratch) EXPECT_EQ(b, 0);
}

TEST_F(FusionTest, FusePlanPreservesOrderAndCyclecount) {
  const std::size_t n = 8;
  // A: three cycles on low nodes; B: three cycles, the middle one
  // conflicting with every A cycle (common sender 0 / receiver 1).
  auto a = std::make_shared<const Schedule>(std::vector<ScheduleCycle>{
      cycle_of(n, {{1, 0}}), cycle_of(n, {{2, 1}}), cycle_of(n, {{3, 2}})});
  auto b = std::make_shared<const Schedule>(std::vector<ScheduleCycle>{
      cycle_of(n, {{5, 4}}), cycle_of(n, {{1, 0}}), cycle_of(n, {{6, 7}})});

  const FusedSchedule f = fuse_schedules(a, b, n);
  EXPECT_EQ(f.steps.size(),
            a->cycle_count() + b->cycle_count() - f.merged_count());
  EXPECT_GE(f.merged_count(), 1u);
  EXPECT_EQ(f.cycles_saved(), f.merged_count());

  // Every A index and every B index appears exactly once, in order.
  std::vector<std::size_t> a_seen, b_seen;
  for (const FusedStep& s : f.steps) {
    if (s.a != kNoCycle) a_seen.push_back(s.a);
    if (s.b != kNoCycle) b_seen.push_back(s.b);
    if (s.merged_index != kNoCycle) {
      ASSERT_NE(s.a, kNoCycle);
      ASSERT_NE(s.b, kNoCycle);
      const ScheduleCycle& u = f.merged[s.merged_index];
      EXPECT_EQ(u.message_count, f.a->cycle(s.a).message_count +
                                     f.b->cycle(s.b).message_count);
    }
  }
  std::vector<std::size_t> want_a(a->cycle_count()), want_b(b->cycle_count());
  std::iota(want_a.begin(), want_a.end(), 0);
  std::iota(want_b.begin(), want_b.end(), 0);
  EXPECT_EQ(a_seen, want_a);
  EXPECT_EQ(b_seen, want_b);
}

TEST_F(FusionTest, CostModelTieBreaksTowardLowerMergedSpread) {
  // n = 32 puts two nodes in each of the 16 imbalance bands, so merged
  // spreads can differ. A0 receives at node 0 (band 0). B0 also lands in
  // band 0 (union spread 2); B1 lands in band 1 (union spread 1). Both
  // are port-disjoint with A0, so pure greedy pairs A0 with B0 while the
  // cost model prefers B1.
  const std::size_t n = 32;
  auto a = std::make_shared<const Schedule>(
      std::vector<ScheduleCycle>{cycle_of(n, {{0, 16}})});
  auto b = std::make_shared<const Schedule>(std::vector<ScheduleCycle>{
      cycle_of(n, {{1, 17}}), cycle_of(n, {{2, 18}})});

  const FusedSchedule greedy = fuse_schedules(a, b, n);
  ASSERT_EQ(greedy.merged_count(), 1u);
  ASSERT_EQ(greedy.steps.size(), 2u);
  EXPECT_EQ(greedy.steps[0].a, 0u);
  EXPECT_EQ(greedy.steps[0].b, 0u);  // greedy takes the first candidate

  const CycleCostModel cost;
  const FusedSchedule refined = fuse_schedules(a, b, n, &cost);
  ASSERT_EQ(refined.merged_count(), 1u);
  ASSERT_EQ(refined.steps.size(), greedy.steps.size())
      << "the refinement never changes the merge count";
  // The displaced B0 replays unfused first, then the better-balanced pair.
  EXPECT_EQ(refined.steps[0].a, kNoCycle);
  EXPECT_EQ(refined.steps[0].b, 0u);
  EXPECT_EQ(refined.steps[1].a, 0u);
  EXPECT_EQ(refined.steps[1].b, 1u);
  ASSERT_NE(refined.steps[1].merged_index, kNoCycle);
  EXPECT_EQ(refined.merged[refined.steps[1].merged_index].message_count, 2u);
}

TEST_F(FusionTest, CostModelKeepsGreedyPlanWhenAllCostsTie) {
  // n = 8 gives every node its own band, so every single-receiver merge
  // candidate has the same spread: the cost model must keep the greedy
  // pairing bit-for-bit (plan parity under ties).
  const std::size_t n = 8;
  auto a = std::make_shared<const Schedule>(std::vector<ScheduleCycle>{
      cycle_of(n, {{1, 0}}), cycle_of(n, {{2, 1}}), cycle_of(n, {{3, 2}})});
  auto b = std::make_shared<const Schedule>(std::vector<ScheduleCycle>{
      cycle_of(n, {{5, 4}}), cycle_of(n, {{1, 0}}), cycle_of(n, {{6, 7}})});

  const FusedSchedule g = fuse_schedules(a, b, n);
  const CycleCostModel cost;
  const FusedSchedule c = fuse_schedules(a, b, n, &cost);
  ASSERT_EQ(c.steps.size(), g.steps.size());
  EXPECT_EQ(c.merged_count(), g.merged_count());
  for (std::size_t s = 0; s < g.steps.size(); ++s) {
    EXPECT_EQ(c.steps[s].a, g.steps[s].a) << "step " << s;
    EXPECT_EQ(c.steps[s].b, g.steps[s].b) << "step " << s;
    EXPECT_EQ(c.steps[s].merged_index, g.steps[s].merged_index)
        << "step " << s;
  }
}

TEST_F(FusionTest, FullPermutationsNeverFuse) {
  const std::size_t n = 4;
  std::vector<std::pair<std::size_t, std::size_t>> perm;
  for (std::size_t v = 0; v < n; ++v) perm.push_back({v, v ^ 1});
  auto a = std::make_shared<const Schedule>(
      std::vector<ScheduleCycle>{cycle_of(n, perm)});
  auto b = std::make_shared<const Schedule>(
      std::vector<ScheduleCycle>{cycle_of(n, perm)});
  const FusedSchedule f = fuse_schedules(a, b, n);
  EXPECT_EQ(f.merged_count(), 0u);
  EXPECT_EQ(f.steps.size(), 2u);
  EXPECT_EQ(f.cycles_saved(), 0u);
}

// ------------------------------------------------- straggler compilation

TEST_F(FusionTest, PipelineBroadcastReplaysBitIdentical) {
  const net::DualCube d(3);
  Rng rng(11);
  std::vector<u64> chunks(9);
  for (auto& c : chunks) c = rng();

  sim::Machine record(d);
  const auto first = collectives::ring_pipeline_broadcast(record, d, 5, chunks);
  EXPECT_EQ(record.replayed_cycles(), 0u);

  sim::Machine replay(d);
  const auto second = collectives::ring_pipeline_broadcast(replay, d, 5, chunks);
  EXPECT_GT(replay.replayed_cycles(), 0u) << "second run must replay";
  EXPECT_EQ(replay.counters(), record.counters());
  EXPECT_EQ(first, second);
  for (net::NodeId u = 0; u < d.node_count(); ++u)
    ASSERT_EQ(second[u], chunks);
}

TEST_F(FusionTest, EmulatedPrefixReplaysBitIdentical) {
  const net::RecursiveDualCube r(3);
  const core::Plus<u64> op;
  Rng rng(5);
  std::vector<u64> c(r.node_count());
  for (auto& x : c) x = rng.below(1 << 20);
  const auto expected = core::seq_inclusive_scan(op, c);

  sim::Machine record(r);
  EXPECT_EQ(core::emulated_prefix(record, r, op, c), expected);
  EXPECT_EQ(record.replayed_cycles(), 0u);

  sim::Machine replay(r);
  EXPECT_EQ(core::emulated_prefix(replay, r, op, c), expected);
  EXPECT_GT(replay.replayed_cycles(), 0u) << "whole emulation must replay";
  EXPECT_EQ(replay.counters(), record.counters());
}

// ----------------------------------------------------- fused end-to-end

TEST_F(FusionTest, FusedPrefixBroadcastMatchesSequentialAndSavesCycles) {
  const net::RecursiveDualCube r(3);
  const core::Plus<u64> op;
  const net::NodeId root = 3;
  Rng rng(23);
  std::vector<u64> data(r.node_count());
  for (auto& x : data) x = rng.below(1 << 20);
  std::vector<u64> chunks(12);
  for (auto& c : chunks) c = rng();

  // Sequential reference results and cost.
  sim::Machine seq(r);
  const auto want_prefix = core::emulated_prefix(seq, r, op, data);
  const auto ring = net::recursive_dual_cube_hamiltonian_cycle(r);
  const auto want_received =
      collectives::ring_pipeline_broadcast(seq, ring, root, chunks);
  const auto seq_cycles = seq.counters().comm_cycles;

  // First fused call: schedules are cached (the sequential runs above
  // recorded them), so it fuses right away on a fresh machine.
  sim::Machine m(r);
  const auto out =
      collectives::fused_prefix_broadcast(m, r, op, data, root, chunks);
  ASSERT_TRUE(out.fused);
  EXPECT_GE(out.merged, 1u) << "relay cycles must overlap ring cycles";
  EXPECT_EQ(out.fused_steps, out.unfused_cycles - out.merged);
  EXPECT_EQ(out.unfused_cycles, seq_cycles);
  EXPECT_EQ(m.counters().comm_cycles, out.fused_steps)
      << "the fused stream is one comm cycle per step";
  EXPECT_LT(m.counters().comm_cycles, seq_cycles);
  EXPECT_EQ(m.replayed_cycles(), out.fused_steps);

  // Bit-identical to the sequential runs.
  EXPECT_EQ(out.prefix, want_prefix);
  EXPECT_EQ(out.received, want_received);
}

TEST_F(FusionTest, FusedFallsBackAndRecordsOnColdCache) {
  const net::RecursiveDualCube r(2);
  const core::Plus<u64> op;
  Rng rng(3);
  std::vector<u64> data(r.node_count());
  for (auto& x : data) x = rng.below(100);
  const std::vector<u64> chunks{1, 2, 3, 4, 5};

  sim::Machine cold(r);
  const auto first =
      collectives::fused_prefix_broadcast(cold, r, op, data, 0, chunks);
  EXPECT_FALSE(first.fused) << "nothing compiled yet: sequential fallback";
  EXPECT_EQ(first.prefix, core::seq_inclusive_scan(op, data));

  // The fallback's section runs recorded both schedules: now it fuses.
  sim::Machine warm(r);
  const auto second =
      collectives::fused_prefix_broadcast(warm, r, op, data, 0, chunks);
  EXPECT_TRUE(second.fused);
  EXPECT_EQ(second.prefix, first.prefix);
  EXPECT_EQ(second.received, first.received);
  EXPECT_LT(warm.counters().comm_cycles, cold.counters().comm_cycles);
}

TEST_F(FusionTest, InterpretedMachinesNeverFuse) {
  const net::RecursiveDualCube r(2);
  const core::Plus<u64> op;
  std::vector<u64> data(r.node_count(), 1);
  const std::vector<u64> chunks{7, 8};

  // Prime the cache via a compiled machine.
  sim::Machine prime(r);
  (void)collectives::fused_prefix_broadcast(prime, r, op, data, 0, chunks);

  sim::Machine interp(r);
  interp.set_schedule_path(SchedulePath::kInterpreted);
  const auto out =
      collectives::fused_prefix_broadcast(interp, r, op, data, 0, chunks);
  EXPECT_FALSE(out.fused) << "interpreted machines take the sequential path";
  EXPECT_EQ(out.prefix, core::seq_inclusive_scan(op, data));
  EXPECT_EQ(interp.replayed_cycles(), 0u);
}

}  // namespace
}  // namespace dc::sim
