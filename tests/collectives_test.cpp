// Tests for the collectives extension: broadcast / reduce / all-reduce /
// gather / barrier on the dual-cube (cluster technique) and the hypercube
// baselines — correctness from every root and step-count optimality.
#include <gtest/gtest.h>

#include <numeric>

#include "collectives/barrier.hpp"
#include "collectives/broadcast.hpp"
#include "collectives/gather.hpp"
#include "collectives/reduce.hpp"
#include "support/rng.hpp"

namespace dc::collectives {
namespace {

std::vector<u64> random_values(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(1000);
  return v;
}

class DualCollectivesTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DualCollectivesTest, BroadcastReachesEveryNodeFromEveryRoot) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  for (net::NodeId root = 0; root < d.node_count();
       root += std::max<net::NodeId>(1, d.node_count() / 8)) {
    sim::Machine m(d);
    const auto out = dual_broadcast<u64>(m, d, root, 42 + root);
    for (const u64 v : out) EXPECT_EQ(v, 42 + root);
    EXPECT_EQ(m.counters().comm_cycles, 2 * n)
        << "broadcast must finish in diameter cycles";
  }
}

TEST_P(DualCollectivesTest, ReduceSumFromEveryRootSample) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  const dc::core::Plus<u64> op;
  const auto values = random_values(d.node_count(), n);
  const u64 expected = std::accumulate(values.begin(), values.end(), u64{0});
  for (net::NodeId root = 0; root < d.node_count();
       root += std::max<net::NodeId>(1, d.node_count() / 8)) {
    sim::Machine m(d);
    EXPECT_EQ(dual_reduce(m, d, root, op, values), expected);
    EXPECT_EQ(m.counters().comm_cycles, 2 * n);
  }
}

TEST_P(DualCollectivesTest, ReduceMinMax) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  const auto values = random_values(d.node_count(), n + 3);
  {
    sim::Machine m(d);
    const dc::core::Min<u64> op;
    EXPECT_EQ(dual_reduce(m, d, 0, op, values),
              *std::min_element(values.begin(), values.end()));
  }
  {
    sim::Machine m(d);
    const dc::core::Max<u64> op;
    EXPECT_EQ(dual_reduce(m, d, 0, op, values),
              *std::max_element(values.begin(), values.end()));
  }
}

TEST_P(DualCollectivesTest, AllReduceGivesEveryNodeTheTotal) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const dc::core::Plus<u64> op;
  const auto values = random_values(d.node_count(), n + 5);
  const u64 expected = std::accumulate(values.begin(), values.end(), u64{0});
  const auto out = dual_allreduce(m, d, op, values);
  for (const u64 v : out) EXPECT_EQ(v, expected);
  EXPECT_EQ(m.counters().comm_cycles, 2 * n);
}

TEST_P(DualCollectivesTest, BarrierCountsAllParticipants) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  EXPECT_EQ(dual_barrier(m, d), d.node_count());
}

TEST_P(DualCollectivesTest, GatherCollectsTaggedValues) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const auto values = random_values(d.node_count(), n + 7);
  const auto out = gather(m, d, /*root=*/3 % d.node_count(), values);
  EXPECT_EQ(out, values);
  // 1-port lower bound: the root receives N-1 messages one per cycle.
  EXPECT_GE(m.counters().comm_cycles, d.node_count() - 1);
}

INSTANTIATE_TEST_SUITE_P(Orders, DualCollectivesTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(CubeCollectives, BroadcastFromEveryRoot) {
  const net::Hypercube q(4);
  for (net::NodeId root = 0; root < q.node_count(); ++root) {
    sim::Machine m(q);
    const auto out = cube_broadcast<u64>(m, q, root, root + 1);
    for (const u64 v : out) EXPECT_EQ(v, root + 1);
    EXPECT_EQ(m.counters().comm_cycles, q.dimensions());
  }
}

TEST(CubeCollectives, ReduceFromEveryRoot) {
  const net::Hypercube q(4);
  const dc::core::Plus<u64> op;
  const auto values = random_values(q.node_count(), 11);
  const u64 expected = std::accumulate(values.begin(), values.end(), u64{0});
  for (net::NodeId root = 0; root < q.node_count(); ++root) {
    sim::Machine m(q);
    EXPECT_EQ(cube_reduce(m, q, root, op, values), expected);
    EXPECT_EQ(m.counters().comm_cycles, q.dimensions());
  }
}

TEST(Gather, WorksOnHypercubeToo) {
  const net::Hypercube q(3);
  sim::Machine m(q);
  std::vector<u64> values(q.node_count());
  std::iota(values.begin(), values.end(), 100);
  EXPECT_EQ(gather(m, q, 0, values), values);
}

TEST(Broadcast, DualBroadcastStepsEqualDiameterExactly) {
  // 2n cycles, which equals the diameter for n >= 2, so the schedule is
  // optimal there (D_1's degenerate diameter is 1; the generic schedule
  // still spends its two cross cycles).
  for (unsigned n : {2u, 3u, 4u, 5u}) {
    const net::DualCube d(n);
    sim::Machine m(d);
    dual_broadcast<int>(m, d, 0, 1);
    EXPECT_EQ(m.counters().comm_cycles, d.diameter());
  }
}

}  // namespace
}  // namespace dc::collectives
