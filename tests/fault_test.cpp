// Fault injection and fault-tolerant collectives.
//
// The load-bearing guarantees tested here:
//   * FaultPlan is deterministic: same plan, same losses, every run;
//   * a Machine with an attached plan enforces it exactly — kStrict
//     throws FaultError with a message naming the first offender in
//     sender order, kDegrade drops and counts;
//   * a machine with NO plan attached is bit-identical to the historical
//     healthy machine (counters equal, fault fields zero);
//   * ft_dual_broadcast and ft_dual_prefix are correct for EVERY node
//     fault set of size < n on D_2 and D_3 (exhaustive), and on seeded
//     random sweeps on D_4 — under both policies (the paper's
//     n-connectivity bound, Section 2, made executable);
//   * with an empty plan the fault-tolerant collectives cost exactly the
//     healthy schedules: 2n comm cycles, zero rerouted messages.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "collectives/ft_broadcast.hpp"
#include "core/dual_prefix.hpp"
#include "core/ft_dual_prefix.hpp"
#include "core/ops.hpp"
#include "sim/fault_transport.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "support/rng.hpp"
#include "topology/dual_cube.hpp"
#include "topology/graph.hpp"

namespace {

using dc::CheckError;
using dc::Rng;
using dc::core::Concat;
using dc::core::Plus;
using dc::net::DualCube;
using dc::net::NodeId;
using dc::sim::FaultError;
using dc::sim::FaultPlan;
using dc::sim::FaultPolicy;
using dc::sim::FaultyTopology;
using dc::sim::Machine;

// ------------------------------------------------------------- FaultPlan

TEST(FaultPlan, KillsAreTimedAndIdempotent) {
  FaultPlan plan;
  plan.kill_node(3, 5).kill_node(3, 2).kill_link(0, 1, 4);
  EXPECT_FALSE(plan.node_dead(3, 1));
  EXPECT_TRUE(plan.node_dead(3, 2));  // earliest kill wins
  EXPECT_TRUE(plan.node_dead(3, 100));
  EXPECT_FALSE(plan.node_dead(4, 100));
  EXPECT_FALSE(plan.link_dead(1, 0, 3));
  EXPECT_TRUE(plan.link_dead(1, 0, 4));  // orientation-free
  EXPECT_EQ(plan.dead_nodes(), std::vector<NodeId>{3});
  EXPECT_EQ(plan.node_fault_count(), 1u);
  EXPECT_EQ(plan.link_fault_count(), 1u);
  EXPECT_FALSE(plan.any_active(1));
  EXPECT_TRUE(plan.any_active(2));
}

TEST(FaultPlan, TransientDropsAreAPureFunctionOfSeedCycleSender) {
  const FaultPlan a = FaultPlan(42).drop_messages(250);
  const FaultPlan b = FaultPlan(42).drop_messages(250);
  const FaultPlan c = FaultPlan(43).drop_messages(250);
  std::size_t drops = 0, differs = 0;
  for (std::uint64_t cycle = 0; cycle < 64; ++cycle) {
    for (NodeId u = 0; u < 64; ++u) {
      EXPECT_EQ(a.drops_message(cycle, u), b.drops_message(cycle, u));
      drops += a.drops_message(cycle, u);
      differs += a.drops_message(cycle, u) != c.drops_message(cycle, u);
    }
  }
  // ~25% of 4096 decisions; loose bounds, deterministic given the seed.
  EXPECT_GT(drops, 4096 / 8);
  EXPECT_LT(drops, 4096 / 2);
  EXPECT_GT(differs, 0u) << "different seeds must lose different messages";
  EXPECT_THROW(FaultPlan().drop_messages(1001), CheckError);
}

TEST(FaultPlan, RandomNodesIsSeededAndRespectsExclusions) {
  const DualCube d(3);
  const FaultPlan a = FaultPlan::random_nodes(d, 5, 7, {0, 1});
  const FaultPlan b = FaultPlan::random_nodes(d, 5, 7, {0, 1});
  EXPECT_EQ(a.dead_nodes(), b.dead_nodes());
  EXPECT_EQ(a.node_fault_count(), 5u);
  EXPECT_FALSE(a.node_dead(0, ~std::uint64_t{0}));
  EXPECT_FALSE(a.node_dead(1, ~std::uint64_t{0}));
  const FaultPlan c = FaultPlan::random_nodes(d, 5, 8, {0, 1});
  EXPECT_NE(a.dead_nodes(), c.dead_nodes());
}

// -------------------------------------------------------- FaultyTopology

TEST(FaultyTopologyTest, FiltersDeadNodesAndLinksButKeepsNameAndCount) {
  const DualCube d(2);
  FaultPlan plan;
  plan.kill_node(3).kill_link(0, 1);
  const FaultyTopology f(d, plan);
  EXPECT_EQ(f.name(), d.name());
  EXPECT_EQ(f.node_count(), d.node_count());
  EXPECT_TRUE(f.neighbors(3).empty());
  EXPECT_FALSE(f.has_edge(0, 1));
  EXPECT_TRUE(d.has_edge(0, 1));
  for (const NodeId v : f.neighbors(0)) EXPECT_NE(v, 3);
  EXPECT_FALSE(f.node_alive(3));
  EXPECT_TRUE(f.node_alive(0));
  EXPECT_EQ(f.dead_node_count(), 1u);
}

TEST(FaultyTopologyTest, FingerprintDiffersFromHealthyBase) {
  const DualCube d(3);
  FaultPlan plan;
  plan.kill_node(5);
  const FaultyTopology f(d, plan);
  EXPECT_NE(f.flat_adjacency().fingerprint(), d.flat_adjacency().fingerprint())
      << "the adjacency fingerprint is what keeps cached schedules away "
         "from faulted graphs";
  // Different fault sets → different fingerprints too.
  FaultPlan other;
  other.kill_node(6);
  const FaultyTopology g(d, other);
  EXPECT_NE(f.flat_adjacency().fingerprint(),
            g.flat_adjacency().fingerprint());
}

TEST(FaultyTopologyTest, RejectsOutOfRangeFaults) {
  const DualCube d(2);
  FaultPlan plan;
  plan.kill_node(99);
  EXPECT_THROW(FaultyTopology(d, plan), CheckError);
}

// ----------------------------------------------------- Machine with plan

TEST(MachineFaults, StrictPolicyThrowsExactMessages) {
  const DualCube d(2);  // nodes 0..7; 0-1 is a cluster link, 0-4 the cross
  const auto run_one = [&](const FaultPlan& plan, NodeId from, NodeId to) {
    Machine m(d);
    m.attach_faults(std::make_shared<FaultPlan>(plan), FaultPolicy::kStrict);
    m.comm_cycle<int>([&](NodeId u) -> std::optional<dc::sim::Send<int>> {
      if (u != from) return std::nullopt;
      return dc::sim::Send<int>{to, 1};
    });
  };
  FaultPlan dead_sender;
  dead_sender.kill_node(0);
  try {
    run_one(dead_sender, 0, 1);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_STREQ(e.what(), "faulty node 0 cannot send (cycle 0)");
  }
  FaultPlan dead_receiver;
  dead_receiver.kill_node(1);
  try {
    run_one(dead_receiver, 0, 1);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_STREQ(e.what(), "node 0 sent to faulty node 1 (cycle 0)");
  }
  FaultPlan dead_link;
  dead_link.kill_link(0, 1);
  try {
    run_one(dead_link, 0, 1);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_STREQ(e.what(), "node 0 sent over faulty link to 1 (cycle 0)");
  }
}

TEST(MachineFaults, DegradePolicyDropsAndCounts) {
  const DualCube d(2);
  Machine m(d);
  FaultPlan plan;
  plan.kill_node(1);
  m.attach_faults(std::make_shared<FaultPlan>(plan), FaultPolicy::kDegrade);
  // 0 -> 1 dies; 4 -> 0 (the cross-edge) survives.
  auto inbox = m.comm_cycle<int>([&](NodeId u) -> std::optional<dc::sim::Send<int>> {
    if (u == 0) return dc::sim::Send<int>{1, 10};
    if (u == 4) return dc::sim::Send<int>{0, 20};
    return std::nullopt;
  });
  EXPECT_FALSE(inbox[1].has_value());
  ASSERT_TRUE(inbox[0].has_value());
  EXPECT_EQ(*inbox[0], 20);
  const auto c = m.counters();
  EXPECT_EQ(c.messages_lost, 1u);
  EXPECT_EQ(c.messages, 1u);
  EXPECT_EQ(c.fault_cycles, 1u);
}

TEST(MachineFaults, TimedFaultSparesEarlierCycles) {
  const DualCube d(2);
  Machine m(d);
  FaultPlan plan;
  plan.kill_node(1, /*at_cycle=*/2);
  m.attach_faults(std::make_shared<FaultPlan>(plan), FaultPolicy::kDegrade);
  for (int cycle = 0; cycle < 4; ++cycle) {
    auto inbox =
        m.comm_cycle<int>([&](NodeId u) -> std::optional<dc::sim::Send<int>> {
          if (u != 0) return std::nullopt;
          return dc::sim::Send<int>{1, cycle};
        });
    EXPECT_EQ(inbox[1].has_value(), cycle < 2) << "cycle " << cycle;
  }
  const auto c = m.counters();
  EXPECT_EQ(c.messages_lost, 2u);
  EXPECT_EQ(c.fault_cycles, 2u);
}

TEST(MachineFaults, TransientDropsMatchThePlanExactly) {
  const DualCube d(2);
  Machine m(d);
  const auto plan = std::make_shared<FaultPlan>(FaultPlan(9).drop_messages(400));
  m.attach_faults(plan, FaultPolicy::kStrict);  // drops apply under strict too
  std::uint64_t lost = 0;
  for (std::uint64_t cycle = 0; cycle < 32; ++cycle) {
    auto inbox =
        m.comm_cycle<int>([&](NodeId u) -> std::optional<dc::sim::Send<int>> {
          if (u != 0) return std::nullopt;
          return dc::sim::Send<int>{1, 1};
        });
    const bool dropped = plan->drops_message(cycle, 0);
    EXPECT_EQ(inbox[1].has_value(), !dropped) << "cycle " << cycle;
    lost += dropped;
  }
  EXPECT_GT(lost, 0u) << "seed 9 at 40% must drop something in 32 cycles";
  EXPECT_EQ(m.counters().messages_lost, lost);
}

TEST(MachineFaults, NoPlanMeansHealthyCountersAndCompiledPath) {
  const DualCube d(2);
  Machine healthy(d);
  Machine carrier(d);
  carrier.attach_faults(std::make_shared<FaultPlan>(), FaultPolicy::kDegrade);
  carrier.clear_faults();
  for (Machine* m : {&healthy, &carrier}) {
    m->comm_cycle<int>([&](NodeId u) -> std::optional<dc::sim::Send<int>> {
      return dc::sim::Send<int>{d.cross_neighbor(u), int(u)};
    });
  }
  EXPECT_EQ(healthy.counters(), carrier.counters());
  EXPECT_EQ(healthy.counters().messages_lost, 0u);
  EXPECT_EQ(healthy.counters().fault_cycles, 0u);
  EXPECT_EQ(healthy.schedule_path(), carrier.schedule_path());
}

TEST(MachineFaults, AttachedPlanForcesInterpretedPathAndRefusesReplay) {
  const DualCube d(2);
  Machine m(d);
  m.set_schedule_path(dc::sim::SchedulePath::kCompiled);
  m.attach_faults(std::make_shared<FaultPlan>(FaultPlan().kill_node(7)));
  EXPECT_EQ(m.schedule_path(), dc::sim::SchedulePath::kInterpreted);
  dc::sim::ScheduleCycle cyc;
  cyc.recv_from.assign(d.node_count(), dc::sim::kNoSender);
  cyc.recv_slot.assign(d.node_count(), dc::sim::kNoEdgeSlot);
  EXPECT_THROW(m.comm_cycle_scheduled<int>(cyc, [](NodeId) { return 0; }),
               CheckError);
  m.clear_faults();
  EXPECT_EQ(m.schedule_path(), dc::sim::SchedulePath::kCompiled);
}

TEST(MachineFaults, AttachedPlanRefusesBlockReplay) {
  const DualCube d(2);
  Machine m(d);
  m.set_schedule_path(dc::sim::SchedulePath::kCompiled);
  m.attach_faults(std::make_shared<FaultPlan>(FaultPlan().kill_node(7)));
  EXPECT_EQ(m.schedule_path(), dc::sim::SchedulePath::kInterpreted);
  dc::sim::ScheduleCycle cyc;
  cyc.recv_from.assign(d.node_count(), dc::sim::kNoSender);
  cyc.recv_slot.assign(d.node_count(), dc::sim::kNoEdgeSlot);
  EXPECT_THROW(m.comm_cycle_scheduled_blocks<int>(
                   cyc, 2, [](NodeId, int* dst) { dst[0] = dst[1] = 0; }),
               CheckError);
  m.clear_faults();
  EXPECT_EQ(m.schedule_path(), dc::sim::SchedulePath::kCompiled);
}

// ------------------------------------------------------ fault spec parse

TEST(FaultSpec, ParsesNodesAndRandomForms) {
  const DualCube d(3);
  const FaultPlan nodes = dc::sim::parse_fault_spec("nodes:1,5,9", d);
  EXPECT_EQ(nodes.dead_nodes(), (std::vector<NodeId>{1, 5, 9}));
  const FaultPlan r1 = dc::sim::parse_fault_spec("random:4,77", d);
  const FaultPlan r2 = dc::sim::parse_fault_spec("random:4,77", d);
  EXPECT_EQ(r1.dead_nodes(), r2.dead_nodes());
  EXPECT_EQ(r1.node_fault_count(), 4u);
  const FaultPlan r3 = dc::sim::parse_fault_spec("random:4", d, /*seed=*/3);
  EXPECT_EQ(r3.node_fault_count(), 4u);
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  const DualCube d(2);
  for (const char* bad : {"", "nodes", "nodes:", "nodes:x", "nodes:99",
                          "random:1,2,3", "random:9", "bogus:1"}) {
    EXPECT_THROW(dc::sim::parse_fault_spec(bad, d), CheckError) << bad;
  }
}

// --------------------------------------------- fault-tolerant broadcast

void expect_broadcast_correct(const DualCube& d, NodeId root,
                              const FaultPlan& plan, FaultPolicy policy,
                              bool attach) {
  Machine m(d);
  const auto shared = std::make_shared<FaultPlan>(plan);
  if (attach) m.attach_faults(shared, policy);
  dc::sim::FtReport rep;
  const auto got =
      dc::collectives::ft_dual_broadcast<int>(m, d, root, 42, plan, &rep);
  for (NodeId u = 0; u < d.node_count(); ++u) {
    if (plan.node_dead(u, ~std::uint64_t{0})) {
      EXPECT_FALSE(got[u].has_value());
    } else {
      ASSERT_TRUE(got[u].has_value()) << "live node " << u << " missed";
      EXPECT_EQ(*got[u], 42);
    }
  }
  EXPECT_EQ(rep.base_cycles, 2u * d.order());
  if (plan.empty()) {
    EXPECT_EQ(rep.repaired, 0u);
    EXPECT_EQ(m.counters().messages_rerouted, 0u);
  }
}

TEST(FtBroadcast, ExhaustiveEveryFaultSetBelowNOnD2AndD3) {
  // n-connectivity made executable: EVERY node fault set of size < n, both
  // policies. D_2: sizes 0..1 from every root. D_3: sizes 0..2, root 0.
  {
    const DualCube d(2);
    for (NodeId root = 0; root < d.node_count(); ++root) {
      expect_broadcast_correct(d, root, FaultPlan{}, FaultPolicy::kStrict,
                               true);
      for (NodeId a = 0; a < d.node_count(); ++a) {
        if (a == root) continue;
        FaultPlan plan;
        plan.kill_node(a);
        expect_broadcast_correct(d, root, plan, FaultPolicy::kStrict, true);
        expect_broadcast_correct(d, root, plan, FaultPolicy::kDegrade, true);
      }
    }
  }
  {
    const DualCube d(3);
    const NodeId root = 0;
    expect_broadcast_correct(d, root, FaultPlan{}, FaultPolicy::kStrict, true);
    for (NodeId a = 1; a < d.node_count(); ++a) {
      FaultPlan one;
      one.kill_node(a);
      expect_broadcast_correct(d, root, one, FaultPolicy::kStrict, true);
      for (NodeId b = a + 1; b < d.node_count(); ++b) {
        FaultPlan two;
        two.kill_node(a).kill_node(b);
        expect_broadcast_correct(d, root, two, FaultPolicy::kStrict, true);
        expect_broadcast_correct(d, root, two, FaultPolicy::kDegrade, true);
      }
    }
  }
}

TEST(FtBroadcast, SeededSweepOnD4) {
  const DualCube d(4);
  Rng rng(2024);
  for (dc::u64 trial = 0; trial < 12; ++trial) {
    const NodeId root = rng.below(d.node_count());
    const std::size_t k = 1 + rng.below(d.order() - 1);  // 1..n-1 faults
    const FaultPlan plan =
        FaultPlan::random_nodes(d, k, 1000 + trial, {root});
    const FaultPolicy policy =
        trial % 2 ? FaultPolicy::kDegrade : FaultPolicy::kStrict;
    expect_broadcast_correct(d, root, plan, policy, /*attach=*/true);
    expect_broadcast_correct(d, root, plan, policy, /*attach=*/false);
  }
}

TEST(FtBroadcast, FaultyRootAndDisconnectionAreReported) {
  const DualCube d(2);
  Machine m(d);
  FaultPlan root_dead;
  root_dead.kill_node(0);
  EXPECT_THROW(
      dc::collectives::ft_dual_broadcast<int>(m, d, 0, 1, root_dead),
      FaultError);
  // n faults CAN disconnect: node 7's full neighborhood.
  FaultPlan cut;
  for (const NodeId v : d.neighbors(7)) cut.kill_node(v);
  Machine m2(d);
  EXPECT_THROW(dc::collectives::ft_dual_broadcast<int>(m2, d, 0, 1, cut),
               FaultError);
}

TEST(FtBroadcast, HealthyRunCostsTheOptimalSchedule) {
  const DualCube d(3);
  Machine m(d);
  dc::sim::FtReport rep;
  dc::collectives::ft_dual_broadcast<int>(m, d, 5, 7, FaultPlan{}, &rep);
  EXPECT_EQ(m.counters().comm_cycles, 2u * d.order());
  EXPECT_EQ(m.counters().messages_rerouted, 0u);
  EXPECT_EQ(rep.repair_cycles, 0u);
}

TEST(FtBroadcast, RepairTrafficIsCountedAsRerouted) {
  const DualCube d(3);
  Machine m(d);
  // Kill a cross-partner of the root's cluster: its foreign cluster is
  // then reachable only by repair.
  const NodeId root = 0;
  FaultPlan plan;
  plan.kill_node(d.cross_neighbor(1));
  m.attach_faults(std::make_shared<FaultPlan>(plan), FaultPolicy::kStrict);
  dc::sim::FtReport rep;
  const auto got =
      dc::collectives::ft_dual_broadcast<int>(m, d, root, 3, plan, &rep);
  EXPECT_GT(rep.repaired, 0u);
  EXPECT_GT(rep.repair_cycles, 0u);
  EXPECT_EQ(m.counters().messages_rerouted, rep.rerouted_hops);
  for (NodeId u = 0; u < d.node_count(); ++u) {
    if (u != d.cross_neighbor(1)) {
      EXPECT_TRUE(got[u].has_value());
    }
  }
}

// ------------------------------------------------ fault-tolerant prefix

template <typename M>
std::vector<typename M::value_type> masked_scan(
    const M& op, const std::vector<typename M::value_type>& data,
    const std::vector<bool>& index_dead, bool inclusive) {
  std::vector<typename M::value_type> out(data.size(), op.identity());
  auto acc = op.identity();
  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto v = index_dead[i] ? op.identity() : data[i];
    if (inclusive) {
      acc = op.combine(acc, v);
      out[i] = acc;
    } else {
      out[i] = acc;
      acc = op.combine(acc, v);
    }
  }
  return out;
}

template <typename M>
void expect_prefix_correct(const DualCube& d, const M& op,
                           const std::vector<typename M::value_type>& data,
                           const FaultPlan& plan, FaultPolicy policy,
                           bool attach, bool inclusive = true) {
  Machine m(d);
  if (attach) m.attach_faults(std::make_shared<FaultPlan>(plan), policy);
  dc::sim::FtReport rep;
  const auto got = dc::core::ft_dual_prefix(m, d, op, data, plan, inclusive,
                                            &rep);
  std::vector<bool> index_dead(d.node_count(), false);
  for (const NodeId u : plan.dead_nodes())
    index_dead[dc::core::dual_prefix_index_of_node(d, u)] = true;
  const auto expected = masked_scan(op, data, index_dead, inclusive);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (index_dead[i]) {
      EXPECT_FALSE(got[i].has_value());
    } else {
      ASSERT_TRUE(got[i].has_value()) << "index " << i;
      EXPECT_EQ(*got[i], expected[i]) << "index " << i;
    }
  }
  EXPECT_EQ(rep.base_cycles, 2u * d.order());
}

std::vector<dc::u64> iota_data(std::size_t n) {
  std::vector<dc::u64> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = i + 1;
  return data;
}

TEST(FtPrefix, ExhaustiveEveryFaultSetBelowNOnD2AndD3) {
  const Plus<dc::u64> op;
  {
    const DualCube d(2);
    const auto data = iota_data(d.node_count());
    expect_prefix_correct(d, op, data, FaultPlan{}, FaultPolicy::kStrict,
                          true);
    for (NodeId a = 0; a < d.node_count(); ++a) {
      FaultPlan plan;
      plan.kill_node(a);
      expect_prefix_correct(d, op, data, plan, FaultPolicy::kStrict, true);
      expect_prefix_correct(d, op, data, plan, FaultPolicy::kDegrade, true);
      expect_prefix_correct(d, op, data, plan, FaultPolicy::kStrict, true,
                            /*inclusive=*/false);
    }
  }
  {
    const DualCube d(3);
    const auto data = iota_data(d.node_count());
    expect_prefix_correct(d, op, data, FaultPlan{}, FaultPolicy::kStrict,
                          true);
    for (NodeId a = 0; a < d.node_count(); ++a) {
      FaultPlan one;
      one.kill_node(a);
      expect_prefix_correct(d, op, data, one, FaultPolicy::kStrict, true);
      for (NodeId b = a + 1; b < d.node_count(); ++b) {
        FaultPlan two;
        two.kill_node(a).kill_node(b);
        expect_prefix_correct(d, op, data, two, FaultPolicy::kStrict, true);
        expect_prefix_correct(d, op, data, two, FaultPolicy::kDegrade, true);
      }
    }
  }
}

TEST(FtPrefix, NonCommutativeMonoidKeepsIndexOrderUnderFaults) {
  const DualCube d(3);
  const Concat op;
  std::vector<std::string> data(d.node_count());
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::string(1, static_cast<char>('a' + (i % 26)));
  for (dc::u64 trial = 0; trial < 6; ++trial) {
    const FaultPlan plan =
        FaultPlan::random_nodes(d, 1 + trial % 2, 300 + trial);
    expect_prefix_correct(d, op, data, plan, FaultPolicy::kStrict, true);
  }
}

TEST(FtPrefix, SeededSweepOnD4) {
  const DualCube d(4);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  for (dc::u64 trial = 0; trial < 8; ++trial) {
    const std::size_t k = 1 + static_cast<std::size_t>(trial) % (d.order() - 1);
    const FaultPlan plan = FaultPlan::random_nodes(d, k, 500 + trial);
    const FaultPolicy policy =
        trial % 2 ? FaultPolicy::kDegrade : FaultPolicy::kStrict;
    expect_prefix_correct(d, op, data, plan, policy, /*attach=*/true);
    expect_prefix_correct(d, op, data, plan, policy, /*attach=*/false);
  }
}

TEST(FtPrefix, HealthyRunMatchesAlgorithm2Exactly) {
  const DualCube d(3);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  Machine healthy(d);
  healthy.set_schedule_path(dc::sim::SchedulePath::kInterpreted);
  const auto reference = dc::core::dual_prefix(healthy, d, op, data);
  Machine m(d);
  const auto got = dc::core::ft_dual_prefix(m, d, op, data, FaultPlan{});
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(got[i].has_value());
    EXPECT_EQ(*got[i], reference[i]);
  }
  // Same cost as the healthy schedule: 2n comm cycles, 2n comp steps,
  // nothing rerouted.
  EXPECT_EQ(m.counters().comm_cycles, 2u * d.order());
  EXPECT_EQ(m.counters().comp_steps, 2u * d.order());
  EXPECT_EQ(m.counters().messages_rerouted, 0u);
  EXPECT_EQ(m.counters().ops, healthy.counters().ops);
}

TEST(FtPrefix, LinkFaultsAreRoutedAround) {
  const DualCube d(3);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  FaultPlan plan;
  plan.kill_link(0, d.cross_neighbor(0)).kill_link(0, d.cluster_neighbor(0, 0));
  Machine m(d);
  m.attach_faults(std::make_shared<FaultPlan>(plan), FaultPolicy::kStrict);
  dc::sim::FtReport rep;
  const auto got =
      dc::core::ft_dual_prefix(m, d, op, data, plan, true, &rep);
  const auto expected =
      masked_scan(op, data, std::vector<bool>(d.node_count(), false), true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(got[i].has_value());
    EXPECT_EQ(*got[i], expected[i]) << "index " << i;
  }
  EXPECT_GT(rep.rerouted_hops, 0u);
  EXPECT_EQ(m.counters().messages_rerouted, rep.rerouted_hops);
}

TEST(FtCollectives, RefuseTransientDropPlansOnTheMachine) {
  const DualCube d(2);
  Machine m(d);
  FaultPlan noisy;
  noisy.kill_node(3);
  noisy.drop_messages(100);
  m.attach_faults(std::make_shared<FaultPlan>(noisy), FaultPolicy::kDegrade);
  EXPECT_THROW(
      dc::collectives::ft_dual_broadcast<int>(m, d, 0, 1, noisy),
      CheckError);
}

// ------------------------------------------- exact fault-spec diagnostics

template <typename Fn>
void expect_sim_error(Fn&& fn, const std::string& msg) {
  try {
    fn();
    ADD_FAILURE() << "expected SimError: " << msg;
  } catch (const dc::sim::SimError& e) {
    EXPECT_EQ(std::string(e.what()), msg);
  }
}

TEST(FaultSpec, NamesTheExactMalformedPiece) {
  const DualCube d(2);  // 8 nodes
  expect_sim_error([&] { dc::sim::parse_fault_spec("", d); },
                   "empty fault spec");
  expect_sim_error(
      [&] { dc::sim::parse_fault_spec("nodes", d); },
      "fault spec must be nodes:a,b,... or random:k[,seed], got 'nodes'");
  expect_sim_error([&] { dc::sim::parse_fault_spec("nodes:", d); },
                   "empty number in fault spec 'nodes:'");
  expect_sim_error([&] { dc::sim::parse_fault_spec("nodes:1,,2", d); },
                   "empty number in fault spec 'nodes:1,,2'");
  expect_sim_error([&] { dc::sim::parse_fault_spec("nodes:1x", d); },
                   "bad number '1x' in fault spec 'nodes:1x'");
  expect_sim_error([&] { dc::sim::parse_fault_spec("nodes:8", d); },
                   "fault spec names node 8 but " + d.name() +
                       " has 8 nodes");
  expect_sim_error([&] { dc::sim::parse_fault_spec("nodes:3,1,3", d); },
                   "fault spec names node 3 twice");
  expect_sim_error(
      [&] { dc::sim::parse_fault_spec("random:1,2,3", d); },
      "random fault spec is random:k[,seed], got 'random:1,2,3'");
  expect_sim_error([&] { dc::sim::parse_fault_spec("random:9", d); },
                   "cannot kill 9 of 8 nodes");
  expect_sim_error([&] { dc::sim::parse_fault_spec("bogus:1", d); },
                   "unknown fault spec kind 'bogus' (nodes|random)");
}

// --------------------------------------------- pinned transient-drop hash

TEST(TransientDropHash, GoldenValuesArePlatformStable) {
  // The (seed, cycle, sender) -> permille formula is part of the model
  // contract (docs/MODEL.md "Fault model"): identical runs must lose
  // identical messages on every OS/arch/stdlib. These goldens pin it; a
  // change here is a reproducibility break, not a refactor.
  using dc::sim::detail::transient_drop_hash;
  EXPECT_EQ(transient_drop_hash(0, 0, 0), 876u);
  EXPECT_EQ(transient_drop_hash(42, 0, 0), 663u);
  EXPECT_EQ(transient_drop_hash(42, 1, 0), 325u);
  EXPECT_EQ(transient_drop_hash(42, 0, 1), 523u);
  EXPECT_EQ(transient_drop_hash(42, 7, 3), 130u);
  EXPECT_EQ(transient_drop_hash(1, 100, 63), 72u);
  EXPECT_EQ(transient_drop_hash(2024, 31, 15), 451u);
  EXPECT_EQ(transient_drop_hash(0xdeadbeefull, 5, 9), 705u);
  // FaultPlan::drops_message is exactly "hash < permille".
  const FaultPlan plan = FaultPlan(42).drop_messages(326);
  EXPECT_TRUE(plan.drops_message(1, 0));    // 325 < 326
  EXPECT_FALSE(plan.drops_message(0, 0));   // 663 >= 326
  EXPECT_FALSE(plan.drops_message(0, 1));   // 523 >= 326
}

// ------------------------------------------ exhaustive link-fault sweeps

std::vector<std::pair<NodeId, NodeId>> all_edges(const DualCube& d) {
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < d.node_count(); ++u)
    for (const NodeId v : d.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  return edges;
}

TEST(FtLinkFaults, ExhaustiveEveryLinkSetBelowNOnD2) {
  // D_n is n-regular with vertex connectivity n, so its edge connectivity
  // is exactly n: any set of fewer than n link faults leaves it connected
  // and both collectives must succeed with zero data loss. D_2: every
  // single link, both collectives, both policies.
  const DualCube d(2);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  for (const auto& [u, v] : all_edges(d)) {
    FaultPlan plan;
    plan.kill_link(u, v);
    for (const FaultPolicy policy :
         {FaultPolicy::kStrict, FaultPolicy::kDegrade}) {
      expect_broadcast_correct(d, /*root=*/0, plan, policy, /*attach=*/true);
      expect_prefix_correct(d, op, data, plan, policy, /*attach=*/true);
    }
  }
}

TEST(FtLinkFaults, ExhaustiveSinglesAndPairsOnD3) {
  // D_3 (edge connectivity 3): every single link and every pair of links,
  // both policies. 48 edges -> 48 + 1128 sets per policy per collective.
  const DualCube d(3);
  const Plus<dc::u64> op;
  const auto data = iota_data(d.node_count());
  const auto edges = all_edges(d);
  ASSERT_EQ(edges.size(), d.node_count() * d.order() / 2);
  const auto check = [&](const FaultPlan& plan, FaultPolicy policy) {
    expect_broadcast_correct(d, /*root=*/0, plan, policy, /*attach=*/true);
    expect_prefix_correct(d, op, data, plan, policy, /*attach=*/true);
  };
  for (std::size_t i = 0; i < edges.size(); ++i) {
    FaultPlan one;
    one.kill_link(edges[i].first, edges[i].second);
    check(one, FaultPolicy::kStrict);
    check(one, FaultPolicy::kDegrade);
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      FaultPlan two;
      two.kill_link(edges[i].first, edges[i].second);
      two.kill_link(edges[j].first, edges[j].second);
      // Strict everywhere; degrade on a deterministic eighth of the pairs
      // (the policies share the routing layer — degrade differs only in
      // the filter's reaction, fully covered by the single-link sweep).
      check(two, FaultPolicy::kStrict);
      if ((i + j) % 8 == 0) check(two, FaultPolicy::kDegrade);
    }
  }
}

// ------------------------------------------------------- fault timelines

using dc::sim::FaultTimeline;

TEST(FaultTimelineTest, IntervalsFlapAndRejoin) {
  FaultTimeline t;
  t.link_down(0, 1, 4).link_up(0, 1, 9).link_down(1, 0, 20);
  t.node_down(3, 2).node_up(3, 6);
  EXPECT_FALSE(t.link_dead(0, 1, 3));
  EXPECT_TRUE(t.link_dead(0, 1, 4));
  EXPECT_TRUE(t.link_dead(1, 0, 8));   // orientation-free
  EXPECT_FALSE(t.link_dead(0, 1, 9));  // half-open: up cycle is healthy
  EXPECT_TRUE(t.link_dead(0, 1, 20));  // second flap, open-ended
  EXPECT_TRUE(t.link_dead(0, 1, 1000));
  EXPECT_FALSE(t.node_dead(3, 1));
  EXPECT_TRUE(t.node_dead(3, 2));
  EXPECT_TRUE(t.node_dead(3, 5));
  EXPECT_FALSE(t.node_dead(3, 6));
  EXPECT_EQ(t.rejoins_between(0, 5), std::vector<NodeId>{});
  EXPECT_EQ(t.rejoins_between(5, 6), std::vector<NodeId>{3});
  EXPECT_EQ(t.max_concurrent_node_faults(), 1u);
  // any_active is exact: everything has healed by cycle 25? No — the
  // second link flap never closes.
  EXPECT_TRUE(t.any_active(25));
  EXPECT_FALSE(t.any_active(10));  // between flaps, node healed
}

TEST(FaultTimelineTest, EpochsPartitionTheCycleAxis) {
  FaultTimeline t;
  t.node_down(2, 5).node_up(2, 8);
  t.link_down(0, 1, 8);
  t.drop_window(100, 12, 15);
  // Boundaries: 0, 5, 8 (up + link down coincide), 12, 15.
  EXPECT_EQ(t.epoch_starts(), (std::vector<std::uint64_t>{0, 5, 8, 12, 15}));
  EXPECT_EQ(t.epoch_count(), 5u);
  EXPECT_EQ(t.epoch_of(0), 0u);
  EXPECT_EQ(t.epoch_of(4), 0u);
  EXPECT_EQ(t.epoch_of(5), 1u);
  EXPECT_EQ(t.epoch_of(7), 1u);
  EXPECT_EQ(t.epoch_of(8), 2u);
  EXPECT_EQ(t.epoch_of(14), 3u);
  EXPECT_EQ(t.epoch_of(1000), 4u);
}

TEST(FaultTimelineTest, SnapshotsFreezeOneEpoch) {
  FaultTimeline t(7);
  t.node_down(2, 5).node_up(2, 8);
  t.drop_window(250, 5, 8);
  const FaultPlan before = t.snapshot(4);
  EXPECT_TRUE(before.empty());
  const FaultPlan during = t.snapshot(6);
  EXPECT_EQ(during.dead_nodes(), std::vector<NodeId>{2});
  EXPECT_EQ(during.drop_permille(), 250u);
  EXPECT_EQ(during.seed(), 7u);
  EXPECT_TRUE(during.node_dead(2, 0)) << "snapshots are from-start plans";
  const FaultPlan after = t.snapshot(8);
  EXPECT_TRUE(after.empty());
  // The machine-facing queries agree with the snapshot at every cycle.
  for (std::uint64_t c : {0ull, 5ull, 7ull, 8ull, 100ull}) {
    EXPECT_EQ(t.node_dead(2, c), t.snapshot(c).node_dead(2, 0)) << c;
  }
  // Timeline drop decisions match a from-start plan with the same seed
  // inside the window, and never fire outside it.
  const FaultPlan noisy = FaultPlan(7).drop_messages(250);
  for (NodeId s = 0; s < 8; ++s) {
    EXPECT_EQ(t.drops_message(6, s), noisy.drops_message(6, s));
    EXPECT_FALSE(t.drops_message(4, s));
    EXPECT_FALSE(t.drops_message(8, s));
  }
}

TEST(FaultTimelineTest, BuilderRejectsIllFormedSequences) {
  expect_sim_error(
      [] { FaultTimeline().node_down(3, 5).node_down(3, 7); },
      "node 3 is already down at cycle 7");
  expect_sim_error(
      [] { FaultTimeline().node_up(3, 5); },
      "node 3 is not down at cycle 5");
  expect_sim_error(
      [] { FaultTimeline().node_down(3, 5).node_up(3, 5); },
      "node 3 up@5 must come after its down@5");
  expect_sim_error(
      [] {
        FaultTimeline().node_down(3, 5).node_up(3, 8).node_down(3, 7);
      },
      "node 3 down/up events must be in cycle order");
  expect_sim_error(
      [] { FaultTimeline().link_down(2, 2, 1); },
      "a link joins two distinct nodes");
  expect_sim_error(
      [] { FaultTimeline().link_up(0, 1, 4); },
      "link 0-1 is not down at cycle 4");
  expect_sim_error(
      [] { FaultTimeline().drop_window(1001, 0, 5); },
      "drop rate is per mille");
  expect_sim_error(
      [] { FaultTimeline().drop_window(10, 5, 5); },
      "drop window [5, 5) is empty");
  expect_sim_error(
      [] { FaultTimeline().drop_window(10, 0, 5).drop_window(20, 4, 9); },
      "drop windows overlap at cycle 4");
}

TEST(FaultTimelineSpec, ParsesFullGrammar) {
  const DualCube d(2);
  const FaultTimeline t = dc::sim::parse_fault_timeline(
      "link:0-1:down@4:up@9+node:3:down@2+drop:50@10-12", d, /*seed=*/5);
  EXPECT_EQ(t.seed(), 5u);
  EXPECT_TRUE(t.link_dead(0, 1, 4));
  EXPECT_FALSE(t.link_dead(0, 1, 9));
  EXPECT_TRUE(t.node_dead(3, 2));
  EXPECT_TRUE(t.node_dead(3, 1000)) << "no up event: down forever";
  EXPECT_EQ(t.drop_permille_at(10), 50u);
  EXPECT_EQ(t.drop_permille_at(12), 0u);
  EXPECT_EQ(t.epoch_starts(), (std::vector<std::uint64_t>{0, 2, 4, 9, 10, 12}));
}

TEST(FaultTimelineSpec, NamesTheExactMalformedEvent) {
  const DualCube d(2);
  const auto parse = [&](const char* s) {
    return [&d, s] { dc::sim::parse_fault_timeline(s, d); };
  };
  expect_sim_error(parse(""), "empty fault timeline spec");
  expect_sim_error(parse("node"),
                   "fault timeline event 'node' is missing a node id");
  expect_sim_error(parse("node:9:down@0"),
                   "fault timeline names node 9 but " + d.name() +
                       " has 8 nodes");
  expect_sim_error(parse("node:3"),
                   "fault timeline event 'node:3' must be "
                   "down@CYCLE[:up@CYCLE]");
  expect_sim_error(parse("node:3:up@4"),
                   "fault timeline event 'node:3:up@4' must be "
                   "down@CYCLE[:up@CYCLE]");
  expect_sim_error(parse("link"),
                   "fault timeline event 'link' is missing U-V endpoints");
  expect_sim_error(parse("link:01:down@0"),
                   "fault timeline link endpoints must be U-V, got '01'");
  expect_sim_error(parse("link:2-2:down@0"),
                   "fault timeline link 2-2 joins a node to itself");
  expect_sim_error(parse("link:0-3:down@0"),
                   "fault timeline link 0-3 is not an edge of " + d.name());
  expect_sim_error(parse("drop:50"),
                   "fault timeline drop window must be drop:PERMILLE@FROM-TO, "
                   "got 'drop:50'");
  expect_sim_error(parse("drop:1001@0-5"),
                   "fault timeline drop rate 1001 is per mille (<= 1000)");
  expect_sim_error(parse("flood:1"),
                   "unknown fault timeline event kind 'flood' (node|link|drop)");
}

// ---------------------------------------------- machine over a timeline

TEST(MachineTimeline, FlapDropsOnlyInsideTheWindowAndCountsEpochs) {
  const DualCube d(2);  // 0-1 is a cluster edge
  Machine m(d);
  auto t = std::make_shared<FaultTimeline>();
  t->link_down(0, 1, 2).link_up(0, 1, 4);
  m.attach_fault_timeline(t, FaultPolicy::kDegrade);
  EXPECT_EQ(m.schedule_path(), dc::sim::SchedulePath::kInterpreted);
  for (int cycle = 0; cycle < 6; ++cycle) {
    auto inbox =
        m.comm_cycle<int>([&](NodeId u) -> std::optional<dc::sim::Send<int>> {
          if (u != 0) return std::nullopt;
          return dc::sim::Send<int>{1, cycle};
        });
    const bool down = cycle >= 2 && cycle < 4;
    EXPECT_EQ(inbox[1].has_value(), !down) << "cycle " << cycle;
  }
  const auto c = m.counters();
  EXPECT_EQ(c.messages_lost, 2u);
  EXPECT_EQ(c.fault_cycles, 2u) << "any_active is exact: healed cycles are "
                                   "not fault cycles";
  // Saw epoch 0 at cycle 0, epoch 1 at cycle 2, epoch 2 at cycle 4.
  EXPECT_EQ(m.fault_epochs_seen(), 3u);
  EXPECT_EQ(m.fault_rejoins(), 0u);
  m.clear_faults();
  EXPECT_FALSE(m.has_faults());
}

TEST(MachineTimeline, StrictThrowsTheExactPlanMessages) {
  const DualCube d(2);
  Machine m(d);
  auto t = std::make_shared<FaultTimeline>();
  t->node_down(1, 1).node_up(1, 2);
  m.attach_fault_timeline(t, FaultPolicy::kStrict);
  const auto send01 = [&] {
    m.comm_cycle<int>([](NodeId u) -> std::optional<dc::sim::Send<int>> {
      if (u != 0) return std::nullopt;
      return dc::sim::Send<int>{1, 7};
    });
  };
  send01();  // cycle 0: healthy
  try {
    send01();  // cycle 1: node 1 is down
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_STREQ(e.what(), "node 0 sent to faulty node 1 (cycle 1)");
  }
  // The throw left cycle 1 uncounted; the retry replays cycle 1, which is
  // still inside the outage -- back off one cycle first (send nothing),
  // then the rejoin at cycle 2 lets the same send through.
  EXPECT_EQ(m.counters().comm_cycles, 1u);
  m.comm_cycle<int>([](NodeId) { return std::optional<dc::sim::Send<int>>{}; });
  send01();  // cycle 2: node 1 rejoined
  EXPECT_EQ(m.counters().comm_cycles, 3u);
  EXPECT_EQ(m.fault_rejoins(), 1u);
}

TEST(MachineTimeline, RefusesCompiledReplayAndDoubleAttach) {
  const DualCube d(2);
  Machine m(d);
  m.set_schedule_path(dc::sim::SchedulePath::kCompiled);
  auto t = std::make_shared<FaultTimeline>();
  t->link_down(0, 1, 100);
  m.attach_fault_timeline(t);
  EXPECT_EQ(m.schedule_path(), dc::sim::SchedulePath::kInterpreted);
  dc::sim::ScheduleCycle cyc;
  cyc.recv_from.assign(d.node_count(), dc::sim::kNoSender);
  cyc.recv_slot.assign(d.node_count(), dc::sim::kNoEdgeSlot);
  EXPECT_THROW(m.comm_cycle_scheduled<int>(cyc, [](NodeId) { return 0; }),
               CheckError);
  EXPECT_THROW(
      m.attach_faults(std::make_shared<FaultPlan>(FaultPlan().kill_node(1))),
      CheckError)
      << "a machine carries a plan or a timeline, never both";
  m.clear_faults();
  EXPECT_EQ(m.schedule_path(), dc::sim::SchedulePath::kCompiled);
}

TEST(MachineTimeline, TimelineViewFingerprintsDifferPerEpoch) {
  const DualCube d(3);
  FaultTimeline t;
  t.node_down(5, 10).node_up(5, 20).node_down(9, 20);
  const dc::sim::FaultyTopology e0(d, t, 0);
  const dc::sim::FaultyTopology e1(d, t, 10);
  const dc::sim::FaultyTopology e2(d, t, 20);
  const auto f0 = e0.flat_adjacency().fingerprint();
  const auto f1 = e1.flat_adjacency().fingerprint();
  const auto f2 = e2.flat_adjacency().fingerprint();
  EXPECT_EQ(f0, d.flat_adjacency().fingerprint())
      << "the pre-fault epoch is the healthy graph";
  EXPECT_NE(f1, f0);
  EXPECT_NE(f2, f0);
  EXPECT_NE(f1, f2) << "each epoch's faulted view keys the schedule cache "
                       "differently, so no epoch can replay another's "
                       "schedule";
}

}  // namespace
