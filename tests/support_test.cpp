// Unit tests for src/support: bit helpers, RNG, thread pool, tables, CLI.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "support/bits.hpp"
#include "support/check.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace dc {
namespace {

TEST(Bits, Pow2) {
  EXPECT_EQ(bits::pow2(0), 1u);
  EXPECT_EQ(bits::pow2(1), 2u);
  EXPECT_EQ(bits::pow2(10), 1024u);
  EXPECT_EQ(bits::pow2(63), u64{1} << 63);
}

TEST(Bits, GetSetFlip) {
  EXPECT_EQ(bits::get(0b1010, 1), 1u);
  EXPECT_EQ(bits::get(0b1010, 0), 0u);
  EXPECT_EQ(bits::flip(0b1010, 0), 0b1011u);
  EXPECT_EQ(bits::flip(0b1010, 1), 0b1000u);
  EXPECT_EQ(bits::set(0b1010, 0, 1), 0b1011u);
  EXPECT_EQ(bits::set(0b1010, 1, 0), 0b1000u);
  EXPECT_EQ(bits::set(0b1010, 1, 1), 0b1010u);
}

TEST(Bits, Field) {
  EXPECT_EQ(bits::field(0b110101, 0, 3), 0b101u);
  EXPECT_EQ(bits::field(0b110101, 3, 3), 0b110u);
  EXPECT_EQ(bits::field(0b110101, 2, 0), 0u);
  EXPECT_EQ(bits::with_field(0b110101, 0, 3, 0b010), 0b110010u);
  EXPECT_EQ(bits::with_field(0, 3, 3, 0b111), 0b111000u);
}

TEST(Bits, HammingPopcount) {
  EXPECT_EQ(bits::popcount(0), 0u);
  EXPECT_EQ(bits::popcount(0b1011), 3u);
  EXPECT_EQ(bits::hamming(0b1011, 0b1011), 0u);
  EXPECT_EQ(bits::hamming(0b1011, 0b0010), 2u);
  EXPECT_EQ(bits::hamming(0, ~u64{0}), 64u);
}

TEST(Bits, Log2AndLowestSet) {
  EXPECT_EQ(bits::log2_floor(1), 0u);
  EXPECT_EQ(bits::log2_floor(2), 1u);
  EXPECT_EQ(bits::log2_floor(3), 1u);
  EXPECT_EQ(bits::log2_floor(1024), 10u);
  EXPECT_EQ(bits::lowest_set(0b1000), 3u);
  EXPECT_EQ(bits::lowest_set(0b1010), 1u);
  EXPECT_TRUE(bits::is_pow2(64));
  EXPECT_FALSE(bits::is_pow2(65));
  EXPECT_FALSE(bits::is_pow2(0));
}

TEST(Bits, Reverse) {
  EXPECT_EQ(bits::reverse(0b110, 3), 0b011u);
  EXPECT_EQ(bits::reverse(0b1, 4), 0b1000u);
  EXPECT_EQ(bits::reverse(0b1011, 4), 0b1101u);
}

TEST(Bits, InterleaveRoundTrip) {
  for (u64 even = 0; even < 16; ++even) {
    for (u64 odd = 0; odd < 16; ++odd) {
      const u64 mixed = bits::interleave(even, odd, 4);
      EXPECT_EQ(bits::even_bits(mixed, 4), even);
      EXPECT_EQ(bits::odd_bits(mixed, 4), odd);
    }
  }
}

TEST(Bits, ToBinary) {
  EXPECT_EQ(bits::to_binary(0b101, 3), "101");
  EXPECT_EQ(bits::to_binary(0b101, 5), "00101");
  EXPECT_EQ(bits::to_binary(0, 4), "0000");
}

TEST(Rng, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differ = 0;
  for (int i = 0; i < 16; ++i)
    if (a() != b()) ++differ;
  EXPECT_GT(differ, 0);
}

TEST(Rng, BelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(11);
  std::set<u64> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
  EXPECT_EQ(rng.range(9, 9), 9);
}

TEST(Rng, UnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.unit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), CheckError);
}

TEST(KeyDistributions, ShapesHold) {
  const std::size_t n = 256;
  const auto sorted = generate_keys(KeyDistribution::kSorted, n, 1);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));

  const auto reverse = generate_keys(KeyDistribution::kReverse, n, 1);
  EXPECT_TRUE(std::is_sorted(reverse.rbegin(), reverse.rend()));

  const auto constant = generate_keys(KeyDistribution::kConstant, n, 1);
  EXPECT_EQ(std::set<u64>(constant.begin(), constant.end()).size(), 1u);

  const auto few = generate_keys(KeyDistribution::kFewDistinct, n, 1);
  EXPECT_LE(std::set<u64>(few.begin(), few.end()).size(), 8u);

  const auto organ = generate_keys(KeyDistribution::kOrganPipe, n, 1);
  const auto peak = std::max_element(organ.begin(), organ.end());
  EXPECT_TRUE(std::is_sorted(organ.begin(), peak));
  EXPECT_TRUE(std::is_sorted(peak, organ.end(), std::greater<>()));
}

TEST(KeyDistributions, DeterministicPerSeed) {
  const auto a = generate_keys(KeyDistribution::kUniform, 128, 42);
  const auto b = generate_keys(KeyDistribution::kUniform, 128, 42);
  const auto c = generate_keys(KeyDistribution::kUniform, 128, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(KeyDistributions, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto d : all_key_distributions()) names.insert(to_string(d));
  EXPECT_EQ(names.size(), all_key_distributions().size());
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  constexpr std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 10'000,
                   [](std::size_t i) {
                     if (i == 4321) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // the destructor completes pending tasks before joining
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ExecutesTasksInSubmissionOrder) {
  std::atomic<bool> release{false};
  std::vector<int> order;
  constexpr int kTasks = 16;
  {
    ThreadPool pool(1);  // one worker makes FIFO order observable
    // Park the worker so every numbered task is queued before any runs.
    pool.submit([&] {
      while (!release.load()) std::this_thread::yield();
    });
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([&, i] { order.push_back(i); });
    }
    release.store(true);
  }  // join synchronizes: the single worker wrote `order` in queue order
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPool, WorkerSlotIsZeroForNonWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_slot(), 0u);
  ThreadPool other(2);
  // A worker of one pool is not a worker of another.
  std::atomic<std::size_t> cross_slot{99};
  std::atomic<bool> done{false};
  pool.submit([&] {
    cross_slot.store(other.worker_slot());
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(cross_slot.load(), 0u);
}

TEST(ParallelFor, ChunkedCoversRangeAndReportsWorkerSlots) {
  ThreadPool pool(4);
  constexpr std::size_t n = 1 << 14;
  std::vector<std::atomic<int>> hits(n);
  std::mutex mtx;
  std::set<std::size_t> slots;
  parallel_for_chunked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        {
          std::scoped_lock lock(mtx);
          slots.insert(pool.worker_slot());
        }
        for (std::size_t i = lo; i < hi; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      },
      /*grain=*/1, &pool);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
  ASSERT_FALSE(slots.empty());
  for (const std::size_t s : slots) EXPECT_LE(s, pool.size());
}

TEST(ParallelFor, ChunkedPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for_chunked(
                   0, 1 << 14,
                   [](std::size_t lo, std::size_t) {
                     if (lo == 0) throw std::runtime_error("boom");
                   },
                   /*grain=*/1, &pool),
               std::runtime_error);
}

TEST(ParallelFor, WillDispatchMatchesInlineRules) {
  ThreadPool pool(4);
  // Below the grain: runs inline regardless of pool size.
  EXPECT_FALSE(parallel_will_dispatch(10, /*grain=*/1000, &pool));
  EXPECT_TRUE(parallel_will_dispatch(10, /*grain=*/1, &pool));
  ThreadPool single(1);
  EXPECT_FALSE(parallel_will_dispatch(1 << 20, /*grain=*/1, &single));
  // From inside a worker of the same pool, a nested loop never dispatches.
  std::atomic<bool> nested_dispatch{false};
  parallel_for_chunked(
      0, 1 << 12,
      [&](std::size_t, std::size_t) {
        if (pool.worker_slot() != 0 &&
            parallel_will_dispatch(1 << 20, 1, &pool)) {
          nested_dispatch.store(true);
        }
      },
      /*grain=*/1, &pool);
  EXPECT_FALSE(nested_dispatch.load());
}

TEST(Table, AlignsAndCounts) {
  Table t("demo");
  t.header({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22.5);
  t.add("gamma", true);
  EXPECT_EQ(t.row_count(), 3u);
  const auto s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.500"), std::string::npos);
  EXPECT_NE(s.find("yes"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t;
  t.header({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), CheckError);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--n=5", "--name", "hello", "--verbose"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 5);
  EXPECT_EQ(cli.get_string("name", ""), "hello");
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_EQ(cli.get_int("absent", 9), 9);
  cli.finish();
}

TEST(Cli, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--typo=1"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.finish(), CheckError);
}

TEST(Cli, RejectsMalformedInt) {
  const char* argv[] = {"prog", "--n=abc"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.get_int("n", 0), CheckError);
}

TEST(Cli, RejectsNonFlagArgument) {
  const char* argv[] = {"prog", "stray"};
  EXPECT_THROW(Cli(2, argv), CheckError);
}

TEST(Check, MacrosThrowWithContext) {
  try {
    DC_REQUIRE(1 == 2, "context " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace dc
