// Routing tests: hypercube e-cube and dual-cube cluster routing produce
// valid shortest paths — checked pairwise against BFS ground truth.
#include <gtest/gtest.h>

#include "topology/graph.hpp"
#include "topology/routing.hpp"

namespace dc::net {
namespace {

TEST(HypercubeRouting, AllPairsShortest) {
  for (unsigned d : {1u, 2u, 3u, 4u, 5u}) {
    const Hypercube q(d);
    for (NodeId u = 0; u < q.node_count(); ++u) {
      for (NodeId v = 0; v < q.node_count(); ++v) {
        const auto path = route_hypercube(q, u, v);
        EXPECT_TRUE(is_valid_path(q, path));
        EXPECT_EQ(path.front(), u);
        EXPECT_EQ(path.back(), v);
        EXPECT_EQ(path.size() - 1, bits::hamming(u, v));
      }
    }
  }
}

TEST(HypercubeRouting, SelfRouteIsTrivial) {
  const Hypercube q(4);
  const auto path = route_hypercube(q, 9, 9);
  EXPECT_EQ(path, std::vector<NodeId>{9});
}

class DualRoutingTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DualRoutingTest, AllPairsValidAndShortest) {
  const DualCube d(GetParam());
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const auto dist = bfs_distances(d, u);
    for (NodeId v = 0; v < d.node_count(); ++v) {
      const auto path = route_dual_cube(d, u, v);
      EXPECT_TRUE(is_valid_path(d, path)) << "u=" << u << " v=" << v;
      EXPECT_EQ(path.front(), u);
      EXPECT_EQ(path.back(), v);
      EXPECT_EQ(path.size() - 1, dist[v])
          << "route must be shortest: u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, DualRoutingTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(DualRouting, RouteLengthNeverExceedsDiameter) {
  const DualCube d(4);
  for (NodeId u = 0; u < d.node_count(); u += 7) {
    for (NodeId v = 0; v < d.node_count(); v += 5) {
      const auto path = route_dual_cube(d, u, v);
      EXPECT_LE(path.size() - 1, d.diameter());
    }
  }
}

TEST(DualRouting, CrossClassPairUsesOneCross) {
  // A class-0/class-1 pair is reachable in exactly Hamming steps: the route
  // crosses exactly once.
  const DualCube d(3);
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const NodeId v = d.node_count() - 1 - u;
    if (d.node_class(u) == d.node_class(v)) continue;
    const auto path = route_dual_cube(d, u, v);
    unsigned crossings = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i)
      if (d.node_class(path[i]) != d.node_class(path[i + 1])) ++crossings;
    EXPECT_EQ(crossings, 1u);
  }
}

TEST(DualRouting, SameClassPairUsesTwoCrosses) {
  const DualCube d(3);
  unsigned checked = 0;
  for (NodeId u = 0; u < d.node_count(); ++u) {
    for (NodeId v = 0; v < d.node_count(); ++v) {
      const auto a = d.decode(u);
      const auto b = d.decode(v);
      if (a.cls != b.cls || a.cluster == b.cluster) continue;
      const auto path = route_dual_cube(d, u, v);
      unsigned crossings = 0;
      for (std::size_t i = 0; i + 1 < path.size(); ++i)
        if (d.node_class(path[i]) != d.node_class(path[i + 1])) ++crossings;
      EXPECT_EQ(crossings, 2u) << "enter and leave the foreign class once";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace dc::net
