// Tests for the generic tree collectives and the per-edge load counters.
#include <gtest/gtest.h>

#include <numeric>

#include "collectives/broadcast.hpp"
#include "collectives/tree.hpp"
#include "topology/cube_connected_cycles.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"

namespace dc::collectives {
namespace {

TEST(TreeBroadcast, ReachesEveryNodeOnVariousTopologies) {
  const net::DualCube d(3);
  const net::Hypercube q(4);
  const net::CubeConnectedCycles c(3);
  for (const net::Topology* t :
       std::initializer_list<const net::Topology*>{&d, &q, &c}) {
    sim::Machine m(*t);
    const auto out = tree_broadcast<u64>(m, *t, 0, 77);
    for (const u64 v : out) EXPECT_EQ(v, 77u);
    EXPECT_GE(m.counters().comm_cycles, 1u);
  }
}

TEST(TreeBroadcast, NeverBeatsTheClusterTechniqueOnDualCube) {
  for (unsigned n : {2u, 3u, 4u}) {
    const net::DualCube d(n);
    sim::Machine mt(d);
    tree_broadcast<int>(mt, d, 0, 1);
    sim::Machine mc(d);
    dual_broadcast<int>(mc, d, 0, 1);
    EXPECT_GE(mt.counters().comm_cycles, mc.counters().comm_cycles);
  }
}

TEST(TreeReduce, CorrectFromSeveralRoots) {
  const net::DualCube d(3);
  const dc::core::Plus<u64> op;
  std::vector<u64> values(d.node_count());
  std::iota(values.begin(), values.end(), 1);
  const u64 expected = std::accumulate(values.begin(), values.end(), u64{0});
  for (net::NodeId root = 0; root < d.node_count(); root += 7) {
    sim::Machine m(d);
    EXPECT_EQ(tree_reduce(m, d, root, op, values), expected);
  }
}

TEST(TreeReduce, WorksOnIrregularTopology) {
  const net::CubeConnectedCycles c(3);
  const dc::core::Max<u64> op;
  std::vector<u64> values(c.node_count(), 1);
  values[13] = 999;
  sim::Machine m(c);
  EXPECT_EQ(tree_reduce(m, c, 0, op, values), 999u);
}

TEST(EdgeLoad, CountsMessagesPerDirectedEdge) {
  const net::Hypercube q(2);
  sim::Machine m(q);
  m.enable_edge_load();
  for (int round = 0; round < 3; ++round) {
    m.comm_cycle<int>([&](net::NodeId u) {
      return sim::Send<int>{q.neighbor(u, 0), 1};
    });
  }
  EXPECT_EQ(m.edge_load(0, 1), 3u);
  EXPECT_EQ(m.edge_load(1, 0), 3u);
  EXPECT_EQ(m.edge_load(0, 2), 0u);
}

TEST(EdgeLoad, DisabledByDefault) {
  const net::Hypercube q(2);
  sim::Machine m(q);
  m.comm_cycle<int>([&](net::NodeId u) {
    return sim::Send<int>{q.neighbor(u, 0), 1};
  });
  EXPECT_EQ(m.edge_load(0, 1), 0u) << "no tracking unless enabled";
}

}  // namespace
}  // namespace dc::collectives
