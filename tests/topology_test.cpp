// Structural tests for the topology library: dual-cube invariants from
// Section 2 of the paper, the recursive presentation of Section 4, the
// standard<->recursive isomorphism, and the comparison networks.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/cube_connected_cycles.hpp"
#include "topology/de_bruijn.hpp"
#include "topology/dual_cube.hpp"
#include "topology/flat_adjacency.hpp"
#include "topology/graph.hpp"
#include "topology/hypercube.hpp"
#include "topology/recursive_dual_cube.hpp"
#include "topology/shuffle_exchange.hpp"

namespace dc::net {
namespace {

// ---------------------------------------------------------------- hypercube

class HypercubeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(HypercubeTest, BasicInvariants) {
  const Hypercube q(GetParam());
  EXPECT_EQ(q.node_count(), bits::pow2(GetParam()));
  validate_graph(q);
  std::size_t deg = 0;
  EXPECT_TRUE(is_regular(q, &deg));
  EXPECT_EQ(deg, GetParam());
  EXPECT_EQ(q.edge_count(), GetParam() * bits::pow2(GetParam()) / 2);
  EXPECT_TRUE(is_connected(q));
  EXPECT_TRUE(is_bipartite(q));
}

TEST_P(HypercubeTest, DiameterEqualsDimension) {
  const Hypercube q(GetParam());
  if (GetParam() == 0) return;
  const auto stats = distance_stats(q);
  EXPECT_EQ(stats.diameter, GetParam());
}

TEST_P(HypercubeTest, DistanceIsHamming) {
  const Hypercube q(GetParam());
  const auto dist = bfs_distances(q, 0);
  for (NodeId u = 0; u < q.node_count(); ++u)
    EXPECT_EQ(dist[u], bits::popcount(u));
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeTest, ::testing::Values(0u, 1u, 2u, 3u, 5u, 8u));

// ----------------------------------------------------------------- dual-cube

class DualCubeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DualCubeTest, NodeAndEdgeCounts) {
  const unsigned n = GetParam();
  const DualCube d(n);
  EXPECT_EQ(d.node_count(), bits::pow2(2 * n - 1));
  std::size_t deg = 0;
  EXPECT_TRUE(is_regular(d, &deg));
  EXPECT_EQ(deg, n) << "every node has exactly n links (paper, Section 1)";
  EXPECT_EQ(d.edge_count(), n * d.node_count() / 2);
  validate_graph(d);
  EXPECT_TRUE(is_connected(d));
  EXPECT_TRUE(is_bipartite(d));
}

TEST_P(DualCubeTest, AddressCodecRoundTrips) {
  const DualCube d(GetParam());
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const auto a = d.decode(u);
    EXPECT_LE(a.cls, 1u);
    EXPECT_LT(a.cluster, d.clusters_per_class());
    EXPECT_LT(a.node, d.cluster_size());
    EXPECT_EQ(d.encode(a), u);
    EXPECT_EQ(a.cls, d.node_class(u));
  }
}

TEST_P(DualCubeTest, CrossEdgeFlipsOnlyClassBit) {
  const DualCube d(GetParam());
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const NodeId v = d.cross_neighbor(u);
    EXPECT_EQ(bits::hamming(u, v), 1u);
    EXPECT_NE(d.node_class(u), d.node_class(v));
    EXPECT_EQ(d.cross_neighbor(v), u) << "cross-edges form a perfect matching";
    EXPECT_TRUE(d.has_edge(u, v));
  }
}

TEST_P(DualCubeTest, CrossPartnerSwapsClusterAndNodeIds) {
  // Node j of class-0 cluster k is linked to node k of class-1 cluster j —
  // the property that steps 2-4 of Algorithm 2 rely on.
  const DualCube d(GetParam());
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const auto a = d.decode(u);
    const auto b = d.decode(d.cross_neighbor(u));
    EXPECT_EQ(b.cluster, a.node);
    EXPECT_EQ(b.node, a.cluster);
  }
}

TEST_P(DualCubeTest, ClustersAreSubcubes) {
  const unsigned n = GetParam();
  const DualCube d(n);
  for (unsigned cls = 0; cls <= 1; ++cls) {
    for (u64 c = 0; c < d.clusters_per_class(); ++c) {
      const auto members = d.cluster_members(cls, c);
      ASSERT_EQ(members.size(), d.cluster_size());
      // Within a cluster, adjacency is exactly "node IDs differ in one bit".
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          const bool adjacent = d.has_edge(members[i], members[j]);
          const bool hamming1 = bits::hamming(i, j) == 1;
          EXPECT_EQ(adjacent, hamming1);
        }
      }
    }
  }
}

TEST_P(DualCubeTest, NoEdgesBetweenClustersOfSameClass) {
  const DualCube d(GetParam());
  for (NodeId u = 0; u < d.node_count(); ++u) {
    for (const NodeId v : d.neighbors(u)) {
      if (d.node_class(u) == d.node_class(v)) {
        EXPECT_TRUE(d.same_cluster(u, v))
            << "intra-class edges must stay inside a cluster";
      }
    }
  }
}

TEST_P(DualCubeTest, ClusterNeighborAgreesWithNeighbors) {
  const unsigned n = GetParam();
  if (n < 2) return;
  const DualCube d(n);
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const auto ns = d.neighbors(u);
    const std::set<NodeId> expected(ns.begin(), ns.end());
    std::set<NodeId> produced{d.cross_neighbor(u)};
    for (unsigned i = 0; i + 1 < n; ++i) {
      const NodeId v = d.cluster_neighbor(u, i);
      EXPECT_TRUE(d.same_cluster(u, v));
      produced.insert(v);
    }
    EXPECT_EQ(produced, expected);
  }
}

TEST_P(DualCubeTest, DistanceFormulaMatchesBfs) {
  // Paper, Section 2: distance = Hamming within a cluster or across
  // classes, Hamming + 2 between distinct clusters of the same class.
  const DualCube d(GetParam());
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const auto dist = bfs_distances(d, u);
    for (NodeId v = 0; v < d.node_count(); ++v)
      EXPECT_EQ(d.distance(u, v), dist[v]) << "u=" << u << " v=" << v;
  }
}

TEST_P(DualCubeTest, DiameterIsTwoN) {
  const DualCube d(GetParam());
  const auto stats = distance_stats(d);
  if (GetParam() >= 2) {
    EXPECT_EQ(stats.diameter, 2 * GetParam());
  }
  EXPECT_EQ(stats.diameter, d.diameter());
}

TEST_P(DualCubeTest, UniformDistanceProfile) {
  // Necessary condition for the paper's node-symmetry claim.
  const DualCube d(GetParam());
  EXPECT_TRUE(has_uniform_distance_profile(d));
}

INSTANTIATE_TEST_SUITE_P(Orders, DualCubeTest, ::testing::Values(1u, 2u, 3u, 4u));

TEST(DualCube, RejectsOrderZero) { EXPECT_THROW(DualCube(0), CheckError); }

TEST(DualCube, D1IsK2) {
  const DualCube d(1);
  EXPECT_EQ(d.node_count(), 2u);
  EXPECT_TRUE(d.has_edge(0, 1));
}

TEST(DualCube, D2MatchesFigure1) {
  // Figure 1: D_2 has 8 nodes of degree 2 — four K_2 clusters joined by
  // four cross-edges into a single cycle of length 8.
  const DualCube d(2);
  EXPECT_EQ(d.node_count(), 8u);
  EXPECT_EQ(d.edge_count(), 8u);
  const auto stats = distance_stats(d);
  EXPECT_EQ(stats.diameter, 4u);  // an 8-cycle
}

TEST(DualCube, D3MatchesFigure2) {
  const DualCube d(3);
  EXPECT_EQ(d.node_count(), 32u);
  EXPECT_EQ(d.edge_count(), 48u);
  EXPECT_EQ(d.clusters_per_class(), 4u);
  EXPECT_EQ(d.cluster_size(), 4u);
  const auto stats = distance_stats(d);
  EXPECT_EQ(stats.diameter, 6u);
}

// ------------------------------------------------------ recursive presentation

class RecursiveTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RecursiveTest, BasicInvariants) {
  const unsigned n = GetParam();
  const RecursiveDualCube r(n);
  EXPECT_EQ(r.node_count(), bits::pow2(2 * n - 1));
  validate_graph(r);
  std::size_t deg = 0;
  EXPECT_TRUE(is_regular(r, &deg));
  EXPECT_EQ(deg, n);
  EXPECT_TRUE(is_connected(r));
}

TEST_P(RecursiveTest, IsomorphicToStandardPresentation) {
  const unsigned n = GetParam();
  const DualCube d(n);
  const RecursiveDualCube r(n);
  // Bijection.
  std::set<NodeId> image;
  for (NodeId u = 0; u < d.node_count(); ++u) {
    const NodeId ru = r.from_standard(u);
    EXPECT_EQ(r.to_standard(ru), u);
    image.insert(ru);
  }
  EXPECT_EQ(image.size(), d.node_count());
  // Edges map to edges, both directions.
  for (NodeId u = 0; u < d.node_count(); ++u) {
    for (NodeId v = u + 1; v < d.node_count(); ++v) {
      EXPECT_EQ(d.has_edge(u, v),
                r.has_edge(r.from_standard(u), r.from_standard(v)))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST_P(RecursiveTest, FourCopiesOfSmallerDualCube) {
  // Paper, Section 4: fixing the two leftmost bits yields D_(n-1); edges
  // within a copy never leave it, and each node has exactly one link
  // leaving its copy.
  const unsigned n = GetParam();
  if (n < 2) return;
  const RecursiveDualCube r(n);
  const RecursiveDualCube smaller(n - 1);
  const u64 copy_size = bits::pow2(2 * n - 3);
  for (NodeId u = 0; u < r.node_count(); ++u) {
    unsigned external = 0;
    for (const NodeId v : r.neighbors(u)) {
      if (u / copy_size != v / copy_size) {
        ++external;
      } else {
        EXPECT_TRUE(smaller.has_edge(u % copy_size, v % copy_size))
            << "intra-copy edges must be D_(n-1) edges";
      }
    }
    EXPECT_EQ(external, 1u) << "exactly one recursive link per node";
  }
  // And conversely, every D_(n-1) edge appears inside every copy.
  for (NodeId u = 0; u < smaller.node_count(); ++u) {
    for (const NodeId v : smaller.neighbors(u)) {
      for (u64 copy = 0; copy < 4; ++copy) {
        EXPECT_TRUE(r.has_edge(copy * copy_size + u, copy * copy_size + v));
      }
    }
  }
}

TEST_P(RecursiveTest, RecursiveLinkMatchingRules) {
  // The two leaving dimensions: bit 2n-2 (even) pairs nodes with u_0 = 0,
  // bit 2n-3 (odd) pairs nodes with u_0 = 1.
  const unsigned n = GetParam();
  if (n < 2) return;
  const RecursiveDualCube r(n);
  const unsigned top = 2 * n - 2;
  for (NodeId u = 0; u < r.node_count(); ++u) {
    if (bits::get(u, 0) == 0) {
      EXPECT_TRUE(r.has_edge(u, bits::flip(u, top)));
      EXPECT_FALSE(r.has_edge(u, bits::flip(u, top - 1)));
    } else {
      EXPECT_FALSE(r.has_edge(u, bits::flip(u, top)));
      EXPECT_TRUE(r.has_edge(u, bits::flip(u, top - 1)));
    }
  }
}

TEST_P(RecursiveTest, IndirectRouteIsThreeValidHops) {
  const unsigned n = GetParam();
  if (n < 2) return;
  const RecursiveDualCube r(n);
  for (NodeId u = 0; u < r.node_count(); ++u) {
    for (unsigned j = 1; j < r.label_bits(); ++j) {
      if (RecursiveDualCube::dimension_linked(bits::get(u, 0), j)) {
        EXPECT_TRUE(r.has_edge(u, bits::flip(u, j)));
      } else {
        const auto path = r.indirect_route(u, j);
        ASSERT_EQ(path.size(), 4u);
        EXPECT_EQ(path.front(), u);
        EXPECT_EQ(path.back(), bits::flip(u, j));
        EXPECT_TRUE(is_valid_path(r, path));
      }
    }
  }
}

TEST_P(RecursiveTest, SubcubeIndexConsistent) {
  const unsigned n = GetParam();
  const RecursiveDualCube r(n);
  for (NodeId u = 0; u < r.node_count(); ++u) {
    EXPECT_EQ(r.subcube_index(u, n), 0u);
    if (n >= 2) {
      EXPECT_EQ(r.subcube_index(u, n - 1), u >> (2 * n - 3));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, RecursiveTest, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Recursive, DimensionLinkRule) {
  EXPECT_TRUE(RecursiveDualCube::dimension_linked(0, 0));
  EXPECT_TRUE(RecursiveDualCube::dimension_linked(1, 0));
  EXPECT_TRUE(RecursiveDualCube::dimension_linked(0, 2));
  EXPECT_FALSE(RecursiveDualCube::dimension_linked(0, 1));
  EXPECT_TRUE(RecursiveDualCube::dimension_linked(1, 1));
  EXPECT_FALSE(RecursiveDualCube::dimension_linked(1, 2));
}

// ------------------------------------------------------- comparison networks

TEST(CubeConnectedCycles, Invariants) {
  for (unsigned k : {3u, 4u, 5u}) {
    const CubeConnectedCycles c(k);
    EXPECT_EQ(c.node_count(), k * bits::pow2(k));
    validate_graph(c);
    std::size_t deg = 0;
    EXPECT_TRUE(is_regular(c, &deg));
    EXPECT_EQ(deg, 3u);
    EXPECT_TRUE(is_connected(c));
  }
}

TEST(CubeConnectedCycles, CodecRoundTrips) {
  const CubeConnectedCycles c(4);
  for (NodeId u = 0; u < c.node_count(); ++u) {
    const auto [x, p] = c.decode(u);
    EXPECT_EQ(c.encode(x, p), u);
  }
}

TEST(DeBruijn, Invariants) {
  for (unsigned d : {2u, 3u, 4u, 6u}) {
    const DeBruijn g(d);
    EXPECT_EQ(g.node_count(), bits::pow2(d));
    validate_graph(g);
    EXPECT_TRUE(is_connected(g));
    for (NodeId u = 0; u < g.node_count(); ++u) EXPECT_LE(g.degree(u), 4u);
  }
}

TEST(ShuffleExchange, Invariants) {
  for (unsigned d : {2u, 3u, 4u, 6u}) {
    const ShuffleExchange g(d);
    EXPECT_EQ(g.node_count(), bits::pow2(d));
    validate_graph(g);
    EXPECT_TRUE(is_connected(g));
    for (NodeId u = 0; u < g.node_count(); ++u) EXPECT_LE(g.degree(u), 3u);
  }
}

// --------------------------------------------------------------- graph tools

TEST(Graph, BfsOnPathlikeDualCube) {
  const DualCube d(2);  // the 8-cycle
  const auto dist = bfs_distances(d, 0);
  unsigned count_at_max = 0;
  for (const auto v : dist)
    if (v == 4) ++count_at_max;
  EXPECT_EQ(count_at_max, 1u) << "an 8-cycle has a unique antipode";
}

TEST(Graph, AverageDistanceOfQ3) {
  // Q_3: sum of distances from any node = 3*1 + 3*2 + 1*3 = 12, over 7
  // other nodes -> 12/7.
  const Hypercube q(3);
  const auto stats = distance_stats(q);
  EXPECT_NEAR(stats.average, 12.0 / 7.0, 1e-12);
}

TEST(Graph, ValidatePathChecksEdges) {
  const Hypercube q(3);
  EXPECT_TRUE(is_valid_path(q, {0, 1, 3, 7}));
  EXPECT_FALSE(is_valid_path(q, {0, 3}));
  EXPECT_FALSE(is_valid_path(q, {}));
  EXPECT_TRUE(is_valid_path(q, {5}));
  EXPECT_FALSE(is_valid_path(q, {0, 8}));
}

// ----------------------------------------------------------- flat adjacency

TEST(FlatAdjacency, MatchesVirtualInterfaceOnDualCube) {
  const DualCube d(3);
  const FlatAdjacency& adj = d.flat_adjacency();
  EXPECT_EQ(adj.node_count(), d.node_count());
  std::size_t total = 0;
  for (NodeId u = 0; u < d.node_count(); ++u) {
    auto expected = d.neighbors(u);
    std::sort(expected.begin(), expected.end());
    const auto row = adj.row(u);
    ASSERT_EQ(row.size(), expected.size());
    EXPECT_TRUE(std::equal(row.begin(), row.end(), expected.begin()));
    EXPECT_EQ(adj.degree(u), expected.size());
    EXPECT_EQ(d.neighbor_count(u), expected.size());
    for (const NodeId v : expected) {
      EXPECT_TRUE(adj.has_edge(u, v));
      EXPECT_TRUE(d.has_edge(u, v));
    }
    total += expected.size();
  }
  EXPECT_EQ(adj.directed_edge_count(), total);
  EXPECT_EQ(adj.directed_edge_count(), 2 * d.edge_count());
}

TEST(FlatAdjacency, EdgeSlotsAreDenseAndUnique) {
  const Hypercube q(4);
  const FlatAdjacency& adj = q.flat_adjacency();
  std::vector<char> seen(adj.directed_edge_count(), 0);
  for (NodeId u = 0; u < q.node_count(); ++u) {
    for (const NodeId v : adj.row(u)) {
      const std::size_t s = adj.edge_slot(u, v);
      ASSERT_LT(s, adj.directed_edge_count());
      EXPECT_FALSE(seen[s]) << "slot " << s << " assigned twice";
      seen[s] = 1;
    }
  }
  for (const char used : seen) EXPECT_TRUE(used);
  EXPECT_EQ(adj.edge_slot(0, 3), FlatAdjacency::npos);
  EXPECT_FALSE(adj.has_edge(0, 3));
  EXPECT_FALSE(adj.has_edge(0, 0));
}

namespace {

// Complete graph on n vertices: the smallest way to get rows longer than
// FlatAdjacency::kLinearScanMax, forcing edge_slot onto its binary-search
// path (library topologies all have short rows).
class CompleteGraph final : public Topology {
 public:
  explicit CompleteGraph(NodeId n) : n_(n) {}
  std::string name() const override { return "K_" + std::to_string(n_); }
  NodeId node_count() const override { return n_; }
  std::vector<NodeId> neighbors(NodeId u) const override {
    std::vector<NodeId> out;
    out.reserve(static_cast<std::size_t>(n_) - 1);
    for (NodeId v = 0; v < n_; ++v)
      if (v != u) out.push_back(v);
    return out;
  }

 private:
  NodeId n_;
};

}  // namespace

TEST(FlatAdjacency, BinarySearchPathOnLongRows) {
  const CompleteGraph k(FlatAdjacency::kLinearScanMax + 8);
  const FlatAdjacency& adj = k.flat_adjacency();
  std::vector<char> seen(adj.directed_edge_count(), 0);
  for (NodeId u = 0; u < k.node_count(); ++u) {
    ASSERT_GT(adj.degree(u), FlatAdjacency::kLinearScanMax);
    EXPECT_FALSE(adj.has_edge(u, u));
    EXPECT_EQ(adj.edge_slot(u, k.node_count() + 5), FlatAdjacency::npos);
    for (NodeId v = 0; v < k.node_count(); ++v) {
      if (v == u) continue;
      const std::size_t s = adj.edge_slot(u, v);
      ASSERT_LT(s, adj.directed_edge_count());
      EXPECT_FALSE(seen[s]);
      seen[s] = 1;
    }
  }
  for (const char used : seen) EXPECT_TRUE(used);
}

TEST(FlatAdjacency, NeighborCountAgreesAcrossTopologies) {
  const Hypercube q(5);
  const RecursiveDualCube r(3);
  const CubeConnectedCycles c(3);
  const auto check = [](const Topology& t) {
    for (NodeId u = 0; u < t.node_count(); ++u) {
      EXPECT_EQ(t.neighbor_count(u), t.neighbors(u).size()) << t.name();
      EXPECT_EQ(t.degree(u), t.flat_adjacency().degree(u)) << t.name();
    }
  };
  check(q);
  check(r);
  check(c);
}

}  // namespace
}  // namespace dc::net
