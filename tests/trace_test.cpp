// Trace and metrics layer tests: deterministic export, balanced spans,
// record/replay/fault visibility, ring wrap accounting, and the metrics
// registry's arithmetic. The determinism suites run again under TSan in CI
// (trace emission shares one recorder across the machine's worker pool).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ft_dual_prefix.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/oblivious.hpp"
#include "sim/run_report.hpp"
#include "sim/trace.hpp"
#include "support/thread_pool.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"

namespace dc::sim {
namespace {

std::vector<u64> prefix_input(std::size_t n) {
  std::vector<u64> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = (i * 2654435761ull) % 97;
  return data;
}

/// One interpreted dual-prefix run on its own pool, traced into a fresh
/// recorder; returns the exported JSON. Interpreted so the result cannot
/// depend on what earlier tests left in the process ScheduleCache.
std::string traced_run_json(std::size_t workers) {
  dc::ThreadPool pool(workers);
  const net::DualCube d(3);
  TraceRecorder rec(pool.size() + 1);
  Machine m(d);
  m.set_thread_pool(&pool);
  m.set_parallel_grain(1);  // force dispatch onto the workers
  m.set_schedule_path(SchedulePath::kInterpreted);
  m.set_trace(&rec, "determinism-run");
  const auto data = prefix_input(d.node_count());
  (void)core::dual_prefix(m, d, core::Plus<u64>{}, data);
  return rec.json();
}

TEST(Trace, SameSeedSameWorkersByteIdenticalJson) {
  EXPECT_EQ(traced_run_json(3), traced_run_json(3));
}

/// Canonical multiset view of a trace: every event reduced to its
/// order-independent content and sorted.
using CanonicalEvent = std::tuple<std::string, char, std::uint32_t,
                                  std::uint64_t, std::uint64_t>;
std::vector<CanonicalEvent> canonical(const TraceRecorder& rec) {
  std::vector<CanonicalEvent> out;
  for (const TraceEvent& e : rec.merged())
    out.emplace_back(e.name, e.ph, e.track, e.arg_a, e.arg_b);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CanonicalEvent> traced_run_canonical(std::size_t workers) {
  dc::ThreadPool pool(workers);
  const net::DualCube d(3);
  TraceRecorder rec(pool.size() + 1);
  Machine m(d);
  m.set_thread_pool(&pool);
  m.set_parallel_grain(1);
  m.set_schedule_path(SchedulePath::kInterpreted);
  m.set_trace(&rec, "determinism-run");
  const auto data = prefix_input(d.node_count());
  (void)core::dual_prefix(m, d, core::Plus<u64>{}, data);
  return canonical(rec);
}

TEST(Trace, DifferentWorkerCountIdenticalEventMultiset) {
  const auto one = traced_run_canonical(1);
  const auto four = traced_run_canonical(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  // Stronger property the current instrumentation guarantees (all events
  // are emitted from the driver thread): the export is byte-identical too.
  EXPECT_EQ(traced_run_json(1), traced_run_json(4));
}

TEST(Trace, SpansBalancedAndCyclesCounted) {
  const net::DualCube d(3);
  TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
  Machine m(d);
  m.set_schedule_path(SchedulePath::kInterpreted);
  m.set_trace(&rec, "balance-run");
  const auto data = prefix_input(d.node_count());
  (void)core::dual_prefix(m, d, core::Plus<u64>{}, data);

  std::map<std::string, std::int64_t> depth;
  std::size_t cycle_ends = 0;
  std::uint64_t last_ts = 0;
  bool first = true;
  for (const TraceEvent& e : rec.merged()) {
    if (!first) {
      EXPECT_GT(e.ts, last_ts);  // strictly monotone logical clock
    }
    first = false;
    last_ts = e.ts;
    if (e.ph == 'B') ++depth[e.name];
    if (e.ph == 'E') {
      --depth[e.name];
      EXPECT_GE(depth[e.name], 0) << e.name;
    }
    if (e.kind == TraceEventKind::kCycleEnd) ++cycle_ends;
  }
  for (const auto& [name, open] : depth) EXPECT_EQ(open, 0) << name;
  EXPECT_EQ(cycle_ends, m.counters().comm_cycles);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Trace, RecordThenReplayTransitionsVisible) {
  const net::Hypercube q(4);
  TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  m.set_trace(&rec, "schedule-run");
  const auto run_once = [&] {
    ObliviousSection section(m, "trace_test_record_replay", {});
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto inbox = section.exchange<u64>(
          [&](net::NodeId u) { return q.neighbor(u, i); },
          [](net::NodeId u) { return u; });
    }
    section.commit();
  };
  run_once();  // miss -> record -> commit
  run_once();  // hit -> replay

  std::size_t record_spans = 0, replay_spans = 0, hits = 0, misses = 0,
              commits = 0, replay_cycles = 0;
  for (const TraceEvent& e : rec.merged()) {
    const std::string name = e.name;
    if (e.ph == 'B' && name == "record:trace_test_record_replay")
      ++record_spans;
    if (e.ph == 'B' && name == "replay:trace_test_record_replay")
      ++replay_spans;
    if (name == "schedule_cache_hit") ++hits;
    if (name == "schedule_cache_miss") ++misses;
    if (name == "schedule_commit") ++commits;
    if (e.kind == TraceEventKind::kCycleEnd && name == "comm_cycle_replay")
      ++replay_cycles;
  }
  EXPECT_EQ(record_spans, 1u);
  EXPECT_EQ(replay_spans, 1u);
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(hits, 1u);
  EXPECT_EQ(commits, 1u);
  EXPECT_EQ(replay_cycles, q.dimensions());
}

TEST(Trace, FaultDropAndDetourEventsVisible) {
  const net::DualCube d(2);
  const auto plan =
      std::make_shared<FaultPlan>(FaultPlan{}.kill_node(net::NodeId{3}));

  // Degrade-policy drop: a message aimed at the dead node is eaten and
  // traced as a fault_drop instant carrying the sender.
  {
    TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
    Machine m(d);
    m.set_trace(&rec, "drop-run");
    m.attach_faults(plan, FaultPolicy::kDegrade);
    auto inbox = m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
      if (u != d.cross_neighbor(net::NodeId{3})) return std::nullopt;
      return Send<int>{net::NodeId{3}, 7};
    });
    std::size_t drops = 0, fault_cycles = 0;
    for (const TraceEvent& e : rec.merged()) {
      if (std::string(e.name) == "fault_drop") {
        ++drops;
        EXPECT_EQ(e.arg_a, d.cross_neighbor(net::NodeId{3}));
      }
      if (std::string(e.name) == "fault_cycle") ++fault_cycles;
    }
    EXPECT_EQ(drops, 1u);
    EXPECT_EQ(fault_cycles, 1u);
    EXPECT_EQ(m.counters().messages_lost, 1u);
  }

  // Fault-tolerant prefix under the same fault set: repairs travel detour
  // routes and each deviation is traced as a fault_detour instant.
  {
    TraceRecorder rec(dc::ThreadPool::shared().size() + 1);
    Machine m(d);
    m.set_trace(&rec, "detour-run");
    m.attach_faults(plan, FaultPolicy::kStrict);
    const auto data = prefix_input(d.node_count());
    FtReport rep;
    (void)core::ft_dual_prefix(m, d, core::Plus<u64>{}, data, *plan,
                               /*inclusive=*/true, &rep);
    std::size_t detours = 0;
    for (const TraceEvent& e : rec.merged())
      if (std::string(e.name) == "fault_detour") ++detours;
    EXPECT_GT(rep.repaired, 0u);
    EXPECT_EQ(detours, rep.repaired);
  }
}

TEST(Trace, RingWrapKeepsMostRecentAndCountsDrops) {
  TraceRecorder rec(1, /*caller_capacity=*/8);
  const std::uint32_t track = rec.register_track("wrap");
  for (std::uint64_t i = 0; i < 20; ++i)
    rec.instant(track, 0, "compute_step", "i", i);
  EXPECT_EQ(rec.emitted(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const auto events = rec.merged();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(events.front().arg_a, 12u);  // oldest retained
  EXPECT_EQ(events.back().arg_a, 19u);   // newest
  EXPECT_NE(rec.json().find("\"dropped_events\":12"), std::string::npos);
}

TEST(Trace, FlightRecorderWrapKeepsNewestPerSlotMonotone) {
  // One caller ring (cap 8) and two worker rings (cap 4 each), all pushed
  // far past capacity: the dump must hold exactly the newest N events of
  // every slot, merged into one strictly monotone logical timeline.
  TraceRecorder rec(3, /*caller_capacity=*/8, /*worker_capacity=*/4);
  const std::uint32_t track = rec.register_track("flight");
  for (std::uint64_t i = 0; i < 30; ++i) {
    rec.instant(track, 0, "compute_step", "i", i);
    rec.instant(track, 1, "compute_step", "i", 100 + i);
    rec.instant(track, 2, "compute_step", "i", 200 + i);
  }
  EXPECT_EQ(rec.emitted(), 90u);
  EXPECT_EQ(rec.dropped(), 90u - (8u + 4u + 4u));

  const auto events = rec.merged();
  ASSERT_EQ(events.size(), 16u);
  std::map<std::uint32_t, std::vector<std::uint64_t>> per_slot;
  std::uint64_t last_ts = 0;
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) {
      EXPECT_GT(e.ts, last_ts);
    }
    first = false;
    last_ts = e.ts;
    per_slot[e.slot].push_back(e.arg_a);
  }
  const auto newest = [](std::uint64_t base, std::uint64_t cap) {
    std::vector<std::uint64_t> want;
    for (std::uint64_t i = 30 - cap; i < 30; ++i) want.push_back(base + i);
    return want;
  };
  EXPECT_EQ(per_slot[0], newest(0, 8));
  EXPECT_EQ(per_slot[1], newest(100, 4));
  EXPECT_EQ(per_slot[2], newest(200, 4));
}

TEST(Trace, FlightRecorderDumpCapsAtNewestEvents) {
  TraceRecorder rec(1, /*caller_capacity=*/1024);
  const std::uint32_t track = rec.register_track("flight");
  for (std::uint64_t i = 0; i < 800; ++i)
    rec.instant(track, 0, "compute_step", "i", i);

  RunReport r;
  fill_from_recorder(r, rec);
  ASSERT_EQ(r.flight.size(), kFlightDumpCap);
  EXPECT_EQ(r.flight.front().arg_a, 800 - kFlightDumpCap);
  EXPECT_EQ(r.flight.back().arg_a, 799u);
  EXPECT_EQ(r.flight_dropped, 0u);
  for (std::size_t i = 1; i < r.flight.size(); ++i)
    EXPECT_GT(r.flight[i].ts, r.flight[i - 1].ts);
}

TEST(Trace, MessagesPerCycleCompatAndScope) {
  const net::Hypercube q(2);
  Machine m(q);
  m.enable_trace();
  {
    TraceScope phase(m.trace(), m.trace_track(), "phase:test");
    m.comm_cycle<int>(
        [&](net::NodeId u) { return Send<int>{q.neighbor(u, 0), 0}; });
  }
  m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
    if (u != 0) return std::nullopt;
    return Send<int>{1, 0};
  });
  const auto counts = m.messages_per_cycle();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 4u);
  EXPECT_EQ(counts[1], 1u);

  bool opened = false, closed = false;
  for (const TraceEvent& e : m.trace()->merged()) {
    if (std::string(e.name) != "phase:test") continue;
    if (e.ph == 'B') opened = true;
    if (e.ph == 'E') closed = true;
  }
  EXPECT_TRUE(opened);
  EXPECT_TRUE(closed);
}

TEST(Trace, JsonEscapesTrackLabels) {
  TraceRecorder rec(1);
  rec.register_track("quote\"back\\slash");
  EXPECT_NE(rec.json().find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(Metrics, CounterHistogramAndReset) {
  auto& reg = MetricsRegistry::instance();
  auto& c = reg.counter("test.counter");
  c.reset();
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4u);

  auto& h = reg.histogram("test.hist", Histogram::pow2_bounds(3));
  h.reset();
  h.observe(1);
  h.observe(2);
  h.observe(100);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 103u);
  EXPECT_EQ(h.max(), 100u);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 5u);  // bounds 1,2,4,8 + overflow
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[4], 1u);

  // reset() zeroes values but keeps registered references valid.
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&reg.counter("test.counter"), &c);
  EXPECT_EQ(&reg.histogram("test.hist", {}), &h);
}

TEST(Metrics, ArmedMachinePopulatesRegistryAndReport) {
  MetricsRegistry::instance().reset();
  MetricsRegistry::arm();
  const net::Hypercube q(3);
  Machine m(q);
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto inbox = m.comm_cycle<u64>(
        [&](net::NodeId u) { return Send<u64>{q.neighbor(u, i), u}; });
  }
  m.publish_metrics();
  MetricsRegistry::disarm();

  const auto snap = MetricsRegistry::instance().snapshot();
  const auto* hist = [&]() -> const MetricsRegistry::HistogramSnapshot* {
    for (const auto& h : snap.histograms)
      if (h.name == "sim.messages_per_cycle") return &h;
    return nullptr;
  }();
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->count, q.dimensions());
  EXPECT_EQ(hist->max, q.node_count());

  bool have_cycles = false;
  for (const auto& [name, v] : snap.gauges) {
    if (name == "sim.comm_cycles") {
      have_cycles = true;
      EXPECT_EQ(v, static_cast<double>(q.dimensions()));
    }
  }
  EXPECT_TRUE(have_cycles);

  const std::string table = metrics_report();
  EXPECT_NE(table.find("sim.schedule_cache.hits"), std::string::npos);
  const std::string json = metrics_report(MetricsFormat::kJson);
  EXPECT_NE(json.find("\"sim.messages_per_cycle\""), std::string::npos);
  EXPECT_EQ(json.find('\n'), json.size() - 1);  // single machine-line
}

TEST(Metrics, UnarmedMachineLeavesRegistryUntouched) {
  MetricsRegistry::disarm();
  MetricsRegistry::instance().reset();
  const net::Hypercube q(2);
  Machine m(q);
  auto inbox = m.comm_cycle<int>(
      [&](net::NodeId u) { return Send<int>{q.neighbor(u, 0), 1}; });
  m.publish_metrics();  // no-op while disarmed
  const auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_TRUE(snap.gauges.empty());
  for (const auto& h : snap.histograms)
    if (h.name == "sim.messages_per_cycle") {
      EXPECT_EQ(h.count, 0u);
    }
}

}  // namespace
}  // namespace dc::sim
