// Simulator tests: the machine enforces the paper's communication model
// (messages travel only along links; each node sends <= 1 and receives <= 1
// per cycle) and counts steps faithfully.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "collectives/allgather.hpp"
#include "core/block_sort.hpp"
#include "sim/machine.hpp"
#include "sim/metrics.hpp"
#include "sim/oblivious.hpp"
#include "support/thread_pool.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/recursive_dual_cube.hpp"

// Allocation counter backing the zero-allocation steady-state tests below.
// Replacing the global (unaligned) operator new/delete pair is enough: all
// of the simulator's scratch — vectors of optionals, the atomic claim
// arrays, the pooled inbox buffers — goes through these.
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};
}  // namespace

namespace {
void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

// GCC pairs allocation with deallocation functions by name and warns that
// our replacements hand malloc'd pointers to free; that pairing is the
// whole point here, so silence the check for these definitions.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dc::sim {
namespace {

TEST(Machine, DeliversAlongEdges) {
  const net::Hypercube q(3);
  Machine m(q);
  auto inbox = m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), static_cast<int>(u)};
  });
  for (net::NodeId u = 0; u < q.node_count(); ++u) {
    ASSERT_TRUE(inbox[u].has_value());
    EXPECT_EQ(*inbox[u], static_cast<int>(bits::flip(u, 0)));
  }
  EXPECT_EQ(m.counters().comm_cycles, 1u);
  EXPECT_EQ(m.counters().messages, q.node_count());
}

TEST(Machine, RejectsNonEdgeSend) {
  const net::Hypercube q(3);
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u != 0) return std::nullopt;
                 return Send<int>{3, 1};  // 0 -> 3 differs in two bits
               }),
               SimError);
}

TEST(Machine, RejectsOutOfRangeDestination) {
  const net::Hypercube q(2);
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u != 0) return std::nullopt;
                 return Send<int>{99, 1};
               }),
               SimError);
}

TEST(Machine, RejectsDoubleReceive) {
  const net::Hypercube q(2);  // node 0 has neighbors 1 and 2
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u == 1 || u == 2) return Send<int>{0, 7};
                 return std::nullopt;
               }),
               SimError);
}

TEST(Machine, RejectsSelfSend) {
  const net::Hypercube q(2);
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u != 0) return std::nullopt;
                 return Send<int>{0, 1};
               }),
               SimError);
}

TEST(Machine, ValidationCanBeDisabled) {
  const net::Hypercube q(3);
  Machine m(q, /*validate=*/false);
  // Non-edge send passes (port discipline still applies).
  auto inbox = m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
    if (u != 0) return std::nullopt;
    return Send<int>{7, 5};
  });
  EXPECT_TRUE(inbox[7].has_value());
}

TEST(Machine, CountsComputeStepsAndOps) {
  const net::Hypercube q(3);
  Machine m(q);
  m.compute_step([&](net::NodeId) { m.add_ops(1); });
  m.compute_step([&](net::NodeId) {});
  const auto c = m.counters();
  EXPECT_EQ(c.comp_steps, 2u);
  EXPECT_EQ(c.ops, q.node_count());
  EXPECT_EQ(c.comm_cycles, 0u);
}

TEST(Machine, ForEachNodeIsUncounted) {
  const net::Hypercube q(2);
  Machine m(q);
  int touched = 0;
  m.for_each_node([&](net::NodeId) { ++touched; });
  EXPECT_EQ(touched, 4);
  EXPECT_EQ(m.counters(), Counters{});
}

TEST(Machine, ResetClearsCounters) {
  const net::Hypercube q(2);
  Machine m(q);
  m.compute_step([](net::NodeId) {});
  m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), 0};
  });
  m.reset_counters();
  EXPECT_EQ(m.counters(), Counters{});
}

TEST(Machine, TraceRecordsPerCycleMessageCounts) {
  const net::Hypercube q(2);
  Machine m(q);
  m.enable_trace();
  m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), 0};
  });
  m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
    if (u != 0) return std::nullopt;
    return Send<int>{1, 0};
  });
  ASSERT_EQ(m.messages_per_cycle().size(), 2u);
  EXPECT_EQ(m.messages_per_cycle()[0], 4u);
  EXPECT_EQ(m.messages_per_cycle()[1], 1u);
}

TEST(Machine, PairwiseExchangeOnDualCubeCross) {
  const net::DualCube d(3);
  Machine m(d);
  auto inbox = m.comm_cycle<net::NodeId>([&](net::NodeId u) {
    return Send<net::NodeId>{d.cross_neighbor(u), u};
  });
  for (net::NodeId u = 0; u < d.node_count(); ++u) {
    ASSERT_TRUE(inbox[u].has_value());
    EXPECT_EQ(*inbox[u], d.cross_neighbor(u));
  }
}

TEST(Machine, NonEdgeSendMessageIsExact) {
  const net::Hypercube q(3);
  Machine m(q);
  try {
    m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
      if (u != 0) return std::nullopt;
      return Send<int>{3, 1};  // 0 -> 3 differs in two bits
    });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(e.what(), "node 0 sent to 3 but Q_3 has no such link");
  }
}

TEST(Machine, OutOfRangeSendMessageIsExact) {
  const net::Hypercube q(2);
  Machine m(q);
  try {
    m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
      if (u != 1) return std::nullopt;
      return Send<int>{99, 1};
    });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(e.what(), "node 1 sent to out-of-range node 99");
  }
}

TEST(Machine, OnePortViolationReportsLowestSenderPair) {
  const net::Hypercube q(3);
  Machine m(q);
  // Nodes 1, 2 and 4 all target node 0. The violation re-scan walks senders
  // in ascending order, so node 1 claims port 0 first and the conflict is
  // charged to receiver 0 — the same message every time.
  try {
    m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
      if (u == 1 || u == 2 || u == 4) return Send<int>{0, 7};
      return std::nullopt;
    });
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_STREQ(
        e.what(),
        "1-port violation: node 0 would receive two messages in one cycle");
  }
}

TEST(Machine, OnePortViolationIsDeterministicUnderConcurrency) {
  const net::Hypercube q(5);
  ThreadPool pool(4);
  Machine m(q);
  m.set_thread_pool(&pool);
  m.set_parallel_grain(1);  // force parallel delivery even for 32 nodes
  // Every node > 0 sends to itself with the lowest set bit cleared (always
  // a hypercube edge). Node 0 is targeted by all five powers of two, nodes
  // like 2 by one sender — plenty of conflicts racing across workers. The
  // reported violation must nevertheless be the one the sequential re-scan
  // finds first, independent of thread interleaving.
  for (int rep = 0; rep < 10; ++rep) {
    try {
      m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
        if (u == 0) return std::nullopt;
        return Send<int>{u & (u - 1), 1};
      });
      FAIL() << "expected SimError";
    } catch (const SimError& e) {
      EXPECT_STREQ(
          e.what(),
          "1-port violation: node 0 would receive two messages in one cycle");
    }
  }
}

TEST(Machine, EdgeLoadCountsUnderConcurrentDelivery) {
  const net::Hypercube q(6);
  ThreadPool pool(4);
  Machine m(q);
  m.set_thread_pool(&pool);
  m.set_parallel_grain(1);  // force parallel delivery
  m.enable_edge_load();
  constexpr std::uint64_t kRounds = 5;
  for (std::uint64_t r = 0; r < kRounds; ++r) {
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      m.comm_cycle<int>(
          [&](net::NodeId u) { return Send<int>{q.neighbor(u, i), 0}; });
    }
  }
  for (net::NodeId u = 0; u < q.node_count(); ++u) {
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      EXPECT_EQ(m.edge_load(u, q.neighbor(u, i)), kRounds);
    }
  }
  EXPECT_EQ(m.edge_load(0, 3), 0u);  // not an edge
}

TEST(Machine, ConcurrentlyLiveInboxesKeepDistinctStorage) {
  const net::Hypercube q(2);
  Machine m(q);
  auto first = m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), static_cast<int>(u)};
  });
  auto second = m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 1), static_cast<int>(u) + 100};
  });
  for (net::NodeId u = 0; u < q.node_count(); ++u) {
    ASSERT_TRUE(first[u].has_value());
    ASSERT_TRUE(second[u].has_value());
    EXPECT_EQ(*first[u], static_cast<int>(bits::flip(u, 0)));
    EXPECT_EQ(*second[u], static_cast<int>(bits::flip(u, 1)) + 100);
  }
}

TEST(Machine, SteadyStateCommCycleDoesNotAllocate) {
  const net::Hypercube q(6);
  Machine m(q);
  // Warm-up builds the adjacency snapshot, the typed arena and one pooled
  // inbox buffer; every later cycle must reuse them.
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto warm = m.comm_cycle<std::uint64_t>([&](net::NodeId u) {
      return Send<std::uint64_t>{q.neighbor(u, i), u};
    });
  }
  const std::uint64_t before = g_allocation_count.load();
  std::uint64_t delivered = 0;
  for (unsigned rep = 0; rep < 4; ++rep) {
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto inbox = m.comm_cycle<std::uint64_t>([&](net::NodeId u) {
        return Send<std::uint64_t>{q.neighbor(u, i), u + 1};
      });
      for (net::NodeId u = 0; u < q.node_count(); ++u) {
        delivered += inbox[u].has_value() ? 1u : 0u;
      }
    }
  }
  EXPECT_EQ(g_allocation_count.load(), before);
  EXPECT_EQ(delivered, 4u * q.dimensions() * q.node_count());
}

TEST(Machine, SteadyStateCommCycleWithTracingDoesNotAllocate) {
  const net::Hypercube q(6);
  Machine m(q);
  // The recorder's rings are allocated here, before the counted region;
  // every traced event after warm-up is stores into preallocated memory.
  m.enable_trace();
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto warm = m.comm_cycle<std::uint64_t>([&](net::NodeId u) {
      return Send<std::uint64_t>{q.neighbor(u, i), u};
    });
  }
  const std::uint64_t before = g_allocation_count.load();
  std::uint64_t delivered = 0;
  for (unsigned rep = 0; rep < 4; ++rep) {
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto inbox = m.comm_cycle<std::uint64_t>([&](net::NodeId u) {
        return Send<std::uint64_t>{q.neighbor(u, i), u + 1};
      });
      for (net::NodeId u = 0; u < q.node_count(); ++u) {
        delivered += inbox[u].has_value() ? 1u : 0u;
      }
    }
  }
  EXPECT_EQ(g_allocation_count.load(), before);
  EXPECT_EQ(delivered, 4u * q.dimensions() * q.node_count());
  // Query only after the allocation assertion: the compatibility view
  // itself builds a vector.
  EXPECT_EQ(m.messages_per_cycle().size(), 5u * q.dimensions());
}

TEST(Machine, SteadyStateCommCycleWithMetricsArmedDoesNotAllocate) {
  MetricsRegistry::arm();
  const net::Hypercube q(6);
  // Constructed while armed: the machine resolves its histogram/counter
  // pointers now; per-cycle updates are relaxed atomic ops on them.
  Machine m(q);
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto warm = m.comm_cycle<std::uint64_t>([&](net::NodeId u) {
      return Send<std::uint64_t>{q.neighbor(u, i), u};
    });
  }
  const auto& hist = MetricsRegistry::instance().histogram(
      "sim.messages_per_cycle", Histogram::pow2_bounds(24));
  const std::uint64_t observed_before = hist.count();
  const std::uint64_t before = g_allocation_count.load();
  std::uint64_t delivered = 0;
  for (unsigned rep = 0; rep < 4; ++rep) {
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto inbox = m.comm_cycle<std::uint64_t>([&](net::NodeId u) {
        return Send<std::uint64_t>{q.neighbor(u, i), u + 1};
      });
      for (net::NodeId u = 0; u < q.node_count(); ++u) {
        delivered += inbox[u].has_value() ? 1u : 0u;
      }
    }
  }
  EXPECT_EQ(g_allocation_count.load(), before);
  MetricsRegistry::disarm();
  EXPECT_EQ(delivered, 4u * q.dimensions() * q.node_count());
  EXPECT_EQ(hist.count(), observed_before + 4u * q.dimensions());
}

TEST(Machine, ScheduledReplayDoesNotAllocate) {
  const net::Hypercube q(6);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  // Record the rotating-dimension exchange once (cache key built here, so
  // its strings stay outside the counted loop) and fetch the compiled
  // schedule; warm-up also pools the inbox buffer.
  ObliviousSection section(m, "sim_test_scheduled_alloc", {});
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto warm = section.exchange<std::uint64_t>(
        [&](net::NodeId u) { return q.neighbor(u, i); },
        [](net::NodeId u) { return u; });
  }
  section.commit();
  const auto schedule = ScheduleCache::instance().find(section.key());
  ASSERT_NE(schedule, nullptr);
  ASSERT_EQ(schedule->cycle_count(), q.dimensions());
  const std::uint64_t before = g_allocation_count.load();
  std::uint64_t delivered = 0;
  for (unsigned rep = 0; rep < 4; ++rep) {
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto inbox = m.comm_cycle_scheduled<std::uint64_t>(
          schedule->cycle(i), [](net::NodeId u) { return u + 1; });
      for (net::NodeId u = 0; u < q.node_count(); ++u) {
        delivered += inbox[u].has_value() ? 1u : 0u;
      }
    }
  }
  EXPECT_EQ(g_allocation_count.load(), before);
  EXPECT_EQ(delivered, 4u * q.dimensions() * q.node_count());
}

TEST(Machine, ScheduledBlockReplayDoesNotAllocate) {
  const net::Hypercube q(6);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  constexpr std::size_t kWidth = 8;
  const auto src = [](net::NodeId u, std::uint64_t* dst) {
    for (std::size_t k = 0; k < kWidth; ++k) dst[k] = u + k;
  };
  // Record the rotating-dimension block exchange once, fetch the compiled
  // schedule, then run one replay pass so the pooled plane reaches its
  // high-water size. Every counted iteration after that must reuse it.
  ObliviousSection section(m, "sim_test_block_alloc", {});
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto warm = section.exchange_blocks<std::uint64_t>(
        kWidth, [&](net::NodeId u) { return q.neighbor(u, i); }, src);
  }
  section.commit();
  const auto schedule = ScheduleCache::instance().find(section.key());
  ASSERT_NE(schedule, nullptr);
  ASSERT_EQ(schedule->cycle_count(), q.dimensions());
  for (unsigned i = 0; i < q.dimensions(); ++i) {
    auto warm = m.comm_cycle_scheduled_blocks<std::uint64_t>(
        schedule->cycle(i), kWidth, src);
  }
  const std::uint64_t before = g_allocation_count.load();
  std::uint64_t delivered = 0;
  for (unsigned rep = 0; rep < 4; ++rep) {
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto inbox = m.comm_cycle_scheduled_blocks<std::uint64_t>(
          schedule->cycle(i), kWidth,
          [](net::NodeId u, std::uint64_t* dst) {
            for (std::size_t k = 0; k < kWidth; ++k) dst[k] = u + k + 1;
          });
      for (net::NodeId u = 0; u < q.node_count(); ++u) {
        if (!inbox.has(u)) continue;
        ++delivered;
        EXPECT_EQ(inbox.block(u)[0], bits::flip(u, i) + 1);
        EXPECT_EQ(inbox.block(u)[kWidth - 1], bits::flip(u, i) + kWidth);
      }
    }
  }
  EXPECT_EQ(g_allocation_count.load(), before);
  EXPECT_EQ(delivered, 4u * q.dimensions() * q.node_count());
}

// Per-directed-edge load vector in a deterministic (CSR) order.
std::vector<std::uint64_t> all_edge_loads(const Machine& m,
                                          const net::Topology& t) {
  std::vector<std::uint64_t> loads;
  for (net::NodeId u = 0; u < t.node_count(); ++u) {
    for (const net::NodeId v : t.neighbors(u)) loads.push_back(m.edge_load(u, v));
  }
  return loads;
}

TEST(Machine, BlockSortSoAMatchesAoS) {
  const net::RecursiveDualCube r(2);
  const std::size_t block = 4;
  std::vector<u64> data(r.node_count() * block);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = (i * 2654435761ull) % 997;

  Machine aos(r);
  aos.enable_edge_load();
  auto a = data;
  core::block_sort_aos(aos, r, a, block);

  Machine soa(r);
  soa.enable_edge_load();
  auto s = data;
  core::block_sort(soa, r, s, block);

  EXPECT_EQ(s, a);
  EXPECT_EQ(soa.counters(), aos.counters());
  EXPECT_EQ(all_edge_loads(soa, r), all_edge_loads(aos, r));
}

TEST(Machine, DualAllgatherSoAMatchesAoS) {
  const net::DualCube d(3);
  std::vector<u64> values(d.node_count());
  for (std::size_t u = 0; u < values.size(); ++u) values[u] = u * 10 + 7;

  Machine aos(d);
  aos.enable_edge_load();
  const auto a = collectives::dual_allgather_aos(aos, d, values);

  Machine soa(d);
  soa.enable_edge_load();
  const auto s = collectives::dual_allgather(soa, d, values);

  EXPECT_EQ(s, a);
  EXPECT_EQ(soa.counters(), aos.counters());
  EXPECT_EQ(all_edge_loads(soa, d), all_edge_loads(aos, d));
}

TEST(Machine, ArenaReuseAcrossPayloadTypesDoesNotAllocate) {
  const net::Hypercube q(4);
  Machine m(q);
  const auto int_plan = [&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), static_cast<int>(u)};
  };
  const auto double_plan = [&](net::NodeId u) {
    return Send<double>{q.neighbor(u, 1), static_cast<double>(u) * 0.5};
  };
  // Warm-up: one cycle per payload type creates that type's arena.
  { auto warm = m.comm_cycle<int>(int_plan); }
  { auto warm = m.comm_cycle<double>(double_plan); }
  const std::uint64_t before = g_allocation_count.load();
  for (int rep = 0; rep < 8; ++rep) {
    auto ints = m.comm_cycle<int>(int_plan);
    auto doubles = m.comm_cycle<double>(double_plan);
    ASSERT_TRUE(ints[0].has_value());
    ASSERT_TRUE(doubles[0].has_value());
    EXPECT_EQ(*ints[0], static_cast<int>(bits::flip(net::NodeId{0}, 0)));
    EXPECT_EQ(*doubles[0],
              static_cast<double>(bits::flip(net::NodeId{0}, 1)) * 0.5);
  }
  EXPECT_EQ(g_allocation_count.load(), before);
}

TEST(Machine, MovesNonCopyablePayloads) {
  const net::Hypercube q(1);
  Machine m(q);
  auto inbox = m.comm_cycle<std::unique_ptr<int>>([&](net::NodeId u) {
    return Send<std::unique_ptr<int>>{bits::flip(u, 0),
                                      std::make_unique<int>(static_cast<int>(u))};
  });
  ASSERT_TRUE(inbox[0].has_value());
  EXPECT_EQ(**inbox[0], 1);
}

}  // namespace
}  // namespace dc::sim
