// Simulator tests: the machine enforces the paper's communication model
// (messages travel only along links; each node sends <= 1 and receives <= 1
// per cycle) and counts steps faithfully.
#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace dc::sim {
namespace {

TEST(Machine, DeliversAlongEdges) {
  const net::Hypercube q(3);
  Machine m(q);
  auto inbox = m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), static_cast<int>(u)};
  });
  for (net::NodeId u = 0; u < q.node_count(); ++u) {
    ASSERT_TRUE(inbox[u].has_value());
    EXPECT_EQ(*inbox[u], static_cast<int>(bits::flip(u, 0)));
  }
  EXPECT_EQ(m.counters().comm_cycles, 1u);
  EXPECT_EQ(m.counters().messages, q.node_count());
}

TEST(Machine, RejectsNonEdgeSend) {
  const net::Hypercube q(3);
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u != 0) return std::nullopt;
                 return Send<int>{3, 1};  // 0 -> 3 differs in two bits
               }),
               SimError);
}

TEST(Machine, RejectsOutOfRangeDestination) {
  const net::Hypercube q(2);
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u != 0) return std::nullopt;
                 return Send<int>{99, 1};
               }),
               SimError);
}

TEST(Machine, RejectsDoubleReceive) {
  const net::Hypercube q(2);  // node 0 has neighbors 1 and 2
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u == 1 || u == 2) return Send<int>{0, 7};
                 return std::nullopt;
               }),
               SimError);
}

TEST(Machine, RejectsSelfSend) {
  const net::Hypercube q(2);
  Machine m(q);
  EXPECT_THROW(m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
                 if (u != 0) return std::nullopt;
                 return Send<int>{0, 1};
               }),
               SimError);
}

TEST(Machine, ValidationCanBeDisabled) {
  const net::Hypercube q(3);
  Machine m(q, /*validate=*/false);
  // Non-edge send passes (port discipline still applies).
  auto inbox = m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
    if (u != 0) return std::nullopt;
    return Send<int>{7, 5};
  });
  EXPECT_TRUE(inbox[7].has_value());
}

TEST(Machine, CountsComputeStepsAndOps) {
  const net::Hypercube q(3);
  Machine m(q);
  m.compute_step([&](net::NodeId) { m.add_ops(1); });
  m.compute_step([&](net::NodeId) {});
  const auto c = m.counters();
  EXPECT_EQ(c.comp_steps, 2u);
  EXPECT_EQ(c.ops, q.node_count());
  EXPECT_EQ(c.comm_cycles, 0u);
}

TEST(Machine, ForEachNodeIsUncounted) {
  const net::Hypercube q(2);
  Machine m(q);
  int touched = 0;
  m.for_each_node([&](net::NodeId) { ++touched; });
  EXPECT_EQ(touched, 4);
  EXPECT_EQ(m.counters(), Counters{});
}

TEST(Machine, ResetClearsCounters) {
  const net::Hypercube q(2);
  Machine m(q);
  m.compute_step([](net::NodeId) {});
  m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), 0};
  });
  m.reset_counters();
  EXPECT_EQ(m.counters(), Counters{});
}

TEST(Machine, TraceRecordsPerCycleMessageCounts) {
  const net::Hypercube q(2);
  Machine m(q);
  m.enable_trace();
  m.comm_cycle<int>([&](net::NodeId u) {
    return Send<int>{q.neighbor(u, 0), 0};
  });
  m.comm_cycle<int>([&](net::NodeId u) -> std::optional<Send<int>> {
    if (u != 0) return std::nullopt;
    return Send<int>{1, 0};
  });
  ASSERT_EQ(m.messages_per_cycle().size(), 2u);
  EXPECT_EQ(m.messages_per_cycle()[0], 4u);
  EXPECT_EQ(m.messages_per_cycle()[1], 1u);
}

TEST(Machine, PairwiseExchangeOnDualCubeCross) {
  const net::DualCube d(3);
  Machine m(d);
  auto inbox = m.comm_cycle<net::NodeId>([&](net::NodeId u) {
    return Send<net::NodeId>{d.cross_neighbor(u), u};
  });
  for (net::NodeId u = 0; u < d.node_count(); ++u) {
    ASSERT_TRUE(inbox[u].has_value());
    EXPECT_EQ(*inbox[u], d.cross_neighbor(u));
  }
}

TEST(Machine, MovesNonCopyablePayloads) {
  const net::Hypercube q(1);
  Machine m(q);
  auto inbox = m.comm_cycle<std::unique_ptr<int>>([&](net::NodeId u) {
    return Send<std::unique_ptr<int>>{bits::flip(u, 0),
                                      std::make_unique<int>(static_cast<int>(u))};
  });
  ASSERT_TRUE(inbox[0].has_value());
  EXPECT_EQ(**inbox[0], 1);
}

}  // namespace
}  // namespace dc::sim
