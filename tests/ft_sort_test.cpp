// Fault-tolerant D_sort (core/ft_dual_sort.hpp).
//
// The guarantees under test:
//   * ft_dual_sort is correct for EVERY node fault set below the
//     connectivity bound — exhaustively on D_2 (all sets of size < 2) and
//     D_3 (all 529 sets of size < 3): the surviving keys come out sorted
//     in the leading logical labels (ascending; trailing under
//     descending), lost slots carry nullopt;
//   * a healthy (empty-plan) run is the paper's schedule exactly:
//     6n^2 - 7n + 2 comm cycles, zero rerouted messages, and the same
//     permutation dual_sort produces;
//   * link fault sets below the edge-connectivity bound lose no keys;
//   * resilient_dual_sort completes a mid-run link-flap timeline on D_4
//     via retry-with-replan with the same result as the healthy run,
//     with zero compiled-schedule replays (the acceptance scenario);
//   * a mid-run node death restarts the sort with the accumulated dead
//     set; the dead node's key is the only one lost, even if it rejoins.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/dual_sort.hpp"
#include "core/ft_dual_sort.hpp"
#include "sim/faults.hpp"
#include "sim/machine.hpp"
#include "sim/recovery.hpp"
#include "sim/schedule.hpp"
#include "support/rng.hpp"
#include "topology/recursive_dual_cube.hpp"

namespace {

using dc::Rng;
using dc::net::NodeId;
using dc::net::RecursiveDualCube;
using dc::sim::FaultPlan;
using dc::sim::FaultPolicy;
using dc::sim::FaultTimeline;
using dc::sim::Machine;
using dc::sim::RecoveryDriver;

std::uint64_t healthy_sort_cycles(unsigned n) {
  return 6ull * n * n - 7ull * n + 2;
}

std::vector<std::uint32_t> shuffled_keys(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> keys(n);
  for (std::size_t i = 0; i < n; ++i)
    keys[i] = static_cast<std::uint32_t>(i * 3 + 1);
  Rng rng(seed);
  for (std::size_t i = n; i > 1; --i)
    std::swap(keys[i - 1], keys[rng.below(i)]);
  return keys;
}

/// The full correctness check for one fault set: survivors sorted into
/// the leading labels (ascending) or trailing labels (descending), lost
/// slots nullopt, machine faults respected under `policy` when attached.
void expect_sort_correct(const RecursiveDualCube& r,
                         const std::vector<std::uint32_t>& keys,
                         const FaultPlan& plan, FaultPolicy policy,
                         bool attach, bool descending = false) {
  Machine m(r);
  if (attach)
    m.attach_faults(std::make_shared<FaultPlan>(plan), policy);
  dc::sim::FtReport rep;
  const auto got = dc::core::ft_dual_sort(m, r, keys, plan, descending, &rep);
  ASSERT_EQ(got.size(), keys.size());
  // Survivors = every key except the dead labels' originals, sorted.
  std::vector<std::uint32_t> survivors;
  std::vector<std::uint8_t> is_dead(r.node_count(), 0);
  for (const NodeId u : plan.dead_nodes()) is_dead[u] = 1;
  for (NodeId u = 0; u < r.node_count(); ++u)
    if (!is_dead[u]) survivors.push_back(keys[u]);
  std::sort(survivors.begin(), survivors.end());
  if (descending) std::reverse(survivors.begin(), survivors.end());
  const std::size_t live = survivors.size();
  const std::size_t holes = keys.size() - live;
  // Ascending: survivors lead, missing (+inf) sink to the tail.
  // Descending: missing lead, survivors trail.
  const std::size_t first_live = descending ? holes : 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const bool should_hold =
        i >= first_live && i < first_live + live;
    if (should_hold) {
      ASSERT_TRUE(got[i].has_value()) << "slot " << i;
      EXPECT_EQ(*got[i], survivors[i - first_live]) << "slot " << i;
    } else {
      EXPECT_FALSE(got[i].has_value()) << "slot " << i;
    }
  }
  EXPECT_EQ(rep.base_cycles, healthy_sort_cycles(r.order()));
  if (plan.empty()) {
    EXPECT_EQ(rep.repaired, 0u);
    EXPECT_EQ(m.counters().messages_rerouted, 0u);
  }
}

TEST(FtSort, HealthyRunMatchesDualSortAtThePapersCost) {
  for (unsigned n = 2; n <= 3; ++n) {
    const RecursiveDualCube r(n);
    const auto keys = shuffled_keys(r.node_count(), 11 * n);
    for (const bool descending : {false, true}) {
      Machine reference(r);
      auto sorted = keys;
      dc::core::dual_sort(reference, r, sorted, descending);
      Machine m(r);
      const auto got =
          dc::core::ft_dual_sort(m, r, keys, FaultPlan{}, descending);
      for (NodeId u = 0; u < r.node_count(); ++u) {
        ASSERT_TRUE(got[u].has_value()) << "node " << u;
        EXPECT_EQ(*got[u], sorted[u]) << "node " << u;
      }
      EXPECT_EQ(m.counters().comm_cycles, healthy_sort_cycles(n))
          << "fault tolerance must cost nothing when nothing is broken";
      EXPECT_EQ(m.counters().comm_cycles, reference.counters().comm_cycles)
          << "6n^2-7n+2, same as the plain network";
      EXPECT_EQ(m.counters().messages_rerouted, 0u);
    }
  }
}

TEST(FtSort, ExhaustiveEveryNodeFaultSetBelowTheBoundOnD2) {
  // D_2 is 2-connected: every fault set of size < 2, from both
  // directions, attached under both policies.
  const RecursiveDualCube r(2);
  const auto keys = shuffled_keys(r.node_count(), 42);
  expect_sort_correct(r, keys, FaultPlan{}, FaultPolicy::kStrict, true);
  for (NodeId a = 0; a < r.node_count(); ++a) {
    FaultPlan plan;
    plan.kill_node(a);
    expect_sort_correct(r, keys, plan, FaultPolicy::kStrict, true);
    expect_sort_correct(r, keys, plan, FaultPolicy::kDegrade, true);
    expect_sort_correct(r, keys, plan, FaultPolicy::kStrict, true,
                        /*descending=*/true);
    expect_sort_correct(r, keys, plan, FaultPolicy::kStrict, /*attach=*/false);
  }
}

TEST(FtSort, ExhaustiveEveryNodeFaultSetBelowTheBoundOnD3) {
  // D_3 is 3-connected: all 32 singles and all 496 pairs. Strict
  // everywhere (it is the stronger check: any fault touch aborts);
  // degrade on singles and a deterministic quarter of the pairs.
  const RecursiveDualCube r(3);
  const auto keys = shuffled_keys(r.node_count(), 7);
  expect_sort_correct(r, keys, FaultPlan{}, FaultPolicy::kStrict, true);
  for (NodeId a = 0; a < r.node_count(); ++a) {
    FaultPlan one;
    one.kill_node(a);
    expect_sort_correct(r, keys, one, FaultPolicy::kStrict, true);
    expect_sort_correct(r, keys, one, FaultPolicy::kDegrade, true);
    for (NodeId b = a + 1; b < r.node_count(); ++b) {
      FaultPlan two;
      two.kill_node(a).kill_node(b);
      expect_sort_correct(r, keys, two, FaultPolicy::kStrict, true);
      if ((a + b) % 4 == 0)
        expect_sort_correct(r, keys, two, FaultPolicy::kDegrade, true);
    }
  }
}

TEST(FtSort, LinkFaultSetsBelowTheBoundLoseNoKeys) {
  // Edge connectivity of D_n equals n: below it, every key survives and
  // the result is the fully sorted sequence. D_3: every single link and
  // a seeded sample of pairs.
  const RecursiveDualCube r(3);
  const auto keys = shuffled_keys(r.node_count(), 19);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < r.node_count(); ++u)
    for (const NodeId v : r.neighbors(u))
      if (u < v) edges.emplace_back(u, v);
  ASSERT_EQ(edges.size(), r.node_count() * r.order() / 2);
  for (const auto& [u, v] : edges) {
    FaultPlan plan;
    plan.kill_link(u, v);
    expect_sort_correct(r, keys, plan, FaultPolicy::kStrict, true);
  }
  Rng rng(99);
  for (int trial = 0; trial < 24; ++trial) {
    const auto& e1 = edges[rng.below(edges.size())];
    const auto& e2 = edges[rng.below(edges.size())];
    if (e1 == e2) continue;
    FaultPlan plan;
    plan.kill_link(e1.first, e1.second);
    plan.kill_link(e2.first, e2.second);
    expect_sort_correct(r, keys, plan, FaultPolicy::kStrict, true);
  }
}

TEST(FtSort, MixedNodeAndLinkFaultsOnD3) {
  const RecursiveDualCube r(3);
  const auto keys = shuffled_keys(r.node_count(), 23);
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const FaultPlan nodes = FaultPlan::random_nodes(r, 1, 800 + trial);
    FaultPlan plan = nodes;
    // Add one link between live nodes.
    Rng rng(600 + trial);
    while (true) {
      const NodeId u = rng.below(r.node_count());
      const auto nbrs = r.neighbors(u);
      const NodeId v = nbrs[rng.below(nbrs.size())];
      if (!nodes.node_dead(u, 0) && !nodes.node_dead(v, 0)) {
        plan.kill_link(u, v);
        break;
      }
    }
    expect_sort_correct(r, keys, plan, FaultPolicy::kStrict, true);
    expect_sort_correct(r, keys, plan, FaultPolicy::kDegrade, true);
  }
}

// ------------------------------------------------ dynamic timelines

std::shared_ptr<const FaultTimeline> share(FaultTimeline t) {
  return std::make_shared<const FaultTimeline>(std::move(t));
}

TEST(ResilientSort, MidRunLinkFlapOnD4MatchesTheHealthyRun) {
  // The acceptance scenario: a D_4 sort (128 nodes, 70 healthy cycles)
  // with the 0-1 cross edge flapping mid-run. The strict filter aborts
  // the level in flight, the driver replans on the flapped epoch (BFS
  // detours around the dead link) and retries; the final result must be
  // byte-identical to the healthy sort, with zero compiled replays.
  const RecursiveDualCube r(4);
  const auto keys = shuffled_keys(r.node_count(), 4096);
  Machine reference(r);
  auto sorted = keys;
  dc::core::dual_sort(reference, r, sorted);

  FaultTimeline t;
  t.link_down(0, 1, 18).link_up(0, 1, 24);
  Machine m(r);
  const auto cache_before = dc::sim::ScheduleCache::instance().stats();
  RecoveryDriver drv(m, share(std::move(t)));
  const auto got = dc::core::resilient_dual_sort(drv, r, keys);
  for (NodeId u = 0; u < r.node_count(); ++u) {
    ASSERT_TRUE(got[u].has_value()) << "node " << u;
    EXPECT_EQ(*got[u], sorted[u]) << "node " << u;
  }
  // The flap genuinely interrupted the run and recovery genuinely ran.
  EXPECT_GE(drv.report().retries, 1u);
  EXPECT_EQ(drv.report().replans, drv.report().retries);
  EXPECT_EQ(drv.report().restarts, 0u) << "no node died: no restart";
  EXPECT_FALSE(drv.report().degraded);
  EXPECT_GT(m.counters().comm_cycles, healthy_sort_cycles(4))
      << "recovery costs extra cycles";
  // Zero stale-schedule replays: the machine interpreted every cycle and
  // never touched the schedule cache.
  EXPECT_EQ(m.replayed_cycles(), 0u);
  const auto cache_after = dc::sim::ScheduleCache::instance().stats();
  EXPECT_EQ(cache_after.hits, cache_before.hits);
}

TEST(ResilientSort, MidRunNodeDeathRestartsWithTheAccumulatedDeadSet) {
  const RecursiveDualCube r(3);
  const auto keys = shuffled_keys(r.node_count(), 31);
  // Node 5 dies at cycle 15 — mid-level-3 of the D_3 network — and
  // rejoins at 40. Its key is lost anyway: the restart plans it dead
  // (its memory did not survive), everyone else's keys are recovered by
  // re-running from input placement.
  FaultTimeline t;
  t.node_down(5, 15).node_up(5, 40);
  Machine m(r);
  RecoveryDriver drv(m, share(std::move(t)));
  const auto got = dc::core::resilient_dual_sort(drv, r, keys);
  EXPECT_GE(drv.report().restarts, 1u);
  std::vector<std::uint32_t> survivors;
  for (NodeId u = 0; u < r.node_count(); ++u)
    if (u != 5) survivors.push_back(keys[u]);
  std::sort(survivors.begin(), survivors.end());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    ASSERT_TRUE(got[i].has_value()) << "slot " << i;
    EXPECT_EQ(*got[i], survivors[i]) << "slot " << i;
  }
  EXPECT_FALSE(got.back().has_value())
      << "one key was lost: the tail slot is a hole";
}

TEST(ResilientSort, PreRunDeadNodeNeedsNoRetries) {
  const RecursiveDualCube r(3);
  const auto keys = shuffled_keys(r.node_count(), 67);
  FaultTimeline t;
  t.node_down(9, 0);
  Machine m(r);
  RecoveryDriver drv(m, share(std::move(t)));
  const auto got = dc::core::resilient_dual_sort(drv, r, keys);
  EXPECT_EQ(drv.report().retries, 0u)
      << "a fault known before planning is routed around, not retried";
  EXPECT_EQ(drv.report().restarts, 0u);
  std::vector<std::uint32_t> survivors;
  for (NodeId u = 0; u < r.node_count(); ++u)
    if (u != 9) survivors.push_back(keys[u]);
  std::sort(survivors.begin(), survivors.end());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    ASSERT_TRUE(got[i].has_value());
    EXPECT_EQ(*got[i], survivors[i]);
  }
}

}  // namespace
