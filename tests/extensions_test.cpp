// Tests for the remaining extensions: the store-and-forward router, the
// all-gather and scatter collectives, the wrapped butterfly, fault-tolerant
// routing, and the dimension-exchange primitive on its own.
#include <gtest/gtest.h>

#include <numeric>
#include <unordered_set>

#include "collectives/allgather.hpp"
#include "core/dimension_exchange.hpp"
#include "sim/store_forward.hpp"
#include "support/rng.hpp"
#include "topology/butterfly.hpp"
#include "topology/fault_routing.hpp"
#include "topology/graph.hpp"
#include "topology/routing.hpp"

namespace dc {
namespace {

using net::NodeId;

// ----------------------------------------------------- dimension exchange

class DimensionExchangeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DimensionExchangeTest, EveryDimensionDeliversPartnerValue) {
  const unsigned n = GetParam();
  const net::RecursiveDualCube r(n);
  std::vector<u64> value(r.node_count());
  std::iota(value.begin(), value.end(), 0);
  for (unsigned j = 0; j < r.label_bits(); ++j) {
    sim::Machine m(r);
    const auto recv = core::dimension_exchange(m, r, j, value);
    for (NodeId u = 0; u < r.node_count(); ++u)
      EXPECT_EQ(recv[u], bits::flip(u, j)) << "j=" << j << " u=" << u;
    EXPECT_EQ(m.counters().comm_cycles, j == 0 ? 1u : 3u)
        << "paper's 3-time-unit rule at dimension " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, DimensionExchangeTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(DimensionExchange, RejectsBadDimension) {
  const net::RecursiveDualCube r(2);
  sim::Machine m(r);
  std::vector<int> v(r.node_count(), 0);
  EXPECT_THROW(core::dimension_exchange(m, r, 3, v), CheckError);
}

// ------------------------------------------------- store-and-forward router

TEST(StoreForward, IdentityPermutationIsFree) {
  const net::DualCube d(3);
  sim::Machine m(d);
  std::vector<NodeId> dest(d.node_count());
  std::iota(dest.begin(), dest.end(), 0);
  const auto report = sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
    return net::route_dual_cube(d, s, v);
  });
  EXPECT_EQ(report.cycles, 0u);
  EXPECT_EQ(report.total_hops, 0u);
  EXPECT_EQ(report.packets, d.node_count());
}

TEST(StoreForward, CrossNeighborSwapTakesOneCycle) {
  const net::DualCube d(3);
  sim::Machine m(d);
  std::vector<NodeId> dest(d.node_count());
  for (NodeId u = 0; u < d.node_count(); ++u) dest[u] = d.cross_neighbor(u);
  const auto report = sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
    return net::route_dual_cube(d, s, v);
  });
  EXPECT_EQ(report.cycles, 1u);
  EXPECT_EQ(report.max_queue, 1u);
}

TEST(StoreForward, RandomPermutationsDrainOnBothNetworks) {
  Rng rng(6);
  for (unsigned n : {2u, 3u, 4u}) {
    const net::DualCube d(n);
    std::vector<NodeId> dest(d.node_count());
    std::iota(dest.begin(), dest.end(), 0);
    for (std::size_t i = dest.size(); i-- > 1;)
      std::swap(dest[i], dest[rng.below(i + 1)]);
    sim::Machine m(d);
    const auto report = sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
      return net::route_dual_cube(d, s, v);
    });
    EXPECT_EQ(report.packets, d.node_count());
    EXPECT_GE(report.cycles, 1u);
    // Every packet walked its shortest path; latency can exceed it only
    // through queueing, never below it.
    EXPECT_GE(report.avg_latency, 0.0);
    EXPECT_EQ(m.counters().comm_cycles, report.cycles);
  }
}

TEST(StoreForward, TotalHopsEqualSumOfDistances) {
  const net::DualCube d(3);
  sim::Machine m(d);
  std::vector<NodeId> dest(d.node_count());
  for (NodeId u = 0; u < d.node_count(); ++u)
    dest[u] = d.node_count() - 1 - u;
  u64 expected_hops = 0;
  for (NodeId u = 0; u < d.node_count(); ++u)
    expected_hops += d.distance(u, dest[u]);
  const auto report = sim::route_packets(m, dest, [&](NodeId s, NodeId v) {
    return net::route_dual_cube(d, s, v);
  });
  EXPECT_EQ(report.total_hops, expected_hops);
  EXPECT_GE(report.cycles, report.total_hops / d.node_count());
}

// ----------------------------------------------------- allgather / scatter

class AllgatherTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(AllgatherTest, EveryNodeEndsWithAllValues) {
  const unsigned n = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  std::vector<u64> values(d.node_count());
  std::iota(values.begin(), values.end(), 1000);
  const auto out = collectives::dual_allgather(m, d, values);
  for (NodeId u = 0; u < d.node_count(); ++u) EXPECT_EQ(out[u], values);
  EXPECT_EQ(m.counters().comm_cycles, 2 * n) << "diameter-step schedule";
}

INSTANTIATE_TEST_SUITE_P(Orders, AllgatherTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(CubeAllgather, BaselineTakesDCyclesAndDelivers) {
  const net::Hypercube q(5);
  sim::Machine m(q);
  std::vector<u64> values(q.node_count());
  std::iota(values.begin(), values.end(), 7);
  const auto out = collectives::cube_allgather(m, q, values);
  for (NodeId u = 0; u < q.node_count(); ++u) EXPECT_EQ(out[u], values);
  EXPECT_EQ(m.counters().comm_cycles, q.dimensions());
}

TEST(CubeAllgather, DualCubePaysOnlyOneExtraCycle) {
  // 2n cycles on D_n vs 2n-1 on Q_(2n-1): the all-gather analogue of the
  // prefix comparison.
  for (unsigned n : {2u, 3u, 4u}) {
    const net::DualCube d(n);
    const net::Hypercube q(2 * n - 1);
    std::vector<u64> values(d.node_count(), 3);
    sim::Machine md(d);
    collectives::dual_allgather(md, d, values);
    sim::Machine mq(q);
    collectives::cube_allgather(mq, q, values);
    EXPECT_EQ(md.counters().comm_cycles, mq.counters().comm_cycles + 1);
  }
}

TEST(Scatter, DeliversPersonalizedMessages) {
  const net::DualCube d(3);
  sim::Machine m(d);
  std::vector<u64> messages(d.node_count());
  std::iota(messages.begin(), messages.end(), 500);
  const auto [received, report] = collectives::dual_scatter(m, d, 5, messages);
  EXPECT_EQ(received, messages);
  EXPECT_EQ(report.packets, d.node_count() - 1);
  EXPECT_GE(report.cycles, d.node_count() - 1)
      << "the root's single send port is the bottleneck";
}

// ------------------------------------------------------------- butterfly

TEST(WrappedButterfly, Invariants) {
  for (unsigned k : {3u, 4u, 5u}) {
    const net::WrappedButterfly b(k);
    EXPECT_EQ(b.node_count(), k * bits::pow2(k));
    net::validate_graph(b);
    std::size_t deg = 0;
    EXPECT_TRUE(net::is_regular(b, &deg));
    EXPECT_EQ(deg, 4u);
    EXPECT_TRUE(net::is_connected(b));
  }
}

TEST(WrappedButterfly, CodecRoundTrips) {
  const net::WrappedButterfly b(4);
  for (NodeId u = 0; u < b.node_count(); ++u) {
    const auto [level, row] = b.decode(u);
    EXPECT_EQ(b.encode(level, row), u);
  }
}

TEST(WrappedButterfly, RejectsSmallOrders) {
  EXPECT_THROW(net::WrappedButterfly(2), CheckError);
}

// ------------------------------------------------- fault-tolerant routing

TEST(FaultRouting, NoFaultsEqualsClusterRoute) {
  const net::DualCube d(3);
  Rng rng(1);
  const std::unordered_set<NodeId> none;
  for (NodeId u = 0; u < d.node_count(); u += 3) {
    for (NodeId v = 0; v < d.node_count(); v += 5) {
      const auto r = net::route_dual_cube_fault_tolerant(d, u, v, none, rng);
      EXPECT_FALSE(r.used_fallback);
      EXPECT_EQ(r.path.size() - 1, d.distance(u, v));
    }
  }
}

TEST(FaultRouting, SurvivesUpToNMinus1Faults) {
  // D_n is n-connected: any n-1 node faults leave it connected, so routing
  // must always succeed between fault-free endpoints.
  for (unsigned n : {2u, 3u, 4u}) {
    const net::DualCube d(n);
    Rng rng(n);
    for (int trial = 0; trial < 40; ++trial) {
      std::unordered_set<NodeId> faulty;
      while (faulty.size() < n - 1) faulty.insert(rng.below(d.node_count()));
      NodeId u = rng.below(d.node_count());
      NodeId v = rng.below(d.node_count());
      while (faulty.contains(u)) u = rng.below(d.node_count());
      while (faulty.contains(v)) v = rng.below(d.node_count());
      const auto r = net::route_dual_cube_fault_tolerant(d, u, v, faulty, rng);
      ASSERT_FALSE(r.path.empty())
          << "n=" << n << " must stay connected with n-1 faults";
      EXPECT_TRUE(net::is_valid_path(d, r.path));
      EXPECT_EQ(r.path.front(), u);
      EXPECT_EQ(r.path.back(), v);
      for (const NodeId w : r.path) EXPECT_FALSE(faulty.contains(w));
    }
  }
}

TEST(FaultRouting, ReportsDisconnectionHonestly) {
  // Surround a D_2 node with faults: its 2 neighbors gone isolates it.
  const net::DualCube d(2);
  Rng rng(3);
  const NodeId victim = 0;
  std::unordered_set<NodeId> faulty;
  for (const NodeId v : d.neighbors(victim)) faulty.insert(v);
  const auto r =
      net::route_dual_cube_fault_tolerant(d, victim, 7, faulty, rng);
  EXPECT_TRUE(r.path.empty());
  EXPECT_TRUE(r.used_fallback);
}

TEST(FaultRouting, RejectsFaultyEndpoints) {
  const net::DualCube d(2);
  Rng rng(3);
  EXPECT_THROW(net::route_dual_cube_fault_tolerant(d, 0, 1, {0}, rng),
               CheckError);
}

TEST(FaultRouting, NeighborhoodCutIsCertifiedByTier2OnD3AndD4) {
  // Removing a node's full neighbor set (n faults) isolates it; only the
  // tier-2 BFS can prove that, so the result must report used_fallback and
  // an empty path — in both directions.
  for (unsigned n : {3u, 4u}) {
    const net::DualCube d(n);
    Rng rng(n);
    const NodeId victim = 5;
    std::unordered_set<NodeId> cut;
    for (const NodeId v : d.neighbors(victim)) cut.insert(v);
    ASSERT_EQ(cut.size(), n);
    const NodeId far = static_cast<NodeId>(d.node_count() - 1);
    const auto out = net::route_dual_cube_fault_tolerant(d, victim, far, cut, rng);
    EXPECT_TRUE(out.path.empty()) << "n=" << n;
    EXPECT_TRUE(out.used_fallback) << "disconnection is a tier-2 verdict";
    const auto in = net::route_dual_cube_fault_tolerant(d, far, victim, cut, rng);
    EXPECT_TRUE(in.path.empty()) << "n=" << n;
    EXPECT_TRUE(in.used_fallback);
  }
}

TEST(FaultRouting, RetriesAndFallbackAreReportedConsistently) {
  // Across a seeded sweep with n-1 faults, the report must be internally
  // consistent: retries == 0 means the plain cluster route sufficed;
  // tier-1b successes consumed 1..max_retries attempts; used_fallback
  // implies every tier-1 attempt was spent first. Any returned path must
  // be a fault-free walk between the endpoints.
  constexpr unsigned kMaxRetries = 16;
  for (unsigned n : {3u, 4u}) {
    const net::DualCube d(n);
    Rng rng(17 * n);
    std::size_t direct = 0, retried = 0, fallback = 0;
    for (int trial = 0; trial < 200; ++trial) {
      std::unordered_set<NodeId> faulty;
      while (faulty.size() < n - 1) faulty.insert(rng.below(d.node_count()));
      NodeId u = rng.below(d.node_count());
      NodeId v = rng.below(d.node_count());
      while (faulty.contains(u)) u = rng.below(d.node_count());
      while (faulty.contains(v) || v == u) v = rng.below(d.node_count());
      const auto r = net::route_dual_cube_fault_tolerant(d, u, v, faulty, rng,
                                                         kMaxRetries);
      ASSERT_FALSE(r.path.empty()) << "n-1 faults cannot disconnect D_n";
      EXPECT_TRUE(net::is_valid_path(d, r.path));
      EXPECT_EQ(r.path.front(), u);
      EXPECT_EQ(r.path.back(), v);
      for (const NodeId w : r.path) EXPECT_FALSE(faulty.contains(w));
      EXPECT_LE(r.retries, kMaxRetries);
      if (r.used_fallback) {
        EXPECT_EQ(r.retries, kMaxRetries)
            << "fallback only after every tier-1 attempt";
        ++fallback;
      } else if (r.retries > 0) {
        ++retried;
      } else {
        ++direct;
      }
    }
    EXPECT_GT(direct, 0u) << "most fault sets miss the cluster route";
    EXPECT_GT(direct + retried, fallback)
        << "the cheap tier should dominate at n-1 faults";
  }
}

TEST(FaultRouting, VertexConnectivityIsNForSmallOrders) {
  // Exhaustive for n=2 (remove any 1 node) and n=3 (remove any 2):
  // the graph stays connected, certifying connectivity >= n; and removing
  // one node's full neighborhood disconnects it, certifying == n.
  for (unsigned n : {2u, 3u}) {
    const net::DualCube d(n);
    const std::size_t N = d.node_count();
    std::vector<std::vector<NodeId>> removal_sets;
    if (n == 2) {
      for (NodeId a = 0; a < N; ++a) removal_sets.push_back({a});
    } else {
      for (NodeId a = 0; a < N; ++a)
        for (NodeId b = a + 1; b < N; ++b) removal_sets.push_back({a, b});
    }
    for (const auto& removed : removal_sets) {
      std::unordered_set<NodeId> faulty(removed.begin(), removed.end());
      // BFS over the fault-free subgraph from the first fault-free node.
      NodeId start = 0;
      while (faulty.contains(start)) ++start;
      std::vector<char> seen(N, 0);
      std::vector<NodeId> stack{start};
      seen[start] = 1;
      std::size_t visited = 1;
      while (!stack.empty()) {
        const NodeId u = stack.back();
        stack.pop_back();
        for (const NodeId v : d.neighbors(u)) {
          if (seen[v] || faulty.contains(v)) continue;
          seen[v] = 1;
          ++visited;
          stack.push_back(v);
        }
      }
      ASSERT_EQ(visited, N - faulty.size())
          << "removing " << faulty.size() << " nodes must not disconnect D_"
          << n;
    }
    // Tightness: the neighborhood of any node is a cut of size n.
    std::unordered_set<NodeId> cut;
    for (const NodeId v : d.neighbors(0)) cut.insert(v);
    EXPECT_EQ(cut.size(), n);
    Rng rng(1);
    const auto r = net::route_dual_cube_fault_tolerant(
        d, 0, static_cast<NodeId>(N - 1), cut, rng);
    EXPECT_TRUE(r.path.empty()) << "neighborhood cut isolates the node";
  }
}

}  // namespace
}  // namespace dc
