// Sharded execution tests: the cluster-sharded engine must be
// observationally identical to the flat engine — same D_prefix results,
// same Counters, same per-edge loads — for every shard count, on both the
// tiled-replay and interpreted paths, with and without the out-of-core
// spill; and its steady-state runs must allocate nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "core/dual_prefix.hpp"
#include "core/ops.hpp"
#include "core/sharded_prefix.hpp"
#include "sim/machine.hpp"
#include "sim/schedule.hpp"
#include "sim/shard.hpp"
#include "support/rng.hpp"
#include "topology/dual_cube.hpp"
#include "topology/shard_plan.hpp"

// Allocation counter backing the zero-allocation steady-state test (same
// harness as sim_test.cpp: replacing the unaligned global pair covers all
// of the engine's scratch and pooled planes).
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dc::sim {
namespace {

// ---------------------------------------------------------------- plan --

TEST(ShardPlan, CoversEveryClusterExactlyOnce) {
  for (unsigned n = 1; n <= 6; ++n) {
    const net::DualCube d(n);
    for (unsigned k = 1; k <= d.clusters_per_class() * 2; k *= 2) {
      const net::ShardPlan plan(d, k);
      std::set<std::pair<unsigned, dc::u64>> seen;
      for (unsigned s = 0; s < k; ++s) {
        EXPECT_EQ(plan.shard_clusters(s).size(), plan.clusters_per_shard());
        for (const auto& c : plan.shard_clusters(s)) {
          EXPECT_EQ(plan.shard_of_cluster(c.cls, c.cluster), s);
          EXPECT_TRUE(seen.emplace(c.cls, c.cluster).second)
              << "cluster assigned twice (n=" << n << " K=" << k << ")";
        }
      }
      EXPECT_EQ(seen.size(), plan.clusters_total())
          << "clusters missing (n=" << n << " K=" << k << ")";
    }
  }
}

TEST(ShardPlan, LocalGlobalRoundTripAndDataContiguity) {
  for (unsigned n = 2; n <= 5; ++n) {
    const net::DualCube d(n);
    for (unsigned k : {1u, 2u, 4u}) {
      const net::ShardPlan plan(d, k);
      for (net::NodeId u = 0; u < d.node_count(); ++u) {
        const unsigned s = plan.shard_of_node(u);
        const net::NodeId l = plan.local_index(u);
        EXPECT_LT(l, plan.shard_node_count());
        EXPECT_EQ(plan.global_node(s, l), u);
        // The property the streaming front-end rests on: shard s's local
        // index l holds global data index s * shard_nodes + l.
        EXPECT_EQ(core::dual_prefix_index_of_node(d, u),
                  dc::u64{s} * plan.shard_node_count() + l);
      }
    }
  }
}

TEST(ShardPlan, RejectsInvalidShardCounts) {
  const net::DualCube d(3);  // 2^3 = 8 clusters across both classes
  EXPECT_THROW(net::ShardPlan(d, 0), dc::CheckError);
  EXPECT_THROW(net::ShardPlan(d, 3), dc::CheckError);
  EXPECT_THROW(net::ShardPlan(d, 16), dc::CheckError);
  EXPECT_NO_THROW(net::ShardPlan(d, 8));
}

TEST(ShardClusterTopology, EdgesStayInsideClusterBlocks) {
  const net::ShardClusterTopology t(2, 3);  // 3 blocks of a 2-cube
  EXPECT_EQ(t.node_count(), 12u);
  EXPECT_TRUE(t.has_edge(0, 1));
  EXPECT_TRUE(t.has_edge(5, 7));
  EXPECT_FALSE(t.has_edge(3, 4));  // adjacent labels, different blocks
  EXPECT_FALSE(t.has_edge(0, 0));
  for (net::NodeId u = 0; u < t.node_count(); ++u) {
    EXPECT_EQ(t.neighbors(u).size(), 2u);
    for (const net::NodeId v : t.neighbors(u)) {
      EXPECT_TRUE(t.has_edge(u, v));
      EXPECT_EQ(u >> 2, v >> 2) << "edge crossed a cluster block";
    }
  }
}

// -------------------------------------------------------------- parity --

// Flat-engine reference for one run, with counters and per-edge loads.
template <core::Monoid M>
struct FlatRun {
  std::vector<typename M::value_type> result;
  Counters counters;
  std::vector<std::uint64_t> loads;
};

template <core::Monoid M>
FlatRun<M> flat_reference(const net::DualCube& d, const M& op,
                          const std::vector<typename M::value_type>& data,
                          bool inclusive, bool edge_load) {
  Machine m(d);
  if (edge_load) m.enable_edge_load();
  FlatRun<M> run;
  run.result = core::dual_prefix(m, d, op, data, {}, inclusive);
  run.counters = m.counters();
  if (edge_load) {
    for (net::NodeId u = 0; u < d.node_count(); ++u) {
      for (const net::NodeId v : d.neighbors(u)) {
        run.loads.push_back(m.edge_load(u, v));
      }
    }
  }
  return run;
}

template <core::Monoid M>
void expect_shard_parity(const net::DualCube& d, const M& op,
                         const std::vector<typename M::value_type>& data,
                         bool inclusive) {
  const FlatRun<M> ref = flat_reference(d, op, data, inclusive, false);
  for (unsigned k : {1u, 2u, 4u}) {
    ShardEngine eng(d, k);
    const auto got = core::sharded_dual_prefix(eng, op, data, inclusive);
    EXPECT_EQ(got, ref.result) << "K=" << k;
    EXPECT_EQ(eng.counters(), ref.counters) << "K=" << k;
  }
}

TEST(ShardedDualPrefix, MatchesFlatEngineBitIdentically) {
  const net::DualCube d(3);
  std::vector<dc::u64> data(d.node_count());
  dc::Rng rng(7);
  for (auto& v : data) v = rng();
  expect_shard_parity(d, core::Plus<dc::u64>{}, data, true);
  expect_shard_parity(d, core::Plus<dc::u64>{}, data, false);
  expect_shard_parity(d, core::Xor<dc::u64>{}, data, true);
  std::vector<dc::u64> small(data.begin(), data.end());
  for (auto& v : small) v %= 97;
  expect_shard_parity(d, core::Min<dc::u64>{}, small, true);
}

TEST(ShardedDualPrefix, MatchesFlatEngineForNonCommutativeMonoid) {
  // Concat is not plane-eligible, so every cycle interprets — and its
  // results expose any ordering mistake in the compact exchange algebra.
  const net::DualCube d(2);
  std::vector<std::string> data(d.node_count());
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = std::string(1, static_cast<char>('a' + (i % 26)));
    data[i] += std::to_string(i);
  }
  expect_shard_parity(d, core::Concat{}, data, true);
  expect_shard_parity(d, core::Concat{}, data, false);
}

TEST(ShardedDualPrefix, AllExchangeModesMatchFlatBitIdentically) {
  const net::DualCube d(3);
  std::vector<dc::u64> data(d.node_count());
  dc::Rng rng(11);
  for (auto& v : data) v = rng();
  const core::Plus<dc::u64> op;
  const FlatRun<core::Plus<dc::u64>> ref =
      flat_reference(d, op, data, true, false);
  for (const ShardExchangeMode mode :
       {ShardExchangeMode::kFused, ShardExchangeMode::kTiledReplay,
        ShardExchangeMode::kInterpreted}) {
    for (unsigned k : {1u, 2u, 4u}) {
      ShardEngine eng(d, k);
      eng.set_exchange_mode(mode);
      const auto got = core::sharded_dual_prefix(eng, op, data);
      EXPECT_EQ(got, ref.result) << "K=" << k;
      EXPECT_EQ(eng.counters(), ref.counters) << "K=" << k;
      if (mode == ShardExchangeMode::kTiledReplay) {
        EXPECT_GT(eng.machine(0).replayed_cycles(), 0u);
      } else {
        EXPECT_EQ(eng.machine(0).replayed_cycles(), 0u);
      }
    }
  }
}

TEST(ShardedDualPrefix, InterpretedSchedulePathForcesInterpretedCycles) {
  const net::DualCube d(3);
  std::vector<dc::u64> data(d.node_count());
  dc::Rng rng(11);
  for (auto& v : data) v = rng();
  const core::Plus<dc::u64> op;
  const FlatRun<core::Plus<dc::u64>> ref =
      flat_reference(d, op, data, true, false);
  for (unsigned k : {1u, 2u, 4u}) {
    ShardEngine eng(d, k);
    for (unsigned s = 0; s < k; ++s) {
      eng.machine(s).set_schedule_path(SchedulePath::kInterpreted);
    }
    const auto got = core::sharded_dual_prefix(eng, op, data);
    EXPECT_EQ(got, ref.result) << "K=" << k;
    EXPECT_EQ(eng.counters(), ref.counters) << "K=" << k;
    EXPECT_EQ(eng.machine(0).replayed_cycles(), 0u);
  }
}

TEST(ShardedDualPrefix, EdgeLoadsMatchFlatEngine) {
  const net::DualCube d(3);
  std::vector<dc::u64> data(d.node_count());
  dc::Rng rng(13);
  for (auto& v : data) v = rng();
  const core::Plus<dc::u64> op;
  const FlatRun<core::Plus<dc::u64>> ref =
      flat_reference(d, op, data, true, true);
  for (unsigned k : {1u, 2u, 4u}) {
    ShardEngine eng(d, k);
    eng.enable_edge_load();
    const auto got = core::sharded_dual_prefix(eng, op, data);
    EXPECT_EQ(got, ref.result) << "K=" << k;
    EXPECT_EQ(eng.counters(), ref.counters) << "K=" << k;
    std::vector<std::uint64_t> loads;
    for (net::NodeId u = 0; u < d.node_count(); ++u) {
      for (const net::NodeId v : d.neighbors(u)) {
        loads.push_back(eng.edge_load(u, v));
      }
    }
    EXPECT_EQ(loads, ref.loads) << "K=" << k;
  }
}

TEST(ShardedDualPrefix, RepeatedRunsAccumulateCountersLikeFlat) {
  const net::DualCube d(2);
  std::vector<dc::u64> data(d.node_count());
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = i + 1;
  const core::Plus<dc::u64> op;
  Machine m(d);
  ShardEngine eng(d, 2);
  for (int r = 0; r < 3; ++r) {
    const auto want = core::dual_prefix(m, d, op, data);
    const auto got = core::sharded_dual_prefix(eng, op, data);
    EXPECT_EQ(got, want);
    EXPECT_EQ(eng.counters(), m.counters());
  }
  EXPECT_EQ(eng.stats().runs, 3u);
  eng.reset_counters();
  EXPECT_EQ(eng.counters(), Counters{});
  EXPECT_EQ(eng.stats().runs, 0u);
}

// --------------------------------------------------------------- spill --

// A budget between working_bytes and working + store for a 4-shard engine.
std::size_t eng_budget(const net::DualCube& d) {
  const net::ShardPlan plan(d, 4);
  const std::size_t shard_n = plan.shard_node_count();
  return shard_n * (3 * sizeof(dc::u64) + 8) + shard_n;  // working + slack
}

TEST(ShardedDualPrefix, SpillingRunMatchesResidentRun) {
  const net::DualCube d(3);
  std::vector<dc::u64> data(d.node_count());
  dc::Rng rng(17);
  for (auto& v : data) v = rng();
  const core::Plus<dc::u64> op;
  const FlatRun<core::Plus<dc::u64>> ref =
      flat_reference(d, op, data, true, false);

  // Budget above one shard's working set but below working + store: the
  // run must take the out-of-core path and still match exactly.
  ShardEngine eng(d, 4, eng_budget(d));
  ASSERT_TRUE(eng.will_spill(sizeof(dc::u64)));
  const auto got = core::sharded_dual_prefix(eng, op, data);
  EXPECT_EQ(got, ref.result);
  EXPECT_EQ(eng.counters(), ref.counters);
  EXPECT_TRUE(eng.stats().last_run_spilled);
  EXPECT_EQ(eng.stats().spill_count, 4u);
  EXPECT_EQ(eng.stats().spill_bytes,
            dc::u64{d.node_count()} * sizeof(dc::u64));
}

TEST(ShardedDualPrefix, OutOfCoreRunMatchesResidentRun) {
  const net::DualCube d(4);  // csize = 8, N = 128
  std::vector<dc::u64> data(d.node_count());
  dc::Rng rng(29);
  for (auto& v : data) v = rng();
  const core::Plus<dc::u64> op;
  for (const bool inclusive : {true, false}) {
    const FlatRun<core::Plus<dc::u64>> ref =
        flat_reference(d, op, data, inclusive, false);
    // Budgets below even one shard's working set but above the one-cluster
    // streaming floor (4*8*csize = 256): the whole run streams
    // cycle-by-cycle out of core. 512 gives whole-shard-dividing windows;
    // 768 gives a 3-cluster window that tiles shards raggedly.
    for (const std::size_t budget : {std::size_t{512}, std::size_t{768}}) {
      for (unsigned k : {1u, 2u, 4u}) {
        ShardEngine eng(d, k, budget);
        ASSERT_TRUE(eng.out_of_core(sizeof(dc::u64)));
        const auto got = core::sharded_dual_prefix(eng, op, data, inclusive);
        EXPECT_EQ(got, ref.result) << "K=" << k << " budget=" << budget;
        EXPECT_EQ(eng.counters(), ref.counters)
            << "K=" << k << " budget=" << budget;
        EXPECT_TRUE(eng.stats().last_run_out_of_core);
        EXPECT_GT(eng.stats().spill_bytes, 0u);
      }
    }
  }
}

TEST(ShardedDualPrefix, RefusesBudgetBelowStreamingWindow) {
  // 16 bytes is below even one cluster's out-of-core window
  // (oc_floor_bytes = 4 * 8 * csize = 128 for D_3), so not even the
  // streaming path can run.
  const net::DualCube d(3);
  ShardEngine eng(d, 2, /*mem_budget_bytes=*/16);
  std::vector<dc::u64> data(d.node_count(), 1);
  EXPECT_THROW(core::sharded_dual_prefix(eng, core::Plus<dc::u64>{}, data),
               dc::CheckError);
}

TEST(ShardedDualPrefix, RefusesSpillForNonTrivialPayload) {
  const net::DualCube d(2);
  // Budget forces a spill, but strings cannot stream bytewise.
  ShardEngine eng(d, 4, /*mem_budget_bytes=*/
                  net::ShardPlan(d, 4).shard_node_count() *
                      (3 * sizeof(std::string) + 8));
  std::vector<std::string> data(d.node_count(), "x");
  ASSERT_TRUE(eng.will_spill(sizeof(std::string)));
  EXPECT_THROW(core::sharded_dual_prefix(eng, core::Concat{}, data),
               dc::CheckError);
}

// ---------------------------------------------------------- allocation --

TEST(ShardedDualPrefix, SteadyStateRunsAllocateNothing) {
  const net::DualCube d(4);
  std::vector<dc::u64> data(d.node_count());
  dc::Rng rng(23);
  for (auto& v : data) v = rng();
  const core::Plus<dc::u64> op;
  ShardEngine eng(d, 4);
  std::vector<dc::u64> out(d.node_count());
  const auto run = [&] {
    core::sharded_dual_prefix(
        eng, op, [&](dc::u64 i) -> const dc::u64& { return data[i]; },
        [&](dc::u64 base, const dc::u64* values, std::size_t count) {
          std::copy(values, values + count,
                  out.begin() + static_cast<std::ptrdiff_t>(base));
        });
  };
  run();  // warm-up: sizes scratch, pools planes, caches the slice
  const std::uint64_t before = g_allocation_count.load();
  run();
  run();
  EXPECT_EQ(g_allocation_count.load(), before)
      << "steady-state sharded runs must not allocate";
  Machine m(d);
  EXPECT_EQ(core::dual_prefix(m, d, op, data),
            [&] { run(); return out; }());
}

// -------------------------------------------------------------- memory --

TEST(ShardEngine, MemoryModelIsMonotoneInShardCount) {
  const net::DualCube d(5);
  std::size_t prev = SIZE_MAX;
  for (unsigned k : {1u, 2u, 4u, 8u}) {
    ShardEngine eng(d, k, /*mem_budget_bytes=*/1);  // budget irrelevant here
    const std::size_t w = eng.working_bytes(8);
    EXPECT_LT(w, prev) << "working set must shrink with more shards";
    prev = w;
    EXPECT_EQ(eng.store_bytes(8), dc::u64{d.node_count()} * 8);
  }
}

TEST(ShardEngine, StatsTrackCompactExchangeTraffic) {
  const net::DualCube d(3);
  std::vector<dc::u64> data(d.node_count(), 2);
  ShardEngine eng(d, 2);
  core::sharded_dual_prefix(eng, core::Plus<dc::u64>{}, data);
  const net::ShardPlan& plan = eng.plan();
  EXPECT_EQ(eng.stats().cross_edge_bytes,
            (2 * plan.clusters_total() + 1) * sizeof(dc::u64));
  EXPECT_EQ(eng.stats().spill_count, 0u);
  EXPECT_FALSE(eng.stats().last_run_spilled);
}

}  // namespace
}  // namespace dc::sim
