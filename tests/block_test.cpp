// Tests for the large-input extension (the paper's future-work item 1):
// block prefix and block sort with m keys per node.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/block_prefix.hpp"
#include "core/block_sort.hpp"
#include "core/formulas.hpp"
#include "core/sequential.hpp"
#include "support/rng.hpp"

namespace dc::core {
namespace {

std::vector<u64> random_values(std::size_t n, u64 seed) {
  Rng rng(seed);
  std::vector<u64> v(n);
  for (auto& x : v) x = rng.below(10000);
  return v;
}

struct BlockCase {
  unsigned n;
  std::size_t block;
};

class BlockPrefixTest : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockPrefixTest, MatchesSequentialScan) {
  const auto [n, block] = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Plus<u64> op;
  const auto data = random_values(d.node_count() * block, n + block);
  EXPECT_EQ(block_prefix(m, d, op, data, block), seq_inclusive_scan(op, data));
}

TEST_P(BlockPrefixTest, CommIndependentOfBlockSize) {
  const auto [n, block] = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Plus<u64> op;
  const auto data = random_values(d.node_count() * block, 7);
  block_prefix(m, d, op, data, block);
  EXPECT_EQ(m.counters().comm_cycles, formulas::dual_prefix_comm_impl(n))
      << "only the totals travel; block size must not add communication";
  EXPECT_EQ(m.counters().comp_steps,
            2 * block + formulas::dual_prefix_comp(n) - 1);
}

TEST_P(BlockPrefixTest, NonCommutativeConcat) {
  const auto [n, block] = GetParam();
  const net::DualCube d(n);
  sim::Machine m(d);
  const Concat op;
  std::vector<std::string> data(d.node_count() * block);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::string(1, static_cast<char>('a' + (i % 26)));
  EXPECT_EQ(block_prefix(m, d, op, data, block), seq_inclusive_scan(op, data));
}

class BlockSortTest : public ::testing::TestWithParam<BlockCase> {};

TEST_P(BlockSortTest, SortsAscendingAcrossAllDistributions) {
  const auto [n, block] = GetParam();
  const net::RecursiveDualCube r(n);
  for (const auto dist : all_key_distributions()) {
    sim::Machine m(r);
    auto data = generate_keys(dist, r.node_count() * block, n);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    block_sort(m, r, data, block);
    EXPECT_EQ(data, expected) << to_string(dist);
  }
}

TEST_P(BlockSortTest, SortsDescending) {
  const auto [n, block] = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  auto data = random_values(r.node_count() * block, 3);
  auto expected = data;
  std::sort(expected.begin(), expected.end(), std::greater<>());
  block_sort(m, r, data, block, /*descending=*/true);
  EXPECT_EQ(data, expected);
}

TEST_P(BlockSortTest, NetworkStepsMatchTheorem2PlusLocalSort) {
  const auto [n, block] = GetParam();
  const net::RecursiveDualCube r(n);
  sim::Machine m(r);
  auto data = random_values(r.node_count() * block, 5);
  block_sort(m, r, data, block);
  EXPECT_EQ(m.counters().comm_cycles, formulas::dual_sort_comm_exact(n))
      << "blocks ride the same schedule as scalars";
  EXPECT_EQ(m.counters().comp_steps, formulas::dual_sort_comp_exact(n) + 1);
}

std::vector<BlockCase> block_cases() {
  return {{1, 1}, {1, 4}, {2, 1}, {2, 3}, {2, 16}, {3, 2}, {3, 8}, {4, 4}};
}

INSTANTIATE_TEST_SUITE_P(Cases, BlockPrefixTest,
                         ::testing::ValuesIn(block_cases()),
                         [](const auto& param_info) {
                           return "D" + std::to_string(param_info.param.n) +
                                  "_m" + std::to_string(param_info.param.block);
                         });
INSTANTIATE_TEST_SUITE_P(Cases, BlockSortTest,
                         ::testing::ValuesIn(block_cases()),
                         [](const auto& param_info) {
                           return "D" + std::to_string(param_info.param.n) +
                                  "_m" + std::to_string(param_info.param.block);
                         });

TEST(BlockPrefix, BlockOfOneEqualsDualPrefix) {
  const net::DualCube d(3);
  const Plus<u64> op;
  const auto data = random_values(d.node_count(), 9);
  sim::Machine m1(d);
  sim::Machine m2(d);
  EXPECT_EQ(block_prefix(m1, d, op, data, 1), dual_prefix(m2, d, op, data));
}

TEST(BlockSort, RejectsBadSizes) {
  const net::RecursiveDualCube r(2);
  sim::Machine m(r);
  std::vector<u64> data(7);
  EXPECT_THROW(block_sort(m, r, data, 2), CheckError);
  EXPECT_THROW(block_sort(m, r, data, 0), CheckError);
}

TEST(BlockPrefix, RejectsBadSizes) {
  const net::DualCube d(2);
  sim::Machine m(d);
  const Plus<u64> op;
  EXPECT_THROW(block_prefix(m, d, op, std::vector<u64>(7), 2), CheckError);
  EXPECT_THROW(block_prefix(m, d, op, std::vector<u64>(8), 0), CheckError);
}

}  // namespace
}  // namespace dc::core
