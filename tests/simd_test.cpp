// Parity suite for the vectorized replay kernels (sim/simd.hpp): every
// kernel must be bit-identical to the portable scalar reference on every
// width class, at unaligned offsets, and with duplicate keys — under forced
// dispatch to each ISA the binary and CPU support. Runs under TSan and
// ASan+UBSan in CI, so the kernels' unaligned loads, masked gathers and
// chunked parallel writes are sanitizer-checked, not just value-checked.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "core/block_prefix.hpp"
#include "core/block_sort.hpp"
#include "sim/machine.hpp"
#include "sim/oblivious.hpp"
#include "sim/simd.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "topology/dual_cube.hpp"
#include "topology/hypercube.hpp"
#include "topology/recursive_dual_cube.hpp"

// Allocation counter for the steady-state plane-replay proof below (same
// global operator new replacement as sim_test).
namespace {
std::atomic<std::uint64_t> g_allocation_count{0};

void* counted_alloc(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace dc::sim {
namespace {

// Restores the process dispatch choice when a test returns or fails.
struct ForcedIsa {
  explicit ForcedIsa(simd::Isa isa) : ok(simd::force_isa(isa)) {}
  ~ForcedIsa() { simd::clear_forced_isa(); }
  bool ok;
};

// The ISAs worth testing on this binary/CPU beyond scalar (possibly none).
std::vector<simd::Isa> vector_isas() {
  std::vector<simd::Isa> isas;
  for (const simd::Isa isa : {simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (simd::force_isa(isa)) isas.push_back(isa);
  }
  simd::clear_forced_isa();
  return isas;
}

// Width classes: vector-covered multiples, the lonely scalar tail, odd
// widths around each boundary, and large blocks spanning many registers.
constexpr std::size_t kWidths[] = {1, 7, 8, 63, 64, 512, 513};

template <typename Key>
std::vector<Key> sorted_block(std::size_t width, dc::u64 seed) {
  dc::Rng rng(seed);
  std::vector<Key> block(width);
  // Narrow range => plenty of duplicate keys at every tested width.
  for (auto& k : block) k = static_cast<Key>(rng() % (2 * width + 3));
  std::sort(block.begin(), block.end());
  return block;
}

template <typename Key>
void expect_merge_split_parity(simd::Isa isa) {
  for (const std::size_t width : kWidths) {
    const auto a = sorted_block<Key>(width, 11 + width);
    const auto b = sorted_block<Key>(width, 97 + width);
    for (const bool keep_min : {true, false}) {
      std::vector<Key> scalar_out(width, Key{0});
      std::vector<Key> vector_out(width, Key{0});
      ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
      core::detail::merge_split(a.data(), b.data(), width, keep_min,
                                scalar_out.data());
      ASSERT_TRUE(simd::force_isa(isa));
      core::detail::merge_split(a.data(), b.data(), width, keep_min,
                                vector_out.data());
      simd::clear_forced_isa();
      EXPECT_EQ(vector_out, scalar_out)
          << "Key=" << sizeof(Key) << "B width=" << width
          << " keep_min=" << keep_min << " isa=" << simd::isa_name(isa);
    }
  }
}

TEST(Simd, MergeSplitMatchesScalarEveryWidth) {
  const auto isas = vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector ISA on this binary/CPU";
  for (const simd::Isa isa : isas) {
    expect_merge_split_parity<dc::u64>(isa);
    expect_merge_split_parity<std::int64_t>(isa);
    expect_merge_split_parity<std::uint32_t>(isa);
    expect_merge_split_parity<std::int32_t>(isa);
  }
}

TEST(Simd, MergeSplitOrdersAroundSignAndBiasBoundaries) {
  const auto isas = vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector ISA on this binary/CPU";
  // 4-byte keys straddling 0 and the sign bit — exactly where picking the
  // signed min/max for an unsigned key (or vice versa) would reorder.
  const std::vector<dc::u32> a = {0, 1, 2, 3, 0x7FFFFFFEu, 0x7FFFFFFFu,
                                  0x80000000u, 0x80000001u};
  const std::vector<dc::u32> b = {2, 4, 5, 6, 0x7FFFFFFDu, 0x80000000u,
                                  0xFFFFFFFEu, 0xFFFFFFFFu};
  const std::vector<std::int32_t> sa = {-9, -5, -1, 0, 1, 3, 4, 8};
  const std::vector<std::int32_t> sb = {-8, -6, -2, 0, 2, 5, 7, 9};
  for (const simd::Isa isa : isas) {
    for (const bool keep_min : {true, false}) {
      std::vector<dc::u32> ref(8), got(8);
      ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
      core::detail::merge_split(a.data(), b.data(), 8, keep_min, ref.data());
      ASSERT_TRUE(simd::force_isa(isa));
      core::detail::merge_split(a.data(), b.data(), 8, keep_min, got.data());
      EXPECT_EQ(got, ref);

      std::vector<std::int32_t> sref(8), sgot(8);
      ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
      core::detail::merge_split(sa.data(), sb.data(), 8, keep_min,
                                sref.data());
      ASSERT_TRUE(simd::force_isa(isa));
      core::detail::merge_split(sa.data(), sb.data(), 8, keep_min,
                                sgot.data());
      EXPECT_EQ(sgot, sref);
      simd::clear_forced_isa();
    }
  }
}

TEST(Simd, MergeSplitDispatcherDeclinesUncoveredShapes) {
  // Shapes no vector kernel covers must return false without touching out.
  dc::u32 a[7] = {1, 2, 3, 4, 5, 6, 7};
  dc::u32 b[7] = {1, 2, 3, 4, 5, 6, 7};
  dc::u32 out[7] = {99, 99, 99, 99, 99, 99, 99};
  EXPECT_FALSE(simd::merge_split(a, b, 7, true, out));
  for (const auto v : out) EXPECT_EQ(v, 99u);
  // 8-byte keys always decline — no 64-bit min/max below AVX-512, and the
  // blendv-based network measured slower than the scalar merge.
  dc::u64 wa[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  dc::u64 wb[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  dc::u64 wout[8] = {99, 99, 99, 99, 99, 99, 99, 99};
  EXPECT_FALSE(simd::merge_split(wa, wb, 8, true, wout));
  for (const auto v : wout) EXPECT_EQ(v, 99u);
  double da[4] = {1, 2, 3, 4};
  double dout[4] = {};
  EXPECT_FALSE(simd::merge_split(da, da, 4, true, dout));
}

TEST(Simd, GatherRowsMatchesScalarAtUnalignedOffsets) {
  const auto isas = vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector ISA on this binary/CPU";
  constexpr std::size_t kRows = 103;  // not a multiple of any lane count
  constexpr std::uint64_t kNone = ~std::uint64_t{0};
  dc::Rng rng(42);
  std::vector<std::uint64_t> from(kRows);
  for (std::size_t v = 0; v < kRows; ++v) {
    from[v] = (rng() % 3 == 0) ? kNone : rng() % kRows;
  }
  const std::vector<std::uint64_t> src = [&] {
    std::vector<std::uint64_t> s(kRows);
    for (auto& x : s) x = rng();
    return s;
  }();
  // Chunk edges [lo, hi) exercising unaligned starts, short tails, and the
  // full row range at once.
  const std::pair<std::size_t, std::size_t> ranges[] = {
      {0, kRows}, {3, 98}, {1, 5}, {50, 53}, {97, kRows}};
  for (const simd::Isa isa : isas) {
    for (const auto& [lo, hi] : ranges) {
      std::vector<std::uint64_t> plane_ref(kRows, 7), stamp_ref(kRows, 1);
      std::vector<std::uint64_t> plane_got(kRows, 7), stamp_got(kRows, 1);
      ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
      simd::gather_rows(plane_ref.data(), stamp_ref.data(), 5, from.data(),
                        kNone, lo, hi, 1, src.data(), 1);
      ASSERT_TRUE(simd::force_isa(isa));
      simd::gather_rows(plane_got.data(), stamp_got.data(), 5, from.data(),
                        kNone, lo, hi, 1, src.data(), 1);
      simd::clear_forced_isa();
      EXPECT_EQ(plane_got, plane_ref) << "lo=" << lo << " hi=" << hi;
      EXPECT_EQ(stamp_got, stamp_ref) << "lo=" << lo << " hi=" << hi;
    }
  }
}

TEST(Simd, AddRowsMatchesScalarIncludingTails) {
  const auto isas = vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector ISA on this binary/CPU";
  dc::Rng rng(7);
  for (const simd::Isa isa : isas) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{3}, std::size_t{4},
                                std::size_t{31}, std::size_t{1000}}) {
      std::vector<std::uint64_t> prev(n), ref(n), got(n);
      for (std::size_t i = 0; i < n; ++i) {
        prev[i] = rng();
        ref[i] = got[i] = rng();
      }
      ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
      simd::add_rows_u64(ref.data(), prev.data(), n);
      ASSERT_TRUE(simd::force_isa(isa));
      simd::add_rows_u64(got.data(), prev.data(), n);
      simd::clear_forced_isa();
      EXPECT_EQ(got, ref) << "n=" << n;
    }
  }
}

TEST(Simd, ForceIsaRefusesUnsupportedAndKeepsCurrentChoice) {
  const simd::Isa before = simd::active_isa();
#if defined(__x86_64__) || defined(_M_X64)
  EXPECT_FALSE(simd::force_isa(simd::Isa::kNeon));
#else
  EXPECT_FALSE(simd::force_isa(simd::Isa::kAvx2));
#endif
  EXPECT_EQ(simd::active_isa(), before);
  EXPECT_TRUE(simd::force_isa(simd::Isa::kScalar));
  EXPECT_EQ(simd::active_isa(), simd::Isa::kScalar);
  simd::clear_forced_isa();
  EXPECT_EQ(simd::active_isa(), before);
}

// End-to-end: the block sort must produce identical keys, Counters and edge
// loads whether its merge-splits run scalar or vectorized.
TEST(Simd, BlockSortEndToEndParityAcrossIsas) {
  const auto isas = vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector ISA on this binary/CPU";
  const net::RecursiveDualCube r(2);
  for (const std::size_t block : {std::size_t{8}, std::size_t{64}}) {
    const auto input = dc::generate_keys(dc::KeyDistribution::kFewDistinct,
                                         r.node_count() * block, 5);
    ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
    Machine ms(r);
    auto scalar_keys = input;
    core::block_sort(ms, r, scalar_keys, block);
    for (const simd::Isa isa : isas) {
      ASSERT_TRUE(simd::force_isa(isa));
      Machine mv(r);
      auto vector_keys = input;
      core::block_sort(mv, r, vector_keys, block);
      EXPECT_EQ(vector_keys, scalar_keys) << simd::isa_name(isa);
      EXPECT_EQ(mv.counters(), ms.counters());
    }
    simd::clear_forced_isa();
  }
}

// End-to-end: block prefix (offset-major rows + vector row adds) against
// both the scalar ISA and a directly computed inclusive scan.
TEST(Simd, BlockPrefixEndToEndParityAcrossIsas) {
  const net::DualCube d(2);
  const core::Plus<dc::u64> plus;
  const std::size_t block = 24;
  dc::Rng rng(3);
  std::vector<dc::u64> data(d.node_count() * block);
  for (auto& x : data) x = rng() % 1000;
  std::vector<dc::u64> expect(data.size());
  std::partial_sum(data.begin(), data.end(), expect.begin());

  ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
  Machine ms(d);
  EXPECT_EQ(core::block_prefix(ms, d, plus, data, block), expect);
  simd::clear_forced_isa();
  for (const simd::Isa isa : vector_isas()) {
    ASSERT_TRUE(simd::force_isa(isa));
    Machine mv(d);
    EXPECT_EQ(core::block_prefix(mv, d, plus, data, block), expect)
        << simd::isa_name(isa);
    EXPECT_EQ(mv.counters(), ms.counters());
    simd::clear_forced_isa();
  }
}

// The plane-source replay path must deliver exactly what the callback path
// delivers — and allocate nothing in steady state.
TEST(Simd, PlaneSourceReplayMatchesCallbackAndDoesNotAllocate) {
  const net::Hypercube q(6);
  Machine m(q);
  m.set_schedule_path(SchedulePath::kCompiled);
  for (const std::size_t width : {std::size_t{1}, std::size_t{8}}) {
    std::vector<std::uint64_t> plane(q.node_count() * width);
    for (std::size_t i = 0; i < plane.size(); ++i) {
      plane[i] = i * 2654435761ull;
    }
    ObliviousSection section(m, "simd_test_plane_replay", {width});
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto warm = section.exchange_blocks<std::uint64_t>(
          width, [&](net::NodeId u) { return q.neighbor(u, i); },
          PlaneSrc<std::uint64_t>{plane.data(), width});
    }
    section.commit();
    const auto schedule = ScheduleCache::instance().find(section.key());
    ASSERT_NE(schedule, nullptr);
    // Warm the pool to its high-water shape — the counted loop keeps two
    // inboxes alive at once, so warm with two concurrently live planes.
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto warm_a = m.comm_cycle_scheduled_blocks<std::uint64_t>(
          schedule->cycle(i), width,
          PlaneSrc<std::uint64_t>{plane.data(), width});
      auto warm_b = m.comm_cycle_scheduled_blocks<std::uint64_t>(
          schedule->cycle(i), width,
          PlaneSrc<std::uint64_t>{plane.data(), width});
    }
    const std::uint64_t before = g_allocation_count.load();
    for (unsigned i = 0; i < q.dimensions(); ++i) {
      auto from_plane = m.comm_cycle_scheduled_blocks<std::uint64_t>(
          schedule->cycle(i), width,
          PlaneSrc<std::uint64_t>{plane.data(), width});
      auto from_callback = m.comm_cycle_scheduled_blocks<std::uint64_t>(
          schedule->cycle(i), width,
          [&](net::NodeId u, std::uint64_t* dst) {
            for (std::size_t k = 0; k < width; ++k)
              dst[k] = plane[u * width + k];
          });
      for (net::NodeId u = 0; u < q.node_count(); ++u) {
        ASSERT_EQ(from_plane.has(u), from_callback.has(u));
        for (std::size_t k = 0; k < width; ++k) {
          ASSERT_EQ(from_plane.block(u)[k], from_callback.block(u)[k]);
        }
      }
    }
    EXPECT_EQ(g_allocation_count.load(), before)
        << "steady-state plane replay allocated at width " << width;
  }
}

// The affine parallel loop must cover every index exactly once regardless
// of band layout, including on a multi-worker pool (this machine's CI runs
// are single-core, so force a pool).
TEST(Simd, ParallelForAffineCoversRangeOnMultiWorkerPool) {
  ThreadPool pool(3);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<std::uint32_t>> hits(kCount);
  for (auto& h : hits) h.store(0);
  parallel_for_affine(
      0, kCount, sizeof(std::uint64_t),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          hits[i].fetch_add(1, std::memory_order_relaxed);
      },
      /*grain=*/64, &pool);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

}  // namespace
}  // namespace dc::sim
