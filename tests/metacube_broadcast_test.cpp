// Tests for the generalized metacube broadcast — including the k = 1
// degeneration to the dual-cube schedule.
#include <gtest/gtest.h>

#include "collectives/broadcast.hpp"
#include "collectives/metacube_broadcast.hpp"

namespace dc::collectives {
namespace {

struct McCase {
  unsigned k;
  unsigned m;
};

class MetacubeBroadcastTest : public ::testing::TestWithParam<McCase> {};

TEST_P(MetacubeBroadcastTest, ReachesEveryNodeFromSampledRoots) {
  const auto [k, mm] = GetParam();
  const net::Metacube mc(k, mm);
  const net::NodeId step = std::max<net::NodeId>(1, mc.node_count() / 7);
  for (net::NodeId root = 0; root < mc.node_count(); root += step) {
    sim::Machine m(mc);
    const auto out = metacube_broadcast<u64>(m, mc, root, root + 3);
    for (const u64 v : out) ASSERT_EQ(v, root + 3);
    // Cycle bound: class walk + field sweeps + Gray hops + class doubling.
    const u64 bound = bits::popcount(mc.class_of(root)) +
                      bits::pow2(k) * mm + (bits::pow2(k) - 1) + k;
    EXPECT_LE(m.counters().comm_cycles, bound) << "root " << root;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, MetacubeBroadcastTest,
                         ::testing::Values(McCase{0, 3}, McCase{1, 1},
                                           McCase{1, 2}, McCase{1, 3},
                                           McCase{2, 1}, McCase{2, 2}),
                         [](const auto& param_info) {
                           return "k" + std::to_string(param_info.param.k) +
                                  "m" + std::to_string(param_info.param.m);
                         });

TEST(MetacubeBroadcast, K1MatchesDualCubeCycleCount) {
  // MC(1, m) is D_(m+1); from a class-0 root the generalized schedule
  // costs 2m + 2 = 2n cycles, like dual_broadcast.
  for (unsigned mm : {1u, 2u, 3u}) {
    const net::Metacube mc(1, mm);
    const net::DualCube d(mm + 1);
    sim::Machine m1(mc);
    metacube_broadcast<int>(m1, mc, 0, 1);
    sim::Machine m2(d);
    dual_broadcast<int>(m2, d, 0, 1);
    EXPECT_EQ(m1.counters().comm_cycles, m2.counters().comm_cycles)
        << "m=" << mm;
    EXPECT_EQ(m1.counters().comm_cycles, 2 * (mm + 1));
  }
}

TEST(MetacubeBroadcast, K0IsPlainHypercubeBroadcastTime) {
  const net::Metacube mc(0, 4);  // == Q_4
  sim::Machine m(mc);
  metacube_broadcast<int>(m, mc, 0, 1);
  EXPECT_EQ(m.counters().comm_cycles, 4u);
}

}  // namespace
}  // namespace dc::collectives
