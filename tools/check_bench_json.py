#!/usr/bin/env python3
"""Schema + regression check for the bench_wallclock summary JSON, plus a
trace-validate subcommand for dcsim --trace exports.

Usage: check_bench_json.py [path]            (default: BENCH_sim.json)
       check_bench_json.py trace-validate TRACE.json
       check_bench_json.py fault-sweep SWEEP.json
       check_bench_json.py pipeline-fusion TABLE.json
       check_bench_json.py report-validate REPORT.json

report-validate schema-checks a structured run-report from
`dcsim --report=FILE.json`: pinned schema_version, required sections,
per-track phase sums equal to the track's total cycles, cross-counter
reconciliation (profiled tracks + virtual counters == Counters.comm_cycles
when no trace events were dropped), imbalance-summary bounds and a
strictly monotone flight-recorder timeline.

trace-validate schema-checks a Chrome-trace export from `dcsim --trace`:
every event carries name/ph/pid/tid/ts; 'B'/'E' spans are balanced per
(pid, tid) with matching names (LIFO nesting); kCycleEnd-style cycle spans
use known phase names; logical timestamps are strictly monotone across the
merged stream; and per-track cycle events appear in monotone (logical)
order. Span-balance checks are skipped when otherData.dropped_events > 0 —
a wrapped ring legitimately loses opening events.

Verifies the file is a non-empty JSON array in which every row carries a
non-empty "name" plus numeric "ns_per_op" and "items_per_sec" keys, with
ns_per_op > 0 and items_per_sec > 0 for every measurement row. Spread
aggregates ("_stddev", "_cv" rows) are exempt from the positivity checks —
a perfectly stable run legitimately reports 0 spread.

Two further gates run only on files that carry trajectory rows (rows whose
name ends in "@<tag>", e.g. "BM_BlockSort/512_median@pr3"); the CI smoke
file has none and skips both:

  * Block-family coverage: BM_BlockSort, BM_BlockPrefix, BM_MergeSplit,
    BM_BlockGather and BM_ShardedDualPrefix rows must be present — the SoA
    block-replay path, its SIMD kernels and the cluster-sharded engine must
    stay benchmarked.
  * Shard scaling: among the current fixed-cap sharded rows
    "BM_ShardedDualPrefix/<n>/<K>/1", at the largest n carrying both a K=1
    and a K=4 row, 4 shards must deliver >= 2x the K=1 nodes/sec. Under the
    cap a too-coarse sharding streams its cycles out of core; this gate
    keeps that cost bought back by sharding finer. Skipped when no capped
    rows are recorded (the CI smoke file runs only the small resident
    rows).
  * Warm/cold start: the BM_ColdStart/BM_WarmStart family must be present,
    and at every shared size the warm median (schedules loaded from the
    persistent store) must be <= 0.5x the cold median (record-and-validate
    from scratch).
  * Median regression: for every plain "X_median" row with at least one
    recorded "X_median@..." predecessor, the current ns_per_op must not
    exceed 1.1x the most recent predecessor. "Most recent" means the
    highest "@prN" number (other tags such as "@baseline-v0" count as
    PR 0); ties break toward the lowest ns_per_op, so a same-PR
    interpreted/compiled pair is compared against its faster variant.
    Alongside the gate, a per-family best/worst current-vs-predecessor
    ratio summary is printed (ratio < 1 is a speedup).

Stdlib only.
"""
import json
import re
import sys

REGRESSION_TOLERANCE = 1.1
SHARD_SCALING_MIN = 2.0


def pr_number(tag: str) -> int:
    """Trajectory age of a row tag: "pr3" -> 3, "pr2-compiled" -> 2,
    anything without a @prN prefix (e.g. "baseline-v0") -> 0."""
    m = re.match(r"pr(\d+)", tag)
    return int(m.group(1)) if m else 0


def check_schema(rows) -> list:
    errors = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"row {i}: not an object")
            continue
        name = row.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"row {i}: missing or empty 'name'")
            continue
        for key in ("ns_per_op", "items_per_sec"):
            value = row.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{name}: missing or non-numeric '{key}'")
        if any(tag in name for tag in ("_stddev", "_cv")):
            continue
        if not row.get("ns_per_op", 0) > 0:
            errors.append(f"{name}: ns_per_op must be > 0")
        if not row.get("items_per_sec", 0) > 0:
            errors.append(
                f"{name}: items_per_sec must be > 0 "
                "(did the bench call SetItemsProcessed?)"
            )
    return errors


def check_block_family(names) -> list:
    errors = []
    for family in (
        "BM_BlockSort",
        "BM_BlockPrefix",
        "BM_MergeSplit",
        "BM_BlockGather",
        "BM_ShardedDualPrefix",
    ):
        if not any(n == family or n.startswith(family + "/") for n in names):
            errors.append(f"missing block-family rows: no {family} benchmark")
    return errors


def family_of(name: str) -> str:
    """Benchmark family of a median row: "BM_BlockSort/512_median" ->
    "BM_BlockSort"."""
    return name.split("/", 1)[0].removesuffix("_median")


def report_family_ratios(ratios) -> None:
    """Per-family best/worst current-vs-predecessor summary, printed on
    every trajectory-gated run so a PR's speedups and near-regressions are
    visible without digging through raw rows. ratio < 1 is a speedup."""
    families = {}
    for name, ratio in ratios:
        families.setdefault(family_of(name), []).append((ratio, name))
    for family in sorted(families):
        entries = sorted(families[family])
        best_ratio, best_name = entries[0]
        worst_ratio, worst_name = entries[-1]
        print(
            f"{family}: best {best_ratio:.2f}x ({best_name}), "
            f"worst {worst_ratio:.2f}x ({worst_name}) vs newest trajectory"
        )


def check_shard_scaling(rows) -> list:
    """Fixed-cap shard-scaling gate (see module docstring). Prefers
    "_median" rows over single-rep rows for the same (n, K); only current
    (un-tagged) rows participate."""
    median, single = {}, {}
    for row in rows:
        name = row.get("name", "")
        if "@" in name:
            continue
        m = re.match(r"BM_ShardedDualPrefix/(\d+)/(\d+)/1(_median)?$", name)
        if not m:
            continue
        ips = row.get("items_per_sec")
        if not isinstance(ips, (int, float)) or isinstance(ips, bool):
            continue
        (median if m.group(3) else single)[
            (int(m.group(1)), int(m.group(2)))] = ips
    table = {**single, **median}
    sizes = [n for n, _ in table if (n, 1) in table and (n, 4) in table]
    if not sizes:
        return []
    n = max(sizes)
    ratio = table[(n, 4)] / table[(n, 1)]
    if ratio < SHARD_SCALING_MIN:
        return [
            f"BM_ShardedDualPrefix/{n}: 4 shards deliver only {ratio:.2f}x "
            f"the 1-shard nodes/sec at the shared memory cap (gate: >= "
            f"{SHARD_SCALING_MIN:.1f}x)"
        ]
    print(f"shard scaling at fixed cap (n={n}): 4 shards = {ratio:.2f}x "
          "1 shard nodes/sec")
    return []


WARM_COLD_MAX_RATIO = 0.5


def check_warm_cold(rows) -> list:
    """Cold-start gate: for every size with both a BM_ColdStart/<n>_median
    and a BM_WarmStart/<n>_median current row, the warm median (replay of
    schedules loaded from the persistent store) must be at most
    WARM_COLD_MAX_RATIO x the cold median (record-and-validate from
    scratch). Trajectory-tagged rows don't participate. Missing families
    are reported — once persistence is benchmarked it must stay
    benchmarked."""
    cold, warm = {}, {}
    for row in rows:
        name = row.get("name", "")
        if "@" in name:
            continue
        m = re.match(r"BM_(Cold|Warm)Start/(\d+)(?:/repeats:\d+)?_median$",
                     name)
        if not m:
            continue
        value = row.get("ns_per_op")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        (cold if m.group(1) == "Cold" else warm)[int(m.group(2))] = value

    if not cold or not warm:
        return ["missing BM_ColdStart/BM_WarmStart median rows: schedule "
                "persistence must stay benchmarked"]
    errors = []
    for n in sorted(set(cold) & set(warm)):
        ratio = warm[n] / cold[n]
        if ratio > WARM_COLD_MAX_RATIO:
            errors.append(
                f"BM_WarmStart/{n}: warm start is {ratio:.2f}x the cold "
                f"median (gate: <= {WARM_COLD_MAX_RATIO:.1f}x) — loading "
                "from the schedule store should skip record-and-validate")
        else:
            print(f"warm start (n={n}): {ratio:.2f}x the cold median")
    if not set(cold) & set(warm):
        errors.append("BM_ColdStart and BM_WarmStart rows never share a "
                      "size; the warm/cold ratio is ungated")
    return errors


def check_median_regressions(rows, ratios=None) -> list:
    # Trajectory rows: "X@tag" -> list of (pr_number, ns_per_op) under X.
    history = {}
    for row in rows:
        name = row.get("name", "")
        if "@" not in name:
            continue
        base, tag = name.split("@", 1)
        value = row.get("ns_per_op")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            history.setdefault(base, []).append((pr_number(tag), value, name))

    errors = []
    for row in rows:
        name = row.get("name", "")
        if "@" in name or not name.endswith("_median"):
            continue
        candidates = history.get(name)
        if not candidates:
            continue
        newest = max(pr for pr, _, _ in candidates)
        ns_pred, pred_name = min(
            (ns, n) for pr, ns, n in candidates if pr == newest)
        value = row.get("ns_per_op")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue  # already reported by the schema pass
        if ratios is not None and ns_pred > 0:
            ratios.append((name, value / ns_pred))
        if value > REGRESSION_TOLERANCE * ns_pred:
            errors.append(
                f"{name}: regressed to {value:.2f} ns/op, more than "
                f"{REGRESSION_TOLERANCE:.1f}x the recorded {ns_pred:.2f} "
                f"({pred_name})"
            )
    return errors


# Phase names the simulator emits (docs/MODEL.md "Observability"). Span
# names may also be "record:<algo>" / "replay:<algo>" / "interp:<algo>" /
# "load:<algo>" (replay of a schedule faulted in from the persistent
# store) / "fuse:<label>" (fused multi-section replay) / "phase:<label>"
# with a free-form suffix.
KNOWN_SPANS = {
    "comm_cycle",
    "comm_cycle_replay",
    "comm_cycle_replay_blocks",
    "comm_cycle_fused",
}
KNOWN_SPAN_PREFIXES = ("record:", "replay:", "interp:", "load:", "fuse:",
                       "phase:")
KNOWN_INSTANTS = {
    "compute_step",
    "fault_drop",
    "fault_cycle",
    "fault_detour",
    "fault_epoch",
    "fault_rejoin",
    "recovery_retry",
    "recovery_replan",
    "recovery_exhausted",
    "schedule_cache_hit",
    "schedule_cache_miss",
    "schedule_commit",
    "schedule_load",
    "schedule_fuse",
}


def known_span_name(name: str) -> bool:
    return name in KNOWN_SPANS or name.startswith(KNOWN_SPAN_PREFIXES)


def trace_validate(path: str) -> int:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1

    errors = []
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list) or not events:
        print(f"{path}: expected an object with a non-empty 'traceEvents' "
              "array", file=sys.stderr)
        return 1
    dropped = 0
    other = doc.get("otherData")
    if isinstance(other, dict):
        dropped = other.get("dropped_events", 0)

    last_ts = None        # merged-stream logical clock must be strict
    open_spans = {}       # (pid, tid) -> stack of open 'B' names
    cycle_count = {}      # pid -> comm cycles seen, to report positions
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = e.get("ph")
        name = e.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"event {i}: missing 'name'")
            continue
        if ph == "M":
            continue  # metadata (process_name) carries no ts
        for key in ("pid", "tid", "ts"):
            if not isinstance(e.get(key), int):
                errors.append(f"event {i} ({name}): missing integer '{key}'")
        ts = e.get("ts")
        if isinstance(ts, int):
            if last_ts is not None and ts <= last_ts:
                errors.append(
                    f"event {i} ({name}): logical ts {ts} not strictly "
                    f"increasing (previous {last_ts})")
            last_ts = ts
        key = (e.get("pid"), e.get("tid"))
        if ph == "B":
            if not known_span_name(name):
                errors.append(f"event {i}: unknown span name '{name}'")
            open_spans.setdefault(key, []).append(name)
        elif ph == "E":
            stack = open_spans.setdefault(key, [])
            if stack and stack[-1] == name:
                stack.pop()
            elif dropped == 0:
                errors.append(
                    f"event {i}: 'E' for '{name}' does not close the "
                    f"innermost open span {stack[-1] if stack else '(none)'}"
                    f" on track {key}")
            if name in KNOWN_SPANS:  # a comm cycle ended on this track
                cycle_count[e.get("pid")] = cycle_count.get(e.get("pid"), 0) + 1
        elif ph == "i":
            if name not in KNOWN_INSTANTS:
                errors.append(f"event {i}: unknown instant name '{name}'")
        else:
            errors.append(f"event {i} ({name}): unknown phase '{ph}'")
    if dropped == 0:
        for key, stack in open_spans.items():
            if stack:
                errors.append(
                    f"track {key}: {len(stack)} unclosed span(s), "
                    f"innermost '{stack[-1]}'")
    if not cycle_count:
        errors.append("no comm-cycle spans found "
                      f"(expected one of {sorted(KNOWN_SPANS)})")

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{path}: {len(errors)} problem(s) in {len(events)} events",
              file=sys.stderr)
        return 1
    cycles = sum(cycle_count.values())
    print(f"{path}: {len(events)} events OK ({cycles} comm cycles on "
          f"{len(cycle_count)} track(s), {dropped} dropped)")
    return 0


def fault_sweep_validate(path: str) -> int:
    """Schema gate for tab_fault_sweep's DC_FAULT_SWEEP_JSON export: a
    non-empty array of injection-timing rows. Every row needs n >= 2,
    inject "pre"|"mid", comm_cycles > 0, replans == retries and
    correct == true; "pre" rows must show zero retries (the fault was
    planned around), "mid" rows at least one (the flap aborted a phase),
    and every n must carry both legs of the axis."""
    try:
        with open(path, encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    if not isinstance(rows, list) or not rows:
        print(f"{path}: expected a non-empty JSON array", file=sys.stderr)
        return 1

    errors = []
    legs = {}  # n -> set of inject values seen
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"row {i}: not an object")
            continue
        n = row.get("n")
        inject = row.get("inject")
        label = f"row {i} (n={n}, inject={inject})"
        if not isinstance(n, int) or n < 2:
            errors.append(f"{label}: 'n' must be an integer >= 2")
            continue
        if inject not in ("pre", "mid"):
            errors.append(f"{label}: 'inject' must be 'pre' or 'mid'")
            continue
        legs.setdefault(n, set()).add(inject)
        for key in ("comm_cycles", "retries", "replans", "backoff_cycles",
                    "repaired"):
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"{label}: missing or non-integer '{key}'")
        if not row.get("comm_cycles", 0) > 0:
            errors.append(f"{label}: comm_cycles must be > 0")
        if row.get("replans") != row.get("retries"):
            errors.append(f"{label}: every retry must re-plan "
                          f"(retries={row.get('retries')}, "
                          f"replans={row.get('replans')})")
        if inject == "pre" and row.get("retries") != 0:
            errors.append(f"{label}: pre-installed faults are planned "
                          "around, expected 0 retries")
        if inject == "mid" and not row.get("retries", 0) >= 1:
            errors.append(f"{label}: a mid-run flap must trigger a retry")
        if row.get("correct") is not True:
            errors.append(f"{label}: 'correct' must be true")
    for n, seen in sorted(legs.items()):
        if seen != {"pre", "mid"}:
            errors.append(f"n={n}: need both 'pre' and 'mid' rows, "
                          f"got {sorted(seen)}")

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{path}: {len(errors)} problem(s) in {len(rows)} rows",
              file=sys.stderr)
        return 1
    print(f"{path}: {len(rows)} fault-sweep rows OK "
          f"({len(legs)} network size(s), both injection legs)")
    return 0


def pipeline_fusion_validate(path: str) -> int:
    """Gate for tab_pipeline_broadcast's DC_PIPELINE_JSON export: a
    non-empty array of rows carrying the fused-vs-unfused cycle counts.
    Every row needs n >= 2, chunks >= 1, positive ring/binomial cycle
    counts, correct == true, and fused_cycles == unfused_cycles - merged;
    at least one row must actually merge cycles (merged >= 1) — fusion
    must keep reducing total replay cycles."""
    try:
        with open(path, encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    if not isinstance(rows, list) or not rows:
        print(f"{path}: expected a non-empty JSON array", file=sys.stderr)
        return 1

    errors = []
    any_merged = False
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"row {i}: not an object")
            continue
        n = row.get("n")
        label = f"row {i} (n={n}, chunks={row.get('chunks')})"
        if not isinstance(n, int) or n < 2:
            errors.append(f"{label}: 'n' must be an integer >= 2")
            continue
        for key in ("chunks", "ring_cycles", "binomial_cycles",
                    "unfused_cycles", "fused_cycles", "merged"):
            value = row.get(key)
            if not isinstance(value, int) or isinstance(value, bool):
                errors.append(f"{label}: missing or non-integer '{key}'")
        if errors and errors[-1].startswith(label):
            continue
        if row["chunks"] < 1 or row["ring_cycles"] <= 0 \
                or row["binomial_cycles"] <= 0:
            errors.append(f"{label}: cycle counts must be positive")
        if row["fused_cycles"] != row["unfused_cycles"] - row["merged"]:
            errors.append(
                f"{label}: fused_cycles ({row['fused_cycles']}) != "
                f"unfused_cycles - merged "
                f"({row['unfused_cycles']} - {row['merged']})")
        if row["merged"] >= 1:
            any_merged = True
        if row.get("correct") is not True:
            errors.append(f"{label}: 'correct' must be true")
    if not any_merged:
        errors.append("no row merged any cycles: fusion no longer reduces "
                      "total replay cycles")

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{path}: {len(errors)} problem(s) in {len(rows)} rows",
              file=sys.stderr)
        return 1
    print(f"{path}: {len(rows)} pipeline-fusion rows OK")
    return 0


REPORT_SCHEMA_VERSION = 1


def report_validate(path: str) -> int:
    """Gate for dcsim --report run-reports (docstring at module top)."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict):
        print(f"{path}: expected a JSON object", file=sys.stderr)
        return 1

    errors = []
    if doc.get("schema_version") != REPORT_SCHEMA_VERSION:
        errors.append(f"schema_version must be {REPORT_SCHEMA_VERSION}, "
                      f"got {doc.get('schema_version')!r}")
    if doc.get("tool") != "dcsim":
        errors.append(f"tool must be 'dcsim', got {doc.get('tool')!r}")
    for key in ("algo", "status"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            errors.append(f"missing or empty '{key}'")
    for key in ("n", "seed"):
        if not isinstance(doc.get(key), int) or isinstance(doc.get(key), bool):
            errors.append(f"missing or non-integer '{key}'")
    for key in ("counters", "fault", "schedule_cache", "flight_recorder"):
        if not isinstance(doc.get(key), dict):
            errors.append(f"missing object section '{key}'")
    if not isinstance(doc.get("hot_edges"), list):
        errors.append("missing array section 'hot_edges'")
    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        print(f"{path}: {len(errors)} problem(s)", file=sys.stderr)
        return 1

    counters = doc["counters"]
    comm_cycles = counters.get("comm_cycles")
    if not isinstance(comm_cycles, int):
        errors.append("counters.comm_cycles must be an integer")
        comm_cycles = None
    elif doc["status"] == "ok" and comm_cycles <= 0:
        # A failed run legitimately dies before any counters are filled.
        errors.append("counters.comm_cycles must be positive on an ok run")

    # Critical-path attribution: per-track phase sums always equal the
    # track total, and — when the trace ring never wrapped — the profiled
    # tracks plus virtual (modeled, unexecuted) cycles reconcile exactly
    # against the simulator's own Counters.
    profile = doc.get("profile")
    reconciled_cycles = 0
    any_reconciled = False
    if isinstance(profile, dict):
        for track in profile.get("tracks", []):
            label = track.get("label", "?")
            phase_sum = sum(p.get("cycles", 0) for p in track.get("phases", []))
            if phase_sum != track.get("total_cycles"):
                errors.append(
                    f"track '{label}': phase cycles sum to {phase_sum}, "
                    f"total_cycles is {track.get('total_cycles')}")
            if track.get("reconciled"):
                any_reconciled = True
                reconciled_cycles += track.get("total_cycles", 0)
        if profile.get("dropped_events") == 0 and any_reconciled \
                and isinstance(comm_cycles, int):
            virtual = doc.get("virtual_counters")
            virtual_cycles = virtual.get("comm_cycles", 0) \
                if isinstance(virtual, dict) else 0
            if reconciled_cycles + virtual_cycles != comm_cycles:
                errors.append(
                    f"reconciliation failed: profiled tracks account for "
                    f"{reconciled_cycles} cycles + {virtual_cycles} virtual "
                    f"!= counters.comm_cycles {comm_cycles}")

    imbalance = doc.get("imbalance")
    if isinstance(imbalance, dict):
        if imbalance.get("band_min", 0) > imbalance.get("band_max", 0):
            errors.append("imbalance: band_min exceeds band_max")
        if imbalance.get("spread_max", 0) > imbalance.get("band_max", 0):
            errors.append("imbalance: spread_max exceeds band_max")
        if imbalance.get("spread_sum", 0) < imbalance.get("spread_max", 0):
            errors.append("imbalance: spread_sum below spread_max")

    flight = doc["flight_recorder"].get("events", [])
    last_ts = None
    for i, e in enumerate(flight):
        ts = e.get("ts")
        if not isinstance(ts, int):
            errors.append(f"flight event {i}: missing integer 'ts'")
            continue
        if last_ts is not None and ts <= last_ts:
            errors.append(f"flight event {i} ({e.get('name')}): ts {ts} not "
                          f"strictly increasing (previous {last_ts})")
        last_ts = ts

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{path}: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    tracks = len(profile.get("tracks", [])) if isinstance(profile, dict) else 0
    print(f"{path}: report OK (status={doc['status']}, "
          f"{comm_cycles} comm cycles, {tracks} profiled track(s), "
          f"{len(flight)} flight events)")
    return 0


FLIGHT_RECORDER_MAX_RATIO = 1.02


def check_flight_recorder_overhead(rows) -> list:
    """Always-on flight-recorder gate: the crash-buffer-attached
    BM_DualPrefixFlightRecorder/8 median must stay within
    FLIGHT_RECORDER_MAX_RATIO of the bare BM_DualPrefix/8 median. Skipped
    when either current row is absent (e.g. the CI smoke file)."""
    table = {}
    for row in rows:
        name = row.get("name", "")
        if "@" in name:
            continue
        if name in ("BM_DualPrefix/8_median",
                    "BM_DualPrefixFlightRecorder/8_median"):
            value = row.get("ns_per_op")
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                table[name] = value
    bare = table.get("BM_DualPrefix/8_median")
    recorded = table.get("BM_DualPrefixFlightRecorder/8_median")
    if bare is None or recorded is None or bare <= 0:
        return []
    ratio = recorded / bare
    if ratio > FLIGHT_RECORDER_MAX_RATIO:
        return [
            f"BM_DualPrefixFlightRecorder/8: always-on flight recorder "
            f"costs {ratio:.3f}x the bare run (gate: <= "
            f"{FLIGHT_RECORDER_MAX_RATIO:.2f}x)"]
    print(f"flight-recorder overhead (n=8): {ratio:.3f}x the bare median")
    return []


def main() -> int:
    if len(sys.argv) > 1 and sys.argv[1] == "trace-validate":
        if len(sys.argv) != 3:
            print("usage: check_bench_json.py trace-validate TRACE.json",
                  file=sys.stderr)
            return 2
        return trace_validate(sys.argv[2])
    if len(sys.argv) > 1 and sys.argv[1] == "fault-sweep":
        if len(sys.argv) != 3:
            print("usage: check_bench_json.py fault-sweep SWEEP.json",
                  file=sys.stderr)
            return 2
        return fault_sweep_validate(sys.argv[2])
    if len(sys.argv) > 1 and sys.argv[1] == "pipeline-fusion":
        if len(sys.argv) != 3:
            print("usage: check_bench_json.py pipeline-fusion TABLE.json",
                  file=sys.stderr)
            return 2
        return pipeline_fusion_validate(sys.argv[2])
    if len(sys.argv) > 1 and sys.argv[1] == "report-validate":
        if len(sys.argv) != 3:
            print("usage: check_bench_json.py report-validate REPORT.json",
                  file=sys.stderr)
            return 2
        return report_validate(sys.argv[2])
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sim.json"
    try:
        with open(path, encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1

    if not isinstance(rows, list) or not rows:
        print(f"{path}: expected a non-empty JSON array", file=sys.stderr)
        return 1

    errors = check_schema(rows)
    names = [r.get("name", "") for r in rows if isinstance(r, dict)]
    has_trajectory = any("@" in n for n in names)
    if has_trajectory:
        errors += check_block_family(names)
        errors += check_shard_scaling(rows)
        errors += check_warm_cold(rows)
        errors += check_flight_recorder_overhead(rows)
        ratios = []
        errors += check_median_regressions(rows, ratios)
        report_family_ratios(ratios)

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{path}: {len(errors)} problem(s) in {len(rows)} rows",
              file=sys.stderr)
        return 1
    suffix = " (trajectory gates active)" if has_trajectory else ""
    print(f"{path}: {len(rows)} rows OK{suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
