#!/usr/bin/env python3
"""Schema check for the bench_wallclock summary JSON (CI bench smoke).

Usage: check_bench_json.py [path]   (default: BENCH_sim.json)

Verifies the file is a non-empty JSON array in which every row carries a
non-empty "name" plus numeric "ns_per_op" and "items_per_sec" keys, with
ns_per_op > 0 and items_per_sec > 0 for every measurement row. Spread
aggregates ("_stddev", "_cv" rows) are exempt from the positivity checks —
a perfectly stable run legitimately reports 0 spread. Stdlib only.
"""
import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_sim.json"
    try:
        with open(path, encoding="utf-8") as f:
            rows = json.load(f)
    except (OSError, ValueError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 1

    if not isinstance(rows, list) or not rows:
        print(f"{path}: expected a non-empty JSON array", file=sys.stderr)
        return 1

    errors = []
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            errors.append(f"row {i}: not an object")
            continue
        name = row.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"row {i}: missing or empty 'name'")
            continue
        for key in ("ns_per_op", "items_per_sec"):
            value = row.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"{name}: missing or non-numeric '{key}'")
        if any(tag in name for tag in ("_stddev", "_cv")):
            continue
        if not row.get("ns_per_op", 0) > 0:
            errors.append(f"{name}: ns_per_op must be > 0")
        if not row.get("items_per_sec", 0) > 0:
            errors.append(
                f"{name}: items_per_sec must be > 0 "
                "(did the bench call SetItemsProcessed?)"
            )

    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{path}: {len(errors)} problem(s) in {len(rows)} rows",
              file=sys.stderr)
        return 1
    print(f"{path}: {len(rows)} rows OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
