// Topology explorer: prints the structure of a dual-cube (Figures 1-2), its
// recursive construction (Figure 4), measured graph properties, and a few
// shortest routes — everything a user needs to get a feel for the network.
//
//   ./topology_explorer [--n=2] [--routes=4]
#include <iostream>

#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "topology/describe.hpp"
#include "topology/graph.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/routing.hpp"

int main(int argc, char** argv) {
  dc::Cli cli(argc, argv);
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 2));
  const unsigned routes = static_cast<unsigned>(cli.get_int("routes", 4));
  cli.finish();

  const dc::net::DualCube d(n);
  const dc::net::RecursiveDualCube r(n);

  std::cout << dc::net::describe_dual_cube(d) << "\n";
  std::cout << dc::net::describe_recursive_construction(r) << "\n";

  const auto stats = dc::net::distance_stats(d);
  dc::Table t("measured properties of " + d.name());
  t.header({"property", "value"});
  t.add("nodes", d.node_count());
  t.add("links", d.edge_count());
  t.add("degree", d.order());
  t.add("diameter (BFS)", stats.diameter);
  t.add("diameter (formula 2n)", d.diameter());
  t.add("average distance", stats.average);
  t.add("connected", dc::net::is_connected(d));
  t.add("bipartite", dc::net::is_bipartite(d));
  t.add("uniform distance profile", dc::net::has_uniform_distance_profile(d));
  std::cout << t << "\n";

  std::cout << "sample shortest routes (cluster routing):\n";
  dc::Rng rng(5);
  for (unsigned i = 0; i < routes; ++i) {
    const auto src = static_cast<dc::net::NodeId>(rng.below(d.node_count()));
    const auto dst = static_cast<dc::net::NodeId>(rng.below(d.node_count()));
    const auto path = dc::net::route_dual_cube(d, src, dst);
    std::cout << "  ";
    for (std::size_t h = 0; h < path.size(); ++h) {
      std::cout << dc::bits::to_binary(path[h], d.label_bits());
      if (h + 1 < path.size()) std::cout << " -> ";
    }
    std::cout << "   (" << path.size() - 1 << " hops, distance formula says "
              << d.distance(src, dst) << ")\n";
  }

  if (n >= 2) {
    const auto ring = dc::net::dual_cube_hamiltonian_cycle(d);
    std::cout << "\nring embedding (Hamiltonian cycle, dilation 1), "
              << ring.size() << " nodes:\n  ";
    const std::size_t shown = std::min<std::size_t>(ring.size(), 16);
    for (std::size_t i = 0; i < shown; ++i)
      std::cout << dc::bits::to_binary(ring[i], d.label_bits())
                << (i + 1 < shown ? " " : "");
    if (shown < ring.size()) std::cout << " ...";
    std::cout << "\n  valid: "
              << (dc::net::is_hamiltonian_cycle(d, ring) ? "yes" : "NO")
              << "\n";
  }
  return 0;
}
