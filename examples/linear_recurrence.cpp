// Parallel first-order linear recurrence on the dual-cube.
//
//   x_{i+1} = a_i * x_i + b_i   (mod 2^64)
//
// Sequentially this is a chain of N dependent steps; on the dual-cube it
// becomes a single Algorithm-2 prefix under the (non-commutative!) monoid
// of 2x2 matrices: with row vectors v_i = (x_i, 1),
//
//   v_{i+1} = v_i * N_i,   N_i = [ a_i 0 ]
//                                [ b_i 1 ]
//
// so x_k is read off v_0 * (N_0 N_1 ... N_{k-1}), and the product prefixes
// are exactly what dual_prefix computes in 2n communication steps. This is
// the classic "scan beats the dependence chain" trick (Hillis & Steele, the
// paper's reference [3]) and doubles as a demonstration that Algorithm 2
// never reorders operands.
//
//   ./linear_recurrence [--n=3] [--x0=1]
#include <iostream>

#include "core/dual_prefix.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using dc::u64;
  dc::Cli cli(argc, argv);
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 3));
  const u64 x0 = static_cast<u64>(cli.get_int("x0", 1));
  cli.finish();

  const dc::net::DualCube d(n);
  dc::sim::Machine m(d);
  const std::size_t N = d.node_count();

  // Coefficients, one recurrence step per node.
  dc::Rng rng(12);
  std::vector<u64> a(N);
  std::vector<u64> b(N);
  for (auto& v : a) v = rng.below(100) + 1;
  for (auto& v : b) v = rng.below(100);

  // One matrix per step, combined left-to-right by Algorithm 2.
  const dc::core::Mat2 mat;
  std::vector<dc::core::Mat2::value_type> steps(N);
  for (std::size_t i = 0; i < N; ++i) steps[i] = {a[i], 0, b[i], 1};

  const auto products = dc::core::dual_prefix(m, d, mat, steps);

  // x_{k+1} = (x0, 1) * P_k, read from the first column.
  std::vector<u64> x(N + 1);
  x[0] = x0;
  for (std::size_t k = 0; k < N; ++k) {
    const auto& p = products[k];
    x[k + 1] = x0 * p[0] + p[2];
  }

  // Sequential reference.
  bool ok = true;
  u64 ref = x0;
  for (std::size_t i = 0; i < N; ++i) {
    ref = a[i] * ref + b[i];
    ok = ok && ref == x[i + 1];
  }

  dc::Table t("linear recurrence x_{i+1} = a_i x_i + b_i on " + d.name());
  t.header({"metric", "value"});
  t.add("recurrence steps (one per node)", N);
  t.add("comm cycles (Algorithm 2)", m.counters().comm_cycles);
  t.add("x_1", x[1]);
  t.add("x_2", x[2]);
  t.add("x_N", x[N]);
  t.add("matches sequential chain", ok);
  std::cout << t;
  DC_CHECK(ok, "parallel recurrence diverged from the sequential chain");
  std::cout << "a chain of " << N << " dependent steps collapsed into "
            << m.counters().comm_cycles << " communication cycles\n";
  return 0;
}
