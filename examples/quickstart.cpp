// Quickstart: build a dual-cube, run the paper's two algorithms on it, and
// read the step counters.
//
//   ./quickstart [--n=3]
#include <iostream>
#include <numeric>

#include "core/dual_prefix.hpp"
#include "core/dual_sort.hpp"
#include "core/formulas.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  dc::Cli cli(argc, argv);
  const unsigned n = static_cast<unsigned>(cli.get_int("n", 3));
  cli.finish();

  // --- The network -------------------------------------------------------
  const dc::net::DualCube d(n);
  std::cout << "Dual-cube " << d.name() << ": " << d.node_count()
            << " nodes, " << d.order() << " links/node, diameter "
            << d.diameter() << "\n\n";

  // --- Parallel prefix (Algorithm 2) --------------------------------------
  {
    dc::sim::Machine machine(d);
    const dc::core::Plus<dc::u64> plus;
    std::vector<dc::u64> data(d.node_count());
    std::iota(data.begin(), data.end(), 1);  // 1, 2, 3, ...

    const auto prefix = dc::core::dual_prefix(machine, d, plus, data);

    std::cout << "prefix sums of 1.." << data.size() << ": " << prefix[0]
              << ", " << prefix[1] << ", " << prefix[2] << ", ..., "
              << prefix.back() << "\n";
    const auto c = machine.counters();
    std::cout << "  communication steps: " << c.comm_cycles
              << " (Theorem 1 bound: "
              << dc::core::formulas::dual_prefix_comm_paper(n) << ")\n";
    std::cout << "  computation steps:   " << c.comp_steps
              << " (Theorem 1 bound: "
              << dc::core::formulas::dual_prefix_comp(n) << ")\n\n";
  }

  // --- Sorting (Algorithm 3, on the recursive presentation) ---------------
  {
    const dc::net::RecursiveDualCube r(n);
    dc::sim::Machine machine(r);
    auto keys = dc::generate_keys(dc::KeyDistribution::kUniform,
                                  r.node_count(), /*seed=*/2026);
    dc::core::dual_sort(machine, r, keys);

    std::cout << "sorted " << keys.size() << " random keys: first "
              << keys.front() << ", last " << keys.back()
              << (std::is_sorted(keys.begin(), keys.end()) ? " (sorted)"
                                                           : " (BUG!)")
              << "\n";
    const auto c = machine.counters();
    std::cout << "  communication steps: " << c.comm_cycles
              << " (Theorem 2 bound: "
              << dc::core::formulas::dual_sort_comm_bound(n) << ")\n";
    std::cout << "  comparison steps:    " << c.comp_steps
              << " (Theorem 2 bound: "
              << dc::core::formulas::dual_sort_comp_bound(n) << ")\n";
  }
  return 0;
}
